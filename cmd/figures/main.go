// Command figures regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated machine. Each subcommand maps to
// one artifact; "all" runs the complete set. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	figures [-quick] [-threads N] [-seed S] [-json] [-j N] [-cache DIR] [-verify-determinism] <artifact>
//
// Artifacts: table1 table2 fig1 fig4 fig11 fig12 fig13 fig14 flushmode
// writethrough conflictkinds ablations all
//
// Every artifact is a sweep of independent simulations; -j sets the
// worker-pool parallelism (default GOMAXPROCS), -cache reuses per-run
// summaries across invocations and artifacts (fig11, fig12, and
// conflictkinds share the same underlying runs), and -verify-determinism
// re-executes every run serially and fails on any divergence from the
// pooled run. Output is byte-identical at every -j setting.
//
// With -json, each artifact is emitted as a machine-readable document
// {"artifact", "tables", "notes"} instead of ASCII tables; "all" emits a
// JSON array of those documents.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"persistbarriers/internal/harness"
	"persistbarriers/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "use the scaled-down quick option set")
	threads := flag.Int("threads", 0, "override thread/core count (1..32)")
	seed := flag.Uint64("seed", 0, "override workload seed")
	microOps := flag.Int("microops", 0, "override micro-benchmark transactions per thread")
	appOps := flag.Int("appops", 0, "override app-model memory ops per thread")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of ASCII tables")
	parallel := flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations per sweep (worker-pool size)")
	cacheDir := flag.String("cache", "", "cache per-run summaries (content-addressed) in this directory")
	verifyDet := flag.Bool("verify-determinism", false, "run every sweep job twice (parallel + serial) and fail on divergence")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: figures [flags] <artifact>\nartifacts: %s\n",
			strings.Join(artifactNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		exit(2)
	}
	if err := startProfiles(*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		exit(1)
	}
	defer stopProfiles()
	// Reject bad inputs before any sweep spins up workers.
	if *threads < 0 || *threads > 32 {
		fmt.Fprintf(os.Stderr, "figures: -threads must be in 1..32 (or 0 for the option set's default), got %d\n", *threads)
		exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "figures: -j must be >= 1, got %d\n", *parallel)
		exit(2)
	}
	if *microOps < 0 || *appOps < 0 {
		fmt.Fprintf(os.Stderr, "figures: -microops and -appops must be >= 0\n")
		exit(2)
	}

	opt := harness.Defaults()
	if *quick {
		opt = harness.Quick()
	}
	if *threads > 0 {
		opt.Threads = *threads
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *microOps > 0 {
		opt.MicroOps = *microOps
	}
	if *appOps > 0 {
		opt.AppOps = *appOps
	}
	opt.Parallelism = *parallel
	opt.CacheDir = *cacheDir
	opt.VerifyDeterminism = *verifyDet

	name := flag.Arg(0)
	known := false
	for _, a := range artifactNames() {
		if a == name {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "figures: unknown artifact %q (choose from: %s)\n",
			name, strings.Join(artifactNames(), " "))
		exit(2)
	}
	names := []string{name}
	if name == "all" {
		names = names[:0]
		for _, a := range artifactNames() {
			if a != "all" {
				names = append(names, a)
			}
		}
	}

	var docs []artifactDoc
	for _, a := range names {
		doc, err := runArtifact(a, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", a, err)
			exit(1)
		}
		if *jsonOut {
			docs = append(docs, doc)
			continue
		}
		for _, t := range doc.Tables {
			fmt.Println(renderData(t))
		}
		for _, n := range doc.Notes {
			fmt.Println(n)
			fmt.Println()
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		var err error
		if name == "all" {
			err = enc.Encode(docs)
		} else {
			err = enc.Encode(docs[0])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			exit(1)
		}
	}
}

func artifactNames() []string {
	return []string{
		"table1", "table2", "fig1", "fig4", "fig7",
		"fig11", "fig12", "fig13", "fig14",
		"flushmode", "writethrough", "conflictkinds", "ablations", "all",
	}
}

// artifactDoc is one artifact's output: its tables in machine-readable
// form plus any free-text notes printed after them in text mode.
type artifactDoc struct {
	Artifact string            `json:"artifact"`
	Tables   []stats.TableData `json:"tables"`
	Notes    []string          `json:"notes,omitempty"`
}

// runArtifact computes one artifact and returns its tables and notes.
func runArtifact(name string, opt harness.Options) (artifactDoc, error) {
	doc := artifactDoc{Artifact: name}
	add := func(ts ...*stats.Table) {
		for _, t := range ts {
			doc.Tables = append(doc.Tables, t.Data())
		}
	}
	switch name {
	case "table1":
		add(harness.Table1())
	case "table2":
		add(harness.Table2())
	case "fig1":
		r, err := harness.RunFig1()
		if err != nil {
			return doc, err
		}
		add(r.Table())
	case "fig4":
		r, err := harness.RunFig4()
		if err != nil {
			return doc, err
		}
		add(r.Table())
	case "fig7":
		r, err := harness.RunFig7()
		if err != nil {
			return doc, err
		}
		add(r.Table())
	case "fig11", "fig12", "conflictkinds":
		r, err := harness.RunBEP(opt)
		if err != nil {
			return doc, err
		}
		switch name {
		case "fig11":
			add(r.Fig11Table())
		case "fig12":
			add(r.Fig12Table())
		default:
			add(r.ConflictKindsTable())
		}
	case "fig13":
		r, err := harness.RunFig13(opt)
		if err != nil {
			return doc, err
		}
		add(r.Fig13Table())
	case "fig14":
		r, err := harness.RunFig14(opt)
		if err != nil {
			return doc, err
		}
		add(r.Fig14Table())
		doc.Notes = append(doc.Notes, fmt.Sprintf(
			"inter-thread share of conflicts under LB: %.0f%% (paper: ~86%%)",
			100*r.InterConflictShare("LB")))
	case "flushmode":
		r, err := harness.RunFlushMode(opt)
		if err != nil {
			return doc, err
		}
		add(r.Table())
	case "writethrough":
		r, err := harness.RunWriteThrough(opt)
		if err != nil {
			return doc, err
		}
		add(r.Table())
	case "ablations":
		r, err := harness.RunAblations(opt)
		if err != nil {
			return doc, err
		}
		add(r.Tables()...)
	default:
		return doc, fmt.Errorf("unknown artifact %q", name)
	}
	return doc, nil
}

// renderData round-trips a TableData through the ASCII renderer so text
// mode keeps its original output format.
func renderData(d stats.TableData) string {
	t := stats.NewTable(d.Title, d.Headers...)
	for _, r := range d.Rows {
		t.AddRow(r...)
	}
	return t.Render()
}
