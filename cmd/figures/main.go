// Command figures regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated machine. Each subcommand maps to
// one artifact; "all" runs the complete set. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	figures [-quick] [-threads N] [-seed S] <artifact>
//
// Artifacts: table1 table2 fig1 fig4 fig11 fig12 fig13 fig14 flushmode
// writethrough conflictkinds ablations all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"persistbarriers/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use the scaled-down quick option set")
	threads := flag.Int("threads", 0, "override thread/core count (1..32)")
	seed := flag.Uint64("seed", 0, "override workload seed")
	microOps := flag.Int("microops", 0, "override micro-benchmark transactions per thread")
	appOps := flag.Int("appops", 0, "override app-model memory ops per thread")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: figures [flags] <artifact>\nartifacts: %s\n",
			strings.Join(artifactNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opt := harness.Defaults()
	if *quick {
		opt = harness.Quick()
	}
	if *threads > 0 {
		opt.Threads = *threads
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *microOps > 0 {
		opt.MicroOps = *microOps
	}
	if *appOps > 0 {
		opt.AppOps = *appOps
	}

	name := flag.Arg(0)
	if name == "all" {
		for _, a := range artifactNames() {
			if a == "all" {
				continue
			}
			if err := runArtifact(a, opt); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", a, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := runArtifact(name, opt); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
		os.Exit(1)
	}
}

func artifactNames() []string {
	return []string{
		"table1", "table2", "fig1", "fig4", "fig7",
		"fig11", "fig12", "fig13", "fig14",
		"flushmode", "writethrough", "conflictkinds", "ablations", "all",
	}
}

func runArtifact(name string, opt harness.Options) error {
	switch name {
	case "table1":
		fmt.Println(harness.Table1().Render())
	case "table2":
		fmt.Println(harness.Table2().Render())
	case "fig1":
		r, err := harness.RunFig1()
		if err != nil {
			return err
		}
		fmt.Println(r.Table().Render())
	case "fig4":
		r, err := harness.RunFig4()
		if err != nil {
			return err
		}
		fmt.Println(r.Table().Render())
	case "fig7":
		r, err := harness.RunFig7()
		if err != nil {
			return err
		}
		fmt.Println(r.Table().Render())
	case "fig11", "fig12", "conflictkinds":
		r, err := harness.RunBEP(opt)
		if err != nil {
			return err
		}
		switch name {
		case "fig11":
			fmt.Println(r.Fig11Table().Render())
		case "fig12":
			fmt.Println(r.Fig12Table().Render())
		default:
			fmt.Println(r.ConflictKindsTable().Render())
		}
	case "fig13":
		r, err := harness.RunFig13(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Fig13Table().Render())
	case "fig14":
		r, err := harness.RunFig14(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Fig14Table().Render())
		fmt.Printf("inter-thread share of conflicts under LB: %.0f%% (paper: ~86%%)\n\n",
			100*r.InterConflictShare("LB"))
	case "flushmode":
		r, err := harness.RunFlushMode(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table().Render())
	case "writethrough":
		r, err := harness.RunWriteThrough(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table().Render())
	case "ablations":
		r, err := harness.RunAblations(opt)
		if err != nil {
			return err
		}
		for _, t := range r.Tables() {
			fmt.Println(t.Render())
		}
	default:
		return fmt.Errorf("unknown artifact %q", name)
	}
	return nil
}
