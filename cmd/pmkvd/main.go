// Command pmkvd serves the pmkv durable key-value engine over TCP. With
// -shards N the keyspace is partitioned by a stable hash across N
// independent simulated machines, each owned by one worker goroutine
// running a pipelined group commit: batch k+1 is translated while batch
// k's persist barriers drain, and a client's ack is released only when
// the shard's durable-prefix watermark covers its write. Connections
// route to shards through a pure hash — no global lock on the data path.
//
// Two wire protocols share the port, auto-detected per connection from
// its first byte. A 0xB1 byte opens the pipelined binary protocol
// (internal/proto): length-prefixed frames with client-chosen request
// ids, up to -window requests in flight per connection, responses
// written out of order the moment each op's shard acks it, batched into
// single socket writes. Anything else is the original JSON line
// protocol, one request in flight at a time:
//
//	-> {"op":"put","key":"user:7","value":"alice"}
//	<- {"ok":true,"found":true}
//	-> {"op":"get","key":"user:7"}
//	<- {"ok":true,"found":true,"value":"alice"}
//	-> {"op":"del","key":"user:7"}
//	<- {"ok":true,"found":true}
//	-> {"op":"stats"}
//	<- {"ok":true,"stats":{...aggregate...},"shards":[{...per shard...}]}
//
// On SIGINT/SIGTERM the server stops accepting, quiesces every shard
// mailbox (requests racing the drain are either committed before the
// final barrier or refused with "draining" — never applied after the
// recovery snapshot), drains and verifies every shard, and prints the
// per-shard and combined reports. With -crash-at N every shard loses
// power at cycle N of its own clock; clients in a crashing batch still
// get their responses (flagged "crashed":true) and the server drains the
// surviving shards and verifies every crash image.
//
// -selfcheck N runs the deterministic crash-injection sweep (N seeded
// crash instants under concurrent scripted load) without any networking
// and exits nonzero on the first invariant violation; with -shards > 1
// the sweep fans each instant out to every shard and checks the combined
// fingerprint for deterministic recovery. CI uses it as the crash smoke
// test.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/proto"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/telemetry"
	"persistbarriers/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards   = flag.Int("shards", 1, "independent engine shards (1..256); keys route by stable hash")
		cores    = flag.Int("cores", 4, "simulated cores per shard (1..32); sessions map onto cores round-robin")
		buckets  = flag.Int("buckets", 64, "hash-table buckets per shard")
		gap      = flag.Uint64("gap", 200, "simulated cycles between request batches")
		crashAt  = flag.Uint64("crash-at", 0, "simulated power loss at this cycle of each shard's clock (0 = never)")
		mailbox  = flag.Int("mailbox", 256, "per-shard request queue depth")
		maxbatch = flag.Int("maxbatch", 64, "max requests per group commit")
		minbatch = flag.Int("minbatch", 8, "floor of the adaptive group-commit size (clamped to -maxbatch)")
		inflight = flag.Int("inflight", 2, "translated batches fed per retire pump (1..8; 1 disables pipelining)")
		recwork  = flag.Int("recovery-workers", 0, "parallel recovery-replay workers per shard (0 = GOMAXPROCS, 1 = serial)")
		check    = flag.Bool("check", false, "run the online durable-linearizability checker; verdict printed at drain and after every selfcheck instant")
		readFast = flag.Bool("read-fast", true, "serve GETs from the per-shard committed-state index when the session has no pending writes (false = every GET goes through the mailbox)")

		window      = flag.Int("window", 128, "binary protocol: max in-flight requests per connection (1..4096)")
		maxconns    = flag.Int("maxconns", 0, "max concurrent client connections (0 = unlimited)")
		connTimeout = flag.Duration("conn-timeout", 0, "per-connection read idle timeout (0 = none)")

		admin      = flag.String("admin", "", "admin HTTP address for /metrics, /statz, /debug/pprof (empty = off)")
		flightDump = flag.String("flight-dump", "", "write the flight-recorder dump here on crash/drain (empty = off)")
		flightRing = flag.Int("flight-ring", telemetry.DefaultRing, "per-shard flight-recorder capacity (rounded up to a power of two)")

		selfcheck = flag.Int("selfcheck", 0, "run N crash-injection instants and exit (no server)")
		sessions  = flag.Int("sessions", 6, "selfcheck: concurrent scripted sessions")
		rounds    = flag.Int("rounds", 24, "selfcheck: request batches per session")
		keyspace  = flag.Int("keyspace", 16, "selfcheck: distinct keys")
		seed      = flag.Uint64("seed", 42, "selfcheck: workload seed")
	)
	flag.Parse()

	// Fail fast on nonsense before any machine is built.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmkvd: "+format+"\n", args...)
		os.Exit(2)
	}
	if *shards < 1 || *shards > pmkv.MaxShards {
		fail("-shards must be in 1..%d, got %d", pmkv.MaxShards, *shards)
	}
	if *cores < 1 || *cores > 32 {
		fail("-cores must be in 1..32, got %d", *cores)
	}
	if *buckets < 1 {
		fail("-buckets must be >= 1, got %d", *buckets)
	}
	if *mailbox < 1 {
		fail("-mailbox must be >= 1, got %d", *mailbox)
	}
	if *maxbatch < 1 {
		fail("-maxbatch must be >= 1, got %d", *maxbatch)
	}
	if *minbatch < 1 {
		fail("-minbatch must be >= 1, got %d", *minbatch)
	}
	if *inflight < 1 || *inflight > 8 {
		fail("-inflight must be in 1..8, got %d", *inflight)
	}
	if *recwork < 0 {
		fail("-recovery-workers must be >= 0, got %d", *recwork)
	}
	if *selfcheck < 0 {
		fail("-selfcheck must be >= 0, got %d", *selfcheck)
	}
	if *flightRing < 1 {
		fail("-flight-ring must be >= 1, got %d", *flightRing)
	}
	if *window < 1 || *window > 4096 {
		fail("-window must be in 1..4096, got %d", *window)
	}
	if *maxconns < 0 {
		fail("-maxconns must be >= 0, got %d", *maxconns)
	}
	if *sessions < 1 {
		fail("-sessions must be >= 1, got %d", *sessions)
	}
	if *rounds < 1 {
		fail("-rounds must be >= 1, got %d", *rounds)
	}
	if *keyspace < 1 {
		fail("-keyspace must be >= 1, got %d", *keyspace)
	}

	mcfg := pmkv.SmallMachine()
	mcfg.Cores = *cores
	cfg := pmkv.ShardedConfig{
		Shards: *shards,
		Engine: pmkv.Config{
			Machine:         mcfg,
			Buckets:         *buckets,
			BatchGap:        sim.Cycle(*gap),
			CrashAt:         sim.Cycle(*crashAt),
			Check:           *check,
			RecoveryWorkers: *recwork,
		},
		Mailbox:         *mailbox,
		MaxBatch:        *maxbatch,
		MinBatch:        *minbatch,
		MaxInFlight:     *inflight,
		DisableReadFast: !*readFast,
	}
	spec := pmkv.ScriptSpec{
		Sessions: *sessions,
		Rounds:   *rounds,
		KeySpace: *keyspace,
		Seed:     *seed,
	}

	if *selfcheck > 0 {
		var err error
		if *shards > 1 {
			err = runShardedSelfcheck(cfg, spec, *selfcheck)
		} else {
			err = runSelfcheck(cfg.Engine, spec, *selfcheck)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmkvd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		return
	}
	opts := serverOpts{
		flightPath:  *flightDump,
		flightRing:  *flightRing,
		window:      *window,
		maxConns:    *maxconns,
		connTimeout: *connTimeout,
		tracing:     *admin != "" || *flightDump != "",
	}
	if err := serve(*addr, *admin, cfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pmkvd:", err)
		os.Exit(1)
	}
}

// runSelfcheck executes the single-engine crash-injection sweep: one
// clean run to size the cycle span, then n evenly spaced crash instants,
// each fully verified (epoch order, prefix closure, KV atomicity, session
// order) and checked for deterministic recovery.
func runSelfcheck(cfg pmkv.Config, spec pmkv.ScriptSpec, n int) error {
	cfg.CrashAt = 0
	clean, err := pmkv.RunScript(cfg, spec)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}
	fmt.Printf("clean run: %d cycles, %d publishes, %d epochs, fingerprint %.16s\n",
		clean.Cycles, clean.Report.TotalPublishes, clean.Report.Epochs, clean.Report.Fingerprint)
	if clean.DL != nil {
		fmt.Printf("durable linearizability: %s\n", clean.DL)
	}
	crashed := 0
	for i, at := range pmkv.SweepInstants(clean.Cycles, n) {
		ccfg := cfg
		ccfg.CrashAt = at
		out, err := pmkv.RunScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d: %w", i+1, n, at, err)
		}
		again, err := pmkv.RunScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d (replay): %w", i+1, n, at, err)
		}
		if out.Report.Fingerprint != again.Report.Fingerprint {
			return fmt.Errorf("crash %d/%d at cycle %d: recovery not deterministic", i+1, n, at)
		}
		if out.Crashed {
			crashed++
		}
	}
	if cfg.Check {
		fmt.Printf("durable linearizability: OK across %d crash instants\n", n)
	}
	fmt.Printf("selfcheck OK: %d instants (%d mid-run crashes), all invariants held, recovery deterministic\n",
		n, crashed)
	return nil
}

// runShardedSelfcheck fans each crash instant out to every shard and
// checks that the combined per-shard fingerprint is reproducible.
func runShardedSelfcheck(cfg pmkv.ShardedConfig, spec pmkv.ScriptSpec, n int) error {
	cfg.Engine.CrashAt = 0
	clean, err := pmkv.RunShardedScript(cfg, spec)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}
	var span sim.Cycle
	for _, r := range clean.PerShard {
		if r.Cycles > span {
			span = r.Cycles
		}
	}
	fmt.Printf("clean run: %d shards, span %d cycles, %d publishes, combined fingerprint %.16s\n",
		len(clean.PerShard), span, clean.TotalPublishes(), clean.Fingerprint)
	verdicts := make([]*dlcheck.Verdict, len(clean.PerShard))
	for i, r := range clean.PerShard {
		verdicts[i] = r.DL
	}
	if line := dlLine(verdicts); line != "" {
		fmt.Printf("durable linearizability: %s\n", line)
	}
	crashed := 0
	for i, at := range pmkv.SweepInstants(span, n) {
		ccfg := cfg
		ccfg.Engine.CrashAt = at
		out, err := pmkv.RunShardedScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d: %w", i+1, n, at, err)
		}
		again, err := pmkv.RunShardedScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d (replay): %w", i+1, n, at, err)
		}
		if out.Fingerprint != again.Fingerprint {
			return fmt.Errorf("crash %d/%d at cycle %d: combined recovery not deterministic", i+1, n, at)
		}
		if out.Crashed {
			crashed++
		}
	}
	if cfg.Engine.Check {
		fmt.Printf("durable linearizability: OK across %d crash instants\n", n)
	}
	fmt.Printf("selfcheck OK: %d shards x %d instants (%d mid-run crashes), all invariants held, recovery deterministic\n",
		cfg.Shards, n, crashed)
	return nil
}

// dlLine folds per-shard durable-linearizability verdicts into one
// greppable report body ("" when the checker was off everywhere).
func dlLine(vs []*dlcheck.Verdict) string {
	var agg dlcheck.Verdict
	any := false
	for _, v := range vs {
		if v == nil {
			continue
		}
		any = true
		agg.Ops += v.Ops
		agg.Reads += v.Reads
		agg.Publishes += v.Publishes
		agg.Durable += v.Durable
		agg.Acked += v.Acked
		agg.Violations = append(agg.Violations, v.Violations...)
	}
	if !any {
		return ""
	}
	return agg.String()
}

// request is the wire format of one client line.
type request struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value"`
}

// shardStats is the per-shard element of a stats reply: the shard's
// commit-pipeline counters plus its engine's service metrics.
type shardStats struct {
	pmkv.ShardMetrics
	Service obs.ServiceStats `json:"service"`
}

// serverOpts carries everything that shapes a server besides the store
// config itself; tests build servers directly from it.
type serverOpts struct {
	flightPath string // where finalReport writes the flight dump ("" = off)
	flightRing int
	window     int // binary protocol pipeline depth per connection
	maxConns   int // accept limit (0 = unlimited)
	// connTimeout, when > 0, is the rolling read idle deadline: a
	// connection that sends nothing for this long is dropped.
	connTimeout time.Duration
	// writeTimeout bounds each response flush so a client that stops
	// reading cannot pin the drain (default 5s).
	writeTimeout time.Duration
	tracing      bool // attach the stage tracer / flight recorder
	// out receives the drain/recovery report (default os.Stdout);
	// benchmarks discard it so report lines don't interleave with the
	// benchmark output being parsed downstream.
	out io.Writer
}

func (o *serverOpts) fill() {
	if o.window <= 0 {
		o.window = 128
	}
	if o.flightRing <= 0 {
		o.flightRing = telemetry.DefaultRing
	}
	if o.writeTimeout <= 0 {
		o.writeTimeout = 5 * time.Second
	}
	if o.out == nil {
		o.out = os.Stdout
	}
}

// server glues the listener, the per-connection readers, and the sharded
// store whose workers own all engine forward progress.
type server struct {
	store      *pmkv.ShardedStore
	collectors []*obs.Collector
	tracer     *telemetry.Tracer // nil when telemetry is off; nil-safe throughout
	opts       serverOpts
	ln         net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup
}

// newServer builds the collectors, tracer, and sharded store. The caller
// supplies the listener (via run) so tests can serve in-process.
func newServer(cfg pmkv.ShardedConfig, opts serverOpts) (*server, error) {
	opts.fill()
	collectors := make([]*obs.Collector, cfg.Shards)
	for i := range collectors {
		collectors[i] = obs.NewCollector(0)
	}
	cfg.ConfigureShard = func(shard int, ecfg *pmkv.Config) {
		ecfg.Machine.Probe = obs.NewProbe(collectors[shard])
	}
	s := &server{
		collectors: collectors,
		opts:       opts,
		conns:      make(map[net.Conn]bool),
	}
	// The stage tracer rides along whenever anything consumes it: the
	// admin endpoint exposes it live, the flight dump post-mortem.
	if opts.tracing {
		s.tracer = telemetry.New(telemetry.Config{Shards: cfg.Shards, Ring: opts.flightRing})
	}
	// OnCrash runs on the crashing shard's worker goroutine; the drain must
	// start elsewhere (BeginDrain waits on producers only workers unblock).
	cfg.OnCrash = func(shard int) {
		fmt.Fprintf(os.Stderr, "pmkvd: shard %d lost power, draining...\n", shard)
		go s.beginDrain()
	}
	store, err := pmkv.NewSharded(cfg)
	if err != nil {
		return nil, err
	}
	s.store = store
	return s, nil
}

// run accepts on ln until the drain begins, then waits out every
// connection and produces the final verified report.
func (s *server) run(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	draining := s.draining
	s.mu.Unlock()
	if draining {
		ln.Close()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed: drain begins
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}

	s.beginDrain() // idempotent; also covers listener errors
	s.wg.Wait()

	return s.finalReport()
}

func serve(addr, adminAddr string, cfg pmkv.ShardedConfig, opts serverOpts) error {
	opts.tracing = opts.tracing || adminAddr != ""
	s, err := newServer(cfg, opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	var adminLn net.Listener
	if adminAddr != "" {
		adminLn, err = s.startAdmin(adminAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("admin listener: %w", err)
		}
		defer adminLn.Close()
		fmt.Printf("pmkvd: admin endpoint on http://%s (/metrics /statz /debug/pprof)\n", adminLn.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "pmkvd: draining...")
		s.beginDrain()
	}()

	fmt.Printf("pmkvd: serving on %s (%d shards, %d cores each, %s barrier, %d buckets)\n",
		ln.Addr(), cfg.Shards, cfg.Engine.Machine.Cores, cfg.Engine.Machine.BarrierName(), cfg.Engine.Buckets)
	return s.run(ln)
}

// track registers a connection unless the server is draining or the
// -maxconns accept limit is hit.
func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if s.opts.maxConns > 0 && len(s.conns) >= s.opts.maxConns {
		return false
	}
	s.conns[conn] = true
	return true
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// beginDrain stops accepting, quiesces every shard mailbox, and unblocks
// connection readers. Ordering matters: the store drain comes first, so a
// request that races it is either already in a mailbox (committed and
// acked before the final barrier) or refused with ErrDraining — and the
// readers are then unblocked with an immediate deadline rather than a
// close, so in-flight responses (the crashed-batch replies in particular)
// are still written before each handler returns.
func (s *server) beginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.store.BeginDrain()
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
}

// handle runs one connection, auto-detecting its protocol from the
// first byte: the binary request magic (0xB1, high bit set) opens the
// pipelined path; anything else — a JSON line starts with '{' or
// whitespace, all < 0x80 — falls through to the line protocol.
func (s *server) handle(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	s.armReadDeadline(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == proto.FrameRequest {
		s.handleBinary(conn, br)
		return
	}
	s.handleJSON(conn, br)
}

// armReadDeadline (re)arms the rolling idle deadline, then re-checks the
// drain flag: beginDrain's immediate deadline must win the race against
// a reader extending its own, or a drain could stall for a full idle
// period.
func (s *server) armReadDeadline(conn net.Conn) {
	if s.opts.connTimeout <= 0 {
		return
	}
	conn.SetReadDeadline(time.Now().Add(s.opts.connTimeout))
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		conn.SetReadDeadline(time.Now())
	}
}

// handleJSON runs one JSON-line connection: a session whose operations
// execute in program order on each shard, one request in flight at a
// time. The response path is allocation-free at steady state: one reused
// encode buffer and one bufio.Writer, both sized once per connection.
func (s *server) handleJSON(conn net.Conn, br *bufio.Reader) {
	sess := s.store.NewSession()
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	w := bufio.NewWriterSize(conn, 32<<10)
	buf := make([]byte, 0, 4<<10)
	// One span per connection, reused for every request: the stamp/fold
	// path stays allocation-free (enforced by telemetry's AllocsPerRun
	// guards), so tracing costs a few clock reads per op.
	var span *telemetry.Span
	if s.tracer.Enabled() {
		span = new(telemetry.Span)
	}
	for {
		s.armReadDeadline(conn)
		if !sc.Scan() {
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		span.Reset()
		span.Stamp(telemetry.StageConnRead)
		var req request
		var ack pmkv.ShardAck
		traced := false
		if err := json.Unmarshal(line, &req); err != nil {
			buf = wire.AppendResponse(buf[:0], &wire.Response{Error: "bad request: " + err.Error()})
		} else if req.Op == "stats" {
			buf = s.appendStats(buf[:0])
		} else {
			var resp wire.Response
			resp, ack = s.dispatch(sess, req, span)
			traced = span != nil && ack.Shard >= 0 && ack.Err == nil
			buf = wire.AppendResponse(buf[:0], &resp)
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if traced {
			span.Stamp(telemetry.StageAckWritten)
			if req.Op == "get" {
				d := span.Wall[telemetry.StageAckWritten] - span.Wall[telemetry.StageConnRead]
				if d > 0 {
					s.tracer.ObserveReadPath(ack.Shard, ack.Fast, uint64(d))
				}
			}
			s.tracer.Complete(ack.Shard, span, telemetry.Meta{
				Op:      req.Op,
				Sess:    sess.ID,
				Key:     req.Key,
				Durable: ack.Durable,
				Crashed: ack.Crashed,
				OK:      true,
			})
		}
	}
}

// dispatch routes one data operation to its shard and shapes the ack.
// The returned ack's Shard is -1 when the request never reached a shard
// (unknown op, missing key), so the caller knows not to trace it.
func (s *server) dispatch(sess *pmkv.ShardedSession, req request, span *telemetry.Span) (wire.Response, pmkv.ShardAck) {
	none := pmkv.ShardAck{Shard: -1}
	var op pmkv.Op
	switch req.Op {
	case "get":
		op = pmkv.Get
	case "put":
		op = pmkv.Put
	case "del":
		op = pmkv.Delete
	default:
		return wire.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, none
	}
	if req.Key == "" {
		return wire.Response{Error: "missing key"}, none
	}
	ack := s.store.DoSpan(sess, op, req.Key, []byte(req.Value), span)
	switch {
	case ack.Err == pmkv.ErrDraining:
		return wire.Response{Error: "draining"}, ack
	case ack.Err != nil:
		return wire.Response{Error: ack.Err.Error()}, ack
	}
	return wire.Response{OK: true, Found: ack.Resp.Found, Value: ack.Resp.Value, Crashed: ack.Crashed}, ack
}

// appendStats encodes the stats reply (aggregate + per-shard, plus the
// stage breakdown when tracing is on) onto buf. This is the cold path;
// it uses encoding/json.
func (s *server) appendStats(buf []byte) []byte {
	line, err := json.Marshal(s.statz())
	if err != nil {
		return wire.AppendResponse(buf, &wire.Response{Error: "stats: " + err.Error()})
	}
	buf = append(buf, line...)
	return append(buf, '\n')
}

// finalReport closes the store (per-shard drain, or crash snapshot where
// a shard lost power), verifies every shard's recovery invariants, and
// prints per-shard plus combined outcomes.
func (s *server) finalReport() error {
	crashed := s.store.Crashed()
	results, err := s.store.Close()
	verdicts := make([]*dlcheck.Verdict, len(results))
	for i, r := range results {
		verdicts[i] = r.DL
	}
	if err != nil {
		// Close folds checker rejections into its error; the verdict line
		// still prints so the smoke scripts can grep it on either path.
		if line := dlLine(verdicts); line != "" {
			fmt.Fprintf(s.opts.out, "  durable linearizability: %s\n", line)
		}
		return fmt.Errorf("recovery verification FAILED: %w", err)
	}
	mode := "clean drain"
	if crashed {
		mode = "CRASH"
	}
	fmt.Fprintf(s.opts.out, "pmkvd: %s across %d shards\n", mode, len(results))
	fps := make([]string, len(results))
	recovered := 0
	for i, r := range results {
		st := s.collectors[i].Snapshot()
		shardMode := "clean"
		if r.Crashed {
			shardMode = fmt.Sprintf("crashed at cycle %d", r.Cycles)
		}
		fmt.Fprintf(s.opts.out, "  shard %d: %s after %d cycles; publishes %d durable / %d total; %d keys; %d epochs persisted (p50=%d p99=%d cycles)\n",
			r.Shard, shardMode, r.Cycles, r.Report.DurablePublishes, r.Report.TotalPublishes,
			r.Report.RecoveredKeys, st.EpochsPersisted, st.LatencyP50, st.LatencyP99)
		fps[i] = r.Report.Fingerprint
		recovered += r.Report.RecoveredKeys
	}
	fmt.Fprintf(s.opts.out, "  recovered keys: %d; combined fingerprint %.16s\n", recovered, pmkv.CombineFingerprints(fps))
	fmt.Fprintf(s.opts.out, "  recovery invariants: OK\n")
	if line := dlLine(verdicts); line != "" {
		fmt.Fprintf(s.opts.out, "  durable linearizability: %s\n", line)
	}
	if err := s.flightReport(results); err != nil {
		return err
	}
	return nil
}

// flightReport writes the flight-recorder dump and cross-checks it
// against the recovery reports: every non-crashed acked op carried a
// durable watermark at ack time, and the final image's durable prefix
// can only have grown since — so the largest acked watermark per shard
// must be covered by that shard's recovered DurablePublishes. A
// violation means an ack escaped before its write was durable, which is
// exactly the bug class the paper's write-entry discipline exists to
// prevent.
func (s *server) flightReport(results []pmkv.ShardResult) error {
	if !s.tracer.Enabled() {
		return nil
	}
	if stages := s.tracer.StageSummary(); len(stages) > 0 {
		fmt.Fprintf(s.opts.out, "  stage breakdown (pooled across shards, microseconds):\n")
		for _, st := range stages {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(s.opts.out, "    %-12s n=%-8d mean=%-10.1f p50=%-10.1f p90=%-10.1f p99=%.1f\n",
				st.Stage, st.Count, st.MeanUS, st.P50US, st.P90US, st.P99US)
		}
	}
	dump := s.tracer.Dump()
	events := 0
	bad := 0
	for _, fs := range dump.Shards {
		durable := -1
		for _, r := range results {
			if r.Shard == fs.Shard {
				durable = r.Report.DurablePublishes
			}
		}
		events += fs.Retained
		for _, ev := range fs.Events {
			if ev.OK && !ev.Crashed && durable >= 0 && ev.Durable > durable {
				bad++
				fmt.Fprintf(os.Stderr, "pmkvd: shard %d op %s %q acked at watermark %d but only %d publishes recovered durable\n",
					fs.Shard, ev.Op, ev.Key, ev.Durable, durable)
			}
		}
	}
	if s.opts.flightPath != "" {
		f, err := os.Create(s.opts.flightPath)
		if err != nil {
			return fmt.Errorf("flight dump: %w", err)
		}
		if err := s.tracer.WriteDump(f); err != nil {
			f.Close()
			return fmt.Errorf("flight dump: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("flight dump: %w", err)
		}
	}
	where := "not written (-flight-dump unset)"
	if s.opts.flightPath != "" {
		where = s.opts.flightPath
	}
	if bad > 0 {
		fmt.Fprintf(s.opts.out, "  flight recorder: %d events, dump %s, consistency FAILED (%d acks beyond durable prefix)\n",
			events, where, bad)
		return fmt.Errorf("flight recorder: %d acked ops beyond the recovered durable prefix", bad)
	}
	fmt.Fprintf(s.opts.out, "  flight recorder: %d events, dump %s, consistency OK (acked watermarks within durable prefix)\n",
		events, where)
	return nil
}
