// Command pmkvd serves the pmkv durable key-value engine over TCP. Each
// connection is one client session (its operations execute in program
// order on a simulated core); a committer goroutine batches whatever
// requests are pending into one group commit, so concurrent connections
// become concurrent cores contending on bucket heads — inter-thread IDT
// edges, resolved by the paper's barrier hardware.
//
// Protocol: one JSON object per line.
//
//	-> {"op":"put","key":"user:7","value":"alice"}
//	<- {"ok":true,"found":true}
//	-> {"op":"get","key":"user:7"}
//	<- {"ok":true,"found":true,"value":"alice"}
//	-> {"op":"del","key":"user:7"}
//	<- {"ok":true,"found":true}
//	-> {"op":"stats"}
//	<- {"ok":true,"stats":{"cycle":...,"epochs_persisted":...,...}}
//
// On SIGINT/SIGTERM the server stops accepting, drains the engine (every
// outstanding epoch persists), verifies the recovery invariants against
// the final NVRAM image, and prints the report. With -crash-at N the
// simulated machine loses power at cycle N mid-service: clients in the
// batch that hit the instant still get their responses (flagged
// "crashed":true — applied, durability no longer guaranteed), the server
// immediately begins drain, and the shutdown path verifies the crash
// image instead — the full Figure 10 story, live.
//
// -selfcheck N runs the deterministic crash-injection sweep (N seeded
// crash instants under concurrent scripted load) without any networking
// and exits nonzero on the first invariant violation; CI uses it as the
// crash smoke test.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"persistbarriers/internal/obs"
	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/sim"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address")
		cores   = flag.Int("cores", 4, "simulated cores (1..32); sessions map onto cores round-robin")
		buckets = flag.Int("buckets", 64, "hash-table buckets")
		gap     = flag.Uint64("gap", 200, "simulated cycles between request batches")
		crashAt = flag.Uint64("crash-at", 0, "simulated power loss at this cycle (0 = never)")

		selfcheck = flag.Int("selfcheck", 0, "run N crash-injection instants and exit (no server)")
		sessions  = flag.Int("sessions", 6, "selfcheck: concurrent scripted sessions")
		rounds    = flag.Int("rounds", 24, "selfcheck: request batches per session")
		keyspace  = flag.Int("keyspace", 16, "selfcheck: distinct keys")
		seed      = flag.Uint64("seed", 42, "selfcheck: workload seed")
	)
	flag.Parse()

	// Fail fast on nonsense before any machine is built.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmkvd: "+format+"\n", args...)
		os.Exit(2)
	}
	if *cores < 1 || *cores > 32 {
		fail("-cores must be in 1..32, got %d", *cores)
	}
	if *buckets < 1 {
		fail("-buckets must be >= 1, got %d", *buckets)
	}
	if *selfcheck < 0 {
		fail("-selfcheck must be >= 0, got %d", *selfcheck)
	}
	if *sessions < 1 {
		fail("-sessions must be >= 1, got %d", *sessions)
	}
	if *rounds < 1 {
		fail("-rounds must be >= 1, got %d", *rounds)
	}
	if *keyspace < 1 {
		fail("-keyspace must be >= 1, got %d", *keyspace)
	}

	mcfg := pmkv.SmallMachine()
	mcfg.Cores = *cores
	cfg := pmkv.Config{
		Machine:  mcfg,
		Buckets:  *buckets,
		BatchGap: sim.Cycle(*gap),
		CrashAt:  sim.Cycle(*crashAt),
	}
	spec := pmkv.ScriptSpec{
		Sessions: *sessions,
		Rounds:   *rounds,
		KeySpace: *keyspace,
		Seed:     *seed,
	}

	if *selfcheck > 0 {
		if err := runSelfcheck(cfg, spec, *selfcheck); err != nil {
			fmt.Fprintln(os.Stderr, "pmkvd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pmkvd:", err)
		os.Exit(1)
	}
}

// runSelfcheck executes the crash-injection sweep: one clean run to size
// the cycle span, then n evenly spaced crash instants, each fully
// verified (epoch order, prefix closure, KV atomicity, session order) and
// checked for deterministic recovery.
func runSelfcheck(cfg pmkv.Config, spec pmkv.ScriptSpec, n int) error {
	cfg.CrashAt = 0
	clean, err := pmkv.RunScript(cfg, spec)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}
	fmt.Printf("clean run: %d cycles, %d publishes, %d epochs, fingerprint %.16s\n",
		clean.Cycles, clean.Report.TotalPublishes, clean.Report.Epochs, clean.Report.Fingerprint)
	crashed := 0
	for i, at := range pmkv.SweepInstants(clean.Cycles, n) {
		ccfg := cfg
		ccfg.CrashAt = at
		out, err := pmkv.RunScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d: %w", i+1, n, at, err)
		}
		again, err := pmkv.RunScript(ccfg, spec)
		if err != nil {
			return fmt.Errorf("crash %d/%d at cycle %d (replay): %w", i+1, n, at, err)
		}
		if out.Report.Fingerprint != again.Report.Fingerprint {
			return fmt.Errorf("crash %d/%d at cycle %d: recovery not deterministic", i+1, n, at)
		}
		if out.Crashed {
			crashed++
		}
	}
	fmt.Printf("selfcheck OK: %d instants (%d mid-run crashes), all invariants held, recovery deterministic\n",
		n, crashed)
	return nil
}

// request is the wire format of one client line.
type request struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value"`
}

// response is the wire format of one server line. Crashed marks an
// operation that was applied just as the simulated machine lost power:
// the response reflects the volatile state, but durability is no longer
// guaranteed and the server is shutting down.
type response struct {
	OK      bool              `json:"ok"`
	Found   bool              `json:"found,omitempty"`
	Value   string            `json:"value,omitempty"`
	Crashed bool              `json:"crashed,omitempty"`
	Error   string            `json:"error,omitempty"`
	Stats   *obs.ServiceStats `json:"stats,omitempty"`
}

// job carries one request from a connection to the committer.
type job struct {
	req   pmkv.Request
	reply chan jobReply
}

type jobReply struct {
	resp    pmkv.Response
	crashed bool
	err     error
}

// server glues the listener, the per-connection readers, and the single
// committer goroutine that owns the engine's forward progress.
type server struct {
	engine    *pmkv.Engine
	collector *obs.Collector
	ln        net.Listener

	jobs chan job

	mu       sync.Mutex
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup
}

func serve(addr string, cfg pmkv.Config) error {
	collector := obs.NewCollector(0)
	cfg.Machine.Probe = obs.NewProbe(collector)
	engine, err := pmkv.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := &server{
		engine:    engine,
		collector: collector,
		ln:        ln,
		jobs:      make(chan job, 256),
		conns:     make(map[net.Conn]bool),
	}

	committerDone := make(chan struct{})
	go func() {
		defer close(committerDone)
		s.commitLoop()
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "pmkvd: draining...")
		s.beginDrain()
	}()

	fmt.Printf("pmkvd: serving on %s (%d cores, %s barrier, %d buckets)\n",
		ln.Addr(), cfg.Machine.Cores, cfg.Machine.BarrierName(), cfg.Buckets)
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed: drain begins
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}

	s.beginDrain() // idempotent; also covers listener errors
	s.wg.Wait()
	close(s.jobs)
	<-committerDone

	return s.finalReport()
}

// track registers a connection unless the server is draining.
func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = true
	return true
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// beginDrain stops accepting and unblocks connection readers. Readers are
// unblocked with an immediate read deadline rather than a close, so an
// in-flight response (the crashed-batch replies in particular) is still
// written before the handler returns and closes its connection.
func (s *server) beginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
}

// commitLoop is the engine's single writer: it gathers every job waiting
// on the channel into one batch (group commit) and applies it. Requests
// arriving while a batch runs queue up for the next one.
func (s *server) commitLoop() {
	for first := range s.jobs {
		batch := []job{first}
	gather:
		for {
			select {
			case j, ok := <-s.jobs:
				if !ok {
					break gather
				}
				batch = append(batch, j)
			default:
				break gather
			}
		}
		reqs := make([]pmkv.Request, len(batch))
		for i, j := range batch {
			reqs[i] = j.req
		}
		resps, err := s.engine.Apply(reqs)
		if err == pmkv.ErrCrashed && len(resps) == len(batch) {
			// The machine lost power during this batch, but every request
			// was applied: answer the clients (flagged crashed) and start
			// the drain so the process reaches crash-image verification.
			// Later batches fall through below with an error reply.
			for i, j := range batch {
				j.reply <- jobReply{resp: resps[i], crashed: true}
			}
			s.beginDrain()
			continue
		}
		for i, j := range batch {
			r := jobReply{err: err}
			if err == nil {
				r.resp = resps[i]
			}
			j.reply <- r
		}
	}
}

// handle runs one connection: a session bound to a core, requests in
// program order.
func (s *server) handle(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	sess := s.engine.NewSession()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(response{Error: "bad request: " + err.Error()})
			continue
		}
		resp := s.dispatch(sess, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *server) dispatch(sess *pmkv.Session, req request) response {
	var op pmkv.Op
	switch req.Op {
	case "get":
		op = pmkv.Get
	case "put":
		op = pmkv.Put
	case "del":
		op = pmkv.Delete
	case "stats":
		st := s.collector.Snapshot()
		return response{OK: true, Stats: &st}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	if req.Key == "" {
		return response{Error: "missing key"}
	}
	j := job{
		req:   pmkv.Request{Sess: sess, Op: op, Key: req.Key, Value: []byte(req.Value)},
		reply: make(chan jobReply, 1),
	}
	s.jobs <- j
	r := <-j.reply
	if r.err != nil {
		return response{Error: r.err.Error()}
	}
	return response{OK: true, Found: r.resp.Found, Value: string(r.resp.Value), Crashed: r.crashed}
}

// finalReport closes the engine (drain, or crash snapshot if the machine
// lost power), verifies every recovery invariant, and prints the outcome.
func (s *server) finalReport() error {
	crashed := s.engine.Crashed()
	res, err := s.engine.Close()
	if err != nil {
		return err
	}
	rep, err := s.engine.Verify(res)
	if err != nil {
		return fmt.Errorf("recovery verification FAILED: %w", err)
	}
	st := s.collector.Snapshot()
	mode := "clean drain"
	if crashed {
		mode = fmt.Sprintf("CRASH at cycle %d", s.engine.Now())
	}
	fmt.Printf("pmkvd: %s after %d cycles\n", mode, s.engine.Now())
	fmt.Printf("  publishes: %d durable / %d total; recovered keys: %d\n",
		rep.DurablePublishes, rep.TotalPublishes, rep.RecoveredKeys)
	fmt.Printf("  epochs: %d in graph (+%d publish edges), %d persisted (%.3f/kcycle)\n",
		rep.Epochs, rep.PublishEdges, st.EpochsPersisted, st.EpochsPerKcycle())
	fmt.Printf("  persist latency (cycles): p50=%d p90=%d p99=%d (%d samples)\n",
		st.LatencyP50, st.LatencyP90, st.LatencyP99, st.LatencySamples)
	fmt.Printf("  conflicts: %d intra, %d inter, %d eviction\n",
		st.ConflictsIntra, st.ConflictsInter, st.ConflictsEviction)
	fmt.Printf("  recovery invariants: OK (fingerprint %.16s)\n", rep.Fingerprint)
	return nil
}
