package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/proto"
	"persistbarriers/internal/proto/client"
)

// diffOp is one operation of a differential-fuzz case. Multi groups
// (MGET/MSET) run as one binary frame but as individual JSON lines.
type diffOp struct {
	kind byte // 0 get, 1 put, 2 del, 3 mget, 4 mset
	keys []int
	vals []int
}

// decodeDiffCase is a total decoder from fuzz bytes to a bounded op
// stream over a small keyspace: every input is a valid case, so the
// fuzzer explores semantics rather than parse failures.
func decodeDiffCase(data []byte) []diffOp {
	const (
		maxOps   = 24
		keyspace = 8
		valspace = 16
		maxMulti = 4
	)
	var ops []diffOp
	for i := 0; i+2 < len(data) && len(ops) < maxOps; i += 3 {
		op := diffOp{kind: data[i] % 5}
		n := 1
		if op.kind >= 3 {
			n = 1 + int(data[i+1]>>4)%maxMulti
		}
		for j := 0; j < n; j++ {
			op.keys = append(op.keys, (int(data[i+1])+j)%keyspace)
			op.vals = append(op.vals, (int(data[i+2])+j)%valspace)
		}
		ops = append(ops, op)
	}
	return ops
}

// diffOutcome is one op's observable result, protocol-independent.
type diffOutcome struct {
	Found bool
	Value string
	Err   string
}

// diffServer hosts one in-process server over a net.Pipe connection.
type diffServer struct {
	s    *server
	conn net.Conn
}

func newDiffServer(t testing.TB, disableFast bool) *diffServer {
	t.Helper()
	cfg := pmkv.ShardedConfig{
		Shards:          2,
		Engine:          pmkv.Config{Machine: pmkv.SmallMachine(), Buckets: 16, Check: true},
		MaxBatch:        8,
		DisableReadFast: disableFast,
	}
	s, err := newServer(cfg, serverOpts{window: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc, cc := net.Pipe()
	s.track(sc)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handle(sc)
	}()
	return &diffServer{s: s, conn: cc}
}

// finish drains the server and returns the combined recovered-state
// fingerprint, failing the test on any invariant or checker violation.
func (d *diffServer) finish(t testing.TB) string {
	t.Helper()
	d.conn.Close()
	d.s.beginDrain()
	d.s.wg.Wait()
	results, err := d.s.store.Close()
	if err != nil {
		t.Fatalf("recovery verification: %v", err)
	}
	fps := make([]string, len(results))
	for i, r := range results {
		fps[i] = r.Report.Fingerprint
		if r.DL == nil {
			t.Fatalf("shard %d: checker was on but no verdict", r.Shard)
		}
		if vErr := r.DL.Err(); vErr != nil {
			t.Fatalf("shard %d: durable linearizability: %v", r.Shard, vErr)
		}
	}
	return pmkv.CombineFingerprints(fps)
}

func diffKey(i int) string { return fmt.Sprintf("k%d", i) }
func diffVal(i int) string { return fmt.Sprintf("v%d", i) }
func jsonOp(kind byte) string {
	switch kind {
	case 1, 4:
		return "put"
	case 2:
		return "del"
	default:
		return "get"
	}
}

// runJSON drives the ops over the JSON line protocol, one at a time,
// splitting multi groups into individual requests.
func runJSON(t testing.TB, conn net.Conn, ops []diffOp) []diffOutcome {
	t.Helper()
	br := bufio.NewReader(conn)
	var out []diffOutcome
	for _, op := range ops {
		for j := range op.keys {
			req := fmt.Sprintf("{\"op\":%q,\"key\":%q,\"value\":%q}\n",
				jsonOp(op.kind), diffKey(op.keys[j]), diffVal(op.vals[j]))
			if op.kind != 1 && op.kind != 4 {
				req = fmt.Sprintf("{\"op\":%q,\"key\":%q}\n", jsonOp(op.kind), diffKey(op.keys[j]))
			}
			if _, err := conn.Write([]byte(req)); err != nil {
				t.Fatalf("json write: %v", err)
			}
			line, err := br.ReadBytes('\n')
			if err != nil {
				t.Fatalf("json read: %v", err)
			}
			var resp struct {
				OK    bool   `json:"ok"`
				Found bool   `json:"found"`
				Value string `json:"value"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(line, &resp); err != nil {
				t.Fatalf("json resp %q: %v", line, err)
			}
			out = append(out, diffOutcome{Found: resp.Found, Value: resp.Value, Err: resp.Error})
		}
	}
	return out
}

// runBinary drives the same ops over the pipelined binary protocol —
// multi groups as single MGET/MSET frames — and flattens responses back
// to per-op outcomes in submission order.
func runBinary(t testing.TB, conn net.Conn, ops []diffOp) []diffOutcome {
	t.Helper()
	var mu sync.Mutex
	byID := make(map[uint64][]diffOutcome)
	c, err := client.New(conn, client.Options{
		Window: 8,
		OnComplete: func(resp *proto.Response, _, _ int64) {
			var outs []diffOutcome
			if resp.Err != "" {
				outs = append(outs, diffOutcome{Err: resp.Err})
			} else {
				for _, r := range resp.Results {
					outs = append(outs, diffOutcome{Found: r.Found, Value: string(r.Value)})
				}
			}
			mu.Lock()
			byID[resp.ID] = outs
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, op := range ops {
		keys := make([][]byte, len(op.keys))
		vals := make([][]byte, len(op.keys))
		for j := range op.keys {
			keys[j] = []byte(diffKey(op.keys[j]))
			vals[j] = []byte(diffVal(op.vals[j]))
		}
		var err error
		switch op.kind {
		case 0:
			err = c.Get(uint64(id), keys[0])
		case 1:
			err = c.Put(uint64(id), keys[0], vals[0])
		case 2:
			err = c.Del(uint64(id), keys[0])
		case 3:
			err = c.MGet(uint64(id), keys)
		case 4:
			err = c.MSet(uint64(id), keys, vals)
		}
		if err != nil {
			t.Fatalf("binary submit %d: %v", id, err)
		}
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("binary wait: %v", err)
	}
	var out []diffOutcome
	for id, op := range ops {
		outs := byID[uint64(id)]
		if len(outs) != len(op.keys) {
			t.Fatalf("binary op %d: %d outcomes for %d subops", id, len(outs), len(op.keys))
		}
		out = append(out, outs...)
	}
	return out
}

// FuzzProtoVsJSON is the differential fuzz over the two wire protocols:
// the same op stream runs through a JSON-line connection on one server
// and a pipelined binary connection on another (identical engine
// configs, checker on). Both must produce identical per-op outcomes,
// identical recovered-state fingerprints after a clean drain, and clean
// durable-linearizability verdicts. The GET read fast path is toggled
// independently per side from the input bytes, so the fuzzer also pins
// fast-vs-mailbox equivalence: a session with no pending writes must
// observe the same answers whichever path serves its reads. Crash
// instants are excluded by design — batching differences change
// simulated crash timing — so this target pins semantic equivalence of
// the transports, while the dlcheck fuzzer covers crashes.
func FuzzProtoVsJSON(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0})                            // put k0; get k0
	f.Add([]byte{4, 0x35, 7, 3, 0x21, 1, 2, 0, 0})             // mset; mget; del
	f.Add([]byte{1, 1, 1, 1, 1, 2, 2, 1, 0, 0, 1, 0})          // overwrite then delete then read
	f.Add(bytes.Repeat([]byte{3, 0x75, 9}, 8))                 // mget storm
	f.Add([]byte{0, 3, 0, 1, 3, 3, 0, 3, 0, 2, 3, 0, 0, 3, 0}) // read-heavy, toggles flipped
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeDiffCase(data)
		// Fold the input into per-side fast-path toggles: all four on/off
		// combinations appear across the corpus, including asymmetric ones
		// where only one transport serves reads from the index.
		var fold byte
		for _, b := range data {
			fold ^= b
		}

		js := newDiffServer(t, fold&1 != 0)
		jsonOut := runJSON(t, js.conn, ops)
		jsonFP := js.finish(t)

		bs := newDiffServer(t, fold&2 != 0)
		binOut := runBinary(t, bs.conn, ops)
		binFP := bs.finish(t)

		if len(jsonOut) != len(binOut) {
			t.Fatalf("outcome counts differ: json %d, binary %d", len(jsonOut), len(binOut))
		}
		for i := range jsonOut {
			if jsonOut[i] != binOut[i] {
				t.Fatalf("op %d diverged: json %+v, binary %+v", i, jsonOut[i], binOut[i])
			}
		}
		if jsonFP != binFP {
			t.Fatalf("recovered fingerprints diverged: json %.16s, binary %.16s", jsonFP, binFP)
		}
	})
}
