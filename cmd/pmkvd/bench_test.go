package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"testing"

	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/proto"
	"persistbarriers/internal/proto/client"
)

// benchServer starts an in-process server on loopback TCP for one
// benchmark run and hands back its address plus a drain func.
func benchServer(b *testing.B, shards int) (string, func()) {
	b.Helper()
	cfg := pmkv.ShardedConfig{
		Shards: shards,
		Engine: pmkv.Config{Machine: pmkv.SmallMachine(), Buckets: 64},
	}
	// Discard the drain report: bench.sh pipes this output into
	// cmd/benchjson, and report lines interleaved with benchmark result
	// lines would corrupt the parse.
	s, err := newServer(cfg, serverOpts{window: 4096, out: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.run(ln) }()
	return ln.Addr().String(), func() {
		s.beginDrain()
		if err := <-done; err != nil {
			b.Fatalf("drain: %v", err)
		}
	}
}

// BenchmarkProtoPipeline measures live ops/sec through a loopback
// server: the JSON line protocol (one op in flight per connection, a
// write+read syscall pair each) against the pipelined binary protocol
// at several window depths. This is the transport bound the binary
// protocol exists to break; bench.sh records it and CI gates on it.
func BenchmarkProtoPipeline(b *testing.B) {
	b.Run("json", func(b *testing.B) {
		addr, drain := benchServer(b, 2)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		br := bufio.NewReader(conn)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fmt.Fprintf(conn, "{\"op\":\"put\",\"key\":\"k%d\",\"value\":\"v\"}\n", i%64)
			if _, err := br.ReadBytes('\n'); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportOpsPerSec(b)
		conn.Close()
		drain()
	})
	for _, w := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("binary-w%d", w), func(b *testing.B) {
			addr, drain := benchServer(b, 2)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatal(err)
			}
			errs := 0
			c, err := client.New(conn, client.Options{
				Window: w,
				OnComplete: func(resp *proto.Response, _, _ int64) {
					if resp.Err != "" {
						errs++
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			keys := make([][]byte, 64)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("k%d", i))
			}
			val := []byte("v")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Put(uint64(i), keys[i%len(keys)], val); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Wait(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			reportOpsPerSec(b)
			if errs > 0 {
				b.Fatalf("%d ops errored", errs)
			}
			c.Close()
			drain()
		})
	}
}

func reportOpsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
