// Admin endpoint: pmkvd -admin ADDR serves live operational telemetry on
// a second listener, out of band of the data protocol:
//
//	/metrics       Prometheus 0.0.4 text exposition — per-shard pipeline
//	               stage histograms (seconds), persist-latency histograms
//	               (simulated cycles), and shard/engine counters.
//	/statz         JSON superset of the wire "stats" op: aggregate +
//	               per-shard ServiceStats plus the live per-stage
//	               breakdown (pooled and per shard).
//	/debug/pprof/  the standard Go profiling handlers.
//
// The scrape path takes no lock the data path contends on: stage
// histograms are atomic counters folded per-shard, and collector
// snapshots take the same short mutex the wire stats op already does.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"persistbarriers/internal/obs"
	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/telemetry"
)

// statzReply is the /statz payload. It is a strict superset of the wire
// "stats" reply (same field names for the shared parts) with the stage
// tracer's live breakdown attached.
type statzReply struct {
	OK     bool             `json:"ok"`
	Stats  obs.ServiceStats `json:"stats"`
	Shards []shardStats     `json:"shards"`

	// Stages pools every shard's stage-segment histograms (exact merge);
	// ShardStages is the same breakdown per shard.
	Stages      []telemetry.StageStats   `json:"stages,omitempty"`
	ShardStages [][]telemetry.StageStats `json:"shard_stages,omitempty"`
}

// statz assembles the stats snapshot shared by the wire "stats" op and
// the admin /statz handler.
func (s *server) statz() statzReply {
	metrics := s.store.Metrics()
	reply := statzReply{OK: true, Shards: make([]shardStats, len(metrics))}
	per := make([]obs.ServiceStats, len(metrics))
	for i, m := range metrics {
		per[i] = s.collectors[i].Snapshot()
		reply.Shards[i] = shardStats{ShardMetrics: m, Service: per[i]}
	}
	reply.Stats = obs.AggregateServiceStats(per)
	if s.tracer.Enabled() {
		reply.Stages = s.tracer.StageSummary()
		reply.ShardStages = make([][]telemetry.StageStats, s.tracer.Shards())
		for i := range reply.ShardStages {
			reply.ShardStages[i] = s.tracer.ShardStageSummary(i)
		}
	}
	return reply
}

// startAdmin binds the admin listener and serves it in the background.
// The returned listener is closed by the caller at drain time.
func (s *server) startAdmin(addr string) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln, nil
}

func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(s.statz())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.renderMetrics(nil))
}

// renderMetrics composes the full exposition: stage histograms from the
// tracer, persist-latency cycle histograms and engine counters from the
// per-shard collectors, and pipeline gauges from the store.
func (s *server) renderMetrics(dst []byte) []byte {
	dst = s.tracer.AppendStageMetrics(dst)

	metrics := s.store.Metrics()
	per := make([]obs.ServiceStats, len(metrics))
	for i := range metrics {
		per[i] = s.collectors[i].Snapshot()
	}

	dst = telemetry.AppendMetricHeader(dst, "pmkv_persist_latency_cycles", "histogram",
		"Epoch completion-to-durability latency in simulated cycles, per shard.")
	for i, st := range per {
		if len(st.LatencyHist) == 0 {
			continue
		}
		dst = telemetry.AppendCycleHistogram(dst, "pmkv_persist_latency_cycles",
			shardLabel(i), st.LatencyHist)
	}

	counters := []struct {
		name, help string
		value      func(obs.ServiceStats) uint64
	}{
		{"pmkv_txs_total", "Transactions retired, per shard.",
			func(st obs.ServiceStats) uint64 { return st.Txs }},
		{"pmkv_epochs_opened_total", "Epochs opened, per shard.",
			func(st obs.ServiceStats) uint64 { return st.EpochsOpened }},
		{"pmkv_epochs_persisted_total", "Epochs made durable, per shard.",
			func(st obs.ServiceStats) uint64 { return st.EpochsPersisted }},
	}
	for _, c := range counters {
		dst = telemetry.AppendMetricHeader(dst, c.name, "counter", c.help)
		for i, st := range per {
			dst = telemetry.AppendUintSample(dst, c.name, shardLabel(i), c.value(st))
		}
	}

	dst = telemetry.AppendMetricHeader(dst, "pmkv_conflicts_total", "counter",
		"Epoch conflicts by kind, per shard.")
	for i, st := range per {
		sl := strconv.Itoa(i)
		dst = telemetry.AppendUintSample(dst, "pmkv_conflicts_total",
			fmt.Sprintf("shard=%q,kind=\"intra\"", sl), st.ConflictsIntra)
		dst = telemetry.AppendUintSample(dst, "pmkv_conflicts_total",
			fmt.Sprintf("shard=%q,kind=\"inter\"", sl), st.ConflictsInter)
		dst = telemetry.AppendUintSample(dst, "pmkv_conflicts_total",
			fmt.Sprintf("shard=%q,kind=\"eviction\"", sl), st.ConflictsEviction)
	}

	gauges := []struct {
		name, help string
		value      func(pmkv.ShardMetrics) float64
	}{
		{"pmkv_shard_cycle", "Shard simulated clock.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.Cycle) }},
		{"pmkv_shard_queue_depth", "Requests waiting in the shard mailbox.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.QueueDepth) }},
		{"pmkv_shard_mailbox_capacity", "Shard mailbox capacity.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.MailboxCap) }},
		{"pmkv_shard_publishes_durable", "Durable-prefix watermark (publishes covered).",
			func(m pmkv.ShardMetrics) float64 { return float64(m.Durable) }},
		{"pmkv_shard_publishes_total", "Publishes issued.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.Total) }},
		{"pmkv_shard_batches_total", "Group commits retired.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.Batches) }},
		{"pmkv_shard_avg_batch", "Mean requests per group commit.",
			func(m pmkv.ShardMetrics) float64 { return m.AvgBatch }},
		{"pmkv_shard_batch_limit", "Live adaptive batch-size limit.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.BatchLimit) }},
		{"pmkv_read_fast_hits_total", "GETs served from the committed-state index, bypassing the mailbox.",
			func(m pmkv.ShardMetrics) float64 { return float64(m.FastHits) }},
		{"pmkv_read_fallback_total", "GETs that fell back to the mailbox (pending writes, drain, or crash).",
			func(m pmkv.ShardMetrics) float64 { return float64(m.FastFallbacks) }},
		{"pmkv_read_index_published", "Mutation records folded into the read index (durable watermark).",
			func(m pmkv.ShardMetrics) float64 { return float64(m.ReadPublished) }},
	}
	counterNames := map[string]bool{
		"pmkv_shard_batches_total":   true,
		"pmkv_shard_publishes_total": true,
		"pmkv_read_fast_hits_total":  true,
		"pmkv_read_fallback_total":   true,
	}
	for _, g := range gauges {
		typ := "gauge"
		if counterNames[g.name] {
			typ = "counter"
		}
		dst = telemetry.AppendMetricHeader(dst, g.name, typ, g.help)
		for _, m := range metrics {
			dst = telemetry.AppendSample(dst, g.name, shardLabel(m.Shard), g.value(m))
		}
	}

	dst = telemetry.AppendMetricHeader(dst, "pmkv_shard_batch_size", "histogram",
		"Requests per group commit, per shard.")
	for _, m := range metrics {
		dst = telemetry.AppendHistogram(dst, "pmkv_shard_batch_size",
			shardLabel(m.Shard), m.BatchSizes, 1)
	}
	return dst
}

func shardLabel(i int) string {
	return fmt.Sprintf("shard=%q", strconv.Itoa(i))
}
