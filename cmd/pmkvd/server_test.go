package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/proto"
	"persistbarriers/internal/proto/client"
)

// startTestServer runs a server in-process on an ephemeral port and
// returns its address plus a done channel carrying run()'s error.
func startTestServer(t *testing.T, cfg pmkv.ShardedConfig, opts serverOpts) (*server, string, chan error) {
	t.Helper()
	s, err := newServer(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.run(ln) }()
	return s, ln.Addr().String(), done
}

func waitServer(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("server did not finish draining")
		return nil
	}
}

// TestBinaryProtocolRoundTrip drives pipelined puts/gets/dels and a
// multi-op frame through a live server and checks every response, then
// drains cleanly.
func TestBinaryProtocolRoundTrip(t *testing.T) {
	s, addr, done := startTestServer(t, pmkv.ShardedConfig{Shards: 2}, serverOpts{window: 16})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	type reply struct {
		errMsg  string
		results []proto.Result
	}
	var mu sync.Mutex
	replies := make(map[uint64]reply)
	c, err := client.New(conn, client.Options{
		Window: 16,
		OnComplete: func(resp *proto.Response, _, _ int64) {
			r := reply{errMsg: resp.Err}
			for _, res := range resp.Results {
				res.Value = append([]byte(nil), res.Value...)
				r.results = append(r.results, res)
			}
			mu.Lock()
			replies[resp.ID] = r
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 40
	id := uint64(0)
	for i := 0; i < n; i++ {
		if err := c.Put(id, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		id++
	}
	getBase := id
	for i := 0; i < n; i++ {
		if err := c.Get(id, []byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
		id++
	}
	mgetID := id
	if err := c.MGet(id, [][]byte{[]byte("k0"), []byte("k1"), []byte("no-such")}); err != nil {
		t.Fatal(err)
	}
	id++
	delID := id
	if err := c.Del(id, []byte("k0")); err != nil {
		t.Fatal(err)
	}
	id++
	badID := id
	if err := c.Get(id, []byte("")); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	mu.Lock()
	for i := 0; i < n; i++ {
		r := replies[getBase+uint64(i)]
		if r.errMsg != "" || len(r.results) != 1 || !r.results[0].Found ||
			string(r.results[0].Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%d: %+v", i, r)
		}
	}
	mg := replies[mgetID]
	if mg.errMsg != "" || len(mg.results) != 3 || !mg.results[0].Found || !mg.results[1].Found || mg.results[2].Found {
		t.Fatalf("mget: %+v", mg)
	}
	if r := replies[delID]; r.errMsg != "" || !r.results[0].Found {
		t.Fatalf("del: %+v", r)
	}
	if r := replies[badID]; !strings.Contains(r.errMsg, "missing key") {
		t.Fatalf("empty-key reply: %+v (want missing key error)", r)
	}
	mu.Unlock()

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	s.beginDrain()
	if err := waitServer(t, done); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestAutoDetectBothProtocols: a JSON-line connection and a binary
// connection work side by side against one server.
func TestAutoDetectBothProtocols(t *testing.T) {
	s, addr, done := startTestServer(t, pmkv.ShardedConfig{Shards: 1}, serverOpts{window: 8})

	// JSON connection writes a key...
	jc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(jc, "{\"op\":\"put\",\"key\":\"shared\",\"value\":\"from-json\"}\n")
	var jresp struct {
		OK    bool   `json:"ok"`
		Found bool   `json:"found"`
		Value string `json:"value"`
		Error string `json:"error"`
	}
	jr := bufio.NewReader(jc)
	line, err := jr.ReadBytes('\n')
	if err != nil || json.Unmarshal(line, &jresp) != nil || !jresp.OK {
		t.Fatalf("json put: %q err=%v", line, err)
	}

	// ...and a binary connection reads it back.
	bcn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	c, err := client.New(bcn, client.Options{
		Window: 8,
		OnComplete: func(resp *proto.Response, _, _ int64) {
			if resp.Err != "" {
				got <- "error: " + resp.Err
				return
			}
			got <- string(resp.Results[0].Value)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Get(1, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != "from-json" {
		t.Fatalf("binary get over json put = %q", v)
	}
	c.Close()
	jc.Close()

	s.beginDrain()
	if err := waitServer(t, done); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDrainWithStalledPipelinedClient is the PR 3 drain-unblock
// regression extended to the binary path: a client with a full pipeline
// of in-flight writes stops reading responses entirely; the drain must
// still complete (write deadline flips the writer to discard mode,
// completions keep recycling the window, the reader unblocks via read
// deadline) with the store's invariants intact.
func TestDrainWithStalledPipelinedClient(t *testing.T) {
	s, addr, done := startTestServer(t, pmkv.ShardedConfig{Shards: 2},
		serverOpts{window: 8, writeTimeout: 200 * time.Millisecond})

	// Seed a value big enough that a handful of pipelined GET responses
	// overflow any socket buffer, wedging the server's writer mid-flush.
	seed, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 512<<10)
	for i := range big {
		big[i] = byte(i)
	}
	sc, err := client.New(seed, client.Options{Window: 2, OnComplete: func(*proto.Response, int64, int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Put(1, []byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Raw frames, bypassing the client library: pipeline GETs for the big
	// value and never read a single response byte.
	var buf []byte
	for i := 0; i < 64; i++ {
		buf = proto.AppendGet(buf, uint64(i), []byte("big"))
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to dispatch and wedge its writer (64 x
	// 512KB of responses cannot fit any socket buffer), then drain. The
	// server must not wait on us.
	time.Sleep(300 * time.Millisecond)
	s.beginDrain()
	if err := waitServer(t, done); err != nil {
		t.Fatalf("drain with stalled client: %v", err)
	}
	conn.Close()
}

// TestMaxConnsLimit: connections beyond -maxconns are refused (closed
// immediately), and slots free up when a connection ends.
func TestMaxConnsLimit(t *testing.T) {
	s, addr, done := startTestServer(t, pmkv.ShardedConfig{Shards: 1},
		serverOpts{window: 4, maxConns: 2})

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// ping proves the server kept the connection: a refused conn is
	// closed without a response.
	ping := func(c net.Conn, want bool) bool {
		t.Helper()
		fmt.Fprintf(c, "{\"op\":\"get\",\"key\":\"x\"}\n")
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, err := bufio.NewReader(c).ReadBytes('\n')
		return (err == nil) == want
	}

	c1, c2 := dial(), dial()
	if !ping(c1, true) || !ping(c2, true) {
		t.Fatal("connections under the limit were not served")
	}
	// The third connection must be refused. Acceptance races tracking, so
	// allow the refusal to surface on the first read.
	c3 := dial()
	if !ping(c3, false) {
		t.Fatal("connection beyond -maxconns was served")
	}
	c3.Close()
	// Freeing a slot readmits new connections.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	admitted := false
	for time.Now().Before(deadline) {
		c4 := dial()
		if ping(c4, true) {
			admitted = true
			c4.Close()
			break
		}
		c4.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !admitted {
		t.Fatal("slot was not freed after a connection closed")
	}
	c2.Close()

	s.beginDrain()
	if err := waitServer(t, done); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestReadIdleTimeout: with -conn-timeout set, a silent connection is
// dropped and the server can drain without waiting on it.
func TestReadIdleTimeout(t *testing.T) {
	s, addr, done := startTestServer(t, pmkv.ShardedConfig{Shards: 1},
		serverOpts{window: 4, connTimeout: 150 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Say nothing. The server should hang up on us.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection was not dropped")
	}
	conn.Close()

	s.beginDrain()
	if err := waitServer(t, done); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
