// The pipelined binary connection path. Each connection splits into two
// goroutines mirroring the shard workers' own pipelining: the reader
// decodes frames and dispatches their ops asynchronously (DoAsync), the
// writer drains a shared completion queue, assembles responses the
// moment their last subop acks — out of order across requests — and
// flushes them in batches. A window semaphore bounds in-flight subops to
// the completion queue's capacity, so shard workers never block
// delivering an ack; that invariant is what lets one connection overlap
// hundreds of persists the way the paper's epochs overlap barriers.
package main

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/proto"
	"persistbarriers/internal/telemetry"
)

// binFlushThreshold forces a mid-queue flush once this many response
// bytes are buffered; otherwise the writer flushes whenever the
// completion queue runs dry.
const binFlushThreshold = 64 << 10

// binRec tracks one in-flight request frame. The reader fully
// initializes a record before dispatching any of its subops; after that
// only the writer touches it (through completions), so records need no
// lock. Slots recycle through binConn.free.
type binRec struct {
	id        uint64
	op        proto.Opcode
	multi     bool
	remaining uint32
	results   []proto.Result
	errMsg    string
	crashed   bool
	fast      bool // every subop served from the read index
	shard     int  // subop 0's shard (-1: never routed)
	durable   int
	key0      string // subop 0's key, for the tracer (copied: frames reuse their buffer)
	traced    bool
}

// binConn is one pipelined connection's shared state.
type binConn struct {
	s    *server
	conn net.Conn
	sess *pmkv.ShardedSession

	// tokens holds the free window slots, one per in-flight subop: the
	// reader takes one before each dispatch (or synthetic completion),
	// the writer returns one per completion received. Outstanding subops
	// therefore never exceed cap(done), which is what guarantees the
	// shard workers' unconditional completion sends cannot block.
	tokens chan struct{}
	done   chan pmkv.Completion
	free   chan uint32 // recycled record slots
	recs   []binRec
	spans  []telemetry.Span // parallel to recs; stamped only when tracing
}

// binTag packs a record slot and subop index into a completion tag.
func binTag(rec uint32, sub int) uint64 { return uint64(rec)<<32 | uint64(uint32(sub)) }

// handleBinary runs one binary connection's reader side and owns its
// teardown: by the time it returns, every dispatched op has completed
// and the writer has flushed (or discarded) every response.
func (s *server) handleBinary(conn net.Conn, br *bufio.Reader) {
	win := s.opts.window
	bc := &binConn{
		s:      s,
		conn:   conn,
		sess:   s.store.NewSession(),
		tokens: make(chan struct{}, win),
		done:   make(chan pmkv.Completion, win),
		free:   make(chan uint32, win),
		recs:   make([]binRec, win),
	}
	for i := 0; i < win; i++ {
		bc.tokens <- struct{}{}
		bc.free <- uint32(i)
	}
	if s.tracer.Enabled() {
		bc.spans = make([]telemetry.Span, win)
	}
	writerDone := make(chan struct{})
	go bc.writeLoop(writerDone)

	fr := proto.NewFrameReader(br)
	var req proto.Request
	for {
		s.armReadDeadline(conn)
		magic, payload, err := fr.Next()
		if err != nil || magic != proto.FrameRequest {
			break
		}
		if err := proto.ParseRequest(payload, &req); err != nil {
			// Framing is suspect past a parse error; unlike the JSON
			// path's in-band "unknown op", the connection is done.
			break
		}
		bc.dispatch(&req)
	}

	// Teardown: reclaiming the whole window proves every dispatched
	// subop's completion has been received by the writer; closing done
	// then lets the writer flush its last responses and exit.
	for i := 0; i < win; i++ {
		<-bc.tokens
	}
	close(bc.done)
	<-writerDone
}

// dispatch routes one decoded frame. It acquires one window slot per
// subop and one record, fully initializes the record, then feeds the
// shard mailboxes; any synchronous refusal (draining, bad key) becomes a
// synthetic completion so the writer's accounting never forks.
func (bc *binConn) dispatch(req *proto.Request) {
	n := len(req.Keys)
	if n > len(bc.recs) {
		// More subops than the window could ever complete: answer without
		// dispatching (the reader takes the frame's slots as one).
		bc.reject(req, fmt.Sprintf("frame ops %d exceed window %d", n, len(bc.recs)))
		return
	}
	for _, k := range req.Keys {
		if len(k) == 0 {
			bc.reject(req, "missing key")
			return
		}
	}
	for i := 0; i < n; i++ {
		<-bc.tokens
	}
	ri := <-bc.free
	rec := &bc.recs[ri]
	rec.init(req, n)
	// Everything the writer reads off a completion — including the
	// trace routing below — must be in place before the first DoAsync:
	// the moment it returns, the shard worker may already have delivered
	// the completion and the writer may be reading this record.
	var span *telemetry.Span
	if bc.spans != nil {
		span = &bc.spans[ri]
		span.Reset()
		span.Stamp(telemetry.StageConnRead)
		rec.key0 = string(req.Keys[0])
		rec.shard = pmkv.ShardOf(rec.key0, bc.s.store.Shards())
		rec.traced = true
	}
	refused := false
	for i := 0; i < n; i++ {
		if refused {
			bc.synthesize(ri, i, pmkv.ErrDraining)
			continue
		}
		op := pmkv.Get
		switch req.Op {
		case proto.OpPut, proto.OpMSet:
			op = pmkv.Put
		case proto.OpDel:
			op = pmkv.Delete
		}
		// The frame buffer is reused by the next read while these ops are
		// still in shard mailboxes: key and value must be copied out. (The
		// key copy doubles as the engine's string key; puts need the value
		// copy regardless.)
		key := string(req.Keys[i])
		var val []byte
		if req.Vals[i] != nil {
			val = append([]byte(nil), req.Vals[i]...)
		}
		sp := span
		if i > 0 {
			sp = nil // one span per frame; subop 0 carries it
		}
		_, err := bc.s.store.DoAsync(bc.sess, op, key, val, sp, binTag(ri, i), bc.done)
		if err != nil {
			bc.synthesize(ri, i, err)
			if err == pmkv.ErrDraining {
				refused = true // fail the frame's remaining ops fast
			}
		}
	}
}

func (r *binRec) init(req *proto.Request, n int) {
	r.id = req.ID
	r.op = req.Op
	r.multi = req.Op.Multi()
	r.remaining = uint32(n)
	if cap(r.results) < n {
		r.results = make([]proto.Result, n)
	}
	r.results = r.results[:n]
	for i := range r.results {
		r.results[i] = proto.Result{}
	}
	r.errMsg = ""
	r.crashed = false
	r.fast = true
	r.shard = -1
	r.durable = 0
	r.key0 = ""
	r.traced = false
}

// reject answers a frame that was never dispatched. The reader holds one
// window slot for it, so the synthetic completion cannot overrun done.
func (bc *binConn) reject(req *proto.Request, msg string) {
	<-bc.tokens
	ri := <-bc.free
	bc.recs[ri].init(req, 1)
	bc.synthesize(ri, 0, fmt.Errorf("%s", msg))
}

// synthesize delivers a reader-side completion for a subop that never
// reached a shard. The reader holds the subop's window slot, which is
// exactly the free done capacity the send consumes.
func (bc *binConn) synthesize(ri uint32, sub int, err error) {
	bc.done <- pmkv.Completion{Tag: binTag(ri, sub), Ack: pmkv.ShardAck{Shard: -1, Err: err}}
}

// apply folds one subop's ack into its record.
func (bc *binConn) apply(rec *binRec, sub int, ack pmkv.ShardAck) {
	switch {
	case ack.Err == pmkv.ErrDraining:
		if rec.errMsg == "" {
			rec.errMsg = "draining"
		}
	case ack.Err != nil:
		if rec.errMsg == "" {
			rec.errMsg = ack.Err.Error()
		}
	default:
		r := &rec.results[sub]
		r.Found = ack.Resp.Found
		r.Value = ack.Resp.Value
		r.HasValue = len(ack.Resp.Value) > 0
		if ack.Crashed {
			rec.crashed = true
		}
		if !ack.Fast {
			rec.fast = false
		}
		if sub == 0 {
			rec.durable = ack.Durable
		}
	}
}

// writeLoop drains completions and writes responses. A response is
// encoded the moment its frame's last subop completes — out of order
// across frames — and buffered; the buffer flushes when the completion
// queue runs dry (nothing to piggyback on) or past binFlushThreshold.
// A flush failure (stalled or gone client) flips the connection into
// discard mode: completions keep draining and window slots keep
// recycling so the shard workers and the reader's teardown never wedge
// on a dead peer — the PR 3 drain guarantee, extended to pipelining.
func (bc *binConn) writeLoop(writerDone chan struct{}) {
	defer close(writerDone)
	wbuf := make([]byte, 0, 16<<10)
	var resp proto.Response
	var unflushed []uint32 // records encoded into wbuf
	discard := false

	flush := func() {
		if len(wbuf) > 0 && !discard {
			bc.conn.SetWriteDeadline(time.Now().Add(bc.s.opts.writeTimeout))
			if _, err := bc.conn.Write(wbuf); err != nil {
				discard = true
				bc.conn.Close() // unblock the reader too
			}
		}
		for _, ri := range unflushed {
			rec := &bc.recs[ri]
			if rec.traced && !discard {
				span := &bc.spans[ri]
				span.Stamp(telemetry.StageAckWritten)
				if (rec.op == proto.OpGet || rec.op == proto.OpMGet) && rec.errMsg == "" {
					d := span.Wall[telemetry.StageAckWritten] - span.Wall[telemetry.StageConnRead]
					if d > 0 {
						bc.s.tracer.ObserveReadPath(rec.shard, rec.fast, uint64(d))
					}
				}
				bc.s.tracer.Complete(rec.shard, span, telemetry.Meta{
					Op:      rec.op.String(),
					Sess:    bc.sess.ID,
					Key:     rec.key0,
					Durable: rec.durable,
					Crashed: rec.crashed,
					OK:      rec.errMsg == "",
				})
			}
			bc.free <- ri
		}
		unflushed = unflushed[:0]
		wbuf = wbuf[:0]
	}

	for {
		var c pmkv.Completion
		var ok bool
		select {
		case c, ok = <-bc.done:
		default:
			flush()
			c, ok = <-bc.done
		}
		if !ok {
			flush()
			return
		}
		ri, sub := uint32(c.Tag>>32), int(uint32(c.Tag))
		rec := &bc.recs[ri]
		bc.apply(rec, sub, c.Ack)
		rec.remaining--
		bc.tokens <- struct{}{}
		if rec.remaining == 0 {
			resp.ID = rec.id
			resp.Multi = rec.multi
			resp.Err = rec.errMsg
			resp.Crashed = rec.crashed
			resp.OK = rec.errMsg == ""
			resp.Results = rec.results
			wbuf = proto.AppendResponse(wbuf, &resp)
			unflushed = append(unflushed, ri)
			if len(wbuf) >= binFlushThreshold {
				flush()
			}
		}
	}
}
