// Command persistsim runs one simulation: a chosen workload on a chosen
// persist-barrier configuration, printing the run summary. It is the
// exploratory front end to the library; cmd/figures reproduces the paper's
// full evaluation.
//
// Examples:
//
//	persistsim -workload queue -barrier LB++ -threads 32 -ops 100
//	persistsim -workload ssca2 -barrier LB -bulk 10000 -logging -ops 20000
//	persistsim -workload hash -barrier NP
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"persistbarriers/internal/cache"
	"persistbarriers/internal/machine"
	"persistbarriers/internal/trace"
	"persistbarriers/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "queue", "workload: hash|queue|rbtree|sdg|sps or a BSP app (canneal, ssca2, ...)")
		barrier = flag.String("barrier", "LB++", "barrier/model: NP|SP|WT|EP|LB|LB+IDT|LB+PF|LB++")
		threads = flag.Int("threads", 8, "threads/cores (1..32)")
		ops     = flag.Int("ops", 50, "operations per thread (transactions for micro-benchmarks, memory ops for apps)")
		seed    = flag.Uint64("seed", 42, "workload seed")
		bulk    = flag.Int("bulk", 0, "bulk-mode BSP: hardware epoch size in stores (0 = programmer barriers)")
		logging = flag.Bool("logging", false, "enable hardware undo logging (bulk mode)")
		clflush = flag.Bool("clflush", false, "use invalidating (clflush-style) persists")
		verbose = flag.Bool("v", false, "print per-cause stall and conflict breakdown")
	)
	flag.Parse()

	cfg := machine.DefaultConfig()
	cfg.Cores = *threads
	switch strings.ToUpper(*barrier) {
	case "NP":
		cfg.Model = machine.NP
	case "SP":
		cfg.Model = machine.SP
	case "WT":
		cfg.Model = machine.WT
	case "EP":
		cfg.Model = machine.EP
	case "LB":
		cfg.Model = machine.LB
	case "LB+IDT":
		cfg.Model = machine.LB
		cfg.IDT = true
	case "LB+PF":
		cfg.Model = machine.LB
		cfg.PF = true
	case "LB++":
		cfg.Model = machine.LB
		cfg.IDT, cfg.PF = true, true
	default:
		fmt.Fprintf(os.Stderr, "persistsim: unknown barrier %q\n", *barrier)
		os.Exit(2)
	}
	if *bulk > 0 {
		if cfg.Model != machine.LB {
			fmt.Fprintln(os.Stderr, "persistsim: -bulk requires an LB-family barrier")
			os.Exit(2)
		}
		cfg.BulkEpochStores = *bulk
		cfg.Logging = *logging
	}
	if *clflush {
		cfg.FlushMode = cache.Invalidating
	}

	spec := workload.Spec{Threads: *threads, OpsPerThread: *ops, Seed: *seed}
	var p *trace.Program
	var err error
	if gen, ok := workload.Microbenchmarks()[*wl]; ok {
		p, err = gen(spec)
	} else if prof, ok := workload.Apps()[*wl]; ok {
		p, err = prof.Generate(spec)
	} else {
		fmt.Fprintf(os.Stderr, "persistsim: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		os.Exit(1)
	}

	m, err := machine.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		os.Exit(1)
	}
	if err := m.Load(p); err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		os.Exit(1)
	}
	r, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload:        %s (%d threads x %d ops, %d trace ops, %d stores)\n",
		*wl, *threads, *ops, p.Ops(), p.Stores())
	fmt.Printf("barrier:         %s", r.Barrier)
	if cfg.BulkEpochStores > 0 {
		fmt.Printf(" (bulk BSP, %d stores/epoch, logging=%v)", cfg.BulkEpochStores, cfg.Logging)
	}
	fmt.Println()
	if r.Deadlocked {
		fmt.Println("RESULT:          DEADLOCKED (see §3.3 — enable splitting or fix barrier placement)")
		os.Exit(1)
	}
	fmt.Printf("exec cycles:     %d (drain at %d)\n", r.ExecCycles, r.DrainCycles)
	fmt.Printf("transactions:    %d (%.3f per kilocycle)\n", r.Transactions, r.Throughput())
	fmt.Printf("epochs:          %d persisted, %.1f%% conflicting, %d IDT deps, %d splits\n",
		r.Epochs.Persisted, 100*r.Epochs.ConflictingFraction(), r.Epochs.Deps, r.Epochs.Splits)
	fmt.Printf("conflicts:       %d intra, %d inter, %d eviction (%d IDT fallbacks)\n",
		r.Conflicts.Intra, r.Conflicts.Inter, r.Conflicts.Eviction, r.Conflicts.IDTFallbacks)
	fmt.Printf("NVRAM:           %d line persists, %d log writes, %d reads\n",
		r.PersistedLines, r.LogWrites, r.MC.Reads)
	fmt.Printf("caches:          L1 %.1f%% hit, LLC %.1f%% hit\n",
		hitPct(r.L1.Hits, r.L1.Misses), hitPct(r.LLC.Hits, r.LLC.Misses))
	if *verbose {
		fmt.Println("stalls (cycles summed over cores):")
		for cause := machine.StallIntra; cause <= machine.StallWriteBuffer; cause++ {
			fmt.Printf("  %-14s %d\n", cause, r.StallTotal(cause))
		}
	}
}

func hitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
