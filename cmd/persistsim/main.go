// Command persistsim runs one simulation: a chosen workload on a chosen
// persist-barrier configuration, printing the run summary. It is the
// exploratory front end to the library; cmd/figures reproduces the paper's
// full evaluation.
//
// Observability: -trace writes a Chrome trace-event JSON (load it in
// Perfetto or chrome://tracing to see per-core epoch spans, per-bank
// flush spans, and conflict markers on the simulated-cycle timebase);
// -metrics writes cycle-windowed time-series metrics (CSV, or JSON when
// the path ends in .json) with the window size set by -window; -json
// prints the run summary as machine-readable JSON on stdout. Failure
// diagnostics go to stderr so stdout stays parseable.
//
// Repeat mode: -repeat N runs the same configuration N times with seeds
// seed, seed+1, ..., seed+N-1 fanned across the -j worker pool (the
// harness sweep engine), printing one summary line per run in seed order
// — or a JSON array of run summaries with -json. Observability exports
// stay per-run: with -trace/-metrics each run gets its own private probe
// and its own output file (a ".seedN" suffix is inserted before the
// extension), so concurrent machines never share a sink.
//
// Examples:
//
//	persistsim -workload queue -barrier LB++ -threads 32 -ops 100
//	persistsim -workload queue -barrier LB++ -trace out.json -metrics out.csv -window 5000
//	persistsim -workload ssca2 -barrier LB -bulk 10000 -logging -ops 20000
//	persistsim -workload hash -barrier NP -json
//	persistsim -workload queue -barrier LB++ -repeat 8 -j 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"persistbarriers/internal/cache"
	"persistbarriers/internal/harness"
	"persistbarriers/internal/machine"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/trace"
	"persistbarriers/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "queue", "workload: hash|queue|rbtree|sdg|sps or a BSP app (canneal, ssca2, ...)")
		barrier = flag.String("barrier", "LB++", "barrier/model: NP|SP|WT|EP|LB|LB+IDT|LB+PF|LB++")
		threads = flag.Int("threads", 8, "threads/cores (1..32)")
		ops     = flag.Int("ops", 50, "operations per thread (transactions for micro-benchmarks, memory ops for apps)")
		seed    = flag.Uint64("seed", 42, "workload seed")
		bulk    = flag.Int("bulk", 0, "bulk-mode BSP: hardware epoch size in stores (0 = programmer barriers)")
		logging = flag.Bool("logging", false, "enable hardware undo logging (bulk mode)")
		clflush = flag.Bool("clflush", false, "use invalidating (clflush-style) persists")
		verbose = flag.Bool("v", false, "print per-cause stall and conflict breakdown")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-viewable) to this file")
		metricsOut = flag.String("metrics", "", "write cycle-windowed metrics to this file (CSV, or JSON if it ends in .json)")
		window     = flag.Uint64("window", uint64(obs.DefaultWindow), "metrics window size in cycles")
		jsonOut    = flag.Bool("json", false, "print the run summary as JSON on stdout")
		repeat     = flag.Int("repeat", 1, "run N times with seeds seed..seed+N-1 (one summary per run)")
		parallel   = flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size for -repeat runs")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
	)
	flag.Parse()
	if err := startProfiles(*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}
	defer stopProfiles()

	// Reject bad inputs before any machine or worker pool is built.
	if *threads < 1 || *threads > 32 {
		fmt.Fprintf(os.Stderr, "persistsim: -threads must be in 1..32, got %d\n", *threads)
		exit(2)
	}
	if *ops < 1 {
		fmt.Fprintf(os.Stderr, "persistsim: -ops must be >= 1, got %d\n", *ops)
		exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "persistsim: -j must be >= 1, got %d\n", *parallel)
		exit(2)
	}
	if *bulk < 0 {
		fmt.Fprintf(os.Stderr, "persistsim: -bulk must be >= 0, got %d\n", *bulk)
		exit(2)
	}

	cfg := machine.DefaultConfig()
	cfg.Cores = *threads
	switch strings.ToUpper(*barrier) {
	case "NP":
		cfg.Model = machine.NP
	case "SP":
		cfg.Model = machine.SP
	case "WT":
		cfg.Model = machine.WT
	case "EP":
		cfg.Model = machine.EP
	case "LB":
		cfg.Model = machine.LB
	case "LB+IDT":
		cfg.Model = machine.LB
		cfg.IDT = true
	case "LB+PF":
		cfg.Model = machine.LB
		cfg.PF = true
	case "LB++":
		cfg.Model = machine.LB
		cfg.IDT, cfg.PF = true, true
	default:
		fmt.Fprintf(os.Stderr, "persistsim: unknown barrier %q\n", *barrier)
		exit(2)
	}
	if *bulk > 0 {
		if cfg.Model != machine.LB {
			fmt.Fprintln(os.Stderr, "persistsim: -bulk requires an LB-family barrier")
			exit(2)
		}
		cfg.BulkEpochStores = *bulk
		cfg.Logging = *logging
	}
	if *clflush {
		cfg.FlushMode = cache.Invalidating
	}

	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "persistsim: -repeat must be >= 1")
		exit(2)
	}
	if *repeat > 1 {
		runRepeat(cfg, *wl, *threads, *ops, *seed, *repeat, *parallel,
			*traceOut, *metricsOut, *window, *jsonOut, *verbose)
		return
	}

	var (
		tracer  *obs.ChromeTracer
		sampler *obs.Sampler
		sinks   []obs.Sink
	)
	if *traceOut != "" {
		tracer = obs.NewChromeTracer()
		sinks = append(sinks, tracer)
	}
	if *metricsOut != "" {
		sampler = obs.NewSampler(sim.Cycle(*window))
		sinks = append(sinks, sampler)
	}
	if len(sinks) > 0 {
		cfg.Probe = obs.NewProbe(sinks...)
	}

	spec := workload.Spec{Threads: *threads, OpsPerThread: *ops, Seed: *seed}
	var p *trace.Program
	var err error
	if gen, ok := workload.Microbenchmarks()[*wl]; ok {
		p, err = gen(spec)
	} else if prof, ok := workload.Apps()[*wl]; ok {
		p, err = prof.Generate(spec)
	} else {
		fmt.Fprintf(os.Stderr, "persistsim: unknown workload %q\n", *wl)
		exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}

	m, err := machine.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}
	if err := m.Load(p); err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}
	r, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}

	// Exports are written even for deadlocked runs — a trace of the
	// cycle the machine wedged at is exactly the debugging artifact.
	if tracer != nil {
		if err := writeFile(*traceOut, tracer.Export); err != nil {
			fmt.Fprintln(os.Stderr, "persistsim:", err)
			exit(1)
		}
	}
	if sampler != nil {
		export := sampler.WriteCSV
		if strings.HasSuffix(*metricsOut, ".json") {
			export = sampler.WriteJSON
		}
		if err := writeFile(*metricsOut, export); err != nil {
			fmt.Fprintln(os.Stderr, "persistsim:", err)
			exit(1)
		}
	}

	if *jsonOut {
		printJSON(os.Stdout, *wl, spec, p, cfg, r)
		if r.Deadlocked {
			fmt.Fprintln(os.Stderr, "persistsim: DEADLOCKED (see §3.3 — enable splitting or fix barrier placement)")
			exit(1)
		}
		return
	}

	fmt.Printf("workload:        %s (%d threads x %d ops, %d trace ops, %d stores)\n",
		*wl, *threads, *ops, p.Ops(), p.Stores())
	fmt.Printf("barrier:         %s", r.Barrier)
	if cfg.BulkEpochStores > 0 {
		fmt.Printf(" (bulk BSP, %d stores/epoch, logging=%v)", cfg.BulkEpochStores, cfg.Logging)
	}
	fmt.Println()
	if r.Deadlocked {
		// Diagnostics go to stderr so stdout stays machine-parseable.
		fmt.Fprintln(os.Stderr, "persistsim: DEADLOCKED (see §3.3 — enable splitting or fix barrier placement)")
		exit(1)
	}
	fmt.Printf("exec cycles:     %d (drain at %d)\n", r.ExecCycles, r.DrainCycles)
	fmt.Printf("transactions:    %d (%.3f per kilocycle)\n", r.Transactions, r.Throughput())
	fmt.Printf("epochs:          %d persisted, %.1f%% conflicting, %d IDT deps, %d splits\n",
		r.Epochs.Persisted, 100*r.Epochs.ConflictingFraction(), r.Epochs.Deps, r.Epochs.Splits)
	fmt.Printf("conflicts:       %d intra, %d inter, %d eviction (%d IDT fallbacks)\n",
		r.Conflicts.Intra, r.Conflicts.Inter, r.Conflicts.Eviction, r.Conflicts.IDTFallbacks)
	fmt.Printf("NVRAM:           %d line persists, %d log writes, %d reads\n",
		r.PersistedLines, r.LogWrites, r.MC.Reads)
	fmt.Printf("caches:          L1 %.1f%% hit, LLC %.1f%% hit\n",
		stats.HitPct(r.L1.Hits, r.L1.Misses), stats.HitPct(r.LLC.Hits, r.LLC.Misses))
	if *verbose {
		fmt.Println("stalls (cycles summed over cores):")
		for cause := machine.StallIntra; cause <= machine.StallWriteBuffer; cause++ {
			fmt.Printf("  %-14s %d\n", cause, r.StallTotal(cause))
		}
	}
}

// runRepeat executes the same configuration n times with consecutive
// seeds through the harness sweep engine, keeping observability sinks
// private per run and reporting results in seed order.
func runRepeat(cfg machine.Config, wl string, threads, ops int, seed uint64, n, parallel int, traceOut, metricsOut string, window uint64, jsonOut, verbose bool) {
	gen, isMicro := workload.Microbenchmarks()[wl]
	prof, isApp := workload.Apps()[wl]
	if !isMicro && !isApp {
		fmt.Fprintf(os.Stderr, "persistsim: unknown workload %q\n", wl)
		exit(2)
	}
	type probeSet struct {
		tracer  *obs.ChromeTracer
		sampler *obs.Sampler
	}
	probes := make([]probeSet, n)
	specs := make([]workload.Spec, n)
	jobs := make([]harness.Job, n)
	for i := 0; i < n; i++ {
		spec := workload.Spec{Threads: threads, OpsPerThread: ops, Seed: seed + uint64(i)}
		specs[i] = spec
		// Each job gets its own machine config and, when exporting, its
		// own probe + sinks: machines run concurrently and an event
		// stream shared across runs would interleave.
		jcfg := cfg
		var sinks []obs.Sink
		if traceOut != "" {
			probes[i].tracer = obs.NewChromeTracer()
			sinks = append(sinks, probes[i].tracer)
		}
		if metricsOut != "" {
			probes[i].sampler = obs.NewSampler(sim.Cycle(window))
			sinks = append(sinks, probes[i].sampler)
		}
		if len(sinks) > 0 {
			jcfg.Probe = obs.NewProbe(sinks...)
		}
		jobs[i] = harness.Job{
			Key:     fmt.Sprintf("%s/seed=%d", wl, spec.Seed),
			TraceID: fmt.Sprintf("%s/threads=%d/ops=%d/seed=%d", wl, threads, ops, spec.Seed),
			Cfg:     jcfg,
			Gen: func() (*trace.Program, error) {
				if isMicro {
					return gen(spec)
				}
				return prof.Generate(spec)
			},
		}
	}
	results, err := harness.Sweep(jobs, harness.SweepOptions{Parallelism: parallel, AllowDeadlock: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}

	deadlocked := false
	var summaries []runSummary
	for i, r := range results {
		if probes[i].tracer != nil {
			if err := writeFile(seedPath(traceOut, specs[i].Seed), probes[i].tracer.Export); err != nil {
				fmt.Fprintln(os.Stderr, "persistsim:", err)
				exit(1)
			}
		}
		if probes[i].sampler != nil {
			export := probes[i].sampler.WriteCSV
			if strings.HasSuffix(metricsOut, ".json") {
				export = probes[i].sampler.WriteJSON
			}
			if err := writeFile(seedPath(metricsOut, specs[i].Seed), export); err != nil {
				fmt.Fprintln(os.Stderr, "persistsim:", err)
				exit(1)
			}
		}
		if r.Deadlocked {
			deadlocked = true
			fmt.Fprintf(os.Stderr, "persistsim: seed %d DEADLOCKED (see §3.3 — enable splitting or fix barrier placement)\n", specs[i].Seed)
		}
		if jsonOut {
			p, err := jobs[i].Gen()
			if err != nil {
				fmt.Fprintln(os.Stderr, "persistsim:", err)
				exit(1)
			}
			summaries = append(summaries, buildSummary(wl, specs[i], p, cfg, r))
			continue
		}
		status := ""
		if r.Deadlocked {
			status = "  DEADLOCKED"
		}
		fmt.Printf("seed %-6d %s  %12d cycles  %6d tx (%.3f/kcyc)  %6d epochs  %5.1f%% conflicting%s\n",
			specs[i].Seed, r.Barrier, uint64(r.ExecCycles), r.Transactions, r.Throughput(),
			r.Epochs.Persisted, 100*r.Epochs.ConflictingFraction(), status)
		if verbose {
			fmt.Printf("           conflicts: %d intra, %d inter, %d eviction; %d line persists\n",
				r.Conflicts.Intra, r.Conflicts.Inter, r.Conflicts.Eviction, r.PersistedLines)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(summaries); err != nil {
			fmt.Fprintln(os.Stderr, "persistsim:", err)
			exit(1)
		}
	}
	if deadlocked {
		exit(1)
	}
}

// seedPath inserts a ".seedN" tag before the path's extension so per-run
// exports of a repeat sweep never collide.
func seedPath(path string, seed uint64) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.seed%d%s", strings.TrimSuffix(path, ext), seed, ext)
}

// writeFile creates path and streams export into it.
func writeFile(path string, export func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSummary is the -json schema: one flat document with the same
// numbers the text summary prints, plus the per-cause stall breakdown.
type runSummary struct {
	Workload     string `json:"workload"`
	Barrier      string `json:"barrier"`
	Threads      int    `json:"threads"`
	OpsPerThread int    `json:"ops_per_thread"`
	Seed         uint64 `json:"seed"`
	TraceOps     int    `json:"trace_ops"`
	TraceStores  int    `json:"trace_stores"`
	BulkStores   int    `json:"bulk_epoch_stores,omitempty"`
	Logging      bool   `json:"logging,omitempty"`

	Deadlocked          bool    `json:"deadlocked"`
	ExecCycles          uint64  `json:"exec_cycles"`
	DrainCycles         uint64  `json:"drain_cycles"`
	Transactions        uint64  `json:"transactions"`
	ThroughputPerKcycle float64 `json:"throughput_per_kcycle"`

	Epochs struct {
		Opened         uint64  `json:"opened"`
		Persisted      uint64  `json:"persisted"`
		ConflictingPct float64 `json:"conflicting_pct"`
		IDTDeps        uint64  `json:"idt_deps"`
		Splits         uint64  `json:"splits"`
		Flushes        uint64  `json:"flushes"`
		Natural        uint64  `json:"natural_persists"`
	} `json:"epochs"`

	Conflicts struct {
		Intra        uint64 `json:"intra"`
		Inter        uint64 `json:"inter"`
		Eviction     uint64 `json:"eviction"`
		IDTFallbacks uint64 `json:"idt_fallbacks"`
		IDTResolved  uint64 `json:"idt_resolved"`
	} `json:"conflicts"`

	NVRAM struct {
		LinePersists uint64 `json:"line_persists"`
		LogWrites    uint64 `json:"log_writes"`
		Reads        uint64 `json:"reads"`
	} `json:"nvram"`

	Caches struct {
		L1HitPct  float64 `json:"l1_hit_pct"`
		LLCHitPct float64 `json:"llc_hit_pct"`
	} `json:"caches"`

	Stalls map[string]uint64 `json:"stalls"`
}

func printJSON(w *os.File, wl string, spec workload.Spec, p *trace.Program, cfg machine.Config, r *machine.Result) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	s := buildSummary(wl, spec, p, cfg, r)
	if err := enc.Encode(&s); err != nil {
		fmt.Fprintln(os.Stderr, "persistsim:", err)
		exit(1)
	}
}

// buildSummary flattens one run into the -json schema.
func buildSummary(wl string, spec workload.Spec, p *trace.Program, cfg machine.Config, r *machine.Result) runSummary {
	var s runSummary
	s.Workload = wl
	s.Barrier = r.Barrier
	s.Threads = spec.Threads
	s.OpsPerThread = spec.OpsPerThread
	s.Seed = spec.Seed
	s.TraceOps = p.Ops()
	s.TraceStores = p.Stores()
	s.BulkStores = cfg.BulkEpochStores
	s.Logging = cfg.Logging
	s.Deadlocked = r.Deadlocked
	s.ExecCycles = uint64(r.ExecCycles)
	s.DrainCycles = uint64(r.DrainCycles)
	s.Transactions = r.Transactions
	s.ThroughputPerKcycle = r.Throughput()
	s.Epochs.Opened = r.Epochs.Opened
	s.Epochs.Persisted = r.Epochs.Persisted
	s.Epochs.ConflictingPct = 100 * r.Epochs.ConflictingFraction()
	s.Epochs.IDTDeps = r.Epochs.Deps
	s.Epochs.Splits = r.Epochs.Splits
	s.Epochs.Flushes = r.Epochs.Flushes
	s.Epochs.Natural = r.Epochs.Natural
	s.Conflicts.Intra = r.Conflicts.Intra
	s.Conflicts.Inter = r.Conflicts.Inter
	s.Conflicts.Eviction = r.Conflicts.Eviction
	s.Conflicts.IDTFallbacks = r.Conflicts.IDTFallbacks
	s.Conflicts.IDTResolved = r.Conflicts.IDTResolved()
	s.NVRAM.LinePersists = r.PersistedLines
	s.NVRAM.LogWrites = r.LogWrites
	s.NVRAM.Reads = r.MC.Reads
	s.Caches.L1HitPct = stats.HitPct(r.L1.Hits, r.L1.Misses)
	s.Caches.LLCHitPct = stats.HitPct(r.LLC.Hits, r.LLC.Misses)
	s.Stalls = make(map[string]uint64)
	for cause := machine.StallIntra; cause <= machine.StallWriteBuffer; cause++ {
		s.Stalls[cause.String()] = uint64(r.StallTotal(cause))
	}
	return s
}
