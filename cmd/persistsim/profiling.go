package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	profilesStopped bool
	cpuProfileFile  *os.File
	memProfilePath  string
)

// startProfiles begins CPU profiling and/or arms a heap-profile dump.
// Every exit path must run stopProfiles (the exit helper does), or the
// profile files are left truncated.
func startProfiles(cpu, mem string) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuProfileFile = f
	}
	memProfilePath = mem
	return nil
}

// stopProfiles finishes the CPU profile and writes the heap profile.
// Idempotent: safe to call from both a defer and the exit helper.
func stopProfiles() {
	if profilesStopped {
		return
	}
	profilesStopped = true
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // settle live-heap numbers before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
	}
}

// exit terminates the process after flushing any active profiles.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}
