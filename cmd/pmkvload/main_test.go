package main

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"persistbarriers/internal/telemetry"
)

// TestSummarySchemaLocked pins the -json output schema: the exact
// top-level field set, the schema_version value, and the per-stage
// field set. Downstream scripts (EXPERIMENTS tables, dashboards) key on
// these names; renaming or dropping one must bump summarySchemaVersion
// and this test together.
func TestSummarySchemaLocked(t *testing.T) {
	s := Summary{
		SchemaVersion: summarySchemaVersion,
		ServerStages:  []telemetry.StageStats{{Stage: "route"}},
		ServerShards:  []ServerShard{{Shard: 0, Batches: 1}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"schema_version", "conns", "proto", "window", "elapsed_sec", "ops",
		"ops_per_sec", "gets", "puts", "dels", "found", "not_found", "errors",
		"crashed", "draining", "mean_us", "p50_us", "p90_us", "p99_us",
		"p999_us", "max_us",
		"svc_mean_us", "svc_p50_us", "svc_p90_us", "svc_p99_us",
		"svc_p999_us", "svc_max_us",
		"queue_mean_us", "queue_p50_us", "queue_p99_us", "queue_max_us",
		"read", "write",
		"server_stages", "server_shards",
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if strings.Join(got, ",") != strings.Join(sorted, ",") {
		t.Fatalf("summary fields changed:\n got %v\nwant %v\n(bump summarySchemaVersion and update this test deliberately)", got, sorted)
	}

	var ver int
	if err := json.Unmarshal(m["schema_version"], &ver); err != nil || ver != 4 {
		t.Fatalf("schema_version = %s, want 4", m["schema_version"])
	}

	kindWant := []string{
		"ops", "mean_us", "p50_us", "p90_us", "p99_us", "p999_us", "max_us",
		"svc_mean_us", "svc_p50_us", "svc_p99_us", "svc_max_us",
		"queue_mean_us", "queue_p50_us", "queue_p99_us", "queue_max_us",
	}
	for _, kind := range []string{"read", "write"} {
		var ks map[string]json.RawMessage
		if err := json.Unmarshal(m[kind], &ks); err != nil {
			t.Fatalf("%s malformed: %s", kind, m[kind])
		}
		if len(ks) != len(kindWant) {
			t.Fatalf("%s has %d fields, want %d: %s", kind, len(ks), len(kindWant), m[kind])
		}
		for _, k := range kindWant {
			if _, ok := ks[k]; !ok {
				t.Fatalf("%s missing %q: %s", kind, k, m[kind])
			}
		}
	}

	var stages []map[string]json.RawMessage
	if err := json.Unmarshal(m["server_stages"], &stages); err != nil || len(stages) != 1 {
		t.Fatalf("server_stages malformed: %s", m["server_stages"])
	}
	for _, k := range []string{"stage", "count", "mean_us", "p50_us", "p90_us", "p99_us"} {
		if _, ok := stages[0][k]; !ok {
			t.Fatalf("server_stages entry missing %q: %s", k, m["server_stages"])
		}
	}

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(m["server_shards"], &shards); err != nil || len(shards) != 1 {
		t.Fatalf("server_shards malformed: %s", m["server_shards"])
	}
	for _, k := range []string{"shard", "queue_depth", "batches", "avg_batch", "batch_limit"} {
		if _, ok := shards[0][k]; !ok {
			t.Fatalf("server_shards entry missing %q: %s", k, m["server_shards"])
		}
	}
}

// TestSummaryOmitsStagesWithoutAdmin: without -admin the summary must not
// grow empty server_stages/server_shards keys.
func TestSummaryOmitsStagesWithoutAdmin(t *testing.T) {
	raw, err := json.Marshal(Summary{SchemaVersion: summarySchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "server_stages") {
		t.Fatalf("server_stages present with no admin scrape: %s", raw)
	}
	if strings.Contains(string(raw), "server_shards") {
		t.Fatalf("server_shards present with no admin scrape: %s", raw)
	}
}
