// Command pmkvload is a load generator for pmkvd: N concurrent
// connections drive a configurable read/write/delete mix over a skewed
// or uniform keyspace, closed-loop (each connection issues its next
// operation the moment the previous ack lands) or open-loop at a target
// aggregate rate. Because pmkvd acks mutations only when the owning
// shard's durable-prefix watermark covers them, the measured latency is
// durable-commit latency, not just visibility.
//
// Output is a throughput line plus a latency histogram summary
// (p50/p90/p99/p99.9/max, from power-of-two microsecond buckets merged
// across connections); -json emits the same numbers as one JSON object
// for scripts.
//
// The generator is deterministic per seed: connection i derives its rng
// from -seed and i, so two runs against the same server configuration
// issue the same operation streams.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"persistbarriers/internal/telemetry"
)

const histBuckets = 40 // bucket i holds latencies < 2^i microseconds

type request struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

type response struct {
	OK      bool   `json:"ok"`
	Found   bool   `json:"found"`
	Value   string `json:"value"`
	Crashed bool   `json:"crashed"`
	Error   string `json:"error"`
}

// connStats is one connection's tally, merged after the run.
type connStats struct {
	ops      uint64
	gets     uint64
	puts     uint64
	dels     uint64
	found    uint64
	notFound uint64
	errors   uint64
	crashed  uint64
	draining uint64
	hist     [histBuckets]uint64
	maxUS    uint64
	sumUS    uint64
}

func (c *connStats) record(lat time.Duration) {
	us := uint64(lat.Microseconds())
	if us > c.maxUS {
		c.maxUS = us
	}
	c.sumUS += us
	b := 0
	for us > 0 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	c.hist[b]++
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "pmkvd address")
		conns    = flag.Int("conns", 8, "concurrent connections")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		rate     = flag.Float64("rate", 0, "target aggregate ops/sec (0 = closed loop)")
		keys     = flag.Int("keys", 256, "distinct keys")
		zipf     = flag.Float64("zipf", 0, "key skew exponent (> 1 enables Zipf; 0 = uniform)")
		getFrac  = flag.Float64("get", 0.70, "fraction of operations that are gets")
		delFrac  = flag.Float64("del", 0.05, "fraction of operations that are deletes")
		valueLen = flag.Int("value", 64, "value bytes per put")
		seed     = flag.Int64("seed", 1, "workload seed")
		jsonOut  = flag.Bool("json", false, "emit a JSON summary instead of text")
		admin    = flag.String("admin", "", "pmkvd admin address; scrape /statz after the run for the server-side stage breakdown")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmkvload: "+format+"\n", args...)
		os.Exit(2)
	}
	if *conns < 1 {
		fail("-conns must be >= 1, got %d", *conns)
	}
	if *keys < 1 {
		fail("-keys must be >= 1, got %d", *keys)
	}
	if *zipf != 0 && *zipf <= 1 {
		fail("-zipf must be > 1 (or 0 for uniform), got %g", *zipf)
	}
	if *getFrac < 0 || *delFrac < 0 || *getFrac+*delFrac > 1 {
		fail("-get and -del must be nonnegative and sum to <= 1")
	}
	if *valueLen < 1 {
		fail("-value must be >= 1, got %d", *valueLen)
	}

	// Open-loop pacing: each connection runs at rate/conns ops/sec.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*conns) / *rate * float64(time.Second))
	}

	deadline := time.Now().Add(*duration)
	stats := make([]connStats, *conns)
	var wg sync.WaitGroup
	var dialErr error
	var dialErrOnce sync.Once
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := runConn(*addr, i, deadline, interval, genConfig{
				keys: *keys, zipf: *zipf, getFrac: *getFrac, delFrac: *delFrac,
				valueLen: *valueLen, seed: *seed,
			}, &stats[i])
			if err != nil {
				dialErrOnce.Do(func() { dialErr = err })
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if dialErr != nil {
		fail("%v", dialErr)
	}

	var stages []telemetry.StageStats
	if *admin != "" {
		var err error
		if stages, err = scrapeStages(*admin); err != nil {
			fmt.Fprintf(os.Stderr, "pmkvload: admin scrape: %v\n", err)
		}
	}
	report(stats, elapsed, *conns, *jsonOut, stages)
}

// scrapeStages pulls the pooled server-side stage breakdown from pmkvd's
// admin /statz endpoint, attributing the client-observed latency to
// pipeline segments measured inside the server.
func scrapeStages(admin string) ([]telemetry.StageStats, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + admin + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/statz: %s", resp.Status)
	}
	var statz struct {
		Stages []telemetry.StageStats `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		return nil, err
	}
	return statz.Stages, nil
}

type genConfig struct {
	keys     int
	zipf     float64
	getFrac  float64
	delFrac  float64
	valueLen int
	seed     int64
}

// runConn drives one connection until the deadline, the server drains, or
// a crash-flagged response arrives.
func runConn(addr string, id int, deadline time.Time, interval time.Duration, g genConfig, st *connStats) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("conn %d: %w", id, err)
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)

	rng := rand.New(rand.NewSource(g.seed + int64(id)*1_000_003))
	var zipfGen *rand.Zipf
	if g.zipf > 1 {
		zipfGen = rand.NewZipf(rng, g.zipf, 1, uint64(g.keys-1))
	}
	value := strings.Repeat("v", g.valueLen)
	reqBuf := make([]byte, 0, 256)
	next := time.Now()

	for time.Now().Before(deadline) {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		var k int
		if zipfGen != nil {
			k = int(zipfGen.Uint64())
		} else {
			k = rng.Intn(g.keys)
		}
		key := fmt.Sprintf("k%06d", k)
		var req request
		switch p := rng.Float64(); {
		case p < g.getFrac:
			req = request{Op: "get", Key: key}
			st.gets++
		case p < g.getFrac+g.delFrac:
			req = request{Op: "del", Key: key}
			st.dels++
		default:
			req = request{Op: "put", Key: key, Value: value}
			st.puts++
		}
		line, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("conn %d: %w", id, err)
		}
		reqBuf = append(append(reqBuf[:0], line...), '\n')

		t0 := time.Now()
		if _, err := w.Write(reqBuf); err != nil {
			return nil // server went away mid-run: the drain races us
		}
		if err := w.Flush(); err != nil {
			return nil
		}
		respLine, err := r.ReadBytes('\n')
		if err != nil {
			return nil
		}
		st.record(time.Since(t0))
		st.ops++

		var resp response
		if err := json.Unmarshal(respLine, &resp); err != nil {
			st.errors++
			continue
		}
		switch {
		case resp.Error != "":
			if strings.Contains(resp.Error, "draining") {
				st.draining++
				return nil
			}
			st.errors++
		case resp.Crashed:
			// Applied at the instant of power loss; the server is draining.
			st.crashed++
			return nil
		case resp.Found:
			st.found++
		default:
			st.notFound++
		}
	}
	return nil
}

// percentileUS returns the upper bound, in microseconds, of the bucket
// holding the p-th percentile sample.
func percentileUS(hist *[histBuckets]uint64, total uint64, p float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(float64(total) * p)
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		seen += hist[b]
		if seen > rank {
			if b == 0 {
				return 1
			}
			return uint64(1) << b
		}
	}
	return uint64(1) << (histBuckets - 1)
}

// summarySchemaVersion identifies the -json layout. Adding fields is
// backward compatible; bump this when a field is renamed, removed, or
// changes meaning. TestSummarySchemaLocked pins the current set.
const summarySchemaVersion = 2

// Summary is the -json output: the client-side tallies plus, when -admin
// was given, the server-side per-stage breakdown for the same run.
type Summary struct {
	SchemaVersion int     `json:"schema_version"`
	Conns         int     `json:"conns"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	Ops           uint64  `json:"ops"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Gets          uint64  `json:"gets"`
	Puts          uint64  `json:"puts"`
	Dels          uint64  `json:"dels"`
	Found         uint64  `json:"found"`
	NotFound      uint64  `json:"not_found"`
	Errors        uint64  `json:"errors"`
	Crashed       uint64  `json:"crashed"`
	Draining      uint64  `json:"draining"`
	MeanUS        uint64  `json:"mean_us"`
	P50US         uint64  `json:"p50_us"`
	P90US         uint64  `json:"p90_us"`
	P99US         uint64  `json:"p99_us"`
	P999US        uint64  `json:"p999_us"`
	MaxUS         uint64  `json:"max_us"`

	ServerStages []telemetry.StageStats `json:"server_stages,omitempty"`
}

func report(stats []connStats, elapsed time.Duration, conns int, jsonOut bool, stages []telemetry.StageStats) {
	var total connStats
	for i := range stats {
		s := &stats[i]
		total.ops += s.ops
		total.gets += s.gets
		total.puts += s.puts
		total.dels += s.dels
		total.found += s.found
		total.notFound += s.notFound
		total.errors += s.errors
		total.crashed += s.crashed
		total.draining += s.draining
		total.sumUS += s.sumUS
		if s.maxUS > total.maxUS {
			total.maxUS = s.maxUS
		}
		for b := range s.hist {
			total.hist[b] += s.hist[b]
		}
	}
	opsPerSec := float64(total.ops) / elapsed.Seconds()
	p50 := percentileUS(&total.hist, total.ops, 0.50)
	p90 := percentileUS(&total.hist, total.ops, 0.90)
	p99 := percentileUS(&total.hist, total.ops, 0.99)
	p999 := percentileUS(&total.hist, total.ops, 0.999)
	var meanUS uint64
	if total.ops > 0 {
		meanUS = total.sumUS / total.ops
	}

	if jsonOut {
		out := Summary{
			SchemaVersion: summarySchemaVersion,
			Conns:         conns,
			ElapsedSec:    elapsed.Seconds(),
			Ops:           total.ops,
			OpsPerSec:     opsPerSec,
			Gets:          total.gets,
			Puts:          total.puts,
			Dels:          total.dels,
			Found:         total.found,
			NotFound:      total.notFound,
			Errors:        total.errors,
			Crashed:       total.crashed,
			Draining:      total.draining,
			MeanUS:        meanUS,
			P50US:         p50,
			P90US:         p90,
			P99US:         p99,
			P999US:        p999,
			MaxUS:         total.maxUS,
			ServerStages:  stages,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(out)
		return
	}
	fmt.Printf("pmkvload: %d conns, %.1fs: %d ops (%.1f ops/sec), %d get / %d put / %d del\n",
		conns, elapsed.Seconds(), total.ops, opsPerSec, total.gets, total.puts, total.dels)
	fmt.Printf("  found %d, not-found %d, errors %d, crashed %d, draining %d\n",
		total.found, total.notFound, total.errors, total.crashed, total.draining)
	fmt.Printf("  latency (us, bucket upper bounds): mean=%d p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
		meanUS, p50, p90, p99, p999, total.maxUS)
	if len(stages) > 0 {
		fmt.Printf("  server stages (us): ")
		for i, st := range stages {
			if i > 0 {
				fmt.Printf(" | ")
			}
			fmt.Printf("%s p50=%.1f p99=%.1f", st.Stage, st.P50US, st.P99US)
		}
		fmt.Println()
	}
}
