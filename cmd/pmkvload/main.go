// Command pmkvload is a load generator for pmkvd: N concurrent
// connections drive a configurable read/write/delete mix over a skewed
// or uniform keyspace, closed-loop (each connection issues its next
// operation the moment a pipeline slot frees) or open-loop at a target
// aggregate rate. Because pmkvd acks mutations only when the owning
// shard's durable-prefix watermark covers them, the measured latency is
// durable-commit latency, not just visibility.
//
// -proto picks the wire protocol: "json" is the original line protocol
// (one op in flight per connection), "binary" the pipelined frame
// protocol with -window requests in flight per connection and, with
// -multi N, N-op MGET/MSET frames. Open-loop runs avoid coordinated
// omission by scheduling ops on a fixed cadence and measuring from the
// schedule: total latency = completion - scheduled, split into queueing
// delay (send - scheduled: time spent blocked behind the pipe or the
// window) and service time (completion - send: the server round trip).
//
// Output is a throughput line plus latency histogram summaries
// (p50/p90/p99/p99.9/max, from power-of-two microsecond buckets merged
// across connections); -json emits the same numbers as one JSON object
// for scripts.
//
// The generator is deterministic per seed: connection i derives its rng
// from -seed and i, so two runs against the same server configuration
// issue the same operation streams.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"persistbarriers/internal/proto"
	"persistbarriers/internal/proto/client"
	"persistbarriers/internal/telemetry"
)

const histBuckets = 40 // bucket i holds latencies < 2^i microseconds

type request struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

type response struct {
	OK      bool   `json:"ok"`
	Found   bool   `json:"found"`
	Value   string `json:"value"`
	Crashed bool   `json:"crashed"`
	Error   string `json:"error"`
}

// latDist is one latency distribution (power-of-two microsecond
// buckets).
type latDist struct {
	hist  [histBuckets]uint64
	maxUS uint64
	sumUS uint64
}

func (d *latDist) record(us uint64) {
	if us > d.maxUS {
		d.maxUS = us
	}
	d.sumUS += us
	b := 0
	for us > 0 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	d.hist[b]++
}

func (d *latDist) merge(o *latDist) {
	d.sumUS += o.sumUS
	if o.maxUS > d.maxUS {
		d.maxUS = o.maxUS
	}
	for b := range o.hist {
		d.hist[b] += o.hist[b]
	}
}

// opDists bundles the three latency distributions for one op kind:
// total from the scheduled instant, svc from the socket send, queue the
// gap between the two.
type opDists struct {
	ops   uint64
	total latDist
	svc   latDist
	queue latDist
}

func (d *opDists) record(scheduledToDone, sendToDone, queued time.Duration) {
	d.ops++
	d.total.record(uint64(scheduledToDone.Microseconds()))
	d.svc.record(uint64(sendToDone.Microseconds()))
	d.queue.record(uint64(queued.Microseconds()))
}

func (d *opDists) merge(o *opDists) {
	d.ops += o.ops
	d.total.merge(&o.total)
	d.svc.merge(&o.svc)
	d.queue.merge(&o.queue)
}

// connStats is one connection's tally, merged after the run. total is
// latency from the op's scheduled instant, svc from its socket send,
// queue the gap between the two (all equal in closed-loop JSON mode,
// where an op is scheduled the moment it is sent). Reads (gets) and
// writes (puts, deletes) keep separate distributions so the read fast
// path's effect is visible without a second run.
type connStats struct {
	ops      uint64
	gets     uint64
	puts     uint64
	dels     uint64
	found    uint64
	notFound uint64
	errors   uint64
	crashed  uint64
	draining uint64
	total    latDist
	svc      latDist
	queue    latDist
	read     opDists
	write    opDists
}

func (c *connStats) record(scheduledToDone, sendToDone, queued time.Duration, isRead bool) {
	c.total.record(uint64(scheduledToDone.Microseconds()))
	c.svc.record(uint64(sendToDone.Microseconds()))
	c.queue.record(uint64(queued.Microseconds()))
	if isRead {
		c.read.record(scheduledToDone, sendToDone, queued)
	} else {
		c.write.record(scheduledToDone, sendToDone, queued)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "pmkvd address")
		conns    = flag.Int("conns", 8, "concurrent connections")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		rate     = flag.Float64("rate", 0, "target aggregate ops/sec (0 = closed loop)")
		keys     = flag.Int("keys", 256, "distinct keys")
		zipf     = flag.Float64("zipf", 0, "key skew exponent (> 1 enables Zipf; 0 = uniform)")
		getFrac  = flag.Float64("get", 0.70, "fraction of operations that are gets")
		delFrac  = flag.Float64("del", 0.05, "fraction of operations that are deletes")
		valueLen = flag.Int("value", 64, "value bytes per put")
		seed     = flag.Int64("seed", 1, "workload seed")
		protoF   = flag.String("proto", "json", "wire protocol: json (line, one op in flight) or binary (pipelined frames)")
		window   = flag.Int("window", 128, "binary protocol: in-flight requests per connection")
		multi    = flag.Int("multi", 1, "binary protocol: ops per MGET/MSET frame (1 = single-op frames)")
		jsonOut  = flag.Bool("json", false, "emit a JSON summary instead of text")
		admin    = flag.String("admin", "", "pmkvd admin address; scrape /statz after the run for the server-side stage breakdown")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmkvload: "+format+"\n", args...)
		os.Exit(2)
	}
	if *conns < 1 {
		fail("-conns must be >= 1, got %d", *conns)
	}
	if *keys < 1 {
		fail("-keys must be >= 1, got %d", *keys)
	}
	if *zipf != 0 && *zipf <= 1 {
		fail("-zipf must be > 1 (or 0 for uniform), got %g", *zipf)
	}
	if *getFrac < 0 || *delFrac < 0 || *getFrac+*delFrac > 1 {
		fail("-get and -del must be nonnegative and sum to <= 1")
	}
	if *valueLen < 1 {
		fail("-value must be >= 1, got %d", *valueLen)
	}
	if *protoF != "json" && *protoF != "binary" {
		fail("-proto must be json or binary, got %q", *protoF)
	}
	if *window < 1 || *window > 4096 {
		fail("-window must be in 1..4096, got %d", *window)
	}
	if *multi < 1 || *multi > proto.MaxOpsPerFrame {
		fail("-multi must be in 1..%d, got %d", proto.MaxOpsPerFrame, *multi)
	}
	if *multi > 1 && *protoF != "binary" {
		fail("-multi requires -proto binary")
	}

	// Open-loop pacing: each connection runs at rate/conns ops/sec.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*conns) / *rate * float64(time.Second))
	}

	deadline := time.Now().Add(*duration)
	stats := make([]connStats, *conns)
	var wg sync.WaitGroup
	var dialErr error
	var dialErrOnce sync.Once
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := genConfig{
				keys: *keys, zipf: *zipf, getFrac: *getFrac, delFrac: *delFrac,
				valueLen: *valueLen, seed: *seed, window: *window, multi: *multi,
			}
			var err error
			if *protoF == "binary" {
				err = runBinaryConn(*addr, i, deadline, interval, g, &stats[i])
			} else {
				err = runJSONConn(*addr, i, deadline, interval, g, &stats[i])
			}
			if err != nil {
				dialErrOnce.Do(func() { dialErr = err })
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if dialErr != nil {
		fail("%v", dialErr)
	}

	var stages []telemetry.StageStats
	var shards []ServerShard
	if *admin != "" {
		var err error
		if stages, shards, err = scrapeStages(*admin); err != nil {
			fmt.Fprintf(os.Stderr, "pmkvload: admin scrape: %v\n", err)
		}
	}
	report(stats, elapsed, *conns, *protoF, *window, *jsonOut, stages, shards)
}

// ServerShard is the per-shard commit-pipeline view scraped from /statz
// and carried into the -json summary: how the server actually batched
// this run's requests.
type ServerShard struct {
	Shard      int     `json:"shard"`
	QueueDepth int     `json:"queue_depth"`
	Batches    uint64  `json:"batches"`
	AvgBatch   float64 `json:"avg_batch"`
	BatchLimit int     `json:"batch_limit"`
}

// scrapeStages pulls the pooled server-side stage breakdown and the
// per-shard pipeline counters from pmkvd's admin /statz endpoint,
// attributing the client-observed latency to pipeline segments measured
// inside the server.
func scrapeStages(admin string) ([]telemetry.StageStats, []ServerShard, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + admin + "/statz")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("/statz: %s", resp.Status)
	}
	var statz struct {
		Stages []telemetry.StageStats `json:"stages"`
		Shards []ServerShard          `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		return nil, nil, err
	}
	return statz.Stages, statz.Shards, nil
}

type genConfig struct {
	keys     int
	zipf     float64
	getFrac  float64
	delFrac  float64
	valueLen int
	seed     int64
	window   int
	multi    int
}

// sampler is the deterministic per-connection workload source shared by
// both protocol runners.
type sampler struct {
	rng     *rand.Rand
	zipfGen *rand.Zipf
	g       genConfig
}

func newSampler(id int, g genConfig) *sampler {
	rng := rand.New(rand.NewSource(g.seed + int64(id)*1_000_003))
	s := &sampler{rng: rng, g: g}
	if g.zipf > 1 {
		s.zipfGen = rand.NewZipf(rng, g.zipf, 1, uint64(g.keys-1))
	}
	return s
}

func (s *sampler) key() int {
	if s.zipfGen != nil {
		return int(s.zipfGen.Uint64())
	}
	return s.rng.Intn(s.g.keys)
}

// op returns the next operation kind: 0 get, 1 put, 2 del.
func (s *sampler) op() int {
	switch p := s.rng.Float64(); {
	case p < s.g.getFrac:
		return 0
	case p < s.g.getFrac+s.g.delFrac:
		return 2
	default:
		return 1
	}
}

// runJSONConn drives one JSON-line connection until the deadline, the
// server drains, or a crash-flagged response arrives. One op is in
// flight at a time — the write+read syscall pair per op that bounds this
// protocol's throughput.
func runJSONConn(addr string, id int, deadline time.Time, interval time.Duration, g genConfig, st *connStats) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("conn %d: %w", id, err)
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)

	smp := newSampler(id, g)
	value := strings.Repeat("v", g.valueLen)
	reqBuf := make([]byte, 0, 256)
	next := time.Now()

	for time.Now().Before(deadline) {
		// Open loop: the op is *scheduled* at its cadence tick even if the
		// connection is still busy with the previous one — measuring from
		// the tick keeps coordinated omission out of the numbers.
		scheduled := time.Now()
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			scheduled = next
			next = next.Add(interval)
		}
		key := fmt.Sprintf("k%06d", smp.key())
		var req request
		isRead := false
		switch smp.op() {
		case 0:
			req = request{Op: "get", Key: key}
			st.gets++
			isRead = true
		case 2:
			req = request{Op: "del", Key: key}
			st.dels++
		default:
			req = request{Op: "put", Key: key, Value: value}
			st.puts++
		}
		line, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("conn %d: %w", id, err)
		}
		reqBuf = append(append(reqBuf[:0], line...), '\n')

		sent := time.Now()
		if _, err := w.Write(reqBuf); err != nil {
			return nil // server went away mid-run: the drain races us
		}
		if err := w.Flush(); err != nil {
			return nil
		}
		respLine, err := r.ReadBytes('\n')
		if err != nil {
			return nil
		}
		done := time.Now()
		st.record(done.Sub(scheduled), done.Sub(sent), sent.Sub(scheduled), isRead)
		st.ops++

		var resp response
		if err := json.Unmarshal(respLine, &resp); err != nil {
			st.errors++
			continue
		}
		switch {
		case resp.Error != "":
			if strings.Contains(resp.Error, "draining") {
				st.draining++
				return nil
			}
			st.errors++
		case resp.Crashed:
			// Applied at the instant of power loss; the server is draining.
			st.crashed++
			return nil
		case resp.Found:
			st.found++
		default:
			st.notFound++
		}
	}
	return nil
}

// runBinaryConn drives one pipelined binary connection: up to g.window
// requests in flight, completions handled out of order on the client's
// reader goroutine. Closed loop keeps the window full; open loop
// schedules frames on the cadence and lets the window absorb bursts,
// with time spent blocked on a full window showing up as queueing delay.
func runBinaryConn(addr string, id int, deadline time.Time, interval time.Duration, g genConfig, st *connStats) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("conn %d: %w", id, err)
	}

	// frameMeta carries what the completion handler can't recover from
	// the response alone: the scheduled instant (open loop), the subop
	// count (error responses carry no results), and whether the frame was
	// a read (GET/MGET) for the per-kind latency split.
	type frameMeta struct {
		schedNS int64
		n       uint64
		read    bool
	}
	var (
		mu   sync.Mutex
		meta = make(map[uint64]frameMeta, g.window)
		stop atomic.Bool
	)
	openLoop := interval > 0

	var c *client.Client
	c, err = client.New(conn, client.Options{
		Window: g.window,
		OnComplete: func(resp *proto.Response, submitNS, sendNS int64) {
			done := c.NowNS()
			mu.Lock()
			fm := meta[resp.ID]
			delete(meta, resp.ID)
			mu.Unlock()
			schedNS := submitNS
			if openLoop {
				schedNS = fm.schedNS
			}
			n := fm.n
			if n == 0 {
				n = 1
			}
			// One frame = one scheduling decision and one response: its
			// latency sample counts once per subop so multi-frame runs stay
			// comparable op-for-op.
			for i := uint64(0); i < n; i++ {
				st.record(time.Duration(done-schedNS), time.Duration(done-sendNS), time.Duration(sendNS-schedNS), fm.read)
			}
			st.ops += n
			switch {
			case resp.Err != "":
				if strings.Contains(resp.Err, "draining") {
					st.draining += n
					stop.Store(true)
					return
				}
				st.errors += n
			case resp.Crashed:
				st.crashed += n
				stop.Store(true)
			default:
				for _, r := range resp.Results {
					if r.Found {
						st.found++
					} else {
						st.notFound++
					}
				}
			}
		},
	})
	if err != nil {
		conn.Close()
		return fmt.Errorf("conn %d: %w", id, err)
	}
	defer c.Close()

	smp := newSampler(id, g)
	value := make([]byte, g.valueLen)
	for i := range value {
		value[i] = 'v'
	}
	keyBuf := make([][]byte, g.multi)
	valBuf := make([][]byte, g.multi)
	endNS := c.NowNS() + int64(time.Until(deadline))
	var nextNS int64
	id64 := uint64(0)

	for c.NowNS() < endNS && !stop.Load() {
		schedNS := c.NowNS()
		kind := smp.op()
		frameOps := 1
		if g.multi > 1 && kind != 2 {
			frameOps = g.multi
		}
		if openLoop {
			if d := nextNS - c.NowNS(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			schedNS = nextNS
			nextNS += int64(interval) * int64(frameOps)
		}
		mu.Lock()
		meta[id64] = frameMeta{schedNS: schedNS, n: uint64(frameOps), read: kind == 0}
		mu.Unlock()
		var submitErr error
		switch {
		case frameOps > 1:
			for j := 0; j < g.multi; j++ {
				keyBuf[j] = []byte(fmt.Sprintf("k%06d", smp.key()))
				valBuf[j] = value
			}
			if kind == 0 {
				st.gets += uint64(g.multi)
				submitErr = c.MGet(id64, keyBuf)
			} else {
				st.puts += uint64(g.multi)
				submitErr = c.MSet(id64, keyBuf, valBuf)
			}
		default:
			key := []byte(fmt.Sprintf("k%06d", smp.key()))
			switch kind {
			case 0:
				st.gets++
				submitErr = c.Get(id64, key)
			case 2:
				st.dels++
				submitErr = c.Del(id64, key)
			default:
				st.puts++
				submitErr = c.Put(id64, key, value)
			}
		}
		if submitErr != nil {
			return nil // transport died mid-run: the drain races us
		}
		id64++
		if openLoop && nextNS-c.NowNS() > 0 {
			// Ahead of schedule with nothing else due: push the frame out
			// now rather than letting it sit in the write buffer.
			if err := c.Flush(); err != nil {
				return nil
			}
		}
	}
	c.Wait()
	return nil
}

// percentileUS returns the upper bound, in microseconds, of the bucket
// holding the p-th percentile sample.
func percentileUS(hist *[histBuckets]uint64, total uint64, p float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(float64(total) * p)
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		seen += hist[b]
		if seen > rank {
			if b == 0 {
				return 1
			}
			return uint64(1) << b
		}
	}
	return uint64(1) << (histBuckets - 1)
}

// summarySchemaVersion identifies the -json layout. Adding fields is
// backward compatible; bump this when a field is renamed, removed, or
// changes meaning. TestSummarySchemaLocked pins the current set.
//
// v3: mean/p*/max now measure from each op's *scheduled* instant
// (coordinated-omission-corrected in open-loop runs; unchanged closed
// loop), split into svc_* (send -> completion) and queue_* (scheduled ->
// send); adds proto and window.
//
// v4: adds read/write objects splitting every latency distribution by op
// kind (gets vs puts+deletes), so the read fast path's effect shows
// without a second filtered run. The flat combined fields are unchanged.
const summarySchemaVersion = 4

// KindSummary is one op kind's slice of the latency numbers (read =
// gets; write = puts and deletes).
type KindSummary struct {
	Ops         uint64 `json:"ops"`
	MeanUS      uint64 `json:"mean_us"`
	P50US       uint64 `json:"p50_us"`
	P90US       uint64 `json:"p90_us"`
	P99US       uint64 `json:"p99_us"`
	P999US      uint64 `json:"p999_us"`
	MaxUS       uint64 `json:"max_us"`
	SvcMeanUS   uint64 `json:"svc_mean_us"`
	SvcP50US    uint64 `json:"svc_p50_us"`
	SvcP99US    uint64 `json:"svc_p99_us"`
	SvcMaxUS    uint64 `json:"svc_max_us"`
	QueueMeanUS uint64 `json:"queue_mean_us"`
	QueueP50US  uint64 `json:"queue_p50_us"`
	QueueP99US  uint64 `json:"queue_p99_us"`
	QueueMaxUS  uint64 `json:"queue_max_us"`
}

// kindSummary folds one op kind's distributions into its summary slice.
func kindSummary(d *opDists) KindSummary {
	mean, p50, p90, p99, p999 := distSummary(&d.total, d.ops)
	svcMean, svcP50, _, svcP99, _ := distSummary(&d.svc, d.ops)
	qMean, qP50, _, qP99, _ := distSummary(&d.queue, d.ops)
	return KindSummary{
		Ops:         d.ops,
		MeanUS:      mean,
		P50US:       p50,
		P90US:       p90,
		P99US:       p99,
		P999US:      p999,
		MaxUS:       d.total.maxUS,
		SvcMeanUS:   svcMean,
		SvcP50US:    svcP50,
		SvcP99US:    svcP99,
		SvcMaxUS:    d.svc.maxUS,
		QueueMeanUS: qMean,
		QueueP50US:  qP50,
		QueueP99US:  qP99,
		QueueMaxUS:  d.queue.maxUS,
	}
}

// Summary is the -json output: the client-side tallies plus, when -admin
// was given, the server-side per-stage breakdown for the same run.
type Summary struct {
	SchemaVersion int     `json:"schema_version"`
	Conns         int     `json:"conns"`
	Proto         string  `json:"proto"`
	Window        int     `json:"window"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	Ops           uint64  `json:"ops"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Gets          uint64  `json:"gets"`
	Puts          uint64  `json:"puts"`
	Dels          uint64  `json:"dels"`
	Found         uint64  `json:"found"`
	NotFound      uint64  `json:"not_found"`
	Errors        uint64  `json:"errors"`
	Crashed       uint64  `json:"crashed"`
	Draining      uint64  `json:"draining"`
	MeanUS        uint64  `json:"mean_us"`
	P50US         uint64  `json:"p50_us"`
	P90US         uint64  `json:"p90_us"`
	P99US         uint64  `json:"p99_us"`
	P999US        uint64  `json:"p999_us"`
	MaxUS         uint64  `json:"max_us"`
	SvcMeanUS     uint64  `json:"svc_mean_us"`
	SvcP50US      uint64  `json:"svc_p50_us"`
	SvcP90US      uint64  `json:"svc_p90_us"`
	SvcP99US      uint64  `json:"svc_p99_us"`
	SvcP999US     uint64  `json:"svc_p999_us"`
	SvcMaxUS      uint64  `json:"svc_max_us"`
	QueueMeanUS   uint64  `json:"queue_mean_us"`
	QueueP50US    uint64  `json:"queue_p50_us"`
	QueueP99US    uint64  `json:"queue_p99_us"`
	QueueMaxUS    uint64  `json:"queue_max_us"`

	Read  KindSummary `json:"read"`
	Write KindSummary `json:"write"`

	ServerStages []telemetry.StageStats `json:"server_stages,omitempty"`
	ServerShards []ServerShard          `json:"server_shards,omitempty"`
}

// distSummary folds one latency distribution into (mean, p50, p90, p99,
// p99.9) microseconds.
func distSummary(d *latDist, ops uint64) (mean, p50, p90, p99, p999 uint64) {
	if ops > 0 {
		mean = d.sumUS / ops
	}
	return mean, percentileUS(&d.hist, ops, 0.50), percentileUS(&d.hist, ops, 0.90),
		percentileUS(&d.hist, ops, 0.99), percentileUS(&d.hist, ops, 0.999)
}

func report(stats []connStats, elapsed time.Duration, conns int, protoName string, window int, jsonOut bool, stages []telemetry.StageStats, shards []ServerShard) {
	var total connStats
	for i := range stats {
		s := &stats[i]
		total.ops += s.ops
		total.gets += s.gets
		total.puts += s.puts
		total.dels += s.dels
		total.found += s.found
		total.notFound += s.notFound
		total.errors += s.errors
		total.crashed += s.crashed
		total.draining += s.draining
		total.total.merge(&s.total)
		total.svc.merge(&s.svc)
		total.queue.merge(&s.queue)
		total.read.merge(&s.read)
		total.write.merge(&s.write)
	}
	opsPerSec := float64(total.ops) / elapsed.Seconds()
	mean, p50, p90, p99, p999 := distSummary(&total.total, total.ops)
	svcMean, svcP50, svcP90, svcP99, svcP999 := distSummary(&total.svc, total.ops)
	qMean, qP50, _, qP99, _ := distSummary(&total.queue, total.ops)
	if protoName == "json" {
		window = 1 // one op in flight by construction
	}

	if jsonOut {
		out := Summary{
			SchemaVersion: summarySchemaVersion,
			Conns:         conns,
			Proto:         protoName,
			Window:        window,
			ElapsedSec:    elapsed.Seconds(),
			Ops:           total.ops,
			OpsPerSec:     opsPerSec,
			Gets:          total.gets,
			Puts:          total.puts,
			Dels:          total.dels,
			Found:         total.found,
			NotFound:      total.notFound,
			Errors:        total.errors,
			Crashed:       total.crashed,
			Draining:      total.draining,
			MeanUS:        mean,
			P50US:         p50,
			P90US:         p90,
			P99US:         p99,
			P999US:        p999,
			MaxUS:         total.total.maxUS,
			SvcMeanUS:     svcMean,
			SvcP50US:      svcP50,
			SvcP90US:      svcP90,
			SvcP99US:      svcP99,
			SvcP999US:     svcP999,
			SvcMaxUS:      total.svc.maxUS,
			QueueMeanUS:   qMean,
			QueueP50US:    qP50,
			QueueP99US:    qP99,
			QueueMaxUS:    total.queue.maxUS,
			Read:          kindSummary(&total.read),
			Write:         kindSummary(&total.write),
			ServerStages:  stages,
			ServerShards:  shards,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(out)
		return
	}
	fmt.Printf("pmkvload: %d conns (%s, window %d), %.1fs: %d ops (%.1f ops/sec), %d get / %d put / %d del\n",
		conns, protoName, window, elapsed.Seconds(), total.ops, opsPerSec, total.gets, total.puts, total.dels)
	fmt.Printf("  found %d, not-found %d, errors %d, crashed %d, draining %d\n",
		total.found, total.notFound, total.errors, total.crashed, total.draining)
	fmt.Printf("  latency (us, bucket upper bounds): mean=%d p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
		mean, p50, p90, p99, p999, total.total.maxUS)
	fmt.Printf("  service (us): mean=%d p50=%d p90=%d p99=%d p99.9=%d max=%d; queueing: mean=%d p50=%d p99=%d max=%d\n",
		svcMean, svcP50, svcP90, svcP99, svcP999, total.svc.maxUS, qMean, qP50, qP99, total.queue.maxUS)
	for _, kind := range []struct {
		name string
		d    *opDists
	}{{"reads", &total.read}, {"writes", &total.write}} {
		if kind.d.ops == 0 {
			continue
		}
		ks := kindSummary(kind.d)
		fmt.Printf("  %s (us): %d ops, mean=%d p50=%d p90=%d p99=%d p99.9=%d max=%d; svc: mean=%d p50=%d p99=%d\n",
			kind.name, ks.Ops, ks.MeanUS, ks.P50US, ks.P90US, ks.P99US, ks.P999US, ks.MaxUS,
			ks.SvcMeanUS, ks.SvcP50US, ks.SvcP99US)
	}
	if len(stages) > 0 {
		fmt.Printf("  server stages (us): ")
		for i, st := range stages {
			if i > 0 {
				fmt.Printf(" | ")
			}
			fmt.Printf("%s p50=%.1f p99=%.1f", st.Stage, st.P50US, st.P99US)
		}
		fmt.Println()
	}
	if len(shards) > 0 {
		fmt.Printf("  server shards: ")
		for i, sh := range shards {
			if i > 0 {
				fmt.Printf(" | ")
			}
			fmt.Printf("%d: %d batches avg=%.1f limit=%d", sh.Shard, sh.Batches, sh.AvgBatch, sh.BatchLimit)
		}
		fmt.Println()
	}
}
