// Command promcheck validates Prometheus 0.0.4 text exposition read from
// stdin (or the files named as arguments): well-formed samples, legal
// metric names, and per-series histogram invariants (strictly increasing
// le bounds, nondecreasing cumulative counts, +Inf == _count). The scale
// smoke pipes a live /metrics scrape through it so format drift fails CI
// rather than a dashboard.
package main

import (
	"fmt"
	"io"
	"os"

	"persistbarriers/internal/telemetry"
)

func main() {
	check := func(name string, data []byte) {
		if err := telemetry.ValidateExposition(data); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("promcheck: %s OK (%d bytes)\n", name, len(data))
	}
	if len(os.Args) > 1 {
		for _, path := range os.Args[1:] {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "promcheck:", err)
				os.Exit(1)
			}
			check(path, data)
		}
		return
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	check("stdin", data)
}
