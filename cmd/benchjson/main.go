// Command benchjson turns `go test -bench` output into a compact JSON
// baseline and gates regressions against a committed one.
//
// It parses benchmark result lines (including -benchmem columns and
// custom ReportMetric values), aggregates repeated -count runs per
// benchmark by median (robust to the warm-up outliers of -benchtime 1x
// runs), derives sim-cycles/sec for benchmarks that report a
// sim-cycles/op metric, and writes the result as JSON.
//
// With -baseline it additionally compares the freshly parsed run against
// a previously written JSON file and exits non-zero when any shared
// benchmark's ns/op regressed by more than -threshold (default 10%).
//
// Usage:
//
//	go test -bench . -benchmem -count 5 | benchjson -out BENCH_PR4.json
//	benchjson -out new.json -baseline BENCH_PR4.json bench-output.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's aggregated numbers.
type Bench struct {
	Runs     int     `json:"runs"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	// SimCyclesOp is the simulated cycles one iteration advances the
	// machine clock by (from the benchmark's sim-cycles/op metric);
	// SimCyclesPerSec is the derived simulation speed.
	SimCyclesOp     float64            `json:"sim_cycles_op,omitempty"`
	SimCyclesPerSec float64            `json:"sim_cycles_per_sec,omitempty"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk JSON schema.
type File struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write aggregated results as JSON to this file")
	baseline := flag.String("baseline", "", "compare against this baseline JSON and fail on regression")
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional ns/op regression vs the baseline")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	cur, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(cur, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := readFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if !compare(os.Stdout, base, cur, *threshold) {
		os.Exit(1)
	}
}

func readFile(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// sample is the raw numbers of one benchmark run line. iters is go-test's
// per-run iteration count: when one benchmark shows up at different
// -benchtime settings, only the highest-iteration (most accurate) samples
// are aggregated.
type sample struct {
	iters                   int
	nsOp, bytesOp, allocsOp float64
	metrics                 map[string]float64
}

// parse reads go-test benchmark output and aggregates repeated runs.
func parse(r io.Reader) (*File, error) {
	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		name := trimCPUSuffix(fields[0])
		s := sample{iters: iters}
		s.metrics = make(map[string]float64)
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.nsOp = v
			case "B/op":
				s.bytesOp = v
			case "allocs/op":
				s.allocsOp = v
			default:
				s.metrics[unit] = v
			}
		}
		if !ok || s.nsOp == 0 {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := &File{Benchmarks: make(map[string]Bench, len(order))}
	for _, name := range order {
		ss := bestSamples(samples[name])
		b := Bench{
			Runs:     len(ss),
			NsOp:     median(ss, func(s sample) float64 { return s.nsOp }),
			BytesOp:  median(ss, func(s sample) float64 { return s.bytesOp }),
			AllocsOp: median(ss, func(s sample) float64 { return s.allocsOp }),
		}
		units := make(map[string]bool)
		for _, s := range ss {
			for u := range s.metrics {
				units[u] = true
			}
		}
		if len(units) > 0 {
			b.Metrics = make(map[string]float64, len(units))
			for u := range units {
				b.Metrics[u] = median(ss, func(s sample) float64 { return s.metrics[u] })
			}
		}
		if cyc := b.Metrics["sim-cycles/op"]; cyc > 0 && b.NsOp > 0 {
			b.SimCyclesOp = cyc
			b.SimCyclesPerSec = cyc / b.NsOp * 1e9
		}
		out.Benchmarks[name] = b
	}
	return out, nil
}

// bestSamples keeps only the runs with the highest iteration count, so a
// precise -benchtime 20x pass supersedes a coarse 1x pass of the same
// benchmark in the same input.
func bestSamples(ss []sample) []sample {
	max := 0
	for _, s := range ss {
		if s.iters > max {
			max = s.iters
		}
	}
	best := ss[:0:0]
	for _, s := range ss {
		if s.iters == max {
			best = append(best, s)
		}
	}
	return best
}

// trimCPUSuffix drops go-test's "-8" GOMAXPROCS tag from a benchmark name.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func median(ss []sample, get func(sample) float64) float64 {
	vals := make([]float64, len(ss))
	for i, s := range ss {
		vals[i] = get(s)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// compare prints a baseline-vs-current table and reports whether every
// shared benchmark stayed within the allowed ns/op regression.
func compare(w io.Writer, base, cur *File, threshold float64) bool {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	pass := true
	fmt.Fprintf(w, "%-34s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, name := range names {
		nb := cur.Benchmarks[name]
		bb, shared := base.Benchmarks[name]
		if !shared || bb.NsOp == 0 {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s\n", name, "-", nb.NsOp, "new")
			continue
		}
		delta := (nb.NsOp - bb.NsOp) / bb.NsOp
		status := ""
		if delta > threshold {
			status = "  REGRESSION"
			pass = false
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%%%s\n", name, bb.NsOp, nb.NsOp, 100*delta, status)
	}
	if !pass {
		fmt.Fprintf(w, "benchjson: ns/op regression beyond %.0f%% threshold\n", 100*threshold)
	}
	return pass
}
