module persistbarriers

go 1.24
