#!/usr/bin/env bash
# bench.sh — run the top-level benchmark suite and emit the committed benchmark baseline.
#
# Usage: scripts/bench.sh [-quick] [-out FILE] [-compare BASELINE] [-count N]
#
#   -quick            run only the headline benchmarks (Fig4 kernel,
#                     simulator core, machine construction, pmkv shard
#                     scaling, engine op cost, wire-protocol pipeline)
#                     — the CI gate
#   -out FILE         where to write the aggregated JSON
#                     (default BENCH_PR10.json)
#   -compare BASELINE also compare against a committed baseline JSON and
#                     fail on ns/op regression beyond the threshold
#                     (see cmd/benchjson)
#   -threshold X      fractional regression allowed by -compare
#                     (default 0.25: the live client/server benchmarks
#                     swing ±20% run-to-run on 1-CPU CI hosts, and the
#                     gate exists to catch the order-of-magnitude
#                     regressions, not scheduler noise)
#   -count N          runs per benchmark (default 7 quick / 5 full)
#
# Heavy benchmarks (full-figure sweeps, seconds per iteration) run at
# -benchtime 1x -count N: each iteration is a full deterministic
# experiment, and repeated single runs aggregated by median
# (cmd/benchjson) beat Go's duration targeting on small machines. The
# sub-millisecond headline benchmarks additionally run at -benchtime 20x,
# which amortizes single-iteration timing noise; cmd/benchjson keeps the
# highest-iteration samples when a benchmark appears in both passes.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
out=BENCH_PR10.json
compare=""
count=""
threshold=0.25
while [ $# -gt 0 ]; do
    case "$1" in
    -quick) quick=1 ;;
    -out)
        out=$2
        shift
        ;;
    -compare)
        compare=$2
        shift
        ;;
    -count)
        count=$2
        shift
        ;;
    -threshold)
        threshold=$2
        shift
        ;;
    *)
        echo "usage: scripts/bench.sh [-quick] [-out FILE] [-compare BASELINE] [-threshold X] [-count N]" >&2
        exit 2
        ;;
    esac
    shift
done

headline='^(BenchmarkFig4IDT|BenchmarkSimulatorCore|BenchmarkTable1Config|BenchmarkPmkvShardScaling|BenchmarkEngineOpCost)$'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

hcount=${count:-7}
if [ "$quick" = 0 ]; then
    go test -run '^$' -bench '.' -benchmem -benchtime 1x -count "${count:-5}" . | tee "$tmp"
fi
go test -run '^$' -bench "$headline" -benchmem -benchtime 20x -count "$hcount" . | tee -a "$tmp"

# Live wire-protocol pipeline: a loopback server per sub-benchmark, JSON
# line protocol vs pipelined binary at several windows. Fixed iteration
# counts (not duration targeting) keep the per-run drain/recovery cost
# bounded; 3 repeats give cmd/benchjson a median.
go test -run '^$' -bench '^BenchmarkProtoPipeline$' -benchtime 2000x \
    -count "${count:-3}" ./cmd/pmkvd | tee -a "$tmp"

# Recovery replay vs store size: the pre-v2 replay (map lookups inside
# the sort comparators, serial bucket loop) against the optimized serial
# and parallel paths. Duration targeting is fine here — each iteration
# is a pure in-memory replay over a prebuilt crash image.
go test -run '^$' -bench '^BenchmarkParallelRecovery$' -benchtime 30x \
    -count "${count:-3}" ./internal/pmkv | tee -a "$tmp"

# GET read paths: lock-free index hits vs forced mailbox fallbacks vs
# the 95/5 headline mix, on a live 4-shard store. Fixed iteration counts
# bound the per-run warmup/drain cost; the hit path is ~250 ns/op, so
# the count is high enough to keep the timed loop well clear of
# scheduler noise on 1-CPU hosts.
go test -run '^$' -bench '^BenchmarkReadFastPath$' -benchtime 20000x \
    -count "${count:-3}" ./internal/pmkv | tee -a "$tmp"

args=(-out "$out")
if [ -n "$compare" ]; then
    args+=(-baseline "$compare" -threshold "$threshold")
fi
go run ./cmd/benchjson "${args[@]}" "$tmp"
echo "bench.sh: wrote $out"
