#!/usr/bin/env bash
# scale_smoke.sh — live shard-scaling smoke test: a 4-shard pmkvd with a
# crash instant armed serves a 5-second pmkvload run, with the admin
# endpoint and flight recorder on. Mid-run the smoke scrapes /metrics and
# validates the exposition with promcheck; then the crashing shard fires,
# the server self-initiates the drain, every shard's recovery invariants
# must verify, and the flight-recorder dump must be written and
# consistent with the recovery report (no ack beyond the durable prefix).
# The dump is copied to $FLIGHT_ARTIFACT (default flight-recorder.json in
# the repo root) so CI can upload it as a post-mortem artifact. The load
# is rate-limited so recovery verification (superlinear in retired
# publishes) stays fast in CI.
#
# Both phases run with -check, so the online durable-linearizability
# verdict line must appear — under a clean SIGTERM drain first, then
# under the injected crash. Each phase drives BOTH wire protocols at
# once: a JSON-line loader and a pipelined binary loader (-proto binary)
# share the server, so protocol auto-detection, the pipelined completion
# path, and the drain/crash handling are all exercised together.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=${SMOKE_ADDR:-127.0.0.1:7199}
admin=${SMOKE_ADMIN:-127.0.0.1:7299}
artifact=${FLIGHT_ARTIFACT:-flight-recorder.json}
dir=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

go build -o "$dir/pmkvd" ./cmd/pmkvd
go build -o "$dir/pmkvload" ./cmd/pmkvload
go build -o "$dir/promcheck" ./cmd/promcheck

# Phase 1: clean drain under load with the durable-linearizability
# checker on — SIGTERM quiesces every shard and the verdict must be OK.
"$dir/pmkvd" -addr "$addr" -shards 4 -check >"$dir/pmkvd-clean.log" 2>&1 &
pid=$!
sleep 1
"$dir/pmkvload" -addr "$addr" -conns 2 -rate 150 -duration 2s &
jsonload=$!
"$dir/pmkvload" -addr "$addr" -proto binary -window 32 -conns 2 -rate 150 -duration 2s
wait "$jsonload"
kill -TERM "$pid"
for _ in $(seq 1 120); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "scale_smoke: pmkvd (clean phase) did not drain within 120s" >&2
    cat "$dir/pmkvd-clean.log" >&2
    exit 1
fi
cat "$dir/pmkvd-clean.log"
grep -q "clean drain" "$dir/pmkvd-clean.log" || {
    echo "scale_smoke: clean phase did not report a clean drain" >&2
    exit 1
}
grep -q "durable linearizability: OK" "$dir/pmkvd-clean.log" || {
    echo "scale_smoke: no durable-linearizability verdict under clean drain" >&2
    exit 1
}

# Phase 1b: read-heavy load (95/5) with the checker on — the GET fast
# path must actually serve hits (counted on /metrics), and the clean
# drain's durable-linearizability verdict must still be OK with reads
# bypassing the shard mailboxes.
"$dir/pmkvd" -addr "$addr" -shards 4 -check -admin "$admin" >"$dir/pmkvd-read.log" 2>&1 &
pid=$!
sleep 1
"$dir/pmkvload" -addr "$addr" -get 0.95 -del 0.01 -conns 2 -rate 300 -duration 2s &
jsonload=$!
"$dir/pmkvload" -addr "$addr" -proto binary -window 32 -get 0.95 -del 0.01 \
    -conns 2 -rate 300 -duration 2s
wait "$jsonload"
curl -fsS "http://$admin/metrics" >"$dir/metrics-read.txt" || {
    echo "scale_smoke: /metrics scrape (read phase) failed" >&2
    exit 1
}
"$dir/promcheck" "$dir/metrics-read.txt"
grep '^pmkv_read_fast_hits_total' "$dir/metrics-read.txt" | awk '{s+=$2} END {exit s>0?0:1}' || {
    echo "scale_smoke: read-heavy phase recorded no fast-path hits" >&2
    exit 1
}
kill -TERM "$pid"
for _ in $(seq 1 120); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "scale_smoke: pmkvd (read phase) did not drain within 120s" >&2
    cat "$dir/pmkvd-read.log" >&2
    exit 1
fi
cat "$dir/pmkvd-read.log"
grep -q "durable linearizability: OK" "$dir/pmkvd-read.log" || {
    echo "scale_smoke: no durable-linearizability verdict in the read-heavy phase" >&2
    exit 1
}

# Phase 2: crash mid-load, flight recorder + checker both armed.
"$dir/pmkvd" -addr "$addr" -shards 4 -crash-at 100000 -check \
    -admin "$admin" -flight-dump "$dir/flight.json" >"$dir/pmkvd.log" 2>&1 &
pid=$!
sleep 1

"$dir/pmkvload" -addr "$addr" -conns 4 -rate 200 -duration 5s &
jsonload=$!
"$dir/pmkvload" -addr "$addr" -proto binary -window 32 -multi 2 \
    -conns 4 -rate 200 -duration 5s -admin "$admin" &
loadpid=$!

# Mid-run: scrape the live exposition and assert it parses.
sleep 2
curl -fsS "http://$admin/metrics" >"$dir/metrics.txt" || {
    echo "scale_smoke: /metrics scrape failed" >&2
    exit 1
}
"$dir/promcheck" "$dir/metrics.txt"
grep -q '^pmkv_stage_duration_seconds_bucket' "$dir/metrics.txt" || {
    echo "scale_smoke: exposition has no stage histograms" >&2
    exit 1
}
curl -fsS "http://$admin/statz" >"$dir/statz.json" || {
    echo "scale_smoke: /statz scrape failed" >&2
    exit 1
}
grep -q '"stages"' "$dir/statz.json" || {
    echo "scale_smoke: /statz has no stage breakdown" >&2
    exit 1
}

wait "$loadpid"
wait "$jsonload"

# The crash fires mid-load and the server drains itself; wait for exit.
for _ in $(seq 1 120); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "scale_smoke: pmkvd did not drain within 120s" >&2
    cat "$dir/pmkvd.log" >&2
    exit 1
fi

cat "$dir/pmkvd.log"
grep -q "crashed at cycle" "$dir/pmkvd.log" || {
    echo "scale_smoke: no shard reached its crash instant" >&2
    exit 1
}
grep -q "recovery invariants: OK" "$dir/pmkvd.log" || {
    echo "scale_smoke: recovery verification did not pass" >&2
    exit 1
}
grep -q "flight recorder: .* consistency OK" "$dir/pmkvd.log" || {
    echo "scale_smoke: flight recorder inconsistent with recovery report" >&2
    exit 1
}
grep -q "durable linearizability: OK" "$dir/pmkvd.log" || {
    echo "scale_smoke: no durable-linearizability verdict under crash" >&2
    exit 1
}
[ -s "$dir/flight.json" ] || {
    echo "scale_smoke: flight-recorder dump missing or empty" >&2
    exit 1
}
cp "$dir/flight.json" "$artifact"
echo "scale_smoke: flight-recorder dump at $artifact"
echo "scale_smoke: OK"
