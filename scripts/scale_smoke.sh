#!/usr/bin/env bash
# scale_smoke.sh — live shard-scaling smoke test: a 4-shard pmkvd with a
# crash instant armed serves a 5-second pmkvload run. The crashing shard
# fires mid-load, the server self-initiates the drain, and every shard's
# recovery invariants must verify. The load is rate-limited so recovery
# verification (superlinear in retired publishes) stays fast in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=${SMOKE_ADDR:-127.0.0.1:7199}
dir=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

go build -o "$dir/pmkvd" ./cmd/pmkvd
go build -o "$dir/pmkvload" ./cmd/pmkvload

"$dir/pmkvd" -addr "$addr" -shards 4 -crash-at 100000 >"$dir/pmkvd.log" 2>&1 &
pid=$!
sleep 1

"$dir/pmkvload" -addr "$addr" -conns 8 -rate 400 -duration 5s

# The crash fires mid-load and the server drains itself; wait for exit.
for _ in $(seq 1 120); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "scale_smoke: pmkvd did not drain within 120s" >&2
    cat "$dir/pmkvd.log" >&2
    exit 1
fi

cat "$dir/pmkvd.log"
grep -q "crashed at cycle" "$dir/pmkvd.log" || {
    echo "scale_smoke: no shard reached its crash instant" >&2
    exit 1
}
grep -q "recovery invariants: OK" "$dir/pmkvd.log" || {
    echo "scale_smoke: recovery verification did not pass" >&2
    exit 1
}
echo "scale_smoke: OK"
