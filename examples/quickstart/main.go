// Quickstart: build the paper's 32-core NVRAM machine, run the queue
// micro-benchmark under the LB++ persist barrier (buffered epoch
// persistency), and compare it with the baseline LB barrier.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/workload"
)

func main() {
	spec := workload.Spec{Threads: 8, OpsPerThread: 40, Seed: 1}

	run := func(idt, pf bool) *machine.Result {
		// The default configuration is the paper's Table 1 machine.
		cfg := machine.DefaultConfig()
		cfg.Cores = spec.Threads
		cfg.Model = machine.LB // lazy barrier = buffered epoch persistency
		cfg.IDT = idt          // inter-thread dependence tracking (§3.1)
		cfg.PF = pf            // proactive flushing (§3.2)

		program, err := workload.Queue(spec)
		if err != nil {
			log.Fatal(err)
		}
		m, err := machine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Load(program); err != nil {
			log.Fatal(err)
		}
		result, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return result
	}

	lb := run(false, false) // the state-of-the-art baseline (Condit et al.)
	lbpp := run(true, true) // the paper's contribution

	fmt.Printf("queue benchmark, %d threads x %d transactions\n\n", spec.Threads, spec.OpsPerThread)
	for _, r := range []*machine.Result{lb, lbpp} {
		fmt.Printf("%-6s exec=%8d cycles  throughput=%.3f tx/kcycle  conflicting-epochs=%.0f%%\n",
			r.Barrier, r.ExecCycles, r.Throughput(), 100*r.Epochs.ConflictingFraction())
	}
	fmt.Printf("\nLB++ speedup over LB: %.2fx\n", lbpp.Throughput()/lb.Throughput())
}
