// checkpoint: a long-running multi-threaded application under bulk-mode
// buffered strict persistency (§5.2). The hardware persistence engine
// inserts a barrier every N dynamic stores, checkpoints the register state
// into each epoch, and undo-logs first writes. The example crashes the
// machine mid-run, replays the undo log, and verifies that the recovered
// state is epoch-atomic — the whole point of BSP: the program can restart
// from the last completed hardware epoch after any failure.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/workload"
)

func main() {
	// An unmodified application: no persist barriers in the trace. The
	// ssca2-like profile is the paper's stress case (write-intensive,
	// fine-grained sharing).
	prof := workload.Apps()["ssca2"]
	program, err := prof.Generate(workload.Spec{Threads: 8, OpsPerThread: 3000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	newMachine := func() *machine.Machine {
		cfg := machine.DefaultConfig()
		cfg.Cores = 8
		cfg.Model = machine.LB
		cfg.IDT, cfg.PF = true, true // LB++
		cfg.BulkEpochStores = 250    // hardware barrier every 250 stores
		cfg.Logging = true           // undo logging for epoch atomicity
		cfg.CheckpointLines = 4      // register state saved per epoch
		cfg.RecordHistory = true
		m, err := machine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Load(program); err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Pull the plug at successive instants until a crash lands mid-flush
	// (some epoch partially persisted) — the case undo logging exists for.
	for crash := 20000; ; crash += 3500 {
		result, err := newMachine().RunUntil(uint64AsCycle(crash))
		if err != nil {
			log.Fatal(err)
		}
		if result.Finished {
			fmt.Println("the run completed before any crash landed mid-flush; nothing to roll back")
			return
		}

		// Recovery, exactly as §5.2.1 describes: roll back every line
		// whose durable version belongs to an epoch the hardware had not
		// declared persisted, using the durable undo log.
		g := recovery.NewGraph(result.Histories)
		recovered := recovery.Rollback(g, result.Image, result.UndoLog)
		rolledBack := 0
		for line, v := range result.Image {
			if recovered[line] != v {
				rolledBack++
			}
		}
		if rolledBack == 0 {
			continue // crash fell between flushes; try a later instant
		}

		fmt.Printf("crash at cycle %d: %d hardware epochs persisted, %d undo-log entries durable\n",
			crash, result.Epochs.Persisted, len(result.UndoLog))
		fmt.Printf("rollback restored %d lines of partially-persisted epochs\n", rolledBack)

		if err := recovery.CheckAtomicity(g, recovered); err != nil {
			log.Fatalf("recovered state NOT epoch-atomic: %v", err)
		}
		if err := recovery.CheckOrdering(g, result.Image); err != nil {
			log.Fatalf("persist ordering violated: %v", err)
		}
		fmt.Println("recovered state is epoch-atomic ✓ — restart from the last checkpoint is safe")
		return
	}
}

func uint64AsCycle(v int) sim.Cycle { return sim.Cycle(v) }
