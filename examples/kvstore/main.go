// kvstore: a durable key-value store under buffered epoch persistency,
// crashed at an arbitrary instant. Four client sessions hammer the pmkv
// engine concurrently; every Put becomes the paper's Figure 10 discipline
// on the simulated multicore — write the entry, persist barrier, publish
// the bucket head, persist barrier. Mid-run the machine loses power, and
// recovery proves the guarantee BEP gives you: the durable image is an
// epoch-ordered cut, no bucket head names a torn entry, and each
// session's durable writes are a prefix of what it issued.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sort"

	"persistbarriers/internal/pmkv"
)

func main() {
	// Pull the plug mid-run. (Set to 0 for a clean drain: then every
	// write recovers.)
	const crashCycle = 12000

	engine, err := pmkv.New(pmkv.Config{CrashAt: crashCycle})
	if err != nil {
		log.Fatal(err)
	}

	// Four sessions (one per simulated core) write a shared keyspace in
	// batches; each batch is one group commit, so the sessions contend on
	// bucket heads and the epoch hardware resolves the conflicts.
	sessions := make([]*pmkv.Session, 4)
	for i := range sessions {
		sessions[i] = engine.NewSession()
	}
	issued := 0
	for round := 0; !engine.Crashed(); round++ {
		batch := make([]pmkv.Request, 0, len(sessions))
		for i, s := range sessions {
			key := fmt.Sprintf("user:%d", (round*len(sessions)+i)%10)
			val := fmt.Sprintf("r%d-s%d", round, i)
			op := pmkv.Put
			if round > 0 && (round+i)%7 == 0 {
				op = pmkv.Delete
			}
			batch = append(batch, pmkv.Request{Sess: s, Op: op, Key: key, Value: []byte(val)})
		}
		_, err := engine.Apply(batch)
		if err == pmkv.ErrCrashed {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		issued += len(batch)
		if round >= 40 { // bound the demo if the crash never lands
			break
		}
	}

	result, err := engine.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash at cycle %d: %d ops issued before power loss, %d lines durable\n",
		engine.Now(), issued, len(result.Image))

	// Recovery: rebuild the happens-before graph from the retained epoch
	// histories, strengthen it with the per-bucket publish order, and
	// verify every invariant — epoch ordering, persisted-set closure, KV
	// atomicity (no torn entries), and per-session prefix durability.
	report, err := engine.Verify(result)
	if err != nil {
		log.Fatalf("INCONSISTENT persistent state: %v", err)
	}
	fmt.Printf("recovery check: %d epochs, %d publish-order edges, %d/%d publishes durable ✓\n",
		report.Epochs, report.PublishEdges, report.DurablePublishes, report.TotalPublishes)

	// Reconstruct the durable contents — what a restarting kvstore would
	// actually serve.
	recovered, err := engine.RecoveredState(result)
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 0, len(recovered))
	for k := range recovered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("recovered state (%d keys, fingerprint %.16s):\n",
		len(recovered), report.Fingerprint)
	for _, k := range keys {
		fmt.Printf("  %-8s = %s\n", k, recovered[k])
	}
	fmt.Println("(every recovered pointer is a complete, barrier-ordered write — nothing torn)")
}
