// kvstore: a persistent hash-table application under buffered epoch
// persistency, crashed at an arbitrary instant. The example shows the
// guarantee BEP gives you: whatever the crash instant, the durable image
// respects the epoch ordering the persist barriers established — the
// recovery checker proves it for this run.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/workload"
)

func main() {
	// Eight threads insert/delete/search 512-byte entries in per-thread
	// hash tables, with persist barriers splitting every insert into
	// "write entry" and "publish pointer" epochs (the paper's Figure 10
	// discipline).
	program, err := workload.Hash(workload.Spec{Threads: 8, OpsPerThread: 40, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	cfg.Model = machine.LB
	cfg.IDT, cfg.PF = true, true // LB++
	cfg.RecordHistory = true     // retain epoch write sets for recovery

	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Load(program); err != nil {
		log.Fatal(err)
	}

	// Pull the plug mid-run.
	const crashCycle = 15000
	result, err := m.RunUntil(crashCycle)
	if err != nil {
		log.Fatal(err)
	}

	durable := len(result.Image)
	var persisted, unpersisted int
	for _, hist := range result.Histories {
		for _, s := range hist {
			if s.PersistedFlag {
				persisted++
			} else if len(s.Writes) > 0 {
				unpersisted++
			}
		}
	}
	fmt.Printf("crash at cycle %d: %d lines durable, %d epochs persisted, %d in flight\n",
		crashCycle, durable, persisted, unpersisted)

	// Recovery: verify the durable image is a happens-before-consistent
	// cut of the epoch history. If the hardware (or this simulator) ever
	// persisted a dependent epoch before its source, this fails.
	g := recovery.NewGraph(result.Histories)
	if err := recovery.CheckOrdering(g, result.Image); err != nil {
		log.Fatalf("INCONSISTENT persistent state: %v", err)
	}
	if err := recovery.CheckPersistedClosed(g, result.Image); err != nil {
		log.Fatalf("INCONSISTENT persisted set: %v", err)
	}
	fmt.Println("recovery check: durable state is a consistent epoch-ordered cut ✓")
	fmt.Println("(a recovering kvstore can trust every published pointer it finds)")
}
