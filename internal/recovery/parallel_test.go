package recovery

import (
	"fmt"
	"testing"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
)

// violationGraph builds a multi-core history with violations planted at
// chosen epoch numbers: each planted core writes an epoch whose program
// predecessor is missing a line from the image.
func violationGraph(cores, perCore int, planted map[int]bool) (*Graph, map[mem.Line]mem.Version) {
	image := make(map[mem.Line]mem.Version)
	var hist [][]*epoch.Summary
	v := mem.Version(1)
	line := mem.Line(1)
	for c := 0; c < cores; c++ {
		var h []*epoch.Summary
		for n := 0; n < perCore; n++ {
			writes := map[mem.Line]mem.Version{line: v}
			if planted[c*perCore+n] && n > 0 {
				// The predecessor's line is dropped from the image while
				// this epoch's write is durable.
				delete(image, mem.Line(line-1))
			}
			image[line] = v
			h = append(h, summary(c, uint64(n), false, writes))
			v++
			line++
		}
		hist = append(hist, h)
	}
	return NewGraph(hist), image
}

// TestCheckOrderingParallelMatchesSerial: any worker count must report
// exactly the violation the serial scan reports — the one at the lowest
// epoch index — and agree with the serial scan on clean images.
func TestCheckOrderingParallelMatchesSerial(t *testing.T) {
	for _, planted := range []map[int]bool{
		nil,                           // clean
		{17: true},                    // single violation
		{5: true, 23: true, 38: true}, // several: lowest index must win
	} {
		g, image := violationGraph(4, 10, planted)
		want := CheckOrdering(g, image)
		for workers := 1; workers <= 6; workers++ {
			got := CheckOrderingParallel(g, image, workers)
			if (got == nil) != (want == nil) {
				t.Fatalf("planted %v, workers %d: got %v, serial %v", planted, workers, got, want)
			}
			if got != nil && got.Error() != want.Error() {
				t.Fatalf("planted %v, workers %d: violation %q != serial %q",
					planted, workers, got, want)
			}
		}
	}
}

// TestCheckOrderingParallelLargeClean exercises the strided split on a
// graph bigger than any worker count in play.
func TestCheckOrderingParallelLargeClean(t *testing.T) {
	g, image := violationGraph(8, 64, nil)
	for _, workers := range []int{0, 1, 3, 16, 1024} {
		if err := CheckOrderingParallel(g, image, workers); err != nil {
			t.Fatalf("workers %d: clean graph rejected: %v", workers, err)
		}
	}
}

var benchSink error

// BenchmarkCheckOrdering compares the serial scan with the strided
// parallel one (speedup is proportional to cores; on a single-core host
// they tie).
func BenchmarkCheckOrdering(b *testing.B) {
	g, image := violationGraph(8, 128, nil)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = CheckOrderingParallel(g, image, workers)
			}
		})
	}
}
