// Package recovery verifies crash consistency of the simulated NVRAM
// image against the persistency model's guarantees, and implements the
// undo-log rollback that bulk-mode BSP (§5.2.1) performs on recovery.
//
// The simulator never stores data bytes: every store has a globally unique,
// monotonically increasing version, the NVRAM shadow image maps lines to
// the version that is durable, and each epoch's history records the final
// version it wrote to each line. Because a line can only be rewritten
// after the epoch that previously wrote it has persisted (the conflict
// rules of §3), "image[L] >= v" is exactly the statement "version v of L,
// or a legitimately later one, is durable".
package recovery

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/nvram"
)

// Graph is the happens-before relation over epochs: per-core program order
// plus recorded inter-thread dependence edges (IDT registers and
// online-enforced orderings).
type Graph struct {
	epochs map[epoch.ID]*epoch.Summary
	// preds[e] are the direct happens-before predecessors of e.
	preds map[epoch.ID][]epoch.ID
	// byVersion finds the epoch that wrote a given version.
	byVersion map[mem.Version]epoch.ID
	order     []epoch.ID // deterministic iteration order
}

// NewGraph builds the happens-before graph from per-core histories.
func NewGraph(histories [][]*epoch.Summary) *Graph {
	g := &Graph{
		epochs:    make(map[epoch.ID]*epoch.Summary),
		preds:     make(map[epoch.ID][]epoch.ID),
		byVersion: make(map[mem.Version]epoch.ID),
	}
	for _, hist := range histories {
		for i, s := range hist {
			g.epochs[s.ID] = s
			g.order = append(g.order, s.ID)
			if i > 0 {
				g.preds[s.ID] = append(g.preds[s.ID], hist[i-1].ID)
			}
			g.preds[s.ID] = append(g.preds[s.ID], s.Deps...)
			for _, v := range s.Writes {
				g.byVersion[v] = s.ID
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		if g.order[i].Core != g.order[j].Core {
			return g.order[i].Core < g.order[j].Core
		}
		return g.order[i].Num < g.order[j].Num
	})
	return g
}

// AddEdge records an externally known happens-before edge: earlier must
// persist before later. Application layers (e.g. a KV store that knows
// its publish order per bucket) use this to strengthen the graph with
// dependences the hardware histories may have resolved without a
// register. Edges naming unknown epochs are ignored.
func (g *Graph) AddEdge(later, earlier epoch.ID) {
	if later == earlier {
		return
	}
	if g.epochs[later] == nil || g.epochs[earlier] == nil {
		return
	}
	for _, p := range g.preds[later] {
		if p == earlier {
			return
		}
	}
	g.preds[later] = append(g.preds[later], earlier)
}

// Summary returns the history entry for an epoch, or nil.
func (g *Graph) Summary(id epoch.ID) *epoch.Summary { return g.epochs[id] }

// Epochs returns every known epoch in deterministic order.
func (g *Graph) Epochs() []epoch.ID { return g.order }

// Predecessors returns the transitive happens-before predecessors of id
// (not including id).
func (g *Graph) Predecessors(id epoch.ID) []epoch.ID {
	seen := map[epoch.ID]bool{id: true}
	var out []epoch.ID
	stack := append([]epoch.ID(nil), g.preds[id]...)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
		stack = append(stack, g.preds[p]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].Num < out[j].Num
	})
	return out
}

// WriterOf returns the epoch that produced a version, if known.
func (g *Graph) WriterOf(v mem.Version) (epoch.ID, bool) {
	id, ok := g.byVersion[v]
	return id, ok
}

// durableAll is fullyDurable without the sorted line report: the fast
// screening passes only need a verdict, not a deterministic witness.
func durableAll(s *epoch.Summary, image map[mem.Line]mem.Version) bool {
	for l, v := range s.Writes {
		if image[l] < v {
			return false
		}
	}
	return true
}

// fullyDurable reports whether every final write of epoch s is reflected
// in the image (possibly superseded by a later version, which the conflict
// rules only permit after s persisted).
func fullyDurable(s *epoch.Summary, image map[mem.Line]mem.Version) (mem.Line, bool) {
	lines := make([]mem.Line, 0, len(s.Writes))
	for l := range s.Writes {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		if image[l] < s.Writes[l] {
			return l, false
		}
	}
	return 0, true
}

// touched reports whether any of the epoch's own versions is the durable
// one for its line (the epoch left a footprint in the image).
func touched(s *epoch.Summary, image map[mem.Line]mem.Version) bool {
	for l, v := range s.Writes {
		if image[l] == v {
			return true
		}
	}
	return false
}

// OrderingViolation describes a broken persist-order constraint.
type OrderingViolation struct {
	Later   epoch.ID // epoch with a durable footprint
	Earlier epoch.ID // happens-before predecessor that is not fully durable
	Line    mem.Line // a missing line of Earlier
}

// Error implements error.
func (v *OrderingViolation) Error() string {
	return fmt.Sprintf("recovery: %v has durable data but predecessor %v is missing %v",
		v.Later, v.Earlier, v.Line)
}

// requiredDurable computes the set of epochs the ordering invariant
// obliges to be fully durable: the transitive happens-before
// predecessors of every epoch with a durable footprint. One reverse
// closure over the whole graph — O(epochs + edges) — instead of a
// transitive walk per touched epoch, which made clean-image checking
// quadratic and dominated live-server drains.
func requiredDurable(g *Graph, image map[mem.Line]mem.Version) []epoch.ID {
	required := make(map[epoch.ID]bool, len(g.order))
	var stack, out []epoch.ID
	for _, id := range g.order {
		if touched(g.epochs[id], image) {
			stack = append(stack, g.preds[id]...)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if required[p] || g.epochs[p] == nil {
			continue
		}
		required[p] = true
		out = append(out, p)
		stack = append(stack, g.preds[p]...)
	}
	return out
}

// CheckOrdering verifies the fundamental epoch-ordering invariant of every
// buffered persistency model: if any line of epoch E is durable, every
// epoch that happens-before E is fully durable. It returns the first
// violation found, or nil.
//
// Clean images — the overwhelmingly common case — are decided by the
// linear-time screening (requiredDurable + one durability scan per
// epoch). Only when that screening finds a failure does the original
// per-epoch scan run, to produce the exact deterministic violation the
// serial order defines.
func CheckOrdering(g *Graph, image map[mem.Line]mem.Version) error {
	for _, id := range requiredDurable(g, image) {
		if !durableAll(g.epochs[id], image) {
			if v := checkOrderingRange(g, image, 0, 1, len(g.order)); v != nil {
				return v
			}
			return nil
		}
	}
	return nil
}

// checkOrderingRange scans epochs at indices start, start+stride, ... of
// g.order (up to bound), returning the violation at the lowest index, or
// nil. It only reads the graph, so strided scans may run concurrently.
func checkOrderingRange(g *Graph, image map[mem.Line]mem.Version, start, stride, bound int) *OrderingViolation {
	for i := start; i < bound; i += stride {
		id := g.order[i]
		s := g.epochs[id]
		if !touched(s, image) {
			continue
		}
		for _, pid := range g.Predecessors(id) {
			ps := g.epochs[pid]
			if ps == nil {
				continue
			}
			if line, ok := fullyDurable(ps, image); !ok {
				return &OrderingViolation{Later: id, Earlier: pid, Line: line}
			}
		}
	}
	return nil
}

// CheckOrderingParallel is CheckOrdering fanned across workers: the
// linear-time screening's per-epoch durability scans stride across
// goroutines (they are independent reads of the graph and image). The
// result is deterministic regardless of worker count — if any worker's
// share fails the screening, the serial precise scan runs and reports
// the violation at the lowest epoch index, exactly what CheckOrdering
// reports. workers <= 0 means GOMAXPROCS. The graph must not be mutated
// (no AddEdge) while the check runs.
func CheckOrderingParallel(g *Graph, image map[mem.Line]mem.Version, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.order) {
		workers = len(g.order)
	}
	if workers <= 1 {
		return CheckOrdering(g, image)
	}
	required := requiredDurable(g, image)
	if workers > len(required) {
		workers = len(required)
	}
	failed := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(required); i += workers {
				if !durableAll(g.epochs[required[i]], image) {
					failed[w] = true
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, f := range failed {
		if f {
			if v := checkOrderingRange(g, image, 0, 1, len(g.order)); v != nil {
				return v
			}
			return nil
		}
	}
	return nil
}

// CheckPersistedClosed verifies that the set of epochs the hardware
// declared persisted is downward-closed under happens-before and fully
// durable in the image.
//
// The screening checks each persisted epoch's durability once and its
// DIRECT predecessors' flags — sufficient, because a set closed under
// direct predecessors is closed under the transitive relation by
// induction over the DAG. Only on failure does the original
// transitive-walk scan run, preserving the exact deterministic error.
func CheckPersistedClosed(g *Graph, image map[mem.Line]mem.Version) error {
	clean := true
screen:
	for _, id := range g.order {
		s := g.epochs[id]
		if !s.PersistedFlag {
			continue
		}
		if !durableAll(s, image) {
			clean = false
			break
		}
		for _, pid := range g.preds[id] {
			if ps := g.epochs[pid]; ps != nil && !ps.PersistedFlag {
				clean = false
				break screen
			}
		}
	}
	if clean {
		return nil
	}
	for _, id := range g.order {
		s := g.epochs[id]
		if !s.PersistedFlag {
			continue
		}
		if line, ok := fullyDurable(s, image); !ok {
			return fmt.Errorf("recovery: epoch %v declared persisted but line %v is not durable", id, line)
		}
		for _, pid := range g.Predecessors(id) {
			if ps := g.epochs[pid]; ps != nil && !ps.PersistedFlag {
				return fmt.Errorf("recovery: persisted epoch %v has unpersisted predecessor %v", id, pid)
			}
		}
	}
	return nil
}

// Rollback applies the durable undo log to the crash image, restoring the
// pre-epoch value of every line whose durable version belongs to an epoch
// the hardware had not declared persisted — the §5.2.1 recovery step that
// makes bulk-mode BSP epochs atomic. It returns the recovered image.
func Rollback(g *Graph, image map[mem.Line]mem.Version, log []nvram.LogEntry) map[mem.Line]mem.Version {
	recovered := make(map[mem.Line]mem.Version, len(image))
	for l, v := range image {
		recovered[l] = v
	}
	// Index undo entries by (epoch, line); last entry wins (there is at
	// most one per epoch+line by construction).
	type key struct {
		id   epoch.ID
		line mem.Line
	}
	undo := make(map[key]mem.Version, len(log))
	for _, e := range log {
		undo[key{epoch.ID{Core: e.EpochCore, Num: e.EpochNum}, e.Line}] = e.Old
	}
	// Repeatedly roll back lines whose durable version came from an
	// unpersisted epoch. Old values may themselves need further rollback
	// in pathological orders, so iterate to a fixed point; each step
	// strictly decreases some line's version, so it terminates.
	for changed := true; changed; {
		changed = false
		lines := make([]mem.Line, 0, len(recovered))
		for l := range recovered {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		for _, l := range lines {
			v := recovered[l]
			if v == mem.NoVersion {
				continue
			}
			writer, known := g.WriterOf(v)
			if !known {
				continue
			}
			s := g.epochs[writer]
			if s == nil || s.PersistedFlag {
				continue
			}
			if old, ok := undo[key{writer, l}]; ok {
				recovered[l] = old
				changed = true
			}
		}
	}
	return recovered
}

// CheckAtomicity verifies that a recovered image reflects whole epochs
// only: no line's version belongs to an epoch that is not fully reflected
// — the BSP guarantee after rollback.
func CheckAtomicity(g *Graph, recovered map[mem.Line]mem.Version) error {
	for _, id := range g.order {
		s := g.epochs[id]
		if !touched(s, recovered) {
			continue
		}
		if line, ok := fullyDurable(s, recovered); !ok {
			return fmt.Errorf("recovery: epoch %v is partially reflected after rollback (line %v missing)", id, line)
		}
	}
	return nil
}

// CheckAll runs the ordering and closure checks, and — when an undo log is
// supplied — rollback plus the atomicity check. It is the one-call entry
// point used by tests and the harness.
func CheckAll(histories [][]*epoch.Summary, image map[mem.Line]mem.Version, log []nvram.LogEntry, withRollback bool) error {
	g := NewGraph(histories)
	if err := CheckOrdering(g, image); err != nil {
		return err
	}
	if err := CheckPersistedClosed(g, image); err != nil {
		return err
	}
	if withRollback {
		recovered := Rollback(g, image, log)
		if err := CheckAtomicity(g, recovered); err != nil {
			return err
		}
	}
	return nil
}
