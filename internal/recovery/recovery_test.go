package recovery

import (
	"testing"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/nvram"
)

func summary(core int, num uint64, persisted bool, writes map[mem.Line]mem.Version, deps ...epoch.ID) *epoch.Summary {
	return &epoch.Summary{
		ID:            epoch.ID{Core: core, Num: num},
		Writes:        writes,
		Deps:          deps,
		PersistedFlag: persisted,
	}
}

func TestGraphProgramOrderEdges(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, true, map[mem.Line]mem.Version{2: 20}),
		summary(0, 2, false, map[mem.Line]mem.Version{3: 30}),
	}}
	g := NewGraph(h)
	preds := g.Predecessors(epoch.ID{Core: 0, Num: 2})
	if len(preds) != 2 {
		t.Fatalf("predecessors = %v, want epochs 0 and 1", preds)
	}
	if w, ok := g.WriterOf(20); !ok || w != (epoch.ID{Core: 0, Num: 1}) {
		t.Fatalf("WriterOf(20) = %v, %v", w, ok)
	}
	if _, ok := g.WriterOf(99); ok {
		t.Fatal("unknown version resolved")
	}
}

func TestGraphInterThreadEdges(t *testing.T) {
	src := epoch.ID{Core: 0, Num: 0}
	h := [][]*epoch.Summary{
		{summary(0, 0, true, map[mem.Line]mem.Version{1: 10})},
		{summary(1, 0, true, map[mem.Line]mem.Version{2: 20}, src)},
	}
	g := NewGraph(h)
	preds := g.Predecessors(epoch.ID{Core: 1, Num: 0})
	if len(preds) != 1 || preds[0] != src {
		t.Fatalf("predecessors = %v, want [%v]", preds, src)
	}
}

func TestCheckOrderingAcceptsPrefix(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10, 2: 11}),
		summary(0, 1, false, map[mem.Line]mem.Version{3: 20}),
	}}
	g := NewGraph(h)
	// Epoch 0 fully durable, epoch 1 not at all: fine.
	img := map[mem.Line]mem.Version{1: 10, 2: 11}
	if err := CheckOrdering(g, img); err != nil {
		t.Fatalf("prefix image rejected: %v", err)
	}
	// Epoch 1 partially durable with epoch 0 complete: also fine under
	// BEP (ordering, not atomicity).
	img[3] = 20
	if err := CheckOrdering(g, img); err != nil {
		t.Fatalf("complete image rejected: %v", err)
	}
}

func TestCheckOrderingDetectsViolation(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, false, map[mem.Line]mem.Version{1: 10, 2: 11}),
		summary(0, 1, false, map[mem.Line]mem.Version{3: 20}),
	}}
	g := NewGraph(h)
	// Epoch 1's line durable while epoch 0 is missing line 2.
	img := map[mem.Line]mem.Version{1: 10, 3: 20}
	err := CheckOrdering(g, img)
	if err == nil {
		t.Fatal("ordering violation not detected")
	}
	v, ok := err.(*OrderingViolation)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if v.Line != 2 || v.Earlier != (epoch.ID{Core: 0, Num: 0}) {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCheckOrderingCrossThread(t *testing.T) {
	src := epoch.ID{Core: 0, Num: 0}
	h := [][]*epoch.Summary{
		{summary(0, 0, false, map[mem.Line]mem.Version{1: 10})},
		{summary(1, 0, false, map[mem.Line]mem.Version{2: 20}, src)},
	}
	g := NewGraph(h)
	// Dependent epoch durable, source missing: violation.
	if err := CheckOrdering(g, map[mem.Line]mem.Version{2: 20}); err == nil {
		t.Fatal("cross-thread ordering violation not detected")
	}
	if err := CheckOrdering(g, map[mem.Line]mem.Version{1: 10, 2: 20}); err != nil {
		t.Fatalf("valid cross-thread image rejected: %v", err)
	}
}

func TestCheckOrderingAllowsSupersededVersions(t *testing.T) {
	// Epoch 0 wrote line 1 = v10; epoch 1 rewrote it = v20 (legal only
	// after epoch 0 persisted). The image holding v20 must count epoch 0
	// as durable.
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, true, map[mem.Line]mem.Version{1: 20, 2: 21}),
	}}
	g := NewGraph(h)
	img := map[mem.Line]mem.Version{1: 20, 2: 21}
	if err := CheckOrdering(g, img); err != nil {
		t.Fatalf("superseded version rejected: %v", err)
	}
}

func TestCheckPersistedClosed(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, true, map[mem.Line]mem.Version{2: 20}),
	}}
	g := NewGraph(h)
	if err := CheckPersistedClosed(g, map[mem.Line]mem.Version{1: 10, 2: 20}); err != nil {
		t.Fatalf("valid persisted set rejected: %v", err)
	}
	// Declared persisted but a line missing from the image.
	if err := CheckPersistedClosed(g, map[mem.Line]mem.Version{1: 10}); err == nil {
		t.Fatal("missing durable line not detected")
	}
	// Persisted epoch with unpersisted predecessor.
	h2 := [][]*epoch.Summary{{
		summary(0, 0, false, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, true, map[mem.Line]mem.Version{2: 20}),
	}}
	g2 := NewGraph(h2)
	if err := CheckPersistedClosed(g2, map[mem.Line]mem.Version{1: 10, 2: 20}); err == nil {
		t.Fatal("non-closed persisted set not detected")
	}
}

func TestRollbackErasesPartialEpoch(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10, 2: 11}),
		summary(0, 1, false, map[mem.Line]mem.Version{1: 20, 3: 21}),
	}}
	g := NewGraph(h)
	// Crash mid-flush of epoch 1: line 1's new version durable, line 3
	// not. Undo log holds epoch 1's pre-images.
	img := map[mem.Line]mem.Version{1: 20, 2: 11}
	log := []nvram.LogEntry{
		{Line: 1, Old: 10, EpochCore: 0, EpochNum: 1},
		{Line: 3, Old: mem.NoVersion, EpochCore: 0, EpochNum: 1},
	}
	rec := Rollback(g, img, log)
	if rec[1] != 10 {
		t.Fatalf("line 1 = %d after rollback, want 10", rec[1])
	}
	if rec[2] != 11 {
		t.Fatalf("line 2 = %d, want untouched 11", rec[2])
	}
	if err := CheckAtomicity(g, rec); err != nil {
		t.Fatalf("recovered image not atomic: %v", err)
	}
}

func TestRollbackLeavesPersistedEpochsAlone(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
	}}
	g := NewGraph(h)
	img := map[mem.Line]mem.Version{1: 10}
	log := []nvram.LogEntry{{Line: 1, Old: mem.NoVersion, EpochCore: 0, EpochNum: 0}}
	rec := Rollback(g, img, log)
	if rec[1] != 10 {
		t.Fatalf("persisted epoch rolled back: line 1 = %d", rec[1])
	}
}

func TestCheckAtomicityDetectsPartialEpoch(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, false, map[mem.Line]mem.Version{1: 10, 2: 11}),
	}}
	g := NewGraph(h)
	if err := CheckAtomicity(g, map[mem.Line]mem.Version{1: 10}); err == nil {
		t.Fatal("partial epoch not detected")
	}
}

func TestCheckAllEndToEnd(t *testing.T) {
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, false, map[mem.Line]mem.Version{1: 20}),
	}}
	img := map[mem.Line]mem.Version{1: 20}
	log := []nvram.LogEntry{{Line: 1, Old: 10, EpochCore: 0, EpochNum: 1}}
	if err := CheckAll(h, img, log, true); err != nil {
		t.Fatalf("CheckAll failed: %v", err)
	}
	// Without rollback the same partially-persisted epoch passes
	// ordering (BEP doesn't promise atomicity).
	if err := CheckAll(h, img, nil, false); err != nil {
		t.Fatalf("CheckAll (no rollback) failed: %v", err)
	}
}
