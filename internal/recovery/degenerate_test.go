package recovery

import (
	"testing"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/nvram"
)

// Degenerate inputs: the checker must be well-defined on empty epochs,
// empty undo logs, and empty graphs — the shapes a crash at cycle 0 or a
// barrier-only trace produces.

func TestEmptyWriteSetEpoch(t *testing.T) {
	// A barrier-barrier sequence closes an epoch that wrote nothing. It
	// must appear in the graph, count as fully durable everywhere, and
	// never block its successors.
	h := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{}),
		summary(0, 1, true, map[mem.Line]mem.Version{1: 10}),
	}}
	g := NewGraph(h)
	if len(g.Epochs()) != 2 {
		t.Fatalf("epochs = %v", g.Epochs())
	}
	img := map[mem.Line]mem.Version{1: 10}
	if err := CheckOrdering(g, img); err != nil {
		t.Fatalf("empty-write-set predecessor blocked its successor: %v", err)
	}
	if err := CheckPersistedClosed(g, img); err != nil {
		t.Fatalf("empty-write-set epoch failed closure: %v", err)
	}
	// And with nil Writes instead of an empty map.
	h2 := [][]*epoch.Summary{{
		summary(0, 0, true, nil),
		summary(0, 1, true, map[mem.Line]mem.Version{1: 10}),
	}}
	if err := CheckAll(h2, img, nil, false); err != nil {
		t.Fatalf("nil write set rejected: %v", err)
	}
}

func TestRollbackEmptyUndoLog(t *testing.T) {
	// An unpersisted epoch's writes are durable but no undo entries were
	// logged (logging off, or the log itself lost): rollback must be an
	// identity, not a panic or an erase.
	h := [][]*epoch.Summary{{
		summary(0, 0, false, map[mem.Line]mem.Version{1: 10, 2: 11}),
	}}
	g := NewGraph(h)
	img := map[mem.Line]mem.Version{1: 10, 2: 11}
	rec := Rollback(g, img, nil)
	if len(rec) != 2 || rec[1] != 10 || rec[2] != 11 {
		t.Fatalf("rollback with empty log mutated the image: %v", rec)
	}
	rec = Rollback(g, img, []nvram.LogEntry{})
	if len(rec) != 2 {
		t.Fatalf("rollback with zero-length log mutated the image: %v", rec)
	}
}

func TestRollbackEmptyImage(t *testing.T) {
	g := NewGraph(nil)
	rec := Rollback(g, map[mem.Line]mem.Version{}, nil)
	if len(rec) != 0 {
		t.Fatalf("rollback invented lines: %v", rec)
	}
	if err := CheckAtomicity(g, rec); err != nil {
		t.Fatalf("empty image failed atomicity: %v", err)
	}
}

func TestChecksOnEmptyGraph(t *testing.T) {
	// No histories at all (crash before any epoch closed).
	if err := CheckAll(nil, map[mem.Line]mem.Version{}, nil, true); err != nil {
		t.Fatalf("empty everything rejected: %v", err)
	}
	if err := CheckAll([][]*epoch.Summary{{}, {}}, nil, nil, false); err != nil {
		t.Fatalf("empty per-core histories rejected: %v", err)
	}
}

func TestAddEdgeStrengthensGraph(t *testing.T) {
	a := epoch.ID{Core: 0, Num: 0}
	b := epoch.ID{Core: 1, Num: 0}
	h := [][]*epoch.Summary{
		{summary(0, 0, false, map[mem.Line]mem.Version{1: 10})},
		{summary(1, 0, false, map[mem.Line]mem.Version{2: 20})},
	}
	// Image where b's write is durable but a's is not: fine without the
	// edge, a violation once the application declares a happened-before b.
	img := map[mem.Line]mem.Version{2: 20}
	g := NewGraph(h)
	if err := CheckOrdering(g, img); err != nil {
		t.Fatalf("independent epochs rejected: %v", err)
	}
	g.AddEdge(b, a)
	if preds := g.Predecessors(b); len(preds) != 1 || preds[0] != a {
		t.Fatalf("predecessors after AddEdge = %v", preds)
	}
	if err := CheckOrdering(g, img); err == nil {
		t.Fatal("application-order violation not detected after AddEdge")
	}
}

func TestAddEdgeIgnoresBogusInput(t *testing.T) {
	a := epoch.ID{Core: 0, Num: 0}
	h := [][]*epoch.Summary{{summary(0, 0, true, map[mem.Line]mem.Version{1: 10})}}
	g := NewGraph(h)
	g.AddEdge(a, a)                         // self edge
	g.AddEdge(a, epoch.ID{Core: 9, Num: 9}) // unknown earlier
	g.AddEdge(epoch.ID{Core: 9, Num: 9}, a) // unknown later
	if preds := g.Predecessors(a); len(preds) != 0 {
		t.Fatalf("bogus edges stuck: %v", preds)
	}
	// Duplicate edges collapse.
	b := epoch.ID{Core: 0, Num: 1}
	h2 := [][]*epoch.Summary{{
		summary(0, 0, true, map[mem.Line]mem.Version{1: 10}),
		summary(0, 1, true, map[mem.Line]mem.Version{2: 20}),
	}}
	g2 := NewGraph(h2)
	g2.AddEdge(b, a)
	g2.AddEdge(b, a)
	if preds := g2.Predecessors(b); len(preds) != 1 {
		t.Fatalf("duplicate AddEdge grew preds: %v", preds)
	}
}
