package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// jsonResponse mirrors pmkvd's original encoding/json response struct;
// AppendResponse must stay byte-compatible with it.
type jsonResponse struct {
	OK      bool   `json:"ok"`
	Found   bool   `json:"found,omitempty"`
	Value   string `json:"value,omitempty"`
	Crashed bool   `json:"crashed,omitempty"`
	Error   string `json:"error,omitempty"`
}

func TestAppendResponseMatchesEncodingJSON(t *testing.T) {
	cases := []Response{
		{OK: true},
		{OK: false},
		{OK: true, Found: true},
		{OK: true, Found: true, Value: []byte("alice")},
		{OK: true, Found: true, Value: []byte("")},
		{OK: true, Found: true, Value: []byte(`quo"te\back`)},
		{OK: true, Value: []byte("tab\there\nnewline\rret")},
		{OK: true, Value: []byte("ctl\x01\x1fend")},
		{OK: true, Value: []byte("<html>&amp;</html>")},
		{OK: true, Value: []byte("unicode: héllo ☃ 日本")},
		{OK: true, Value: []byte("ls ps end")},
		{OK: true, Value: []byte{0xff, 0xfe, 'a'}}, // invalid UTF-8
		{OK: true, Found: true, Crashed: true, Value: []byte("v")},
		{Error: "unknown op \"zap\""},
		{Error: "bad request: invalid character '\\n'"},
	}
	for _, r := range cases {
		want, err := json.Marshal(jsonResponse{
			OK: r.OK, Found: r.Found, Value: string(r.Value), Crashed: r.Crashed, Error: r.Error,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := AppendResponse(nil, &r)
		if string(got) != string(want)+"\n" {
			t.Errorf("AppendResponse(%+v)\n got %q\nwant %q", r, got, string(want)+"\n")
		}
	}
}

func TestAppendResponseRoundTrips(t *testing.T) {
	r := Response{OK: true, Found: true, Value: []byte("weird \x00\x1f \\ \"   日本 value")}
	var back jsonResponse
	if err := json.Unmarshal(AppendResponse(nil, &r), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// The NUL survives as an escape; invalid UTF-8 would come back as U+FFFD.
	if back.Value != string(r.Value) {
		t.Fatalf("round trip changed value: %q -> %q", r.Value, back.Value)
	}
}

func TestAppendResponseAppends(t *testing.T) {
	prefix := []byte("prefix|")
	out := AppendResponse(prefix, &Response{OK: true})
	if !strings.HasPrefix(string(out), "prefix|{") {
		t.Fatalf("did not append: %q", out)
	}
}

// TestAppendResponseZeroAlloc is the hot-path guard: once a connection's
// buffer has reached its working size, encoding a response must not
// allocate at all.
func TestAppendResponseZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 4096)
	resps := []Response{
		{OK: true, Found: true, Value: []byte("the quick brown fox jumps over the lazy dog")},
		{OK: true},
		{OK: true, Found: true, Crashed: true, Value: []byte(`needs "escaping" \ here`)},
		{Error: "draining"},
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := range resps {
			buf = AppendResponse(buf[:0], &resps[i])
		}
		if len(buf) == 0 {
			t.Fatal("no output")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendResponse allocates %.1f times per run; want 0", allocs)
	}
}

func BenchmarkAppendResponse(b *testing.B) {
	r := Response{OK: true, Found: true, Value: []byte("user-profile-value-0123456789")}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendResponse(buf[:0], &r)
	}
}
