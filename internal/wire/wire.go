// Package wire implements pmkvd's line protocol encoding. The response
// path is the server's per-op hot path — every acknowledged operation
// writes exactly one JSON line — so encoding is done by appending into a
// caller-owned buffer instead of through encoding/json: zero allocations
// per response once the connection's buffer has grown to its working
// size. The output is byte-compatible with what encoding/json produces
// for the equivalent struct (same field order, same omitempty rules), so
// existing clients parse it unchanged.
package wire

import "unicode/utf8"

// Response is one server reply line. Zero-valued optional fields are
// omitted from the encoding, mirroring encoding/json's omitempty.
type Response struct {
	OK      bool
	Found   bool
	Value   []byte
	Crashed bool
	Error   string
}

const hexDigits = "0123456789abcdef"

// AppendResponse appends the one-line JSON encoding of r (including the
// trailing newline) to dst and returns the extended slice. It performs no
// allocations beyond growing dst.
func AppendResponse(dst []byte, r *Response) []byte {
	if r.OK {
		dst = append(dst, `{"ok":true`...)
	} else {
		dst = append(dst, `{"ok":false`...)
	}
	if r.Found {
		dst = append(dst, `,"found":true`...)
	}
	if len(r.Value) > 0 {
		dst = append(dst, `,"value":`...)
		dst = appendJSONString(dst, r.Value)
	}
	if r.Crashed {
		dst = append(dst, `,"crashed":true`...)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONStringStr(dst, r.Error)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendJSONString appends s as a JSON string literal using the same
// escaping rules as encoding/json: the two mandatory escapes, \uXXXX for
// control characters (with the \n, \r, \t shorthands), HTML-unsafe
// characters escaped for embedding parity, and invalid UTF-8 replaced
// with �.
func appendJSONString(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if safeJSONByte(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and the HTML-unsafe trio <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRune(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		// U+2028 and U+2029 break JavaScript string literals; encoding/json
		// escapes them and so do we, for byte compatibility.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// appendJSONStringStr is appendJSONString for string inputs, avoiding a
// []byte conversion allocation on the error path.
func appendJSONStringStr(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if safeJSONByte(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// safeJSONByte reports whether an ASCII byte can appear in a JSON string
// literal unescaped under encoding/json's default (HTML-escaping) rules.
func safeJSONByte(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}
