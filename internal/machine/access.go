package machine

import (
	"fmt"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/noc"
	"persistbarriers/internal/nvram"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
)

// access serves one load or store for core c, firing done at completion.
// This is the path on which epoch conflicts are detected (Section 3).
func (m *Machine) access(c *coreCtx, kind mem.Kind, line mem.Line, done func()) {
	if ent, hit := c.l1.Lookup(line); hit {
		if kind == mem.Load {
			m.eng.After(m.cfg.L1Latency, done)
			return
		}
		d := m.dirEntryFor(line)
		if d.owner == c.id {
			// Exclusive hit. The only ordering hazard is an intra-thread
			// conflict with the line's own older-epoch tag.
			m.resolveConflict(c, kind, line, ent.Tag, func(dep *epoch.Record) {
				m.tryCommitStore(c, line, dep, done)
			})
			return
		}
		// Shared hit needing an upgrade: take the LLC path for ownership.
	}
	b := m.bank(line)
	m.eng.After(m.cfg.L1Latency+m.mesh.Latency(c.tile, b.tile, 0), func() {
		m.atBank(c, kind, line, b, done)
	})
}

// atBank is the request's arrival at the home LLC bank. The bank admits
// one request per line at a time (the transient-state blocking a real
// controller's MSHRs provide): competing requests queue behind the line's
// busy signal, which eliminates ownership races and request livelock.
func (m *Machine) atBank(c *coreCtx, kind mem.Kind, line mem.Line, b *bankCtx, done func()) {
	ls := m.lines.get(line)
	if ls.busy != nil {
		ls.busy.Subscribe(func() { m.atBank(c, kind, line, b, done) })
		return
	}
	sig := &sim.Signal{}
	ls.busy = sig
	if m.trackBusy {
		ls.busyInfo = fmt.Sprintf("core=%d kind=%v at=%d", c.id, kind, m.eng.Now())
	}
	// One retry closure serves every restart of this request (mshr merge,
	// recall, fill, tag change, ownership race) instead of allocating a
	// fresh continuation per hop.
	var retry func()
	release := func() {
		ls.busy = nil
		ls.busyInfo = ""
		sig.Fire()
		done()
	}
	retry = func() { m.atBankLocked(c, kind, line, b, ls, retry, release) }
	m.atBankLocked(c, kind, line, b, ls, retry, release)
}

// busyPhase updates the line's transient-state holder description; only
// called on paths that already checked m.trackBusy is cheap enough, so it
// re-checks internally and is a no-op in normal runs.
func (m *Machine) busyPhase(c *coreCtx, kind mem.Kind, ls *lineState, p string) {
	if m.trackBusy && ls.busy != nil {
		ls.busyInfo = fmt.Sprintf("core=%d kind=%v phase=%s at=%d", c.id, kind, p, m.eng.Now())
	}
}

// atBankLocked processes a request that holds the line's transient state:
// recall a remote modified copy, ensure residency, run the conflict check,
// then grant. retry restarts the locked request from the top; done
// releases the busy signal and completes it.
func (m *Machine) atBankLocked(c *coreCtx, kind mem.Kind, line mem.Line, b *bankCtx, ls *lineState, retry, done func()) {
	if sig := ls.mshr; sig != nil {
		// A fill for this line is in flight; merge behind it.
		m.busyPhase(c, kind, ls, "mshr-wait")
		sig.Subscribe(retry)
		return
	}
	d := &ls.dir
	if d.owner >= 0 && d.owner != c.id {
		m.busyPhase(c, kind, ls, "recall")
		m.recallOwner(c, kind, line, b, d, retry)
		return
	}
	if !b.arr.Contains(line) {
		m.busyPhase(c, kind, ls, "fill")
		m.llcFill(c, b, line, ls, retry)
		return
	}
	ent, _ := b.arr.Lookup(line)
	m.busyPhase(c, kind, ls, "conflict")
	m.resolveConflict(c, kind, line, ent.Tag, func(dep *epoch.Record) {
		// An online resolution may have waited; if a new epoch's version
		// landed in the LLC meanwhile, the conflict check must be redone
		// against the fresh tag.
		if cur, ok := b.arr.Peek(line); !ok || cur.Tag != ent.Tag {
			retry()
			return
		}
		m.busyPhase(c, kind, ls, "grant")
		m.grant(c, kind, line, b, d, dep, retry, done)
	})
}

// recallOwner pulls the line out of the current owner's L1: its dirty data
// is written back into the LLC copy, and the owner's copy is invalidated
// (store) or downgraded to shared (load).
func (m *Machine) recallOwner(c *coreCtx, kind mem.Kind, line mem.Line, b *bankCtx, d *dirEntry, cont func()) {
	o := m.cores[d.owner]
	lat := m.mesh.Latency(b.tile, o.tile, 0) + m.cfg.L1Latency + m.mesh.Latency(o.tile, b.tile, mem.LineSize)
	m.eng.After(lat, func() {
		if d.owner != o.id {
			cont() // another request already recalled it
			return
		}
		ent, has := o.l1.Peek(line)
		m.dbg(line, "recallOwner from=%d kind=%v has=%v dirty=%v tag=%v ver=%d", o.id, kind, has, ent.Dirty, ent.Tag, ent.Version)
		finish := func() {
			// The writeback may have waited on an epoch flush and the
			// world may have moved. Downgrade o's copy only if it still
			// holds at most the version we wrote back — a newer version
			// means o recommitted and must stay the tracked owner. A
			// vanished copy also releases ownership, or the recall would
			// retry forever.
			pe, ok := o.l1.Peek(line)
			switch {
			case !ok:
				d.sharers &^= 1 << uint(o.id)
				if d.owner == o.id {
					d.owner = -1
				}
			case pe.Version <= ent.Version:
				if kind == mem.Store {
					o.l1.Invalidate(line)
					d.sharers &^= 1 << uint(o.id)
				} else {
					o.l1.CleanLine(line)
					d.sharers |= 1 << uint(o.id)
				}
				if d.owner == o.id {
					d.owner = -1
				}
			}
			cont()
		}
		if has && ent.Dirty {
			m.llcApplyWriteback(b, line, ent.Tag, ent.Version, finish)
			return
		}
		finish()
	})
}

// llcApplyWriteback merges a written-back dirty line into the LLC copy.
// If the LLC copy holds an unpersisted version from a different epoch, that
// version must reach NVRAM first (the multi-version collision of §3.1's
// write-after-write case), so the writeback stalls behind a demanded flush.
func (m *Machine) llcApplyWriteback(b *bankCtx, line mem.Line, tag epoch.ID, ver mem.Version, cont func()) {
	if !b.arr.Contains(line) {
		// Inclusion was broken by a concurrent eviction: re-establish.
		m.dbg(line, "llcApplyWriteback reinsert tag=%v ver=%d", tag, ver)
		m.llcInsert(nil, b, line, ver, func() {
			m.llcApplyWriteback(b, line, tag, ver, cont)
		})
		return
	}
	ent, _ := b.arr.Peek(line)
	if ent.Version > ver {
		m.dbg(line, "llcApplyWriteback stale-skip tag=%v ver=%d entVer=%d entTag=%v entDirty=%v", tag, ver, ent.Version, ent.Tag, ent.Dirty)
		cont() // a newer version already landed; drop the stale data
		return
	}
	if ent.Version == ver {
		// Same version: either a duplicate writeback (already dirty and
		// tracked) or our own clean placeholder from the reinsert path.
		// Restore the dirty state and epoch tag only if the version's
		// epoch is still unpersisted; otherwise the copy is legitimately
		// clean.
		if !ent.Dirty && m.lookupRec(tag) != nil {
			m.dbg(line, "llcApplyWriteback restore-tag tag=%v ver=%d", tag, ver)
			b.arr.Write(line, tag, ver)
		}
		cont()
		return
	}
	if ent.Dirty && ent.Tag.Valid() && ent.Tag != tag {
		if rec := m.lookupRec(ent.Tag); rec != nil {
			m.evictionConflicts++
			rec.ConflictDemanded = true
			if m.cfg.Probe.Active() {
				m.cfg.Probe.Conflict(m.eng.Now(), obs.ConflictEviction, -1, rec.ID.Core, rec.ID.Num, line, obs.ResolveDemand)
			}
			src := m.cores[ent.Tag.Core]
			m.demandFlush(src, rec, epoch.CauseEviction, func() {
				m.llcApplyWriteback(b, line, tag, ver, cont)
			})
			return
		}
	}
	m.dbg(line, "llcApplyWriteback apply tag=%v ver=%d", tag, ver)
	b.arr.Write(line, tag, ver)
	cont()
}

// llcFill fetches a missing line from NVRAM into the bank.
func (m *Machine) llcFill(c *coreCtx, b *bankCtx, line mem.Line, ls *lineState, cont func()) {
	sig := &sim.Signal{}
	ls.mshr = sig
	mc := m.mcs.ControllerFor(line)
	mcTile := m.mcTiles[mc.ID()]
	m.eng.After(m.mesh.Latency(b.tile, mcTile, 0), func() {
		mc.Read(line, func() {
			m.eng.After(m.mesh.Latency(mcTile, b.tile, mem.LineSize), func() {
				m.llcInsert(c, b, line, ls.latest, func() {
					ls.mshr = nil
					sig.Fire()
					cont()
				})
			})
		})
	})
}

// llcInsert places a line into the bank, resolving the victim's coherence
// and persist-ordering obligations. c (may be nil) is the core whose
// request is stalled, for stall attribution.
func (m *Machine) llcInsert(c *coreCtx, b *bankCtx, line mem.Line, ver mem.Version, cont func()) {
	if b.arr.Contains(line) {
		cont()
		return
	}
	// Never evict a line another request is actively transacting (its
	// busy signal is held): stealing it mid-transfer livelocks under
	// heavy set contention. If every way is busy, retry shortly.
	v, full, ok := b.arr.VictimAvoiding(line, m.avoidBusy)
	if !ok {
		m.eng.After(m.cfg.LLCLatency, func() { m.llcInsert(c, b, line, ver, cont) })
		return
	}
	if !full {
		b.arr.Insert(line, false, epoch.None, ver)
		cont()
		return
	}
	vd := m.dirEntryFor(v.Line)
	if vd.owner >= 0 {
		// A private cache holds the victim modified: recall it into the
		// LLC first so its data is not lost, then retry.
		o := m.cores[vd.owner]
		ent, has := o.l1.Peek(v.Line)
		if has && ent.Dirty {
			lat := m.mesh.Latency(b.tile, o.tile, 0) + m.cfg.L1Latency + m.mesh.Latency(o.tile, b.tile, mem.LineSize)
			m.eng.After(lat, func() {
				m.llcApplyWriteback(b, v.Line, ent.Tag, ent.Version, func() {
					if vd.owner == o.id {
						o.l1.Invalidate(v.Line)
						vd.owner = -1
						vd.sharers &^= 1 << uint(o.id)
					}
					m.llcInsert(c, b, line, ver, cont)
				})
			})
			return
		}
		vd.owner = -1
	}
	finishInsert := func() {
		m.dbg(v.Line, "llcInsert evict victim dirty=%v tag=%v ver=%d", v.Dirty, v.Tag, v.Version)
		m.backInvalidate(v.Line, vd)
		if vd.owner >= 0 {
			// A dirty private copy survived an ownership race; the
			// victim cannot leave yet. Retry around it.
			m.llcInsert(c, b, line, ver, cont)
			return
		}
		if b.arr.Contains(v.Line) {
			b.arr.InsertReplacing(line, v.Line, false, epoch.None, ver)
		} else {
			m.llcInsert(c, b, line, ver, cont)
			return
		}
		cont()
	}
	if !v.Dirty {
		finishInsert()
		return
	}
	rec := m.lookupRec(v.Tag)
	if rec == nil {
		// Untagged dirty data (NP/SP/WT, or an already-persisted epoch):
		// plain fire-and-forget writeback.
		m.nvramWriteFrom(b.tile, nil, v.Line, v.Version, nil)
		finishInsert()
		return
	}
	src := m.cores[v.Tag.Core]
	if m.canDrainLine(src, rec) {
		// Natural replacement persists the line offline — the mechanism
		// LB relies on (§2.1).
		m.nvramWriteFrom(b.tile, rec, v.Line, v.Version, nil)
		finishInsert()
		return
	}
	// Persist ordering forbids writing this line yet: older epochs (or
	// IDT sources) must persist first. Demand the flush and retry.
	m.evictionConflicts++
	rec.ConflictDemanded = true
	if m.cfg.Probe.Active() {
		reqCore := -1
		if c != nil {
			reqCore = c.id
		}
		m.cfg.Probe.Conflict(m.eng.Now(), obs.ConflictEviction, reqCore, rec.ID.Core, rec.ID.Num, v.Line, obs.ResolveDemand)
	}
	t0 := m.eng.Now()
	m.demandFlush(src, rec, epoch.CauseEviction, func() {
		if c != nil {
			c.stalls[StallEviction] += m.eng.Now() - t0
		}
		m.llcInsert(c, b, line, ver, cont)
	})
}

// canDrainLine reports whether a line of rec may be written to NVRAM right
// now without violating epoch ordering: rec must be the core's oldest
// unpersisted epoch, with all IDT sources persisted and its undo-log
// entries durable.
func (m *Machine) canDrainLine(src *coreCtx, rec *epoch.Record) bool {
	return src.table.Oldest() == rec && rec.DepsPersisted() && rec.LogPending == 0
}

// backInvalidate removes the clean L1 copies of a line the LLC is
// evicting (inclusion). Dirty copies are never dropped here: the caller
// recalls the tracked owner, and a dirty copy surviving an ownership race
// stays resident (inclusion is re-established by its eventual writeback).
func (m *Machine) backInvalidate(line mem.Line, d *dirEntry) {
	keptOwner := false
	for _, o := range m.cores {
		pe, ok := o.l1.Peek(line)
		if !ok {
			continue
		}
		if pe.Dirty {
			d.owner = o.id
			d.sharers = 1 << uint(o.id)
			keptOwner = true
			continue
		}
		o.l1.Invalidate(line)
		d.sharers &^= 1 << uint(o.id)
	}
	if !keptOwner {
		d.sharers = 0
		d.owner = -1
	}
}

// grant finishes a request at the bank: data response for loads,
// ownership (with sharer invalidation) for stores. dep is the deferred
// inter-thread dependence to attach at completion; retry restarts the
// locked request.
func (m *Machine) grant(c *coreCtx, kind mem.Kind, line mem.Line, b *bankCtx, d *dirEntry, dep *epoch.Record, retry, done func()) {
	if !b.arr.Contains(line) {
		retry() // evicted while we waited: restart
		return
	}
	if kind == mem.Store && d.owner >= 0 && d.owner != c.id {
		retry() // ownership raced away: restart
		return
	}
	ent, _ := b.arr.Peek(line)
	respLat := m.cfg.LLCLatency + m.mesh.Latency(b.tile, c.tile, mem.LineSize)
	if kind == mem.Store {
		// Invalidate the other sharers; the slowest round trip bounds
		// the grant.
		var invLat sim.Cycle
		for _, o := range m.cores {
			if o.id != c.id && d.sharers&(1<<uint(o.id)) != 0 {
				if se, ok := o.l1.Peek(line); ok && se.Dirty {
					// A dirty copy must be recalled through the owner
					// path, never dropped as a sharer.
					panic(fmt.Sprintf("machine: invalidating dirty copy of %v in L1-%d", line, o.id))
				}
				o.l1.Invalidate(line)
				rt := 2 * m.mesh.Latency(b.tile, o.tile, 0)
				if rt > invLat {
					invLat = rt
				}
			}
		}
		d.sharers = 1 << uint(c.id)
		d.owner = c.id
		if invLat > respLat {
			respLat = invLat
		}
		// The line's busy signal (held since atBank) covers the transfer
		// until the commit completes.
		m.eng.After(respLat, func() {
			m.l1Fill(c, line, ent.Version, func() {
				m.tryCommitStoreEx(c, line, dep, retry, done)
			})
		})
		return
	}
	d.sharers |= 1 << uint(c.id)
	m.eng.After(respLat, func() {
		m.l1Fill(c, line, ent.Version, func() {
			// Loads attach their inter-thread dependence at completion.
			m.attachDep(c, dep, done)
		})
	})
}

// tryCommitStore commits a store whose ordering conflicts were resolved,
// but only if the core still holds the line and no other core snatched
// ownership during the waits; otherwise the access restarts. The
// dependence attachment, the check, and the commit happen in one event, so
// exactly one contender wins and the dependence lands on the epoch that
// tags the line.
func (m *Machine) tryCommitStore(c *coreCtx, line mem.Line, dep *epoch.Record, done func()) {
	m.tryCommitStoreEx(c, line, dep, nil, done)
}

// tryCommitStoreEx is tryCommitStore with retry carrying the locked
// request's restart continuation when the caller holds the line's busy
// signal (the grant path does); the exclusive L1-hit path passes nil and
// restarts through a fresh access instead.
func (m *Machine) tryCommitStoreEx(c *coreCtx, line mem.Line, dep *epoch.Record, retry func(), done func()) {
	d := m.dirEntryFor(line)
	if ent, hit := c.l1.Peek(line); hit && (d.owner == c.id || d.owner == -1) {
		// With posted stores, an earlier same-core store (or an epoch
		// split) may have tagged the line with an older epoch since the
		// conflict check ran: that is an intra-thread conflict and must
		// flush first (§3.2).
		if ent.Dirty && ent.Tag.Valid() && ent.Tag.Core == c.id && ent.Tag != c.table.Current().ID {
			if rec := c.table.Lookup(ent.Tag.Num); rec != nil {
				m.intraConflicts++
				rec.ConflictDemanded = true
				if m.cfg.Probe.Active() {
					m.cfg.Probe.Conflict(m.eng.Now(), obs.ConflictIntra, c.id, rec.ID.Core, rec.ID.Num, line, obs.ResolveOnline)
				}
				c.arb.DemandThrough(ent.Tag.Num, epoch.CauseIntra)
				m.stallUntil(c, &rec.Persisted, StallIntra, func() {
					m.tryCommitStoreEx(c, line, dep, retry, done)
				})
				return
			}
		}
		if dep != nil && dep.State != epoch.Persisted {
			// Attach the deferred inter-thread dependence, then rerun
			// every check: the register-full fallback may have waited,
			// and the world may have moved meanwhile. On the synchronous
			// success path the recheck happens in this same event.
			m.attachDep(c, dep, func() {
				m.tryCommitStoreEx(c, line, nil, retry, done)
			})
			return
		}
		m.finishStore(c, line, done)
		return
	}
	if retry != nil {
		retry()
		return
	}
	m.access(c, mem.Store, line, done)
}

// l1Fill installs a line into c's L1, writing back a dirty victim first.
func (m *Machine) l1Fill(c *coreCtx, line mem.Line, ver mem.Version, cont func()) {
	if c.l1.Contains(line) {
		cont() // upgrade: data already present
		return
	}
	v, full := c.l1.Victim(line)
	if full && v.Dirty {
		vb := m.bank(v.Line)
		m.eng.After(m.mesh.Latency(c.tile, vb.tile, mem.LineSize), func() {
			m.llcApplyWriteback(vb, v.Line, v.Tag, v.Version, func() {
				if ent, has := c.l1.Peek(v.Line); has && ent.Dirty {
					c.l1.Invalidate(v.Line)
					vd := m.dirEntryFor(v.Line)
					if vd.owner == c.id {
						vd.owner = -1
					}
					vd.sharers &^= 1 << uint(c.id)
				}
				m.l1Fill(c, line, ver, cont)
			})
		})
		return
	}
	c.l1.Insert(line, false, epoch.None, ver)
	cont()
}

// finishStore commits the store and applies the model's persist rule.
func (m *Machine) finishStore(c *coreCtx, line mem.Line, done func()) {
	ver := m.commitStore(c, line)
	switch m.cfg.Model {
	case SP:
		m.eng.After(m.cfg.L1Latency, func() { m.spPersist(c, line, ver, done) })
	case WT:
		m.eng.After(m.cfg.L1Latency, func() { m.wtPersist(c, line, ver, done) })
	default:
		m.eng.After(m.cfg.L1Latency, done)
	}
}

// commitStore writes the line into c's L1 with the current epoch's tag,
// records pending/write-set state, and issues the undo-log write on the
// first modification in the epoch (§5.2.1). It returns the new version.
func (m *Machine) commitStore(c *coreCtx, line mem.Line) mem.Version {
	ver := m.vs.Next()
	ls := m.lines.get(line)
	ls.latest = ver
	if tok, ok := c.pendingTok[line]; ok {
		delete(c.pendingTok, line)
		m.tokenVersions[tok] = ver
	}
	d := &ls.dir
	d.owner = c.id
	d.sharers |= 1 << uint(c.id)
	if !m.usesEpochs() {
		c.l1.Write(line, epoch.None, ver)
		return ver
	}
	cur := c.table.Current()
	first := cur.AddPending(line)
	prev := c.l1.Write(line, cur.ID, ver)
	m.dbg(line, "commitStore core=%d epoch=%v ver=%d prev={dirty=%v tag=%v ver=%d}", c.id, cur.ID, ver, prev.Dirty, prev.Tag, prev.Version)
	if prev.Dirty && prev.Tag.Valid() && prev.Tag != cur.ID && m.lookupRec(prev.Tag) != nil {
		panic(fmt.Sprintf("machine: store on core %d overwrote unpersisted %v version of %v",
			c.id, prev.Tag, line))
	}
	cur.StoreCount++
	if m.cfg.RecordHistory {
		cur.Writes[line] = ver
	}
	if m.cfg.Logging && first {
		m.logWrites++
		cur.LogPending++
		mc := m.mcs.ControllerFor(line)
		mcTile := m.mcTiles[mc.ID()]
		entry := nvram.LogEntry{Line: line, Old: prev.Version, EpochCore: cur.ID.Core, EpochNum: cur.ID.Num}
		m.eng.After(m.mesh.Latency(c.tile, mcTile, mem.LineSize), func() {
			mc.WriteLog(entry, func() {
				cur.LogPending--
				c.arb.Kick()
			})
		})
	}
	return ver
}

// spPersist synchronously persists one store (strict persistency rule S2).
func (m *Machine) spPersist(c *coreCtx, line mem.Line, ver mem.Version, done func()) {
	t0 := m.eng.Now()
	mc := m.mcs.ControllerFor(line)
	mcTile := m.mcTiles[mc.ID()]
	m.eng.After(m.mesh.Latency(c.tile, mcTile, mem.LineSize), func() {
		mc.Write(line, ver, func() {
			m.lineDurable(nil, line, ver)
			m.eng.After(m.mesh.Latency(mcTile, c.tile, 0), func() {
				c.stalls[StallPersistQueue] += m.eng.Now() - t0
				done()
			})
		})
	})
}

// wtPersist enqueues a non-coalesced NVRAM write (naive BSP): visibility
// is decoupled (rule S2 relaxed) so the store completes immediately, but
// rule S1 still holds — a core's persists happen strictly in program
// order, so each write issues only after its predecessor's PersistAck.
// The core stalls when the per-core persist queue is full. This is the
// design the paper measures at ~8x NP (§7.2).
func (m *Machine) wtPersist(c *coreCtx, line mem.Line, ver mem.Version, done func()) {
	if c.wtInFlight >= m.cfg.WTQueue {
		t0 := m.eng.Now()
		c.wtWaiters = append(c.wtWaiters, func() {
			c.stalls[StallPersistQueue] += m.eng.Now() - t0
			m.wtPersist(c, line, ver, done)
		})
		return
	}
	c.wtInFlight++
	c.wtQueue = append(c.wtQueue, wtWrite{line: line, ver: ver})
	if len(c.wtQueue) == 1 {
		m.wtIssueHead(c)
	}
	done()
}

// wtIssueHead sends the oldest queued persist to its controller; the ack
// releases a queue slot and issues the next one, serializing the core's
// persists in program order.
func (m *Machine) wtIssueHead(c *coreCtx) {
	w := c.wtQueue[0]
	mc := m.mcs.ControllerFor(w.line)
	mcTile := m.mcTiles[mc.ID()]
	m.eng.After(m.mesh.Latency(c.tile, mcTile, mem.LineSize), func() {
		mc.Write(w.line, w.ver, func() {
			m.lineDurable(nil, w.line, w.ver)
			c.wtQueue = c.wtQueue[1:]
			c.wtInFlight--
			if len(c.wtQueue) > 0 {
				m.wtIssueHead(c)
			}
			if len(c.wtWaiters) > 0 {
				waiter := c.wtWaiters[0]
				c.wtWaiters = c.wtWaiters[1:]
				waiter()
			}
		})
	})
}

// nvramWriteFrom issues a durable line write from a tile, notifying the
// epoch bookkeeping (and optional ack) when the PersistAck returns.
func (m *Machine) nvramWriteFrom(from noc.Tile, rec *epoch.Record, line mem.Line, ver mem.Version, ack func()) {
	if rec != nil {
		rec.AcksInFlight++
	}
	mc := m.mcs.ControllerFor(line)
	mcTile := m.mcTiles[mc.ID()]
	m.eng.After(m.mesh.Latency(from, mcTile, mem.LineSize), func() {
		mc.Write(line, ver, func() {
			m.lineDurable(rec, line, ver)
			if ack != nil {
				ack()
			}
		})
	})
}

// lookupRec resolves a cache tag to its live epoch record, or nil when the
// epoch has persisted (or the model tracks no epochs).
func (m *Machine) lookupRec(tag epoch.ID) *epoch.Record {
	if !tag.Valid() || !m.usesEpochs() {
		return nil
	}
	return m.cores[tag.Core].table.Lookup(tag.Num)
}
