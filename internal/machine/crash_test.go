package machine

import (
	"fmt"
	"testing"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// randomProgram builds a multi-threaded program with shared and private
// data, barriers, and enough conflicts to stress every protocol path.
func randomProgram(seed uint64, cores, opsPerCore int, withBarriers bool) *trace.Program {
	r := trace.NewRand(seed)
	var traces [][]trace.Op
	for c := 0; c < cores; c++ {
		var b trace.Builder
		privBase := mem.Addr(0x10000 + c*0x4000)
		for i := 0; i < opsPerCore; i++ {
			switch r.Intn(10) {
			case 0, 1: // shared-region store (inter-thread conflicts)
				b.Store(mem.Addr(r.Intn(32) * 64))
			case 2: // shared-region load
				b.Load(mem.Addr(r.Intn(32) * 64))
			case 3, 4, 5: // private stores (intra-thread conflicts on reuse)
				b.Store(privBase + mem.Addr(r.Intn(16)*64))
			case 6:
				b.Load(privBase + mem.Addr(r.Intn(16)*64))
			case 7:
				b.Compute(sim.Cycle(r.Intn(50)))
			default:
				if withBarriers {
					b.Barrier()
				} else {
					b.Store(privBase + mem.Addr(r.Intn(16)*64))
				}
			}
		}
		traces = append(traces, b.Ops())
	}
	return &trace.Program{Traces: traces}
}

// crashCheck runs the program under cfg, crashes at the given cycle, and
// verifies the recovery invariants.
func crashCheck(t *testing.T, cfg Config, p *trace.Program, crash sim.Cycle, rollback bool) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.RunUntil(crash)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckAll(r.Histories, r.Image, r.UndoLog, rollback); err != nil {
		t.Fatalf("crash at %d under %s: %v", crash, cfg.BarrierName(), err)
	}
}

// TestCrashConsistencyAcrossBarriers is the headline property test:
// whatever instant we crash at, under every LB variant, the durable image
// respects the epoch happens-before order.
func TestCrashConsistencyAcrossBarriers(t *testing.T) {
	variants := []struct {
		name    string
		idt, pf bool
	}{
		{"LB", false, false},
		{"LB+IDT", true, false},
		{"LB+PF", false, true},
		{"LB++", true, true},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := testConfig(LB)
			cfg.IDT, cfg.PF = v.idt, v.pf
			for seed := uint64(1); seed <= 3; seed++ {
				p := randomProgram(seed, 4, 120, true)
				for _, crash := range []sim.Cycle{500, 2000, 5000, 12000, 30000, 80000} {
					crashCheck(t, cfg, p, crash, false)
				}
			}
		})
	}
}

// TestCrashConsistencyBulkBSPWithLogging verifies that after rollback the
// recovered state is epoch-atomic.
func TestCrashConsistencyBulkBSPWithLogging(t *testing.T) {
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	cfg.Logging = true
	cfg.BulkEpochStores = 20
	cfg.CheckpointLines = 2
	for seed := uint64(1); seed <= 3; seed++ {
		p := randomProgram(seed, 4, 150, false)
		for _, crash := range []sim.Cycle{1000, 4000, 10000, 25000, 60000} {
			crashCheck(t, cfg, p, crash, true)
		}
	}
}

// TestCrashConsistencyEP: unbuffered epoch persistency keeps at most one
// epoch in flight, so the same ordering invariant must hold trivially.
func TestCrashConsistencyEP(t *testing.T) {
	cfg := testConfig(EP)
	p := randomProgram(11, 4, 60, true)
	for _, crash := range []sim.Cycle{1000, 10000, 50000, 150000} {
		crashCheck(t, cfg, p, crash, false)
	}
}

// TestCompletedRunIsFullyDurable: after a clean run + drain, every epoch
// must be persisted and the image must equal the latest versions.
func TestCompletedRunIsFullyDurable(t *testing.T) {
	for _, v := range []struct{ idt, pf bool }{{false, false}, {true, true}} {
		cfg := testConfig(LB)
		cfg.IDT, cfg.PF = v.idt, v.pf
		p := randomProgram(5, 4, 150, true)
		r := run(t, cfg, p)
		if !r.Finished {
			t.Fatalf("%s: did not finish", cfg.BarrierName())
		}
		for line, want := range r.Latest {
			if got := r.Image[line]; got != want {
				t.Fatalf("%s: line %v durable=%d latest=%d", cfg.BarrierName(), line, got, want)
			}
		}
		if err := recovery.CheckAll(r.Histories, r.Image, r.UndoLog, false); err != nil {
			t.Fatalf("%s: %v", cfg.BarrierName(), err)
		}
		// All closed epochs must be persisted (the open trailing epoch
		// per core is empty).
		for _, hist := range r.Histories {
			for _, s := range hist {
				if !s.PersistedFlag && len(s.Writes) > 0 {
					t.Fatalf("%s: epoch %v with writes unpersisted after drain", cfg.BarrierName(), s.ID)
				}
			}
		}
	}
}

// TestCrashSweepFineGrained crashes one workload at many instants under
// LB++ to catch window-edge protocol bugs.
func TestCrashSweepFineGrained(t *testing.T) {
	if testing.Short() {
		t.Skip("fine-grained sweep skipped in -short")
	}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	p := randomProgram(99, 4, 100, true)
	for crash := sim.Cycle(100); crash <= 20000; crash += 700 {
		crashCheck(t, cfg, p, crash, false)
	}
}

// TestHotLineContention drives every core at the same few lines to stress
// recall/writeback collisions, then checks consistency at several crashes.
func TestHotLineContention(t *testing.T) {
	mk := func() *trace.Program {
		r := trace.NewRand(3)
		var traces [][]trace.Op
		for c := 0; c < 4; c++ {
			var b trace.Builder
			for i := 0; i < 150; i++ {
				a := mem.Addr(r.Intn(4) * 64) // 4 hot lines
				if r.Intn(3) == 0 {
					b.Load(a)
				} else {
					b.Store(a)
				}
				if r.Intn(5) == 0 {
					b.Barrier()
				}
			}
			traces = append(traces, b.Ops())
		}
		return &trace.Program{Traces: traces}
	}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	r := run(t, cfg, mk())
	if !r.Finished {
		t.Fatal("hot-line workload did not finish")
	}
	for _, crash := range []sim.Cycle{777, 3141, 9999, 27182} {
		crashCheck(t, cfg, mk(), crash, false)
	}
}

// TestTinyCachePressure shrinks the caches so natural evictions and
// eviction conflicts dominate, stressing the drain-ordering rules.
func TestTinyCachePressure(t *testing.T) {
	cfg := testConfig(LB)
	cfg.L1Sets, cfg.L1Ways = 4, 2
	cfg.LLCSets, cfg.LLCWays = 8, 2
	cfg.IDT = true
	p := randomProgram(21, 4, 200, true)
	r := run(t, cfg, p)
	if !r.Finished {
		t.Fatal("did not finish under cache pressure")
	}
	if r.LLC.Evictions == 0 {
		t.Fatal("no LLC evictions despite tiny cache")
	}
	for _, crash := range []sim.Cycle{2000, 8000, 20000} {
		crashCheck(t, cfg, randomProgram(21, 4, 200, true), crash, false)
	}
}

// TestInvalidatingFlushMode runs the clflush-style configuration and
// checks both correctness and the expected performance loss.
func TestInvalidatingFlushMode(t *testing.T) {
	mk := func() *trace.Program { return randomProgram(8, 4, 200, true) }
	clwb := testConfig(LB)
	clwb.PF = true
	clflush := clwb
	clflush.FlushMode = 1 // cache.Invalidating
	r1 := run(t, clwb, mk())
	r2 := run(t, clflush, mk())
	if !r1.Finished || !r2.Finished {
		t.Fatal("runs did not finish")
	}
	if r2.ExecCycles <= r1.ExecCycles {
		t.Errorf("invalidating flush (%d cyc) not slower than non-invalidating (%d cyc)",
			r2.ExecCycles, r1.ExecCycles)
	}
	for _, crash := range []sim.Cycle{3000, 15000} {
		crashCheck(t, clflush, mk(), crash, false)
	}
}

func ExampleConfig_BarrierName() {
	cfg := DefaultConfig()
	cfg.IDT, cfg.PF = true, true
	fmt.Println(cfg.BarrierName())
	// Output: LB++
}
