package machine

import (
	"testing"

	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// TestStreamFeedCompaction: a long-lived stream must not accumulate every
// op ever fed — once a core has consumed its whole op slice, the next
// Feed reclaims the prefix. OpsRetired must still count every retired op
// across the compactions.
func TestStreamFeedCompaction(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	const rounds, opsPerRound = 50, 4 // store+barrier+store+barrier
	var b trace.Builder
	total := 0
	for i := 0; i < rounds; i++ {
		b.Reset()
		b.Store(0x1000).Barrier().Store(0x2000).Barrier()
		total += opsPerRound
		if err := m.Feed(0, b.Ops()); err != nil {
			t.Fatal(err)
		}
		if !m.PumpUntilIdle(sim.MaxCycle) {
			t.Fatalf("round %d: machine did not go idle", i)
		}
		// The core drained everything: the next Feed must reclaim its op
		// slice instead of appending behind the consumed prefix.
		if got := len(m.cores[0].ops); got > opsPerRound {
			t.Fatalf("round %d: core op slice holds %d ops, want <= %d (prefix not compacted)",
				i, got, opsPerRound)
		}
	}
	r, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cores[0].OpsRetired; got != total {
		t.Fatalf("OpsRetired = %d, want %d (retired counter lost across compactions)", got, total)
	}
}
