package machine

import (
	"math"
	"testing"

	"persistbarriers/internal/sim"
)

func TestConflictCountsTotal(t *testing.T) {
	c := ConflictCounts{Intra: 3, Inter: 5, Eviction: 2, IDTFallbacks: 4}
	// IDTFallbacks are a resolution path of inter conflicts already in
	// Inter, so Total must not double-count them.
	if got := c.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := (ConflictCounts{}).Total(); got != 0 {
		t.Errorf("zero Total = %d, want 0", got)
	}
}

func TestConflictCountsIDTResolved(t *testing.T) {
	cases := []struct {
		name string
		c    ConflictCounts
		want uint64
	}{
		{"no IDT", ConflictCounts{Inter: 7}, 7},
		{"some fallbacks", ConflictCounts{Inter: 7, IDTFallbacks: 2}, 5},
		{"all fallbacks", ConflictCounts{Inter: 4, IDTFallbacks: 4}, 0},
		{"clamped", ConflictCounts{Inter: 1, IDTFallbacks: 3}, 0},
		{"zero", ConflictCounts{}, 0},
	}
	for _, tc := range cases {
		if got := tc.c.IDTResolved(); got != tc.want {
			t.Errorf("%s: IDTResolved = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestConflictingFraction(t *testing.T) {
	e := EpochAggregate{Persisted: 8, Conflicting: 2}
	if got := e.ConflictingFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ConflictingFraction = %v, want 0.25", got)
	}
	if got := (EpochAggregate{}).ConflictingFraction(); got != 0 {
		t.Errorf("empty ConflictingFraction = %v, want 0", got)
	}
}

func TestResultThroughput(t *testing.T) {
	r := &Result{Transactions: 50, ExecCycles: 10000}
	if got := r.Throughput(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Throughput = %v, want 5 per kilocycle", got)
	}
	if got := (&Result{Transactions: 50}).Throughput(); got != 0 {
		t.Errorf("zero-cycle Throughput = %v, want 0", got)
	}
}

func TestResultStallTotal(t *testing.T) {
	r := &Result{Cores: make([]CoreResult, 3)}
	r.Cores[0].Stalls[StallIntra] = 10
	r.Cores[2].Stalls[StallIntra] = 5
	r.Cores[1].Stalls[StallBarrier] = 7
	if got := r.StallTotal(StallIntra); got != sim.Cycle(15) {
		t.Errorf("StallTotal(intra) = %d, want 15", got)
	}
	if got := r.StallTotal(StallBarrier); got != sim.Cycle(7) {
		t.Errorf("StallTotal(barrier) = %d, want 7", got)
	}
	if got := r.StallTotal(StallEviction); got != 0 {
		t.Errorf("StallTotal(eviction) = %d, want 0", got)
	}
}
