package machine

import (
	"testing"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// TestReadAfterRemoteWriteSeesNewVersion: the reader's fill must carry the
// writer's version (owner recall on the load path).
func TestReadAfterRemoteWriteSeesNewVersion(t *testing.T) {
	var w, rd trace.Builder
	w.Store(0)
	rd.Compute(2000).Load(0)
	p := &trace.Program{Traces: [][]trace.Op{w.Ops(), rd.Ops()}}
	m, err := New(testConfig(LB))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// After the load, the reader's L1 must hold the writer's version.
	ent, ok := m.cores[1].l1.Peek(0)
	if !ok {
		t.Fatal("reader lost its copy")
	}
	if ent.Version != m.latestVersion(0) {
		t.Fatalf("reader has version %d, latest is %d", ent.Version, m.latestVersion(0))
	}
	if ent.Dirty {
		t.Fatal("load produced a dirty copy")
	}
}

// TestWriteAfterRemoteWriteChainsOwnership: three cores write the same
// line in turn; each commit must supersede the previous version and the
// final owner must be the last writer.
func TestWriteAfterRemoteWriteChainsOwnership(t *testing.T) {
	var a, b, c trace.Builder
	a.Store(0)
	b.Compute(1500).Store(0)
	c.Compute(3000).Store(0)
	p := &trace.Program{Traces: [][]trace.Op{a.Ops(), b.Ops(), c.Ops()}}
	m, err := New(testConfig(LB))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Finished {
		t.Fatal("did not finish")
	}
	ls := m.lines.lookup(0)
	if ls == nil || ls.dir.owner != 2 {
		t.Fatalf("final owner state = %+v, want core 2", ls)
	}
	// Exactly one dirty copy may exist, held by the owner.
	dirty := 0
	for _, cc := range m.cores {
		if ent, ok := cc.l1.Peek(0); ok && ent.Dirty {
			dirty++
			if cc.id != 2 {
				t.Fatalf("core %d holds a dirty copy but owner is 2", cc.id)
			}
		}
	}
	if dirty > 1 {
		t.Fatalf("%d dirty copies of one line", dirty)
	}
	if r.Image[0] != r.Latest[0] {
		t.Fatalf("drain left image at %d, latest %d", r.Image[0], r.Latest[0])
	}
}

// TestInclusionHolds: after a mixed run, every L1-resident line must be
// LLC-resident or explicitly in flight — here we check the steady final
// state where nothing is in flight.
func TestInclusionHolds(t *testing.T) {
	p := randomProgram(31, 4, 200, true)
	m, err := New(testConfig(LB))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Finished {
		t.Fatal("did not finish")
	}
	for _, c := range m.cores {
		for _, ent := range c.l1.DirtyLines() {
			if !m.bank(ent.Line).arr.Contains(ent.Line) {
				t.Fatalf("dirty L1 line %v not in its LLC bank (inclusion broken at rest)", ent.Line)
			}
		}
	}
}

// TestNoCFlushHandshakeIsLinearInBanks: the §4.1 arbiter claim — the
// handshake costs O(banks) messages per flush, not O(banks^2). We measure
// mesh messages per driven flush and require them to scale ~linearly when
// the bank count doubles.
func TestNoCFlushHandshakeIsLinearInBanks(t *testing.T) {
	perFlushMessages := func(banks int) float64 {
		cfg := testConfig(LB)
		cfg.PF = true
		cfg.LLCBanks = banks
		var b trace.Builder
		for i := 0; i < 30; i++ {
			b.Store(mem.Addr(i * 64)).Barrier()
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(singleTrace(&b)); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Epochs.Flushes == 0 {
			t.Fatal("no flushes driven")
		}
		return float64(r.NoC.Messages) / float64(r.Epochs.Flushes)
	}
	m4 := perFlushMessages(4)
	m16 := perFlushMessages(16)
	ratio := m16 / m4
	// Linear scaling predicts ~4x (plus constant access traffic, so less);
	// quadratic would be ~16x.
	if ratio > 8 {
		t.Fatalf("messages/flush grew %.1fx from 4 to 16 banks — super-linear handshake", ratio)
	}
}

// TestDrainCompletesWithIdleCores: cores without traces must not block the
// drain barrier.
func TestDrainCompletesWithIdleCores(t *testing.T) {
	var b trace.Builder
	b.Store(0).Barrier()
	p := &trace.Program{Traces: [][]trace.Op{b.Ops()}} // 1 trace, 4 cores
	r := run(t, testConfig(LB), p)
	if !r.Finished {
		t.Fatal("drain blocked by idle cores")
	}
}

// TestLoadsDoNotCreateEpochState: a read-only program must persist nothing
// and open exactly one (empty) epoch per active core.
func TestLoadsDoNotCreateEpochState(t *testing.T) {
	var b trace.Builder
	for i := 0; i < 50; i++ {
		b.Load(mem.Addr(i * 64))
	}
	r := run(t, testConfig(LB), singleTrace(&b))
	if r.PersistedLines != 0 {
		t.Fatalf("read-only run persisted %d lines", r.PersistedLines)
	}
	if len(r.Image) != 0 {
		t.Fatalf("read-only run made %d lines durable", len(r.Image))
	}
}

// TestDeterminismAcrossModels: every model is bit-for-bit reproducible.
func TestDeterminismAcrossModels(t *testing.T) {
	for _, model := range []Model{NP, SP, WT, EP, LB} {
		model := model
		mk := func() *Result {
			cfg := testConfig(model)
			if model == LB {
				cfg.IDT, cfg.PF = true, true
			}
			return run(t, cfg, randomProgram(3, 4, 80, model == EP || model == LB))
		}
		a, b := mk(), mk()
		if a.ExecCycles != b.ExecCycles || a.PersistedLines != b.PersistedLines {
			t.Errorf("%v: non-deterministic (%d/%d vs %d/%d cycles/persists)",
				model, a.ExecCycles, a.PersistedLines, b.ExecCycles, b.PersistedLines)
		}
	}
}
