package machine

import (
	"testing"
	"testing/quick"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// TestQuickCrashConsistency is the fuzz-shaped version of the crash sweep:
// testing/quick draws raw bytes that are decoded into a multi-threaded
// program, a barrier variant, and a crash instant; the durable image must
// always satisfy the recovery invariants.
func TestQuickCrashConsistency(t *testing.T) {
	f := func(seed uint64, variant uint8, crashRaw uint16, opsRaw uint8) bool {
		cfg := testConfig(LB)
		cfg.IDT = variant&1 != 0
		cfg.PF = variant&2 != 0
		logging := variant&4 != 0
		if logging {
			cfg.Logging = true
			cfg.BulkEpochStores = 15 + int(variant%17)
			cfg.CheckpointLines = int(variant % 3)
		}
		ops := 40 + int(opsRaw)%120
		crash := sim.Cycle(crashRaw)*7 + 200

		p := randomProgram(seed, 4, ops, !logging)
		m, err := New(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := m.Load(p); err != nil {
			t.Log(err)
			return false
		}
		r, err := m.RunUntil(crash)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := recovery.CheckAll(r.Histories, r.Image, r.UndoLog, logging); err != nil {
			t.Logf("seed=%d variant=%d crash=%d: %v", seed, variant, crash, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDurableEquality: for completed runs under any LB variant, drain
// leaves NVRAM holding exactly the newest version of every written line.
func TestQuickDurableEquality(t *testing.T) {
	f := func(seed uint64, variant uint8) bool {
		cfg := testConfig(LB)
		cfg.IDT = variant&1 != 0
		cfg.PF = variant&2 != 0
		r := run(t, cfg, randomProgram(seed, 4, 100, true))
		if !r.Finished {
			return false
		}
		for line, want := range r.Latest {
			if r.Image[line] != want {
				t.Logf("seed=%d: line %v image=%d latest=%d", seed, line, r.Image[line], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThroughputSane: throughput is positive and bounded by the
// physical issue rate for arbitrary small programs.
func TestQuickThroughputSane(t *testing.T) {
	f := func(seed uint64) bool {
		r := run(t, testConfig(LB), randomProgram(seed, 2, 60, true))
		return r.Finished && r.ExecCycles > 0 && r.Transactions == 0 ||
			r.Throughput() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashAtCycleZeroIsEmpty: the degenerate crash instant.
func TestCrashAtCycleZeroIsEmpty(t *testing.T) {
	m, err := New(testConfig(LB))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(randomProgram(1, 4, 50, true)); err != nil {
		t.Fatal(err)
	}
	r, err := m.RunUntil(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Image) != 0 {
		t.Fatalf("image at cycle 0 has %d lines", len(r.Image))
	}
	if err := recovery.CheckAll(r.Histories, r.Image, r.UndoLog, false); err != nil {
		t.Fatal(err)
	}
}

// TestSingleStoreProgram: the minimal persistent program end to end.
func TestSingleStoreProgram(t *testing.T) {
	var b trace.Builder
	b.Store(0)
	r := run(t, testConfig(LB), singleTrace(&b))
	if !r.Finished || r.PersistedLines != 1 {
		t.Fatalf("finished=%v persisted=%d", r.Finished, r.PersistedLines)
	}
	if r.Image[mem.LineOf(0)] != r.Latest[mem.LineOf(0)] {
		t.Fatal("single store not durable after drain")
	}
}
