package machine

import (
	"persistbarriers/internal/cache"
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/noc"
	"persistbarriers/internal/nvram"
	"persistbarriers/internal/sim"
)

// CoreResult summarizes one core's run.
type CoreResult struct {
	Transactions uint64
	OpsRetired   int
	ExecDone     sim.Cycle
	Stalls       [numStallCauses]sim.Cycle
	OpTimes      []sim.Cycle
}

// ConflictCounts are conflict events observed on the access paths (as
// opposed to per-epoch flush causes, which live in EpochStats.ByCause).
type ConflictCounts struct {
	Intra        uint64
	Inter        uint64
	Eviction     uint64
	IDTFallbacks uint64
}

// Total sums all conflict events. IDTFallbacks is deliberately excluded:
// a fallback is a resolution path of an inter-thread conflict that was
// already counted in Inter (the dependence registers were full, so the
// request stalled online instead), not an additional conflict event.
func (c ConflictCounts) Total() uint64 { return c.Intra + c.Inter + c.Eviction }

// IDTResolved counts inter-thread conflicts that IDT resolved offline
// through a dependence register: every inter conflict under IDT either
// lands in a register or falls back online (IDTFallbacks), so the
// difference is the offline-resolved count. Only meaningful for IDT
// configurations — without IDT, IDTFallbacks is zero and the value
// degenerates to Inter (all of which resolved online).
func (c ConflictCounts) IDTResolved() uint64 {
	if c.IDTFallbacks >= c.Inter {
		return 0
	}
	return c.Inter - c.IDTFallbacks
}

// EpochAggregate sums per-core epoch statistics.
type EpochAggregate struct {
	Opened      uint64
	Persisted   uint64
	Conflicting uint64
	ByCause     [epoch.CauseNatural + 1]uint64
	ByAdvance   [epoch.DrainAdvance + 1]uint64
	Deps        uint64
	Splits      uint64
	Flushes     uint64
	Natural     uint64
}

// ConflictingFraction is Figure 12's metric: the share of persisted epochs
// that were the target of at least one conflict before persisting. IDT
// resolving a conflict offline still counts — the paper's LB+IDT bar stays
// at ~90% for exactly that reason (§7.1).
func (e EpochAggregate) ConflictingFraction() float64 {
	if e.Persisted == 0 {
		return 0
	}
	return float64(e.Conflicting) / float64(e.Persisted)
}

// Result is the complete outcome of one simulation run.
type Result struct {
	Barrier     string
	Model       Model
	ExecCycles  sim.Cycle
	DrainCycles sim.Cycle
	Finished    bool
	Deadlocked  bool

	Transactions uint64
	Cores        []CoreResult
	Conflicts    ConflictCounts
	Epochs       EpochAggregate

	PersistedLines uint64
	LogWrites      uint64

	MC  nvram.Stats
	NoC noc.Stats
	L1  cache.Stats
	LLC cache.Stats

	// Recovery material (populated per the Record* config flags).
	Histories  [][]*epoch.Summary
	Image      map[mem.Line]mem.Version
	UndoLog    []nvram.LogEntry
	Latest     map[mem.Line]mem.Version
	PersistLog []PersistEvent

	// TokenVersions maps each retired tagged store (trace.Op.Token) to
	// the version it committed; tokens whose store had not retired by the
	// crash instant are absent.
	TokenVersions map[uint64]mem.Version
}

// Throughput is transactions per kilocycle — Figure 11's metric (before
// normalization to LB).
func (r *Result) Throughput() float64 {
	if r.ExecCycles == 0 {
		return 0
	}
	return float64(r.Transactions) / float64(r.ExecCycles) * 1000
}

// StallTotal sums a stall cause over all cores.
func (r *Result) StallTotal(cause StallCause) sim.Cycle {
	var t sim.Cycle
	for i := range r.Cores {
		t += r.Cores[i].Stalls[cause]
	}
	return t
}

// result snapshots the machine state into a Result.
func (m *Machine) result() *Result {
	r := &Result{
		Barrier:        m.cfg.BarrierName(),
		Model:          m.cfg.Model,
		ExecCycles:     m.execCycles,
		DrainCycles:    m.drainCycles,
		Finished:       m.finished,
		Deadlocked:     m.deadlocked,
		PersistedLines: m.persistedLines,
		LogWrites:      m.logWrites,
		MC:             m.mcs.Stats(),
		NoC:            m.mesh.Stats(),
		Conflicts: ConflictCounts{
			Intra:        m.intraConflicts,
			Inter:        m.interConflicts,
			Eviction:     m.evictionConflicts,
			IDTFallbacks: m.idtFallbacks,
		},
		PersistLog: m.persistLog,
	}
	if !m.finished {
		// Crashed or deadlocked mid-run: report progress so far.
		r.ExecCycles = m.eng.Now()
	}
	for _, c := range m.cores {
		cr := CoreResult{
			Transactions: c.txs,
			OpsRetired:   c.retired + c.pc,
			ExecDone:     c.execDone,
			Stalls:       c.stalls,
			OpTimes:      c.opTimes,
		}
		r.Transactions += c.txs
		r.Cores = append(r.Cores, cr)
		l1s := c.l1.Stats()
		r.L1.Hits += l1s.Hits
		r.L1.Misses += l1s.Misses
		r.L1.Evictions += l1s.Evictions
		r.L1.DirtyEvicts += l1s.DirtyEvicts
		if c.table != nil {
			ts := c.table.Stats()
			r.Epochs.Opened += ts.EpochsOpened
			r.Epochs.Persisted += ts.EpochsPersisted
			r.Epochs.Conflicting += ts.ConflictingEpochs
			r.Epochs.Deps += ts.DepsRecorded
			r.Epochs.Splits += ts.Splits
			for i := range ts.ByCause {
				r.Epochs.ByCause[i] += ts.ByCause[i]
			}
			for i := range ts.ByAdvance {
				r.Epochs.ByAdvance[i] += ts.ByAdvance[i]
			}
			as := c.arb.Stats()
			r.Epochs.Flushes += as.FlushesDriven
			r.Epochs.Natural += as.NaturalPersists
			if m.cfg.RecordHistory {
				r.Histories = append(r.Histories, c.table.History())
			}
		}
	}
	for _, b := range m.banks {
		bs := b.arr.Stats()
		r.LLC.Hits += bs.Hits
		r.LLC.Misses += bs.Misses
		r.LLC.Evictions += bs.Evictions
		r.LLC.DirtyEvicts += bs.DirtyEvicts
	}
	if m.cfg.RecordHistory {
		r.Image = m.mcs.Image()
		r.UndoLog = m.mcs.Log()
		r.Latest = make(map[mem.Line]mem.Version)
		m.lines.forEach(func(ls *lineState) {
			if ls.latest != 0 {
				r.Latest[ls.line] = ls.latest
			}
		})
	}
	if len(m.tokenVersions) > 0 {
		r.TokenVersions = make(map[uint64]mem.Version, len(m.tokenVersions))
		for t, v := range m.tokenVersions {
			r.TokenVersions[t] = v
		}
	}
	return r
}
