package machine

import (
	"testing"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

func lbStreamConfig() Config {
	cfg := testConfig(LB)
	cfg.IDT, cfg.PF = true, true
	return cfg
}

func TestStreamFeedAndDrain(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	var b trace.Builder
	b.Store(0x1000).Barrier().Store(0x2000).Barrier().TxEnd()
	if err := m.Feed(0, b.Ops()); err != nil {
		t.Fatal(err)
	}
	if !m.PumpUntilIdle(sim.MaxCycle) {
		t.Fatal("machine did not go idle")
	}
	// Cores retired their ops but the run is still open: feed more.
	var b2 trace.Builder
	b2.Store(0x3000).Barrier().TxEnd()
	if err := m.Feed(1, b2.Ops()); err != nil {
		t.Fatal(err)
	}
	if !m.PumpUntilIdle(sim.MaxCycle) {
		t.Fatal("machine did not go idle after second feed")
	}
	r, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Finished || r.Deadlocked {
		t.Fatalf("Finished=%v Deadlocked=%v", r.Finished, r.Deadlocked)
	}
	if r.Transactions != 2 {
		t.Fatalf("transactions = %d, want 2", r.Transactions)
	}
	// After the drain, every store must be durable.
	for _, l := range []mem.Line{mem.LineOf(0x1000), mem.LineOf(0x2000), mem.LineOf(0x3000)} {
		if r.Image[l] == mem.NoVersion {
			t.Fatalf("line %v not durable after drain", l)
		}
	}
}

func TestStreamCrashLimit(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	var b trace.Builder
	for i := 0; i < 50; i++ {
		b.Store(mem.Addr(0x1000 + i*64)).Barrier()
	}
	if err := m.Feed(0, b.Ops()); err != nil {
		t.Fatal(err)
	}
	const crash = 500
	if m.PumpUntilIdle(crash) {
		t.Fatal("50 barriered stores retired within 500 cycles")
	}
	if m.Deadlocked() {
		t.Fatal("crash limit misreported as deadlock")
	}
	if m.Now() != crash {
		t.Fatalf("clock = %d at crash, want %d", m.Now(), crash)
	}
	r := m.Snapshot()
	if r.Finished {
		t.Fatal("crashed run reported finished")
	}
}

func TestStreamTokenVersions(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	var b trace.Builder
	b.StoreTagged(0x1000, 7).Barrier().StoreTagged(0x1000, 8).Barrier()
	if err := m.Feed(0, b.Ops()); err != nil {
		t.Fatal(err)
	}
	r, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	v7, ok7 := r.TokenVersions[7]
	v8, ok8 := r.TokenVersions[8]
	if !ok7 || !ok8 {
		t.Fatalf("tokens missing: %v", r.TokenVersions)
	}
	if v8 <= v7 {
		t.Fatalf("later tagged store got version %d <= %d", v8, v7)
	}
	if r.Image[mem.LineOf(0x1000)] != v8 {
		t.Fatalf("image holds %d, want final version %d", r.Image[mem.LineOf(0x1000)], v8)
	}
}

func TestStreamFeedErrors(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(0, nil); err == nil {
		t.Fatal("Feed before StartStream accepted")
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err == nil {
		t.Fatal("double StartStream accepted")
	}
	if err := m.Feed(99, nil); err == nil {
		t.Fatal("Feed to out-of-range core accepted")
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(0, nil); err == nil {
		t.Fatal("Feed after Drain accepted")
	}
}

// TestStreamTaggedSameLineOverlapPanics: a second tagged store issued to
// a line while the first is still posted in the write buffer must be a
// hard error — silently rebinding the entry would attach the new token to
// the first store's version and drop the old token from TokenVersions.
func TestStreamTaggedSameLineOverlapPanics(t *testing.T) {
	m, err := New(lbStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartStream(); err != nil {
		t.Fatal(err)
	}
	var b trace.Builder
	b.StoreTagged(0x1000, 7).StoreTagged(0x1000, 8) // no draining barrier between
	if err := m.Feed(0, b.Ops()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping same-line tagged stores did not panic")
		}
	}()
	m.PumpUntilIdle(sim.MaxCycle)
}
