package machine

import (
	"testing"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// --- Strict persistency (SP) semantics -------------------------------------

func TestSPPersistOrderIsProgramOrder(t *testing.T) {
	// Rule S1: versions must reach NVRAM in program order. The persist
	// log records ack order; versions are monotone per issue order.
	var b trace.Builder
	for i := 0; i < 10; i++ {
		b.Store(mem.Addr(i * 64))
	}
	cfg := testConfig(SP)
	cfg.RecordOpTimes = true
	r := run(t, cfg, singleTrace(&b))
	if len(r.PersistLog) != 10 {
		t.Fatalf("persist events = %d, want 10", len(r.PersistLog))
	}
	for i := 1; i < len(r.PersistLog); i++ {
		if r.PersistLog[i].Version < r.PersistLog[i-1].Version {
			t.Fatalf("SP persists out of program order: %+v", r.PersistLog)
		}
	}
}

func TestSPBlocksVisibilityOnPersist(t *testing.T) {
	// Rule S2: the next op cannot issue before the previous store
	// persisted, so 3 stores cost at least 3 NVRAM write latencies.
	var b trace.Builder
	b.Store(0).Store(64).Store(128)
	r := run(t, testConfig(SP), singleTrace(&b))
	min := sim.Cycle(3 * 360)
	if r.ExecCycles < min {
		t.Fatalf("SP exec %d cycles < 3 write latencies %d", r.ExecCycles, min)
	}
}

// --- Naive write-through BSP (WT) semantics ---------------------------------

func TestWTSerializesPersistsPerCore(t *testing.T) {
	// Rule S1 under WT: a core's persists issue one at a time, so N
	// stores need ~N*WriteLatency to all become durable — but visibility
	// is decoupled, so execution finishes long before the drain.
	var b trace.Builder
	for i := 0; i < 8; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, testConfig(WT), singleTrace(&b))
	if r.PersistedLines != 8 {
		t.Fatalf("persisted lines = %d, want 8", r.PersistedLines)
	}
	minDrain := sim.Cycle(8 * 360)
	if r.DrainCycles < minDrain {
		t.Fatalf("WT drain at %d < serialized bound %d", r.DrainCycles, minDrain)
	}
	if r.ExecCycles >= minDrain {
		t.Fatalf("WT exec %d not decoupled from the persist drain %d", r.ExecCycles, minDrain)
	}
}

func TestWTQueueBackpressure(t *testing.T) {
	// With a 2-entry persist queue, a burst of stores must stall the
	// core on the queue.
	cfg := testConfig(WT)
	cfg.WTQueue = 2
	var b trace.Builder
	for i := 0; i < 20; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, cfg, singleTrace(&b))
	if r.StallTotal(StallPersistQueue) == 0 {
		t.Fatal("no persist-queue stalls with a 2-entry queue")
	}
}

// --- EP vs LB barrier semantics ---------------------------------------------

func TestEPEpochAtomicOrderAtEveryCrash(t *testing.T) {
	// EP holds at most one unpersisted epoch; any crash must show a
	// prefix of whole epochs (ordering implies atomicity here because
	// the barrier blocked until each epoch persisted).
	var b trace.Builder
	for i := 0; i < 6; i++ {
		b.Store(mem.Addr(i * 128)).Store(mem.Addr(i*128 + 64)).Barrier()
	}
	for crash := sim.Cycle(200); crash < 12000; crash += 400 {
		crashCheck(t, testConfig(EP), singleTrace(&b), crash, false)
	}
}

func TestEPWaitsFullPersistLatencyPerBarrier(t *testing.T) {
	var b trace.Builder
	b.Store(0).Barrier().Store(64).Barrier()
	r := run(t, testConfig(EP), singleTrace(&b))
	// Two barriers, each waiting at least an NVRAM write round trip.
	if r.ExecCycles < 2*360 {
		t.Fatalf("EP exec %d < two write latencies", r.ExecCycles)
	}
}

// --- Write buffer semantics --------------------------------------------------

func TestWriteBufferOverlapsStoreMisses(t *testing.T) {
	// Independent store misses should overlap through the write buffer:
	// wall time must be far below the serialized sum.
	mk := func() *trace.Program {
		var b trace.Builder
		for i := 0; i < 16; i++ {
			b.Store(mem.Addr(0x9000_0000 + i*64))
		}
		return singleTrace(&b)
	}
	posted := testConfig(LB)
	r1 := run(t, posted, mk())
	blocking := testConfig(LB)
	blocking.WriteBuffer = 0
	r2 := run(t, blocking, mk())
	if r1.ExecCycles*2 > r2.ExecCycles {
		t.Fatalf("posted stores (%d cyc) not at least 2x faster than blocking (%d cyc)",
			r1.ExecCycles, r2.ExecCycles)
	}
}

func TestBarrierDrainsWriteBuffer(t *testing.T) {
	// A barrier must not close the epoch while its stores are in flight:
	// every store before the barrier lands in epoch 0, after it in 1.
	var b trace.Builder
	for i := 0; i < 8; i++ {
		b.Store(mem.Addr(0x9100_0000 + i*64))
	}
	b.Barrier()
	b.Store(0x9200_0000)
	cfg := testConfig(LB)
	r := run(t, cfg, singleTrace(&b))
	var epoch0Writes, epoch1Writes int
	for _, hist := range r.Histories {
		for _, s := range hist {
			if s.ID.Core != 0 {
				continue
			}
			switch s.ID.Num {
			case 0:
				epoch0Writes = len(s.Writes)
			case 1:
				epoch1Writes = len(s.Writes)
			}
		}
	}
	if epoch0Writes != 8 || epoch1Writes != 1 {
		t.Fatalf("epoch writes = %d/%d, want 8/1 (barrier did not drain)", epoch0Writes, epoch1Writes)
	}
}

// --- Bulk-mode BSP details ----------------------------------------------------

func TestBulkCheckpointRotatesSlots(t *testing.T) {
	cfg := testConfig(LB)
	cfg.BulkEpochStores = 3
	cfg.CheckpointLines = 2
	var b trace.Builder
	for i := 0; i < 30; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, cfg, singleTrace(&b))
	// 30 data stores / 3 per epoch = 10 hardware epochs, each writing 2
	// checkpoint lines into one of 8 rotating slots (16 distinct lines).
	ckptLines := map[mem.Line]bool{}
	for l := range r.Latest {
		if l.Addr() >= 1<<40 {
			ckptLines[l] = true
		}
	}
	if len(ckptLines) != 16 {
		t.Fatalf("distinct checkpoint lines = %d, want 16 (8 slots x 2 lines)", len(ckptLines))
	}
}

func TestBulkLoggingOncePerLinePerEpoch(t *testing.T) {
	cfg := testConfig(LB)
	cfg.BulkEpochStores = 100
	cfg.CheckpointLines = 0
	cfg.Logging = true
	var b trace.Builder
	// Ten stores, all to one line, within one hardware epoch: one log
	// entry (the paper's first-modification rule, §5.2.1).
	for i := 0; i < 10; i++ {
		b.Store(0)
	}
	r := run(t, cfg, singleTrace(&b))
	if r.LogWrites != 1 {
		t.Fatalf("log writes = %d, want 1 (first modification only)", r.LogWrites)
	}
}

func TestBulkEpochStoreCountsCheckpointWrites(t *testing.T) {
	// Hardware epochs close on the data-store quota; the checkpoint
	// stores themselves must not recursively trigger barriers.
	cfg := testConfig(LB)
	cfg.BulkEpochStores = 4
	cfg.CheckpointLines = 4
	var b trace.Builder
	for i := 0; i < 12; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, cfg, singleTrace(&b))
	if got := r.Epochs.ByAdvance[epoch.HardwareAdvance]; got != 3 {
		t.Fatalf("hardware advances = %d, want 3", got)
	}
}

// --- Global-arbiter ablation ---------------------------------------------------

func TestGlobalArbiterSerializesFlushes(t *testing.T) {
	mk := func() *trace.Program { return randomProgram(17, 4, 150, true) }
	perCore := testConfig(LB)
	perCore.PF = true
	global := perCore
	global.GlobalArbiter = true
	r1 := run(t, perCore, mk())
	r2 := run(t, global, mk())
	if !r1.Finished || !r2.Finished {
		t.Fatal("runs did not finish")
	}
	if r2.ExecCycles < r1.ExecCycles {
		t.Fatalf("global arbiter (%d cyc) faster than per-core (%d cyc)?",
			r2.ExecCycles, r1.ExecCycles)
	}
	// Correctness must hold under serialization too.
	for _, crash := range []sim.Cycle{2000, 9000} {
		crashCheck(t, global, mk(), crash, false)
	}
}

// --- IDT register exhaustion ------------------------------------------------

func TestIDTRegisterExhaustionFallsBack(t *testing.T) {
	// One register per epoch and conflicts with many sources: the
	// fallback counter must fire and the run stays correct.
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.Epoch.DepRegs = 1
	var traces [][]trace.Op
	// Three source threads each write a distinct line and keep their
	// epochs alive; the reader thread touches all three lines in one
	// epoch, needing three registers.
	for s := 0; s < 3; s++ {
		var b trace.Builder
		b.Store(mem.Addr(s * 64)).Barrier().Compute(6000)
		traces = append(traces, b.Ops())
	}
	var rd trace.Builder
	rd.Compute(400).Load(0).Load(64).Load(128).Store(0x9300_0000).Barrier()
	traces = append(traces, rd.Ops())
	r := run(t, cfg, &trace.Program{Traces: traces})
	if r.Conflicts.IDTFallbacks == 0 {
		t.Fatal("no register-full fallbacks with DepRegs=1 and 3 sources")
	}
	if !r.Finished {
		t.Fatal("did not finish")
	}
}

// --- Epoch-split interaction with posted stores ------------------------------

func TestSplitDuringPostedStores(t *testing.T) {
	// A reader conflicts with a writer's ongoing epoch while the writer
	// has stores in flight; the split must keep ordering intact at every
	// crash point.
	mk := func() *trace.Program {
		var w, rd trace.Builder
		// The writer dirties its hot line early, then keeps the epoch
		// ongoing with compute and more posted stores.
		w.Store(0x9500_0000)
		for i := 0; i < 20; i++ {
			w.Compute(400)
			w.Store(mem.Addr(0x9400_0000 + i*64))
		}
		w.Barrier()
		// The reader probes mid-epoch: after the hot store committed,
		// long before the writer's barrier.
		rd.Compute(2000).Load(0x9500_0000).Store(0x9600_0000).Barrier()
		return &trace.Program{Traces: [][]trace.Op{w.Ops(), rd.Ops()}}
	}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	r := run(t, cfg, mk())
	if r.Epochs.Splits == 0 {
		t.Fatal("reader conflict with ongoing epoch did not split")
	}
	for crash := sim.Cycle(300); crash < 6000; crash += 450 {
		crashCheck(t, cfg, mk(), crash, false)
	}
}

// --- Monolithic-LLC configuration (§4.1's simpler protocol) -------------------

func TestMonolithicLLCWorks(t *testing.T) {
	cfg := testConfig(LB)
	cfg.LLCBanks = 1
	cfg.LLCSets = 256
	cfg.IDT = true
	cfg.PF = true
	p := randomProgram(23, 4, 150, true)
	r := run(t, cfg, p)
	if !r.Finished {
		t.Fatal("monolithic-LLC run did not finish")
	}
	for _, crash := range []sim.Cycle{1500, 7000} {
		crashCheck(t, cfg, randomProgram(23, 4, 150, true), crash, false)
	}
}

// --- Recovery integration: random graph property ------------------------------

func TestRecoveryRandomizedGraphs(t *testing.T) {
	// Randomized crash images over synthetic epoch graphs: any image
	// formed by persisting a downward-closed epoch set plus a partial
	// frontier epoch must pass CheckOrdering; adding a line from a
	// non-closed epoch must fail it.
	r := trace.NewRand(77)
	for iter := 0; iter < 60; iter++ {
		cores := 2 + r.Intn(3)
		perCore := 2 + r.Intn(4)
		var hist [][]*epoch.Summary
		ver := mem.Version(1)
		type write struct {
			line mem.Line
			v    mem.Version
		}
		all := map[epoch.ID][]write{}
		var order []epoch.ID
		for c := 0; c < cores; c++ {
			var col []*epoch.Summary
			for n := 0; n < perCore; n++ {
				id := epoch.ID{Core: c, Num: uint64(n)}
				writes := map[mem.Line]mem.Version{}
				for w := 0; w < 1+r.Intn(3); w++ {
					line := mem.Line(c*100 + n*10 + w)
					writes[line] = ver
					all[id] = append(all[id], write{line, ver})
					ver++
				}
				col = append(col, &epoch.Summary{ID: id, Writes: writes})
				order = append(order, id)
			}
			hist = append(hist, col)
		}
		// Persist a random per-core prefix.
		image := map[mem.Line]mem.Version{}
		closed := map[epoch.ID]bool{}
		for c := 0; c < cores; c++ {
			k := r.Intn(perCore + 1)
			for n := 0; n < k; n++ {
				id := epoch.ID{Core: c, Num: uint64(n)}
				closed[id] = true
				hist[c][n].PersistedFlag = true
				for _, w := range all[id] {
					image[w.line] = w.v
				}
			}
		}
		if err := recovery.CheckAll(hist, image, nil, false); err != nil {
			t.Fatalf("iter %d: valid prefix image rejected: %v", iter, err)
		}
		// Corrupt: persist one line of an epoch whose program-order
		// predecessor is NOT persisted.
		for c := 0; c < cores; c++ {
			var k int
			for k = 0; k < perCore; k++ {
				if !closed[epoch.ID{Core: c, Num: uint64(k)}] {
					break
				}
			}
			if k+1 < perCore {
				bad := epoch.ID{Core: c, Num: uint64(k + 1)}
				w := all[bad][0]
				image[w.line] = w.v
				if err := recovery.CheckAll(hist, image, nil, false); err == nil {
					t.Fatalf("iter %d: gap image accepted (epoch %v persisted past a hole)", iter, bad)
				}
				break
			}
		}
	}
}
