package machine

import (
	"fmt"

	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// Streaming mode lets a live application program the machine at runtime:
// instead of preloading a fixed trace, ops are appended per core with Feed
// while the simulation is paused, and PumpUntilIdle advances the machine
// until every core has retired its queued ops (background persist
// machinery keeps its in-flight state across pumps, so epochs persist
// lazily under later batches exactly as buffered epoch persistency
// intends). The driver is single-threaded with respect to the machine:
// Feed/Pump/Step/Snapshot calls must not race the engine.

// StartStream puts an unused machine into streaming mode. Every core
// starts parked with an empty trace; Feed supplies ops.
func (m *Machine) StartStream() error {
	if m.runningCores != 0 || m.finished || m.streaming {
		return fmt.Errorf("machine: already run")
	}
	m.streaming = true
	m.runningCores = len(m.cores)
	for _, c := range m.cores {
		c := c
		m.eng.At(0, func() { m.stepCore(c) })
	}
	return nil
}

// Feed appends ops to core's instruction stream, waking it if parked. It
// may only be called between pumps (never from inside an engine event).
func (m *Machine) Feed(core int, ops []trace.Op) error {
	if !m.streaming {
		return fmt.Errorf("machine: Feed outside streaming mode")
	}
	if m.feedClosed {
		return fmt.Errorf("machine: Feed after CloseFeed")
	}
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("machine: Feed to core %d of %d", core, len(m.cores))
	}
	c := m.cores[core]
	if c.pc > 0 && c.pc == len(c.ops) {
		// The core consumed everything it was fed: reclaim the prefix so a
		// long-lived stream runs in bounded memory (and appends below stay
		// amortized O(1) instead of growing the slice forever).
		c.retired += c.pc
		c.pc = 0
		c.ops = c.ops[:0]
	}
	c.ops = append(c.ops, ops...)
	if c.waiting {
		c.waiting = false
		if c.wake == nil {
			c.wake = func() { m.stepCore(c) }
		}
		m.eng.At(m.eng.Now(), c.wake)
	}
	return nil
}

// CloseFeed declares that no further ops will arrive on any core. Parked
// cores are released so they can retire; the run then finishes (with the
// usual end-of-run persist drain) once every core runs dry.
func (m *Machine) CloseFeed() {
	if !m.streaming || m.feedClosed {
		return
	}
	m.feedClosed = true
	for _, c := range m.cores {
		if c.waiting {
			c.waiting = false
			c := c
			m.eng.At(m.eng.Now(), func() { m.stepCore(c) })
		}
	}
}

// Idle reports whether every core is parked awaiting ops (or retired).
func (m *Machine) Idle() bool {
	for _, c := range m.cores {
		if !c.waiting && !c.done {
			return false
		}
	}
	return true
}

// PumpUntilIdle runs the machine until every core has retired its queued
// ops, the crash limit is reached, or the machine deadlocks. It returns
// true when the cores went idle before limit; false means the clock hit
// limit first (a crash instant — snapshot with Snapshot) or the machine
// deadlocked (Deadlocked reports which).
func (m *Machine) PumpUntilIdle(limit sim.Cycle) bool {
	if !m.streaming {
		return false
	}
	m.eng.RunWhile(limit, func() bool { return !m.Idle() })
	if m.Idle() {
		return true
	}
	if m.eng.Pending() == 0 {
		// Cores stuck with nothing scheduled: a genuine protocol deadlock
		// (e.g. splitting disabled under a circular dependence).
		m.deadlocked = true
	}
	return false
}

// Step advances the clock by up to delta cycles, running whatever
// background machinery (epoch flushes, NVRAM writes) is scheduled — the
// streaming analogue of wall-clock time passing between request batches.
func (m *Machine) Step(delta sim.Cycle) {
	if !m.streaming {
		return
	}
	m.eng.RunUntil(m.eng.Now() + delta)
}

// Drain ends a streaming run: the feed closes, every core retires, and
// the end-of-run persist drain flushes all outstanding epochs. It returns
// the final result.
func (m *Machine) Drain() (*Result, error) {
	if !m.streaming {
		return nil, fmt.Errorf("machine: Drain outside streaming mode")
	}
	m.CloseFeed()
	m.eng.Run()
	if !m.finished {
		m.deadlocked = true
	}
	return m.result(), nil
}

// Snapshot captures the machine state as a Result without ending the run
// — the durable image is exactly what NVRAM holds at this instant, which
// is what a crash at the current cycle would leave behind.
func (m *Machine) Snapshot() *Result { return m.result() }

// Deadlocked reports whether the machine has wedged.
func (m *Machine) Deadlocked() bool { return m.deadlocked }

// Now reports the current simulated cycle.
func (m *Machine) Now() sim.Cycle { return m.eng.Now() }
