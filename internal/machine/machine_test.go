package machine

import (
	"testing"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// testConfig returns a small 4-core machine for fast protocol tests.
func testConfig(model Model) Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.LLCBanks = 4
	cfg.LLCSets = 64
	cfg.Model = model
	cfg.RecordHistory = true
	return cfg
}

func run(t *testing.T, cfg Config, p *trace.Program) *Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func singleTrace(b *trace.Builder) *trace.Program {
	return &trace.Program{Traces: [][]trace.Op{b.Ops()}}
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 33 },
		func(c *Config) { c.LLCBanks = 0 },
		func(c *Config) { c.L1Sets = 0 },
		func(c *Config) { c.MemControllers = 0 },
		func(c *Config) { c.L1Latency = 0 },
		func(c *Config) { c.Model = WT; c.WTQueue = 0 },
		func(c *Config) { c.BulkEpochStores = -1 },
		func(c *Config) { c.Model = NP; c.BulkEpochStores = 100 },
		func(c *Config) { c.Model = EP; c.Logging = true },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestBarrierName(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		idt, pf bool
		want    string
	}{
		{false, false, "LB"},
		{true, false, "LB+IDT"},
		{false, true, "LB+PF"},
		{true, true, "LB++"},
	}
	for _, c := range cases {
		cfg.IDT, cfg.PF = c.idt, c.pf
		if got := cfg.BarrierName(); got != c.want {
			t.Errorf("BarrierName(idt=%v,pf=%v) = %q, want %q", c.idt, c.pf, got, c.want)
		}
	}
	cfg.Model = NP
	if cfg.BarrierName() != "NP" {
		t.Errorf("NP name = %q", cfg.BarrierName())
	}
}

func TestRunRequiresProgram(t *testing.T) {
	m, err := New(testConfig(NP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("empty machine ran")
	}
}

func TestLoadRejectsTooManyTraces(t *testing.T) {
	m, err := New(testConfig(NP))
	if err != nil {
		t.Fatal(err)
	}
	p := &trace.Program{Traces: make([][]trace.Op, 5)}
	if err := m.Load(p); err == nil {
		t.Fatal("5 traces accepted on 4 cores")
	}
}

func TestNPSimpleRun(t *testing.T) {
	var b trace.Builder
	b.Store(0).Load(0).Store(64).Compute(10).TxEnd()
	r := run(t, testConfig(NP), singleTrace(&b))
	if !r.Finished || r.Deadlocked {
		t.Fatalf("run did not finish cleanly: %+v", r)
	}
	if r.Transactions != 1 {
		t.Fatalf("Transactions = %d, want 1", r.Transactions)
	}
	if r.ExecCycles == 0 {
		t.Fatal("zero exec cycles")
	}
	if r.Cores[0].OpsRetired != 5 {
		t.Fatalf("OpsRetired = %d, want 5", r.Cores[0].OpsRetired)
	}
}

func TestL1HitIsFast(t *testing.T) {
	var b trace.Builder
	b.Load(0).Load(0).Load(0)
	cfg := testConfig(NP)
	cfg.RecordOpTimes = true
	r := run(t, cfg, singleTrace(&b))
	times := r.Cores[0].OpTimes
	if len(times) != 3 {
		t.Fatalf("op times = %v", times)
	}
	// First load misses everywhere (LLC + NVRAM); subsequent loads hit L1.
	if times[0] < 200 {
		t.Errorf("cold load completed at %d, expected NVRAM-latency path", times[0])
	}
	if d := times[1] - times[0]; d != cfg.L1Latency {
		t.Errorf("warm load took %d, want L1 latency %d", d, cfg.L1Latency)
	}
}

func TestStoreThenLoadSameCore(t *testing.T) {
	var b trace.Builder
	b.Store(0).Load(0)
	r := run(t, testConfig(LB), singleTrace(&b))
	if !r.Finished {
		t.Fatal("did not finish")
	}
	if r.Conflicts.Total() != 0 {
		t.Fatalf("unexpected conflicts: %+v", r.Conflicts)
	}
}

func TestLBBarrierDoesNotBlock(t *testing.T) {
	// Under BEP the barrier itself must not wait for persists: execution
	// time should be far below the NVRAM write latency path that EP pays.
	var b1 trace.Builder
	b1.Store(0).Barrier().Store(64).Barrier().Store(128)
	lb := run(t, testConfig(LB), singleTrace(&b1))

	var b2 trace.Builder
	b2.Store(0).Barrier().Store(64).Barrier().Store(128)
	ep := run(t, testConfig(EP), singleTrace(&b2))

	if lb.ExecCycles >= ep.ExecCycles {
		t.Fatalf("LB exec %d not faster than EP exec %d", lb.ExecCycles, ep.ExecCycles)
	}
	if got := ep.StallTotal(StallBarrier); got == 0 {
		t.Fatal("EP recorded no barrier stalls")
	}
	if got := lb.StallTotal(StallBarrier); got != 0 {
		t.Fatalf("LB recorded %d barrier stall cycles", got)
	}
}

func TestDrainPersistsEverything(t *testing.T) {
	var b trace.Builder
	b.Store(0).Store(64).Barrier().Store(128)
	r := run(t, testConfig(LB), singleTrace(&b))
	if !r.Finished {
		t.Fatal("did not finish")
	}
	for _, line := range []mem.Line{0, 1, 2} {
		v, ok := r.Image[line]
		if !ok {
			t.Fatalf("line %d not durable after drain", line)
		}
		if v != r.Latest[line] {
			t.Fatalf("line %d durable version %d != latest %d", line, v, r.Latest[line])
		}
	}
	if r.Epochs.Persisted < 2 {
		t.Fatalf("Persisted epochs = %d, want >= 2", r.Epochs.Persisted)
	}
}

func TestIntraThreadConflictForcesFlush(t *testing.T) {
	// Store A in epoch 0, barrier, barrier, store A again in epoch 2:
	// the paper's Figure 3(b) — the second store must wait for epoch 0.
	var b trace.Builder
	b.Store(0).Barrier().Store(64).Barrier().Store(0)
	r := run(t, testConfig(LB), singleTrace(&b))
	if r.Conflicts.Intra != 1 {
		t.Fatalf("intra conflicts = %d, want 1", r.Conflicts.Intra)
	}
	if r.StallTotal(StallIntra) == 0 {
		t.Fatal("no intra-conflict stall recorded")
	}
	if r.Epochs.ByCause[epoch.CauseIntra] == 0 {
		t.Fatal("no epoch flushed for an intra cause")
	}
}

func TestIntraReadDoesNotConflict(t *testing.T) {
	// Figure 3(b): Ld A within the same thread is NOT a conflict.
	var b trace.Builder
	b.Store(0).Barrier().Load(0).Store(64)
	r := run(t, testConfig(LB), singleTrace(&b))
	if r.Conflicts.Intra != 0 {
		t.Fatalf("intra conflicts = %d, want 0 (reads don't conflict)", r.Conflicts.Intra)
	}
}

func TestSameEpochRewriteIsNotAConflict(t *testing.T) {
	var b trace.Builder
	b.Store(0).Store(0).Store(0)
	r := run(t, testConfig(LB), singleTrace(&b))
	if r.Conflicts.Intra != 0 {
		t.Fatalf("intra conflicts = %d, want 0 (same-epoch coalescing)", r.Conflicts.Intra)
	}
}

func TestInterThreadConflictLB(t *testing.T) {
	// T0 stores Y and completes its epoch; T1 then loads Y: Figure 3(a).
	// Under plain LB the load must wait for T0's epoch to flush online.
	var t0, t1 trace.Builder
	t0.Store(0).Barrier().Compute(4000)
	t1.Compute(500).Load(0).Store(64)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	r := run(t, testConfig(LB), p)
	if r.Conflicts.Inter != 1 {
		t.Fatalf("inter conflicts = %d, want 1", r.Conflicts.Inter)
	}
	if r.StallTotal(StallInter) == 0 {
		t.Fatal("LB inter conflict did not stall the requester")
	}
	if r.Epochs.ByCause[epoch.CauseInter] == 0 {
		t.Fatal("no epoch flushed for an inter cause")
	}
}

func TestInterThreadConflictIDTAvoidsStall(t *testing.T) {
	var t0, t1 trace.Builder
	t0.Store(0).Barrier().Compute(4000)
	t1.Compute(500).Load(0).Store(64)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	cfg := testConfig(LB)
	cfg.IDT = true
	r := run(t, cfg, p)
	if r.Conflicts.Inter != 1 {
		t.Fatalf("inter conflicts = %d, want 1", r.Conflicts.Inter)
	}
	if r.StallTotal(StallInter) != 0 {
		t.Fatalf("IDT stalled %d cycles on an inter conflict, want 0", r.StallTotal(StallInter))
	}
	if r.Epochs.Deps != 1 {
		t.Fatalf("IDT deps recorded = %d, want 1", r.Epochs.Deps)
	}
	if !r.Finished {
		t.Fatal("did not finish")
	}
}

// TestIDTOrderingPreserved verifies the key IDT safety property: the
// dependent epoch's lines must not persist before the source epoch's.
func TestIDTOrderingPreserved(t *testing.T) {
	var t0, t1 trace.Builder
	t0.Store(0).Barrier().Compute(8000)
	t1.Compute(200).Load(0).Store(64).Barrier().Compute(8000)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	cfg.RecordOpTimes = true
	r := run(t, cfg, p)
	var srcPersist, depPersist int64 = -1, -1
	for _, ev := range r.PersistLog {
		if ev.Line == 0 && ev.Epoch.Core == 0 {
			srcPersist = int64(ev.Cycle)
		}
		if ev.Line == 1 && ev.Epoch.Core == 1 {
			depPersist = int64(ev.Cycle)
		}
	}
	if srcPersist < 0 || depPersist < 0 {
		t.Fatalf("persist events missing: src=%d dep=%d (%d events)", srcPersist, depPersist, len(r.PersistLog))
	}
	if depPersist < srcPersist {
		t.Fatalf("dependent epoch persisted at %d before source at %d", depPersist, srcPersist)
	}
}

func TestEpochSplitOnOngoingSourceEpoch(t *testing.T) {
	// T1 conflicts with T0's *ongoing* epoch: with IDT+split, T0's epoch
	// must be split (SplitAdvance) rather than stalled on.
	var t0, t1 trace.Builder
	t0.Store(0).Compute(2000).Store(64) // no barrier: epoch stays ongoing
	t1.Compute(300).Load(0)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	cfg := testConfig(LB)
	cfg.IDT = true
	r := run(t, cfg, p)
	if r.Epochs.Splits != 1 {
		t.Fatalf("splits = %d, want 1", r.Epochs.Splits)
	}
	if r.StallTotal(StallInter) != 0 {
		t.Fatal("split+IDT still stalled the requester")
	}
}

func TestDeadlockWithoutSplit(t *testing.T) {
	// Figure 5(a): circular dependence between two ongoing epochs. With
	// splitting disabled the system must deadlock (and be detected).
	var t0, t1 trace.Builder
	t0.Store(0).Compute(100).Load(64).Store(128)
	t1.Store(64).Compute(100).Load(0).Store(192)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.EnableSplit = false
	r := run(t, cfg, p)
	if !r.Deadlocked {
		t.Fatal("circular epoch dependence did not deadlock without splitting")
	}
}

func TestSplitAvoidsDeadlock(t *testing.T) {
	// Same pattern as above, with the §3.3 avoidance enabled.
	var t0, t1 trace.Builder
	t0.Store(0).Compute(100).Load(64).Store(128)
	t1.Store(64).Compute(100).Load(0).Store(192)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
	cfg := testConfig(LB)
	cfg.IDT = true
	r := run(t, cfg, p)
	if r.Deadlocked || !r.Finished {
		t.Fatalf("deadlock not avoided: deadlocked=%v finished=%v", r.Deadlocked, r.Finished)
	}
	if r.Epochs.Splits == 0 {
		t.Fatal("no epoch splits recorded")
	}
}

func TestInFlightWindowPressure(t *testing.T) {
	// More barriers than the window: the core must stall on pressure.
	cfg := testConfig(LB)
	cfg.Epoch.MaxInFlight = 2
	var b trace.Builder
	for i := 0; i < 6; i++ {
		b.Store(mem.Addr(i * 64)).Barrier()
	}
	r := run(t, cfg, singleTrace(&b))
	if !r.Finished {
		t.Fatal("did not finish")
	}
	if r.StallTotal(StallPressure) == 0 {
		t.Fatal("no pressure stalls with a 2-epoch window")
	}
	if r.Epochs.ByCause[epoch.CausePressure] == 0 {
		t.Fatal("no epoch flushed for pressure")
	}
}

func TestPFFlushesProactively(t *testing.T) {
	cfg := testConfig(LB)
	cfg.PF = true
	var b trace.Builder
	b.Store(0).Barrier().Compute(6000).Store(0)
	r := run(t, cfg, singleTrace(&b))
	// With PF, epoch 0 flushed during the compute gap; the second store
	// to line 0 must find it persisted -> no intra conflict.
	if r.Conflicts.Intra != 0 {
		t.Fatalf("intra conflicts = %d, want 0 with PF", r.Conflicts.Intra)
	}
	if r.Epochs.ByCause[epoch.CauseProactive] == 0 {
		t.Fatal("no proactive flushes recorded")
	}
}

func TestWithoutPFSameBecomesConflict(t *testing.T) {
	cfg := testConfig(LB)
	var b trace.Builder
	b.Store(0).Barrier().Compute(6000).Store(0)
	r := run(t, cfg, singleTrace(&b))
	if r.Conflicts.Intra != 1 {
		t.Fatalf("intra conflicts = %d, want 1 without PF", r.Conflicts.Intra)
	}
}

func TestSPPersistsEveryStore(t *testing.T) {
	var b trace.Builder
	b.Store(0).Store(0).Store(64)
	r := run(t, testConfig(SP), singleTrace(&b))
	if !r.Finished {
		t.Fatal("did not finish")
	}
	if r.PersistedLines != 3 {
		t.Fatalf("persisted lines = %d, want 3 (no coalescing under SP)", r.PersistedLines)
	}
	if r.StallTotal(StallPersistQueue) == 0 {
		t.Fatal("SP stores did not stall on persists")
	}
	if v := r.Image[0]; v != r.Latest[0] {
		t.Fatalf("line 0 durable version %d != latest %d", v, r.Latest[0])
	}
}

func TestWTOverlapsPersists(t *testing.T) {
	mk := func() *trace.Program {
		var b trace.Builder
		for i := 0; i < 40; i++ {
			b.Store(mem.Addr(i % 4 * 64)).Compute(5)
		}
		return singleTrace(&b)
	}
	sp := run(t, testConfig(SP), mk())
	wt := run(t, testConfig(WT), mk())
	np := run(t, testConfig(NP), mk())
	if wt.ExecCycles >= sp.ExecCycles {
		t.Fatalf("WT exec %d not faster than SP %d", wt.ExecCycles, sp.ExecCycles)
	}
	if wt.ExecCycles <= np.ExecCycles {
		t.Fatalf("WT exec %d not slower than NP %d", wt.ExecCycles, np.ExecCycles)
	}
	if wt.PersistedLines != 40 {
		t.Fatalf("WT persisted %d lines, want 40 (no coalescing)", wt.PersistedLines)
	}
}

func TestLBCoalescesStores(t *testing.T) {
	var b trace.Builder
	for i := 0; i < 10; i++ {
		b.Store(0) // same line, same epoch
	}
	b.Barrier()
	r := run(t, testConfig(LB), singleTrace(&b))
	if r.PersistedLines != 1 {
		t.Fatalf("persisted lines = %d, want 1 (coalesced)", r.PersistedLines)
	}
}

func TestBulkModeInsertsHardwareBarriers(t *testing.T) {
	cfg := testConfig(LB)
	cfg.BulkEpochStores = 5
	cfg.CheckpointLines = 0
	var b trace.Builder
	for i := 0; i < 20; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, cfg, singleTrace(&b))
	if got := r.Epochs.ByAdvance[epoch.HardwareAdvance]; got != 4 {
		t.Fatalf("hardware advances = %d, want 4 (20 stores / 5)", got)
	}
}

func TestBulkModeCheckpointWrites(t *testing.T) {
	cfg := testConfig(LB)
	cfg.BulkEpochStores = 10
	cfg.CheckpointLines = 4
	var b trace.Builder
	for i := 0; i < 10; i++ {
		b.Store(mem.Addr(i * 64))
	}
	r := run(t, cfg, singleTrace(&b))
	// 10 data lines + 4 checkpoint lines, all persisted by drain.
	if r.PersistedLines != 14 {
		t.Fatalf("persisted lines = %d, want 14 (10 data + 4 checkpoint)", r.PersistedLines)
	}
}

func TestLoggingWritesUndoEntries(t *testing.T) {
	cfg := testConfig(LB)
	cfg.Logging = true
	var b trace.Builder
	b.Store(0).Store(0).Store(64).Barrier().Store(0)
	r := run(t, cfg, singleTrace(&b))
	// First touches: line 0 in epoch 0, line 1 in epoch 0, line 0 in
	// epoch 1 -> 3 log writes (the second store to line 0 in epoch 0
	// coalesces).
	if r.LogWrites != 3 {
		t.Fatalf("log writes = %d, want 3", r.LogWrites)
	}
	if len(r.UndoLog) != 3 {
		t.Fatalf("durable undo entries = %d, want 3", len(r.UndoLog))
	}
	// The epoch-1 entry must record epoch 0's (persisted) version of
	// line 0 as the old value.
	var found bool
	for _, e := range r.UndoLog {
		if e.Line == 0 && e.EpochNum == 1 {
			found = true
			if e.Old == mem.NoVersion {
				t.Fatal("epoch-1 undo entry lost the old version")
			}
		}
	}
	if !found {
		t.Fatal("no undo entry for line 0 in epoch 1")
	}
}

func TestSharersInvalidatedOnRemoteStore(t *testing.T) {
	// T0 and T1 read the line; T2 stores it. Later reads by T0 must
	// miss (invalidation), not read a stale L1 copy.
	var t0, t1, t2 trace.Builder
	t0.Load(0).Compute(2000).Load(0)
	t1.Load(0)
	t2.Compute(500).Store(0)
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops(), t2.Ops()}}
	cfg := testConfig(LB)
	cfg.RecordOpTimes = true
	r := run(t, cfg, p)
	times := r.Cores[0].OpTimes
	reloadLat := times[2] - times[1] - 2000
	if reloadLat <= cfg.L1Latency {
		t.Fatalf("reload after remote store took %d cycles — stale L1 hit?", reloadLat)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *trace.Program {
		r := trace.NewRand(7)
		var tr [][]trace.Op
		for c := 0; c < 4; c++ {
			var b trace.Builder
			for i := 0; i < 200; i++ {
				a := mem.Addr(r.Intn(64) * 64)
				switch r.Intn(4) {
				case 0:
					b.Load(a)
				case 1, 2:
					b.Store(a)
				case 3:
					b.Barrier()
				}
			}
			tr = append(tr, b.Ops())
		}
		return &trace.Program{Traces: tr}
	}
	cfg := testConfig(LB)
	cfg.IDT = true
	cfg.PF = true
	r1 := run(t, cfg, mk())
	r2 := run(t, cfg, mk())
	if r1.ExecCycles != r2.ExecCycles || r1.Transactions != r2.Transactions ||
		r1.Conflicts != r2.Conflicts || r1.PersistedLines != r2.PersistedLines {
		t.Fatalf("non-deterministic: %+v vs %+v", r1.Conflicts, r2.Conflicts)
	}
}

func TestCrashMidRunExposesPartialImage(t *testing.T) {
	var b trace.Builder
	b.Store(0).Barrier().Compute(100000).Store(64).Barrier()
	cfg := testConfig(LB)
	cfg.PF = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(singleTrace(&b)); err != nil {
		t.Fatal(err)
	}
	r, err := m.RunUntil(50000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Finished {
		t.Fatal("run finished before the crash point")
	}
	// Epoch 0 (line 0) persisted proactively during the compute gap;
	// line 1 was never written before the crash.
	if _, ok := r.Image[0]; !ok {
		t.Fatal("line 0 not durable before crash despite PF")
	}
	if _, ok := r.Image[1]; ok {
		t.Fatal("line 1 durable before it was stored")
	}
}
