package machine

import (
	"fmt"

	"persistbarriers/internal/cache"
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/noc"
	"persistbarriers/internal/nvram"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// StallCause categorizes cycles a core spends blocked on persist ordering.
type StallCause int

const (
	// StallIntra: waiting for an intra-thread conflict flush (§3.2).
	StallIntra StallCause = iota
	// StallInter: waiting for an inter-thread conflict flush (§3.1).
	StallInter
	// StallEviction: waiting for an eviction-ordering flush.
	StallEviction
	// StallPressure: waiting at a barrier for the in-flight window.
	StallPressure
	// StallBarrier: waiting at an EP barrier for the epoch to persist.
	StallBarrier
	// StallPersistQueue: WT/SP waiting on the NVRAM write path.
	StallPersistQueue
	// StallWriteBuffer: waiting for a posted-store slot or a barrier's
	// write-buffer drain.
	StallWriteBuffer
	numStallCauses
)

// String implements fmt.Stringer.
func (s StallCause) String() string {
	switch s {
	case StallIntra:
		return "intra"
	case StallInter:
		return "inter"
	case StallEviction:
		return "eviction"
	case StallPressure:
		return "pressure"
	case StallBarrier:
		return "barrier"
	case StallPersistQueue:
		return "persist-queue"
	case StallWriteBuffer:
		return "write-buffer"
	default:
		return fmt.Sprintf("StallCause(%d)", int(s))
	}
}

// PersistEvent records one line version becoming durable (RecordOpTimes).
type PersistEvent struct {
	Line    mem.Line
	Version mem.Version
	Cycle   sim.Cycle
	Epoch   epoch.ID
}

// wtWrite is one queued naive-BSP persist.
type wtWrite struct {
	line mem.Line
	ver  mem.Version
}

// dirEntry tracks coherence for one line: the core holding it modified
// (owner) and the cores holding shared copies.
type dirEntry struct {
	owner   int
	sharers uint64
}

type coreCtx struct {
	id   int
	tile noc.Tile
	l1   *cache.Cache

	table *epoch.Table
	arb   *epoch.Arbiter

	ops []trace.Op
	pc  int
	// retired counts ops consumed and compacted out of the front of ops
	// (streaming mode reclaims the consumed prefix when the core parks, so
	// a long-lived feed does not grow the slice without bound). The core's
	// total retirement count is retired + pc.
	retired int
	// after is the hoisted retire continuation shared by every op this
	// core executes (allocating it per op would put one closure on the
	// heap per retired instruction).
	after func()
	txs   uint64
	done  bool

	// waiting marks a streaming-mode core parked with no ops left; Feed
	// (or CloseFeed) reschedules it.
	waiting bool
	// wake is the hoisted un-park continuation, shared by every Feed that
	// finds this core parked (per-Feed closures would allocate on the
	// group-commit hot path).
	wake func()

	// pendingTok maps a line to the token of the tagged store currently
	// in flight to it (see trace.Op.Token).
	pendingTok map[mem.Line]uint64

	// Bulk-mode BSP state.
	storesSinceBarrier int
	ckptBase           mem.Addr

	// WT model: the per-core in-order persist queue (rule S1), its
	// occupancy, and waiters blocked on a full queue.
	wtInFlight int
	wtQueue    []wtWrite
	wtWaiters  []func()

	// Posted-store write buffer (Table 1: 32 entries).
	wbOutstanding int
	wbFull        []func()
	wbDrain       func()

	stalls   [numStallCauses]sim.Cycle
	opTimes  []sim.Cycle
	execDone sim.Cycle
}

type bankCtx struct {
	id   int
	tile noc.Tile
	arr  *cache.Cache
}

// Machine is one assembled multicore simulation.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	mesh  *noc.Mesh
	mcs   *nvram.Bank
	cores []*coreCtx
	banks []*bankCtx

	// lines interns all per-line state (directory, transient signals,
	// latest version); see linetable.go.
	lines lineTable
	// trackBusy enables the busyInfo holder strings (Config.TrackBusyInfo
	// or a DebugLine trace); off by default so the access hot path never
	// formats a string nobody reads.
	trackBusy bool
	// avoidBusy is the victim filter llcInsert passes to VictimAvoiding,
	// built once so the hot path does not allocate a closure per insert.
	avoidBusy func(mem.Line) bool
	// lineBufs is a free-list of flush-set scratch buffers; flushes can
	// nest (a demanded flush inside flushEpoch), so buffers are acquired
	// and released stack-wise rather than shared.
	lineBufs [][]mem.Line

	vs      mem.VersionSource
	mcTiles []noc.Tile

	// Conflict event counters (events, as opposed to per-epoch causes).
	intraConflicts    uint64
	interConflicts    uint64
	evictionConflicts uint64
	idtFallbacks      uint64
	persistedLines    uint64
	logWrites         uint64

	persistLog []PersistEvent

	debugLog []string

	// Global-arbiter ablation state: one flush in flight machine-wide.
	globalFlushBusy    bool
	globalFlushWaiters []func()

	// Streaming-mode state (see stream.go): ops arrive at runtime via
	// Feed instead of a preloaded program.
	streaming  bool
	feedClosed bool

	// tokenVersions records the committed store version of every tagged
	// store (trace.Op.Token) the run has retired.
	tokenVersions map[uint64]mem.Version

	runningCores int
	execCycles   sim.Cycle
	drainCycles  sim.Cycle
	finished     bool
	deadlocked   bool
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	mesh, err := noc.New(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	mcs, err := nvram.NewBank(cfg.MemControllers, eng, cfg.NVRAM)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:           cfg,
		eng:           eng,
		mesh:          mesh,
		mcs:           mcs,
		trackBusy:     cfg.TrackBusyInfo || cfg.DebugLine != 0,
		tokenVersions: make(map[uint64]mem.Version),
	}
	m.avoidBusy = func(l mem.Line) bool {
		ls := m.lines.lookup(l)
		return ls != nil && ls.busy != nil
	}

	if cfg.Probe.Active() {
		mesh.AttachProbe(cfg.Probe, eng.Now)
		mcs.AttachProbe(cfg.Probe)
	}

	// Memory controllers sit at the mesh corners (Figure 2).
	corners := []int{
		0,
		cfg.Mesh.Cols - 1,
		(cfg.Mesh.Rows - 1) * cfg.Mesh.Cols,
		cfg.Mesh.Rows*cfg.Mesh.Cols - 1,
	}
	for i := 0; i < cfg.MemControllers; i++ {
		m.mcTiles = append(m.mcTiles, mesh.TileOf(corners[i%len(corners)]))
	}

	epochCfg := cfg.Epoch
	epochCfg.RecordHistory = cfg.RecordHistory
	epochCfg.Probe = cfg.Probe
	for i := 0; i < cfg.Cores; i++ {
		c := &coreCtx{
			id:   i,
			tile: mesh.TileOf(i % mesh.Tiles()),
			l1: cache.MustNew(cache.Config{
				Name:              fmt.Sprintf("L1-%d", i),
				Sets:              cfg.L1Sets,
				Ways:              cfg.L1Ways,
				PanicOnDirtyEvict: true,
			}),
			// Checkpoint regions live in a reserved high address range,
			// one rotating 8-epoch window per core.
			ckptBase: mem.Addr(1)<<40 + mem.Addr(i)*8*64*mem.Addr(maxInt(cfg.CheckpointLines, 1)),
		}
		if m.usesEpochs() {
			tbl, err := epoch.NewTable(i, epochCfg)
			if err != nil {
				return nil, err
			}
			c.table = tbl
			arb, err := epoch.NewArbiter(eng, tbl, &flushDriver{m: m, c: c})
			if err != nil {
				return nil, err
			}
			c.arb = arb
		}
		m.cores = append(m.cores, c)
	}
	if m.usesEpochs() {
		// Cross-core demand forwarding: a demanded flush pulls its IDT
		// source epochs along (§4.2 inform/dependence registers).
		for _, c := range m.cores {
			c.arb.SetDemandSource(func(src epoch.ID, cause epoch.FlushCause) {
				m.cores[src.Core].arb.DemandThrough(src.Num, cause)
			})
		}
	}
	shift := cfg.llcIndexShift()
	for i := 0; i < cfg.LLCBanks; i++ {
		m.banks = append(m.banks, &bankCtx{
			id:   i,
			tile: mesh.TileOf(i % mesh.Tiles()),
			arr: cache.MustNew(cache.Config{
				Name:       fmt.Sprintf("LLC-%d", i),
				Sets:       cfg.LLCSets,
				Ways:       cfg.LLCWays,
				IndexShift: shift,
			}),
		})
	}
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// usesEpochs reports whether the configured model tracks epochs.
func (m *Machine) usesEpochs() bool { return m.cfg.Model == EP || m.cfg.Model == LB }

// Engine exposes the simulation engine (for crash-injection harnesses).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// PersistedVersion returns the version of line durable in NVRAM as of the
// current instant (NoVersion if never persisted). A point query with no
// allocation — the live analogue of Result.Image for durability
// watermarks polled between streaming batches.
func (m *Machine) PersistedVersion(line mem.Line) mem.Version {
	return m.mcs.PersistedVersion(line)
}

// TokenVersion reports the version a tagged store committed, live (the
// streaming analogue of Result.TokenVersions). ok is false while the
// store has not yet retired.
func (m *Machine) TokenVersion(token uint64) (mem.Version, bool) {
	v, ok := m.tokenVersions[token]
	return v, ok
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) bank(line mem.Line) *bankCtx {
	return m.banks[int(uint64(line)%uint64(len(m.banks)))]
}

func (m *Machine) dirEntryFor(line mem.Line) *dirEntry {
	return &m.lines.get(line).dir
}

// latestVersion reports the newest committed version of line (0 if the
// line was never written).
func (m *Machine) latestVersion(line mem.Line) mem.Version {
	if ls := m.lines.lookup(line); ls != nil {
		return ls.latest
	}
	return 0
}

// acquireLineBuf returns an empty flush-set scratch buffer, reusing a
// released one when available.
func (m *Machine) acquireLineBuf() []mem.Line {
	if n := len(m.lineBufs); n > 0 {
		buf := m.lineBufs[n-1]
		m.lineBufs = m.lineBufs[:n-1]
		return buf[:0]
	}
	return nil
}

// releaseLineBuf returns a scratch buffer to the free-list.
func (m *Machine) releaseLineBuf(buf []mem.Line) {
	if cap(buf) > 0 {
		m.lineBufs = append(m.lineBufs, buf)
	}
}

// Load installs a program onto the cores. Traces beyond Config.Cores are
// rejected; missing traces leave cores idle.
func (m *Machine) Load(p *trace.Program) error {
	if p.Cores() > m.cfg.Cores {
		return fmt.Errorf("machine: program has %d traces for %d cores", p.Cores(), m.cfg.Cores)
	}
	for i, ops := range p.Traces {
		m.cores[i].ops = ops
	}
	return nil
}

// Run executes the loaded program to completion (including the final
// persist drain) and returns the result. A machine runs one program once.
func (m *Machine) Run() (*Result, error) {
	if err := m.start(); err != nil {
		return nil, err
	}
	m.eng.Run()
	if !m.finished {
		m.deadlocked = true
	}
	return m.result(), nil
}

// RunUntil executes the program until the given cycle (a crash instant)
// or completion, whichever is first, and returns the result. The durable
// state visible in the result is exactly what NVRAM held at that instant.
func (m *Machine) RunUntil(crash sim.Cycle) (*Result, error) {
	if err := m.start(); err != nil {
		return nil, err
	}
	m.eng.RunUntil(crash)
	return m.result(), nil
}

func (m *Machine) start() error {
	if m.runningCores != 0 || m.finished {
		return fmt.Errorf("machine: already run")
	}
	any := false
	for _, c := range m.cores {
		if len(c.ops) > 0 {
			any = true
			m.runningCores++
		}
	}
	if !any {
		return fmt.Errorf("machine: no program loaded")
	}
	for _, c := range m.cores {
		if len(c.ops) > 0 {
			c := c
			m.eng.At(0, func() { m.stepCore(c) })
		} else {
			c.done = true
		}
	}
	return nil
}

// coreFinished runs when a core retires its last op.
func (m *Machine) coreFinished(c *coreCtx) {
	if c.done {
		return
	}
	c.done = true
	c.execDone = m.eng.Now()
	m.runningCores--
	if m.runningCores > 0 {
		return
	}
	m.execCycles = m.eng.Now()
	m.drainAll(func() {
		m.drainCycles = m.eng.Now()
		m.finished = true
	})
}

// drainAll flushes every core's outstanding persistent state at end of run.
func (m *Machine) drainAll(done func()) {
	remaining := len(m.cores)
	arrive := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for _, c := range m.cores {
		m.drainCore(c, arrive)
	}
}

func (m *Machine) drainCore(c *coreCtx, done func()) {
	switch m.cfg.Model {
	case NP:
		done()
	case SP:
		done() // every store already persisted synchronously
	case WT:
		m.wtDrain(c, done)
	default:
		m.epochDrain(c, done)
	}
}

// wtDrain waits for the WT persist queue to empty.
func (m *Machine) wtDrain(c *coreCtx, done func()) {
	if c.wtInFlight == 0 {
		done()
		return
	}
	c.wtWaiters = append(c.wtWaiters, func() { m.wtDrain(c, done) })
}

// epochDrain closes the current epoch and flushes everything (EP/LB).
func (m *Machine) epochDrain(c *coreCtx, done func()) {
	tbl := c.table
	cur := tbl.Current()
	if len(cur.Pending) == 0 && tbl.InFlight() == 1 {
		done()
		return
	}
	if !tbl.CanAdvance() {
		oldest := tbl.Oldest()
		c.arb.DemandThrough(oldest.ID.Num, epoch.CausePressure)
		oldest.Persisted.Subscribe(func() { m.epochDrain(c, done) })
		return
	}
	closed := tbl.Current()
	tbl.Advance(m.eng.Now(), epoch.DrainAdvance)
	c.arb.DemandThrough(closed.ID.Num, epoch.CauseDrain)
	closed.Persisted.Subscribe(func() {
		// More epochs may remain (the freshly opened one is empty).
		if tbl.InFlight() == 1 {
			done()
			return
		}
		m.epochDrain(c, done)
	})
	c.arb.Kick()
}

// lineDurable records that a line version of an epoch reached NVRAM.
func (m *Machine) lineDurable(rec *epoch.Record, line mem.Line, ver mem.Version) {
	recID := epoch.None
	if rec != nil {
		recID = rec.ID
	}
	m.dbg(line, "lineDurable rec=%v ver=%d", recID, ver)
	m.persistedLines++
	if m.cfg.Probe.Active() {
		m.cfg.Probe.PersistAck(m.eng.Now(), line, recID.Core, recID.Num)
	}
	if m.cfg.RecordOpTimes {
		id := epoch.None
		if rec != nil {
			id = rec.ID
		}
		m.persistLog = append(m.persistLog, PersistEvent{Line: line, Version: ver, Cycle: m.eng.Now(), Epoch: id})
	}
	if rec == nil {
		return
	}
	rec.AcksInFlight--
	// A same-epoch store may have re-dirtied the line while this (older)
	// version's ack was in flight; the epoch still owes the newer version
	// to NVRAM, so keep the line pending. If a cached copy holds exactly
	// the acked version it is now durable: clean it so no stale dirty tag
	// outlives the epoch.
	newer := false
	if ent, ok := m.cores[rec.ID.Core].l1.Peek(line); ok && ent.Dirty && ent.Tag == rec.ID {
		if ent.Version > ver {
			newer = true
		} else if ent.Version == ver {
			m.cores[rec.ID.Core].l1.CleanLine(line)
		}
	}
	if ent, ok := m.bank(line).arr.Peek(line); ok && ent.Dirty && ent.Tag == rec.ID {
		if ent.Version > ver {
			newer = true
		} else if ent.Version == ver {
			m.bank(line).arr.CleanLine(line)
		}
	}
	if !newer {
		delete(rec.Pending, line)
	}
	m.cores[rec.ID.Core].arb.Kick()
}

// dbg appends a trace entry when line tracing is enabled for this line.
func (m *Machine) dbg(line mem.Line, format string, args ...any) {
	if m.cfg.DebugLine == 0 || mem.Line(m.cfg.DebugLine) != line {
		return
	}
	m.debugLog = append(m.debugLog,
		fmt.Sprintf("[%d] %v: %s", m.eng.Now(), line, fmt.Sprintf(format, args...)))
}

// DebugTrace returns the accumulated line trace (diagnostics).
func (m *Machine) DebugTrace() []string { return m.debugLog }

// stallUntil subscribes cont to sig, attributing the waited cycles to the
// given cause on core c.
func (m *Machine) stallUntil(c *coreCtx, sig *sim.Signal, cause StallCause, cont func()) {
	t0 := m.eng.Now()
	sig.Subscribe(func() {
		c.stalls[cause] += m.eng.Now() - t0
		cont()
	})
}
