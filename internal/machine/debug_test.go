package machine

import (
	"testing"
)

// TestLivenessDiagnostics is a bounded liveness regression with rich
// diagnostics: the tiny-cache random workload must finish well within the
// cycle budget; on failure it dumps per-core progress, epoch windows,
// pending-line locations, transient-state holders, and a per-line event
// trace — the tooling that located every protocol bug during bring-up.
func TestLivenessDiagnostics(t *testing.T) {
	p := randomProgram(21, 4, 200, true)
	cfg := testConfig(LB)
	cfg.L1Sets, cfg.L1Ways = 4, 2
	cfg.LLCSets, cfg.LLCWays = 8, 2
	cfg.IDT = true
	cfg.DebugLine = 0x505
	cfg.TrackBusyInfo = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.start(); err != nil {
		t.Fatal(err)
	}
	m.eng.RunUntil(3_000_000)
	if m.finished {
		return // healthy: the workload completed within the budget
	}
	t.Logf("stuck at cycle %d, runningCores=%d", m.eng.Now(), m.runningCores)
	for _, c := range m.cores {
		t.Logf("core %d: pc=%d/%d done=%v wtInFlight=%d", c.id, c.pc, len(c.ops), c.done, c.wtInFlight)
		if c.table != nil {
			top := c.table.Current().ID.Num
			var nums []uint64
			for k := uint64(0); k <= top && k < 12; k++ {
				nums = append(nums, top-k)
			}
			for _, n := range nums {
				if rec := c.table.Lookup(n); rec != nil {
					t.Logf("  epoch %v state=%v pending=%d logPending=%d flushDone=%v cause=%v deps=%d depsOK=%v",
						rec.ID, rec.State, len(rec.Pending), rec.LogPending, rec.FlushCompleted, rec.Cause, len(rec.Deps), rec.DepsPersisted())
					for _, dp := range rec.Deps {
						srcRec := m.cores[dp.Source.Core].table.Lookup(dp.Source.Num)
						st := "persisted/gone"
						if srcRec != nil {
							st = srcRec.State.String()
						}
						t.Logf("    dep on %v (%s)", dp.Source, st)
					}
				}
			}
			t.Logf("  inflight=%d canAdvance=%v", c.table.InFlight(), c.table.CanAdvance())
			for _, n := range nums {
				rec := c.table.Lookup(n)
				if rec == nil {
					continue
				}
				for line := range rec.Pending {
					t.Logf("  PENDING %v line %v:", rec.ID, line)
					for _, cc := range m.cores {
						if ent, ok := cc.l1.Peek(line); ok {
							t.Logf("    in L1-%d: dirty=%v tag=%v ver=%d", cc.id, ent.Dirty, ent.Tag, ent.Version)
						}
					}
					bb := m.bank(line)
					if ent, ok := bb.arr.Peek(line); ok {
						t.Logf("    in LLC-%d: dirty=%v tag=%v ver=%d", bb.id, ent.Dirty, ent.Tag, ent.Version)
					}
					if ls := m.lines.lookup(line); ls != nil {
						t.Logf("    dir owner=%d sharers=%b", ls.dir.owner, ls.dir.sharers)
					}
					t.Logf("    image=%d latest=%d", m.mcs.Image()[line], m.latestVersion(line))
				}
			}
		}
	}
	m.lines.forEach(func(ls *lineState) {
		if ls.busy != nil {
			t.Logf("busy line %v fired=%v holder=%s", ls.line, ls.busy.Fired(), ls.busyInfo)
		}
		if ls.mshr != nil {
			t.Logf("mshr line %v", ls.line)
		}
	})
	for _, l := range m.DebugTrace() {
		t.Log(l)
	}
	t.Fail()
}
