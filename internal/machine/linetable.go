package machine

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

// lineState consolidates the per-line machine state that used to live in
// five separate maps (dir, mshr, busy, latest, busyInfo): one probe on the
// access path now finds coherence, transient-state, and version bookkeeping
// together.
type lineState struct {
	line   mem.Line
	latest mem.Version // newest committed version (0: never written)
	dir    dirEntry
	mshr   *sim.Signal // in-flight LLC fill, nil when none
	busy   *sim.Signal // transient-state holder, nil when free
	// busyInfo describes the busy holder; maintained only when the
	// machine's trackBusy flag is set (Config.TrackBusyInfo or DebugLine).
	busyInfo string
}

const (
	lineSlabBits = 10
	lineSlabSize = 1 << lineSlabBits
	lineSlabMask = lineSlabSize - 1
)

// lineTable interns mem.Line values into slab-backed lineState records
// indexed by an open-addressed hash table. Lines are added on first touch
// and never removed (transient fields are nil'd instead), so the index is
// insert-only, and slab storage keeps every *lineState and *dirEntry stable
// across growth — continuations capture those pointers across events.
type lineTable struct {
	idx   []int32 // 1-based slot numbers into the slabs; 0 = empty
	mask  uint64
	count int
	slabs [][]lineState
}

// lineHash spreads line addresses (sequential in most traces) across the
// index via Fibonacci hashing.
func lineHash(l mem.Line) uint64 { return uint64(l) * 0x9E3779B97F4A7C15 }

func (t *lineTable) at(slot int32) *lineState {
	return &t.slabs[slot>>lineSlabBits][slot&lineSlabMask]
}

// lookup returns the state for line, or nil if the line was never touched.
func (t *lineTable) lookup(line mem.Line) *lineState {
	if t.count == 0 {
		return nil
	}
	i := lineHash(line) & t.mask
	for {
		slot := t.idx[i]
		if slot == 0 {
			return nil
		}
		if ls := t.at(slot - 1); ls.line == line {
			return ls
		}
		i = (i + 1) & t.mask
	}
}

// get interns line, creating its state on first touch.
func (t *lineTable) get(line mem.Line) *lineState {
	if t.idx == nil {
		t.rehash(1024)
	}
	i := lineHash(line) & t.mask
	for {
		slot := t.idx[i]
		if slot == 0 {
			break
		}
		if ls := t.at(slot - 1); ls.line == line {
			return ls
		}
		i = (i + 1) & t.mask
	}
	if 4*(t.count+1) > 3*len(t.idx) {
		t.rehash(2 * len(t.idx))
		i = lineHash(line) & t.mask
		for t.idx[i] != 0 {
			i = (i + 1) & t.mask
		}
	}
	slot := t.count
	if slot>>lineSlabBits == len(t.slabs) {
		t.slabs = append(t.slabs, make([]lineState, lineSlabSize))
	}
	ls := t.at(int32(slot))
	ls.line = line
	ls.dir.owner = -1
	t.count++
	t.idx[i] = int32(slot) + 1
	return ls
}

// rehash resizes the index to size buckets (a power of two) and reinserts
// every interned line.
func (t *lineTable) rehash(size int) {
	t.idx = make([]int32, size)
	t.mask = uint64(size - 1)
	for slot := 0; slot < t.count; slot++ {
		i := lineHash(t.at(int32(slot)).line) & t.mask
		for t.idx[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.idx[i] = int32(slot) + 1
	}
}

// forEach visits every interned line in first-touch order (deterministic,
// unlike map iteration).
func (t *lineTable) forEach(f func(*lineState)) {
	for slot := 0; slot < t.count; slot++ {
		f(t.at(int32(slot)))
	}
}
