package machine

import (
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/obs"
)

// resolveConflict enforces the epoch-conflict rules of Section 3 before a
// request may complete against a line carrying epoch tag `tag`. cont
// receives the inter-thread source epoch whose dependence must be attached
// to the requesting epoch at completion time (nil when the request may
// complete without tracking anything). Deferring the attachment to
// completion matters: a deadlock-avoidance split can advance the
// requester's epoch between resolution and commit, and the dependence
// belongs to the epoch that finally performs the access.
func (m *Machine) resolveConflict(c *coreCtx, kind mem.Kind, line mem.Line, tag epoch.ID, cont func(dep *epoch.Record)) {
	if !m.usesEpochs() || !tag.Valid() {
		cont(nil)
		return
	}
	if tag.Core == c.id {
		// Intra-thread: reads never conflict (program-order persist
		// tracking already covers them, §3.2); writes to a line of an
		// older unpersisted epoch must flush that epoch first.
		if kind == mem.Load {
			cont(nil)
			return
		}
		rec := c.table.Lookup(tag.Num)
		if rec == nil || rec == c.table.Current() {
			cont(nil)
			return
		}
		m.intraConflicts++
		rec.ConflictDemanded = true
		if m.cfg.Probe.Active() {
			m.cfg.Probe.Conflict(m.eng.Now(), obs.ConflictIntra, c.id, rec.ID.Core, rec.ID.Num, line, obs.ResolveOnline)
		}
		c.arb.DemandThrough(tag.Num, epoch.CauseIntra)
		m.stallUntil(c, &rec.Persisted, StallIntra, func() { cont(nil) })
		return
	}
	// Inter-thread conflict (§3.1): both loads and stores establish a
	// persist-ordering constraint on the source epoch.
	src := m.cores[tag.Core]
	rec := src.table.Lookup(tag.Num)
	if rec == nil {
		cont(nil)
		return
	}
	m.interConflicts++
	rec.ConflictDemanded = true
	if m.cfg.Probe.Active() {
		res := obs.ResolveOnline
		if m.cfg.IDT {
			res = obs.ResolveIDT
		}
		m.cfg.Probe.Conflict(m.eng.Now(), obs.ConflictInter, c.id, rec.ID.Core, rec.ID.Num, line, res)
	}
	if m.cfg.IDT {
		m.idtResolve(c, src, rec, cont)
		return
	}
	m.onlineInterResolve(c, src, rec, func() { cont(nil) })
}

// idtResolve handles an inter-thread conflict with the IDT optimization:
// the request completes immediately and the dependence is handed to the
// caller for attachment at completion. If the source epoch is still
// ongoing, the deadlock-avoidance split (§3.3) closes it first so the
// dependence can never become circular.
func (m *Machine) idtResolve(c *coreCtx, src *coreCtx, rec *epoch.Record, cont func(dep *epoch.Record)) {
	if rec.State == epoch.Persisted {
		cont(nil)
		return
	}
	if rec.State == epoch.Open {
		if !m.cfg.EnableSplit {
			// Without splitting, the only safe resolution is to wait
			// for the ongoing epoch — the configuration that deadlocks
			// on Figure 5(a)'s circular pattern.
			m.onlineInterResolve(c, src, rec, func() { cont(nil) })
			return
		}
		m.splitEpoch(src, func() { m.idtResolve(c, src, rec, cont) })
		return
	}
	cont(rec)
}

// attachDep registers the deferred IDT dependence on c's current epoch at
// request completion. When the dependence registers are full, it falls
// back to the online flush (as the hardware would) and retries; retry runs
// in the same event as the eventual completion, so attachment and the
// access commit stay atomic.
func (m *Machine) attachDep(c *coreCtx, rec *epoch.Record, cont func()) {
	if rec == nil || rec.State == epoch.Persisted {
		cont()
		return
	}
	if c.table.AddDependence(c.table.Current(), rec.ID, &rec.Persisted) {
		cont()
		return
	}
	m.idtFallbacks++
	if m.cfg.Probe.Active() {
		m.cfg.Probe.IDTFallback(m.eng.Now(), c.id, rec.ID.Core, rec.ID.Num)
	}
	src := m.cores[rec.ID.Core]
	src.arb.DemandThrough(rec.ID.Num, epoch.CauseInter)
	m.stallUntil(c, &rec.Persisted, StallInter, cont)
}

// onlineInterResolve is the LB behaviour: demand a flush of the source
// epoch chain and stall the request until it persists. If splitting is
// enabled and the source epoch is ongoing, the completed first half is
// flushed (the "[w]ithout IDT we would have had to flush the first part"
// case of §3.3).
func (m *Machine) onlineInterResolve(c *coreCtx, src *coreCtx, rec *epoch.Record, cont func()) {
	if rec.State == epoch.Persisted {
		cont()
		return
	}
	if rec.State == epoch.Open && m.cfg.EnableSplit {
		m.splitEpoch(src, func() { m.onlineInterResolve(c, src, rec, cont) })
		return
	}
	if m.cfg.RecordHistory {
		// The synchronous wait enforces source -> dependent ordering;
		// record it so the recovery checker can verify it held.
		c.table.Current().OnlineEdges = append(c.table.Current().OnlineEdges, rec.ID)
	}
	src.arb.DemandThrough(rec.ID.Num, epoch.CauseInter)
	m.stallUntil(c, &rec.Persisted, StallInter, cont)
}

// demandFlush demands a flush through rec and runs then when it persists,
// splitting the epoch first when it is still ongoing (otherwise the demand
// would wait on a barrier that may itself be blocked behind this request —
// the deadlock Section 3.3 avoids). Used by the eviction-ordering paths.
func (m *Machine) demandFlush(src *coreCtx, rec *epoch.Record, cause epoch.FlushCause, then func()) {
	if rec.State == epoch.Persisted {
		then()
		return
	}
	if rec.State == epoch.Open && m.cfg.EnableSplit {
		m.splitEpoch(src, func() { m.demandFlush(src, rec, cause, then) })
		return
	}
	src.arb.DemandThrough(rec.ID.Num, cause)
	rec.Persisted.Subscribe(then)
}

// splitEpoch closes src's ongoing epoch early (deadlock avoidance, §3.3).
// When src's in-flight window is exhausted, the split waits behind a
// pressure flush of src's oldest epoch.
func (m *Machine) splitEpoch(src *coreCtx, cont func()) {
	if !src.table.CanAdvance() {
		oldest := src.table.Oldest()
		src.arb.DemandThrough(oldest.ID.Num, epoch.CausePressure)
		oldest.Persisted.Subscribe(func() { m.splitEpoch(src, cont) })
		return
	}
	m.completeEpoch(src, epoch.SplitAdvance)
	cont()
}
