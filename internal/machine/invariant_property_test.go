package machine

import (
	"fmt"
	"testing"

	"persistbarriers/internal/recovery"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// propertyEngines is every barrier engine the machine implements, in the
// order DESIGN §5 lists the models: the three non-epoch baselines, the
// unbuffered epoch barrier, and the four LB variants.
var propertyEngines = []struct {
	name    string
	model   Model
	idt, pf bool
}{
	{"NP", NP, false, false},
	{"SP", SP, false, false},
	{"WT", WT, false, false},
	{"EP", EP, false, false},
	{"LB", LB, false, false},
	{"LB+IDT", LB, true, false},
	{"LB+PF", LB, false, true},
	{"LB++", LB, true, true},
}

// TestInvariantsUnderRandomInterleavings property-tests DESIGN §5
// invariants 1 and 2 across all 8 barrier engines: for randomized
// multi-threaded trace interleavings crashed at pseudorandom instants,
//
//  1. epoch order — no line of epoch E2 is durable before every line of
//     any happens-before predecessor E1 (recovery.CheckOrdering), and
//  2. crash prefix-closure — the epoch set the hardware declared
//     persisted is downward-closed under happens-before and fully
//     durable (recovery.CheckPersistedClosed).
//
// Engines without epoch machinery (NP, SP, WT) have empty histories, for
// which the checks hold vacuously; for them (and everyone else) we also
// assert the image never holds a version newer than the newest written —
// a persist can lag the store stream but never invent the future.
// 8 engines x 5 seeds x 5 crash instants = 200 table-driven cases.
func TestInvariantsUnderRandomInterleavings(t *testing.T) {
	const (
		seeds   = 5
		crashes = 5
	)
	for _, eng := range propertyEngines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			cfg := testConfig(eng.model)
			cfg.IDT, cfg.PF = eng.idt, eng.pf
			for seed := uint64(1); seed <= seeds; seed++ {
				p := randomProgram(seed*31+uint64(eng.model), 4, 100, true)
				// Crash instants are drawn per (engine, seed) so the suite
				// explores different cut points of different interleavings.
				r := trace.NewRand(seed ^ 0xabcdef<<uint(eng.model))
				for c := 0; c < crashes; c++ {
					crash := sim.Cycle(300 + r.Intn(60000))
					checkInvariants(t, cfg, p, crash, fmt.Sprintf("%s/seed=%d/crash=%d", eng.name, seed, crash))
				}
			}
		})
	}
}

// checkInvariants crashes one run and applies the §5 invariant checks.
func checkInvariants(t *testing.T, cfg Config, p *trace.Program, crash sim.Cycle, label string) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.RunUntil(crash)
	if err != nil {
		t.Fatal(err)
	}
	g := recovery.NewGraph(r.Histories)
	if err := recovery.CheckOrdering(g, r.Image); err != nil {
		t.Fatalf("%s: invariant 1 (epoch order): %v", label, err)
	}
	if err := recovery.CheckPersistedClosed(g, r.Image); err != nil {
		t.Fatalf("%s: invariant 2 (prefix closure): %v", label, err)
	}
	for line, durable := range r.Image {
		if latest, ok := r.Latest[line]; !ok || durable > latest {
			t.Fatalf("%s: line %v durable version %d exceeds latest written %d",
				label, line, durable, r.Latest[line])
		}
	}
}

// TestInvariantsBulkBSPPrefixAndAtomicity extends invariant 2 to the
// bulk-mode BSP engine with hardware undo logging: after rollback the
// recovered image must reflect whole epochs only. This is the rollback
// half of DESIGN §5 invariant 2, property-tested over random
// interleavings without programmer barriers (bulk mode inserts its own).
func TestInvariantsBulkBSPPrefixAndAtomicity(t *testing.T) {
	cfg := testConfig(LB)
	cfg.IDT, cfg.PF = true, true
	cfg.Logging = true
	cfg.BulkEpochStores = 16
	cfg.CheckpointLines = 2
	for seed := uint64(1); seed <= 4; seed++ {
		p := randomProgram(seed*137, 4, 120, false)
		r := trace.NewRand(seed * 9176)
		for c := 0; c < 3; c++ {
			crash := sim.Cycle(500 + r.Intn(40000))
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Load(p); err != nil {
				t.Fatal(err)
			}
			res, err := m.RunUntil(crash)
			if err != nil {
				t.Fatal(err)
			}
			if err := recovery.CheckAll(res.Histories, res.Image, res.UndoLog, true); err != nil {
				t.Fatalf("bulk/seed=%d/crash=%d: %v", seed, crash, err)
			}
		}
	}
}
