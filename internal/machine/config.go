// Package machine assembles the full simulated multicore of the paper's
// Figure 2: trace-driven cores with private L1 caches, a shared
// multi-banked LLC, per-core epoch arbiters, a 2D-mesh interconnect, and
// NVRAM behind multiple memory controllers. It implements the access
// paths where epoch conflicts are detected and resolved, the epoch-flush
// handshake of Section 4.1, and the persistency models of Section 5.
package machine

import (
	"fmt"

	"persistbarriers/internal/cache"
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/noc"
	"persistbarriers/internal/nvram"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
)

// Model selects the persistency machinery the machine enforces.
type Model uint8

const (
	// NP is the paper's No Persistency baseline: NVRAM is plain memory;
	// barriers are ignored and nothing is ordered.
	NP Model = iota
	// SP is strict persistency: every store synchronously persists
	// before the next operation may issue (rules S1+S2).
	SP
	// WT is the naive buffered-strict-persistency design the paper
	// measures at ~8x NP: visibility decoupled from persistence, but no
	// coalescing — every store enqueues an ordered NVRAM write through a
	// bounded per-core persist queue.
	WT
	// EP is (unbuffered) epoch persistency: a persist barrier stalls
	// until the epoch it closes has fully persisted (rules E1+E2).
	EP
	// LB is the lazy-barrier family (buffered epoch persistency).
	// Config.IDT and Config.PF select LB, LB+IDT, LB+PF, or LB++.
	LB
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case NP:
		return "NP"
	case SP:
		return "SP"
	case WT:
		return "WT"
	case EP:
		return "EP"
	case LB:
		return "LB"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Config describes one simulated machine.
type Config struct {
	Cores int

	// L1 geometry and latency (Table 1: 32 KB, 64 B lines, 4-way, 3 cyc).
	L1Sets    int
	L1Ways    int
	L1Latency sim.Cycle

	// LLC geometry and latency (Table 1: 1 MB x 32 banks, 16-way, 30 cyc).
	LLCBanks   int
	LLCSets    int
	LLCWays    int
	LLCLatency sim.Cycle

	// FlushIssue is the flush engine's per-line issue interval.
	FlushIssue sim.Cycle

	Mesh           noc.Config
	MemControllers int
	NVRAM          nvram.Config
	Epoch          epoch.Config

	// FlushMode selects clwb-like (non-invalidating) or clflush-like
	// (invalidating) persists.
	FlushMode cache.FlushMode

	Model Model
	// IDT enables inter-thread dependence tracking (§3.1); PF enables
	// proactive flushing (§3.2). Both together form LB++.
	IDT bool
	PF  bool
	// EnableSplit enables the deadlock-avoidance epoch split (§3.3).
	// Disabling it reproduces the Figure 5(a) deadlock.
	EnableSplit bool

	// GlobalArbiter serializes epoch flushes machine-wide through a
	// single arbiter instead of the paper's per-core arbiters — the
	// bottleneck §4.1 argues against; provided as an ablation.
	GlobalArbiter bool

	// BulkEpochStores > 0 runs the hardware persistence engine of §5.2:
	// barriers are inserted automatically every N dynamic stores
	// (programmer barriers in the trace are then ignored).
	BulkEpochStores int
	// Logging enables hardware undo logging (§5.2.1).
	Logging bool
	// CheckpointLines is the number of register-state lines saved to
	// persistent memory at each hardware epoch boundary.
	CheckpointLines int

	// WTQueue is the naive-BSP per-core persist queue depth.
	WTQueue int

	// WriteBuffer is the per-core posted-store window (Table 1: 32
	// entries): stores retire from the core after issue and complete in
	// the background; the core stalls when the buffer is full, and
	// persist barriers drain it. SP ignores it (rule S2 serializes).
	WriteBuffer int

	// RecordHistory retains epoch write sets for the recovery checker.
	RecordHistory bool
	// RecordOpTimes retains per-op completion cycles (timeline probes)
	// and per-line persist events. Only for small traces.
	RecordOpTimes bool

	// DebugLine, when non-zero, turns on event tracing for that line;
	// the trace is retrievable via Machine.DebugTrace. Diagnostic only.
	DebugLine uint64

	// TrackBusyInfo records a human-readable description of each line's
	// transient-state holder (who owns the busy signal and why) for
	// liveness diagnostics. Off by default: the strings are formatted on
	// every access and nothing reads them in normal runs. A non-zero
	// DebugLine implies the same tracking.
	TrackBusyInfo bool

	// Probe receives the observability event stream (epoch lifecycle,
	// conflicts, flush handshakes, NVRAM/NoC samples) from every layer
	// of the machine. Nil (the default) disables instrumentation; the
	// uninstrumented hot path then costs one branch per site.
	Probe *obs.Probe
}

// DefaultConfig returns the paper's Table 1 machine running the plain LB
// barrier under BEP.
func DefaultConfig() Config {
	return Config{
		Cores:           32,
		L1Sets:          128, // 32 KB / 64 B / 4 ways
		L1Ways:          4,
		L1Latency:       3,
		LLCBanks:        32,
		LLCSets:         1024, // 1 MB / 64 B / 16 ways per bank
		LLCWays:         16,
		LLCLatency:      30,
		FlushIssue:      4,
		Mesh:            noc.DefaultConfig(),
		MemControllers:  4,
		NVRAM:           nvram.DefaultConfig(),
		Epoch:           epoch.DefaultConfig(),
		FlushMode:       cache.NonInvalidating,
		Model:           LB,
		EnableSplit:     true,
		CheckpointLines: 4,
		WTQueue:         32,
		WriteBuffer:     32,
	}
}

// Validate checks structural consistency.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: Cores must be positive, got %d", c.Cores)
	}
	if c.Cores > c.Mesh.Rows*c.Mesh.Cols {
		return fmt.Errorf("machine: %d cores do not fit on a %dx%d mesh",
			c.Cores, c.Mesh.Rows, c.Mesh.Cols)
	}
	if c.LLCBanks <= 0 || c.LLCBanks > c.Mesh.Rows*c.Mesh.Cols {
		return fmt.Errorf("machine: LLCBanks %d must be in 1..%d", c.LLCBanks, c.Mesh.Rows*c.Mesh.Cols)
	}
	if c.L1Sets <= 0 || c.L1Ways <= 0 || c.LLCSets <= 0 || c.LLCWays <= 0 {
		return fmt.Errorf("machine: cache geometry must be positive")
	}
	if c.MemControllers <= 0 {
		return fmt.Errorf("machine: MemControllers must be positive, got %d", c.MemControllers)
	}
	if c.L1Latency == 0 || c.LLCLatency == 0 {
		return fmt.Errorf("machine: cache latencies must be nonzero")
	}
	if c.Model == WT && c.WTQueue <= 0 {
		return fmt.Errorf("machine: WT model requires a positive WTQueue, got %d", c.WTQueue)
	}
	if c.WriteBuffer < 0 {
		return fmt.Errorf("machine: WriteBuffer must be non-negative, got %d", c.WriteBuffer)
	}
	if c.BulkEpochStores < 0 {
		return fmt.Errorf("machine: BulkEpochStores must be non-negative, got %d", c.BulkEpochStores)
	}
	if c.BulkEpochStores > 0 && c.Model != LB {
		return fmt.Errorf("machine: bulk-mode BSP requires the LB model, got %v", c.Model)
	}
	if c.Logging && c.Model != LB {
		return fmt.Errorf("machine: undo logging requires the LB model, got %v", c.Model)
	}
	return nil
}

// llcIndexShift computes how many low line bits the bank interleave
// consumes, so bank-local set indexing skips them.
func (c *Config) llcIndexShift() uint {
	shift := uint(0)
	for b := c.LLCBanks; b > 1; b >>= 1 {
		shift++
	}
	return shift
}

// BarrierName renders the configured barrier variant the way the paper's
// figures label them.
func (c *Config) BarrierName() string {
	switch c.Model {
	case LB:
		switch {
		case c.IDT && c.PF:
			return "LB++"
		case c.IDT:
			return "LB+IDT"
		case c.PF:
			return "LB+PF"
		default:
			return "LB"
		}
	default:
		return c.Model.String()
	}
}
