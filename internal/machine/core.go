package machine

import (
	"fmt"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// stepCore retires the next op of core c; completion of async ops
// re-enters it.
func (m *Machine) stepCore(c *coreCtx) {
	if c.pc >= len(c.ops) {
		if m.streaming && !m.feedClosed {
			// Streaming mode: park until Feed appends more ops (or
			// CloseFeed retires the core).
			c.waiting = true
			return
		}
		// Wait for the write buffer to drain before retiring the core.
		m.drainWriteBuffer(c, func() { m.coreFinished(c) })
		return
	}
	op := c.ops[c.pc]
	c.pc++
	if c.after == nil {
		c.after = func() {
			if m.cfg.RecordOpTimes {
				c.opTimes = append(c.opTimes, m.eng.Now())
			}
			m.stepCore(c)
		}
	}
	after := c.after
	switch op.Kind {
	case trace.Compute:
		m.eng.After(op.Cycles, after)
	case trace.TxEnd:
		c.txs++
		if m.cfg.Probe.Active() {
			m.cfg.Probe.TxRetired(m.eng.Now(), c.id)
		}
		m.eng.After(0, after) // zero-time, but break recursion depth
	case trace.Barrier:
		m.barrier(c, after)
	case trace.Load:
		m.access(c, mem.Load, mem.LineOf(op.Addr), after)
	case trace.Store:
		if op.Token != 0 {
			line := mem.LineOf(op.Addr)
			if c.pendingTok == nil {
				c.pendingTok = make(map[mem.Line]uint64)
			}
			if prev, ok := c.pendingTok[line]; ok {
				// Silently overwriting would bind the new token to the
				// posted store's version and lose the old one, corrupting
				// Result.TokenVersions. Same-line tagged stores must be
				// separated by a barrier that drains the write buffer.
				panic(fmt.Sprintf(
					"machine: tagged store (token %d) to %v on core %d while token %d is still in flight to that line",
					op.Token, line, c.id, prev))
			}
			c.pendingTok[line] = op.Token
		}
		m.postStore(c, mem.LineOf(op.Addr), after)
	default:
		panic("machine: unknown op kind")
	}
}

// postStore issues a store through the write buffer (Table 1: 32 entries):
// the core moves on after the issue latency while the access completes in
// the background, stalling only when the buffer is full. Strict
// persistency bypasses the buffer — rule S2 forbids a store to issue
// before its predecessor persisted.
func (m *Machine) postStore(c *coreCtx, line mem.Line, cont func()) {
	if m.cfg.Model == SP || m.cfg.WriteBuffer == 0 {
		m.countBulkStore(c)
		m.access(c, mem.Store, line, func() { m.afterStore(c, cont) })
		return
	}
	if c.wbOutstanding >= m.cfg.WriteBuffer {
		t0 := m.eng.Now()
		c.wbFull = append(c.wbFull, func() {
			c.stalls[StallWriteBuffer] += m.eng.Now() - t0
			m.postStore(c, line, cont)
		})
		return
	}
	c.wbOutstanding++
	m.countBulkStore(c)
	m.access(c, mem.Store, line, func() {
		c.wbOutstanding--
		if len(c.wbFull) > 0 {
			w := c.wbFull[0]
			c.wbFull = c.wbFull[1:]
			w()
		}
		if c.wbOutstanding == 0 && c.wbDrain != nil {
			d := c.wbDrain
			c.wbDrain = nil
			d()
		}
	})
	m.eng.After(m.cfg.L1Latency, func() { m.afterStore(c, cont) })
}

// countBulkStore tracks the hardware persistence engine's store quota.
func (m *Machine) countBulkStore(c *coreCtx) {
	if m.cfg.BulkEpochStores > 0 {
		c.storesSinceBarrier++
	}
}

// afterStore applies bulk-mode hardware barrier insertion at issue order.
func (m *Machine) afterStore(c *coreCtx, cont func()) {
	if m.cfg.BulkEpochStores > 0 && c.storesSinceBarrier >= m.cfg.BulkEpochStores {
		c.storesSinceBarrier = 0
		m.hardwareBarrier(c, cont)
		return
	}
	cont()
}

// drainWriteBuffer runs cont once every posted store has completed. Only
// one drain waiter can exist per core (the core is serial).
func (m *Machine) drainWriteBuffer(c *coreCtx, cont func()) {
	if c.wbOutstanding == 0 {
		cont()
		return
	}
	t0 := m.eng.Now()
	c.wbDrain = func() {
		c.stalls[StallWriteBuffer] += m.eng.Now() - t0
		cont()
	}
}

// barrier handles a programmer-inserted persist barrier per the model. A
// barrier first drains the write buffer: an epoch may only complete when
// all its stores have completed (§4.1's EpochCMP precondition).
func (m *Machine) barrier(c *coreCtx, cont func()) {
	switch m.cfg.Model {
	case NP, SP, WT:
		// NP ignores barriers; SP and WT already order every store.
		cont()
	case EP:
		m.drainWriteBuffer(c, func() { m.epBarrier(c, cont) })
	case LB:
		if m.cfg.BulkEpochStores > 0 {
			// Bulk mode: hardware places barriers; programmer barriers
			// in the trace are transparent.
			cont()
			return
		}
		m.drainWriteBuffer(c, func() { m.lbBarrier(c, epoch.BarrierAdvance, cont) })
	}
}

// epBarrier closes the epoch and stalls until it has persisted (rule E2).
func (m *Machine) epBarrier(c *coreCtx, cont func()) {
	tbl := c.table
	if !tbl.CanAdvance() {
		// Cannot happen under EP (previous epoch persisted before the
		// barrier returned), but guard for structural safety.
		oldest := tbl.Oldest()
		c.arb.DemandThrough(oldest.ID.Num, epoch.CausePressure)
		m.stallUntil(c, &oldest.Persisted, StallPressure, func() { m.epBarrier(c, cont) })
		return
	}
	closed := tbl.Current()
	tbl.Advance(m.eng.Now(), epoch.BarrierAdvance)
	c.arb.DemandThrough(closed.ID.Num, epoch.CauseEager)
	m.stallUntil(c, &closed.Persisted, StallBarrier, cont)
}

// lbBarrier closes the epoch without waiting (buffered epoch persistency),
// stalling only when the in-flight window is exhausted.
func (m *Machine) lbBarrier(c *coreCtx, why epoch.AdvanceReason, cont func()) {
	tbl := c.table
	if !tbl.CanAdvance() {
		oldest := tbl.Oldest()
		c.arb.DemandThrough(oldest.ID.Num, epoch.CausePressure)
		m.stallUntil(c, &oldest.Persisted, StallPressure, func() { m.lbBarrier(c, why, cont) })
		return
	}
	m.completeEpoch(c, why)
	cont()
}

// completeEpoch closes c's current epoch (barrier, hardware quota, split,
// or drain), applies PF, and kicks the arbiter. It returns the closed
// record. The caller must have ensured CanAdvance.
func (m *Machine) completeEpoch(c *coreCtx, why epoch.AdvanceReason) *epoch.Record {
	closed := c.table.Current()
	c.table.Advance(m.eng.Now(), why)
	if m.cfg.PF {
		c.arb.RequestProactive(closed.ID.Num)
	}
	c.arb.Kick()
	return closed
}

// hardwareBarrier is the bulk-mode BSP epoch boundary: drain the write
// buffer, persist the processor state (register checkpoint) into the
// closing epoch, then close it like an LB barrier.
func (m *Machine) hardwareBarrier(c *coreCtx, cont func()) {
	m.drainWriteBuffer(c, func() {
		m.writeCheckpoint(c, 0, func() {
			m.lbBarrier(c, epoch.HardwareAdvance, cont)
		})
	})
}

// writeCheckpoint stores the i-th..last register-state lines of the
// current epoch's rotating checkpoint slot.
func (m *Machine) writeCheckpoint(c *coreCtx, i int, cont func()) {
	if i >= m.cfg.CheckpointLines {
		cont()
		return
	}
	slot := c.table.Current().ID.Num % 8
	addr := c.ckptBase + mem.Addr(slot)*mem.Addr(m.cfg.CheckpointLines)*64 + mem.Addr(i)*64
	m.access(c, mem.Store, mem.LineOf(addr), func() {
		m.writeCheckpoint(c, i+1, cont)
	})
}
