package machine

import (
	"persistbarriers/internal/cache"
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/sim"
)

// flushDriver adapts one core's epoch flushes onto the machine's banked
// handshake protocol.
type flushDriver struct {
	m *Machine
	c *coreCtx
}

// FlushEpoch implements epoch.FlushDriver.
func (d *flushDriver) FlushEpoch(rec *epoch.Record, done func()) {
	if !d.m.cfg.GlobalArbiter {
		d.m.flushEpoch(d.c, rec, done)
		return
	}
	// Ablation: a single machine-wide arbiter serializes all epoch
	// flushes; cores queue for the flush token.
	m := d.m
	start := func() {
		m.globalFlushBusy = true
		m.flushEpoch(d.c, rec, func() {
			m.globalFlushBusy = false
			if len(m.globalFlushWaiters) > 0 {
				next := m.globalFlushWaiters[0]
				m.globalFlushWaiters = m.globalFlushWaiters[1:]
				next()
			}
			done()
		})
	}
	if m.globalFlushBusy {
		m.globalFlushWaiters = append(m.globalFlushWaiters, start)
		return
	}
	start()
}

// flushEpoch runs the Section 4.1 multi-banked flush handshake:
//
//  1. the arbiter (at the L1) writes the epoch's L1-resident lines back to
//     their LLC banks and broadcasts FlushEpoch to every bank;
//  2. each bank drains its lines of the epoch to the memory controllers
//     and collects PersistAcks;
//  3. each bank sends a BankAck to the arbiter;
//  4. the arbiter broadcasts PersistCMP; done fires when it lands.
//
// Cache state moves at flush start (the simulator's state/timing split);
// latency is charged through the per-bank start times and per-line issue
// intervals.
func (m *Machine) flushEpoch(c *coreCtx, rec *epoch.Record, done func()) {
	id := rec.ID
	now := m.eng.Now()

	// Step 1a: L1 writebacks of the epoch's lines, pipelined one line per
	// FlushIssue interval; each bank may not start before its last line
	// arrives (the EpochCMP precondition of §4.1).
	bankReady := make([]sim.Cycle, len(m.banks))
	l1Lines := c.l1.AppendLinesOf(m.acquireLineBuf(), id)
	for i, line := range l1Lines {
		b := m.bank(line)
		ent, _ := c.l1.Peek(line)
		arrive := now + sim.Cycle(i)*m.cfg.FlushIssue + m.mesh.Latency(c.tile, b.tile, 64)
		if arrive > bankReady[b.id] {
			bankReady[b.id] = arrive
		}
		m.dbg(line, "flushEpoch l1-writeback epoch=%v ver=%d", id, ent.Version)
		if llcEnt, ok := b.arr.Peek(line); !ok {
			// The LLC no longer holds the line (evicted or clflushed):
			// flush it straight from the L1 to NVRAM instead of forcing
			// a re-insert that could displace another epoch's line.
			c.l1.CleanLine(line)
			m.nvramWriteFrom(c.tile, rec, line, ent.Version, nil)
			continue
		} else if llcEnt.Version < ent.Version {
			if llcEnt.Dirty && llcEnt.Tag.Valid() && llcEnt.Tag != id {
				if fr := m.lookupRec(llcEnt.Tag); fr != nil {
					// A foreign epoch's unpersisted version sits below
					// ours (its writeback landed after our conflict
					// check, outside the line's transaction window). It
					// must reach NVRAM first: defer this line — it stays
					// dirty in the L1 and pending, and the arbiter
					// re-flushes the epoch once the foreign epoch
					// persists (we demand it here).
					arb := c.arb
					m.demandFlush(m.cores[llcEnt.Tag.Core], fr, epoch.CauseEviction, func() { arb.Kick() })
					continue
				}
			}
			b.arr.Write(line, id, ent.Version)
		}
		c.l1.CleanLine(line)
	}
	m.releaseLineBuf(l1Lines)

	// Step 4 happens when every bank has acked.
	barrier := sim.NewBarrier(len(m.banks), func() {
		var worst sim.Cycle
		for _, b := range m.banks {
			if l := m.mesh.Latency(c.tile, b.tile, 0); l > worst {
				worst = l
			}
		}
		m.eng.After(worst, done) // PersistCMP broadcast
	})

	// Steps 1b-3 per bank.
	for _, b := range m.banks {
		b := b
		start := now + m.mesh.Latency(c.tile, b.tile, 0) // FlushEpoch message
		if bankReady[b.id] > start {
			start = bankReady[b.id]
		}
		m.eng.At(start, func() { m.bankFlush(c, b, rec, barrier) })
	}
}

// bankFlush drains one bank's lines of the epoch to NVRAM and sends the
// BankAck when its last PersistAck arrives.
func (m *Machine) bankFlush(c *coreCtx, b *bankCtx, rec *epoch.Record, barrier *sim.Barrier) {
	bankAck := func() {
		if m.cfg.Probe.Active() {
			m.cfg.Probe.BankAck(m.eng.Now(), b.id, rec.ID.Core, rec.ID.Num)
		}
		m.eng.After(m.mesh.Latency(b.tile, c.tile, 0), barrier.Arrive)
	}
	lines := b.arr.AppendLinesOf(m.acquireLineBuf(), rec.ID)
	if m.cfg.Probe.Active() {
		m.cfg.Probe.BankFlushStart(m.eng.Now(), b.id, rec.ID.Core, rec.ID.Num, len(lines))
	}
	if len(lines) == 0 {
		m.releaseLineBuf(lines)
		bankAck()
		return
	}
	remaining := len(lines)
	lineDone := func() {
		remaining--
		if remaining == 0 {
			bankAck()
		}
	}
	for i, line := range lines {
		line := line
		m.eng.After(sim.Cycle(i)*m.cfg.FlushIssue, func() {
			ent, ok := b.arr.Peek(line)
			if !ok || ent.Tag != rec.ID {
				m.dbg(line, "bankFlush skip epoch=%v ok=%v tag=%v", rec.ID, ok, ent.Tag)
				lineDone() // drained or evicted concurrently
				return
			}
			m.dbg(line, "bankFlush drain epoch=%v ver=%d", rec.ID, ent.Version)
			if m.cfg.FlushMode == cache.Invalidating {
				// clflush semantics: the flush evicts the line from the
				// whole hierarchy, destroying locality (§7 discussion).
				// Only clean private copies may be dropped — a dirty L1
				// copy holds a newer version from a later epoch and
				// remains tracked by its owner.
				b.arr.Invalidate(line)
				d := m.dirEntryFor(line)
				for _, o := range m.cores {
					if pe, ok := o.l1.Peek(line); ok && !pe.Dirty {
						o.l1.Invalidate(line)
						d.sharers &^= 1 << uint(o.id)
						if d.owner == o.id {
							d.owner = -1
						}
					}
				}
			} else {
				b.arr.CleanLine(line)
			}
			m.nvramWriteFrom(b.tile, rec, line, ent.Version, lineDone)
		})
	}
	// Each scheduled closure captured its own line copy; the snapshot
	// buffer itself is free to reuse.
	m.releaseLineBuf(lines)
}
