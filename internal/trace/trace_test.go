package trace

import (
	"testing"
	"testing/quick"

	"persistbarriers/internal/mem"
)

func TestBuilderSequence(t *testing.T) {
	var b Builder
	b.Load(64).Store(128).Compute(10).Barrier().TxEnd()
	ops := b.Ops()
	want := []OpKind{Load, Store, Compute, Barrier, TxEnd}
	if len(ops) != len(want) {
		t.Fatalf("len = %d, want %d", len(ops), len(want))
	}
	for i, k := range want {
		if ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if ops[0].Addr != 64 || ops[1].Addr != 128 || ops[2].Cycles != 10 {
		t.Errorf("operand values wrong: %+v", ops[:3])
	}
}

func TestComputeZeroIsElided(t *testing.T) {
	var b Builder
	b.Compute(0)
	if b.Len() != 0 {
		t.Fatal("zero-cycle compute was appended")
	}
}

func TestStoreRangeCoversEveryLine(t *testing.T) {
	var b Builder
	b.StoreRange(0, 512) // the paper's 512 B entry: 8 lines
	if b.Len() != 8 {
		t.Fatalf("512B store range = %d ops, want 8", b.Len())
	}
	for i, op := range b.Ops() {
		if op.Kind != Store {
			t.Fatalf("op %d kind = %v", i, op.Kind)
		}
		if mem.LineOf(op.Addr) != mem.Line(i) {
			t.Fatalf("op %d line = %v, want %d", i, mem.LineOf(op.Addr), i)
		}
	}
}

func TestLoadRangeUnaligned(t *testing.T) {
	var b Builder
	b.LoadRange(32, 512)
	if b.Len() != 9 {
		t.Fatalf("unaligned 512B load range = %d ops, want 9", b.Len())
	}
}

func TestProgramCounts(t *testing.T) {
	var a, b Builder
	a.Store(0).Store(64).Load(0).TxEnd()
	b.Store(128).Barrier()
	p := Program{Traces: [][]Op{a.Ops(), b.Ops()}}
	if p.Cores() != 2 {
		t.Errorf("Cores = %d", p.Cores())
	}
	if p.Ops() != 6 {
		t.Errorf("Ops = %d, want 6", p.Ops())
	}
	if p.Stores() != 3 {
		t.Errorf("Stores = %d, want 3", p.Stores())
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{Compute, Load, Store, Barrier, TxEnd, OpKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", uint8(k))
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}
