// Package trace defines the per-core instruction streams the simulated
// machine executes: loads, stores, compute delays, persist barriers, and
// transaction markers, plus builders and a deterministic RNG for workload
// generators.
package trace

import (
	"fmt"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

// OpKind enumerates trace operations.
type OpKind uint8

const (
	// Compute burns cycles without touching memory.
	Compute OpKind = iota
	// Load reads one cache line.
	Load
	// Store writes one cache line.
	Store
	// Barrier is a programmer-inserted persist barrier (BEP). Machines
	// running bulk-mode BSP or NP ignore it per their model.
	Barrier
	// TxEnd marks the completion of one benchmark transaction; the
	// harness derives transaction throughput from these.
	TxEnd
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	case Barrier:
		return "barrier"
	case TxEnd:
		return "txend"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one trace operation. Addr is used by Load/Store; Cycles by Compute.
// Token, when nonzero on a Store, asks the machine to record the store
// version the write eventually commits with (Result.TokenVersions), so an
// application layer can correlate its logical writes with the durable
// image. At most one tagged store per (core, line) may be in flight at a
// time — callers must separate same-line tagged stores with a Barrier.
type Op struct {
	Kind   OpKind
	Addr   mem.Addr
	Cycles sim.Cycle
	Token  uint64
}

// Program is one trace per core.
type Program struct {
	Traces [][]Op
}

// Cores reports the number of per-core traces.
func (p *Program) Cores() int { return len(p.Traces) }

// Ops reports the total operation count across all traces.
func (p *Program) Ops() int {
	n := 0
	for _, t := range p.Traces {
		n += len(t)
	}
	return n
}

// Stores reports the total store count across all traces.
func (p *Program) Stores() int {
	n := 0
	for _, t := range p.Traces {
		for _, op := range t {
			if op.Kind == Store {
				n++
			}
		}
	}
	return n
}

// Builder accumulates one core's trace.
type Builder struct {
	ops []Op
}

// Load appends a line read of addr.
func (b *Builder) Load(addr mem.Addr) *Builder {
	b.ops = append(b.ops, Op{Kind: Load, Addr: addr})
	return b
}

// Store appends a line write of addr.
func (b *Builder) Store(addr mem.Addr) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, Addr: addr})
	return b
}

// StoreTagged appends a line write of addr carrying a version-tracking
// token (see Op.Token).
func (b *Builder) StoreTagged(addr mem.Addr, token uint64) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, Addr: addr, Token: token})
	return b
}

// StoreRange appends a store to every line of the byte range [addr,
// addr+size) — how a 512-byte micro-benchmark entry write appears to the
// memory system.
func (b *Builder) StoreRange(addr mem.Addr, size uint64) *Builder {
	for _, l := range mem.LineRange(addr, size) {
		b.Store(l.Addr())
	}
	return b
}

// LoadRange appends a load of every line of the byte range.
func (b *Builder) LoadRange(addr mem.Addr, size uint64) *Builder {
	for _, l := range mem.LineRange(addr, size) {
		b.Load(l.Addr())
	}
	return b
}

// Compute appends a pure-compute delay.
func (b *Builder) Compute(cycles sim.Cycle) *Builder {
	if cycles > 0 {
		b.ops = append(b.ops, Op{Kind: Compute, Cycles: cycles})
	}
	return b
}

// Barrier appends a persist barrier.
func (b *Builder) Barrier() *Builder {
	b.ops = append(b.ops, Op{Kind: Barrier})
	return b
}

// TxEnd appends a transaction-completion marker.
func (b *Builder) TxEnd() *Builder {
	b.ops = append(b.ops, Op{Kind: TxEnd})
	return b
}

// Ops returns the accumulated trace.
func (b *Builder) Ops() []Op { return b.ops }

// Reset empties the builder while keeping its backing buffer, so a hot
// path can translate many requests through one builder without
// reallocating. The slice returned by a prior Ops call is invalidated —
// only callers that copy (or fully consume) the ops before the next
// Reset may use it.
func (b *Builder) Reset() *Builder {
	b.ops = b.ops[:0]
	return b
}

// Len reports the number of accumulated ops.
func (b *Builder) Len() int { return len(b.ops) }

// Rand is a small deterministic PRNG (xorshift64*) so workload generation
// never depends on global math/rand state.
type Rand struct{ state uint64 }

// NewRand seeds a generator; a zero seed is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("trace: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
