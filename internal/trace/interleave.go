package trace

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

// Interleave decodes an arbitrary byte stream into a multi-core Program,
// distributing operations across the given number of per-core traces. It
// is total: every input — including adversarial or malformed ones — maps
// to some valid op sequence, which makes it the machine's fuzzing front
// end (any byte soup the fuzzer invents becomes a program the simulator
// must survive) and a compact way to replay externally captured op
// streams.
//
// Encoding: bytes are consumed in pairs (a trailing odd byte is
// ignored). In each pair (sel, arg):
//
//   - core   = (sel >> 3) mod cores — which trace receives the op
//   - opcode = sel & 7:
//     0,1  store to a shared hot line   (arg mod 32, 64B apart)
//     2    load of a shared hot line    (arg mod 32)
//     3    store to a core-private line (arg mod 16)
//     4    load of a core-private line  (arg mod 16)
//     5    compute burst of arg cycles
//     6    persist barrier
//     7    transaction end marker
//
// The shared region overlaps across cores (inter-thread conflicts); the
// private regions are staggered per core (intra-thread conflicts on
// reuse). cores < 1 is clamped to 1.
func Interleave(cores int, data []byte) *Program {
	if cores < 1 {
		cores = 1
	}
	builders := make([]Builder, cores)
	for i := 0; i+1 < len(data); i += 2 {
		sel, arg := data[i], data[i+1]
		b := &builders[int(sel>>3)%cores]
		core := int(sel>>3) % cores
		privBase := mem.Addr(0x100000 + core*0x4000)
		switch sel & 7 {
		case 0, 1:
			b.Store(mem.Addr(int(arg%32) * 64))
		case 2:
			b.Load(mem.Addr(int(arg%32) * 64))
		case 3:
			b.Store(privBase + mem.Addr(int(arg%16)*64))
		case 4:
			b.Load(privBase + mem.Addr(int(arg%16)*64))
		case 5:
			b.Compute(sim.Cycle(arg))
		case 6:
			b.Barrier()
		case 7:
			b.TxEnd()
		}
	}
	traces := make([][]Op, cores)
	for i := range builders {
		traces[i] = builders[i].Ops()
	}
	return &Program{Traces: traces}
}
