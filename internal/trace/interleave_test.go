package trace

import (
	"testing"
)

func TestInterleaveDeterministicAndTotal(t *testing.T) {
	data := []byte{0x00, 5, 0x0e, 200, 0x08, 5, 0x06, 0, 0x1f, 0, 0xff, 0xff, 0x03}
	p1 := Interleave(2, data)
	p2 := Interleave(2, data)
	if p1.Cores() != 2 || p2.Cores() != 2 {
		t.Fatalf("cores = %d/%d, want 2", p1.Cores(), p2.Cores())
	}
	if p1.Ops() != p2.Ops() {
		t.Fatal("Interleave not deterministic")
	}
	// 13 bytes = 6 pairs (trailing byte dropped), every pair decodes.
	if p1.Ops() != 6 {
		t.Fatalf("ops = %d, want 6", p1.Ops())
	}
}

func TestInterleaveClampsCores(t *testing.T) {
	p := Interleave(0, []byte{0x00, 1})
	if p.Cores() != 1 || p.Ops() != 1 {
		t.Fatalf("cores=%d ops=%d, want 1/1", p.Cores(), p.Ops())
	}
	if Interleave(3, nil).Cores() != 3 {
		t.Fatal("empty input must still produce per-core traces")
	}
}

func TestInterleaveSpreadsAcrossCores(t *testing.T) {
	// Selector high bits walk the cores; each op must land on its core.
	data := []byte{
		0 << 3, 1, // core 0: shared store
		1 << 3, 1, // core 1: shared store
		2 << 3, 1, // core 2
		3 << 3, 1, // core 3
	}
	p := Interleave(4, data)
	for c := 0; c < 4; c++ {
		if len(p.Traces[c]) != 1 {
			t.Fatalf("core %d got %d ops, want 1", c, len(p.Traces[c]))
		}
	}
	// Private addresses are disjoint across cores.
	a0 := Interleave(4, []byte{0<<3 | 3, 0}).Traces[0][0].Addr
	a1 := Interleave(4, []byte{1<<3 | 3, 0}).Traces[1][0].Addr
	if a0 == a1 {
		t.Fatalf("private bases collide: %#x", uint64(a0))
	}
}
