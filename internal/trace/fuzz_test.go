package trace_test

import (
	"testing"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/trace"
)

// FuzzTraceInterleaver feeds arbitrary byte streams through
// trace.Interleave into a small simulated machine and asserts the three
// properties malformed op sequences must never break:
//
//  1. the machine does not panic,
//  2. it terminates — circular epoch dependences with splitting disabled
//     must trip the deadlock detector (Result.Deadlocked), not hang, and
//  3. whatever instant the run ends at, the durable image satisfies the
//     DESIGN §5 ordering and prefix-closure invariants.
//
// The first byte picks the machine shape (core count, IDT/PF, whether
// the §3.3 deadlock-avoidance split is enabled); the rest is the op
// stream. Run the smoke in CI with -fuzztime 10s; run longer locally to
// dig for protocol corners.
func FuzzTraceInterleaver(f *testing.F) {
	f.Add([]byte{})
	// Barrier-heavy two-core ping-pong.
	f.Add([]byte{0x01, 0x00, 5, 0x06, 0, 0x08, 5, 0x0e, 0, 0x02, 5, 0x0a, 5})
	// The Figure 5(a) shape: cross-thread conflicts inside ongoing epochs
	// (first byte selects split-disabled, exercising deadlock detection).
	f.Add([]byte{0x20, 0x00, 0, 0x08, 1, 0x05, 50, 0x0d, 50, 0x02, 1, 0x0a, 0, 0x00, 2, 0x08, 3})
	// Compute bursts, transaction markers, private-line reuse.
	f.Add([]byte{0x13, 0x05, 200, 0x03, 4, 0x03, 4, 0x07, 0, 0x0c, 4, 0x0f, 0, 0x06, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048] // bound per-exec simulation cost
		}
		var shape byte
		if len(data) > 0 {
			shape, data = data[0], data[1:]
		}
		cores := 1 + int(shape&0x03)
		cfg := machine.DefaultConfig()
		cfg.Cores = cores
		cfg.LLCBanks = 4
		cfg.LLCSets = 64
		cfg.L1Sets = 16
		cfg.Model = machine.LB
		cfg.IDT = shape&0x04 != 0
		cfg.PF = shape&0x08 != 0
		cfg.EnableSplit = shape&0x20 == 0
		cfg.RecordHistory = true

		p := trace.Interleave(cores, data)
		if p.Ops() == 0 {
			return // machine rejects empty programs by design
		}
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v", err)
		}
		if err := m.Load(p); err != nil {
			t.Fatalf("interleaved program rejected: %v", err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if !r.Finished && !r.Deadlocked {
			t.Fatal("run neither finished nor flagged deadlocked")
		}
		if err := recovery.CheckAll(r.Histories, r.Image, nil, false); err != nil {
			t.Fatalf("invariants violated (deadlocked=%v): %v", r.Deadlocked, err)
		}
	})
}
