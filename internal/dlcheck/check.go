// Crash-image decision procedure: given the per-bucket publish order and
// durability flags the engine derives from a machine result, decide
// durable linearizability against everything the tracker observed online.
package dlcheck

import (
	"errors"
	"fmt"
)

// Publish is one retired publish as the crash image orders it: the
// engine mutation-record index, the bucket it published to, and whether
// its head-pointer store reached NVRAM.
type Publish struct {
	Rec     int
	Bucket  int
	Durable bool
}

// Image is the checker's view of one crash (or clean-drain) image: every
// retired publish in global commit (version) order. Publishes the
// tracker observed but the image does not list never retired before the
// crash and are treated as lost.
type Image struct {
	Order []Publish
}

// Clone deep-copies the image (mutation tests corrupt copies).
func (img *Image) Clone() *Image {
	return &Image{Order: append([]Publish(nil), img.Order...)}
}

// Kind classifies a violation.
type Kind uint8

const (
	// KindAckedLost: an op acked durable is not recovered.
	KindAckedLost Kind = iota
	// KindHBOrder: a recovered publish happens-after a lost one.
	KindHBOrder
	// KindReadContradiction: the recovered state contradicts a value a
	// client already observed (e.g. a deleted key resurrected, or a read
	// write lost while later effects survived).
	KindReadContradiction
	// KindUnknownPublish: the image names a publish the tracker never
	// observed (a corrupt or mismatched image).
	KindUnknownPublish
)

// Violation is one durable-linearizability violation with enough
// identity for a fuzzer to minimize against: the offending publish
// record, the session involved, and the lost record it conflicts with.
type Violation struct {
	Kind Kind
	// Sess is the session whose order or observation is violated.
	Sess int
	// Rec is the durable (or acked) publish record at fault.
	Rec int
	// Other is the lost record Rec conflicts with (-1 when not
	// applicable).
	Other int
	// Key is the contradicted key (read contradictions only).
	Key string
	// Msg is the full human-readable diagnostic.
	Msg string
}

// Error implements error.
func (v *Violation) Error() string { return v.Msg }

// Verdict is the checker's decision over one image.
type Verdict struct {
	// Ops, Reads, Publishes count what the tracker observed online.
	Ops, Reads, Publishes int
	// Durable counts recovered publishes; Acked the durably-acked prefix.
	Durable, Acked int
	// Violations is every violation found, in deterministic order.
	Violations []*Violation
}

// OK reports whether the image is durably linearizable.
func (v *Verdict) OK() bool { return len(v.Violations) == 0 }

// Err returns nil when OK, else every violation joined.
func (v *Verdict) Err() error {
	if v.OK() {
		return nil
	}
	errs := make([]error, len(v.Violations))
	for i, viol := range v.Violations {
		errs[i] = viol
	}
	return errors.Join(errs...)
}

// String renders the greppable verdict line body.
func (v *Verdict) String() string {
	if v.OK() {
		return fmt.Sprintf("OK (%d ops, %d publishes, %d durable, %d reads, %d acked)",
			v.Ops, v.Publishes, v.Durable, v.Reads, v.Acked)
	}
	return fmt.Sprintf("FAILED (%d violations; first: %s)", len(v.Violations), v.Violations[0].Msg)
}

// Check decides durable linearizability of the image. It runs entirely
// at check time: per-session lost thresholds come from the first
// non-durable publish in program order, full clocks are reconstructed
// from the adaptive timestamps, publish-order edges are folded in by
// joining a running clock per bucket along commit order, and the three
// conditions (acked⇒recovered, reads uncontradicted, happens-before
// closure) are checked against every durable publish. All violations
// are collected — not just the first — so counterexample minimization
// sees the complete diagnosis.
func (t *Tracker) Check(img *Image) *Verdict {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	v := &Verdict{Ops: t.ops, Reads: t.reads, Acked: t.acked}
	nSess := len(t.sess)

	// Durability per observed record; image entries naming unknown
	// records are themselves violations.
	known := make(map[int32]*pubOwner)
	owners := make([]pubOwner, 0, 64)
	for sid, s := range t.sess {
		v.Publishes += len(s.pubs)
		for i := range s.pubs {
			owners = append(owners, pubOwner{sess: int32(sid), pub: &s.pubs[i]})
		}
	}
	for i := range owners {
		known[owners[i].pub.rec] = &owners[i]
	}
	durable := make(map[int32]bool, len(img.Order))
	for _, p := range img.Order {
		rec := int32(p.Rec)
		if known[rec] == nil {
			v.Violations = append(v.Violations, &Violation{
				Kind: KindUnknownPublish, Sess: -1, Rec: p.Rec, Other: -1,
				Msg: fmt.Sprintf("dlcheck: image orders publish rec %d the tracker never observed", p.Rec),
			})
			continue
		}
		if p.Durable {
			durable[rec] = true
			v.Durable++
		}
	}

	// Per-session lost threshold: the clock position of the first
	// publish (in program order) that is not durable. Everything at or
	// beyond it is lost; a durable publish whose clock includes such a
	// position happens-after a lost effect.
	lostAt := make([]int32, nSess)
	lostRec := make([]int32, nSess)
	for sid, s := range t.sess {
		lostAt[sid], lostRec[sid] = never, -1
		for _, p := range s.pubs {
			if !durable[p.rec] {
				lostAt[sid], lostRec[sid] = p.own, p.rec
				break
			}
		}
	}

	// Walk the commit order once, reconstructing each publish's full
	// clock joined with its bucket's running clock (the publish-order
	// edges), and check closure for the durable ones. maxDur[s] tracks
	// the highest component of s any durable publish carries, with a
	// witness for read diagnostics.
	bucketVC := make(map[int][]int32)
	maxDur := make([]int32, nSess)
	maxDurWitness := make([]int32, nSess)
	for i := range maxDurWitness {
		maxDurWitness[i] = -1
	}
	for _, p := range img.Order {
		owner := known[int32(p.Rec)]
		if owner == nil {
			continue
		}
		full := t.vcAt(owner.pub.own, owner.pub.snap, owner.sess, bucketVC[p.Bucket])
		bucketVC[p.Bucket] = full
		if !p.Durable {
			continue
		}
		for sid := 0; sid < nSess && sid < len(full); sid++ {
			if full[sid] >= lostAt[sid] {
				v.Violations = append(v.Violations, &Violation{
					Kind: KindHBOrder, Sess: sid, Rec: p.Rec, Other: int(lostRec[sid]),
					Msg: fmt.Sprintf(
						"dlcheck: recovered publish rec %d (session %d) happens-after lost publish rec %d of session %d",
						p.Rec, owner.sess, lostRec[sid], sid),
				})
			}
			if full[sid] > maxDur[sid] {
				maxDur[sid] = full[sid]
				maxDurWitness[sid] = int32(p.Rec)
			}
		}
	}

	// Acked ⇒ recovered: the durably-acked record prefix must be in the
	// image.
	for sid, s := range t.sess {
		for _, p := range s.pubs {
			if int(p.rec) < t.acked && !durable[p.rec] {
				v.Violations = append(v.Violations, &Violation{
					Kind: KindAckedLost, Sess: sid, Rec: int(p.rec), Other: -1,
					Msg: fmt.Sprintf(
						"dlcheck: publish rec %d (session %d) was acked durable but is not recovered",
						p.rec, sid),
				})
			}
		}
	}

	// Reads: a client observed write W; if W is lost, nothing that
	// happens-after the read may be recovered. maxDur[s] > idx means
	// some durable publish carries the reader's state past the read.
	for sid, s := range t.sess {
		for _, r := range s.reads {
			if !r.hasW || durable[r.w.rec] {
				continue
			}
			if sid < len(maxDur) && maxDur[sid] > r.idx {
				v.Violations = append(v.Violations, &Violation{
					Kind: KindReadContradiction, Sess: sid, Rec: int(maxDurWitness[sid]),
					Other: int(r.w.rec), Key: r.key,
					Msg: fmt.Sprintf(
						"dlcheck: session %d observed write rec %d of key %q, which is not recovered, but publish rec %d that happens-after the read is",
						sid, r.w.rec, r.key, maxDurWitness[sid]),
				})
			}
		}
	}
	return v
}

// pubOwner pairs a publish with its owning session for check-time
// lookups.
type pubOwner struct {
	sess int32
	pub  *pubRef
}
