package dlcheck

import (
	"strings"
	"testing"
)

// TestDisabledZeroAlloc pins the engine-facing contract: a nil tracker's
// observation path costs zero allocations per op (the -check-off hot
// path).
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracker
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ObserveRead(1, "k001", 0)
		tr.ObserveWrite(1, 2, "k001")
		tr.AckDurable(3)
	})
	if allocs != 0 {
		t.Fatalf("disabled observation path allocates %v per op, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracker reports Enabled")
	}
	if tr.Check(&Image{}) != nil {
		t.Fatal("nil tracker Check returned a verdict")
	}
	if tr.Snapshots() != 0 || tr.Ops() != 0 {
		t.Fatal("nil tracker reports nonzero counters")
	}
}

// TestAdaptiveSnapshots pins the FastTrack-style representation switch:
// same-session runs materialize no vector-clock snapshots; a snapshot is
// taken only at the first write after a cross-session join raised a
// foreign component.
func TestAdaptiveSnapshots(t *testing.T) {
	tr := New()
	// A long single-session run: reads observe the session's own writes.
	for i := 0; i < 100; i++ {
		tr.ObserveWrite(0, i, "k000")
		tr.ObserveRead(0, "k000", i)
	}
	if got := tr.Snapshots(); got != 0 {
		t.Fatalf("single-session run took %d snapshots, want 0", got)
	}

	// Session 1 observes session 0's write: the join dirties its clock,
	// and exactly one snapshot is taken at its next write.
	tr.ObserveRead(1, "k000", 99)
	tr.ObserveWrite(1, 100, "k777")
	if got := tr.Snapshots(); got != 1 {
		t.Fatalf("after one cross-session join: %d snapshots, want 1", got)
	}

	// Further same-session writes and re-reads of the already-joined
	// write stay in the epoch representation.
	tr.ObserveRead(1, "k000", 99)
	for i := 101; i < 110; i++ {
		tr.ObserveWrite(1, i, "k777")
	}
	if got := tr.Snapshots(); got != 1 {
		t.Fatalf("no new joins but %d snapshots, want 1", got)
	}

	// A join in the other direction costs exactly one more.
	tr.ObserveRead(0, "k777", 109)
	tr.ObserveWrite(0, 110, "k000")
	if got := tr.Snapshots(); got != 2 {
		t.Fatalf("after reverse join: %d snapshots, want 2", got)
	}
}

func kinds(v *Verdict) map[Kind]int {
	out := make(map[Kind]int)
	for _, viol := range v.Violations {
		out[viol.Kind]++
	}
	return out
}

// TestCheckOK: a cross-session chain where everything observed is
// durable is accepted.
func TestCheckOK(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001") // W0
	tr.ObserveRead(1, "k001", 0)  // s1 observes W0
	tr.ObserveWrite(1, 1, "k002") // W1
	tr.AckDurable(2)
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 0, Durable: true},
		{Rec: 1, Bucket: 1, Durable: true},
	}})
	if !v.OK() {
		t.Fatalf("expected OK, got %s", v)
	}
	if v.Durable != 2 || v.Publishes != 2 || v.Reads != 1 || v.Acked != 2 {
		t.Fatalf("verdict counters wrong: %+v", v)
	}
	if v.Err() != nil {
		t.Fatalf("OK verdict returned error %v", v.Err())
	}
	if !strings.HasPrefix(v.String(), "OK (") {
		t.Fatalf("verdict string %q", v)
	}
}

// TestSessionPrefixHBOrder: a session's later publish durable while its
// earlier one is lost violates happens-before closure (program order).
func TestSessionPrefixHBOrder(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001")
	tr.ObserveWrite(0, 1, "k002")
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 0, Durable: false},
		{Rec: 1, Bucket: 1, Durable: true},
	}})
	if v.OK() {
		t.Fatal("expected violation")
	}
	k := kinds(v)
	if k[KindHBOrder] != 1 || len(v.Violations) != 1 {
		t.Fatalf("want exactly one hb-order violation, got %v (%s)", k, v)
	}
	viol := v.Violations[0]
	if viol.Rec != 1 || viol.Other != 0 || viol.Sess != 0 {
		t.Fatalf("violation identity wrong: %+v", viol)
	}
}

// TestCrossSessionHBOrder: a reader's durable publish happens-after a
// lost foreign write it observed — both the closure check and the read
// check fire, with distinct diagnostics.
func TestCrossSessionHBOrder(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001") // W0, will be lost
	tr.ObserveRead(1, "k001", 0)
	tr.ObserveWrite(1, 1, "k002") // W1, durable
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 0, Durable: false},
		{Rec: 1, Bucket: 1, Durable: true},
	}})
	k := kinds(v)
	if k[KindHBOrder] != 1 || k[KindReadContradiction] != 1 {
		t.Fatalf("want hb-order + read-contradiction, got %v (%s)", k, v)
	}
	for _, viol := range v.Violations {
		if viol.Kind == KindReadContradiction && viol.Key != "k001" {
			t.Fatalf("read contradiction names key %q, want k001", viol.Key)
		}
	}
}

// TestAckedLost: an acked publish missing from the image is flagged even
// when nothing else is durable.
func TestAckedLost(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001")
	tr.AckDurable(1)
	v := tr.Check(&Image{Order: []Publish{{Rec: 0, Bucket: 0, Durable: false}}})
	k := kinds(v)
	if k[KindAckedLost] != 1 || len(v.Violations) != 1 {
		t.Fatalf("want exactly one acked-lost violation, got %v (%s)", k, v)
	}
	if !strings.Contains(v.Violations[0].Msg, "acked durable") {
		t.Fatalf("diagnostic %q", v.Violations[0].Msg)
	}
}

// TestResurrectedDelete: a client observed a tombstone; losing the
// tombstone while the observer's later effects survive resurrects the
// key and is rejected as a read contradiction.
func TestResurrectedDelete(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001") // Put k001
	tr.ObserveWrite(0, 1, "k001") // Delete k001 (tombstone publish)
	tr.ObserveRead(1, "k001", 1)  // s1 sees the deletion
	tr.ObserveWrite(1, 2, "k002") // s1's later durable effect
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 0, Durable: true},
		{Rec: 1, Bucket: 0, Durable: false}, // tombstone lost => k001 resurrected
		{Rec: 2, Bucket: 1, Durable: true},
	}})
	k := kinds(v)
	if k[KindReadContradiction] != 1 {
		t.Fatalf("want read-contradiction, got %v (%s)", k, v)
	}
	var rc *Violation
	for _, viol := range v.Violations {
		if viol.Kind == KindReadContradiction {
			rc = viol
		}
	}
	if rc.Key != "k001" || rc.Other != 1 || rc.Sess != 1 {
		t.Fatalf("read contradiction identity wrong: %+v", rc)
	}
}

// TestBucketOrderClosure: publish-order edges within a bucket carry
// foreign clocks — a durable publish ordered after a lost one in the
// same bucket is rejected even with no direct session/read link.
func TestBucketOrderClosure(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001") // bucket 3, first in commit order, lost
	tr.ObserveWrite(1, 1, "k002") // bucket 3, second in commit order, durable
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 3, Durable: false},
		{Rec: 1, Bucket: 3, Durable: true},
	}})
	k := kinds(v)
	if k[KindHBOrder] != 1 {
		t.Fatalf("want hb-order from the bucket chain, got %v (%s)", k, v)
	}
}

// TestUnknownPublish: an image naming a record the tracker never saw is
// itself a violation.
func TestUnknownPublish(t *testing.T) {
	tr := New()
	tr.ObserveWrite(0, 0, "k001")
	v := tr.Check(&Image{Order: []Publish{
		{Rec: 0, Bucket: 0, Durable: true},
		{Rec: 99, Bucket: 0, Durable: true},
	}})
	k := kinds(v)
	if k[KindUnknownPublish] != 1 {
		t.Fatalf("want unknown-publish, got %v (%s)", k, v)
	}
	if !strings.Contains(v.String(), "FAILED") {
		t.Fatalf("verdict string %q", v)
	}
}

// TestCloneIsolation: mutation tests corrupt clones; the original image
// must be unaffected.
func TestCloneIsolation(t *testing.T) {
	img := &Image{Order: []Publish{{Rec: 0, Bucket: 0, Durable: true}}}
	c := img.Clone()
	c.Order[0].Durable = false
	if !img.Order[0].Durable {
		t.Fatal("Clone aliases the original order")
	}
}

// TestKindString pins the diagnostic vocabulary.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindAckedLost:         "acked-lost",
		KindHBOrder:           "hb-order",
		KindReadContradiction: "read-contradiction",
		KindUnknownPublish:    "unknown-publish",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
