// Package dlcheck decides durable linearizability for the pmkv engine: a
// FastTrack-style happens-before tracker observes every client operation
// online — reads with the identity of the publish whose value they
// returned, publishes, and durability-gated acks — and, given a crash
// image's per-bucket publish order and durability flags, checks that
//
//	(a) every op acked durable is recovered,
//	(b) no recovered state contradicts a value a client already observed,
//	(c) the recovered publishes are downward-closed under the recorded
//	    happens-before ∪ publish-order relation.
//
// The clock representation is adaptive, in the FastTrack tradition: each
// session carries one vector-clock component, every op ticks its own
// component, and a publish is timestamped with just its scalar clock (an
// "epoch" c@s in FastTrack terms) plus a reference to the session's
// latest full-clock snapshot. A new snapshot is taken only when a
// cross-session join — a read observing a foreign write — has raised a
// foreign component since the last one, so long same-session runs cost
// O(1) per op and full vector clocks materialize only at join points and
// at check time.
//
// A nil *Tracker is valid and inert: every observation method no-ops
// without allocating, so the engine's hot path pays one branch per op
// when checking is disabled (the same discipline as internal/obs and
// internal/telemetry).
package dlcheck

import (
	"fmt"
	"math"
	"sync"
)

// writeRef identifies one publish and carries its adaptive timestamp:
// the writer's scalar clock at the write (own, the FastTrack epoch) and
// the snapshot holding the writer's foreign components at that point
// (-1: all foreign components were zero).
type writeRef struct {
	sess int32
	own  int32
	snap int32
	rec  int32 // engine mutation-record index
}

// pubRef is one session-local publish in program order.
type pubRef struct {
	rec  int32
	own  int32
	snap int32
}

// readObs is one client-observed read: the reader's clock position and
// the publish whose value (or tombstone) the response carried.
type readObs struct {
	idx  int32
	w    writeRef
	hasW bool
	key  string
}

// sessState is one session's tracker state.
type sessState struct {
	vc    []int32 // current vector clock; vc[self] counts this session's ops
	dirty bool    // a join raised a foreign component since the last snapshot
	snap  int32   // latest snapshot covering current foreign components (-1: none)
	pubs  []pubRef
	reads []readObs
}

// Tracker observes one engine's operations online. Safe for concurrent
// use; in the sharded store a single worker goroutine owns each engine,
// so the mutex is uncontended on the hot path.
type Tracker struct {
	mu    sync.Mutex
	sess  []*sessState
	snaps [][]int32
	byRec map[int32]writeRef
	acked int // mutation records [0, acked) were acked durable
	ops   int
	reads int
}

// New builds an empty tracker.
func New() *Tracker {
	return &Tracker{byRec: make(map[int32]writeRef)}
}

// Enabled reports whether the tracker is live.
func (t *Tracker) Enabled() bool { return t != nil }

// ensure grows the session table through id and returns its state.
func (t *Tracker) ensure(id int) *sessState {
	for len(t.sess) <= id {
		t.sess = append(t.sess, &sessState{snap: -1})
	}
	return t.sess[id]
}

// tick advances the session's own component and returns the new value.
func (s *sessState) tick(self int) int32 {
	for len(s.vc) <= self {
		s.vc = append(s.vc, 0)
	}
	s.vc[self]++
	return s.vc[self]
}

// joinRef folds the write's clock (snapshot foreign components plus its
// epoch) into the reader's clock, reporting whether anything rose.
func (t *Tracker) joinRef(s *sessState, w writeRef) bool {
	changed := false
	if w.snap >= 0 {
		base := t.snaps[w.snap]
		for len(s.vc) < len(base) {
			s.vc = append(s.vc, 0)
		}
		for i, v := range base {
			if int32(i) != w.sess && v > s.vc[i] {
				s.vc[i] = v
				changed = true
			}
		}
	}
	for len(s.vc) <= int(w.sess) {
		s.vc = append(s.vc, 0)
	}
	if w.own > s.vc[w.sess] {
		s.vc[w.sess] = w.own
		changed = true
	}
	return changed
}

// ObserveRead records that session sess's response for key carried the
// value (or tombstone) of the publish with mutation-record index rec
// (-1: the key had never been written). The read joins the writer's
// clock into the reader's — the happens-before edge durable
// linearizability must respect. No-op on a nil tracker.
func (t *Tracker) ObserveRead(sess int, key string, rec int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.ensure(sess)
	idx := s.tick(sess)
	t.ops++
	t.reads++
	var w writeRef
	hasW := false
	if rec >= 0 {
		w, hasW = t.byRec[int32(rec)]
		if hasW && int(w.sess) != sess {
			if t.joinRef(s, w) {
				s.dirty = true
			}
		}
	}
	s.reads = append(s.reads, readObs{idx: idx, w: w, hasW: hasW, key: key})
	t.mu.Unlock()
}

// ObserveWrite records a publish by session sess with engine mutation-
// record index rec. The publish's timestamp is its scalar clock plus the
// session's current snapshot; a fresh snapshot is taken only when a join
// has raised a foreign component since the last one (the adaptive
// epoch↔vector-clock switch). No-op on a nil tracker.
func (t *Tracker) ObserveWrite(sess, rec int, key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.ensure(sess)
	own := s.tick(sess)
	t.ops++
	if s.dirty {
		t.snaps = append(t.snaps, append([]int32(nil), s.vc...))
		s.snap = int32(len(t.snaps) - 1)
		s.dirty = false
	}
	ref := writeRef{sess: int32(sess), own: own, snap: s.snap, rec: int32(rec)}
	s.pubs = append(s.pubs, pubRef{rec: ref.rec, own: own, snap: s.snap})
	t.byRec[ref.rec] = ref
	t.mu.Unlock()
}

// AckDurable records that the engine's first n mutation records were
// acked to clients as durable (the watermark-gated ack sites). Monotone;
// no-op on a nil tracker.
func (t *Tracker) AckDurable(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n > t.acked {
		t.acked = n
	}
	t.mu.Unlock()
}

// Snapshots reports how many full vector-clock snapshots the adaptive
// representation has materialized (tests pin that same-session runs cost
// none).
func (t *Tracker) Snapshots() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.snaps)
}

// Ops reports the number of observed operations.
func (t *Tracker) Ops() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

const never = int32(math.MaxInt32)

// vcAt reconstructs the full clock of a publish timestamp into dst
// (grown as needed): snapshot foreign components joined in, with the own
// component raised to the epoch value.
func (t *Tracker) vcAt(own, snap int32, sess int32, dst []int32) []int32 {
	if snap >= 0 {
		base := t.snaps[snap]
		for len(dst) < len(base) {
			dst = append(dst, 0)
		}
		for i, v := range base {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
	for len(dst) <= int(sess) {
		dst = append(dst, 0)
	}
	if own > dst[sess] {
		dst[sess] = own
	}
	return dst
}

// String renders a violation kind.
func (k Kind) String() string {
	switch k {
	case KindAckedLost:
		return "acked-lost"
	case KindHBOrder:
		return "hb-order"
	case KindReadContradiction:
		return "read-contradiction"
	case KindUnknownPublish:
		return "unknown-publish"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}
