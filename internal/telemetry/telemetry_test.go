package telemetry

import (
	"math"
	"testing"
)

// span with deterministic stamps: stage i at base + sum of the first i
// gaps (ns).
func stampedSpan(base int64, gaps [NumSegments]int64) *Span {
	sp := &Span{}
	sp.Reset()
	t := base
	sp.Wall[0] = t
	for i := 0; i < NumSegments; i++ {
		t += gaps[i]
		sp.Wall[i+1] = t
	}
	return sp
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.Reset()
	sp.Stamp(StageConnRead)
	sp.StampAt(StageDurable, 42)
	if sp.Stamped(StageConnRead) {
		t.Fatal("nil span claims a stamp")
	}
	var tr *Tracer
	tr.Complete(0, &Span{}, Meta{})
	if tr.Enabled() || tr.Shards() != 0 || tr.StageSummary() != nil {
		t.Fatal("nil tracer not inert")
	}
	if tr.Dump() != nil {
		t.Fatal("nil tracer dump not nil")
	}
}

func TestCompleteFoldsSegments(t *testing.T) {
	tr := New(Config{Shards: 2, Ring: 8})
	gaps := [NumSegments]int64{100, 200, 400, 800, 1600, 3200, 6400}
	tr.Complete(1, stampedSpan(1000, gaps), Meta{Op: "put", Sess: 3, Key: "k1", Durable: 7, OK: true})

	for seg := 0; seg < NumSegments; seg++ {
		h := tr.SegmentHist(1, seg)
		if h.Total != 1 {
			t.Fatalf("seg %d total = %d", seg, h.Total)
		}
		if h.Sum != uint64(gaps[seg]) {
			t.Fatalf("seg %d sum = %d, want %d", seg, h.Sum, gaps[seg])
		}
		if got := h.Counts[histBucket(uint64(gaps[seg]))]; got != 1 {
			t.Fatalf("seg %d bucket count = %d", seg, got)
		}
	}
	// Shard 0 untouched.
	if h := tr.SegmentHist(0, 0); h.Total != 0 {
		t.Fatalf("shard 0 polluted: %+v", h)
	}
	if tr.Ops(1) != 1 || tr.Ops(0) != 0 {
		t.Fatalf("ops = %d/%d", tr.Ops(0), tr.Ops(1))
	}
}

func TestCompleteSkipsUnstampedSegments(t *testing.T) {
	tr := New(Config{Shards: 1, Ring: 8})
	sp := &Span{}
	sp.Reset()
	sp.Wall[StageConnRead] = 100
	sp.Wall[StageShardRoute] = 150
	// Enqueue never stamped: segments enqueue(1) and queue_wait(2) skipped.
	sp.Wall[StageDequeue] = 500
	sp.Wall[StageTranslate] = 700
	tr.Complete(0, sp, Meta{})
	if h := tr.SegmentHist(0, 0); h.Total != 1 || h.Sum != 50 {
		t.Fatalf("route: %+v", h)
	}
	if h := tr.SegmentHist(0, 1); h.Total != 0 {
		t.Fatalf("enqueue should be empty: %+v", h)
	}
	if h := tr.SegmentHist(0, 2); h.Total != 0 {
		t.Fatalf("queue_wait should be empty: %+v", h)
	}
	if h := tr.SegmentHist(0, 3); h.Total != 1 || h.Sum != 200 {
		t.Fatalf("translate: %+v", h)
	}
}

// TestStampFoldZeroAlloc is the hot-path guard the tentpole demands:
// stamping all eight stages and folding the span (histograms + flight
// recorder) must not allocate.
func TestStampFoldZeroAlloc(t *testing.T) {
	tr := New(Config{Shards: 1, Ring: 64})
	sp := &Span{}
	key := "k000123"
	n := testing.AllocsPerRun(1000, func() {
		sp.Reset()
		for st := Stage(0); st < NumStages; st++ {
			sp.Stamp(st)
		}
		sp.StampAt(StageDurable, 12345)
		tr.Complete(0, sp, Meta{Op: "put", Sess: 2, Key: key, Durable: 9, OK: true})
	})
	if n != 0 {
		t.Fatalf("stamp+fold allocates %v times per op, want 0", n)
	}
}

// TestDisabledPathZeroAlloc: the nil-tracer/nil-span path must cost no
// allocations either (it is the default-server configuration).
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	var sp *Span
	n := testing.AllocsPerRun(1000, func() {
		sp.Reset()
		for st := Stage(0); st < NumStages; st++ {
			sp.Stamp(st)
		}
		tr.Complete(0, sp, Meta{Op: "put"})
	})
	if n != 0 {
		t.Fatalf("disabled path allocates %v times per op, want 0", n)
	}
}

func TestHistBucketBounds(t *testing.T) {
	cases := []struct {
		v uint64
		b int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {math.MaxUint64, HistBuckets - 1}}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.b {
			t.Fatalf("histBucket(%d) = %d, want %d", c.v, got, c.b)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(5) != 31 {
		t.Fatal("BucketUpper wrong")
	}
}

func TestHistSnapshotPercentileAndMerge(t *testing.T) {
	var a, b AtomicHist
	for i := 0; i < 90; i++ {
		a.Observe(10) // bucket 4, upper 15
	}
	for i := 0; i < 10; i++ {
		b.Observe(1000) // bucket 10, upper 1023
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Total != 100 {
		t.Fatalf("total = %d", m.Total)
	}
	if got := m.Percentile(50); got != 15 {
		t.Fatalf("p50 = %d, want 15", got)
	}
	if got := m.Percentile(99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	wantMean := (90*10.0 + 10*1000.0) / 100
	if m.Mean() != wantMean {
		t.Fatalf("mean = %g, want %g", m.Mean(), wantMean)
	}
	var empty HistSnapshot
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty hist not zero")
	}
}

func TestStageSummaryMergesShards(t *testing.T) {
	tr := New(Config{Shards: 2, Ring: 8})
	fast := [NumSegments]int64{1000, 1000, 1000, 1000, 1000, 1000, 1000}
	slow := [NumSegments]int64{900000, 900000, 900000, 900000, 900000, 900000, 900000}
	for i := 0; i < 9; i++ {
		tr.Complete(0, stampedSpan(int64(1000*i+1), fast), Meta{})
	}
	tr.Complete(1, stampedSpan(5000, slow), Meta{})

	sum := tr.StageSummary()
	if len(sum) != NumSegments+2 {
		t.Fatalf("summary len = %d, want %d segments + 2 read-path rows", len(sum), NumSegments)
	}
	if sum[NumSegments].Stage != ReadFastStage || sum[NumSegments+1].Stage != ReadFallbackStage {
		t.Fatalf("trailing rows = %q, %q", sum[NumSegments].Stage, sum[NumSegments+1].Stage)
	}
	for _, s := range sum[:NumSegments] {
		if s.Count != 10 {
			t.Fatalf("%s count = %d", s.Stage, s.Count)
		}
		// p50 pools both shards: the fast samples dominate.
		if s.P50US > 2 {
			t.Fatalf("%s p50 = %g us, want ~1", s.Stage, s.P50US)
		}
		// p99 lands in the slow shard's bucket (900000ns ~ bucket 20, upper
		// 1048575ns ~ 1048.575us).
		if s.P99US < 500 {
			t.Fatalf("%s p99 = %g us, want the slow sample", s.Stage, s.P99US)
		}
	}
	per := tr.ShardStageSummary(0)
	if per[0].Count != 9 {
		t.Fatalf("shard 0 count = %d", per[0].Count)
	}
	if names := []string{per[0].Stage, per[6].Stage}; names[0] != "route" || names[1] != "ack_write" {
		t.Fatalf("segment names wrong: %v", names)
	}
}

func TestSegmentNameVocabulary(t *testing.T) {
	want := []string{"route", "enqueue", "queue_wait", "translate", "retire", "durable_wait", "ack_write"}
	for i, w := range want {
		if got := SegmentName(i); got != w {
			t.Fatalf("SegmentName(%d) = %q, want %q", i, got, w)
		}
	}
	if SegmentName(-1) != "" || SegmentName(NumSegments) != "" {
		t.Fatal("out-of-range segment name not empty")
	}
}
