// Prometheus text exposition (version 0.0.4) for the tracer's stage
// histograms, plus small append-style helpers the server uses to add its
// own gauges and counters, and a strict-enough parser used by tests and
// the CI smoke to assert a scrape is well-formed.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// AppendMetricHeader appends the # HELP / # TYPE preamble for a metric.
func AppendMetricHeader(dst []byte, name, typ, help string) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, help...)
	dst = append(dst, "\n# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, typ...)
	dst = append(dst, '\n')
	return dst
}

// AppendSample appends one sample line: name{labels} value. labels is
// the pre-rendered label body without braces ("" for none).
func AppendSample(dst []byte, name, labels string, value float64) []byte {
	dst = append(dst, name...)
	if labels != "" {
		dst = append(dst, '{')
		dst = append(dst, labels...)
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, value, 'g', -1, 64)
	dst = append(dst, '\n')
	return dst
}

// AppendUintSample is AppendSample for exact integer counters.
func AppendUintSample(dst []byte, name, labels string, value uint64) []byte {
	dst = append(dst, name...)
	if labels != "" {
		dst = append(dst, '{')
		dst = append(dst, labels...)
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, value, 10)
	dst = append(dst, '\n')
	return dst
}

// appendHistogram renders one HistSnapshot as a Prometheus histogram:
// cumulative buckets at the pow-2 upper bounds scaled by scale (ns ->
// seconds uses 1e-9), then +Inf, _sum, and _count. Empty leading and
// trailing bucket runs are collapsed — only buckets up to the highest
// nonzero one are emitted individually — keeping scrapes compact while
// cumulative counts stay exact.
func appendHistogram(dst []byte, name, labels string, h HistSnapshot, scale float64) []byte {
	top := 0
	for b := HistBuckets - 1; b >= 0; b-- {
		if h.Counts[b] != 0 {
			top = b
			break
		}
	}
	var cum uint64
	for b := 0; b <= top; b++ {
		cum += h.Counts[b]
		le := strconv.FormatFloat(float64(BucketUpper(b))*scale, 'g', -1, 64)
		dst = append(dst, name...)
		dst = append(dst, "_bucket{"...)
		if labels != "" {
			dst = append(dst, labels...)
			dst = append(dst, ',')
		}
		dst = append(dst, "le=\""...)
		dst = append(dst, le...)
		dst = append(dst, "\"} "...)
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, name...)
	dst = append(dst, "_bucket{"...)
	if labels != "" {
		dst = append(dst, labels...)
		dst = append(dst, ',')
	}
	dst = append(dst, "le=\"+Inf\"} "...)
	dst = strconv.AppendUint(dst, h.Total, 10)
	dst = append(dst, '\n')

	dst = AppendSample(dst, name+"_sum", labels, float64(h.Sum)*scale)
	dst = AppendUintSample(dst, name+"_count", labels, h.Total)
	return dst
}

// AppendHistogram renders one HistSnapshot as a Prometheus histogram
// (cumulative pow-2 buckets, +Inf, _sum, _count). scale converts the
// observed unit to the exposition unit (1 for dimensionless values like
// batch sizes; 1e-9 for nanoseconds to seconds). The caller appends the
// # HELP / # TYPE preamble once via AppendMetricHeader.
func AppendHistogram(dst []byte, name, labels string, h HistSnapshot, scale float64) []byte {
	return appendHistogram(dst, name, labels, h, scale)
}

// StageMetricName is the exposition name of the per-segment duration
// histograms.
const StageMetricName = "pmkv_stage_duration_seconds"

// AppendStageMetrics renders every shard's stage-segment histograms onto
// dst in Prometheus text format.
func (t *Tracer) AppendStageMetrics(dst []byte) []byte {
	if t == nil {
		return dst
	}
	dst = AppendMetricHeader(dst, StageMetricName, "histogram",
		"Wall-clock duration of each pmkv pipeline stage segment, per shard.")
	for shard := range t.shards {
		for seg := 0; seg < NumSegments; seg++ {
			labels := fmt.Sprintf("shard=%q,stage=%q", strconv.Itoa(shard), segmentNames[seg])
			dst = appendHistogram(dst, StageMetricName, labels, t.shards[shard].segs[seg].Snapshot(), 1e-9)
		}
		// Read-path rows ride along as synthetic stages: end-to-end GET
		// latency served from the index vs through the mailbox.
		dst = appendHistogram(dst, StageMetricName,
			fmt.Sprintf("shard=%q,stage=%q", strconv.Itoa(shard), ReadFastStage),
			t.shards[shard].fast.Snapshot(), 1e-9)
		dst = appendHistogram(dst, StageMetricName,
			fmt.Sprintf("shard=%q,stage=%q", strconv.Itoa(shard), ReadFallbackStage),
			t.shards[shard].fallback.Snapshot(), 1e-9)
	}
	dst = AppendMetricHeader(dst, "pmkv_stage_ops_total", "counter",
		"Completed operations folded into the stage tracer, per shard.")
	for shard := range t.shards {
		dst = AppendUintSample(dst, "pmkv_stage_ops_total",
			fmt.Sprintf("shard=%q", strconv.Itoa(shard)), t.shards[shard].ops.Load())
	}
	return dst
}

// WriteMetrics writes the tracer's exposition to w.
func (t *Tracer) WriteMetrics(w io.Writer) error {
	_, err := w.Write(t.AppendStageMetrics(nil))
	return err
}

// AppendCycleHistogram renders a pow-2 histogram of simulated-cycle
// values (e.g. obs persist latency) as a Prometheus histogram with
// cycle-valued le bounds. counts follows the internal/obs convention:
// counts[b] holds values v with bits.Len64(v) == b.
func AppendCycleHistogram(dst []byte, name, labels string, counts []uint64) []byte {
	var h HistSnapshot
	for b, c := range counts {
		if b >= HistBuckets {
			break
		}
		h.Counts[b] = c
		h.Total += c
		h.Sum += c * BucketUpper(b) // upper-bound approximation of the sum
	}
	return appendHistogram(dst, name, labels, h, 1)
}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition: every non-comment line is `name{labels} value`, names
// are legal, every sample of a TYPEd histogram has monotonically
// nondecreasing cumulative buckets per label set, and each histogram's
// +Inf bucket equals its _count. Tests and the CI smoke use it to assert
// a live scrape parses.
func ValidateExposition(data []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	type histState struct {
		lastCum  map[string]float64 // label set (minus le) -> last cumulative value
		lastLe   map[string]float64
		infSeen  map[string]float64
		countVal map[string]float64
	}
	hists := make(map[string]*histState)
	types := make(map[string]string)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " ")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					hists[fields[2]] = &histState{
						lastCum:  map[string]float64{},
						lastLe:   map[string]float64{},
						infSeen:  map[string]float64{},
						countVal: map[string]float64{},
					}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		base, suffix := histBase(name)
		st, isHist := hists[base]
		if !isHist || types[base] != "histogram" {
			continue
		}
		key, le, hasLe := splitLe(labels)
		switch suffix {
		case "_bucket":
			if !hasLe {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if le == "+Inf" {
				st.infSeen[key] = value
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			if prev, ok := st.lastLe[key]; ok && bound <= prev {
				return fmt.Errorf("line %d: le bounds not increasing for %s{%s}", lineNo, base, key)
			}
			if prev, ok := st.lastCum[key]; ok && value < prev {
				return fmt.Errorf("line %d: cumulative bucket decreased for %s{%s}", lineNo, base, key)
			}
			st.lastLe[key] = bound
			st.lastCum[key] = value
		case "_count":
			st.countVal[key] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for base, st := range hists {
		keys := make([]string, 0, len(st.infSeen))
		for k := range st.infSeen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			inf := st.infSeen[k]
			if cnt, ok := st.countVal[k]; !ok || cnt != inf {
				return fmt.Errorf("%s{%s}: +Inf bucket %g != _count %g", base, k, inf, st.countVal[k])
			}
			if last, ok := st.lastCum[k]; ok && inf < last {
				return fmt.Errorf("%s{%s}: +Inf bucket %g below last cumulative %g", base, k, inf, last)
			}
		}
	}
	return nil
}

// parseSample splits one exposition line into name, label body, value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			return "", "", 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:k]
		rest = strings.TrimSpace(rest[k:])
	}
	// A timestamp may follow the value; take the first field.
	if k := strings.IndexByte(rest, ' '); k >= 0 {
		rest = rest[:k]
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// histBase strips a histogram sample suffix.
func histBase(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

// splitLe removes the le pair from a label body, returning the remaining
// label set (the histogram series key) and the le value.
func splitLe(labels string) (key, le string, ok bool) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, "le=") {
			le = strings.Trim(strings.TrimPrefix(p, "le="), "\"")
			ok = true
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le, ok
}
