// The flight recorder: a bounded, lock-free ring of the most recent
// completed-operation records per shard. Writers claim slots with an
// atomic ticket, so recording costs one atomic add plus a struct copy;
// the ring simply overwrites the oldest entries. Snapshot is meant for
// post-mortem use — the server dumps it after its workers and connection
// handlers have stopped — and defensively drops slots whose ticket
// doesn't match their position (a writer raced the wraparound).
package telemetry

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// Record is one completed operation in the flight recorder.
type Record struct {
	// Ticket is the record's global sequence number within its shard's
	// recorder (monotonic across wraparound).
	Ticket  uint64 `json:"ticket"`
	Shard   int    `json:"shard"`
	Sess    int    `json:"sess"`
	Op      string `json:"op"`
	Key     string `json:"key"`
	Durable int    `json:"durable"`
	Crashed bool   `json:"crashed,omitempty"`
	OK      bool   `json:"ok"`
	Span    Span   `json:"span"`
}

// Recorder is the per-shard ring. The zero value is unusable; init sizes
// it.
type Recorder struct {
	mask uint64
	pos  atomic.Uint64
	buf  []Record
}

// init sizes the ring to the next power of two >= n.
func (r *Recorder) init(n int) {
	size := 1
	for size < n {
		size <<= 1
	}
	r.buf = make([]Record, size)
	r.mask = uint64(size - 1)
}

// put claims the next ticket and stores rec in its slot.
func (r *Recorder) put(rec Record) {
	t := r.pos.Add(1) - 1
	rec.Ticket = t
	r.buf[t&r.mask] = rec
}

// Len reports how many records have ever been put (not the retained
// count, which is min(Len, capacity)).
func (r *Recorder) Len() uint64 { return r.pos.Load() }

// Snapshot returns the retained records in ticket order, oldest first.
// Slots whose stored ticket doesn't match their expected position —
// a writer racing the snapshot across a wraparound — are skipped.
func (r *Recorder) Snapshot() []Record {
	n := r.pos.Load()
	size := uint64(len(r.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Record, 0, n-start)
	for t := start; t < n; t++ {
		rec := r.buf[t&r.mask]
		if rec.Ticket != t {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// FlightShard is one shard's section of a flight-recorder dump.
type FlightShard struct {
	Shard int `json:"shard"`
	// Recorded counts records ever put; Retained is how many the ring
	// still held at dump time.
	Recorded uint64   `json:"recorded"`
	Retained int      `json:"retained"`
	Events   []Record `json:"events"`
}

// FlightDump is the post-mortem artifact the server writes next to its
// recovery report whenever a crash or drain fires.
type FlightDump struct {
	SchemaVersion int           `json:"schema_version"`
	Stages        []string      `json:"stages"`
	Shards        []FlightShard `json:"shards"`
}

// FlightSchemaVersion is the dump format version.
const FlightSchemaVersion = 1

// Dump snapshots every shard's flight recorder.
func (t *Tracer) Dump() *FlightDump {
	if t == nil {
		return nil
	}
	d := &FlightDump{SchemaVersion: FlightSchemaVersion}
	for st := Stage(0); st < NumStages; st++ {
		d.Stages = append(d.Stages, st.String())
	}
	for i := range t.shards {
		rec := &t.shards[i].rec
		events := rec.Snapshot()
		d.Shards = append(d.Shards, FlightShard{
			Shard:    i,
			Recorded: rec.Len(),
			Retained: len(events),
			Events:   events,
		})
	}
	return d
}

// WriteDump encodes the dump as indented JSON.
func (t *Tracer) WriteDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Dump())
}
