package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden metrics file")

// deterministicTracer builds a 2-shard tracer with fixed observations so
// the exposition is byte-stable.
func deterministicTracer() *Tracer {
	tr := New(Config{Shards: 2, Ring: 8})
	gapsA := [NumSegments]int64{500, 1000, 250000, 4000, 90000, 1500000, 12000}
	gapsB := [NumSegments]int64{700, 900, 180000, 5000, 110000, 2100000, 9000}
	for i := 0; i < 3; i++ {
		tr.Complete(0, stampedSpan(int64(10000*i+1), gapsA), Meta{Op: "put", Sess: i, Key: "k0", Durable: i, OK: true})
	}
	tr.Complete(1, stampedSpan(777, gapsB), Meta{Op: "get", Sess: 9, Key: "k1", OK: true})
	return tr
}

// TestMetricsGolden pins the Prometheus text format byte-for-byte: the
// smoke test scrapes this exposition live, so format drift must be loud.
func TestMetricsGolden(t *testing.T) {
	tr := deterministicTracer()
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestMetricsValidate(t *testing.T) {
	tr := deterministicTracer()
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own exposition does not validate: %v", err)
	}
	// Spot-check shape: headers, a bucket line, +Inf, count.
	out := buf.String()
	for _, want := range []string{
		"# TYPE pmkv_stage_duration_seconds histogram",
		`pmkv_stage_duration_seconds_bucket{shard="0",stage="route",le="+Inf"} 3`,
		`pmkv_stage_duration_seconds_count{shard="0",stage="route"} 3`,
		`pmkv_stage_ops_total{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage value", "pmkv_x{a=\"1\"} notanumber\n"},
		{"bad name", "9bad_name 1\n"},
		{"unbalanced braces", "pmkv_x{a=\"1\" 2\n"},
		{"decreasing cumulative", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"inf/count mismatch", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"nonincreasing le", "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition([]byte(c.data)); err == nil {
			t.Fatalf("%s: validated, want error", c.name)
		}
	}
	// And a well-formed non-histogram sample plus comments pass.
	ok := "# HELP g a gauge\n# TYPE g gauge\ng{shard=\"0\"} 1.5\nplain_counter 7\n\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestAppendCycleHistogram(t *testing.T) {
	counts := make([]uint64, 12)
	counts[4] = 10 // values ~8..15 cycles
	counts[11] = 2 // values ~1024..2047 cycles
	out := AppendCycleHistogram(nil, "pmkv_persist_latency_cycles", `shard="0"`, counts)
	if err := ValidateExposition(append([]byte("# TYPE pmkv_persist_latency_cycles histogram\n"), out...)); err != nil {
		t.Fatalf("cycle histogram invalid: %v", err)
	}
	s := string(out)
	for _, want := range []string{
		`pmkv_persist_latency_cycles_bucket{shard="0",le="15"} 10`,
		`pmkv_persist_latency_cycles_bucket{shard="0",le="+Inf"} 12`,
		`pmkv_persist_latency_cycles_count{shard="0"} 12`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}
