// Package telemetry is the live pipeline tracer for the pmkv serving
// path. Each request carries a preallocated Span stamped (wall-clock ns
// plus, where the shard worker knows it, sim cycle) at fixed pipeline
// stages — conn-read, shard-route, mailbox-enqueue, dequeue, translate,
// submit, durable-watermark, ack-written — and the completed span is
// folded into per-shard power-of-two duration histograms, one per stage
// segment, so a scrape can answer the question the paper asks of the
// hardware: where does persist latency hide?
//
// The hot path is allocation-free and lock-free: stamping writes into a
// caller-owned Span, folding is a handful of atomic adds, and the flight
// recorder claims ring slots with an atomic ticket. A nil *Tracer and a
// nil *Span are both valid and inert, so the uninstrumented serving path
// costs exactly one nil check per stamp site — the same discipline as
// internal/obs's Probe.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage enumerates the stamp points of one operation's path through the
// server, in pipeline order.
type Stage uint8

const (
	// StageConnRead: the request line has been read off the socket.
	StageConnRead Stage = iota
	// StageShardRoute: the request is parsed and hashed to its shard.
	StageShardRoute
	// StageEnqueue: the request landed in the shard's mailbox (the send
	// blocks under backpressure, so route->enqueue is queue admission).
	StageEnqueue
	// StageDequeue: the shard worker pulled the request off the mailbox.
	StageDequeue
	// StageTranslate: the group commit holding this request finished
	// translating and feeding its ops to the simulated cores.
	StageTranslate
	// StageSubmit: the batch's ops all retired (visibility settled; the
	// epochs holding its publishes keep persisting in the background).
	StageSubmit
	// StageDurable: the shard's durable-prefix watermark covered the
	// request and its ack was released.
	StageDurable
	// StageAckWritten: the response was encoded and flushed to the socket.
	StageAckWritten

	// NumStages is the stamp-point count; segments between consecutive
	// stamps number NumStages-1.
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageConnRead:
		return "conn-read"
	case StageShardRoute:
		return "shard-route"
	case StageEnqueue:
		return "mailbox-enqueue"
	case StageDequeue:
		return "dequeue"
	case StageTranslate:
		return "translate"
	case StageSubmit:
		return "submit"
	case StageDurable:
		return "durable-watermark"
	case StageAckWritten:
		return "ack-written"
	default:
		return "stage(?)"
	}
}

// NumSegments is the number of consecutive-stage duration histograms.
const NumSegments = int(NumStages) - 1

// segmentNames label the durations between consecutive stamps; segment i
// covers Stage(i) -> Stage(i+1). The names answer "which part of the
// pipeline": parse+route, mailbox admission, queue wait, batch gather +
// translate+feed, machine pump to retirement, barrier-drain to the
// durable watermark, and the reply hop + response write syscall.
var segmentNames = [NumSegments]string{
	"route",        // conn-read        -> shard-route
	"enqueue",      // shard-route      -> mailbox-enqueue
	"queue_wait",   // mailbox-enqueue  -> dequeue
	"translate",    // dequeue          -> translate (incl. batch gather)
	"retire",       // translate        -> submit (pump to retirement)
	"durable_wait", // submit           -> durable watermark
	"ack_write",    // durable          -> ack-written
}

// SegmentName reports segment i's label ("" out of range).
func SegmentName(i int) string {
	if i < 0 || i >= NumSegments {
		return ""
	}
	return segmentNames[i]
}

// Span is one operation's preallocated stage record. Wall holds unix
// nanoseconds per stamped stage (0 = never stamped); Cycle holds the
// owning shard's simulated clock where the stamping site knows it
// (-1 = unknown). A nil *Span is valid: every method no-ops.
type Span struct {
	Wall  [NumStages]int64 `json:"wall"`
	Cycle [NumStages]int64 `json:"cycle"`
}

// Reset clears the span for reuse.
func (s *Span) Reset() {
	if s == nil {
		return
	}
	for i := range s.Wall {
		s.Wall[i] = 0
		s.Cycle[i] = -1
	}
}

// Stamp records the wall clock at stage st.
func (s *Span) Stamp(st Stage) {
	if s == nil {
		return
	}
	s.Wall[st] = time.Now().UnixNano()
}

// StampAt records the wall clock and the shard's sim cycle at stage st.
func (s *Span) StampAt(st Stage, cycle int64) {
	if s == nil {
		return
	}
	s.Wall[st] = time.Now().UnixNano()
	s.Cycle[st] = cycle
}

// Stamped reports whether stage st was stamped.
func (s *Span) Stamped(st Stage) bool { return s != nil && s.Wall[st] != 0 }

// HistBuckets is the power-of-two histogram size: bucket b counts values
// v with bits.Len64(v) == b, i.e. bucket 0 holds exactly 0 and bucket
// b>0 holds [2^(b-1), 2^b-1]. 48 buckets cover ~78 hours in nanoseconds.
const HistBuckets = 48

// histBucket maps a value to its bucket.
func histBucket(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper reports bucket b's inclusive upper bound (2^b - 1; 0 for
// bucket 0). The last bucket is unbounded but reports its nominal bound.
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// AtomicHist is a lock-free power-of-two histogram: Observe is two
// atomic adds, safe from any number of goroutines.
type AtomicHist struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe folds one value in.
func (h *AtomicHist) Observe(v uint64) {
	h.counts[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state.
func (h *AtomicHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Total += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of an AtomicHist, mergeable and
// queryable without synchronization.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Total  uint64
	Sum    uint64
}

// Merge adds o into h (exact: bucket counts and sums just add).
func (h *HistSnapshot) Merge(o HistSnapshot) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Total += o.Total
	h.Sum += o.Sum
}

// Percentile reports the inclusive upper bound of the bucket holding the
// nearest-rank p-th percentile sample (0 when empty).
func (h *HistSnapshot) Percentile(p float64) uint64 {
	if h.Total == 0 {
		return 0
	}
	rank := uint64(float64(h.Total) * p / 100)
	if rank >= h.Total {
		rank = h.Total - 1
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += h.Counts[b]
		if seen > rank {
			return BucketUpper(b)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Mean reports the exact mean of observed values (0 when empty).
func (h *HistSnapshot) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Meta carries the per-op identity folded into the flight recorder at
// completion time.
type Meta struct {
	// Op is the operation kind as the server names it (e.g. "put").
	Op string
	// Sess is the client session id.
	Sess int
	// Key is the operation's key (string header copy; no allocation).
	Key string
	// Durable is the shard's durable-prefix watermark at ack time.
	Durable int
	// Crashed marks an ack delivered as the shard lost power.
	Crashed bool
	// OK marks a successfully served op (false: refused or errored).
	OK bool
}

// shardTel is one shard's telemetry state.
type shardTel struct {
	segs [NumSegments]AtomicHist
	// fast / fallback hold end-to-end GET latency by read path: served
	// from the committed-state index on the caller's goroutine, or routed
	// through the shard mailbox like a write.
	fast     AtomicHist
	fallback AtomicHist
	rec      Recorder
	ops      atomic.Uint64
}

// Config sizes a Tracer.
type Config struct {
	// Shards is the number of independent pipeline instances (>= 1).
	Shards int
	// Ring is the per-shard flight-recorder capacity, rounded up to a
	// power of two (<= 0 selects DefaultRing).
	Ring int
}

// DefaultRing is the default flight-recorder capacity per shard.
const DefaultRing = 1024

// Tracer owns per-shard stage histograms and flight recorders. A nil
// *Tracer is valid and inert — servers built without telemetry pass nil
// everywhere and pay one branch per call site.
type Tracer struct {
	shards []shardTel
}

// New builds a tracer for the given shard count.
func New(cfg Config) *Tracer {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	t := &Tracer{shards: make([]shardTel, cfg.Shards)}
	for i := range t.shards {
		t.shards[i].rec.init(ring)
	}
	return t
}

// Enabled reports whether the tracer is live.
func (t *Tracer) Enabled() bool { return t != nil }

// Shards reports the shard count (0 when nil).
func (t *Tracer) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// Complete folds a finished span into shard's segment histograms and
// appends one record to its flight recorder. Segments whose endpoints
// were not both stamped are skipped. Safe from any goroutine;
// allocation-free.
func (t *Tracer) Complete(shard int, sp *Span, m Meta) {
	if t == nil || sp == nil || shard < 0 || shard >= len(t.shards) {
		return
	}
	st := &t.shards[shard]
	for i := 0; i < NumSegments; i++ {
		a, b := sp.Wall[i], sp.Wall[i+1]
		if a == 0 || b == 0 {
			continue
		}
		d := b - a
		if d < 0 {
			d = 0
		}
		st.segs[i].Observe(uint64(d))
	}
	st.ops.Add(1)
	st.rec.put(Record{
		Shard:   shard,
		Sess:    m.Sess,
		Op:      m.Op,
		Key:     m.Key,
		Durable: m.Durable,
		Crashed: m.Crashed,
		OK:      m.OK,
		Span:    *sp,
	})
}

// ObserveReadPath folds one completed GET's end-to-end duration (ns,
// conn-read to ack-written) into shard's fast or fallback read
// histogram. Safe from any goroutine; allocation-free.
func (t *Tracer) ObserveReadPath(shard int, fast bool, d uint64) {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return
	}
	if fast {
		t.shards[shard].fast.Observe(d)
	} else {
		t.shards[shard].fallback.Observe(d)
	}
}

// ReadPathHist snapshots one shard's fast or fallback read histogram.
func (t *Tracer) ReadPathHist(shard int, fast bool) HistSnapshot {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return HistSnapshot{}
	}
	if fast {
		return t.shards[shard].fast.Snapshot()
	}
	return t.shards[shard].fallback.Snapshot()
}

// Ops reports how many completed operations shard has folded.
func (t *Tracer) Ops(shard int) uint64 {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return 0
	}
	return t.shards[shard].ops.Load()
}

// SegmentHist snapshots one shard's segment histogram.
func (t *Tracer) SegmentHist(shard, seg int) HistSnapshot {
	if t == nil || shard < 0 || shard >= len(t.shards) || seg < 0 || seg >= NumSegments {
		return HistSnapshot{}
	}
	return t.shards[shard].segs[seg].Snapshot()
}

// StageStats summarizes one segment's duration distribution in
// microseconds (the exposition unit of the human-facing summaries; the
// Prometheus endpoint reports seconds).
type StageStats struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// ReadFastStage / ReadFallbackStage name the two synthetic rows the
// stage summaries append after the pipeline segments: end-to-end GET
// latency by read path (index fast path vs mailbox fallback).
const (
	ReadFastStage     = "read_fast"
	ReadFallbackStage = "read_fallback"
)

func stageRow(name string, h HistSnapshot) StageStats {
	return StageStats{
		Stage:  name,
		Count:  h.Total,
		MeanUS: h.Mean() / 1e3,
		P50US:  float64(h.Percentile(50)) / 1e3,
		P90US:  float64(h.Percentile(90)) / 1e3,
		P99US:  float64(h.Percentile(99)) / 1e3,
	}
}

func summarize(hists [NumSegments]HistSnapshot, fast, fallback HistSnapshot) []StageStats {
	out := make([]StageStats, 0, NumSegments+2)
	for i := 0; i < NumSegments; i++ {
		out = append(out, stageRow(segmentNames[i], hists[i]))
	}
	out = append(out, stageRow(ReadFastStage, fast), stageRow(ReadFallbackStage, fallback))
	return out
}

// ShardStageSummary summarizes one shard's segments plus its read-path
// rows.
func (t *Tracer) ShardStageSummary(shard int) []StageStats {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return nil
	}
	var hists [NumSegments]HistSnapshot
	for i := 0; i < NumSegments; i++ {
		hists[i] = t.shards[shard].segs[i].Snapshot()
	}
	st := &t.shards[shard]
	return summarize(hists, st.fast.Snapshot(), st.fallback.Snapshot())
}

// StageSummary merges every shard's segment histograms (exact: pow-2
// bucket counts add) and summarizes the pooled distributions, read-path
// rows included.
func (t *Tracer) StageSummary() []StageStats {
	if t == nil {
		return nil
	}
	var hists [NumSegments]HistSnapshot
	var fast, fallback HistSnapshot
	for s := range t.shards {
		for i := 0; i < NumSegments; i++ {
			hists[i].Merge(t.shards[s].segs[i].Snapshot())
		}
		fast.Merge(t.shards[s].fast.Snapshot())
		fallback.Merge(t.shards[s].fallback.Snapshot())
	}
	return summarize(hists, fast, fallback)
}
