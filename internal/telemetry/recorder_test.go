package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRecorderRetainsTail(t *testing.T) {
	var r Recorder
	r.init(4)
	for i := 0; i < 10; i++ {
		r.put(Record{Sess: i})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, rec := range got {
		wantTicket := uint64(6 + i)
		if rec.Ticket != wantTicket || rec.Sess != 6+i {
			t.Fatalf("slot %d: ticket %d sess %d, want ticket %d", i, rec.Ticket, rec.Sess, wantTicket)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRecorderSnapshotBeforeWrap(t *testing.T) {
	var r Recorder
	r.init(8)
	for i := 0; i < 3; i++ {
		r.put(Record{Op: "put", Key: fmt.Sprintf("k%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Key != "k0" || got[2].Key != "k2" {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestRecorderConcurrentPut(t *testing.T) {
	var r Recorder
	r.init(1024)
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.put(Record{Sess: w, Durable: i})
			}
		}(w)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != writers*each {
		t.Fatalf("retained %d, want %d", len(got), writers*each)
	}
	// Tickets must be a contiguous, ordered sequence.
	for i, rec := range got {
		if rec.Ticket != uint64(i) {
			t.Fatalf("ticket %d at position %d", rec.Ticket, i)
		}
	}
}

func TestTracerDumpShape(t *testing.T) {
	tr := New(Config{Shards: 2, Ring: 8})
	gaps := [NumSegments]int64{1, 2, 3, 4, 5, 6, 7}
	tr.Complete(0, stampedSpan(100, gaps), Meta{Op: "put", Sess: 1, Key: "a", Durable: 1, OK: true})
	tr.Complete(1, stampedSpan(200, gaps), Meta{Op: "del", Sess: 2, Key: "b", Durable: 2, Crashed: true, OK: true})

	var buf bytes.Buffer
	if err := tr.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if d.SchemaVersion != FlightSchemaVersion {
		t.Fatalf("schema_version = %d", d.SchemaVersion)
	}
	if len(d.Stages) != int(NumStages) || d.Stages[0] != "conn-read" || d.Stages[7] != "ack-written" {
		t.Fatalf("stages = %v", d.Stages)
	}
	if len(d.Shards) != 2 {
		t.Fatalf("shards = %d", len(d.Shards))
	}
	if d.Shards[0].Recorded != 1 || d.Shards[0].Retained != 1 || len(d.Shards[0].Events) != 1 {
		t.Fatalf("shard 0 = %+v", d.Shards[0])
	}
	ev := d.Shards[1].Events[0]
	if ev.Op != "del" || !ev.Crashed || ev.Durable != 2 || ev.Key != "b" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Span.Wall[StageConnRead] != 200 {
		t.Fatalf("span not carried: %+v", ev.Span)
	}
}
