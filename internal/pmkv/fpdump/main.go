// Command fpdump prints the recovered-state fingerprint of every crash
// instant of a scripted pmkv sweep — the byte-identity baseline used to
// prove optimizations changed speed, not semantics.
package main

import (
	"fmt"
	"os"

	"persistbarriers/internal/pmkv"
)

func main() {
	spec := pmkv.ScriptSpec{Sessions: 4, Rounds: 16, KeySpace: 24, ValueBytes: 192, Seed: 7}
	clean, err := pmkv.RunScript(pmkv.Config{}, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpdump:", err)
		os.Exit(1)
	}
	fmt.Printf("clean cycles=%d fp=%s\n", clean.Cycles, clean.Report.Fingerprint)
	for _, at := range pmkv.SweepInstants(clean.Cycles, 200) {
		out, err := pmkv.RunScript(pmkv.Config{CrashAt: at}, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpdump:", err)
			os.Exit(1)
		}
		fmt.Printf("at=%d crashed=%v cycles=%d fp=%s\n", at, out.Crashed, out.Cycles, out.Report.Fingerprint)
	}
}
