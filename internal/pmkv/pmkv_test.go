package pmkv

import (
	"bytes"
	"fmt"
	"testing"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/sim"
)

func testSpec() ScriptSpec {
	return ScriptSpec{Sessions: 6, Rounds: 24, KeySpace: 16, ValueBytes: 160, Seed: 42}
}

func TestPutGetDelete(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := e.NewSession(), e.NewSession()
	resps, err := e.Apply([]Request{
		{Sess: s1, Op: Put, Key: "alpha", Value: []byte("one")},
		{Sess: s2, Op: Put, Key: "beta", Value: []byte("two")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || !resps[0].Found || !resps[1].Found {
		t.Fatalf("put responses: %+v", resps)
	}
	resps, err = e.Apply([]Request{
		{Sess: s1, Op: Get, Key: "beta"},
		{Sess: s2, Op: Delete, Key: "alpha"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Found || string(resps[0].Value) != "two" {
		t.Fatalf("get beta = %+v", resps[0])
	}
	if !resps[1].Found {
		t.Fatal("delete alpha reported not-found")
	}
	resps, err = e.Apply([]Request{{Sess: s1, Op: Get, Key: "alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Found {
		t.Fatal("alpha still visible after delete")
	}

	res, err := e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("clean close did not finish the machine")
	}
	rep, err := e.Verify(res)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Clean drain: every publish persisted, recovered state == volatile.
	if rep.DurablePublishes != rep.TotalPublishes {
		t.Fatalf("durable %d != total %d after clean drain", rep.DurablePublishes, rep.TotalPublishes)
	}
	state, err := e.RecoveredState(res)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Volatile()
	if len(state) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(state), len(want))
	}
	for k, v := range want {
		if string(state[k]) != string(v) {
			t.Fatalf("recovered[%q] = %q, want %q", k, state[k], v)
		}
	}
}

// TestCleanDrainContendedBucket: same-batch sessions publishing to one
// bucket can commit in the opposite order of translation (value lengths
// vary each session's path to its publish store), so recovery must replay
// the bucket's publish deltas in committed order — a snapshot keyed to
// the last durable head version would silently drop the other session's
// acknowledged write. After a clean drain, recovered == volatile exactly.
func TestCleanDrainContendedBucket(t *testing.T) {
	e, err := New(Config{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	const nSess = 4
	sessions := make([]*Session, nSess)
	for i := range sessions {
		sessions[i] = e.NewSession()
	}
	// Distinct keys, all hashing to one bucket: every batch is pure
	// same-bucket contention between different sessions' keys.
	target := e.bucketOf("c000")
	keys := make([]string, 0, nSess)
	for i := 0; len(keys) < nSess; i++ {
		k := fmt.Sprintf("c%03d", i)
		if e.bucketOf(k) == target {
			keys = append(keys, k)
		}
	}
	for round := 0; round < 12; round++ {
		batch := make([]Request, nSess)
		for i, s := range sessions {
			if round%5 == 4 && i == round%nSess {
				batch[i] = Request{Sess: s, Op: Delete, Key: keys[i]}
				continue
			}
			val := bytes.Repeat([]byte{byte('a' + i)}, 1+(round*37+i*113)%200)
			batch[i] = Request{Sess: s, Op: Put, Key: keys[i], Value: val}
		}
		if _, err := e.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Verify(res); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := e.RecoveredState(res)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Volatile()
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d: a committed publish was dropped or invented", len(got), len(want))
	}
	for k, v := range want {
		if string(got[k]) != string(v) {
			t.Fatalf("recovered[%q] = %q, want %q", k, got[k], v)
		}
	}
}

// TestNewRejectsUnsafeMachine: the engine's token correlation requires
// barriers that drain posted stores, so configs where they don't (NP
// ignores barriers; bulk-epoch mode makes them transparent) must be
// rejected up front instead of corrupting TokenVersions at run time.
func TestNewRejectsUnsafeMachine(t *testing.T) {
	cfg := Config{Machine: SmallMachine()}
	cfg.Machine.Model = machine.NP
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an NP machine (barriers ignored)")
	}
	cfg = Config{Machine: SmallMachine()}
	cfg.Machine.BulkEpochStores = 64
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted bulk-epoch mode (programmer barriers transparent)")
	}
}

func TestApplyAfterCloseFails(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	if _, err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply([]Request{{Sess: s, Op: Put, Key: "k", Value: []byte("v")}}); err == nil {
		t.Fatal("Apply after Close accepted")
	}
	if _, err := e.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
}

func TestCleanRunVerifies(t *testing.T) {
	out, err := RunScript(Config{}, testSpec())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if out.Crashed {
		t.Fatal("clean run reported crashed")
	}
	if out.RoundsApplied != testSpec().Rounds {
		t.Fatalf("applied %d rounds, want %d", out.RoundsApplied, testSpec().Rounds)
	}
	if out.Report.TotalPublishes == 0 || out.Report.DurablePublishes != out.Report.TotalPublishes {
		t.Fatalf("clean run publishes: %+v", out.Report)
	}
	if out.Report.PublishEdges == 0 {
		t.Fatal("no publish-order edges: sessions never contended on a bucket")
	}
}

// TestCrashSweep is the headline acceptance test: 200 seeded crash
// instants spread across the run, >= 4 concurrent sessions, zero
// epoch-order / prefix-closure / KV-atomicity violations.
func TestCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is long")
	}
	spec := testSpec()
	clean, err := RunScript(Config{}, spec)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	instants := SweepInstants(clean.Cycles, 200)
	crashed := 0
	for _, at := range instants {
		out, err := RunScript(Config{CrashAt: at}, spec)
		if err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
		if out.Crashed {
			crashed++
			if out.Cycles != at {
				t.Fatalf("crash at %d stopped clock at %d", at, out.Cycles)
			}
		}
	}
	if crashed < len(instants)/2 {
		t.Fatalf("only %d/%d instants actually crashed; sweep is not exercising mid-run states", crashed, len(instants))
	}
}

// TestCrashDeterminism: same seed + same crash instant twice must yield a
// byte-identical recovered state (the fingerprint acceptance criterion).
func TestCrashDeterminism(t *testing.T) {
	spec := testSpec()
	clean, err := RunScript(Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []sim.Cycle{4, 2} {
		at := clean.Cycles / frac
		a, err := RunScript(Config{CrashAt: at}, spec)
		if err != nil {
			t.Fatalf("run A at %d: %v", at, err)
		}
		b, err := RunScript(Config{CrashAt: at}, spec)
		if err != nil {
			t.Fatalf("run B at %d: %v", at, err)
		}
		if a.Report.Fingerprint != b.Report.Fingerprint {
			t.Fatalf("crash at %d: fingerprints differ:\n%s\n%s", at, a.Report.Fingerprint, b.Report.Fingerprint)
		}
		if a.Cycles != b.Cycles || a.RoundsApplied != b.RoundsApplied {
			t.Fatalf("crash at %d: runs diverged: %+v vs %+v", at, a, b)
		}
	}
}

// TestCrashLosesRecentWrites: crash early enough and the recovered state
// must be a strict subset of the volatile state's history — and still
// verify. Exercises the interesting middle where some publishes are
// durable and some are lost.
func TestCrashMidRun(t *testing.T) {
	spec := testSpec()
	clean, err := RunScript(Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunScript(Config{CrashAt: clean.Cycles / 2}, spec)
	if err != nil {
		t.Fatalf("mid-run crash: %v", err)
	}
	if !out.Crashed {
		t.Skip("run finished before the midpoint; nothing to check")
	}
	if out.Report.TotalPublishes == 0 {
		t.Fatal("no publishes retired by midpoint")
	}
}

func TestSweepInstants(t *testing.T) {
	in := SweepInstants(1000, 200)
	if len(in) != 200 {
		t.Fatalf("got %d instants", len(in))
	}
	if in[len(in)-1] != 1000 {
		t.Fatalf("last instant %d, want 1000", in[len(in)-1])
	}
	for i, c := range in {
		if c == 0 {
			t.Fatalf("instant %d is zero (means no-crash)", i)
		}
		if i > 0 && c < in[i-1] {
			t.Fatalf("instants not nondecreasing at %d", i)
		}
	}
	if SweepInstants(0, 10) != nil || SweepInstants(100, 0) != nil {
		t.Fatal("degenerate sweeps should be nil")
	}
}

func TestFingerprintStateStable(t *testing.T) {
	a := map[string][]byte{"x": []byte("1"), "y": []byte("2")}
	b := map[string][]byte{"y": []byte("2"), "x": []byte("1")}
	if FingerprintState(a) != FingerprintState(b) {
		t.Fatal("fingerprint depends on map iteration order")
	}
	c := map[string][]byte{"x": []byte("1"), "y": []byte("3")}
	if FingerprintState(a) == FingerprintState(c) {
		t.Fatal("fingerprint ignores values")
	}
}

func BenchmarkApplyRound(b *testing.B) {
	e, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	sessions := []*Session{e.NewSession(), e.NewSession(), e.NewSession(), e.NewSession()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]Request, len(sessions))
		for j, s := range sessions {
			batch[j] = Request{Sess: s, Op: Put, Key: fmt.Sprintf("k%d", (i+j)%32), Value: []byte("value")}
		}
		if _, err := e.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}
