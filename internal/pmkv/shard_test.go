package pmkv

import (
	"fmt"
	"sync"
	"testing"

	"persistbarriers/internal/sim"
	"persistbarriers/internal/telemetry"
)

// TestShardOfGolden pins the router's key->shard mapping: it must be a
// pure function of the key bytes, stable across processes and releases —
// a silent hash change would re-home every key and make old data
// unreachable after a restart.
func TestShardOfGolden(t *testing.T) {
	golden := map[string]int{
		"k000":    ShardOf("k000", 4),
		"k001":    ShardOf("k001", 4),
		"user:7":  ShardOf("user:7", 4),
		"":        ShardOf("", 4),
		"alpha":   ShardOf("alpha", 4),
		"beta":    ShardOf("beta", 4),
		"k000000": ShardOf("k000000", 4),
	}
	// Same key, same shard, every time ("across restarts" = pure function).
	for i := 0; i < 100; i++ {
		for k, want := range golden {
			if got := ShardOf(k, 4); got != want {
				t.Fatalf("ShardOf(%q, 4) drifted: %d then %d", k, want, got)
			}
		}
	}
	// Cross-version stability: these values were computed when the router
	// shipped; changing the hash breaks them loudly.
	pinned := map[string]int{"k000": 1, "k001": 3, "user:7": 0, "alpha": 0, "beta": 0}
	for k, want := range pinned {
		if got := ShardOf(k, 4); got != want {
			t.Fatalf("ShardOf(%q, 4) = %d, want pinned %d (router hash changed!)", k, got, want)
		}
	}
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single shard must own every key")
	}
}

// TestShardRouterBalance: the router must spread both dense sequential
// keyspaces and the skewed hot-key mix of the script generator roughly
// evenly — every shard within 2x of the ideal share.
func TestShardRouterBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, tc := range []struct {
			name string
			keys []string
		}{
			{"sequential", seqKeys(4096)},
			{"script-skew", scriptKeys(t, 4096)},
		} {
			counts := make([]int, shards)
			for _, k := range tc.keys {
				s := ShardOf(k, shards)
				if s < 0 || s >= shards {
					t.Fatalf("ShardOf(%q, %d) = %d out of range", k, shards, s)
				}
				counts[s]++
			}
			ideal := len(tc.keys) / shards
			for s, c := range counts {
				if c < ideal/2 || c > ideal*2 {
					t.Fatalf("%s at %d shards: shard %d holds %d keys, ideal %d (counts %v)",
						tc.name, shards, s, c, ideal, counts)
				}
			}
		}
	}
}

func seqKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%05d", i)
	}
	return out
}

// scriptKeys extracts the distinct keys a scripted workload touches (the
// generator's skew: few hot keys, short names).
func scriptKeys(t *testing.T, n int) []string {
	t.Helper()
	spec := ScriptSpec{Sessions: 8, Rounds: n / 8, KeySpace: n, ValueBytes: 8, Seed: 7}
	spec.fill()
	seen := make(map[string]bool)
	var out []string
	for _, round := range genScript(spec) {
		for _, op := range round {
			if !seen[op.key] {
				seen[op.key] = true
				out = append(out, op.key)
			}
		}
	}
	return out
}

// TestSingleShardReproducesRunScript: at -shards 1 the sharded scripted
// runner must feed shard 0 the byte-identical batch sequence RunScript
// feeds its engine, so the per-shard recovery fingerprint reproduces
// today's single-engine fingerprint — clean and at crash instants.
func TestSingleShardReproducesRunScript(t *testing.T) {
	spec := testSpec()
	clean, err := RunScript(Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Cycle{0, clean.Cycles / 3, clean.Cycles / 2} {
		single, err := RunScript(Config{CrashAt: at}, spec)
		if err != nil {
			t.Fatalf("RunScript at %d: %v", at, err)
		}
		sharded, err := RunShardedScript(ShardedConfig{Shards: 1, Engine: Config{CrashAt: at}}, spec)
		if err != nil {
			t.Fatalf("RunShardedScript at %d: %v", at, err)
		}
		got := sharded.PerShard[0]
		if got.Report.Fingerprint != single.Report.Fingerprint {
			t.Fatalf("crash at %d: shard-0 fingerprint %s != single-engine %s",
				at, got.Report.Fingerprint, single.Report.Fingerprint)
		}
		if got.Cycles != single.Cycles || got.RoundsApplied != single.RoundsApplied || got.Crashed != single.Crashed {
			t.Fatalf("crash at %d: runs diverged: sharded %+v vs single %+v", at, got, single)
		}
	}
}

// TestShardedCrashSweep is the sharded headline test: 200 crash instants
// fanned out to 4 shards, every shard verified (epoch order, prefix
// closure, KV atomicity, session order), and the combined fingerprint
// byte-identical on replay.
func TestShardedCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is long")
	}
	spec := testSpec()
	cfg := ShardedConfig{Shards: 4}
	clean, err := RunShardedScript(cfg, spec)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.Crashed {
		t.Fatal("clean run reported crashed")
	}
	// Sweep over the slowest shard's full span so every shard sees early,
	// middle, and late instants of its own clock.
	var span sim.Cycle
	for _, r := range clean.PerShard {
		if r.Cycles > span {
			span = r.Cycles
		}
	}
	crashed := 0
	for i, at := range SweepInstants(span, 200) {
		ccfg := cfg
		ccfg.Engine.CrashAt = at
		out, err := RunShardedScript(ccfg, spec)
		if err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
		if out.Crashed {
			crashed++
		}
		if i%20 == 0 { // replay a deterministic subset for byte-identity
			again, err := RunShardedScript(ccfg, spec)
			if err != nil {
				t.Fatalf("crash at %d (replay): %v", at, err)
			}
			if again.Fingerprint != out.Fingerprint {
				t.Fatalf("crash at %d: combined fingerprint not deterministic", at)
			}
		}
	}
	if crashed < 50 {
		t.Fatalf("only %d/200 instants crashed any shard; sweep is not exercising mid-run states", crashed)
	}
}

// TestShardedDeterminism: same spec + same fanned-out crash instant must
// yield identical per-shard and combined fingerprints across runs (shard
// goroutines run in parallel; their interleaving must not matter).
func TestShardedDeterminism(t *testing.T) {
	spec := testSpec()
	cfg := ShardedConfig{Shards: 4}
	clean, err := RunShardedScript(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	var span sim.Cycle
	for _, r := range clean.PerShard {
		if r.Cycles > span {
			span = r.Cycles
		}
	}
	cfg.Engine.CrashAt = span / 2
	a, err := RunShardedScript(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardedScript(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("combined fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	for s := range a.PerShard {
		if a.PerShard[s].Report.Fingerprint != b.PerShard[s].Report.Fingerprint {
			t.Fatalf("shard %d fingerprints differ", s)
		}
	}
}

// TestShardedStoreLiveRace drives 8 concurrent sessions against a live
// 4-shard store — the race-detector workout for the mailbox, pipelined
// committer, watermark acks, and metrics paths. Each session writes its
// own keys, so after a clean close the recovered union must hold every
// acknowledged value exactly.
func TestShardedStoreLiveRace(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 4, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const sessions, ops = 8, 24
	expect := make([]map[string]string, sessions)
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		sess := store.NewSession()
		expect[i] = make(map[string]string)
		wg.Add(1)
		go func(i int, sess *ShardedSession) {
			defer wg.Done()
			for n := 0; n < ops; n++ {
				key := fmt.Sprintf("s%d-k%d", i, n%6)
				switch n % 4 {
				case 0, 1, 2:
					val := fmt.Sprintf("v%d-%d", i, n)
					ack := store.Do(sess, Put, key, []byte(val))
					if ack.Err != nil {
						errc <- fmt.Errorf("session %d put: %w", i, ack.Err)
						return
					}
					if ack.Crashed {
						errc <- fmt.Errorf("session %d put: unexpected crash flag", i)
						return
					}
					expect[i][key] = val
				default:
					ack := store.Do(sess, Get, key, nil)
					if ack.Err != nil {
						errc <- fmt.Errorf("session %d get: %w", i, ack.Err)
						return
					}
					if want, ok := expect[i][key]; ok {
						if !ack.Resp.Found || string(ack.Resp.Value) != want {
							errc <- fmt.Errorf("session %d read own write %q: got %q found=%v, want %q",
								i, key, ack.Resp.Value, ack.Resp.Found, want)
							return
						}
					}
				}
			}
		}(i, sess)
	}
	// Concurrent metrics readers race the workers on purpose.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				store.Metrics()
				store.Crashed()
			}
		}
	}()
	wg.Wait()
	close(stop)
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	results, err := store.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	recovered := MergeRecovered(results)
	for i := range expect {
		for k, v := range expect[i] {
			if string(recovered[k]) != v {
				t.Fatalf("recovered[%q] = %q, want %q (acked write lost)", k, recovered[k], v)
			}
		}
	}
	for _, r := range results {
		if r.Crashed {
			t.Fatalf("shard %d reported crashed on a clean run", r.Shard)
		}
	}
}

// TestShardedDurabilityAck: a mutation's ack must carry a watermark that
// covers it — after the ack returns, the shard reports the publish
// durable without any drain having run.
func TestShardedDurabilityAck(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	ack := store.Do(sess, Put, "wm-key", []byte("wm-val"))
	if ack.Err != nil || ack.Crashed {
		t.Fatalf("put ack: %+v", ack)
	}
	if ack.Durable < 1 {
		t.Fatalf("ack released before the durable watermark covered the publish: %+v", ack)
	}
	m := store.Metrics()[ack.Shard]
	if m.Durable != m.Total || m.Total < 1 {
		t.Fatalf("shard %d watermark %d/%d after ack", ack.Shard, m.Durable, m.Total)
	}
	if _, err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDrainQuiesce is the drain-ordering regression test: requests
// racing BeginDrain must either be refused (ErrDraining) or be committed
// before the final barrier — an acknowledged op can never be missing from
// the verified recovery snapshot, and a refused op can never appear in it.
func TestShardedDrainQuiesce(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 4, Mailbox: 8, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 6, 40
	type outcome struct {
		key      string
		accepted bool
	}
	outcomes := make(chan outcome, writers*perWriter)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		sess := store.NewSession()
		wg.Add(1)
		go func(w int, sess *ShardedSession) {
			defer wg.Done()
			<-start
			for n := 0; n < perWriter; n++ {
				key := fmt.Sprintf("d%d-%d", w, n)
				ack := store.Do(sess, Put, key, []byte("x"))
				switch {
				case ack.Err == ErrDraining:
					outcomes <- outcome{key, false}
				case ack.Err != nil:
					t.Errorf("writer %d: unexpected error: %v", w, ack.Err)
					return
				default:
					outcomes <- outcome{key, true}
				}
			}
		}(w, sess)
	}
	close(start)
	// Begin the drain while writers are mid-flight: some ops land in
	// mailboxes before the close, some are refused.
	store.BeginDrain()
	wg.Wait()
	close(outcomes)

	results, err := store.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	recovered := MergeRecovered(results)
	accepted, refused := 0, 0
	for o := range outcomes {
		_, inState := recovered[o.key]
		if o.accepted {
			accepted++
			if !inState {
				t.Fatalf("key %q acknowledged but missing from the recovery snapshot: op landed after the final barrier", o.key)
			}
		} else {
			refused++
			if inState {
				t.Fatalf("key %q refused with ErrDraining but present in the recovery snapshot", o.key)
			}
		}
	}
	if refused == 0 {
		t.Log("drain refused no ops this run (all landed before BeginDrain); accepted =", accepted)
	}
	// Post-drain requests are always refused.
	sess := store.NewSession()
	if ack := store.Do(sess, Put, "late", []byte("x")); ack.Err != ErrDraining {
		t.Fatalf("post-drain put: got %+v, want ErrDraining", ack)
	}
}

// TestShardedStoreCrashAcks: with a crash instant fanned out, a live
// store must deliver the crashing batch's responses flagged crashed, fire
// OnCrash, and still verify every shard's crash image on Close.
func TestShardedStoreCrashAcks(t *testing.T) {
	crashes := make(chan int, 4)
	store, err := NewSharded(ShardedConfig{
		Shards:  2,
		Engine:  Config{CrashAt: 30_000},
		OnCrash: func(shard int) { crashes <- shard },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	sawCrash := false
	for n := 0; n < 4000; n++ {
		ack := store.Do(sess, Put, fmt.Sprintf("c%04d", n), []byte("v"))
		if ack.Crashed || ack.Err == ErrCrashed {
			sawCrash = true
			break
		}
		if ack.Err != nil {
			t.Fatalf("op %d: %v", n, ack.Err)
		}
	}
	if !sawCrash {
		t.Fatal("crash instant never reached under load")
	}
	select {
	case <-crashes:
	default:
		t.Fatal("OnCrash never fired")
	}
	results, err := store.Close()
	if err != nil {
		t.Fatalf("crash-image verification failed: %v", err)
	}
	anyCrashed := false
	for _, r := range results {
		anyCrashed = anyCrashed || r.Crashed
	}
	if !anyCrashed {
		t.Fatal("no shard reported crashed")
	}
}

// TestCombineFingerprints: combination is order-sensitive (shard identity
// matters) and deterministic.
func TestCombineFingerprints(t *testing.T) {
	a := CombineFingerprints([]string{"x", "y"})
	if a != CombineFingerprints([]string{"x", "y"}) {
		t.Fatal("combination not deterministic")
	}
	if a == CombineFingerprints([]string{"y", "x"}) {
		t.Fatal("combination ignores shard order")
	}
}

func TestNewShardedRejectsBadConfig(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewSharded(ShardedConfig{Shards: MaxShards + 1}); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	cfg := ShardedConfig{Shards: 2}
	cfg.Engine.Machine = SmallMachine()
	cfg.Engine.Machine.BulkEpochStores = 64
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("unsafe per-shard machine accepted")
	}
}

// TestDoSpanStampsPipeline: a span threaded through DoSpan must come
// back stamped at every pipeline stage the store owns, with wall times
// nondecreasing along the conn-side order and sim cycles attached to the
// worker-side stamps. This is the contract the server's stage tracer
// (and the flight recorder) builds on.
func TestDoSpanStampsPipeline(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()

	var span telemetry.Span
	span.Reset()
	span.Stamp(telemetry.StageConnRead)
	ack := store.DoSpan(sess, Put, "span-key", []byte("span-val"), &span)
	if ack.Err != nil || ack.Crashed {
		t.Fatalf("put ack: %+v", ack)
	}

	for st := telemetry.StageConnRead; st <= telemetry.StageDurable; st++ {
		if !span.Stamped(st) {
			t.Fatalf("stage %s not stamped: %+v", st, span)
		}
	}
	if span.Stamped(telemetry.StageAckWritten) {
		t.Fatalf("ack-written is the server's stamp, store must not set it")
	}
	// Conn-side wall clocks are sequenced within one goroutine each, so
	// order holds pairwise where a happens-before edge exists.
	for _, pair := range [][2]telemetry.Stage{
		{telemetry.StageConnRead, telemetry.StageShardRoute},
		{telemetry.StageShardRoute, telemetry.StageEnqueue},
		{telemetry.StageDequeue, telemetry.StageTranslate},
		{telemetry.StageTranslate, telemetry.StageSubmit},
		{telemetry.StageSubmit, telemetry.StageDurable},
	} {
		if span.Wall[pair[0]] > span.Wall[pair[1]] {
			t.Fatalf("wall[%s]=%d > wall[%s]=%d", pair[0], span.Wall[pair[0]], pair[1], span.Wall[pair[1]])
		}
	}
	// Worker-side stamps carry the shard's sim clock.
	for _, st := range []telemetry.Stage{telemetry.StageTranslate, telemetry.StageSubmit, telemetry.StageDurable} {
		if span.Cycle[st] < 0 {
			t.Fatalf("stage %s missing sim cycle", st)
		}
	}
	if span.Cycle[telemetry.StageDurable] < span.Cycle[telemetry.StageSubmit] {
		t.Fatalf("durable cycle %d before submit cycle %d", span.Cycle[telemetry.StageDurable], span.Cycle[telemetry.StageSubmit])
	}

	// A nil span must remain a no-op alias for Do.
	if ack := store.Do(sess, Get, "span-key", nil); ack.Err != nil || string(ack.Resp.Value) != "span-val" {
		t.Fatalf("nil-span get: %+v", ack)
	}
	if _, err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDoAsyncPipelining drives a window of async requests through one
// shared completion queue and matches acks back by tag — the access
// pattern of a pipelined server connection. Every submitted op must
// complete exactly once, durably, and the final state must reflect all
// of them.
func TestDoAsyncPipelining(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()

	const window = 32
	done := make(chan Completion, window)
	for tag := uint64(0); tag < window; tag++ {
		key := fmt.Sprintf("async-%d", tag)
		if _, err := store.DoAsync(sess, Put, key, []byte(key), nil, tag, done); err != nil {
			t.Fatalf("DoAsync(%d): %v", tag, err)
		}
	}

	seen := make(map[uint64]bool)
	for i := 0; i < window; i++ {
		c := <-done
		if seen[c.Tag] {
			t.Fatalf("tag %d completed twice", c.Tag)
		}
		seen[c.Tag] = true
		if c.Ack.Err != nil || c.Ack.Crashed {
			t.Fatalf("tag %d ack: %+v", c.Tag, c.Ack)
		}
		if c.Ack.Durable < 1 {
			t.Fatalf("tag %d released before its durable watermark: %+v", c.Tag, c.Ack)
		}
	}

	// No routing, no completion: a nil session fails synchronously.
	if _, err := store.DoAsync(nil, Get, "x", nil, nil, 99, done); err == nil {
		t.Fatal("DoAsync with nil session did not fail")
	}

	results, err := store.Close()
	if err != nil {
		t.Fatal(err)
	}
	recovered := MergeRecovered(results)
	for tag := uint64(0); tag < window; tag++ {
		key := fmt.Sprintf("async-%d", tag)
		if string(recovered[key]) != key {
			t.Fatalf("recovered[%q] = %q (acked async write lost)", key, recovered[key])
		}
	}

	// After Close the drain refuses new async submissions synchronously.
	if _, err := store.DoAsync(sess, Put, "late", nil, nil, 100, done); err != ErrDraining {
		t.Fatalf("post-drain DoAsync err = %v, want ErrDraining", err)
	}
}
