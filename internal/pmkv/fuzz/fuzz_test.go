package fuzz

import (
	"os"
	"strings"
	"testing"

	"persistbarriers/internal/pmkv"
)

// TestCaseFromBytesTotal: every input decodes to a valid, bounded case.
func TestCaseFromBytesTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{1, 2, 3},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 128},
	}
	for _, in := range inputs {
		c := CaseFromBytes(in)
		if c.Sessions < 1 || c.Sessions > 6 || c.Rounds < 1 || c.Rounds > 14 {
			t.Fatalf("case out of bounds for %v: %+v", in, c)
		}
		if c.KeySpace < 1 || c.KeySpace > 12 || c.ValueBytes < 1 || c.ValueBytes > 113 {
			t.Fatalf("case out of bounds for %v: %+v", in, c)
		}
		if c.PutPct < 20 || c.PutPct > 80 || c.GetPct < 5 || c.PutPct+c.GetPct > 99 {
			t.Fatalf("op mix out of bounds for %v: %+v", in, c)
		}
		if c.Shards != 1 && c.Shards != 2 && c.Shards != 4 {
			t.Fatalf("shards out of bounds for %v: %+v", in, c)
		}
	}
	// Distinct tails reach distinct seeds (schedule diversity).
	a := CaseFromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 100})
	b := CaseFromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 101})
	if a.Seed == b.Seed {
		t.Fatal("tail bytes do not differentiate seeds")
	}
}

// TestRunCleanCase: a small known-good case passes end to end.
func TestRunCleanCase(t *testing.T) {
	c := Case{Sessions: 3, Rounds: 6, KeySpace: 6, ValueBytes: 48, PutPct: 60, GetPct: 25, Shards: 1, Seed: 7, Frac: 128}
	if f := Run(c); f != nil {
		t.Fatalf("known-good case failed: %v\n%s", f.Err, Transcript(f))
	}
}

// TestTranscriptRendersTrace: the artifact names the case, the instant,
// the error, and every scripted op.
func TestTranscriptRendersTrace(t *testing.T) {
	c := Case{Sessions: 2, Rounds: 2, KeySpace: 3, ValueBytes: 16, PutPct: 70, GetPct: 15, Shards: 4, Seed: 9, Frac: 64}
	f := &Failure{Case: c, At: 1234, Err: os.ErrInvalid}
	tr := Transcript(f)
	for _, want := range []string{"counterexample", "sessions=2", "cycle 1234", "invalid argument", "shard"} {
		if !strings.Contains(tr, want) {
			t.Fatalf("transcript missing %q:\n%s", want, tr)
		}
	}
	ops := pmkv.ScriptOps(c.Spec())
	if len(ops) != 4 || strings.Count(tr, "\n  r")+strings.Count(tr, "\n  r") == 0 {
		t.Fatalf("expected 4 scripted ops in transcript:\n%s", tr)
	}
	if Transcript(nil) != "" || Minimize(nil) != nil {
		t.Fatal("nil failure should render empty")
	}
}

// FuzzDurableLinearizability is the randomized crash fuzzer: bytes →
// bounded workload (op mix × sessions × keyspace × shards) × crash
// instant → run with the online checker → verdict. Any rejection is
// minimized and written as an op-trace transcript (to
// $DLFUZZ_ARTIFACT when set) before failing. CI runs the smoke with
// -fuzztime 30s; run longer locally to dig.
func FuzzDurableLinearizability(f *testing.F) {
	// sessions rounds keyspace valuebytes putpct getpct shards frac
	f.Add([]byte{})                                     // minimal case
	f.Add([]byte{2, 5, 3, 2, 40, 10, 0, 128})           // mid-run crash, single shard
	f.Add([]byte{5, 11, 1, 3, 60, 60, 2, 200})          // one hot key, 4 shards, late crash
	f.Add([]byte{3, 7, 5, 1, 10, 80, 1, 32})            // read-heavy, early crash
	f.Add([]byte{5, 13, 11, 7, 70, 5, 3, 255, 9, 9, 9}) // delete-heavy tail seed
	f.Fuzz(func(t *testing.T, data []byte) {
		c := CaseFromBytes(data)
		fail := Run(c)
		if fail == nil {
			// The scripted engines verified; now the live ShardedStore with
			// the GET fast path toggled both ways must agree (identical
			// clean-drain fingerprints, checker-clean crash runs). Live
			// failures skip minimization: Minimize re-runs the scripted
			// path, which just passed.
			if lf := RunLive(c); lf != nil {
				t.Fatalf("live store (fast-path equivalence) failed:\n%s", Transcript(lf))
			}
			return
		}
		fail = Minimize(fail)
		tr := Transcript(fail)
		if path := os.Getenv("DLFUZZ_ARTIFACT"); path != "" {
			if err := os.WriteFile(path, []byte(tr), 0o644); err != nil {
				t.Logf("writing %s: %v", path, err)
			}
		}
		t.Fatalf("durable linearizability violated:\n%s", tr)
	})
}
