// Package fuzz is the randomized durable-linearizability workload
// driver: it decodes arbitrary bytes into a bounded scripted case
// (op mix × sessions × keyspace × shard count × crash instant), runs
// the case with the online checker enabled, and — when a case fails —
// minimizes it and renders an op-trace transcript for the artifact a
// CI fuzz job uploads. The native fuzz target lives in this package's
// test file; this driver is plain library code so selfchecks and tools
// can reuse it.
package fuzz

import (
	"fmt"
	"strings"

	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/sim"
)

// Case is one decoded fuzz input: a bounded workload plus crash timing.
type Case struct {
	Sessions   int
	Rounds     int
	KeySpace   int
	ValueBytes int
	PutPct     int
	GetPct     int
	Shards     int
	Seed       uint64
	// Frac positions the crash instant at Frac/256 of the clean run's
	// length; 0 means clean drain only.
	Frac int
}

// Spec renders the case as a script spec.
func (c Case) Spec() pmkv.ScriptSpec {
	return pmkv.ScriptSpec{
		Sessions:   c.Sessions,
		Rounds:     c.Rounds,
		KeySpace:   c.KeySpace,
		ValueBytes: c.ValueBytes,
		Seed:       c.Seed,
		PutPct:     c.PutPct,
		GetPct:     c.GetPct,
	}
}

// CaseFromBytes is a total decoder: every byte slice maps to a valid,
// cost-bounded case (the trace.Interleave idiom). The first eight bytes
// shape the workload; every byte, including the tail, folds into the
// seed so distinct inputs explore distinct schedules.
func CaseFromBytes(data []byte) Case {
	var b [8]byte
	copy(b[:], data)
	seed := uint64(0xcbf29ce484222325)
	for _, x := range data {
		seed ^= uint64(x)
		seed *= 0x100000001b3
	}
	put := 20 + int(b[4])%61 // 20..80
	get := 5 + int(b[5])%(95-put)
	return Case{
		Sessions:   1 + int(b[0])%6,
		Rounds:     1 + int(b[1])%14,
		KeySpace:   1 + int(b[2])%12,
		ValueBytes: 1 + (int(b[3])%8)*16,
		PutPct:     put,
		GetPct:     get,
		Shards:     []int{1, 1, 2, 4}[int(b[6])%4],
		Seed:       seed,
		Frac:       int(b[7]),
	}
}

// Failure is a case the checker rejected, pinned to the absolute crash
// instant at which it failed (0: the clean drain itself failed).
type Failure struct {
	Case Case
	At   sim.Cycle
	Err  error
}

// runAt executes the case at one absolute crash instant (0 = no crash)
// with the online checker armed, returning the verification error, if
// any, and the run's final cycle.
func runAt(c Case, at sim.Cycle) (sim.Cycle, error) {
	if c.Shards <= 1 {
		out, err := pmkv.RunScript(pmkv.Config{CrashAt: at, Check: true}, c.Spec())
		if out != nil {
			return out.Cycles, err
		}
		return 0, err
	}
	out, err := pmkv.RunShardedScript(pmkv.ShardedConfig{
		Shards: c.Shards,
		Engine: pmkv.Config{CrashAt: at, Check: true},
	}, c.Spec())
	var cycles sim.Cycle
	if out != nil {
		for _, s := range out.PerShard {
			if s != nil && s.Cycles > cycles {
				cycles = s.Cycles
			}
		}
	}
	return cycles, err
}

// Run executes the case: a clean drain first (also measuring the run
// length), then — when Frac is nonzero — a crash at Frac/256 of that
// length. It returns nil when every verdict and invariant holds.
func Run(c Case) *Failure {
	cycles, err := runAt(c, 0)
	if err != nil {
		return &Failure{Case: c, At: 0, Err: err}
	}
	if c.Frac == 0 || cycles == 0 {
		return nil
	}
	at := cycles * sim.Cycle(c.Frac) / 256
	if at == 0 {
		at = 1
	}
	if _, err := runAt(c, at); err != nil {
		return &Failure{Case: c, At: at, Err: err}
	}
	return nil
}

// liveRun replays the case's scripted ops sequentially against a live
// ShardedStore — the server-facing engine with its GET fast path — with
// the online checker armed, crashing at the given instant (0 = clean
// drain). It returns the combined recovery fingerprint and the first
// verification or checker error. Sequential issuance fixes the mutation
// order, so clean-drain fingerprints are comparable across fast-path
// configurations.
func liveRun(c Case, at sim.Cycle, disableFast bool) (string, sim.Cycle, error) {
	store, err := pmkv.NewSharded(pmkv.ShardedConfig{
		Shards:          c.Shards,
		Engine:          pmkv.Config{CrashAt: at, Check: true},
		DisableReadFast: disableFast,
	})
	if err != nil {
		return "", 0, err
	}
	sessions := make(map[int]*pmkv.ShardedSession)
	for _, op := range pmkv.ScriptOps(c.Spec()) {
		sess := sessions[op.Sess]
		if sess == nil {
			sess = store.NewSession()
			sessions[op.Sess] = sess
		}
		var value []byte
		if op.Op == pmkv.Put {
			value = make([]byte, op.ValueLen)
			for i := range value {
				value[i] = byte('a' + op.Sess%26)
			}
		}
		store.Do(sess, op.Op, op.Key, value)
	}
	results, err := store.Close()
	if err != nil {
		return "", 0, err
	}
	fps := make([]string, len(results))
	var cycles sim.Cycle
	for i, r := range results {
		if r.DL == nil {
			return "", 0, fmt.Errorf("shard %d: checker not armed", r.Shard)
		}
		if verr := r.DL.Err(); verr != nil {
			return "", 0, fmt.Errorf("shard %d: %w", r.Shard, verr)
		}
		fps[i] = r.Report.Fingerprint
		if r.Cycles > cycles {
			cycles = r.Cycles
		}
	}
	return pmkv.CombineFingerprints(fps), cycles, nil
}

// RunLive executes the case against the live store with the GET fast
// path toggled both ways: clean drains must verify, pass the checker,
// and recover byte-identical fingerprints; crashed runs (Frac != 0,
// crash instant scaled to the live clean run's length) must verify and
// pass the checker in both configurations. Returns nil when every
// equivalence holds.
func RunLive(c Case) *Failure {
	fpOn, cycles, err := liveRun(c, 0, false)
	if err != nil {
		return &Failure{Case: c, At: 0, Err: fmt.Errorf("live fast-on: %w", err)}
	}
	fpOff, _, err := liveRun(c, 0, true)
	if err != nil {
		return &Failure{Case: c, At: 0, Err: fmt.Errorf("live fast-off: %w", err)}
	}
	if fpOn != fpOff {
		return &Failure{Case: c, At: 0, Err: fmt.Errorf(
			"live clean-drain fingerprints diverge: fast-on %s, fast-off %s", fpOn, fpOff)}
	}
	if c.Frac == 0 || cycles == 0 {
		return nil
	}
	at := cycles * sim.Cycle(c.Frac) / 256
	if at == 0 {
		at = 1
	}
	if _, _, err := liveRun(c, at, false); err != nil {
		return &Failure{Case: c, At: at, Err: fmt.Errorf("live fast-on: %w", err)}
	}
	if _, _, err := liveRun(c, at, true); err != nil {
		return &Failure{Case: c, At: at, Err: fmt.Errorf("live fast-off: %w", err)}
	}
	return nil
}

// Minimize greedily shrinks a failing case while it keeps failing at
// the same absolute crash instant: rounds first (halving, then
// decrement), then sessions, keyspace, and value size. The budget bounds
// total re-runs so minimization stays cheap enough for a fuzz crash
// handler.
func Minimize(f *Failure) *Failure {
	if f == nil {
		return nil
	}
	best := *f
	budget := 64
	try := func(c Case) bool {
		if budget == 0 {
			return false
		}
		budget--
		if _, err := runAt(c, best.At); err != nil {
			best = Failure{Case: c, At: best.At, Err: err}
			return true
		}
		return false
	}
	for best.Case.Rounds > 1 {
		c := best.Case
		c.Rounds /= 2
		if !try(c) {
			break
		}
	}
	for best.Case.Rounds > 1 {
		c := best.Case
		c.Rounds--
		if !try(c) {
			break
		}
	}
	for best.Case.Sessions > 1 {
		c := best.Case
		c.Sessions--
		if !try(c) {
			break
		}
	}
	for best.Case.KeySpace > 1 {
		c := best.Case
		c.KeySpace--
		if !try(c) {
			break
		}
	}
	for best.Case.ValueBytes > 1 {
		c := best.Case
		c.ValueBytes = 1
		if !try(c) {
			break
		}
	}
	return &best
}

// Transcript renders a failure as the op-trace artifact: the case
// parameters, the crash instant, the checker's full diagnosis, and the
// deterministic op list the seed expands to.
func Transcript(f *Failure) string {
	if f == nil {
		return ""
	}
	var sb strings.Builder
	c := f.Case
	fmt.Fprintf(&sb, "pmkv durable-linearizability counterexample\n")
	fmt.Fprintf(&sb, "case: sessions=%d rounds=%d keyspace=%d valuebytes=%d put%%=%d get%%=%d shards=%d seed=%#x frac=%d/256\n",
		c.Sessions, c.Rounds, c.KeySpace, c.ValueBytes, c.PutPct, c.GetPct, c.Shards, c.Seed, c.Frac)
	fmt.Fprintf(&sb, "crash instant: cycle %d (0 = clean drain)\n", f.At)
	fmt.Fprintf(&sb, "error: %v\n", f.Err)
	sb.WriteString("op trace (round session op key valuelen [shard]):\n")
	for _, op := range pmkv.ScriptOps(c.Spec()) {
		fmt.Fprintf(&sb, "  r%02d s%d %-3v %s %d", op.Round, op.Sess, op.Op, op.Key, op.ValueLen)
		if c.Shards > 1 {
			fmt.Fprintf(&sb, " shard%d", pmkv.ShardOf(op.Key, c.Shards))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
