package pmkv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"persistbarriers/internal/sim"
)

// TestReadIndexBasics: insert/get/tombstone semantics on the bare index.
func TestReadIndexBasics(t *testing.T) {
	ri := newReadIndex()
	if v, found, rec := ri.get("a"); v != nil || found || rec != -1 {
		t.Fatalf("empty index get = (%q, %v, %d), want (nil, false, -1)", v, found, rec)
	}
	ri.insert("a", []byte("v1"), true, 0)
	ri.insert("b", []byte("v2"), true, 1)
	if v, found, rec := ri.get("a"); string(v) != "v1" || !found || rec != 0 {
		t.Fatalf("get a = (%q, %v, %d)", v, found, rec)
	}
	// Newer insert shadows the older entry.
	ri.insert("a", []byte("v3"), true, 2)
	if v, _, rec := ri.get("a"); string(v) != "v3" || rec != 2 {
		t.Fatalf("shadowed get a = (%q, rec %d), want (v3, 2)", v, rec)
	}
	// A tombstone answers found=false but keeps the record index.
	ri.insert("b", nil, false, 3)
	if v, found, rec := ri.get("b"); v != nil || found || rec != 3 {
		t.Fatalf("tombstone get b = (%q, %v, %d), want (nil, false, 3)", v, found, rec)
	}
}

// TestReadIndexPublishPrefix: publish folds exactly [published, durable)
// and is idempotent on stale watermarks.
func TestReadIndexPublishPrefix(t *testing.T) {
	ri := newReadIndex()
	recs := []*OpRecord{
		{Op: Put, Key: "x", Value: []byte("1")},
		{Op: Put, Key: "y", Value: []byte("2")},
		{Op: Delete, Key: "x"},
		{Op: Put, Key: "z", Value: []byte("3")},
	}
	ri.publish(recs, 2)
	if ri.watermark() != 2 {
		t.Fatalf("watermark = %d, want 2", ri.watermark())
	}
	if v, found, _ := ri.get("x"); string(v) != "1" || !found {
		t.Fatalf("x before delete published = (%q, %v)", v, found)
	}
	if _, found, rec := ri.get("z"); found || rec != -1 {
		t.Fatal("z visible before its publish is durable")
	}
	// Stale and duplicate watermarks are no-ops.
	ri.publish(recs, 1)
	ri.publish(recs, 2)
	if ri.watermark() != 2 {
		t.Fatalf("watermark moved backward: %d", ri.watermark())
	}
	ri.publish(recs, 4)
	if v, found, rec := ri.get("x"); v != nil || found || rec != 2 {
		t.Fatalf("x after delete = (%q, %v, %d), want tombstone rec 2", v, found, rec)
	}
	if v, _, _ := ri.get("z"); string(v) != "3" {
		t.Fatalf("z = %q, want 3", v)
	}
}

// TestReadIndexRebuildKeepsTombstones: compaction must preserve each
// key's newest state — including tombstones, which still shadow older
// live entries — and shrink the chain count to the live key count.
func TestReadIndexRebuildKeepsTombstones(t *testing.T) {
	ri := newReadIndex()
	const keys = 32
	// Hammer a small key set until rebuilds have certainly run
	// (entries > 128 and > 2*keys triggers one per insert past that).
	rec := int32(0)
	want := make(map[int]int32)
	for round := 0; round < 20; round++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("k%03d", k)
			if (round+k)%5 == 0 {
				ri.insert(key, nil, false, rec)
				want[k] = -rec // negative marks a tombstone
			} else {
				ri.insert(key, []byte(fmt.Sprintf("v%d", rec)), true, rec)
				want[k] = rec
			}
			rec++
		}
	}
	if ri.entries > 2*keys {
		t.Fatalf("rebuild never compacted: %d entries for %d keys", ri.entries, keys)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%03d", k)
		v, found, gotRec := ri.get(key)
		if w := want[k]; w < 0 {
			if found || gotRec != int(-w) {
				t.Fatalf("%s: tombstone lost in rebuild: (%q, %v, %d)", key, v, found, gotRec)
			}
		} else if !found || string(v) != fmt.Sprintf("v%d", w) || gotRec != int(w) {
			t.Fatalf("%s = (%q, %v, %d), want v%d", key, v, found, gotRec, w)
		}
	}
}

// TestReadFastPathServesDurableWrites: after a durably-acked write, a
// GET from the same session takes the fast path and returns it; a GET
// for a never-written key is an authoritative fast not-found; disabling
// the fast path routes every GET through the mailbox.
func TestReadFastPathServesDurableWrites(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	if ack := store.Do(sess, Get, "nope", nil); !ack.Fast || ack.Resp.Found || ack.Err != nil {
		t.Fatalf("fresh-store get = %+v, want fast not-found", ack)
	}
	if ack := store.Do(sess, Put, "k", []byte("v")); ack.Err != nil || ack.Fast {
		t.Fatalf("put ack = %+v (writes never take the fast path)", ack)
	}
	ack := store.Do(sess, Get, "k", nil)
	if ack.Err != nil || !ack.Fast || !ack.Resp.Found || string(ack.Resp.Value) != "v" {
		t.Fatalf("get after acked put = %+v, want fast hit with v", ack)
	}
	if ack.Durable < 1 {
		t.Fatalf("fast ack watermark = %d, want >= 1", ack.Durable)
	}
	if ack := store.Do(sess, Delete, "k", nil); ack.Err != nil {
		t.Fatalf("del: %+v", ack)
	}
	if ack := store.Do(sess, Get, "k", nil); !ack.Fast || ack.Resp.Found {
		t.Fatalf("get after acked del = %+v, want fast tombstone", ack)
	}
	m := store.Metrics()
	var hits uint64
	for _, sm := range m {
		hits += sm.FastHits
	}
	if hits < 3 {
		t.Fatalf("fast hits = %d, want >= 3", hits)
	}
	if _, err := store.Close(); err != nil {
		t.Fatal(err)
	}

	off, err := NewSharded(ShardedConfig{Shards: 2, DisableReadFast: true})
	if err != nil {
		t.Fatal(err)
	}
	osess := off.NewSession()
	off.Do(osess, Put, "k", []byte("v"))
	if ack := off.Do(osess, Get, "k", nil); ack.Fast {
		t.Fatalf("fast ack with DisableReadFast: %+v", ack)
	}
	if m := off.Metrics(); m[0].FastHits+m[1].FastHits != 0 {
		t.Fatal("fast hits counted with the path disabled")
	}
	if _, err := off.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadFastRaceStress races fast-path readers against writers (and
// their workers' index publishes) with the checker on; run under -race
// this is the memory-model guard for the lock-free index. Each reader
// session never writes, so its pending counters stay zero and every GET
// takes the fast path.
func TestReadFastRaceStress(t *testing.T) {
	for _, crash := range []sim.Cycle{0, 60_000} {
		store, err := NewSharded(ShardedConfig{
			Shards: 4,
			Engine: Config{Check: true, CrashAt: crash},
		})
		if err != nil {
			t.Fatal(err)
		}
		const writers, readers, ops, keys = 4, 4, 150, 24
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			sess := store.NewSession()
			wg.Add(1)
			go func(w int, sess *ShardedSession) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for n := 0; n < ops; n++ {
					key := fmt.Sprintf("k%03d", rng.Intn(keys))
					var ack ShardAck
					if rng.Intn(5) == 0 {
						ack = store.Do(sess, Delete, key, nil)
					} else {
						ack = store.Do(sess, Put, key, []byte(fmt.Sprintf("w%d-%d", w, n)))
					}
					if ack.Err != nil || ack.Crashed {
						return // draining or crashed: stop writing
					}
				}
			}(w, sess)
		}
		for r := 0; r < readers; r++ {
			sess := store.NewSession()
			wg.Add(1)
			go func(r int, sess *ShardedSession) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + r)))
				for n := 0; n < ops*2; n++ {
					key := fmt.Sprintf("k%03d", rng.Intn(keys))
					ack := store.Do(sess, Get, key, nil)
					if ack.Err != nil || ack.Crashed {
						return
					}
				}
			}(r, sess)
		}
		wg.Wait()
		results, err := store.Close()
		if err != nil {
			t.Fatalf("crash=%d: %v", crash, err)
		}
		for _, res := range results {
			if res.DL == nil {
				t.Fatalf("crash=%d shard %d: checker off", crash, res.Shard)
			}
			if res.DL.Err() != nil {
				t.Fatalf("crash=%d shard %d: %v", crash, res.Shard, res.DL.Err())
			}
		}
	}
}

// liveRun drives spec's scripted ops sequentially against a live store
// and returns the combined recovery fingerprint, the recovered state,
// and the total fast-hit count. Sequential issuance makes the mutation
// order — hence the clean-drain recovered state — identical across
// configurations, which is what lets the metamorphic test compare
// fingerprints byte-for-byte.
func liveRun(t *testing.T, cfg ShardedConfig, spec ScriptSpec, crash sim.Cycle) (string, map[string][]byte, uint64) {
	t.Helper()
	cfg.Engine.Check = true
	cfg.Engine.CrashAt = crash
	store, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sessions := make(map[int]*ShardedSession)
	for _, op := range ScriptOps(spec) {
		sess := sessions[op.Sess]
		if sess == nil {
			sess = store.NewSession()
			sessions[op.Sess] = sess
		}
		var value []byte
		if op.Op == Put {
			value = bytes.Repeat([]byte{byte('a' + op.Sess%26)}, op.ValueLen)
		}
		store.Do(sess, op.Op, op.Key, value)
	}
	results, err := store.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	fps := make([]string, len(results))
	var hits uint64
	for i, r := range results {
		if r.DL == nil || r.DL.Err() != nil {
			t.Fatalf("shard %d verdict: %v", r.Shard, r.DL.Err())
		}
		fps[i] = r.Report.Fingerprint
	}
	for _, m := range store.Metrics() {
		hits += m.FastHits
	}
	return CombineFingerprints(fps), MergeRecovered(results), hits
}

// TestReadFastMetamorphic is the equivalence pin: the same workload with
// the fast path on and off must recover byte-identical state from a
// clean drain (GETs never mutate, whichever path serves them) and pass
// the durable-linearizability checker either way; under a crash the
// recovered prefixes may differ (timing) but both verdicts must hold.
func TestReadFastMetamorphic(t *testing.T) {
	spec := ScriptSpec{Sessions: 4, Rounds: 30, KeySpace: 12, Seed: 99, PutPct: 40, GetPct: 45}
	for _, shards := range []int{1, 4} {
		on := ShardedConfig{Shards: shards}
		off := ShardedConfig{Shards: shards, DisableReadFast: true}

		fpOn, recOn, hitsOn := liveRun(t, on, spec, 0)
		fpOff, recOff, hitsOff := liveRun(t, off, spec, 0)
		if hitsOn == 0 {
			t.Fatalf("shards=%d: fast path never hit — the test exercises nothing", shards)
		}
		if hitsOff != 0 {
			t.Fatalf("shards=%d: %d fast hits with the path disabled", shards, hitsOff)
		}
		if fpOn != fpOff {
			t.Fatalf("shards=%d: clean-drain fingerprints diverge: fast-on %s, fast-off %s",
				shards, fpOn, fpOff)
		}
		if len(recOn) != len(recOff) {
			t.Fatalf("shards=%d: recovered sizes diverge: %d vs %d", shards, len(recOn), len(recOff))
		}
		for k, v := range recOn {
			if !bytes.Equal(v, recOff[k]) {
				t.Fatalf("shards=%d: recovered[%q] diverges: %q vs %q", shards, k, v, recOff[k])
			}
		}

		// Crash variant: liveRun fails the test itself on any verification
		// or checker rejection; fingerprints legitimately differ here.
		liveRun(t, on, spec, 40_000)
		liveRun(t, off, spec, 40_000)
	}
}

// BenchmarkReadFastPath measures the GET cost on the three read paths
// the fast-path design produces: index hits (lock-free, no mailbox),
// forced fallbacks (DisableReadFast — every GET rides a group commit),
// and a 95/5 read/write mix on the fast-path store (the headline
// workload of the PR). ops/sec is logical operations over wall time.
func BenchmarkReadFastPath(b *testing.B) {
	const keyCount = 256
	keys := make([]string, keyCount)
	for k := range keys {
		keys[k] = fmt.Sprintf("k%06d", k)
	}
	setup := func(b *testing.B, disable bool) (*ShardedStore, *ShardedSession) {
		b.Helper()
		store, err := NewSharded(ShardedConfig{Shards: 4, DisableReadFast: disable})
		if err != nil {
			b.Fatal(err)
		}
		sess := store.NewSession()
		for _, k := range keys {
			if ack := store.Do(sess, Put, k, []byte("warmval-benchmark")); ack.Err != nil {
				b.Fatal(ack.Err)
			}
		}
		return store, sess
	}
	close := func(b *testing.B, store *ShardedStore) {
		b.Helper()
		b.StopTimer()
		if _, err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("hit", func(b *testing.B) {
		store, sess := setup(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ack := store.Do(sess, Get, keys[i%keyCount], nil)
			if ack.Err != nil || !ack.Fast {
				b.Fatalf("expected fast hit: %+v", ack)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		close(b, store)
	})

	b.Run("fallback", func(b *testing.B) {
		store, sess := setup(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ack := store.Do(sess, Get, keys[i%keyCount], nil)
			if ack.Err != nil || ack.Fast {
				b.Fatalf("expected mailbox read: %+v", ack)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		close(b, store)
	})

	b.Run("mixed95", func(b *testing.B) {
		store, sess := setup(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ack ShardAck
			if i%20 == 19 {
				ack = store.Do(sess, Put, keys[i%keyCount], []byte("mixed-write-value"))
			} else {
				ack = store.Do(sess, Get, keys[i%keyCount], nil)
			}
			if ack.Err != nil {
				b.Fatal(ack.Err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		close(b, store)
	})
}
