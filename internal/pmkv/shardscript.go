// Deterministic scripted driver for the sharded store: the same request
// stream as RunScript, routed through the shard router, with each shard's
// engine driven round-by-round exactly like the single-engine harness.
// Shard engines never observe each other's timing, so running them on
// parallel goroutines (or under any sweep -j setting) yields the same
// per-shard fingerprints as running them serially — and a single-shard
// run feeds shard 0 the identical batch sequence RunScript would, so its
// fingerprint reproduces the unsharded engine's byte for byte.
package pmkv

import (
	"fmt"
	"sync"
)

// ShardedRunResult is the outcome of one scripted sharded run.
type ShardedRunResult struct {
	// PerShard holds each shard's RunResult (crash status, cycles, rounds
	// applied, verification report, recovered state), indexed by shard.
	PerShard []*RunResult
	// Crashed reports whether any shard hit its crash instant.
	Crashed bool
	// Fingerprint is the canonical combination of the per-shard recovery
	// fingerprints (in shard order).
	Fingerprint string
	// Recovered is the union of per-shard recovered states (shards
	// partition the keyspace, so the merge is disjoint).
	Recovered map[string][]byte
}

// DurablePublishes sums the per-shard durable publish counts.
func (r *ShardedRunResult) DurablePublishes() int {
	n := 0
	for _, s := range r.PerShard {
		n += s.Report.DurablePublishes
	}
	return n
}

// TotalPublishes sums the per-shard retired publish counts.
func (r *ShardedRunResult) TotalPublishes() int {
	n := 0
	for _, s := range r.PerShard {
		n += s.Report.TotalPublishes
	}
	return n
}

// RunShardedScript drives fresh shard engines through the scripted load.
// The crash instant (cfg.Engine.CrashAt) fans out: every shard loses
// power at that cycle of its own clock; shards that finish the script
// first simply drain clean. Each shard is closed, verified, and its
// recovered state reconstructed; any invariant violation is returned as
// an error (lowest shard index wins, deterministically).
func RunShardedScript(cfg ShardedConfig, spec ScriptSpec) (*ShardedRunResult, error) {
	cfg.fill()
	spec.fill()
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("pmkv: Shards must be in 1..%d, got %d", MaxShards, cfg.Shards)
	}
	engines := make([]*Engine, cfg.Shards)
	for i := range engines {
		ecfg := cfg.Engine
		if cfg.ConfigureShard != nil {
			cfg.ConfigureShard(i, &ecfg)
		}
		eng, err := New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("pmkv: shard %d: %w", i, err)
		}
		engines[i] = eng
	}
	// Session-major creation so every shard binds session i to the same
	// core slot a single engine would.
	sessions := make([][]*Session, spec.Sessions)
	for i := range sessions {
		sessions[i] = make([]*Session, cfg.Shards)
		for s := range engines {
			sessions[i][s] = engines[s].NewSession()
		}
	}
	rounds := genScript(spec)

	out := &ShardedRunResult{PerShard: make([]*RunResult, cfg.Shards)}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for s := range engines {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			out.PerShard[s], errs[s] = runShardScript(engines[s], s, cfg.Shards, sessions, rounds)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return out, fmt.Errorf("pmkv: shard %d: %w", s, err)
		}
	}
	fps := make([]string, cfg.Shards)
	for s, r := range out.PerShard {
		fps[s] = r.Report.Fingerprint
		out.Crashed = out.Crashed || r.Crashed
	}
	out.Fingerprint = CombineFingerprints(fps)
	out.Recovered = make(map[string][]byte)
	for _, r := range out.PerShard {
		for k, v := range r.Recovered {
			out.Recovered[k] = v
		}
	}
	return out, nil
}

// runShardScript replays the rounds owned by one shard on its engine.
// Rounds with no op routed here still Apply an empty batch, so the
// shard's clock advances through the same per-round gap cadence and
// crash instants land in comparable execution phases across shards.
func runShardScript(e *Engine, shard, shards int, sessions [][]*Session, rounds [][]scriptOp) (*RunResult, error) {
	out := &RunResult{}
	batch := make([]Request, 0, len(sessions))
	for _, round := range rounds {
		batch = batch[:0]
		for i, op := range round {
			if ShardOf(op.key, shards) != shard {
				continue
			}
			batch = append(batch, Request{Sess: sessions[i][shard], Op: op.op, Key: op.key, Value: op.value})
		}
		_, err := e.Apply(batch)
		if err == ErrCrashed {
			out.Crashed = true
			break
		}
		if err != nil {
			return out, err
		}
		out.RoundsApplied++
	}
	res, err := e.Close()
	if err != nil {
		return out, err
	}
	out.Cycles = e.Now()
	rep, err := e.Verify(res)
	out.Report = rep
	if err != nil {
		return out, err
	}
	out.Recovered, err = e.RecoveredState(res)
	if err != nil {
		return out, err
	}
	out.DL = e.CheckDL(res)
	if out.DL != nil {
		if err := out.DL.Err(); err != nil {
			return out, fmt.Errorf("pmkv: durable linearizability: %w", err)
		}
	}
	return out, nil
}
