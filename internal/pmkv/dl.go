// Durable-linearizability bridge: the engine's group-commit read
// snapshot (which publish answered each read), the observation hooks
// into internal/dlcheck, and the translation of a machine result into
// the checker's image — the per-bucket publish commit order with
// per-publish durability flags.
package pmkv

import (
	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/machine"
)

// batchWrite is one session's last write to a key within the current
// group commit (the value its own later reads in the batch observe).
type batchWrite struct {
	val   []byte
	found bool
	rec   int
}

// batchKey is the per-key overlay for the current group commit: the
// pre-batch snapshot every other session's reads observe, plus the
// per-session writes for read-your-own-batch-writes.
type batchKey struct {
	oldVal   []byte
	oldFound bool
	oldRec   int
	bySess   map[int]batchWrite
}

// lastRecOf reports the last mutation record index for a key (-1: the
// key has never been mutated).
func (e *Engine) lastRecOf(key string) int {
	if r, ok := e.lastRec[key]; ok {
		return r
	}
	return -1
}

// observedRead answers a read under the group-commit snapshot semantics:
// the session's own write in the current batch if it made one, else the
// pre-batch state. rec identifies the publish whose value (or tombstone)
// the response carries (-1: never written), feeding the tracker's
// happens-before edge. Caller holds e.mu.
func (e *Engine) observedRead(sess int, key string) (val []byte, found bool, rec int) {
	if bk, ok := e.batch[key]; ok {
		if w, ok := bk.bySess[sess]; ok {
			return w.val, w.found, w.rec
		}
		return bk.oldVal, bk.oldFound, bk.oldRec
	}
	val, found = e.kv[key]
	return val, found, e.lastRecOf(key)
}

// batchFor returns the key's overlay for the current commit window,
// capturing the pre-window snapshot on first touch. Entries come from
// the freelist clearBatchLocked refills, so the steady-state window
// allocates nothing. Caller holds e.mu.
func (e *Engine) batchFor(key string) *batchKey {
	bk, ok := e.batch[key]
	if !ok {
		if n := len(e.bkFree); n > 0 {
			bk = e.bkFree[n-1]
			e.bkFree = e.bkFree[:n-1]
		} else {
			bk = &batchKey{bySess: make(map[int]batchWrite)}
		}
		bk.oldVal, bk.oldFound = e.kv[key]
		bk.oldRec = e.lastRecOf(key)
		e.batch[key] = bk
	}
	return bk
}

// DL exposes the engine's durable-linearizability tracker (nil unless
// Config.Check); callers hand it ack watermarks, and its nil-receiver
// methods make every hook free when checking is off.
func (e *Engine) DL() *dlcheck.Tracker { return e.dl }

// ObserveFastRead records a fast-path read observation with the tracker:
// the session's response carried the value (or tombstone) of mutation
// record rec (-1: no durable publish for the key). The tracker locks
// internally, so this takes no engine lock and is safe from any caller
// goroutine — which is the point: fast-path GETs never enter the
// engine's single-writer pipeline, but the checker still sees them.
func (e *Engine) ObserveFastRead(sess int, key string, rec int) {
	e.dl.ObserveRead(sess, key, rec)
}

// DLImage translates a machine result into the checker's image: every
// retired publish, grouped per bucket in head-store commit (version)
// order, flagged durable when its head version reached NVRAM. The
// cross-bucket interleaving is immaterial to the checker — only each
// bucket's chain order carries edges — so buckets are emitted in
// ascending bucket order for determinism.
func (e *Engine) DLImage(res *machine.Result) *dlcheck.Image {
	e.mu.Lock()
	records := e.records
	buckets := e.cfg.Buckets
	e.mu.Unlock()

	recIdx := make(map[*OpRecord]int, len(records))
	for i, r := range records {
		recIdx[r] = i
	}
	byBucket, total := publishesByBucket(records, res.TokenVersions, buckets)
	img := &dlcheck.Image{Order: make([]dlcheck.Publish, 0, total)}
	for _, recs := range byBucket {
		for _, p := range recs {
			img.Order = append(img.Order, dlcheck.Publish{
				Rec:     recIdx[p.r],
				Bucket:  p.r.Bucket,
				Durable: durable(res.Image, p.r.Head, p.v),
			})
		}
	}
	return img
}

// CheckDL decides durable linearizability of a machine result against
// everything the tracker observed online. Nil when checking is off.
// Publishes the tracker saw but the image omits (never retired before
// the crash) count as lost, which is exactly right: their sessions'
// durable prefixes must end before them.
func (e *Engine) CheckDL(res *machine.Result) *dlcheck.Verdict {
	if e.dl == nil {
		return nil
	}
	return e.dl.Check(e.DLImage(res))
}
