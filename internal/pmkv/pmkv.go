// Package pmkv is a durable key-value engine built on the epoch-persistency
// runtime: every Put/Delete is translated online into the paper's Figure 10
// discipline — write the entry, persist barrier, publish the bucket-head
// pointer, persist barrier — and executed on the simulated multicore through
// the machine's streaming program source. Client sessions multiplex onto
// cores, so concurrent sessions sharing a bucket produce genuine
// inter-thread dependences (IDT edges) in the epoch hardware.
//
// The engine does not simulate data bytes (the machine is version-based);
// it keeps the logical key/value state itself and correlates logical writes
// with the durable image through store tokens: each entry line and each
// publish store is tagged, the machine reports the committed version per
// tag, and recovery reconstructs exactly the prefix of publishes whose
// versions reached NVRAM. Verify checks the §5 invariants (epoch order,
// prefix closure) plus KV-level atomicity: no durable bucket head may name
// a torn entry, and each session's durable publishes form a prefix of its
// program order.
package pmkv

import (
	"fmt"
	"slices"
	"sync"

	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/machine"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// Address-space layout. Bucket heads and entries live well below the
// machine's checkpoint region (1<<40) and far from the low addresses the
// canned workloads use.
const (
	headBase  = mem.Addr(0x2000_0000)
	entryBase = mem.Addr(0x4000_0000)
)

// Op enumerates client operations.
type Op uint8

const (
	// Get reads a key (loads only; persists nothing).
	Get Op = iota
	// Put writes a key (entry stores, barrier, publish, barrier).
	Put
	// Delete unlinks a key (publish of a tombstone head, barrier).
	Delete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "del"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Config sizes the engine.
type Config struct {
	// Machine is the simulated multicore. Zero value selects SmallMachine.
	Machine machine.Config
	// Buckets is the hash-table bucket count (default 64).
	Buckets int
	// CrashAt, when nonzero, is the cycle at which the simulated machine
	// loses power: execution never advances past it, and Close returns the
	// NVRAM image as of that instant.
	CrashAt sim.Cycle
	// BatchGap is simulated time between request batches (background
	// persist machinery keeps running during the gap). Default 200.
	BatchGap sim.Cycle
	// Check enables the online durable-linearizability tracker
	// (internal/dlcheck): every read observation, publish, and
	// durability-gated ack is recorded, and CheckDL decides the verdict
	// against the final image. Off by default; when off the observation
	// hooks are nil-receiver no-ops costing zero allocations.
	Check bool
	// RecoveryWorkers bounds the per-bucket replay parallelism of
	// RecoveredState and Verify (buckets are disjoint, so their publish
	// prefixes replay concurrently). 0 means GOMAXPROCS; 1 forces the
	// serial reference path.
	RecoveryWorkers int
}

// SmallMachine is a 4-core LB++ machine suitable for interactive use and
// tests; history recording is on because recovery verification needs it.
func SmallMachine() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.LLCBanks = 4
	cfg.LLCSets = 64
	cfg.Model = machine.LB
	cfg.IDT = true
	cfg.PF = true
	cfg.RecordHistory = true
	return cfg
}

func (c *Config) fill() {
	if c.Machine.Cores == 0 {
		c.Machine = SmallMachine()
	}
	c.Machine.RecordHistory = true
	if c.Buckets <= 0 {
		c.Buckets = 64
	}
	if c.BatchGap == 0 {
		c.BatchGap = 200
	}
}

// Session is one client's ordered stream of operations. Sessions map onto
// cores round-robin; a session's requests execute in program order on its
// core, so its publishes are totally ordered by per-core epoch order.
type Session struct {
	ID   int
	Core int
}

// Request is one client operation.
type Request struct {
	Sess  *Session
	Op    Op
	Key   string
	Value []byte
}

// Response answers a Request from the engine's volatile state (visibility
// is immediate; durability is what Verify and RecoveredState reason about).
// Within one commit window — the Submit batches fed since the last
// completed PumpRetire — reads are snapshot-consistent: a Get (or a
// Delete's Found) observes the state as of window admission plus the
// session's own writes in the window — never another session's
// same-window write. Same-window ops are concurrent in simulated time
// (none has executed until the pump runs), and the machine only orders a
// reader's later persists after a foreign write it observed when the
// observation crosses a window boundary (the head-line load hits the
// writer's unpersisted epoch), so serving foreign same-window writes
// would be a dirty read that durable linearizability cannot honor.
type Response struct {
	Found bool
	Value []byte
}

// OpRecord retains what the engine needs to audit one mutating operation
// against the crash image.
type OpRecord struct {
	Sess, Seq int
	Core      int
	Op        Op
	Key       string
	Bucket    int
	Head      mem.Line
	// PubToken tags the head-pointer store; EntryTokens/EntryLines tag the
	// write-entry stores (empty for Delete).
	PubToken    uint64
	EntryTokens []uint64
	EntryLines  []mem.Line
	// Value is the value this publish installs (nil for Delete). Recovery
	// replays each bucket's durable publishes, in the order their head
	// stores committed, applying these deltas — the machine's commit order
	// can differ from translate order for same-batch publishes, so a
	// translate-time snapshot would misstate the durable contents.
	Value []byte
}

// Engine is the durable KV store. All methods are safe for concurrent use;
// the simulated machine itself is single-threaded and serialized by mu.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	m   *machine.Machine

	kv      map[string][]byte     // volatile logical state
	entries map[string][]mem.Line // current entry lines per key (for Get loads)
	lastRec map[string]int        // last mutation record index per key
	batch   map[string]*batchKey  // current commit window's write overlay
	bkFree  []*batchKey           // overlay freelist (cleared entries, reused next window)

	// opBuf is the shared translation buffer: Feed copies the ops it is
	// handed, so one builder (reset per request) serves every translate
	// without allocating.
	opBuf trace.Builder

	// Arenas for the per-mutation state the engine retains for the whole
	// run (value bytes, audit records, entry lines/tokens). Retention
	// forever rules out pooling; chunked bump allocation amortizes the
	// per-op cost to ~zero instead.
	valArena  []byte
	recArena  []OpRecord
	lineArena []mem.Line
	tokArena  []uint64

	// dl observes ops for durable-linearizability checking; nil unless
	// cfg.Check (nil-receiver methods make disabled hooks free).
	dl *dlcheck.Tracker

	nextToken uint64
	nextEntry mem.Addr
	sessions  int
	seqs      map[int]int // per-session sequence numbers

	records []*OpRecord
	// durableCursor is the durable-prefix watermark: every record below it
	// has its publish store durable in NVRAM. It only moves forward, one
	// cheap point query per record, so polling it between batches is O(new
	// durability) rather than O(history).
	durableCursor int

	crashed bool
	closed  bool
}

// New builds an engine on a fresh streaming machine. The engine's token
// correlation requires that a persist barrier drains every posted store
// before the next op issues (a session's publish stores rewrite its bucket
// heads, and two tagged stores to one line must never be in flight at
// once), so the machine must use the LB model with programmer barriers:
// NP ignores barriers and bulk-epoch mode makes them transparent.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	if cfg.Machine.Model != machine.LB {
		return nil, fmt.Errorf("pmkv: machine model %v unsupported: barriers must drain posted stores (use machine.LB)", cfg.Machine.Model)
	}
	if cfg.Machine.BulkEpochStores > 0 {
		return nil, fmt.Errorf("pmkv: bulk-epoch mode (BulkEpochStores=%d) makes programmer barriers transparent; publish stores to one bucket head would overlap", cfg.Machine.BulkEpochStores)
	}
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if err := m.StartStream(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		m:         m,
		kv:        make(map[string][]byte),
		entries:   make(map[string][]mem.Line),
		lastRec:   make(map[string]int),
		batch:     make(map[string]*batchKey),
		nextEntry: entryBase,
		seqs:      make(map[int]int),
	}
	if cfg.Check {
		e.dl = dlcheck.New()
	}
	return e, nil
}

// NewSession opens a client session, pinning it to a core round-robin.
func (e *Engine) NewSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Session{ID: e.sessions, Core: e.sessions % e.cfg.Machine.Cores}
	e.sessions++
	return s
}

// Cores reports the machine's core count.
func (e *Engine) Cores() int { return e.cfg.Machine.Cores }

// fnv1a hashes a key to its bucket.
func (e *Engine) bucketOf(key string) int {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return int(h % uint64(e.cfg.Buckets))
}

func (e *Engine) headLine(bucket int) mem.Line {
	return mem.LineOf(headBase + mem.Addr(bucket)*mem.LineSize)
}

// Arena chunk sizes: large enough that chunk turnover is rare under the
// shard workers' steady state, small enough that an idle engine wastes
// little.
const (
	valArenaChunk = 64 << 10
	recArenaChunk = 256
	idxArenaChunk = 1024
)

// arenaBytes carves n bytes off the value arena. The returned slice has
// exactly capacity n (full slice expression), so an append by the caller
// can never bleed into a neighbouring value.
func (e *Engine) arenaBytes(n int) []byte {
	if len(e.valArena)+n > cap(e.valArena) {
		c := valArenaChunk
		if n > c {
			c = n
		}
		e.valArena = make([]byte, 0, c)
	}
	off := len(e.valArena)
	e.valArena = e.valArena[:off+n]
	return e.valArena[off : off+n : off+n]
}

// arenaRecord carves one OpRecord off the record arena.
func (e *Engine) arenaRecord() *OpRecord {
	if len(e.recArena) == cap(e.recArena) {
		e.recArena = make([]OpRecord, 0, recArenaChunk)
	}
	e.recArena = e.recArena[:len(e.recArena)+1]
	return &e.recArena[len(e.recArena)-1]
}

// arenaLines carves n entry lines off the line arena.
func (e *Engine) arenaLines(n int) []mem.Line {
	if len(e.lineArena)+n > cap(e.lineArena) {
		c := idxArenaChunk
		if n > c {
			c = n
		}
		e.lineArena = make([]mem.Line, 0, c)
	}
	off := len(e.lineArena)
	e.lineArena = e.lineArena[:off+n]
	return e.lineArena[off : off+n : off+n]
}

// arenaTokens carves n store tokens off the token arena.
func (e *Engine) arenaTokens(n int) []uint64 {
	if len(e.tokArena)+n > cap(e.tokArena) {
		c := idxArenaChunk
		if n > c {
			c = n
		}
		e.tokArena = make([]uint64, 0, c)
	}
	off := len(e.tokArena)
	e.tokArena = e.tokArena[:off+n]
	return e.tokArena[off : off+n : off+n]
}

// entryLinesFor allocates fresh lines for a value (at least one; one line
// per 64 value bytes). Entries are never rewritten — each Put gets new
// lines, like a log-structured heap — so tagged entry stores trivially
// satisfy the one-tagged-store-per-line constraint.
func (e *Engine) entryLinesFor(value []byte) []mem.Line {
	n := (len(value) + int(mem.LineSize) - 1) / int(mem.LineSize)
	if n == 0 {
		n = 1
	}
	lines := e.arenaLines(n)
	for i := range lines {
		lines[i] = mem.LineOf(e.nextEntry)
		e.nextEntry += mem.LineSize
	}
	return lines
}

// translate turns one request into a per-core op stream, updates the
// volatile state, and records the audit trail for mutations. The
// returned ops live in the engine's shared builder and are valid only
// until the next translate — the caller must hand them to Feed (which
// copies) before translating the next request.
func (e *Engine) translate(req Request) (Response, []trace.Op, error) {
	if req.Sess == nil {
		return Response{}, nil, fmt.Errorf("pmkv: request without session")
	}
	bucket := e.bucketOf(req.Key)
	head := e.headLine(bucket)
	seq := e.seqs[req.Sess.ID]
	e.seqs[req.Sess.ID]++

	b := e.opBuf.Reset()
	switch req.Op {
	case Get:
		b.Load(head.Addr())
		val, found, obsRec := e.observedRead(req.Sess.ID, req.Key)
		// Loads target the key's newest entry lines (the op stream is
		// independent of which snapshot answers the read, keeping machine
		// timing — and every existing fingerprint — unchanged).
		for _, l := range e.entries[req.Key] {
			b.Load(l.Addr())
		}
		b.TxEnd()
		e.dl.ObserveRead(req.Sess.ID, req.Key, obsRec)
		return Response{Found: found, Value: val}, b.Ops(), nil

	case Put:
		val := e.arenaBytes(len(req.Value))
		copy(val, req.Value)
		rec := e.arenaRecord()
		*rec = OpRecord{
			Sess: req.Sess.ID, Seq: seq, Core: req.Sess.Core,
			Op: Put, Key: req.Key, Bucket: bucket, Head: head,
			Value: val,
		}
		rec.EntryLines = e.entryLinesFor(val)
		rec.EntryTokens = e.arenaTokens(len(rec.EntryLines))
		b.Load(head.Addr())
		for i, l := range rec.EntryLines {
			e.nextToken++
			rec.EntryTokens[i] = e.nextToken
			b.StoreTagged(l.Addr(), e.nextToken)
		}
		b.Barrier()
		e.nextToken++
		rec.PubToken = e.nextToken
		b.StoreTagged(head.Addr(), rec.PubToken)
		b.Barrier()
		b.TxEnd()

		recIdx := len(e.records)
		bk := e.batchFor(req.Key)
		bk.bySess[req.Sess.ID] = batchWrite{val: val, found: true, rec: recIdx}
		e.kv[req.Key] = val
		e.entries[req.Key] = rec.EntryLines
		e.lastRec[req.Key] = recIdx
		e.records = append(e.records, rec)
		e.dl.ObserveWrite(req.Sess.ID, recIdx, req.Key)
		return Response{Found: true, Value: val}, b.Ops(), nil

	case Delete:
		_, found, obsRec := e.observedRead(req.Sess.ID, req.Key)
		rec := e.arenaRecord()
		*rec = OpRecord{
			Sess: req.Sess.ID, Seq: seq, Core: req.Sess.Core,
			Op: Delete, Key: req.Key, Bucket: bucket, Head: head,
		}
		b.Load(head.Addr())
		e.nextToken++
		rec.PubToken = e.nextToken
		b.StoreTagged(head.Addr(), rec.PubToken)
		b.Barrier()
		b.TxEnd()

		recIdx := len(e.records)
		bk := e.batchFor(req.Key)
		bk.bySess[req.Sess.ID] = batchWrite{found: false, rec: recIdx}
		delete(e.kv, req.Key)
		delete(e.entries, req.Key)
		e.lastRec[req.Key] = recIdx
		e.records = append(e.records, rec)
		e.dl.ObserveRead(req.Sess.ID, req.Key, obsRec)
		e.dl.ObserveWrite(req.Sess.ID, recIdx, req.Key)
		return Response{Found: found}, b.Ops(), nil

	default:
		return Response{}, nil, fmt.Errorf("pmkv: unknown op %v", req.Op)
	}
}

// crashLimit is the pump limit: the crash instant, or forever.
func (e *Engine) crashLimit() sim.Cycle {
	if e.cfg.CrashAt == 0 {
		return sim.MaxCycle
	}
	return e.cfg.CrashAt
}

// Apply executes a batch of requests as one group commit: every request's
// ops are fed to its session's core before the machine advances, so
// requests in one batch run concurrently in simulated time and contend on
// shared bucket heads exactly like threads of Figure 10. It returns one
// response per request (answered from volatile state, which survives even
// if the machine crashes mid-batch — durability is judged later).
func (e *Engine) Apply(batch []Request) ([]Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	resps, err := e.submitLocked(nil, batch)
	if err != nil {
		return nil, err
	}
	if err := e.pumpRetireLocked(); err != nil {
		if err == ErrCrashed {
			return resps, ErrCrashed
		}
		return nil, err
	}
	if err := e.stepGapLocked(); err != nil {
		return resps, err
	}
	return resps, nil
}

// Submit translates a batch and feeds it to the cores without advancing
// the machine — the front half of a group commit. A sharded worker
// submits batch k+1 while batch k's persist barriers are still draining;
// PumpRetire then advances the clock. Responses reflect the volatile
// state immediately.
func (e *Engine) Submit(batch []Request) ([]Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(nil, batch)
}

// SubmitAppend is Submit appending responses to dst, so a pipelined
// committer can reuse one response buffer per in-flight batch instead of
// allocating a fresh slice per commit.
func (e *Engine) SubmitAppend(dst []Response, batch []Request) ([]Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(dst, batch)
}

func (e *Engine) submitLocked(dst []Response, batch []Request) ([]Response, error) {
	if e.closed {
		return nil, fmt.Errorf("pmkv: engine closed")
	}
	if e.crashed {
		return nil, ErrCrashed
	}
	// Reads in this batch observe the commit window's admission snapshot
	// plus their own session's writes in the window (see Response). The
	// overlay spans every batch fed since the last completed pump —
	// pumpRetireLocked resets it, because that is when the fed writes
	// stop being concurrent-in-flight and become pre-window state.
	resps := dst
	for _, req := range batch {
		resp, ops, err := e.translate(req)
		if err != nil {
			return nil, err
		}
		resps = append(resps, resp)
		if err := e.m.Feed(req.Sess.Core, ops); err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// clearBatchLocked ends the commit window: overlay entries are scrubbed
// and returned to the freelist so the next window's batchFor calls
// allocate nothing.
func (e *Engine) clearBatchLocked() {
	if len(e.batch) == 0 {
		return
	}
	for _, bk := range e.batch {
		clear(bk.bySess)
		bk.oldVal = nil
		e.bkFree = append(e.bkFree, bk)
	}
	clear(e.batch)
}

// PumpRetire advances the machine until every fed op has retired (or the
// crash instant / a deadlock intervenes). Retirement is the ack point of
// the pipelined commit: visibility is settled, while the epochs holding
// the batch's publishes keep persisting in the background.
func (e *Engine) PumpRetire() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("pmkv: engine closed")
	}
	if e.crashed {
		return ErrCrashed
	}
	return e.pumpRetireLocked()
}

func (e *Engine) pumpRetireLocked() error {
	limit := e.crashLimit()
	if !e.m.PumpUntilIdle(limit) {
		if e.m.Deadlocked() {
			return fmt.Errorf("pmkv: machine deadlocked at cycle %d", e.m.Now())
		}
		e.crashed = true
		return ErrCrashed
	}
	// Every fed op retired: the commit window is over, its writes are
	// pre-window state for whatever is submitted next.
	e.clearBatchLocked()
	return nil
}

// StepGap lets the background persist machinery run for one BatchGap of
// simulated think time, never past the crash instant. ErrCrashed reports
// that the instant was reached during the gap.
func (e *Engine) StepGap() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("pmkv: engine closed")
	}
	if e.crashed {
		return ErrCrashed
	}
	return e.stepGapLocked()
}

func (e *Engine) stepGapLocked() error {
	// Let background persists overlap the think time between batches,
	// still never past the crash instant.
	limit := e.crashLimit()
	gap := e.cfg.BatchGap
	if limit != sim.MaxCycle && e.m.Now()+gap > limit {
		gap = limit - e.m.Now()
	}
	e.m.Step(gap)
	if limit != sim.MaxCycle && e.m.Now() >= limit {
		e.crashed = true
		return ErrCrashed
	}
	return nil
}

// advanceWatermarkLocked moves the durable-prefix cursor: a record is
// durable once its publish store retired with version v and NVRAM holds
// version >= v of its bucket head (the line-rewrite conflict rules make
// ">=" exactly "v persisted"). The cursor stops at the first non-durable
// record, so everything below it is a durable prefix of the engine's
// mutation order.
func (e *Engine) advanceWatermarkLocked() int {
	for e.durableCursor < len(e.records) {
		r := e.records[e.durableCursor]
		v, ok := e.m.TokenVersion(r.PubToken)
		if !ok || v == mem.NoVersion || e.m.PersistedVersion(r.Head) < v {
			break
		}
		e.durableCursor++
	}
	return e.durableCursor
}

// DurableWatermark reports the durable-prefix watermark: the number of
// mutation records (in submission order) whose publishes have reached
// NVRAM, and the total number of mutation records submitted. Acks gated
// on the watermark are durability guarantees, not just visibility. The
// error is ErrCrashed once the machine has hit its crash instant — the
// numbers are still valid (the watermark as of the crash), but a caller
// gating acks on them must switch to crash handling instead of waiting
// for more durability that will never come.
func (e *Engine) DurableWatermark() (durable, total int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.advanceWatermarkLocked()
	if e.crashed {
		return d, len(e.records), ErrCrashed
	}
	return d, len(e.records), nil
}

// StepDurable advances the durable watermark toward target without
// blocking: it moves the cursor, and if target is not yet covered and
// background persist machinery is scheduled, runs one BatchGap of
// simulated time and moves the cursor again. dry reports that the
// machinery has nothing scheduled — only new work or Close's final
// drain can produce further durability. A worker interleaves StepDurable
// with mailbox polls so waiting for durability never blinds it to
// arriving requests (the queue_wait cost of the old WaitDurable loop).
func (e *Engine) StepDurable(target int) (durable int, dry bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.durableCursor, false, fmt.Errorf("pmkv: engine closed")
	}
	d := e.advanceWatermarkLocked()
	if d >= target {
		return d, false, nil
	}
	if e.crashed {
		return d, false, ErrCrashed
	}
	if e.m.Engine().Pending() == 0 {
		return d, true, nil
	}
	if err := e.stepGapLocked(); err != nil {
		return e.advanceWatermarkLocked(), false, err
	}
	return e.advanceWatermarkLocked(), false, nil
}

// RecordCount reports how many mutation records the engine has issued;
// a pipelined committer snapshots it after Submit as the batch's
// durability target.
func (e *Engine) RecordCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.records)
}

// Quiesced reports whether the machine has nothing scheduled — no
// background persist machinery in flight, so only Close's final drain
// (or new requests) can change the durable image.
func (e *Engine) Quiesced() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m.Engine().Pending() == 0
}

// WaitDurable advances simulated time in BatchGap steps until the durable
// watermark covers target records (or the crash instant hits, or the
// machinery runs dry — closed epochs always drain through scheduled
// events, so an empty event queue means only Close's final drain can make
// further progress). It returns the watermark reached.
func (e *Engine) WaitDurable(target int) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.durableCursor, fmt.Errorf("pmkv: engine closed")
	}
	for {
		d := e.advanceWatermarkLocked()
		if d >= target {
			return d, nil
		}
		if e.crashed {
			return d, ErrCrashed
		}
		if e.m.Engine().Pending() == 0 {
			return d, nil
		}
		if err := e.stepGapLocked(); err != nil {
			return e.advanceWatermarkLocked(), err
		}
	}
}

// ErrCrashed reports that the simulated machine hit its configured crash
// instant; the responses already returned are still the volatile truth,
// and Close delivers the durable image for recovery.
var ErrCrashed = fmt.Errorf("pmkv: machine crashed at configured instant")

// Crashed reports whether the crash instant has been reached.
func (e *Engine) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Now reports the machine's current cycle.
func (e *Engine) Now() sim.Cycle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m.Now()
}

// Records returns the mutation audit trail (shared slice; do not modify).
func (e *Engine) Records() []*OpRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.records
}

// Volatile returns a copy of the engine's in-memory (pre-crash) state.
func (e *Engine) Volatile() map[string][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string][]byte, len(e.kv))
	for k, v := range e.kv {
		out[k] = v
	}
	return out
}

// Close ends the run and returns the machine result. On a clean close the
// feed drains (all epochs persist); after a crash the result is a snapshot
// of the NVRAM image at the crash instant.
func (e *Engine) Close() (*machine.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("pmkv: engine closed")
	}
	e.closed = true
	if e.crashed {
		return e.m.Snapshot(), nil
	}
	return e.m.Drain()
}

// pub pairs a mutation record with the version its publish store
// committed at.
type pub struct {
	r *OpRecord
	v mem.Version
}

// publishesByBucket groups mutation records whose publish store
// committed, per bucket, sorted by committed version — the total publish
// order NVRAM saw for each bucket. It also reports the total publish
// count, which pre-sizes the recovered-state map. Committed versions are
// materialized once, and buckets index a plain slice: the sort
// comparator and every downstream consumer (replay, edge construction,
// the DL image) read pub.v with no map hashing per record — token
// re-resolution and head-line hashing dominated large-store replay.
func publishesByBucket(records []*OpRecord, tokens map[uint64]mem.Version, buckets int) ([][]pub, int) {
	// Counting pass, then one flat backing array carved into per-bucket
	// regions: no per-bucket append growth, one allocation for every
	// bucket's list. The counts overcount (publishes that never retired
	// are filtered in the fill pass), which only wastes capacity.
	counts := make([]int, buckets)
	mutations := 0
	for _, r := range records {
		if r.Op != Get {
			counts[r.Bucket]++
			mutations++
		}
	}
	flat := make([]pub, mutations)
	byBucket := make([][]pub, buckets)
	off := 0
	for b, c := range counts {
		byBucket[b] = flat[off : off : off+c]
		off += c
	}
	total := 0
	for _, r := range records {
		if r.Op == Get {
			continue
		}
		v, ok := tokens[r.PubToken]
		if !ok {
			continue // publish never retired before the crash
		}
		byBucket[r.Bucket] = append(byBucket[r.Bucket], pub{r: r, v: v})
		total++
	}
	for _, recs := range byBucket {
		slices.SortFunc(recs, func(a, b pub) int {
			switch {
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			default:
				return 0
			}
		})
	}
	return byBucket, total
}
