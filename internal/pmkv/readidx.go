// Lock-free committed-state read index: the data structure behind the
// GET fast path. Each shard worker publishes its engine's durable-prefix
// records into a chained hash whose bucket heads are atomic pointers to
// immutable entries, so any number of caller goroutines can answer GETs
// against precisely the durably-acknowledged prefix without touching the
// shard mailbox, the engine lock, or the simulated machine.
//
// The discipline mirrors the paper's publish-pointer idiom one level up:
// an entry is fully built before the single atomic store that links it,
// and once linked it is never mutated — readers that traverse a chain can
// only observe states that were durable when the head store happened.
// There is exactly one writer (the shard worker), so inserts need no CAS
// loop; amortized chain compaction and table growth swap in a rebuilt
// table with one atomic pointer store.
package pmkv

import "sync/atomic"

// readEntry is one immutable index entry: the newest durably-published
// state of a key at the moment it was linked. found=false is a tombstone
// (the key's newest durable publish is a delete). Entries shadowed by a
// newer insert for the same key stay in the chain until compaction;
// readers take the first match, which is always the newest.
type readEntry struct {
	next  *readEntry
	key   string
	val   []byte // engine arena bytes; immutable by construction
	rec   int32  // engine mutation-record index of the publish
	found bool   // false: durably deleted
}

// readTable is one immutable-shape bucket array. Growth replaces the
// whole table (readers re-load the pointer per lookup), so mask and the
// slice header never change under a reader.
type readTable struct {
	mask    uint64
	buckets []atomic.Pointer[readEntry]
}

// readIdxMinBuckets is the initial (and minimum) table size.
const readIdxMinBuckets = 64

// readIdxMinRebuild is the entry count below which compaction is never
// triggered, so small stores don't churn tables.
const readIdxMinRebuild = 128

// readIndex is one shard's committed-state index. get is safe from any
// goroutine; publish/insert/rebuild must only be called from the shard
// worker (the single writer).
type readIndex struct {
	table atomic.Pointer[readTable]
	// published is the durable-prefix watermark the index covers: every
	// mutation record below it has been folded in. Stored after the
	// inserts it covers.
	published atomic.Int64

	// Writer-only bookkeeping driving amortized compaction.
	entries int // chain nodes across the table, including shadowed ones
	keys    int // distinct keys present
}

// newReadIndex builds an empty index.
func newReadIndex() *readIndex {
	ri := &readIndex{}
	ri.table.Store(newReadTable(readIdxMinBuckets))
	return ri
}

func newReadTable(n int) *readTable {
	return &readTable{mask: uint64(n - 1), buckets: make([]atomic.Pointer[readEntry], n)}
}

// readBucket picks a key's bucket. shardHash's low bits chose the shard
// (key % shards is constant within one index), so the bucket comes from
// the high half of the avalanched hash.
func (t *readTable) readBucket(key string) *atomic.Pointer[readEntry] {
	return &t.buckets[(shardHash(key)>>33)&t.mask]
}

// get answers a key from the durably-published state: (value, true, rec)
// for a live key, (nil, false, rec) for a durable tombstone, and
// (nil, false, -1) when the key has no published durable mutation at all
// — which, for a session with no in-flight writes, is a linearizable
// not-found (any concurrent write is unacked and may linearize after).
func (ri *readIndex) get(key string) (val []byte, found bool, rec int) {
	t := ri.table.Load()
	for e := t.readBucket(key).Load(); e != nil; e = e.next {
		if e.key == key {
			return e.val, e.found, int(e.rec)
		}
	}
	return nil, false, -1
}

// watermark reports the published durable-prefix record count.
func (ri *readIndex) watermark() int { return int(ri.published.Load()) }

// publish folds every record in [published, durable) into the index and
// advances the published watermark. Worker-only; the caller must invoke
// it BEFORE delivering the acks the watermark releases, so a client that
// has seen its ack always finds its write here.
func (ri *readIndex) publish(records []*OpRecord, durable int) {
	lo := int(ri.published.Load())
	if durable <= lo {
		return
	}
	for i := lo; i < durable; i++ {
		r := records[i]
		ri.insert(r.Key, r.Value, r.Op != Delete, int32(i))
	}
	ri.published.Store(int64(durable))
}

// insert links a new entry at its bucket head (single atomic store; the
// entry and its chain are immutable from that point). Worker-only.
func (ri *readIndex) insert(key string, val []byte, found bool, rec int32) {
	t := ri.table.Load()
	b := t.readBucket(key)
	head := b.Load()
	fresh := true
	for e := head; e != nil; e = e.next {
		if e.key == key {
			fresh = false
			break
		}
	}
	b.Store(&readEntry{next: head, key: key, val: val, rec: rec, found: found})
	ri.entries++
	if fresh {
		ri.keys++
	}
	// Amortized compaction: once shadowed entries outnumber live keys the
	// next rebuild is O(entries) against >= entries/2 inserts since the
	// last one. Growth rides along (table sized to the live key count).
	if ri.entries > readIdxMinRebuild && ri.entries > 2*ri.keys {
		ri.rebuild()
	}
}

// rebuild swaps in a compacted table holding exactly the newest entry
// per key (tombstones included — a deleted key must keep shadowing any
// older live entry). Worker-only; readers keep traversing the old table
// until the single table.Store, and both tables answer every key with
// the same newest entry state.
func (ri *readIndex) rebuild() {
	old := ri.table.Load()
	n := readIdxMinBuckets
	for n < 2*ri.keys {
		n <<= 1
	}
	nt := newReadTable(n)
	kept := 0
	for i := range old.buckets {
		// Chains are newest-first, so the first occurrence of a key wins
		// and later (older) duplicates are dropped.
	entries:
		for e := old.buckets[i].Load(); e != nil; e = e.next {
			b := nt.readBucket(e.key)
			head := b.Load()
			for d := head; d != nil; d = d.next {
				if d.key == e.key {
					continue entries
				}
			}
			b.Store(&readEntry{next: head, key: e.key, val: e.val, rec: e.rec, found: e.found})
			kept++
		}
	}
	ri.entries, ri.keys = kept, kept
	ri.table.Store(nt)
}
