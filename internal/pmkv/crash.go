// Crash-injection harness: deterministic scripted load so that the same
// seed always produces the same request stream, a crash instant injected
// at any cycle, and a verified recovery report. Tests sweep hundreds of
// crash instants across a run; the pmkvd self-check and the kvstore
// example run single instants.
package pmkv

import (
	"fmt"

	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// ScriptSpec generates a deterministic workload: Rounds batches, each with
// one request per session, mixed Put/Get/Delete over a bounded key space.
// Sessions sharing buckets (KeySpace small relative to Sessions*Rounds)
// produce inter-thread publish conflicts — the interesting case.
type ScriptSpec struct {
	Sessions   int
	Rounds     int
	KeySpace   int
	ValueBytes int // maximum value size; actual sizes vary per op
	Seed       uint64
	// PutPct/GetPct set the op mix in percent (defaults 70/15, remainder
	// Delete); zero means default, so existing specs keep their exact
	// request streams and fingerprints.
	PutPct, GetPct int
	// Keys, when non-nil, overrides the key universe: each op draws
	// uniformly from Keys instead of the generated k%03d space. The rng
	// consumes one draw either way, so crash sweeps over the same seed
	// stay aligned (the metamorphic tests pin keys to one shard with it).
	Keys []string
}

// fill applies defaults.
func (s *ScriptSpec) fill() {
	if s.Sessions <= 0 {
		s.Sessions = 4
	}
	if s.Rounds <= 0 {
		s.Rounds = 16
	}
	if s.KeySpace <= 0 {
		s.KeySpace = 24
	}
	if s.ValueBytes <= 0 {
		s.ValueBytes = 192
	}
	if s.PutPct <= 0 {
		s.PutPct = 70
	}
	if s.GetPct <= 0 {
		s.GetPct = 15
	}
	if s.PutPct+s.GetPct > 100 {
		s.PutPct, s.GetPct = 70, 15
	}
}

// scriptOp is one scripted request before session binding.
type scriptOp struct {
	op    Op
	key   string
	value []byte
}

// genScript expands the spec into Rounds x Sessions requests. Generation
// is a pure function of the spec, independent of crash timing, so every
// crash instant replays the identical load.
func genScript(spec ScriptSpec) [][]scriptOp {
	rng := trace.NewRand(spec.Seed)
	rounds := make([][]scriptOp, spec.Rounds)
	for r := range rounds {
		rounds[r] = make([]scriptOp, spec.Sessions)
		for s := range rounds[r] {
			var key string
			if len(spec.Keys) > 0 {
				key = spec.Keys[rng.Intn(len(spec.Keys))]
			} else {
				key = fmt.Sprintf("k%03d", rng.Intn(spec.KeySpace))
			}
			roll := rng.Intn(100)
			switch {
			case roll < spec.PutPct:
				n := 1 + rng.Intn(spec.ValueBytes)
				val := make([]byte, n)
				for i := range val {
					val[i] = byte(rng.Uint64())
				}
				rounds[r][s] = scriptOp{op: Put, key: key, value: val}
			case roll < spec.PutPct+spec.GetPct:
				rounds[r][s] = scriptOp{op: Get, key: key}
			default:
				rounds[r][s] = scriptOp{op: Delete, key: key}
			}
		}
	}
	return rounds
}

// ScriptedOp is one scripted request, exported for counterexample
// transcripts: the round and session it runs in, the op, its key, and
// the value size (values themselves are deterministic from the spec).
type ScriptedOp struct {
	Round, Sess int
	Op          Op
	Key         string
	ValueLen    int
}

// ScriptOps expands a spec into its full op trace in execution order —
// the transcript a fuzzer prints for a minimized counterexample.
func ScriptOps(spec ScriptSpec) []ScriptedOp {
	spec.fill()
	var out []ScriptedOp
	for r, round := range genScript(spec) {
		for s, op := range round {
			out = append(out, ScriptedOp{Round: r, Sess: s, Op: op.op, Key: op.key, ValueLen: len(op.value)})
		}
	}
	return out
}

// RunResult is the outcome of one scripted run.
type RunResult struct {
	// Crashed reports whether the configured crash instant was reached
	// before the script completed.
	Crashed bool
	// Cycles is the final simulated cycle (the crash instant, or the
	// clean-drain completion time).
	Cycles sim.Cycle
	// RoundsApplied counts fully applied request batches.
	RoundsApplied int
	// Report is the verification result; Recovered the durable state.
	Report    *Report
	Recovered map[string][]byte
	// DL is the durable-linearizability verdict (nil unless cfg.Check).
	DL *dlcheck.Verdict
}

// RunScript drives a fresh engine through the scripted load, crashing at
// cfg.CrashAt if nonzero, then closes, verifies every invariant, and
// reconstructs the recovered state. Any invariant violation is returned
// as an error.
func RunScript(cfg Config, spec ScriptSpec) (*RunResult, error) {
	spec.fill()
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sessions := make([]*Session, spec.Sessions)
	for i := range sessions {
		sessions[i] = e.NewSession()
	}
	out := &RunResult{}
	for _, round := range genScript(spec) {
		batch := make([]Request, len(round))
		for i, op := range round {
			batch[i] = Request{Sess: sessions[i], Op: op.op, Key: op.key, Value: op.value}
		}
		_, err := e.Apply(batch)
		if err == ErrCrashed {
			out.Crashed = true
			break
		}
		if err != nil {
			return nil, err
		}
		out.RoundsApplied++
	}
	res, err := e.Close()
	if err != nil {
		return nil, err
	}
	out.Cycles = e.Now()
	rep, err := e.Verify(res)
	out.Report = rep
	if err != nil {
		return out, err
	}
	out.Recovered, err = e.RecoveredState(res)
	if err != nil {
		return out, err
	}
	out.DL = e.CheckDL(res)
	if out.DL != nil {
		if err := out.DL.Err(); err != nil {
			return out, fmt.Errorf("pmkv: durable linearizability: %w", err)
		}
	}
	return out, nil
}

// SweepInstants spreads n crash instants evenly over (0, total], skipping
// cycle 0 (which means "no crash" to the engine).
func SweepInstants(total sim.Cycle, n int) []sim.Cycle {
	if n <= 0 || total == 0 {
		return nil
	}
	out := make([]sim.Cycle, 0, n)
	for i := 1; i <= n; i++ {
		c := total * sim.Cycle(i) / sim.Cycle(n)
		if c == 0 {
			c = 1
		}
		out = append(out, c)
	}
	return out
}
