// Tests for the v2 shard-worker hot path: the gather loop's boundary
// behavior, the adaptive batch limit, crash routing on the busy ack
// path, the allocation discipline of the group-commit path, and the
// parallel recovery replay's byte-identity with the serial reference.
package pmkv

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

// testWorker builds a shardWorker around a bare mailbox (no engine):
// gather and setLimit never touch the machine, so the loop boundaries
// are testable in isolation.
func testWorker(cfg ShardedConfig) (*shardWorker, *shard) {
	cfg.fill()
	sh := &shard{id: 0, mail: make(chan shardJob, cfg.Mailbox), open: true}
	sh.batchLim.Store(int64(cfg.MinBatch))
	w := &shardWorker{s: &ShardedStore{cfg: cfg}, sh: sh, open: true, limit: cfg.MinBatch}
	return w, sh
}

func fillMail(sh *shard, n int) {
	done := make(chan Completion, n)
	for i := 0; i < n; i++ {
		sh.mail <- shardJob{done: done, tag: uint64(i)}
		sh.enq.Add(1)
	}
}

// TestGatherExactLimit: with exactly limit requests queued, one gather
// drains them all and — because nothing is left behind — the adaptive
// limit must NOT grow.
func TestGatherExactLimit(t *testing.T) {
	w, sh := testWorker(ShardedConfig{MinBatch: 4, MaxBatch: 16})
	w.fed = append(w.fed, pendingBatch{}) // skip the blocking receive
	fillMail(sh, 4)
	batch := w.gather()
	if len(batch) != 4 {
		t.Fatalf("gather drained %d jobs, want exactly 4", len(batch))
	}
	if w.limit != 4 {
		t.Fatalf("limit grew to %d on an exactly-full gather with an empty mailbox", w.limit)
	}
	if got := sh.deq.Load(); got != 4 {
		t.Fatalf("deq counter = %d, want 4", got)
	}
}

// TestGatherGrowsUnderBacklog: filling the limit with requests still
// queued behind it doubles the limit, capped at MaxBatch.
func TestGatherGrowsUnderBacklog(t *testing.T) {
	w, sh := testWorker(ShardedConfig{MinBatch: 4, MaxBatch: 16, Mailbox: 64})
	w.fed = append(w.fed, pendingBatch{})
	fillMail(sh, 40)
	var sizes []int
	for len(sh.mail) > 0 {
		b := w.gather()
		sizes = append(sizes, len(b))
	}
	if w.limit != 16 {
		t.Fatalf("limit = %d after sustained backlog, want MaxBatch 16", w.limit)
	}
	if sizes[0] != 4 || sizes[1] != 8 || sizes[2] != 16 {
		t.Fatalf("batch sizes %v: want doubling ramp 4, 8, 16, ...", sizes)
	}
	if got := sh.batchLim.Load(); got != 16 {
		t.Fatalf("live batch-limit gauge = %d, want 16", got)
	}
}

// TestGatherShrinksWhenBlocked: a worker that had to block for work
// halves its limit (demand is light), never below MinBatch.
func TestGatherShrinksWhenBlocked(t *testing.T) {
	w, sh := testWorker(ShardedConfig{MinBatch: 2, MaxBatch: 16})
	w.limit = 16
	for i, want := range []int{8, 4, 2, 2} {
		fillMail(sh, 1)
		if b := w.gather(); len(b) != 1 {
			t.Fatalf("block %d: gather returned %d jobs", i, len(b))
		}
		if w.limit != want {
			t.Fatalf("block %d: limit = %d, want %d", i, w.limit, want)
		}
	}
}

// TestGatherMailboxClosesMidGather: the mailbox closing between jobs
// must end the gather with the jobs already taken (they commit) and
// flip the worker closed.
func TestGatherMailboxClosesMidGather(t *testing.T) {
	w, sh := testWorker(ShardedConfig{MinBatch: 8, MaxBatch: 8})
	w.fed = append(w.fed, pendingBatch{})
	fillMail(sh, 3)
	close(sh.mail)
	batch := w.gather()
	if len(batch) != 3 {
		t.Fatalf("gather returned %d jobs, want the 3 queued before the close", len(batch))
	}
	if w.open {
		t.Fatal("worker still open after the mailbox closed mid-gather")
	}
	// A closed, empty mailbox yields nothing more (and must not block).
	if b := w.gather(); len(b) != 0 {
		t.Fatalf("gather on a closed empty mailbox returned %d jobs", len(b))
	}
}

// TestSetLimitClamps: the adaptive limit can never leave
// [MinBatch, MaxBatch].
func TestSetLimitClamps(t *testing.T) {
	w, _ := testWorker(ShardedConfig{MinBatch: 4, MaxBatch: 32})
	w.setLimit(1 << 20)
	if w.limit != 32 {
		t.Fatalf("limit = %d, want clamped to MaxBatch 32", w.limit)
	}
	w.setLimit(0)
	if w.limit != 4 {
		t.Fatalf("limit = %d, want clamped to MinBatch 4", w.limit)
	}
}

// TestShardedConfigFillClamps pins the defaulting rules the flags rely
// on: MinBatch folds down to MaxBatch, MaxInFlight clamps to 1..8.
func TestShardedConfigFillClamps(t *testing.T) {
	c := ShardedConfig{MaxBatch: 4, MinBatch: 100, MaxInFlight: 99}
	c.fill()
	if c.MinBatch != 4 || c.MaxInFlight != 8 {
		t.Fatalf("fill: MinBatch=%d MaxInFlight=%d, want 4 and 8", c.MinBatch, c.MaxInFlight)
	}
	var d ShardedConfig
	d.fill()
	if d.MinBatch != 8 || d.MaxBatch != 64 || d.MaxInFlight != 2 {
		t.Fatalf("defaults: %+v", d)
	}
}

// TestDurableWatermarkReportsCrash: once the machine hits its crash
// instant, DurableWatermark and StepDurable must surface ErrCrashed
// while still reporting valid watermark numbers — the shard worker's
// busy ack path keys crash handling off this error (it used to be
// silently discarded).
func TestDurableWatermarkReportsCrash(t *testing.T) {
	e, err := New(Config{CrashAt: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("crash instant never reached")
		}
		_, err := e.Apply([]Request{{Sess: sess, Op: Put, Key: fmt.Sprintf("k%d", i%8), Value: []byte("v")}})
		if err == ErrCrashed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	d, total, err := e.DurableWatermark()
	if err != ErrCrashed {
		t.Fatalf("DurableWatermark err = %v, want ErrCrashed", err)
	}
	if d < 0 || d > total || total == 0 {
		t.Fatalf("crashed watermark %d/%d implausible", d, total)
	}
	if _, _, err := e.StepDurable(total); err != ErrCrashed {
		t.Fatalf("StepDurable err = %v, want ErrCrashed", err)
	}
}

// TestCrashWithBusyMailbox is the regression for the dropped-error bug:
// a shard whose mailbox stays saturated takes the polling ack path, so
// the crash must be noticed there (not just in PumpRetire) and every
// outstanding request must still complete — crashed, erred, or durable —
// with the crash image verifying on Close.
func TestCrashWithBusyMailbox(t *testing.T) {
	crashes := make(chan int, 1)
	store, err := NewSharded(ShardedConfig{
		Shards:      1,
		Mailbox:     16,
		MinBatch:    2,
		MaxBatch:    4,
		MaxInFlight: 2,
		Engine:      Config{CrashAt: 20_000},
		OnCrash:     func(shard int) { crashes <- shard },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	const inflight = 2000
	done := make(chan Completion, inflight)
	routed := 0
	for i := 0; i < inflight; i++ {
		// Saturate the mailbox so the worker keeps finding queued work
		// and its ack path stays on the watermark poll.
		_, err := store.DoAsync(sess, Put, fmt.Sprintf("busy%04d", i), []byte("v"), nil, uint64(i), done)
		if err == ErrDraining {
			break
		}
		if err != nil {
			t.Fatalf("DoAsync(%d): %v", i, err)
		}
		routed++
	}
	sawCrash := false
	for i := 0; i < routed; i++ {
		c := <-done
		if c.Ack.Crashed || c.Ack.Err == ErrCrashed {
			sawCrash = true
		} else if c.Ack.Err != nil {
			t.Fatalf("tag %d: %v", c.Tag, c.Ack.Err)
		}
	}
	if !sawCrash {
		t.Fatal("crash instant never surfaced in an ack (workload too short?)")
	}
	select {
	case <-crashes:
	default:
		t.Fatal("OnCrash never fired despite crashed acks")
	}
	if _, err := store.Close(); err != nil {
		t.Fatalf("crash-image verification failed: %v", err)
	}
}

// TestBatchMetricsExposed: a worked store must report a populated
// batch-size histogram and an in-bounds live batch limit through
// Metrics.
func TestBatchMetricsExposed(t *testing.T) {
	store, err := NewSharded(ShardedConfig{Shards: 2, MinBatch: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	const ops = 48
	done := make(chan Completion, ops)
	for i := 0; i < ops; i++ {
		if _, err := store.DoAsync(sess, Put, fmt.Sprintf("m%03d", i), []byte("v"), nil, uint64(i), done); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ops; i++ {
		if c := <-done; c.Ack.Err != nil || c.Ack.Crashed {
			t.Fatalf("ack: %+v", c.Ack)
		}
	}
	var batches, sized uint64
	for _, m := range store.Metrics() {
		if m.BatchLimit < 2 || m.BatchLimit > 8 {
			t.Fatalf("shard %d: batch limit %d outside [2, 8]", m.Shard, m.BatchLimit)
		}
		batches += m.Batches
		sized += m.BatchSizes.Total
		if m.BatchSizes.Sum < m.BatchSizes.Total {
			t.Fatalf("shard %d: histogram sum %d < count %d (batches smaller than 1?)",
				m.Shard, m.BatchSizes.Sum, m.BatchSizes.Total)
		}
	}
	if batches == 0 || sized != batches {
		t.Fatalf("histogram holds %d observations, batches counter %d", sized, batches)
	}
	if _, err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAllocs pins the allocation discipline of the engine's
// group-commit path. The translate/feed layer (SubmitAppend: response
// building, session overlays, trace construction, machine feed) must be
// allocation-free in steady state — exactly zero for read-only batches,
// amortized near-zero for mutations (arena chunk and record-slice
// growth are the only remaining sources). The retire pump on top adds
// only the simulated hardware's own event costs, guarded with
// amortized ceilings that would still catch any per-request allocation
// creeping back into the commit path.
func TestGroupCommitAllocs(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sessions := []*Session{e.NewSession(), e.NewSession(), e.NewSession(), e.NewSession()}
	const batchLen = 16
	keys := make([]string, batchLen)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc%02d", i)
	}
	val := make([]byte, 96)
	puts := make([]Request, batchLen)
	gets := make([]Request, batchLen)
	for i := 0; i < batchLen; i++ {
		puts[i] = Request{Sess: sessions[i%len(sessions)], Op: Put, Key: keys[i], Value: val}
		gets[i] = Request{Sess: sessions[i%len(sessions)], Op: Get, Key: keys[i]}
	}
	commit := func(reqs []Request, dst []Response) []Response {
		out, err := e.SubmitAppend(dst[:0], reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.PumpRetire(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	dst := make([]Response, 0, batchLen)
	// Warm up: keys exist, arenas, op buffers, and mailroom slices are
	// sized.
	for i := 0; i < 30; i++ {
		dst = commit(puts, dst)
		dst = commit(gets, dst)
	}

	// Submit layer, read-only: exactly zero, every single batch. The
	// pump runs outside the measured window to keep the machine drained.
	var before, after runtime.MemStats
	runtime.GC()
	for i := 0; i < 30; i++ {
		runtime.ReadMemStats(&before)
		out, err := e.SubmitAppend(dst[:0], gets)
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
		if err := e.PumpRetire(); err != nil {
			t.Fatal(err)
		}
		if n := after.Mallocs - before.Mallocs; n != 0 {
			t.Fatalf("read-only SubmitAppend batch %d allocated %d times, want 0", i, n)
		}
	}

	// Submit layer, mutations: amortized near-zero (rare arena-chunk and
	// record-slice growth only).
	var putAllocs uint64
	for i := 0; i < 30; i++ {
		runtime.ReadMemStats(&before)
		out, err := e.SubmitAppend(dst[:0], puts)
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
		if err := e.PumpRetire(); err != nil {
			t.Fatal(err)
		}
		putAllocs += after.Mallocs - before.Mallocs
	}
	if putAllocs > 15 {
		t.Fatalf("mutation SubmitAppend allocated %d times across 30 batches, want amortized <= 0.5/batch", putAllocs)
	}

	// Full commit cycle ceilings: the only allocations left come from the
	// simulated hardware's event machinery, bounded well under one alloc
	// per op. A per-request leak in the commit path would add >= batchLen
	// per run and trip these.
	if avg := testing.AllocsPerRun(50, func() {
		out, err := e.SubmitAppend(dst[:0], gets)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
		if err := e.PumpRetire(); err != nil {
			t.Fatal(err)
		}
	}); avg > 8 {
		t.Fatalf("read-only commit cycle allocates %.2f times per %d-op batch, ceiling 8", avg, batchLen)
	}
	if _, err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReplayByteIdentical: recovery replay must produce the
// byte-identical fingerprint at every worker count, on clean drains and
// across a sweep of crash images.
func TestParallelReplayByteIdentical(t *testing.T) {
	spec := testSpec()
	serial, err := RunScript(Config{RecoveryWorkers: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	instants := append([]sim.Cycle{0}, SweepInstants(serial.Cycles, 6)...)
	for _, workers := range []int{2, 4, 0} {
		for _, at := range instants {
			a, err := RunScript(Config{CrashAt: at, RecoveryWorkers: 1}, spec)
			if err != nil {
				t.Fatalf("serial at %d: %v", at, err)
			}
			b, err := RunScript(Config{CrashAt: at, RecoveryWorkers: workers}, spec)
			if err != nil {
				t.Fatalf("workers=%d at %d: %v", workers, at, err)
			}
			if a.Report.Fingerprint != b.Report.Fingerprint {
				t.Fatalf("crash at %d: workers=%d fingerprint %s != serial %s",
					at, workers, b.Report.Fingerprint, a.Report.Fingerprint)
			}
		}
	}
}

// legacyRecoveredState reproduces the pre-v2 recovery replay — per-head
// publish lists sorted with TokenVersions map lookups inside the
// comparator, then one serial bucket loop resolving each publish's
// version through the map again. BenchmarkParallelRecovery uses it as
// the baseline the optimized replay is measured against; its output
// must stay byte-identical to the new path.
func legacyRecoveredState(e *Engine, res *machine.Result) (map[string][]byte, error) {
	e.mu.Lock()
	records := e.records
	buckets := e.cfg.Buckets
	e.mu.Unlock()

	tokens := res.TokenVersions
	byHead := make(map[mem.Line][]*OpRecord)
	for _, r := range records {
		if r.Op == Get {
			continue
		}
		if _, ok := tokens[r.PubToken]; !ok {
			continue
		}
		byHead[r.Head] = append(byHead[r.Head], r)
	}
	for _, recs := range byHead {
		sort.Slice(recs, func(i, j int) bool {
			return tokens[recs[i].PubToken] < tokens[recs[j].PubToken]
		})
	}
	state := make(map[string][]byte)
	for b := 0; b < buckets; b++ {
		h := e.headLine(b)
		hv := res.Image[h]
		if hv == mem.NoVersion {
			continue
		}
		matched := false
		for _, r := range byHead[h] {
			v := tokens[r.PubToken]
			if v > hv {
				break
			}
			matched = matched || v == hv
			switch r.Op {
			case Put:
				state[r.Key] = r.Value
			case Delete:
				delete(state, r.Key)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pmkv: bucket %d head holds version %d with no matching publish", b, hv)
		}
	}
	return state, nil
}

// recoveryFixture builds an engine holding n mutation records and its
// clean-drain machine result — the recovery workload.
func recoveryFixture(tb testing.TB, n int) (*Engine, *machine.Result) {
	tb.Helper()
	e, err := New(Config{Buckets: 256})
	if err != nil {
		tb.Fatal(err)
	}
	sessions := make([]*Session, 4)
	for i := range sessions {
		sessions[i] = e.NewSession()
	}
	val := make([]byte, 64)
	const batchLen = 32
	batch := make([]Request, 0, batchLen)
	for i := 0; i < n; i++ {
		batch = append(batch, Request{
			Sess:  sessions[i%len(sessions)],
			Op:    Put,
			Key:   fmt.Sprintf("r%06d", i%(n/2+1)),
			Value: val,
		})
		if len(batch) == batchLen || i == n-1 {
			if _, err := e.Apply(batch); err != nil {
				tb.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	res, err := e.Close()
	if err != nil {
		tb.Fatal(err)
	}
	return e, res
}

// TestLegacyReplayAgreesWithNew anchors the benchmark baseline: the
// legacy replay and the optimized one must recover identical state.
func TestLegacyReplayAgreesWithNew(t *testing.T) {
	e, res := recoveryFixture(t, 2000)
	legacy, err := legacyRecoveredState(e, res)
	if err != nil {
		t.Fatal(err)
	}
	state, err := e.RecoveredState(res)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintState(legacy) != FingerprintState(state) {
		t.Fatal("legacy and optimized replay recover different state")
	}
	if len(state) == 0 {
		t.Fatal("fixture recovered no keys")
	}
}

// BenchmarkParallelRecovery measures full recovery replay
// (publish-order reconstruction + per-bucket replay) against store
// size: the pre-v2 implementation, the optimized serial path, and the
// parallel path at GOMAXPROCS workers. The serial win is algorithmic
// (materialized publish versions, no map lookups in sort comparators);
// the parallel win stacks on top with host cores.
func BenchmarkParallelRecovery(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		e, res := recoveryFixture(b, n)
		b.Run(fmt.Sprintf("records=%d/legacy", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := legacyRecoveredState(e, res); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("records=%d/workers=%d", n, workers)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					byBucket, total := publishesByBucket(e.records, res.TokenVersions, e.cfg.Buckets)
					if _, err := e.replayState(byBucket, total, res, e.cfg.Buckets, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
