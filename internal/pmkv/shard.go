// Shard-parallel pmkv: the keyspace is partitioned by a stable hash
// across N independent machine instances, each owned by one worker
// goroutine with a bounded mailbox. Workers run a pipelined group
// commit — batch k+1 is translated and fed while batch k's persist
// barriers are still draining — and release client acks only when the
// shard's durable-prefix watermark covers the batch, so an ack is a
// durability guarantee, not just visibility. Shards share no mutable
// state; aggregate throughput scales with host cores and, on any host,
// with the contention relief of smaller per-machine session counts.
package pmkv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/telemetry"
)

// MaxShards bounds the shard count (arbitrary sanity limit).
const MaxShards = 256

// ErrDraining reports that the store has begun its final drain and no
// longer accepts requests; everything already acknowledged is (or will
// be) durable before the recovery snapshot is taken.
var ErrDraining = fmt.Errorf("pmkv: store draining")

// errNoSession reports a request routed without a session handle.
var errNoSession = fmt.Errorf("pmkv: request without session")

// shardHash is the router hash: FNV-1a strengthened with a splitmix64
// finalizer so shard choice decorrelates from the engines' bucket hash
// (both start from raw FNV-1a). It is a pure function of the key bytes —
// the same key maps to the same shard in every process, every run.
func shardHash(key string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ShardOf maps a key to its owning shard in [0, shards).
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(shardHash(key) % uint64(shards))
}

// ShardedConfig sizes a sharded store.
type ShardedConfig struct {
	// Shards is the number of independent engine instances (default 1).
	Shards int
	// Engine is the per-shard engine template. Engine.CrashAt fans out:
	// every shard loses power at that cycle of its own clock.
	Engine Config
	// Mailbox is the per-shard request queue depth (default 256).
	Mailbox int
	// MaxBatch bounds how many mailbox requests one group commit drains
	// (default 64).
	MaxBatch int
	// ConfigureShard, when non-nil, is called with each shard's engine
	// config before construction — the hook servers use to attach a
	// per-shard observability probe.
	ConfigureShard func(shard int, cfg *Config)
	// OnCrash, when non-nil, is called once per shard, from that shard's
	// worker goroutine, after the shard hits its crash instant and its
	// pending acks have been delivered (flagged crashed). Servers use it
	// to self-initiate the drain — but because it runs on the worker, a
	// callback must call BeginDrain from a new goroutine (BeginDrain waits
	// on producers that only this worker can unblock).
	OnCrash func(shard int)
}

func (c *ShardedConfig) fill() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
}

// ShardedSession is one client's handle across every shard: its requests
// execute in program order per shard (global cross-shard order is not
// preserved — the standard sharded-store relaxation).
type ShardedSession struct {
	ID  int
	per []*Session // per-shard engine sessions, indexed by shard
}

// ShardAck answers one request routed through the sharded store. For
// mutations the ack is durability-gated: when Err is nil and Crashed is
// false, the shard's durable-prefix watermark covered this request's
// batch at ack time, so the publish — and every earlier accepted write on
// that shard — is in NVRAM. Crashed acks report the volatile response of
// a batch that was applied right as the shard lost power (durability
// unknown, judged by recovery).
type ShardAck struct {
	Resp    Response
	Shard   int
	Durable int // shard durable-prefix watermark at ack time
	Crashed bool
	Err     error
}

// Completion pairs a ShardAck with the caller-chosen tag that routed it,
// for async delivery to a shared completion queue: a pipelined server
// keys each in-flight request by tag and matches acks out of order, the
// same way the wire protocol keys responses by request id.
type Completion struct {
	Tag uint64
	Ack ShardAck
}

type shardJob struct {
	req Request
	// done receives exactly one Completion carrying tag. Shard workers
	// deliver with a plain channel send and must never block on a slow
	// consumer, so the caller guarantees free capacity for every
	// outstanding request it has routed to done (DoSpan uses a private
	// one-slot channel; pipelined servers bound in-flight requests by the
	// queue's capacity).
	done chan<- Completion
	tag  uint64
	// span, when non-nil, is the caller-owned telemetry record the
	// pipeline stamps as the job moves through mailbox, translate,
	// retirement, and the durable watermark. A nil span costs one branch
	// per stamp site.
	span *telemetry.Span
}

// deliver sends the job's completion. See shardJob.done for why this
// must never block in practice.
func (j *shardJob) deliver(a ShardAck) {
	j.done <- Completion{Tag: j.tag, Ack: a}
}

// shard is one partition: an engine, its mailbox, and its worker state.
type shard struct {
	id    int
	eng   *Engine
	mail  chan shardJob
	subMu sync.RWMutex // senders hold R; drain holds W to flip accepting+close
	open  bool         // guarded by subMu

	// metrics
	enq       atomic.Uint64
	deq       atomic.Uint64
	batches   atomic.Uint64
	batchOps  atomic.Uint64
	crashedFl atomic.Bool
}

// queueDepth is the number of requests accepted but not yet group-committed.
func (sh *shard) queueDepth() int { return int(sh.enq.Load() - sh.deq.Load()) }

// ShardedStore partitions the keyspace across independent engines. All
// methods are safe for concurrent use; request routing takes no global
// lock — a pure hash picks the shard and a per-shard mailbox carries the
// request to that shard's worker.
type ShardedStore struct {
	cfg    ShardedConfig
	shards []*shard

	sessMu   sync.Mutex
	sessions int

	drainOnce sync.Once
	wg        sync.WaitGroup

	closeMu sync.Mutex
	closed  bool
	results []ShardResult
}

// NewSharded builds the store and starts one worker per shard.
func NewSharded(cfg ShardedConfig) (*ShardedStore, error) {
	cfg.fill()
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("pmkv: Shards must be in 1..%d, got %d", MaxShards, cfg.Shards)
	}
	s := &ShardedStore{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		ecfg := cfg.Engine
		if cfg.ConfigureShard != nil {
			cfg.ConfigureShard(i, &ecfg)
		}
		eng, err := New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("pmkv: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, &shard{
			id:   i,
			eng:  eng,
			mail: make(chan shardJob, cfg.Mailbox),
			open: true,
		})
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			s.runShard(sh)
		}(sh)
	}
	return s, nil
}

// Shards reports the shard count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// NewSession opens a client session on every shard. Creation is
// serialized so each shard binds the session to the same core slot.
func (s *ShardedStore) NewSession() *ShardedSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := &ShardedSession{ID: s.sessions, per: make([]*Session, len(s.shards))}
	s.sessions++
	for i, sh := range s.shards {
		sess.per[i] = sh.eng.NewSession()
	}
	return sess
}

// Do routes one request to its key's shard and blocks until the shard
// acks it (for mutations: until the publish is durable, the shard
// crashed, or the store refused the request).
func (s *ShardedStore) Do(sess *ShardedSession, op Op, key string, value []byte) ShardAck {
	return s.DoSpan(sess, op, key, value, nil)
}

// DoSpan is Do with a caller-owned telemetry span: the router stamps
// shard-route and mailbox-enqueue, and the shard worker stamps dequeue,
// translate, submit, and durable-watermark as the request moves through
// its pipeline. span may be nil (then DoSpan is exactly Do).
func (s *ShardedStore) DoSpan(sess *ShardedSession, op Op, key string, value []byte, span *telemetry.Span) ShardAck {
	done := make(chan Completion, 1)
	shard, err := s.DoAsync(sess, op, key, value, span, 0, done)
	if err != nil {
		return ShardAck{Shard: shard, Err: err}
	}
	return (<-done).Ack
}

// DoAsync routes one request to its key's shard and returns immediately;
// the ack is delivered later to done as a Completion carrying tag, from
// the shard worker, at whichever of the ack-release sites fires first
// (durable watermark, crash delivery, or engine error). The returned
// shard id is valid even on error (-1 only when sess is nil).
//
// done is the caller's completion queue. The shard worker's send is
// unconditional, so the caller must guarantee capacity: never have more
// requests outstanding against done than its free buffer slots. A
// pipelined connection enforces this with a window semaphore sized to
// the queue.
//
// An error return (ErrDraining, nil session) means the request was NOT
// routed and no completion will arrive for it.
func (s *ShardedStore) DoAsync(sess *ShardedSession, op Op, key string, value []byte, span *telemetry.Span, tag uint64, done chan<- Completion) (int, error) {
	if sess == nil {
		return -1, errNoSession
	}
	id := ShardOf(key, len(s.shards))
	span.Stamp(telemetry.StageShardRoute)
	sh := s.shards[id]
	j := shardJob{
		req:  Request{Sess: sess.per[id], Op: op, Key: key, Value: value},
		done: done,
		tag:  tag,
		span: span,
	}
	sh.subMu.RLock()
	if !sh.open {
		sh.subMu.RUnlock()
		return id, ErrDraining
	}
	sh.mail <- j
	sh.enq.Add(1)
	sh.subMu.RUnlock()
	span.Stamp(telemetry.StageEnqueue)
	return id, nil
}

// pendingBatch is a group commit whose ops have retired (responses known)
// but whose durability ack is still gated on the watermark.
type pendingBatch struct {
	jobs   []shardJob
	resps  []Response
	target int // RecordCount after this batch's Submit
}

// runShard is the shard's worker: the engine's single writer. It drains
// the mailbox into group commits, pipelines them (batch k+1 translates
// and feeds while batch k's epochs persist in the background), and
// releases acks as the durable-prefix watermark advances.
func (s *ShardedStore) runShard(sh *shard) {
	var pending []pendingBatch
	open := true
	for open || len(pending) > 0 {
		var batch []shardJob
		if open {
			if len(pending) == 0 {
				// Nothing awaiting durability: block for work.
				j, ok := <-sh.mail
				if !ok {
					open = false
				} else {
					j.span.Stamp(telemetry.StageDequeue)
					batch = append(batch, j)
					sh.deq.Add(1)
				}
			}
		gather:
			for open && len(batch) < s.cfg.MaxBatch {
				select {
				case j, ok := <-sh.mail:
					if !ok {
						open = false
						break gather
					}
					j.span.Stamp(telemetry.StageDequeue)
					batch = append(batch, j)
					sh.deq.Add(1)
				default:
					break gather
				}
			}
		}

		if len(batch) > 0 {
			pending = s.commit(sh, batch, pending)
		}

		// Release acks: if more work is queued, only harvest whatever the
		// pumps already persisted; if the mailbox is idle, advance
		// simulated time until the oldest pending batch is durable.
		if len(pending) > 0 {
			var durable int
			var err error
			if len(sh.mail) > 0 {
				durable, _ = sh.eng.DurableWatermark()
			} else {
				durable, err = sh.eng.WaitDurable(pending[len(pending)-1].target)
			}
			if err == ErrCrashed {
				s.crash(sh, &pending, nil)
				continue
			}
			cycle := int64(sh.eng.Now())
			for len(pending) > 0 && pending[0].target <= durable {
				p := pending[0]
				pending = pending[1:]
				// These acks promise durability: record the obligation so
				// the checker can hold the crash image to it.
				sh.eng.DL().AckDurable(p.target)
				for i, j := range p.jobs {
					j.span.StampAt(telemetry.StageDurable, cycle)
					j.deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Durable: durable})
				}
			}
			if len(pending) > 0 && !open && sh.eng.Quiesced() {
				// Mailbox closed and the machinery ran dry with acks still
				// gated: only Close's final drain persists the rest. Ack
				// now — Close runs the full drain before the recovery
				// snapshot, so durability still precedes the snapshot (and
				// the acks remain checker obligations).
				for _, p := range pending {
					sh.eng.DL().AckDurable(p.target)
					for i, j := range p.jobs {
						j.span.StampAt(telemetry.StageDurable, cycle)
						j.deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Durable: durable})
					}
				}
				pending = nil
			}
		}
	}
}

// commit runs one group commit through the engine. On a crash it flushes
// every gated ack (flagged crashed) and notifies the store.
func (s *ShardedStore) commit(sh *shard, batch []shardJob, pending []pendingBatch) []pendingBatch {
	reqs := make([]Request, len(batch))
	for i, j := range batch {
		reqs[i] = j.req
	}
	resps, err := sh.eng.Submit(reqs)
	if err == nil {
		cycle := int64(sh.eng.Now())
		for _, j := range batch {
			j.span.StampAt(telemetry.StageTranslate, cycle)
		}
		err = sh.eng.PumpRetire()
		cycle = int64(sh.eng.Now())
		for _, j := range batch {
			j.span.StampAt(telemetry.StageSubmit, cycle)
		}
	}
	switch {
	case err == nil:
		sh.batches.Add(1)
		sh.batchOps.Add(uint64(len(batch)))
		return append(pending, pendingBatch{jobs: batch, resps: resps, target: sh.eng.RecordCount()})
	case err == ErrCrashed:
		// The machine lost power. If Submit completed, this batch was
		// applied: its clients get volatile responses flagged crashed.
		// Anything still gated from earlier batches is flagged too —
		// recovery, not the watermark, now judges durability.
		s.crash(sh, &pending, func() {
			cycle := int64(sh.eng.Now())
			if len(resps) == len(batch) {
				for i, j := range batch {
					j.span.StampAt(telemetry.StageDurable, cycle)
					j.deliver(ShardAck{Resp: resps[i], Shard: sh.id, Crashed: true})
				}
			} else {
				for _, j := range batch {
					j.deliver(ShardAck{Shard: sh.id, Err: ErrCrashed})
				}
			}
		})
		return nil
	default:
		for _, j := range batch {
			j.deliver(ShardAck{Shard: sh.id, Err: err})
		}
		return pending
	}
}

// crash marks the shard crashed, flushes gated acks (flagged crashed),
// delivers the crashing batch's acks via deliver, and fires OnCrash once.
func (s *ShardedStore) crash(sh *shard, pending *[]pendingBatch, deliver func()) {
	cycle := int64(sh.eng.Now())
	for _, p := range *pending {
		for i, j := range p.jobs {
			j.span.StampAt(telemetry.StageDurable, cycle)
			j.deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Crashed: true})
		}
	}
	*pending = nil
	if deliver != nil {
		deliver()
	}
	if sh.crashedFl.CompareAndSwap(false, true) && s.cfg.OnCrash != nil {
		s.cfg.OnCrash(sh.id)
	}
}

// Crashed reports whether any shard has hit its crash instant.
func (s *ShardedStore) Crashed() bool {
	for _, sh := range s.shards {
		if sh.crashedFl.Load() {
			return true
		}
	}
	return false
}

// ShardMetrics is a point-in-time view of one shard's queue and commit
// pipeline, complementing the obs.Collector stream a server attaches per
// shard.
type ShardMetrics struct {
	Shard      int       `json:"shard"`
	QueueDepth int       `json:"queue_depth"`
	MailboxCap int       `json:"mailbox_cap"`
	Batches    uint64    `json:"batches"`
	AvgBatch   float64   `json:"avg_batch"`
	Durable    int       `json:"durable_publishes"`
	Total      int       `json:"total_publishes"`
	Cycle      sim.Cycle `json:"cycle"`
	Crashed    bool      `json:"crashed,omitempty"`
}

// Metrics snapshots every shard's pipeline state.
func (s *ShardedStore) Metrics() []ShardMetrics {
	out := make([]ShardMetrics, len(s.shards))
	for i, sh := range s.shards {
		d, total := sh.eng.DurableWatermark()
		m := ShardMetrics{
			Shard:      i,
			QueueDepth: sh.queueDepth(),
			MailboxCap: s.cfg.Mailbox,
			Batches:    sh.batches.Load(),
			Durable:    d,
			Total:      total,
			Cycle:      sh.eng.Now(),
			Crashed:    sh.crashedFl.Load(),
		}
		if m.Batches > 0 {
			m.AvgBatch = float64(sh.batchOps.Load()) / float64(m.Batches)
		}
		out[i] = m
	}
	return out
}

// BeginDrain quiesces the store: new requests are refused (ErrDraining)
// and every shard's mailbox is closed, so each worker commits exactly the
// requests accepted before the drain and then stops. Requests enqueued
// concurrently with BeginDrain either land in the mailbox (and are
// committed before the final barrier) or are refused — never applied
// after the recovery snapshot.
func (s *ShardedStore) BeginDrain() {
	s.drainOnce.Do(func() {
		for _, sh := range s.shards {
			sh.subMu.Lock()
			sh.open = false
			close(sh.mail)
			sh.subMu.Unlock()
		}
	})
}

// ShardResult is one shard's final, verified outcome.
type ShardResult struct {
	Shard     int
	Crashed   bool
	Cycles    sim.Cycle
	Report    *Report
	Recovered map[string][]byte
	// DL is the durable-linearizability verdict (nil unless the shard
	// engine ran with Config.Check).
	DL  *dlcheck.Verdict
	Err error
}

// Close drains the store (BeginDrain + worker quiesce), then closes and
// verifies every shard: clean shards run the full persist drain, crashed
// shards snapshot their NVRAM image at the crash instant; each is checked
// against the §5 invariants and the KV guarantees. The error is the first
// shard verification failure, if any; per-shard outcomes are always
// returned.
func (s *ShardedStore) Close() ([]ShardResult, error) {
	s.BeginDrain()
	s.wg.Wait()
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return s.results, fmt.Errorf("pmkv: store closed")
	}
	s.closed = true
	var firstErr error
	for _, sh := range s.shards {
		r := ShardResult{Shard: sh.id, Crashed: sh.eng.Crashed(), Cycles: sh.eng.Now()}
		res, err := sh.eng.Close()
		if err != nil {
			r.Err = err
		} else {
			r.Report, r.Err = sh.eng.Verify(res)
			if r.Err == nil {
				r.Recovered, r.Err = sh.eng.RecoveredState(res)
			}
			r.DL = sh.eng.CheckDL(res)
			if r.Err == nil && r.DL != nil {
				r.Err = r.DL.Err()
			}
		}
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pmkv: shard %d: %w", sh.id, r.Err)
		}
		s.results = append(s.results, r)
	}
	return s.results, firstErr
}

// CombineFingerprints folds per-shard recovery fingerprints (in shard
// order) into one canonical store fingerprint.
func CombineFingerprints(fps []string) string {
	return stats.MustFingerprint(fps)
}

// MergeRecovered unions per-shard recovered states. Shards partition the
// keyspace, so the maps are disjoint.
func MergeRecovered(results []ShardResult) map[string][]byte {
	out := make(map[string][]byte)
	for _, r := range results {
		for k, v := range r.Recovered {
			out[k] = v
		}
	}
	return out
}
