// Shard-parallel pmkv: the keyspace is partitioned by a stable hash
// across N independent machine instances, each owned by one worker
// goroutine with a bounded mailbox. Workers run a pipelined group
// commit — batch k+1 is translated and fed while batch k's persist
// barriers are still draining — and release client acks only when the
// shard's durable-prefix watermark covers the batch, so an ack is a
// durability guarantee, not just visibility. Shards share no mutable
// state; aggregate throughput scales with host cores and, on any host,
// with the contention relief of smaller per-machine session counts.
package pmkv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"persistbarriers/internal/dlcheck"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/telemetry"
)

// MaxShards bounds the shard count (arbitrary sanity limit).
const MaxShards = 256

// ErrDraining reports that the store has begun its final drain and no
// longer accepts requests; everything already acknowledged is (or will
// be) durable before the recovery snapshot is taken.
var ErrDraining = fmt.Errorf("pmkv: store draining")

// errNoSession reports a request routed without a session handle.
var errNoSession = fmt.Errorf("pmkv: request without session")

// shardHash is the router hash: FNV-1a strengthened with a splitmix64
// finalizer so shard choice decorrelates from the engines' bucket hash
// (both start from raw FNV-1a). It is a pure function of the key bytes —
// the same key maps to the same shard in every process, every run.
func shardHash(key string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ShardOf maps a key to its owning shard in [0, shards).
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(shardHash(key) % uint64(shards))
}

// ShardedConfig sizes a sharded store.
type ShardedConfig struct {
	// Shards is the number of independent engine instances (default 1).
	Shards int
	// Engine is the per-shard engine template. Engine.CrashAt fans out:
	// every shard loses power at that cycle of its own clock.
	Engine Config
	// Mailbox is the per-shard request queue depth (default 256).
	Mailbox int
	// MaxBatch bounds how many mailbox requests one group commit drains
	// (default 64).
	MaxBatch int
	// MinBatch is the floor of the adaptive batch size (default 8, clamped
	// to MaxBatch). Workers start here, double the limit when a gather
	// fills it with requests still queued behind it, and halve it when
	// they have to block for work.
	MinBatch int
	// MaxInFlight bounds how many translated batches may be fed to the
	// machine before one retire pump closes the commit window (default 2,
	// clamped to 1..8). 1 disables pipelining: every batch pays for its
	// own pump, the pre-v2 behavior.
	MaxInFlight int
	// DisableReadFast turns off the lock-free GET fast path. By default
	// Do/DoAsync answer a GET directly from the shard's committed-state
	// read index — no mailbox hop, no translate, no machine time — when
	// the session has no in-flight writes on that shard (so the PR 7
	// snapshot semantics hold: own same-batch writes visible via the
	// fallback, foreign same-batch writes never, because the index only
	// ever holds the durably-acknowledged prefix).
	DisableReadFast bool
	// ConfigureShard, when non-nil, is called with each shard's engine
	// config before construction — the hook servers use to attach a
	// per-shard observability probe.
	ConfigureShard func(shard int, cfg *Config)
	// OnCrash, when non-nil, is called once per shard, from that shard's
	// worker goroutine, after the shard hits its crash instant and its
	// pending acks have been delivered (flagged crashed). Servers use it
	// to self-initiate the drain — but because it runs on the worker, a
	// callback must call BeginDrain from a new goroutine (BeginDrain waits
	// on producers that only this worker can unblock).
	OnCrash func(shard int)
}

func (c *ShardedConfig) fill() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 8
	}
	if c.MinBatch > c.MaxBatch {
		c.MinBatch = c.MaxBatch
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxInFlight > 8 {
		c.MaxInFlight = 8
	}
}

// ShardedSession is one client's handle across every shard: its requests
// execute in program order per shard (global cross-shard order is not
// preserved — the standard sharded-store relaxation).
type ShardedSession struct {
	ID  int
	per []*Session // per-shard engine sessions, indexed by shard
	// pending[shard] counts this session's mutations routed to the shard
	// whose durable acks have not yet been delivered. The GET fast path
	// requires it to be zero: with writes in flight the read falls back
	// to the mailbox so it observes the session's own unacked writes
	// (read-your-writes within the commit window).
	pending []atomic.Int32
}

// ShardAck answers one request routed through the sharded store. For
// mutations the ack is durability-gated: when Err is nil and Crashed is
// false, the shard's durable-prefix watermark covered this request's
// batch at ack time, so the publish — and every earlier accepted write on
// that shard — is in NVRAM. Crashed acks report the volatile response of
// a batch that was applied right as the shard lost power (durability
// unknown, judged by recovery).
type ShardAck struct {
	Resp    Response
	Shard   int
	Durable int // shard durable-prefix watermark at ack time
	Crashed bool
	// Fast marks a GET answered on the lock-free fast path (from the
	// shard's committed-state index, on the caller's goroutine).
	Fast bool
	Err  error
}

// Completion pairs a ShardAck with the caller-chosen tag that routed it,
// for async delivery to a shared completion queue: a pipelined server
// keys each in-flight request by tag and matches acks out of order, the
// same way the wire protocol keys responses by request id.
type Completion struct {
	Tag uint64
	Ack ShardAck
}

type shardJob struct {
	req Request
	// done receives exactly one Completion carrying tag. Shard workers
	// deliver with a plain channel send and must never block on a slow
	// consumer, so the caller guarantees free capacity for every
	// outstanding request it has routed to done (DoSpan uses a private
	// one-slot channel; pipelined servers bound in-flight requests by the
	// queue's capacity).
	done chan<- Completion
	tag  uint64
	// span, when non-nil, is the caller-owned telemetry record the
	// pipeline stamps as the job moves through mailbox, translate,
	// retirement, and the durable watermark. A nil span costs one branch
	// per stamp site.
	span *telemetry.Span
	// pend, set for mutations, is the session's per-shard in-flight
	// write counter; deliver decrements it on a successful durable ack.
	pend *atomic.Int32
}

// deliver sends the job's completion. See shardJob.done for why this
// must never block in practice. A mutation's pending count drops only on
// a clean durable ack — crashed or errored writes leave it raised, so
// the session's GETs stay on the slow path (conservative: the fast path
// must never skip a write whose durability is unsettled).
func (j *shardJob) deliver(a ShardAck) {
	if j.pend != nil && a.Err == nil && !a.Crashed {
		j.pend.Add(-1)
	}
	j.done <- Completion{Tag: j.tag, Ack: a}
}

// shard is one partition: an engine, its mailbox, and its worker state.
type shard struct {
	id    int
	eng   *Engine
	mail  chan shardJob
	idx   *readIndex   // committed-state index behind the GET fast path
	subMu sync.RWMutex // senders hold R; drain holds W to flip accepting+close
	open  bool         // guarded by subMu

	// metrics
	enq       atomic.Uint64
	deq       atomic.Uint64
	batches   atomic.Uint64
	batchOps  atomic.Uint64
	batchHist telemetry.AtomicHist // group-commit size distribution
	batchLim  atomic.Int64         // live adaptive batch limit
	fastHits  atomic.Uint64        // GETs served on the fast path
	fastFalls atomic.Uint64        // GETs that fell back to the mailbox
	crashedFl atomic.Bool
}

// queueDepth is the number of requests accepted but not yet group-committed.
func (sh *shard) queueDepth() int { return int(sh.enq.Load() - sh.deq.Load()) }

// ShardedStore partitions the keyspace across independent engines. All
// methods are safe for concurrent use; request routing takes no global
// lock — a pure hash picks the shard and a per-shard mailbox carries the
// request to that shard's worker.
type ShardedStore struct {
	cfg      ShardedConfig
	readFast bool // GET fast path enabled (cfg.DisableReadFast inverted)
	draining atomic.Bool
	shards   []*shard

	sessMu   sync.Mutex
	sessions int

	drainOnce sync.Once
	wg        sync.WaitGroup

	closeMu sync.Mutex
	closed  bool
	results []ShardResult
}

// NewSharded builds the store and starts one worker per shard.
func NewSharded(cfg ShardedConfig) (*ShardedStore, error) {
	cfg.fill()
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("pmkv: Shards must be in 1..%d, got %d", MaxShards, cfg.Shards)
	}
	s := &ShardedStore{cfg: cfg, readFast: !cfg.DisableReadFast}
	for i := 0; i < cfg.Shards; i++ {
		ecfg := cfg.Engine
		if cfg.ConfigureShard != nil {
			cfg.ConfigureShard(i, &ecfg)
		}
		eng, err := New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("pmkv: shard %d: %w", i, err)
		}
		sh := &shard{
			id:   i,
			eng:  eng,
			mail: make(chan shardJob, cfg.Mailbox),
			idx:  newReadIndex(),
			open: true,
		}
		sh.batchLim.Store(int64(cfg.MinBatch))
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			s.runShard(sh)
		}(sh)
	}
	return s, nil
}

// Shards reports the shard count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// NewSession opens a client session on every shard. Creation is
// serialized so each shard binds the session to the same core slot.
func (s *ShardedStore) NewSession() *ShardedSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := &ShardedSession{
		ID:      s.sessions,
		per:     make([]*Session, len(s.shards)),
		pending: make([]atomic.Int32, len(s.shards)),
	}
	s.sessions++
	for i, sh := range s.shards {
		sess.per[i] = sh.eng.NewSession()
	}
	return sess
}

// Do routes one request to its key's shard and blocks until the shard
// acks it (for mutations: until the publish is durable, the shard
// crashed, or the store refused the request).
func (s *ShardedStore) Do(sess *ShardedSession, op Op, key string, value []byte) ShardAck {
	return s.DoSpan(sess, op, key, value, nil)
}

// DoSpan is Do with a caller-owned telemetry span: the router stamps
// shard-route and mailbox-enqueue, and the shard worker stamps dequeue,
// translate, submit, and durable-watermark as the request moves through
// its pipeline. span may be nil (then DoSpan is exactly Do).
func (s *ShardedStore) DoSpan(sess *ShardedSession, op Op, key string, value []byte, span *telemetry.Span) ShardAck {
	done := make(chan Completion, 1)
	shard, err := s.DoAsync(sess, op, key, value, span, 0, done)
	if err != nil {
		return ShardAck{Shard: shard, Err: err}
	}
	return (<-done).Ack
}

// DoAsync routes one request to its key's shard and returns immediately;
// the ack is delivered later to done as a Completion carrying tag, from
// the shard worker, at whichever of the ack-release sites fires first
// (durable watermark, crash delivery, or engine error). The returned
// shard id is valid even on error (-1 only when sess is nil).
//
// done is the caller's completion queue. The shard worker's send is
// unconditional, so the caller must guarantee capacity: never have more
// requests outstanding against done than its free buffer slots. A
// pipelined connection enforces this with a window semaphore sized to
// the queue.
//
// An error return (ErrDraining, nil session) means the request was NOT
// routed and no completion will arrive for it.
//
// GETs take the lock-free fast path when the store allows it: the
// completion is delivered inline, on the caller's goroutine, before
// DoAsync returns (it consumes one slot of done's free capacity exactly
// like a worker delivery would).
func (s *ShardedStore) DoAsync(sess *ShardedSession, op Op, key string, value []byte, span *telemetry.Span, tag uint64, done chan<- Completion) (int, error) {
	if sess == nil {
		return -1, errNoSession
	}
	id := ShardOf(key, len(s.shards))
	span.Stamp(telemetry.StageShardRoute)
	sh := s.shards[id]
	if op == Get && s.readFast {
		if sess.pending[id].Load() == 0 && !s.draining.Load() && !sh.crashedFl.Load() {
			// The index holds exactly the durably-acknowledged prefix:
			// pending==0 means every one of this session's writes here is
			// acked, and the worker publishes a batch's records before
			// releasing its acks, so the session's own writes are present
			// and any missing foreign write is unacked (free to linearize
			// after this read). Absence is therefore an authoritative
			// not-found.
			val, found, rec := sh.idx.get(key)
			sh.eng.ObserveFastRead(sess.per[id].ID, key, rec)
			sh.fastHits.Add(1)
			span.Stamp(telemetry.StageDurable)
			done <- Completion{Tag: tag, Ack: ShardAck{
				Resp:    Response{Found: found, Value: val},
				Shard:   id,
				Durable: sh.idx.watermark(),
				Fast:    true,
			}}
			return id, nil
		}
		sh.fastFalls.Add(1)
	}
	j := shardJob{
		req:  Request{Sess: sess.per[id], Op: op, Key: key, Value: value},
		done: done,
		tag:  tag,
		span: span,
	}
	if op != Get {
		sess.pending[id].Add(1)
		j.pend = &sess.pending[id]
	}
	sh.subMu.RLock()
	if !sh.open {
		sh.subMu.RUnlock()
		if j.pend != nil {
			j.pend.Add(-1) // refused: no completion will arrive
		}
		return id, ErrDraining
	}
	sh.mail <- j
	sh.enq.Add(1)
	sh.subMu.RUnlock()
	span.Stamp(telemetry.StageEnqueue)
	return id, nil
}

// pendingBatch is one group commit in flight: after Submit its volatile
// responses are known (fed, awaiting retirement); after the retire pump
// its durability ack is gated on the durable-prefix watermark.
type pendingBatch struct {
	jobs   []shardJob
	resps  []Response
	target int // RecordCount after this batch's Submit
}

// shardWorker is runShard's per-goroutine state: the bounded in-flight
// pipeline, the adaptive batch limit, and the slice pools that keep the
// steady-state commit path free of allocations.
type shardWorker struct {
	s  *ShardedStore
	sh *shard

	open bool
	// fed holds batches translated and fed to the machine but not yet
	// retired; pending holds retired batches whose acks await the
	// watermark. Feeding batch k+1 while batch k's persist traffic
	// drains is the pipeline.
	fed     []pendingBatch
	pending []pendingBatch

	// limit is the adaptive batch size in [MinBatch, MaxBatch].
	limit int

	// dry records that the persist machinery has nothing scheduled while
	// acks are still gated: durability cannot advance until new work
	// arrives, so the worker blocks instead of spinning on the mailbox.
	dry bool

	reqs     []Request // reusable Submit argument (the engine copies what it keeps)
	jobFree  [][]shardJob
	respFree [][]Response
}

// runShard is the shard's worker: the engine's single writer. Each pass
// gathers a batch, translates and feeds it, and either goes straight
// back for the next batch (window room and requests still queued — the
// pump is deferred so translate overlaps the previous batches' persist
// traffic) or pumps retirement and releases whatever acks the watermark
// now covers.
func (s *ShardedStore) runShard(sh *shard) {
	w := &shardWorker{s: s, sh: sh, open: true, limit: int(sh.batchLim.Load())}
	for w.open || len(w.fed)+len(w.pending) > 0 {
		batch := w.gather()
		if len(batch) == 0 {
			w.putJobs(batch)
		} else if !w.submit(batch) {
			continue
		}
		if w.open && len(w.fed) > 0 && len(w.fed) < s.cfg.MaxInFlight && len(sh.mail) > 0 {
			continue // pipeline: translate the next batch before pumping
		}
		if len(w.fed) > 0 && !w.pump() {
			continue
		}
		w.release()
	}
}

// gather drains up to limit requests from the mailbox without blocking —
// unless the worker has nothing in flight (or the machinery is dry with
// acks gated, so only new work can advance durability), in which case it
// blocks for the first request. Blocking shrinks the adaptive limit;
// filling it with requests still queued grows it.
func (w *shardWorker) gather() []shardJob {
	sh := w.sh
	batch := w.takeJobs()
	if w.open && (len(w.fed)+len(w.pending) == 0 || w.dry) {
		j, ok := <-sh.mail
		if !ok {
			w.open = false
			return batch
		}
		j.span.Stamp(telemetry.StageDequeue)
		batch = append(batch, j)
		sh.deq.Add(1)
		w.setLimit(w.limit / 2)
	}
	for w.open && len(batch) < w.limit {
		select {
		case j, ok := <-sh.mail:
			if !ok {
				w.open = false
				return batch
			}
			j.span.Stamp(telemetry.StageDequeue)
			batch = append(batch, j)
			sh.deq.Add(1)
		default:
			return batch
		}
	}
	if len(batch) == w.limit && len(sh.mail) > 0 {
		w.setLimit(w.limit * 2)
	}
	return batch
}

// setLimit moves the adaptive batch limit, clamped to its config bounds,
// publishing changes to the live gauge.
func (w *shardWorker) setLimit(l int) {
	if l < w.s.cfg.MinBatch {
		l = w.s.cfg.MinBatch
	}
	if l > w.s.cfg.MaxBatch {
		l = w.s.cfg.MaxBatch
	}
	if l != w.limit {
		w.limit = l
		w.sh.batchLim.Store(int64(l))
	}
}

// submit translates and feeds one batch. No simulated time passes: the
// machine only schedules the ops, so earlier batches' persist traffic
// keeps draining underneath. Reports false when the batch was refused
// and the main loop should re-evaluate from the top.
func (w *shardWorker) submit(batch []shardJob) bool {
	sh := w.sh
	w.reqs = w.reqs[:0]
	for i := range batch {
		w.reqs = append(w.reqs, batch[i].req)
	}
	resps, err := sh.eng.SubmitAppend(w.takeResps(), w.reqs)
	switch {
	case err == nil:
		cycle := int64(sh.eng.Now())
		for i := range batch {
			batch[i].span.StampAt(telemetry.StageTranslate, cycle)
		}
		sh.batchHist.Observe(uint64(len(batch)))
		sh.batches.Add(1)
		sh.batchOps.Add(uint64(len(batch)))
		w.fed = append(w.fed, pendingBatch{jobs: batch, resps: resps, target: sh.eng.RecordCount()})
		w.dry = false
		return true
	case err == ErrCrashed:
		// The machine lost power before this batch could be fed (Submit
		// refuses wholesale once crashed): its clients see the error, and
		// everything in flight gets crashed acks.
		w.crashFlush()
		for i := range batch {
			batch[i].deliver(ShardAck{Shard: sh.id, Err: ErrCrashed})
		}
		w.putJobs(batch)
		return false
	default:
		for i := range batch {
			batch[i].deliver(ShardAck{Shard: sh.id, Err: err})
		}
		w.putJobs(batch)
		return false
	}
}

// pump retires everything fed since the last pump: one PumpRetire closes
// the commit window for every in-flight batch at once, and their acks
// move to the watermark gate. Reports false on a crash (pipeline state
// was flushed).
func (w *shardWorker) pump() bool {
	sh := w.sh
	err := sh.eng.PumpRetire()
	switch {
	case err == nil:
		cycle := int64(sh.eng.Now())
		for _, p := range w.fed {
			for i := range p.jobs {
				p.jobs[i].span.StampAt(telemetry.StageSubmit, cycle)
			}
		}
		w.pending = append(w.pending, w.fed...)
		w.fed = w.fed[:0]
		return true
	case err == ErrCrashed:
		// The machine lost power mid-retire. The fed batches were applied:
		// their clients get volatile responses flagged crashed — recovery,
		// not the watermark, now judges durability.
		w.crashFlush()
		return false
	default:
		for _, p := range w.fed {
			for i := range p.jobs {
				p.jobs[i].deliver(ShardAck{Shard: sh.id, Err: err})
			}
			w.recycle(p)
		}
		w.fed = w.fed[:0]
		return true
	}
}

// release delivers acks for retired batches the durable watermark
// covers. With requests queued behind it the watermark is only polled
// (and a crash surfaced there is routed to the flush, where the pre-v2
// busy path dropped the error and waited for durability that could
// never come); with an idle mailbox one BatchGap of simulated time
// advances per call, so the worker re-polls the mailbox between gap
// steps instead of going blind inside the old WaitDurable loop.
func (w *shardWorker) release() {
	sh := w.sh
	if len(w.pending) == 0 {
		return
	}
	var durable int
	var dry bool
	var err error
	if len(sh.mail) > 0 {
		durable, _, err = sh.eng.DurableWatermark()
	} else {
		durable, dry, err = sh.eng.StepDurable(w.pending[len(w.pending)-1].target)
	}
	switch {
	case err == ErrCrashed:
		w.crashFlush()
		return
	case err != nil:
		for _, p := range w.pending {
			for i := range p.jobs {
				p.jobs[i].deliver(ShardAck{Shard: sh.id, Err: err})
			}
			w.recycle(p)
		}
		w.pending = w.pending[:0]
		return
	}
	// Publish the newly durable records into the read index BEFORE any
	// ack below is delivered: a client that has received a durable ack
	// must find that write on the fast path (the atomic bucket store
	// happens-before the ack's channel send, which happens-before the
	// client's next request).
	if w.s.readFast && durable > 0 {
		sh.idx.publish(sh.eng.Records(), durable)
	}
	cycle := int64(sh.eng.Now())
	for len(w.pending) > 0 && w.pending[0].target <= durable {
		p := w.pending[0]
		n := copy(w.pending, w.pending[1:])
		w.pending[n] = pendingBatch{}
		w.pending = w.pending[:n]
		// These acks promise durability: record the obligation so the
		// checker can hold the crash image to it.
		sh.eng.DL().AckDurable(p.target)
		for i := range p.jobs {
			p.jobs[i].span.StampAt(telemetry.StageDurable, cycle)
			p.jobs[i].deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Durable: durable})
		}
		w.recycle(p)
	}
	if len(w.pending) == 0 {
		w.dry = false
		return
	}
	if !w.open && sh.eng.Quiesced() {
		// Mailbox closed and the machinery ran dry with acks still gated:
		// only Close's final drain persists the rest. Ack now — Close runs
		// the full drain before the recovery snapshot, so durability still
		// precedes the snapshot (and the acks remain checker obligations).
		for _, p := range w.pending {
			sh.eng.DL().AckDurable(p.target)
			for i := range p.jobs {
				p.jobs[i].span.StampAt(telemetry.StageDurable, cycle)
				p.jobs[i].deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Durable: durable})
			}
			w.recycle(p)
		}
		w.pending = w.pending[:0]
		return
	}
	w.dry = dry
}

// crashFlush delivers crashed acks for everything in flight — retired
// batches still gated and fed batches whose retirement raced the power
// loss — then fires OnCrash once.
func (w *shardWorker) crashFlush() {
	sh := w.sh
	cycle := int64(sh.eng.Now())
	for _, list := range [2][]pendingBatch{w.pending, w.fed} {
		for _, p := range list {
			for i := range p.jobs {
				p.jobs[i].span.StampAt(telemetry.StageDurable, cycle)
				p.jobs[i].deliver(ShardAck{Resp: p.resps[i], Shard: sh.id, Crashed: true})
			}
			w.recycle(p)
		}
	}
	w.pending = w.pending[:0]
	w.fed = w.fed[:0]
	if sh.crashedFl.CompareAndSwap(false, true) && w.s.cfg.OnCrash != nil {
		w.s.cfg.OnCrash(sh.id)
	}
}

// takeJobs pops a pooled gather buffer (capacity MaxBatch).
func (w *shardWorker) takeJobs() []shardJob {
	if n := len(w.jobFree); n > 0 {
		b := w.jobFree[n-1]
		w.jobFree = w.jobFree[:n-1]
		return b
	}
	return make([]shardJob, 0, w.s.cfg.MaxBatch)
}

// putJobs clears a job slice (dropping the completion-channel, span, and
// request-value references its slots pin) and returns it to the pool.
func (w *shardWorker) putJobs(jobs []shardJob) {
	for i := range jobs {
		jobs[i] = shardJob{}
	}
	w.jobFree = append(w.jobFree, jobs[:0])
}

// takeResps pops a pooled response buffer for SubmitAppend.
func (w *shardWorker) takeResps() []Response {
	if n := len(w.respFree); n > 0 {
		b := w.respFree[n-1]
		w.respFree = w.respFree[:n-1]
		return b
	}
	return make([]Response, 0, w.s.cfg.MaxBatch)
}

// recycle returns a delivered batch's slices to the pools.
func (w *shardWorker) recycle(p pendingBatch) {
	w.putJobs(p.jobs)
	for i := range p.resps {
		p.resps[i] = Response{}
	}
	w.respFree = append(w.respFree, p.resps[:0])
}

// Crashed reports whether any shard has hit its crash instant.
func (s *ShardedStore) Crashed() bool {
	for _, sh := range s.shards {
		if sh.crashedFl.Load() {
			return true
		}
	}
	return false
}

// ShardMetrics is a point-in-time view of one shard's queue and commit
// pipeline, complementing the obs.Collector stream a server attaches per
// shard.
type ShardMetrics struct {
	Shard      int       `json:"shard"`
	QueueDepth int       `json:"queue_depth"`
	MailboxCap int       `json:"mailbox_cap"`
	Batches    uint64    `json:"batches"`
	AvgBatch   float64   `json:"avg_batch"`
	BatchLimit int       `json:"batch_limit"` // live adaptive batch limit
	Durable    int       `json:"durable_publishes"`
	Total      int       `json:"total_publishes"`
	Cycle      sim.Cycle `json:"cycle"`
	Crashed    bool      `json:"crashed,omitempty"`
	// FastHits / FastFallbacks count GETs answered on the lock-free fast
	// path vs routed through the mailbox while the fast path was on;
	// ReadPublished is the durable-prefix watermark the read index covers.
	FastHits      uint64 `json:"read_fast_hits"`
	FastFallbacks uint64 `json:"read_fallbacks"`
	ReadPublished int    `json:"read_published"`
	// BatchSizes is the group-commit size distribution (power-of-two
	// buckets; Counts[b] holds batches of size in (2^(b-1)-1, 2^b-1]).
	BatchSizes telemetry.HistSnapshot `json:"batch_sizes"`
}

// Metrics snapshots every shard's pipeline state.
func (s *ShardedStore) Metrics() []ShardMetrics {
	out := make([]ShardMetrics, len(s.shards))
	for i, sh := range s.shards {
		d, total, _ := sh.eng.DurableWatermark()
		m := ShardMetrics{
			Shard:         i,
			QueueDepth:    sh.queueDepth(),
			MailboxCap:    s.cfg.Mailbox,
			Batches:       sh.batches.Load(),
			BatchLimit:    int(sh.batchLim.Load()),
			Durable:       d,
			Total:         total,
			Cycle:         sh.eng.Now(),
			Crashed:       sh.crashedFl.Load(),
			FastHits:      sh.fastHits.Load(),
			FastFallbacks: sh.fastFalls.Load(),
			ReadPublished: sh.idx.watermark(),
			BatchSizes:    sh.batchHist.Snapshot(),
		}
		if m.Batches > 0 {
			m.AvgBatch = float64(sh.batchOps.Load()) / float64(m.Batches)
		}
		out[i] = m
	}
	return out
}

// BeginDrain quiesces the store: new requests are refused (ErrDraining)
// and every shard's mailbox is closed, so each worker commits exactly the
// requests accepted before the drain and then stops. Requests enqueued
// concurrently with BeginDrain either land in the mailbox (and are
// committed before the final barrier) or are refused — never applied
// after the recovery snapshot.
func (s *ShardedStore) BeginDrain() {
	s.drainOnce.Do(func() {
		// The fast path shuts first: a GET racing the drain either served
		// before the flag flipped (still the durable prefix — consistent
		// with any recovery) or falls back and is refused like a write.
		s.draining.Store(true)
		for _, sh := range s.shards {
			sh.subMu.Lock()
			sh.open = false
			close(sh.mail)
			sh.subMu.Unlock()
		}
	})
}

// ShardResult is one shard's final, verified outcome.
type ShardResult struct {
	Shard     int
	Crashed   bool
	Cycles    sim.Cycle
	Report    *Report
	Recovered map[string][]byte
	// DL is the durable-linearizability verdict (nil unless the shard
	// engine ran with Config.Check).
	DL  *dlcheck.Verdict
	Err error
}

// Close drains the store (BeginDrain + worker quiesce), then closes and
// verifies every shard: clean shards run the full persist drain, crashed
// shards snapshot their NVRAM image at the crash instant; each is checked
// against the §5 invariants and the KV guarantees. The error is the first
// shard verification failure, if any; per-shard outcomes are always
// returned.
func (s *ShardedStore) Close() ([]ShardResult, error) {
	s.BeginDrain()
	s.wg.Wait()
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return s.results, fmt.Errorf("pmkv: store closed")
	}
	s.closed = true
	// Shards share no state, so their final drains and verifications run
	// concurrently; results land in shard order regardless.
	results := make([]ShardResult, len(s.shards))
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			r := ShardResult{Shard: sh.id, Crashed: sh.eng.Crashed(), Cycles: sh.eng.Now()}
			res, err := sh.eng.Close()
			if err != nil {
				r.Err = err
			} else {
				r.Report, r.Err = sh.eng.Verify(res)
				if r.Err == nil {
					r.Recovered, r.Err = sh.eng.RecoveredState(res)
				}
				r.DL = sh.eng.CheckDL(res)
				if r.Err == nil && r.DL != nil {
					r.Err = r.DL.Err()
				}
			}
			results[sh.id] = r
		}(sh)
	}
	wg.Wait()
	var firstErr error
	for i := range results {
		if results[i].Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pmkv: shard %d: %w", results[i].Shard, results[i].Err)
		}
	}
	s.results = results
	return s.results, firstErr
}

// CombineFingerprints folds per-shard recovery fingerprints (in shard
// order) into one canonical store fingerprint.
func CombineFingerprints(fps []string) string {
	return stats.MustFingerprint(fps)
}

// MergeRecovered unions per-shard recovered states. Shards partition the
// keyspace, so the maps are disjoint.
func MergeRecovered(results []ShardResult) map[string][]byte {
	out := make(map[string][]byte)
	for _, r := range results {
		for k, v := range r.Recovered {
			out[k] = v
		}
	}
	return out
}
