package pmkv

import (
	"strings"
	"testing"

	"persistbarriers/internal/mem"
)

// synthRecord builds a minimal mutation record for session-order tests:
// each publish gets its own head line so durability can be set per
// record without fighting the per-line version order.
func synthRecord(sess, seq int, token uint64, head mem.Line) *OpRecord {
	return &OpRecord{Sess: sess, Seq: seq, Op: Put, Key: "k", Head: head, PubToken: token}
}

// TestSessionOrderErrorsCollectsAll: an image where one session has two
// durable publishes after a lost one, and another session has one, must
// report all three violations — not just the first — in deterministic
// session/seq order.
func TestSessionOrderErrorsCollectsAll(t *testing.T) {
	var records []*OpRecord
	tokens := make(map[uint64]mem.Version)
	image := make(map[mem.Line]mem.Version)
	nextLine := mem.Addr(0x7000_0000)
	add := func(sess, seq int, token uint64, durable bool) {
		head := mem.LineOf(nextLine)
		nextLine += mem.LineSize
		records = append(records, synthRecord(sess, seq, token, head))
		tokens[token] = mem.Version(token)
		if durable {
			image[head] = mem.Version(token)
		}
	}
	// Session 0: seq 0 lost, seq 1 and 2 durable => two violations.
	add(0, 0, 1, false)
	add(0, 1, 2, true)
	add(0, 2, 3, true)
	// Session 1: seq 0 durable, seq 1 lost, seq 2 durable => one violation.
	add(1, 0, 4, true)
	add(1, 1, 5, false)
	add(1, 2, 6, true)
	// Session 2: clean prefix => no violations.
	add(2, 0, 7, true)
	add(2, 1, 8, false)

	errs := sessionOrderErrors(records, tokens, image)
	if len(errs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(errs), errs)
	}
	want := []string{
		"session 0 publish seq 1 durable while earlier seq 0 was lost",
		"session 0 publish seq 2 durable while earlier seq 0 was lost",
		"session 1 publish seq 2 durable while earlier seq 1 was lost",
	}
	for i, w := range want {
		if !strings.Contains(errs[i].Error(), w) {
			t.Fatalf("violation %d = %q, want it to contain %q", i, errs[i], w)
		}
	}
}

// TestSessionOrderErrorsCleanImage: durable prefixes produce no errors,
// including the all-lost and all-durable edges.
func TestSessionOrderErrorsCleanImage(t *testing.T) {
	tokens := map[uint64]mem.Version{1: 1, 2: 2, 3: 3}
	h1, h2, h3 := mem.LineOf(0x7100_0000), mem.LineOf(0x7100_0040), mem.LineOf(0x7100_0080)
	records := []*OpRecord{
		synthRecord(0, 0, 1, h1),
		synthRecord(0, 1, 2, h2),
		synthRecord(0, 2, 3, h3),
	}
	if errs := sessionOrderErrors(records, tokens, map[mem.Line]mem.Version{h1: 1, h2: 2, h3: 3}); len(errs) != 0 {
		t.Fatalf("all-durable session flagged: %v", errs)
	}
	if errs := sessionOrderErrors(records, tokens, map[mem.Line]mem.Version{}); len(errs) != 0 {
		t.Fatalf("all-lost session flagged: %v", errs)
	}
	if errs := sessionOrderErrors(records, tokens, map[mem.Line]mem.Version{h1: 1}); len(errs) != 0 {
		t.Fatalf("durable prefix flagged: %v", errs)
	}
}
