package pmkv

import (
	"fmt"
	"testing"

	"persistbarriers/internal/dlcheck"
)

// checkSpec keeps the checker tests aligned with the headline sweep.
func checkSpec() ScriptSpec { return testSpec() }

// TestCheckDisabledIsNil: without Config.Check the tracker is absent and
// every hook is the nil-receiver no-op (the zero-alloc guard for the
// no-op itself lives in internal/dlcheck).
func TestCheckDisabledIsNil(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.DL() != nil {
		t.Fatal("tracker present without Config.Check")
	}
	out, err := RunScript(Config{}, checkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if out.DL != nil {
		t.Fatal("RunResult carries a verdict without Config.Check")
	}
}

// TestCheckCleanRun: a clean drain must be durably linearizable with
// every publish durable.
func TestCheckCleanRun(t *testing.T) {
	out, err := RunScript(Config{Check: true}, checkSpec())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	v := out.DL
	if v == nil || !v.OK() {
		t.Fatalf("clean run verdict: %v", v)
	}
	if v.Publishes == 0 || v.Durable != v.Publishes || v.Reads == 0 {
		t.Fatalf("clean verdict counters: %+v", v)
	}
}

// TestCheckCrashSweep is the checker acceptance sweep: every crash
// instant's image must be durably linearizable. RunScript already fails
// the run on a bad verdict; this pins it across the full sweep.
func TestCheckCrashSweep(t *testing.T) {
	instants := 200
	if testing.Short() {
		instants = 12
	}
	spec := checkSpec()
	clean, err := RunScript(Config{Check: true}, spec)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	for _, at := range SweepInstants(clean.Cycles, instants) {
		out, err := RunScript(Config{CrashAt: at, Check: true}, spec)
		if err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
		if out.DL == nil {
			t.Fatalf("crash at %d: no verdict", at)
		}
	}
}

// shard0Keys returns n distinct keys that all route to shard 0 of a
// 4-way store, so a 4-shard run executes the whole script on shard 0
// with batches identical to the single-engine run.
func shard0Keys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("m%03d", i)
		if ShardOf(k, 4) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// verdictSig summarizes a verdict for cross-run comparison.
func verdictSig(v *dlcheck.Verdict) string {
	if v == nil {
		return "<nil>"
	}
	return v.String()
}

// TestCheckMetamorphicShards: for scripts whose keys all live on shard 0,
// the 1-shard and 4-shard runs execute identical batches on that engine,
// so the checker verdicts must be identical at every crash instant — the
// sharded/unsharded equivalence pinned beyond fingerprint identity.
func TestCheckMetamorphicShards(t *testing.T) {
	instants := 200
	if testing.Short() {
		instants = 8
	}
	spec := ScriptSpec{Sessions: 4, Rounds: 12, ValueBytes: 96, Seed: 1107, Keys: shard0Keys(10)}
	single, err := RunScript(Config{Check: true}, spec)
	if err != nil {
		t.Fatalf("clean single-shard run: %v", err)
	}
	for _, at := range append(SweepInstants(single.Cycles, instants), 0) {
		one, err := RunScript(Config{CrashAt: at, Check: true}, spec)
		if err != nil {
			t.Fatalf("1-shard crash at %d: %v", at, err)
		}
		four, err := RunShardedScript(ShardedConfig{Shards: 4, Engine: Config{CrashAt: at, Check: true}}, spec)
		if err != nil {
			t.Fatalf("4-shard crash at %d: %v", at, err)
		}
		got, want := verdictSig(four.PerShard[0].DL), verdictSig(one.DL)
		if got != want {
			t.Fatalf("crash at %d: shard-0 verdict %q != single-shard verdict %q", at, got, want)
		}
		if one.Report.Fingerprint != four.PerShard[0].Report.Fingerprint {
			t.Fatalf("crash at %d: shard-0 fingerprint diverged from single-shard", at)
		}
		for s := 1; s < 4; s++ {
			v := four.PerShard[s].DL
			if v == nil || !v.OK() || v.Publishes != 0 {
				t.Fatalf("crash at %d: idle shard %d verdict %v", at, s, v)
			}
		}
	}
}

// corruptBase runs a deliberately observable workload on one engine and
// hands back the engine plus its clean image: a cross-session chain
// (put, foreign read, foreign put) and a delete observed by a third
// session. Every mutation test corrupts a Clone of the image.
func corruptBase(t *testing.T) (*Engine, *dlcheck.Image) {
	t.Helper()
	e, err := New(Config{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	s := []*Session{e.NewSession(), e.NewSession(), e.NewSession()}
	batches := [][]Request{
		{{Sess: s[0], Op: Put, Key: "alpha", Value: []byte("a1")}},   // rec 0
		{{Sess: s[1], Op: Get, Key: "alpha"}},                        // s1 observes rec 0
		{{Sess: s[1], Op: Put, Key: "beta", Value: []byte("b1")}},    // rec 1
		{{Sess: s[0], Op: Delete, Key: "alpha"}},                     // rec 2 (tombstone)
		{{Sess: s[2], Op: Get, Key: "alpha"}},                        // s2 observes the tombstone
		{{Sess: s[2], Op: Put, Key: "gamma", Value: []byte("g1")}},   // rec 3
		{{Sess: s[0], Op: Put, Key: "delta", Value: []byte("d1")}},   // rec 4
		{{Sess: s[0], Op: Put, Key: "epsilon", Value: []byte("e1")}}, // rec 5
	}
	for _, b := range batches {
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Close()
	if err != nil {
		t.Fatal(err)
	}
	img := e.DLImage(res)
	if v := e.DL().Check(img); !v.OK() {
		t.Fatalf("clean image rejected: %s", v)
	}
	return e, img
}

// setDurable flips one record's durability in the image.
func setDurable(t *testing.T, img *dlcheck.Image, rec int, durable bool) {
	t.Helper()
	for i := range img.Order {
		if img.Order[i].Rec == rec {
			img.Order[i].Durable = durable
			return
		}
	}
	t.Fatalf("rec %d not in image", rec)
}

func violationKinds(v *dlcheck.Verdict) map[dlcheck.Kind]int {
	out := make(map[dlcheck.Kind]int)
	for _, viol := range v.Violations {
		out[viol.Kind]++
	}
	return out
}

// TestMutationDropAckedPublish: corrupting the image to lose a publish
// the store acked durable must be rejected as acked-lost.
func TestMutationDropAckedPublish(t *testing.T) {
	e, img := corruptBase(t)
	e.DL().AckDurable(6) // the store acked every mutation durable
	bad := img.Clone()
	setDurable(t, bad, 5, false) // tail publish: no hb successor, pure ack loss
	v := e.DL().Check(bad)
	if v.OK() {
		t.Fatal("dropped acked publish accepted")
	}
	k := violationKinds(v)
	if k[dlcheck.KindAckedLost] != 1 {
		t.Fatalf("want one acked-lost, got %v (%s)", k, v)
	}
	if v.Violations[0].Rec != 5 {
		t.Fatalf("diagnostic names rec %d, want 5: %s", v.Violations[0].Rec, v.Violations[0].Msg)
	}
}

// TestMutationReorderHBVersions: inverting durability across a
// happens-before edge — the observed put lost while the observer's later
// put survives — must be rejected as an hb-order violation (and the
// contradicted read reported too).
func TestMutationReorderHBVersions(t *testing.T) {
	e, img := corruptBase(t)
	bad := img.Clone()
	setDurable(t, bad, 0, false) // alpha=a1 lost; s1 read it, then wrote beta (rec 1, durable)
	v := e.DL().Check(bad)
	if v.OK() {
		t.Fatal("hb-inverted image accepted")
	}
	k := violationKinds(v)
	if k[dlcheck.KindHBOrder] == 0 {
		t.Fatalf("want hb-order, got %v (%s)", k, v)
	}
	if k[dlcheck.KindReadContradiction] == 0 {
		t.Fatalf("want the contradicted read reported too, got %v (%s)", k, v)
	}
}

// TestMutationResurrectDeletedKey: losing a tombstone a client observed,
// while the observer's later write survives, resurrects the key and must
// be rejected as a read contradiction naming the key.
func TestMutationResurrectDeletedKey(t *testing.T) {
	e, img := corruptBase(t)
	bad := img.Clone()
	setDurable(t, bad, 2, false) // alpha's tombstone lost => alpha resurrected
	v := e.DL().Check(bad)
	if v.OK() {
		t.Fatal("resurrected delete accepted")
	}
	k := violationKinds(v)
	if k[dlcheck.KindReadContradiction] == 0 {
		t.Fatalf("want read-contradiction, got %v (%s)", k, v)
	}
	found := false
	for _, viol := range v.Violations {
		if viol.Kind == dlcheck.KindReadContradiction && viol.Key == "alpha" && viol.Other == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no read-contradiction naming alpha/rec 2: %s", v)
	}
}

// TestMutationDiagnosticsDistinct: the three mutations produce three
// distinct primary diagnostics (guards against one catch-all error).
func TestMutationDiagnosticsDistinct(t *testing.T) {
	e, img := corruptBase(t)
	e.DL().AckDurable(6)
	kinds := make(map[dlcheck.Kind]bool)
	for _, m := range []struct {
		rec  int
		want dlcheck.Kind
	}{
		{5, dlcheck.KindAckedLost},
		{0, dlcheck.KindHBOrder},
		{2, dlcheck.KindReadContradiction},
	} {
		bad := img.Clone()
		setDurable(t, bad, m.rec, false)
		v := e.DL().Check(bad)
		if violationKinds(v)[m.want] == 0 {
			t.Fatalf("mutating rec %d: want kind %v, got %s", m.rec, m.want, v)
		}
		kinds[m.want] = true
	}
	if len(kinds) != 3 {
		t.Fatalf("only %d distinct diagnostic kinds", len(kinds))
	}
}

// TestBatchSnapshotReads pins the group-commit read semantics the
// checker depends on: within one batch a session reads its own writes
// but never another session's same-batch write (those ops are concurrent
// and the machine does not order the reader's later persists after the
// foreign write).
func TestBatchSnapshotReads(t *testing.T) {
	e, err := New(Config{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := e.NewSession(), e.NewSession()
	if _, err := e.Apply([]Request{{Sess: s1, Op: Put, Key: "k", Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	resps, err := e.Apply([]Request{
		{Sess: s1, Op: Put, Key: "k", Value: []byte("new")},
		{Sess: s2, Op: Get, Key: "k"},
		{Sess: s1, Op: Get, Key: "k"},
		{Sess: s2, Op: Delete, Key: "k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(resps[1].Value); !resps[1].Found || got != "old" {
		t.Fatalf("foreign same-batch read = %q found=%v, want pre-batch \"old\"", got, resps[1].Found)
	}
	if got := string(resps[2].Value); !resps[2].Found || got != "new" {
		t.Fatalf("own same-batch read = %q found=%v, want own write \"new\"", got, resps[2].Found)
	}
	if !resps[3].Found {
		t.Fatal("same-batch foreign delete should observe the pre-batch key")
	}
	// Next batch: the overlay is gone; everyone sees the settled state.
	resps, err = e.Apply([]Request{{Sess: s2, Op: Get, Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Found {
		t.Fatalf("read after deleting batch = %+v, want not-found", resps[0])
	}
	if _, err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStoreCheckLive drives the live sharded store with checking
// on through both the clean-drain and crash paths: acks create checker
// obligations at the watermark-gated release sites, and Close must fold
// a clean verdict into every shard result.
func TestShardedStoreCheckLive(t *testing.T) {
	for _, crashAt := range []int64{0, 60000} {
		cfg := ShardedConfig{Shards: 2, Engine: Config{Check: true}}
		if crashAt > 0 {
			cfg.Engine.CrashAt = 60000
		}
		st, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess := st.NewSession()
		acked := 0
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("live%02d", i%8)
			ack := st.Do(sess, Put, key, []byte{byte(i)})
			if ack.Err != nil {
				break
			}
			if !ack.Crashed {
				acked++
			}
			if i%5 == 4 {
				if g := st.Do(sess, Get, key, nil); g.Err == nil && !g.Crashed && !g.Resp.Found {
					t.Fatalf("durably acked key %q not visible", key)
				}
			}
		}
		results, err := st.Close()
		if err != nil {
			t.Fatalf("crashAt=%d close: %v", crashAt, err)
		}
		ackObligations := 0
		for _, r := range results {
			if r.DL == nil {
				t.Fatalf("crashAt=%d shard %d: no verdict", crashAt, r.Shard)
			}
			if !r.DL.OK() {
				t.Fatalf("crashAt=%d shard %d: %s", crashAt, r.Shard, r.DL)
			}
			ackObligations += r.DL.Acked
		}
		if crashAt == 0 && (acked == 0 || ackObligations == 0) {
			t.Fatalf("clean path recorded no ack obligations (acked=%d, obligations=%d)", acked, ackObligations)
		}
	}
}
