// Crash-consistency verification for the KV engine: the recovery graph is
// rebuilt from the machine's retained epoch histories, strengthened with
// the per-bucket publish order the engine knows from its store tokens, and
// checked against the crash image — first the model-level §5 invariants,
// then the KV-level guarantees the Figure 10 discipline buys.
package pmkv

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/recovery"
	"persistbarriers/internal/stats"
)

// Report summarizes a verified crash (or clean shutdown) image.
type Report struct {
	// Epochs is the number of epochs in the recovery graph; PublishEdges
	// the number of per-bucket publish-order edges added to it.
	Epochs       int
	PublishEdges int
	// DurablePublishes counts mutations whose publish reached NVRAM;
	// TotalPublishes counts all retired publishes.
	DurablePublishes int
	TotalPublishes   int
	// RecoveredKeys is the key count of the reconstructed durable state.
	RecoveredKeys int
	// Fingerprint canonically hashes the recovered state (determinism
	// checks compare it across runs).
	Fingerprint string
}

// durable reports whether version v of line l (or a legitimately later
// one) is in the image — the line-rewrite conflict rules make ">=" exactly
// "v persisted".
func durable(image map[mem.Line]mem.Version, l mem.Line, v mem.Version) bool {
	return v != mem.NoVersion && image[l] >= v
}

// Verify audits a machine result against the engine's mutation record. It
// checks, in order:
//
//  1. Epoch-order invariant (recovery.CheckOrdering) over the history
//     graph strengthened with publish-order edges: for each bucket head,
//     consecutive publishes are ordered writes of one line, so the earlier
//     publisher's epoch must persist before the later one's.
//  2. Prefix closure of the hardware's declared-persisted set.
//  3. KV atomicity: a durable (or superseded) bucket head never names a
//     torn entry — every entry line of that publish is durable.
//  4. Session order: each session's durable publishes are a prefix of its
//     program order (a later publish durable while an earlier one is lost
//     would invert the barrier ordering).
func (e *Engine) Verify(res *machine.Result) (*Report, error) {
	e.mu.Lock()
	records := e.records
	buckets := e.cfg.Buckets
	workers := e.cfg.RecoveryWorkers
	e.mu.Unlock()

	g := recovery.NewGraph(res.Histories)
	rep := &Report{Epochs: len(g.Epochs())}

	byBucket, total := publishesByBucket(records, res.TokenVersions, buckets)
	for _, recs := range byBucket {
		rep.TotalPublishes += len(recs)
		for i := 1; i < len(recs); i++ {
			prev, ok1 := g.WriterOf(recs[i-1].v)
			next, ok2 := g.WriterOf(recs[i].v)
			if !ok1 || !ok2 {
				// The writing epoch was still open at the crash; its
				// writes cannot be durable and no edge is needed.
				continue
			}
			g.AddEdge(next, prev)
			rep.PublishEdges++
		}
	}

	if err := recovery.CheckOrderingParallel(g, res.Image, workers); err != nil {
		return rep, fmt.Errorf("pmkv: epoch-order violation: %w", err)
	}
	if err := recovery.CheckPersistedClosed(g, res.Image); err != nil {
		return rep, fmt.Errorf("pmkv: persisted-set violation: %w", err)
	}

	// KV atomicity: durable publish => whole entry durable.
	for _, r := range records {
		if r.Op == Get {
			continue
		}
		pubVer, retired := res.TokenVersions[r.PubToken]
		if !retired || !durable(res.Image, r.Head, pubVer) {
			continue
		}
		rep.DurablePublishes++
		for i, l := range r.EntryLines {
			ev, ok := res.TokenVersions[r.EntryTokens[i]]
			if !ok || !durable(res.Image, l, ev) {
				return rep, fmt.Errorf(
					"pmkv: torn write: sess %d seq %d (%v %q) published durably but entry line %v is not durable",
					r.Sess, r.Seq, r.Op, r.Key, l)
			}
		}
	}

	// Session order: durable publishes form a program-order prefix. Every
	// violation in the image is collected, not just the first.
	if errs := sessionOrderErrors(records, res.TokenVersions, res.Image); len(errs) > 0 {
		return rep, errors.Join(errs...)
	}

	state, err := e.replayState(byBucket, total, res, buckets, workers)
	if err != nil {
		return rep, err
	}
	rep.RecoveredKeys = len(state)
	fp, err := stats.Fingerprint(recoverySnapshot(state))
	if err != nil {
		return rep, err
	}
	rep.Fingerprint = fp
	return rep, nil
}

// sessionOrderErrors collects every per-session lost-prefix violation:
// once a session loses one publish, each of its later durable publishes
// inverts the barrier ordering and is reported individually — a fuzzer
// minimizing a counterexample needs the complete diagnosis, not the
// first hit. Sessions and sequences are walked in sorted order so the
// error list is deterministic.
func sessionOrderErrors(records []*OpRecord, tokens map[uint64]mem.Version, image map[mem.Line]mem.Version) []error {
	bySess := make(map[int][]*OpRecord)
	for _, r := range records {
		if r.Op != Get {
			bySess[r.Sess] = append(bySess[r.Sess], r)
		}
	}
	sessIDs := make([]int, 0, len(bySess))
	for id := range bySess {
		sessIDs = append(sessIDs, id)
	}
	sort.Ints(sessIDs)
	var errs []error
	for _, id := range sessIDs {
		recs := bySess[id]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		lost := -1 // seq of the first non-durable publish
		for _, r := range recs {
			pubVer, retired := tokens[r.PubToken]
			isDurable := retired && durable(image, r.Head, pubVer)
			if !isDurable {
				if lost < 0 {
					lost = r.Seq
				}
				continue
			}
			if lost >= 0 {
				errs = append(errs, fmt.Errorf(
					"pmkv: session %d publish seq %d durable while earlier seq %d was lost",
					id, r.Seq, lost))
			}
		}
	}
	return errs
}

// recoverySnapshot renders the recovered state deterministically for
// fingerprinting (sorted keys, values as strings).
func recoverySnapshot(state map[string][]byte) [][2]string {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]string{k, string(state[k])})
	}
	return out
}

// RecoveredState reconstructs the durable key-value contents from the
// crash image: for each bucket, the durable head version names the last
// publish that persisted (the line-rewrite conflict rules make every
// earlier version of the head durable too), so the bucket's contents are
// the deltas of its publishes up to that version, replayed in the order
// their head stores committed. Commit order — not translate order — is
// what NVRAM saw: two same-batch sessions publishing to one bucket can
// commit in either order, and the recovered state must include both.
// Entry durability is the atomicity invariant Verify enforces.
func (e *Engine) RecoveredState(res *machine.Result) (map[string][]byte, error) {
	e.mu.Lock()
	records := e.records
	buckets := e.cfg.Buckets
	workers := e.cfg.RecoveryWorkers
	e.mu.Unlock()

	byBucket, total := publishesByBucket(records, res.TokenVersions, buckets)
	return e.replayState(byBucket, total, res, buckets, workers)
}

// tombstone marks a key whose newest durable publish in its bucket is a
// Delete during the backward replay; identity (not value) distinguishes
// it from any user value. replayBucket removes every tombstone before
// returning, so it never escapes into recovered state.
var tombstone = []byte{0}

// replayBucket folds one bucket's durable publish prefix into state. The
// bucket's contents are the deltas of its publishes up to the durable
// head version, in commit order. The walk runs backward — newest durable
// publish first — so each key costs one map assignment (its final value)
// instead of one per overwrite; older publishes of an already-decided
// key only pay a lookup. dead is a reused scratch buffer for keys whose
// final publish is a Delete.
func (e *Engine) replayBucket(byBucket [][]pub, res *machine.Result, b int, state map[string][]byte, dead *[]string) error {
	h := e.headLine(b)
	hv := res.Image[h]
	if hv == mem.NoVersion {
		return nil
	}
	recs := byBucket[b]
	// Durable prefix boundary: versions of one head line are distinct and
	// recs is version-sorted, so a matching publish is exactly at the
	// boundary's left edge.
	idx := sort.Search(len(recs), func(i int) bool { return recs[i].v > hv })
	if idx == 0 || recs[idx-1].v != hv {
		return fmt.Errorf("pmkv: bucket %d head holds version %d with no matching publish", b, hv)
	}
	tombs := (*dead)[:0]
	for i := idx - 1; i >= 0; i-- {
		r := recs[i].r
		if _, decided := state[r.Key]; decided {
			continue // a newer durable publish already fixed this key
		}
		if r.Op == Delete {
			state[r.Key] = tombstone
			tombs = append(tombs, r.Key)
		} else {
			state[r.Key] = r.Value
		}
	}
	for _, k := range tombs {
		delete(state, k)
	}
	*dead = tombs[:0]
	return nil
}

// replayState replays every bucket's durable publish prefix. Buckets
// partition the keyspace (each key hashes to exactly one bucket and one
// head line), so their replays touch disjoint keys and run concurrently:
// worker w owns buckets congruent to w, builds a private map, and the
// partials merge after the join. Any worker count yields byte-identical
// state; on error the lowest failing bucket's error is returned, exactly
// as a serial scan would report it.
func (e *Engine) replayState(byBucket [][]pub, total int, res *machine.Result, buckets, workers int) (map[string][]byte, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > buckets {
		workers = buckets
	}
	if workers <= 1 {
		// Pre-sized at the publish count: distinct keys can only be fewer,
		// and incremental map growth is a large fraction of replay cost.
		state := make(map[string][]byte, total)
		var dead []string
		for b := 0; b < buckets; b++ {
			if err := e.replayBucket(byBucket, res, b, state, &dead); err != nil {
				return nil, err
			}
		}
		return state, nil
	}

	type part struct {
		state     map[string][]byte
		err       error
		errBucket int
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			p.state = make(map[string][]byte, total/workers+1)
			p.errBucket = buckets
			var dead []string
			for b := w; b < buckets; b += workers {
				if err := e.replayBucket(byBucket, res, b, p.state, &dead); err != nil {
					// First error is this worker's lowest failing bucket
					// (ascending stride); the merge discards all state.
					p.err, p.errBucket = err, b
					return
				}
			}
		}(w)
	}
	wg.Wait()

	n := 0
	for w := range parts {
		if parts[w].err != nil {
			// Deterministic across worker counts: lowest bucket wins.
			lowest := &parts[w]
			for v := w + 1; v < workers; v++ {
				if parts[v].err != nil && parts[v].errBucket < lowest.errBucket {
					lowest = &parts[v]
				}
			}
			return nil, lowest.err
		}
		n += len(parts[w].state)
	}
	state := make(map[string][]byte, n)
	for w := range parts {
		for k, v := range parts[w].state {
			state[k] = v
		}
	}
	return state, nil
}

// FingerprintState canonically hashes a recovered state.
func FingerprintState(state map[string][]byte) string {
	return stats.MustFingerprint(recoverySnapshot(state))
}
