// Package harness runs the paper's experiments end to end: it builds
// machines, generates workloads, sweeps parameters, and renders tables
// whose rows correspond to the bars of each figure in the evaluation
// (Section 7). Every figure and table of the paper has a RunFigN /
// TableN entry point here; cmd/figures exposes them on the command line.
package harness

import (
	"fmt"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/trace"
	"persistbarriers/internal/workload"
)

// Options scales the experiments. The paper's full-size parameters (32
// cores, epochs of 300/1K/10K dynamic stores) are the defaults; tests and
// quick runs scale them down.
type Options struct {
	// Threads is the core/thread count (paper: 32).
	Threads int
	// MicroOps is data-structure transactions per thread for the BEP
	// micro-benchmarks.
	MicroOps int
	// AppOps is memory operations per thread for the BSP app models.
	AppOps int
	// EpochSizes is the Figure 13 sweep (dynamic stores per hardware
	// epoch).
	EpochSizes []int
	// BulkEpoch is the hardware epoch size for Figure 14 (paper: 10000,
	// "as this is what gave the best results").
	BulkEpoch int
	// Seed drives workload generation.
	Seed uint64

	// Parallelism is the sweep worker-pool size: how many independent
	// simulations run concurrently inside each RunFig*/RunAblations
	// entry point. <= 0 means GOMAXPROCS. Results are identical at any
	// setting — runs are independent and collected in submission order.
	Parallelism int
	// CacheDir, when non-empty, caches per-run summaries keyed by the
	// (config, trace) content hash, so regenerating one figure does not
	// re-simulate runs another figure already paid for.
	CacheDir string
	// VerifyDeterminism re-executes every sweep job serially and fails
	// on any divergence from the pooled run (see SweepOptions).
	VerifyDeterminism bool
}

// Defaults returns the paper-faithful option set. A full figure
// regeneration at these sizes takes a few minutes of host CPU.
func Defaults() Options {
	return Options{
		Threads:    32,
		MicroOps:   40,
		AppOps:     12000,
		EpochSizes: []int{300, 1000, 10000},
		BulkEpoch:  10000,
		Seed:       42,
	}
}

// Quick returns a scaled-down option set for tests and smoke runs. The
// epoch sweep is scaled with the shorter traces so every size still closes
// multiple epochs per thread.
func Quick() Options {
	return Options{
		Threads:    8,
		MicroOps:   15,
		AppOps:     2500,
		EpochSizes: []int{30, 100, 1000},
		BulkEpoch:  250,
		Seed:       42,
	}
}

func (o Options) validate() error {
	if o.Threads <= 0 || o.Threads > 32 {
		return fmt.Errorf("harness: Threads must be in 1..32, got %d", o.Threads)
	}
	if o.MicroOps <= 0 || o.AppOps <= 0 {
		return fmt.Errorf("harness: op counts must be positive")
	}
	if o.BulkEpoch <= 0 {
		return fmt.Errorf("harness: BulkEpoch must be positive")
	}
	return nil
}

// Variant names in the paper's figure order.
var (
	// BEPVariants are the Figure 11/12 bars.
	BEPVariants = []string{"LB", "LB+IDT", "LB+PF", "LB++"}
	// BSPVariants are the Figure 14 bars.
	BSPVariants = []string{"LB", "LB+IDT", "LB++", "LB++NOLOG"}
)

// bepConfig builds the machine for a buffered-epoch-persistency run.
func bepConfig(threads int, idt, pf bool) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	cfg.Model = machine.LB
	cfg.IDT = idt
	cfg.PF = pf
	return cfg
}

// variantFlags maps a variant name to its IDT/PF switches.
func variantFlags(name string) (idt, pf bool, err error) {
	switch name {
	case "LB":
		return false, false, nil
	case "LB+IDT":
		return true, false, nil
	case "LB+PF":
		return false, true, nil
	case "LB++", "LB++NOLOG":
		return true, true, nil
	default:
		return false, false, fmt.Errorf("harness: unknown variant %q", name)
	}
}

// runOne executes a program on a machine built from cfg.
func runOne(cfg machine.Config, p *trace.Program) (*machine.Result, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Load(p); err != nil {
		return nil, err
	}
	r, err := m.Run()
	if err != nil {
		return nil, err
	}
	if r.Deadlocked {
		return nil, fmt.Errorf("harness: %s run deadlocked", cfg.BarrierName())
	}
	return r, nil
}

// microProgram regenerates a micro-benchmark trace (each run needs a fresh
// program because generation is deterministic per spec).
func microProgram(name string, opt Options) (*trace.Program, error) {
	gen, ok := workload.Microbenchmarks()[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown micro-benchmark %q", name)
	}
	return gen(workload.Spec{Threads: opt.Threads, OpsPerThread: opt.MicroOps, Seed: opt.Seed})
}

// appProgram regenerates a BSP app-model trace.
func appProgram(name string, opt Options) (*trace.Program, error) {
	prof, ok := workload.Apps()[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown app %q", name)
	}
	return prof.Generate(workload.Spec{Threads: opt.Threads, OpsPerThread: opt.AppOps, Seed: opt.Seed})
}

// microJob builds one sweep job over a micro-benchmark trace.
func microJob(key, bench string, opt Options, cfg machine.Config) Job {
	return Job{
		Key: key,
		TraceID: fmt.Sprintf("micro:%s/threads=%d/ops=%d/seed=%d",
			bench, opt.Threads, opt.MicroOps, opt.Seed),
		Cfg: cfg,
		Gen: func() (*trace.Program, error) { return microProgram(bench, opt) },
	}
}

// appJob builds one sweep job over a BSP app-model trace.
func appJob(key, app string, opt Options, cfg machine.Config) Job {
	return Job{
		Key: key,
		TraceID: fmt.Sprintf("app:%s/threads=%d/ops=%d/seed=%d",
			app, opt.Threads, opt.AppOps, opt.Seed),
		Cfg: cfg,
		Gen: func() (*trace.Program, error) { return appProgram(app, opt) },
	}
}
