package harness

import (
	"fmt"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/trace"
	"persistbarriers/internal/workload"
)

// Fig1Result captures the Figure 1 timeline probe: the same three-epoch
// store sequence under strict, epoch, and buffered epoch persistency.
type Fig1Result struct {
	Models   []string
	Exec     map[string]uint64 // cycles to retire the sequence
	LastAck  map[string]uint64 // cycle the final line persisted
	Persists map[string]uint64 // NVRAM line writes issued
}

// fig1Program is the paper's running example: stores to a (twice,
// coalescible), b, c in epoch 1; d, e in epoch 2; f in epoch 3.
func fig1Program() *trace.Program {
	var b trace.Builder
	a, bb, c, d, e, f := mem.Addr(0), mem.Addr(64), mem.Addr(128), mem.Addr(192), mem.Addr(256), mem.Addr(320)
	b.Store(a).Store(a).Store(bb).Store(c).Barrier()
	b.Store(d).Store(e).Barrier()
	b.Store(f).Barrier()
	return &trace.Program{Traces: [][]trace.Op{b.Ops()}}
}

// RunFig1 runs the timeline probe. It demonstrates the model ordering the
// paper's Figure 1 illustrates: SP serializes visibility behind persists,
// EP stalls at barriers, BEP overlaps everything.
func RunFig1() (*Fig1Result, error) {
	out := &Fig1Result{
		Models:   []string{"SP", "EP", "BEP(LB)"},
		Exec:     make(map[string]uint64),
		LastAck:  make(map[string]uint64),
		Persists: make(map[string]uint64),
	}
	for _, name := range out.Models {
		cfg := machine.DefaultConfig()
		cfg.Cores = 1
		cfg.RecordOpTimes = true
		switch name {
		case "SP":
			cfg.Model = machine.SP
		case "EP":
			cfg.Model = machine.EP
		default:
			cfg.Model = machine.LB
		}
		r, err := runOne(cfg, fig1Program())
		if err != nil {
			return nil, err
		}
		out.Exec[name] = uint64(r.ExecCycles)
		out.Persists[name] = r.PersistedLines
		var last uint64
		for _, ev := range r.PersistLog {
			if uint64(ev.Cycle) > last {
				last = uint64(ev.Cycle)
			}
		}
		out.LastAck[name] = last
	}
	return out, nil
}

// Table renders the Figure 1 probe.
func (f *Fig1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 1: completion timeline of the 3-epoch store sequence (cycles)",
		"model", "visibility done", "last persist", "line persists")
	for _, m := range f.Models {
		t.AddRow(m,
			fmt.Sprintf("%d", f.Exec[m]),
			fmt.Sprintf("%d", f.LastAck[m]),
			fmt.Sprintf("%d", f.Persists[m]))
	}
	return t
}

// Fig4Result captures the IDT benefit kernel of Figure 4.
type Fig4Result struct {
	ExecLB   uint64
	ExecIDT  uint64
	StallLB  uint64
	StallIDT uint64
	DepsIDT  uint64
}

// fig4Program is the two-thread conflict kernel of §3.1/Figure 4: T0
// writes A and B in epoch E00; T1 reads B (the inter-thread conflict) and
// continues with its own work.
func fig4Program() *trace.Program {
	var t0, t1 trace.Builder
	// T0: epoch E00 = {WA, WB}, then keeps computing (epoch ongoing work
	// elsewhere).
	t0.Store(0).Store(64).Barrier()
	t0.Compute(3000)
	// T1: RP ... RB (conflict) ... RQ, WE.
	t1.Load(1024)
	t1.Compute(300)
	t1.Load(64) // RB: inter-thread conflict with E00
	t1.Load(2048)
	t1.Store(4096)
	t1.Barrier()
	return &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}
}

// RunFig4 measures the conflicting request's cost without and with IDT.
func RunFig4() (*Fig4Result, error) {
	lb, err := runOne(bepConfig(2, false, false), fig4Program())
	if err != nil {
		return nil, err
	}
	idt, err := runOne(bepConfig(2, true, false), fig4Program())
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		ExecLB:   uint64(lb.ExecCycles),
		ExecIDT:  uint64(idt.ExecCycles),
		StallLB:  uint64(lb.StallTotal(machine.StallInter)),
		StallIDT: uint64(idt.StallTotal(machine.StallInter)),
		DepsIDT:  idt.Epochs.Deps,
	}, nil
}

// Table renders the Figure 4 probe.
func (f *Fig4Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 4: inter-thread conflict kernel, without vs with IDT",
		"metric", "LB", "LB+IDT")
	t.AddRow("execution cycles", fmt.Sprintf("%d", f.ExecLB), fmt.Sprintf("%d", f.ExecIDT))
	t.AddRow("inter-conflict stall cycles", fmt.Sprintf("%d", f.StallLB), fmt.Sprintf("%d", f.StallIDT))
	t.AddRow("IDT dependences recorded", "0", fmt.Sprintf("%d", f.DepsIDT))
	return t
}

// Table1 renders the simulated system parameters (paper Table 1).
func Table1() *stats.Table {
	cfg := machine.DefaultConfig()
	t := stats.NewTable("Table 1: System parameters", "parameter", "value")
	t.AddRow("Cores", fmt.Sprintf("%d in-order trace cores @ 2GHz (paper: OoO)", cfg.Cores))
	t.AddRow("L1 I/D Cache", fmt.Sprintf("%d sets x %d ways x 64B = 32KB", cfg.L1Sets, cfg.L1Ways))
	t.AddRow("L1 Access Latency", fmt.Sprintf("%d cycles", cfg.L1Latency))
	t.AddRow("L2 (LLC)", fmt.Sprintf("%d banks x %d sets x %d ways x 64B = 1MB/bank", cfg.LLCBanks, cfg.LLCSets, cfg.LLCWays))
	t.AddRow("L2 Access Latency", fmt.Sprintf("%d cycles", cfg.LLCLatency))
	t.AddRow("Memory Controllers", fmt.Sprintf("%d (mesh corners)", cfg.MemControllers))
	t.AddRow("NVRAM Access Latency", fmt.Sprintf("%d (%d) cycles write (read)", cfg.NVRAM.WriteLatency, cfg.NVRAM.ReadLatency))
	t.AddRow("On-chip network", fmt.Sprintf("2D mesh, %d rows x %d cols, 16B flits", cfg.Mesh.Rows, cfg.Mesh.Cols))
	t.AddRow("In-flight epochs", fmt.Sprintf("%d per core", cfg.Epoch.MaxInFlight))
	t.AddRow("IDT registers", fmt.Sprintf("%d pairs per epoch", cfg.Epoch.DepRegs))
	return t
}

// Table2 renders the micro-benchmark suite (paper Table 2).
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: Micro-benchmarks", "name", "description")
	desc := map[string]string{
		"hash":   "Insert/delete entries in a hash table",
		"queue":  "Insert/delete entries in a queue",
		"rbtree": "Insert/delete nodes in a red-black tree",
		"sdg":    "Insert/delete edges in a scalable graph",
		"sps":    "Random swaps between entries in an array",
	}
	for _, n := range workload.MicrobenchmarkNames() {
		t.AddRow(n, desc[n])
	}
	return t
}

// FlushModeResults backs the §7 invalidating-vs-non-invalidating study
// ("using a non-invalidating flush is significantly faster, around 30%").
type FlushModeResults struct {
	Benches []string
	Clwb    map[string]*machine.Result
	Clflush map[string]*machine.Result
}

// RunFlushMode compares clwb-style and clflush-style persists under LB++.
func RunFlushMode(opt Options) (*FlushModeResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	out := &FlushModeResults{
		Benches: workload.MicrobenchmarkNames(),
		Clwb:    make(map[string]*machine.Result),
		Clflush: make(map[string]*machine.Result),
	}
	var jobs []Job
	for _, bench := range out.Benches {
		for _, invalidating := range []bool{false, true} {
			cfg := bepConfig(opt.Threads, true, true)
			key := bench + "/clwb"
			if invalidating {
				cfg.FlushMode = 1 // cache.Invalidating
				key = bench + "/clflush"
			}
			jobs = append(jobs, microJob(key, bench, opt, cfg))
		}
	}
	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	for i, bench := range out.Benches {
		out.Clwb[bench] = results[2*i]
		out.Clflush[bench] = results[2*i+1]
	}
	return out, nil
}

// Table renders clwb throughput normalized to clflush per benchmark.
func (f *FlushModeResults) Table() *stats.Table {
	t := stats.NewTable(
		"Flush-mode study: clwb (non-invalidating) throughput normalized to clflush",
		"bench", "clwb/clflush")
	var vs []float64
	for _, bench := range f.Benches {
		v := f.Clwb[bench].Throughput() / f.Clflush[bench].Throughput()
		vs = append(vs, v)
		t.AddF(bench, "%.3f", v)
	}
	t.AddF("gmean", "%.3f", stats.Gmean(vs))
	return t
}
