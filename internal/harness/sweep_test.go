package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/trace"
)

// testJobs builds a small heterogeneous job list (every BEP variant over
// two benchmarks) at tiny sizes.
func testJobs(opt Options) []Job {
	var jobs []Job
	for _, bench := range []string{"queue", "hash"} {
		for _, variant := range BEPVariants {
			idt, pf, _ := variantFlags(variant)
			jobs = append(jobs, microJob(bench+"/"+variant, bench, opt, bepConfig(opt.Threads, idt, pf)))
		}
	}
	return jobs
}

// fingerprints maps a result slice to per-job digests.
func fingerprints(t *testing.T, rs []*machine.Result) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i, r := range rs {
		f, err := stats.Fingerprint(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
	}
	return out
}

// TestSweepSubmissionOrder: pooled results must land at their submission
// index and match a fully serial execution bit for bit.
func TestSweepSubmissionOrder(t *testing.T) {
	opt := tinyOpt()
	serial, err := Sweep(testJobs(opt), SweepOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Sweep(testJobs(opt), SweepOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs, fp := fingerprints(t, serial), fingerprints(t, pooled)
	for i := range fs {
		if fs[i] != fp[i] {
			t.Fatalf("job %d diverged between serial and pooled execution", i)
		}
	}
	// Distinct variants over one bench really are distinct runs (the
	// slice is not accidentally aliased).
	if fs[0] == fs[3] {
		t.Fatal("LB and LB++ produced identical results; sweep likely misassigned jobs")
	}
}

// TestSweepErrorDeterministic: with several failing jobs, the reported
// failure is always the lowest-indexed one, regardless of scheduling.
func TestSweepErrorDeterministic(t *testing.T) {
	opt := tinyOpt()
	boom := errors.New("boom")
	var jobs []Job
	for _, j := range testJobs(opt) {
		jobs = append(jobs, j)
	}
	fail := func(key string) Job {
		return Job{Key: key, Cfg: bepConfig(opt.Threads, false, false),
			Gen: func() (*trace.Program, error) { return nil, boom }}
	}
	jobs[2] = fail("fail-low")
	jobs[6] = fail("fail-high")
	for i := 0; i < 4; i++ {
		_, err := Sweep(jobs, SweepOptions{Parallelism: 8})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
		if !strings.Contains(err.Error(), "fail-low") {
			t.Fatalf("error not from lowest-indexed failing job: %v", err)
		}
	}
}

// TestSweepDeadlockPolicy: a deadlocking job fails the sweep by default
// and is returned as a Result under AllowDeadlock.
func TestSweepDeadlockPolicy(t *testing.T) {
	// The Figure 5(a) circular-dependence kernel with splitting disabled.
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.LLCBanks = 4
	cfg.LLCSets = 64
	cfg.Model = machine.LB
	cfg.IDT = true
	cfg.EnableSplit = false
	gen := func() (*trace.Program, error) {
		var t0, t1 trace.Builder
		t0.Store(0).Compute(100).Load(64).Store(128)
		t1.Store(64).Compute(100).Load(0).Store(192)
		return &trace.Program{Traces: [][]trace.Op{t0.Ops(), t1.Ops()}}, nil
	}
	jobs := []Job{{Key: "fig5", TraceID: "fig5-kernel", Cfg: cfg, Gen: gen}}
	if _, err := Sweep(jobs, SweepOptions{}); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlocked job did not fail the sweep: %v", err)
	}
	rs, err := Sweep(jobs, SweepOptions{AllowDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Deadlocked {
		t.Fatal("AllowDeadlock result not flagged Deadlocked")
	}
}

// TestSweepCache: a second sweep over a warm cache returns bit-identical
// results without simulating, corrupt entries degrade to misses, and
// probe/history-carrying configs are never cached.
func TestSweepCache(t *testing.T) {
	opt := tinyOpt()
	dir := t.TempDir()
	so := SweepOptions{Parallelism: 4, CacheDir: dir}
	cold, err := Sweep(testJobs(opt), so)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != len(testJobs(opt)) {
		t.Fatalf("cache entries = %d (%v), want %d", len(entries), err, len(testJobs(opt)))
	}
	warm, err := Sweep(testJobs(opt), so)
	if err != nil {
		t.Fatal(err)
	}
	fc, fw := fingerprints(t, cold), fingerprints(t, warm)
	for i := range fc {
		if fc[i] != fw[i] {
			t.Fatalf("job %d: cached result differs from simulated", i)
		}
	}
	// Corruption is a miss, not a failure.
	if err := os.WriteFile(entries[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(testJobs(opt), so); err != nil {
		t.Fatalf("corrupt cache entry failed the sweep: %v", err)
	}
	// History-recording configs must bypass the cache (their Results
	// carry material the cache does not replay).
	histDir := t.TempDir()
	jobs := testJobs(opt)
	for i := range jobs {
		jobs[i].Cfg.RecordHistory = true
	}
	if _, err := Sweep(jobs, SweepOptions{CacheDir: histDir}); err != nil {
		t.Fatal(err)
	}
	if got, _ := filepath.Glob(filepath.Join(histDir, "*.json")); len(got) != 0 {
		t.Fatalf("history-recording runs were cached: %v", got)
	}
}

// TestSweepVerifyDeterminism: the serial re-execution pass accepts the
// (deterministic) simulator.
func TestSweepVerifyDeterminism(t *testing.T) {
	opt := tinyOpt()
	jobs := testJobs(opt)[:4]
	if _, err := Sweep(jobs, SweepOptions{Parallelism: 4, VerifyDeterminism: true}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepRaceStressFig11 is the race-detector stress for the worker
// pool: a full Figure 11 sweep (every micro-benchmark under every BEP
// variant) at parallelism 8. Any mutable state shared between machine
// instances — a stray global, an aliased slice, a shared probe — shows
// up here under `go test -race`. The pooled results must also match the
// serial reference exactly.
func TestSweepRaceStressFig11(t *testing.T) {
	opt := tinyOpt()
	opt.Parallelism = 8
	pooled, err := RunBEP(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 1
	serial, err := RunBEP(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range pooled.Benches {
		for _, v := range BEPVariants {
			fp, err := stats.Fingerprint(pooled.Results[bench][v])
			if err != nil {
				t.Fatal(err)
			}
			fs, err := stats.Fingerprint(serial.Results[bench][v])
			if err != nil {
				t.Fatal(err)
			}
			if fp != fs {
				t.Fatalf("%s/%s: parallel-8 result differs from serial", bench, v)
			}
		}
	}
}
