package harness

import (
	"fmt"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/workload"
)

// AblationResults holds the design-choice studies DESIGN.md calls out:
// IDT register count, in-flight epoch window, write-buffer depth, and the
// PF/epoch-size interaction.
type AblationResults struct {
	Opt Options

	// DepRegSweep: IDT register pairs -> (gmean normalized throughput vs
	// LB, fallback count) on the BEP suite under LB++.
	DepRegs          []int
	DepRegThroughput map[int]float64
	DepRegFallbacks  map[int]uint64

	// WindowSweep: in-flight epoch limit -> gmean normalized throughput.
	Windows          []int
	WindowThroughput map[int]float64

	// WriteBufferSweep: posted-store window -> gmean normalized
	// throughput.
	Buffers          []int
	BufferThroughput map[int]float64

	// Arbiter comparison: per-core arbiters (the paper's design) vs one
	// global arbiter serializing all flushes (§4.1's bottleneck).
	PerCoreArbiter float64
	GlobalArbiter  float64
}

// suiteGmean reduces one suite's results against the baseline suite:
// gmean of per-bench normalized throughput plus total IDT fallbacks.
func suiteGmean(runs, base []*machine.Result) (float64, uint64) {
	var vals []float64
	var fallbacks uint64
	for i := range runs {
		vals = append(vals, runs[i].Throughput()/base[i].Throughput())
		fallbacks += runs[i].Conflicts.IDTFallbacks
	}
	return stats.Gmean(vals), fallbacks
}

// RunAblations executes the design-choice sweeps. The baseline for every
// normalization is plain LB at the default hardware sizing. The entire
// grid — baseline suite plus every (knob, value, bench) combination — is
// submitted as one sweep so the worker pool sees maximal parallelism.
func RunAblations(opt Options) (*AblationResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	out := &AblationResults{
		Opt:              opt,
		DepRegs:          []int{0, 1, 4, 16},
		DepRegThroughput: make(map[int]float64),
		DepRegFallbacks:  make(map[int]uint64),
		Windows:          []int{2, 4, 8, 32},
		WindowThroughput: make(map[int]float64),
		Buffers:          []int{0, 8, 32, 128},
		BufferThroughput: make(map[int]float64),
	}

	benches := workload.MicrobenchmarkNames()
	var jobs []Job
	addSuite := func(label string, cfg machine.Config) {
		for _, bench := range benches {
			jobs = append(jobs, microJob(label+"/"+bench, bench, opt, cfg))
		}
	}
	addSuite("base", bepConfig(opt.Threads, false, false))
	for _, regs := range out.DepRegs {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.Epoch.DepRegs = regs
		addSuite(fmt.Sprintf("depregs=%d", regs), cfg)
	}
	for _, w := range out.Windows {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.Epoch.MaxInFlight = w
		addSuite(fmt.Sprintf("window=%d", w), cfg)
	}
	for _, wb := range out.Buffers {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.WriteBuffer = wb
		addSuite(fmt.Sprintf("writebuffer=%d", wb), cfg)
	}
	addSuite("arbiter=percore", bepConfig(opt.Threads, true, true))
	gcfg := bepConfig(opt.Threads, true, true)
	gcfg.GlobalArbiter = true
	addSuite("arbiter=global", gcfg)

	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	cur := 0
	nextSuite := func() []*machine.Result {
		s := results[cur : cur+len(benches)]
		cur += len(benches)
		return s
	}
	base := nextSuite()
	for _, regs := range out.DepRegs {
		g, fb := suiteGmean(nextSuite(), base)
		out.DepRegThroughput[regs] = g
		out.DepRegFallbacks[regs] = fb
	}
	for _, w := range out.Windows {
		g, _ := suiteGmean(nextSuite(), base)
		out.WindowThroughput[w] = g
	}
	for _, wb := range out.Buffers {
		g, _ := suiteGmean(nextSuite(), base)
		out.BufferThroughput[wb] = g
	}
	out.PerCoreArbiter, _ = suiteGmean(nextSuite(), base)
	out.GlobalArbiter, _ = suiteGmean(nextSuite(), base)
	return out, nil
}

// Tables renders the ablation studies.
func (a *AblationResults) Tables() []*stats.Table {
	t1 := stats.NewTable(
		"Ablation: IDT dependence registers per epoch (LB++ vs LB gmean throughput)",
		"regs", "gmean vs LB", "register-full fallbacks")
	for _, r := range a.DepRegs {
		t1.AddRow(fmt.Sprintf("%d", r),
			fmt.Sprintf("%.3f", a.DepRegThroughput[r]),
			fmt.Sprintf("%d", a.DepRegFallbacks[r]))
	}
	t2 := stats.NewTable(
		"Ablation: in-flight epoch window (LB++ vs LB gmean throughput)",
		"window", "gmean vs LB")
	for _, w := range a.Windows {
		t2.AddF(fmt.Sprintf("%d", w), "%.3f", a.WindowThroughput[w])
	}
	t3 := stats.NewTable(
		"Ablation: posted-store write buffer (LB++ vs LB gmean throughput)",
		"entries", "gmean vs LB")
	for _, w := range a.Buffers {
		t3.AddF(fmt.Sprintf("%d", w), "%.3f", a.BufferThroughput[w])
	}
	t4 := stats.NewTable(
		"Ablation: flush arbiter placement (LB++ vs LB gmean throughput, §4.1)",
		"arbiter", "gmean vs LB")
	t4.AddF("per-core (paper)", "%.3f", a.PerCoreArbiter)
	t4.AddF("single global", "%.3f", a.GlobalArbiter)
	return []*stats.Table{t1, t2, t3, t4}
}
