package harness

import (
	"fmt"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/workload"
)

// AblationResults holds the design-choice studies DESIGN.md calls out:
// IDT register count, in-flight epoch window, write-buffer depth, and the
// PF/epoch-size interaction.
type AblationResults struct {
	Opt Options

	// DepRegSweep: IDT register pairs -> (gmean normalized throughput vs
	// LB, fallback count) on the BEP suite under LB++.
	DepRegs          []int
	DepRegThroughput map[int]float64
	DepRegFallbacks  map[int]uint64

	// WindowSweep: in-flight epoch limit -> gmean normalized throughput.
	Windows          []int
	WindowThroughput map[int]float64

	// WriteBufferSweep: posted-store window -> gmean normalized
	// throughput.
	Buffers          []int
	BufferThroughput map[int]float64

	// Arbiter comparison: per-core arbiters (the paper's design) vs one
	// global arbiter serializing all flushes (§4.1's bottleneck).
	PerCoreArbiter float64
	GlobalArbiter  float64
}

// suiteGmeanThroughput runs the BEP suite under cfg and returns the gmean
// throughput normalized to the baseline results.
func suiteGmeanThroughput(opt Options, cfg machine.Config, base map[string]*machine.Result) (float64, uint64, error) {
	var vals []float64
	var fallbacks uint64
	for _, bench := range workload.MicrobenchmarkNames() {
		p, err := microProgram(bench, opt)
		if err != nil {
			return 0, 0, err
		}
		r, err := runOne(cfg, p)
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", bench, err)
		}
		vals = append(vals, r.Throughput()/base[bench].Throughput())
		fallbacks += r.Conflicts.IDTFallbacks
	}
	return stats.Gmean(vals), fallbacks, nil
}

// RunAblations executes the design-choice sweeps. The baseline for every
// normalization is plain LB at the default hardware sizing.
func RunAblations(opt Options) (*AblationResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	base := make(map[string]*machine.Result)
	for _, bench := range workload.MicrobenchmarkNames() {
		p, err := microProgram(bench, opt)
		if err != nil {
			return nil, err
		}
		r, err := runOne(bepConfig(opt.Threads, false, false), p)
		if err != nil {
			return nil, err
		}
		base[bench] = r
	}

	out := &AblationResults{
		Opt:              opt,
		DepRegs:          []int{0, 1, 4, 16},
		DepRegThroughput: make(map[int]float64),
		DepRegFallbacks:  make(map[int]uint64),
		Windows:          []int{2, 4, 8, 32},
		WindowThroughput: make(map[int]float64),
		Buffers:          []int{0, 8, 32, 128},
		BufferThroughput: make(map[int]float64),
	}

	for _, regs := range out.DepRegs {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.Epoch.DepRegs = regs
		g, fb, err := suiteGmeanThroughput(opt, cfg, base)
		if err != nil {
			return nil, fmt.Errorf("depregs=%d: %w", regs, err)
		}
		out.DepRegThroughput[regs] = g
		out.DepRegFallbacks[regs] = fb
	}

	for _, w := range out.Windows {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.Epoch.MaxInFlight = w
		g, _, err := suiteGmeanThroughput(opt, cfg, base)
		if err != nil {
			return nil, fmt.Errorf("window=%d: %w", w, err)
		}
		out.WindowThroughput[w] = g
	}

	for _, wb := range out.Buffers {
		cfg := bepConfig(opt.Threads, true, true)
		cfg.WriteBuffer = wb
		g, _, err := suiteGmeanThroughput(opt, cfg, base)
		if err != nil {
			return nil, fmt.Errorf("writebuffer=%d: %w", wb, err)
		}
		out.BufferThroughput[wb] = g
	}

	perCore, _, err := suiteGmeanThroughput(opt, bepConfig(opt.Threads, true, true), base)
	if err != nil {
		return nil, err
	}
	out.PerCoreArbiter = perCore
	gcfg := bepConfig(opt.Threads, true, true)
	gcfg.GlobalArbiter = true
	global, _, err := suiteGmeanThroughput(opt, gcfg, base)
	if err != nil {
		return nil, fmt.Errorf("global arbiter: %w", err)
	}
	out.GlobalArbiter = global
	return out, nil
}

// Tables renders the ablation studies.
func (a *AblationResults) Tables() []*stats.Table {
	t1 := stats.NewTable(
		"Ablation: IDT dependence registers per epoch (LB++ vs LB gmean throughput)",
		"regs", "gmean vs LB", "register-full fallbacks")
	for _, r := range a.DepRegs {
		t1.AddRow(fmt.Sprintf("%d", r),
			fmt.Sprintf("%.3f", a.DepRegThroughput[r]),
			fmt.Sprintf("%d", a.DepRegFallbacks[r]))
	}
	t2 := stats.NewTable(
		"Ablation: in-flight epoch window (LB++ vs LB gmean throughput)",
		"window", "gmean vs LB")
	for _, w := range a.Windows {
		t2.AddF(fmt.Sprintf("%d", w), "%.3f", a.WindowThroughput[w])
	}
	t3 := stats.NewTable(
		"Ablation: posted-store write buffer (LB++ vs LB gmean throughput)",
		"entries", "gmean vs LB")
	for _, w := range a.Buffers {
		t3.AddF(fmt.Sprintf("%d", w), "%.3f", a.BufferThroughput[w])
	}
	t4 := stats.NewTable(
		"Ablation: flush arbiter placement (LB++ vs LB gmean throughput, §4.1)",
		"arbiter", "gmean vs LB")
	t4.AddF("per-core (paper)", "%.3f", a.PerCoreArbiter)
	t4.AddF("single global", "%.3f", a.GlobalArbiter)
	return []*stats.Table{t1, t2, t3, t4}
}
