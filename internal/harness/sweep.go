package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/trace"
)

// Job is one independent simulation of a sweep: a machine configuration
// plus a deterministic program generator. Jobs never share mutable state —
// each run builds its own machine, and Gen regenerates the program so two
// workers can execute the same job without touching a shared trace.
type Job struct {
	// Key names the job in error messages and logs ("queue/LB++").
	Key string
	// TraceID canonically describes the program Gen regenerates
	// ("micro:queue/threads=8/ops=15/seed=42"); together with the config
	// fingerprint it forms the cache identity, so it must capture every
	// input that shapes the trace.
	TraceID string
	// Cfg is the machine configuration. Cfg.Probe, when set, must be
	// private to this job: probes receive the machine's event stream and
	// sharing one across concurrent runs would interleave streams.
	Cfg machine.Config
	// Gen deterministically regenerates the job's program.
	Gen func() (*trace.Program, error)
}

// SweepOptions controls a Sweep run.
type SweepOptions struct {
	// Parallelism is the worker count; <= 0 means GOMAXPROCS.
	Parallelism int
	// CacheDir, when non-empty, is a directory of content-addressed run
	// summaries: a job whose (config, trace) hash is present is loaded
	// instead of simulated. Only probe-free, history-free runs are
	// cacheable (see cacheable).
	CacheDir string
	// VerifyDeterminism re-executes every job serially after the pooled
	// pass and fails on any divergence between the two Results — the
	// bit-for-bit guarantee the recovery checker and golden tests assume.
	// The cache is bypassed so both passes really simulate.
	VerifyDeterminism bool
	// AllowDeadlock returns deadlocked Results to the caller instead of
	// failing the sweep (cmd/persistsim reports them per run).
	AllowDeadlock bool
}

// workers resolves the effective pool size for n jobs.
func (o SweepOptions) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// sweepOptions projects the experiment Options onto the sweep engine.
func (o Options) sweepOptions() SweepOptions {
	return SweepOptions{
		Parallelism:       o.Parallelism,
		CacheDir:          o.CacheDir,
		VerifyDeterminism: o.VerifyDeterminism,
	}
}

// Sweep fans the jobs across a worker pool and returns their Results in
// submission order. Every job is independent (own machine, own program),
// so the only shared state is the result slice, written at distinct
// indices. On error the sweep still drains remaining workers and reports
// the failure of the lowest-indexed failing job, so the outcome is
// deterministic regardless of scheduling.
func Sweep(jobs []Job, opt SweepOptions) ([]*machine.Result, error) {
	results := make([]*machine.Result, len(jobs))
	errs := make([]error, len(jobs))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				results[i], errs[i] = runJob(jobs[i], opt)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", jobs[i].Key, err)
		}
	}
	if opt.VerifyDeterminism {
		if err := verifyDeterminism(jobs, results, opt); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// verifyDeterminism re-runs every job on the calling goroutine (the
// serial reference) and compares full-Result fingerprints — covering
// every counter, per-core stall vector, and, when recorded, the persist
// log — against the pooled pass.
func verifyDeterminism(jobs []Job, pooled []*machine.Result, opt SweepOptions) error {
	serial := SweepOptions{AllowDeadlock: opt.AllowDeadlock}
	for i, job := range jobs {
		ref, err := runJob(job, serial)
		if err != nil {
			return fmt.Errorf("%s: serial verification run: %w", job.Key, err)
		}
		fp, err := stats.Fingerprint(pooled[i])
		if err != nil {
			return fmt.Errorf("%s: %w", job.Key, err)
		}
		fr, err := stats.Fingerprint(ref)
		if err != nil {
			return fmt.Errorf("%s: %w", job.Key, err)
		}
		if fp != fr {
			return fmt.Errorf("harness: determinism violation in %s: parallel run %s != serial run %s",
				job.Key, fp[:12], fr[:12])
		}
	}
	return nil
}

// runJob executes (or loads from cache) one job.
func runJob(job Job, opt SweepOptions) (*machine.Result, error) {
	useCache := opt.CacheDir != "" && !opt.VerifyDeterminism && cacheable(job.Cfg)
	var path string
	if useCache {
		path = filepath.Join(opt.CacheDir, cacheKey(job)+".json")
		if r, ok := loadCached(path); ok {
			return r, nil
		}
	}
	p, err := job.Gen()
	if err != nil {
		return nil, err
	}
	m, err := machine.New(job.Cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Load(p); err != nil {
		return nil, err
	}
	r, err := m.Run()
	if err != nil {
		return nil, err
	}
	if r.Deadlocked && !opt.AllowDeadlock {
		return nil, fmt.Errorf("harness: %s run deadlocked", job.Cfg.BarrierName())
	}
	if useCache && r.Finished {
		storeCached(path, r)
	}
	return r, nil
}

// cacheable rejects configurations whose Results carry material the cache
// does not replay (probe event streams, recovery histories, per-op
// timelines, debug traces).
func cacheable(cfg machine.Config) bool {
	return cfg.Probe == nil && !cfg.RecordHistory && !cfg.RecordOpTimes && cfg.DebugLine == 0
}

// cacheFormat versions the cached-Result schema; bump it whenever
// machine.Result changes shape so stale entries miss instead of
// deserializing into garbage.
const cacheFormat = "v1"

// cacheKey is the content hash of everything that determines a job's
// Result: the full machine configuration and the canonical trace
// descriptor.
func cacheKey(job Job) string {
	cfg := job.Cfg
	cfg.Probe = nil
	return stats.MustFingerprint(struct {
		Format string
		Cfg    machine.Config
		Trace  string
	}{cacheFormat, cfg, job.TraceID})
}

// loadCached reads one cached Result; any failure (missing, truncated,
// schema drift) is a cache miss, never an error.
func loadCached(path string) (*machine.Result, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var r machine.Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, false
	}
	return &r, true
}

// storeCached writes the Result atomically (temp file + rename) so
// concurrent workers and interrupted runs can never leave a torn entry.
// Cache writes are best-effort: a read-only directory degrades to
// simulation, not failure.
func storeCached(path string, r *machine.Result) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sweep-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
