package harness

import (
	"fmt"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/workload"
)

// bspConfig builds a bulk-mode BSP machine (§5.2): hardware-inserted
// barriers every epochStores dynamic stores, register checkpointing, and
// undo logging unless disabled.
func bspConfig(threads, epochStores int, idt, pf, logging bool) machine.Config {
	cfg := bepConfig(threads, idt, pf)
	cfg.BulkEpochStores = epochStores
	cfg.Logging = logging
	cfg.CheckpointLines = 4
	return cfg
}

// npConfig builds the No Persistency baseline (NVRAM as plain memory).
func npConfig(threads int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	cfg.Model = machine.NP
	return cfg
}

// EpochSweepResults backs Figure 13: execution time for several hardware
// epoch sizes, normalized to NP, per app model.
type EpochSweepResults struct {
	Opt   Options
	Apps  []string
	Sizes []int
	// NP[app] is the baseline; Runs[app][size] the LB run.
	NP   map[string]*machine.Result
	Runs map[string]map[int]*machine.Result
}

// RunFig13 executes the epoch-size study (unoptimized LB barrier).
func RunFig13(opt Options) (*EpochSweepResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(opt.EpochSizes) == 0 {
		return nil, fmt.Errorf("harness: no epoch sizes configured")
	}
	out := &EpochSweepResults{
		Opt:   opt,
		Apps:  workload.AppNames(),
		Sizes: opt.EpochSizes,
		NP:    make(map[string]*machine.Result),
		Runs:  make(map[string]map[int]*machine.Result),
	}
	var jobs []Job
	for _, app := range out.Apps {
		jobs = append(jobs, appJob(app+"/NP", app, opt, npConfig(opt.Threads)))
		for _, size := range out.Sizes {
			jobs = append(jobs, appJob(fmt.Sprintf("%s/LB%d", app, size), app, opt,
				bspConfig(opt.Threads, size, false, false, true)))
		}
	}
	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, app := range out.Apps {
		out.NP[app] = results[i]
		i++
		out.Runs[app] = make(map[int]*machine.Result)
		for _, size := range out.Sizes {
			out.Runs[app][size] = results[i]
			i++
		}
	}
	return out, nil
}

// Normalized returns the execution-time overhead of one (app, size) run
// relative to NP.
func (e *EpochSweepResults) Normalized(app string, size int) float64 {
	np := float64(e.NP[app].ExecCycles)
	if np == 0 {
		return 0
	}
	return float64(e.Runs[app][size].ExecCycles) / np
}

// GmeanNormalized returns the suite geometric mean for one epoch size.
func (e *EpochSweepResults) GmeanNormalized(size int) float64 {
	var vs []float64
	for _, app := range e.Apps {
		vs = append(vs, e.Normalized(app, size))
	}
	return stats.Gmean(vs)
}

// Fig13Table renders Figure 13.
func (e *EpochSweepResults) Fig13Table() *stats.Table {
	headers := []string{"app"}
	for _, s := range e.Sizes {
		headers = append(headers, fmt.Sprintf("LB%d", s))
	}
	t := stats.NewTable(
		"Figure 13: Execution time with varying epoch sizes, normalized to NP",
		headers...)
	for _, app := range e.Apps {
		vals := make([]float64, 0, len(e.Sizes))
		for _, s := range e.Sizes {
			vals = append(vals, e.Normalized(app, s))
		}
		t.AddF(app, "%.2f", vals...)
	}
	gm := make([]float64, 0, len(e.Sizes))
	for _, s := range e.Sizes {
		gm = append(gm, e.GmeanNormalized(s))
	}
	t.AddF("gmean", "%.2f", gm...)
	return t
}

// BSPResults backs Figure 14: BSP under LB, LB+IDT, LB++, and LB++ without
// logging, normalized to NP.
type BSPResults struct {
	Opt  Options
	Apps []string
	NP   map[string]*machine.Result
	Runs map[string]map[string]*machine.Result // app -> variant -> result
}

// RunFig14 executes the BSP barrier-variant study at the configured bulk
// epoch size.
func RunFig14(opt Options) (*BSPResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	out := &BSPResults{
		Opt:  opt,
		Apps: workload.AppNames(),
		NP:   make(map[string]*machine.Result),
		Runs: make(map[string]map[string]*machine.Result),
	}
	var jobs []Job
	for _, app := range out.Apps {
		jobs = append(jobs, appJob(app+"/NP", app, opt, npConfig(opt.Threads)))
		for _, variant := range BSPVariants {
			idt, pf, err := variantFlags(variant)
			if err != nil {
				return nil, err
			}
			logging := variant != "LB++NOLOG"
			jobs = append(jobs, appJob(app+"/"+variant, app, opt,
				bspConfig(opt.Threads, opt.BulkEpoch, idt, pf, logging)))
		}
	}
	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, app := range out.Apps {
		out.NP[app] = results[i]
		i++
		out.Runs[app] = make(map[string]*machine.Result)
		for _, variant := range BSPVariants {
			out.Runs[app][variant] = results[i]
			i++
		}
	}
	return out, nil
}

// Normalized returns execution time of (app, variant) relative to NP.
func (b *BSPResults) Normalized(app, variant string) float64 {
	np := float64(b.NP[app].ExecCycles)
	if np == 0 {
		return 0
	}
	return float64(b.Runs[app][variant].ExecCycles) / np
}

// GmeanNormalized returns the suite geometric mean for one variant.
func (b *BSPResults) GmeanNormalized(variant string) float64 {
	var vs []float64
	for _, app := range b.Apps {
		vs = append(vs, b.Normalized(app, variant))
	}
	return stats.Gmean(vs)
}

// Fig14Table renders Figure 14.
func (b *BSPResults) Fig14Table() *stats.Table {
	t := stats.NewTable(
		"Figure 14: BSP execution time normalized to NP",
		append([]string{"app"}, BSPVariants...)...)
	for _, app := range b.Apps {
		vals := make([]float64, 0, len(BSPVariants))
		for _, v := range BSPVariants {
			vals = append(vals, b.Normalized(app, v))
		}
		t.AddF(app, "%.2f", vals...)
	}
	gm := make([]float64, 0, len(BSPVariants))
	for _, v := range BSPVariants {
		gm = append(gm, b.GmeanNormalized(v))
	}
	t.AddF("gmean", "%.2f", gm...)
	return t
}

// InterConflictShare returns the fraction of (intra+inter) conflicts that
// were inter-thread across the suite for one variant — the paper's "a
// large number (86%) of conflicts are inter-thread conflicts" claim.
func (b *BSPResults) InterConflictShare(variant string) float64 {
	var intra, inter uint64
	for _, app := range b.Apps {
		c := b.Runs[app][variant].Conflicts
		intra += c.Intra
		inter += c.Inter
	}
	if intra+inter == 0 {
		return 0
	}
	return float64(inter) / float64(intra+inter)
}

// WriteThroughResults backs the §7.2 naive-BSP comparison (~8x NP).
type WriteThroughResults struct {
	Apps []string
	NP   map[string]*machine.Result
	WT   map[string]*machine.Result
}

// RunWriteThrough measures the naive write-through BSP design against NP.
func RunWriteThrough(opt Options) (*WriteThroughResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	out := &WriteThroughResults{
		Apps: workload.AppNames(),
		NP:   make(map[string]*machine.Result),
		WT:   make(map[string]*machine.Result),
	}
	wtCfg := machine.DefaultConfig()
	wtCfg.Cores = opt.Threads
	wtCfg.Model = machine.WT
	var jobs []Job
	for _, app := range out.Apps {
		jobs = append(jobs, appJob(app+"/NP", app, opt, npConfig(opt.Threads)))
		jobs = append(jobs, appJob(app+"/WT", app, opt, wtCfg))
	}
	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	for i, app := range out.Apps {
		out.NP[app] = results[2*i]
		out.WT[app] = results[2*i+1]
	}
	return out, nil
}

// Table renders the write-through overhead per app and its gmean.
func (w *WriteThroughResults) Table() *stats.Table {
	t := stats.NewTable(
		"Naive write-through BSP: execution time normalized to NP (§7.2 text, ~8x)",
		"app", "WT/NP")
	var vs []float64
	for _, app := range w.Apps {
		v := float64(w.WT[app].ExecCycles) / float64(w.NP[app].ExecCycles)
		vs = append(vs, v)
		t.AddF(app, "%.2f", v)
	}
	t.AddF("gmean", "%.2f", stats.Gmean(vs))
	return t
}
