package harness

import (
	"persistbarriers/internal/epoch"
	"persistbarriers/internal/machine"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/workload"
)

// BEPResults holds the raw results behind Figures 11 and 12: every
// micro-benchmark under every LB variant.
type BEPResults struct {
	Opt     Options
	Benches []string
	Results map[string]map[string]*machine.Result // bench -> variant -> result
}

// RunBEP executes the buffered-epoch-persistency study (Section 7.1).
// Every (bench, variant) run is independent, so the whole grid fans out
// across the sweep worker pool.
func RunBEP(opt Options) (*BEPResults, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	out := &BEPResults{
		Opt:     opt,
		Benches: workload.MicrobenchmarkNames(),
		Results: make(map[string]map[string]*machine.Result),
	}
	var jobs []Job
	for _, bench := range out.Benches {
		for _, variant := range BEPVariants {
			idt, pf, err := variantFlags(variant)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, microJob(bench+"/"+variant, bench, opt, bepConfig(opt.Threads, idt, pf)))
		}
	}
	results, err := Sweep(jobs, opt.sweepOptions())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, bench := range out.Benches {
		out.Results[bench] = make(map[string]*machine.Result)
		for _, variant := range BEPVariants {
			out.Results[bench][variant] = results[i]
			i++
		}
	}
	return out, nil
}

// NormalizedThroughput returns a bench's variant throughput normalized to
// LB — one bar of Figure 11.
func (b *BEPResults) NormalizedThroughput(bench, variant string) float64 {
	base := b.Results[bench]["LB"].Throughput()
	if base == 0 {
		return 0
	}
	return b.Results[bench][variant].Throughput() / base
}

// GmeanThroughput returns the geometric-mean normalized throughput of a
// variant across the suite (Figure 11's gmean group).
func (b *BEPResults) GmeanThroughput(variant string) float64 {
	var vs []float64
	for _, bench := range b.Benches {
		vs = append(vs, b.NormalizedThroughput(bench, variant))
	}
	return stats.Gmean(vs)
}

// ConflictingPercent returns the percentage of epochs flushed because of a
// conflict — one bar of Figure 12.
func (b *BEPResults) ConflictingPercent(bench, variant string) float64 {
	return b.Results[bench][variant].Epochs.ConflictingFraction() * 100
}

// AmeanConflicting returns the arithmetic-mean conflicting-epoch
// percentage across the suite (Figure 12's amean group).
func (b *BEPResults) AmeanConflicting(variant string) float64 {
	var vs []float64
	for _, bench := range b.Benches {
		vs = append(vs, b.ConflictingPercent(bench, variant))
	}
	return stats.Amean(vs)
}

// Fig11Table renders Figure 11: transaction throughput normalized to LB.
func (b *BEPResults) Fig11Table() *stats.Table {
	t := stats.NewTable(
		"Figure 11: Transaction throughput normalized to LB (BEP micro-benchmarks)",
		append([]string{"bench"}, BEPVariants...)...)
	for _, bench := range b.Benches {
		vals := make([]float64, 0, len(BEPVariants))
		for _, v := range BEPVariants {
			vals = append(vals, b.NormalizedThroughput(bench, v))
		}
		t.AddF(bench, "%.3f", vals...)
	}
	gm := make([]float64, 0, len(BEPVariants))
	for _, v := range BEPVariants {
		gm = append(gm, b.GmeanThroughput(v))
	}
	t.AddF("gmean", "%.3f", gm...)
	return t
}

// Fig12Table renders Figure 12: percentage of conflicting epochs.
func (b *BEPResults) Fig12Table() *stats.Table {
	t := stats.NewTable(
		"Figure 12: Percentage of conflicting epochs (out of all persisted epochs)",
		append([]string{"bench"}, BEPVariants...)...)
	for _, bench := range b.Benches {
		vals := make([]float64, 0, len(BEPVariants))
		for _, v := range BEPVariants {
			vals = append(vals, b.ConflictingPercent(bench, v))
		}
		t.AddF(bench, "%.1f", vals...)
	}
	am := make([]float64, 0, len(BEPVariants))
	for _, v := range BEPVariants {
		am = append(am, b.AmeanConflicting(v))
	}
	t.AddF("amean", "%.1f", am...)
	return t
}

// ConflictKindsTable breaks epoch-flush causes down per variant for one
// benchmark suite run — the §7.2 "86% of conflicts are inter-thread"
// style analysis, applied to the BEP runs.
func (b *BEPResults) ConflictKindsTable() *stats.Table {
	t := stats.NewTable(
		"Epoch flush causes (suite totals, % of persisted epochs)",
		"variant", "intra", "inter", "eviction", "pressure", "proactive", "natural", "drain")
	for _, v := range BEPVariants {
		var agg machine.EpochAggregate
		for _, bench := range b.Benches {
			e := b.Results[bench][v].Epochs
			agg.Persisted += e.Persisted
			for i := range e.ByCause {
				agg.ByCause[i] += e.ByCause[i]
			}
		}
		pct := func(c epoch.FlushCause) float64 {
			if agg.Persisted == 0 {
				return 0
			}
			return 100 * float64(agg.ByCause[c]) / float64(agg.Persisted)
		}
		t.AddF(v, "%.1f",
			pct(epoch.CauseIntra), pct(epoch.CauseInter), pct(epoch.CauseEviction),
			pct(epoch.CausePressure), pct(epoch.CauseProactive), pct(epoch.CauseNatural),
			pct(epoch.CauseDrain))
	}
	return t
}
