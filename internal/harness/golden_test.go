package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFig4 pins the full JSON summary of the Figure 4 probe to a
// checked-in golden file. Any change to the timing model, the epoch
// machinery, or the sweep plumbing that shifts even one cycle in this
// two-thread conflict kernel shows up as a byte diff here — the
// regression tripwire for the simulator's determinism. Refresh with
//
//	go test ./internal/harness -run TestGoldenFig4 -update
//
// and justify the new numbers in the commit message.
func TestGoldenFig4(t *testing.T) {
	r, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "fig4.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Fig.4 summary drifted from golden file %s\n-- got --\n%s-- want --\n%s", path, got, want)
	}
}
