package harness

import (
	"fmt"
	"sort"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/mem"
	"persistbarriers/internal/stats"
	"persistbarriers/internal/trace"
)

// Fig7Result captures the multi-banked ordering probe of Figure 7: epoch
// E1 writes lines A and B mapping to two different LLC banks, epoch E2
// writes line C in the second bank. The violation the paper illustrates —
// C persisting before E1 is fully durable — must be impossible under the
// arbiter handshake.
type Fig7Result struct {
	// Persist cycle per line, in A, B, C order.
	PersistA, PersistB, PersistC uint64
	// Ordered is the invariant: C persists after both A and B.
	Ordered bool
}

// RunFig7 runs the two-bank epoch-ordering kernel on a 2-bank machine
// under plain LB with an immediate conflict forcing E2's flush (the
// adversarial schedule of Figure 7(a)).
func RunFig7() (*Fig7Result, error) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.LLCBanks = 2
	cfg.Model = machine.LB
	cfg.PF = true // flush epochs as soon as they complete
	cfg.RecordOpTimes = true

	// Bank = line % 2: line 0 (A) -> bank 0, lines 1 (B) and 3 (C) ->
	// bank 1.
	lineA, lineB, lineC := mem.Addr(0), mem.Addr(64), mem.Addr(192)
	var t0 trace.Builder
	t0.Store(lineA).Store(lineB).Barrier() // epoch E1 = {A, B}
	t0.Store(lineC).Barrier()              // epoch E2 = {C}
	p := &trace.Program{Traces: [][]trace.Op{t0.Ops()}}

	r, err := runOne(cfg, p)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{}
	persist := map[mem.Line]uint64{}
	for _, ev := range r.PersistLog {
		if _, seen := persist[ev.Line]; !seen {
			persist[ev.Line] = uint64(ev.Cycle)
		}
	}
	out.PersistA = persist[mem.LineOf(lineA)]
	out.PersistB = persist[mem.LineOf(lineB)]
	out.PersistC = persist[mem.LineOf(lineC)]
	out.Ordered = out.PersistC > out.PersistA && out.PersistC > out.PersistB
	if len(persist) != 3 {
		return nil, fmt.Errorf("harness: fig7 expected 3 persisted lines, got %d", len(persist))
	}
	return out, nil
}

// Table renders the Figure 7 probe.
func (f *Fig7Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 7: multi-banked epoch ordering (E1={A,B} across banks, E2={C})",
		"line", "bank", "persist cycle")
	rows := []struct {
		name string
		bank string
		cyc  uint64
	}{
		{"A (E1)", "0", f.PersistA},
		{"B (E1)", "1", f.PersistB},
		{"C (E2)", "1", f.PersistC},
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].cyc < rows[j].cyc })
	for _, row := range rows {
		t.AddRow(row.name, row.bank, fmt.Sprintf("%d", row.cyc))
	}
	verdict := "VIOLATION: C persisted before E1 completed"
	if f.Ordered {
		verdict = "ordered: C persisted after all of E1 (Figure 7(b))"
	}
	t.AddRow(verdict, "", "")
	return t
}
