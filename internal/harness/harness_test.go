package harness

import (
	"math"
	"strings"
	"testing"
)

// tinyOpt keeps harness tests fast while still exercising every code path.
func tinyOpt() Options {
	return Options{
		Threads:    4,
		MicroOps:   8,
		AppOps:     600,
		EpochSizes: []int{20, 60},
		BulkEpoch:  50,
		Seed:       42,
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Threads: 0, MicroOps: 1, AppOps: 1, BulkEpoch: 1},
		{Threads: 64, MicroOps: 1, AppOps: 1, BulkEpoch: 1},
		{Threads: 4, MicroOps: 0, AppOps: 1, BulkEpoch: 1},
		{Threads: 4, MicroOps: 1, AppOps: 1, BulkEpoch: 0},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := Defaults().validate(); err != nil {
		t.Errorf("Defaults rejected: %v", err)
	}
	if err := Quick().validate(); err != nil {
		t.Errorf("Quick rejected: %v", err)
	}
}

func TestVariantFlags(t *testing.T) {
	cases := map[string][2]bool{
		"LB": {false, false}, "LB+IDT": {true, false},
		"LB+PF": {false, true}, "LB++": {true, true}, "LB++NOLOG": {true, true},
	}
	for name, want := range cases {
		idt, pf, err := variantFlags(name)
		if err != nil || idt != want[0] || pf != want[1] {
			t.Errorf("%s -> (%v,%v,%v)", name, idt, pf, err)
		}
	}
	if _, _, err := variantFlags("bogus"); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestRunBEPProducesFigures(t *testing.T) {
	r, err := RunBEP(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benches) != 5 {
		t.Fatalf("benches = %v", r.Benches)
	}
	for _, bench := range r.Benches {
		for _, v := range BEPVariants {
			res := r.Results[bench][v]
			if res == nil || !res.Finished {
				t.Fatalf("%s/%s missing or unfinished", bench, v)
			}
		}
		// LB normalizes to exactly 1.
		if got := r.NormalizedThroughput(bench, "LB"); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s LB normalized = %v", bench, got)
		}
	}
	for _, tbl := range []string{r.Fig11Table().Render(), r.Fig12Table().Render(), r.ConflictKindsTable().Render()} {
		if !strings.Contains(tbl, "queue") && !strings.Contains(tbl, "LB++") {
			t.Errorf("table missing expected rows:\n%s", tbl)
		}
	}
	// The headline claim, in shape: LB++ must not lose to LB on gmean.
	if g := r.GmeanThroughput("LB++"); g < 1.0 {
		t.Errorf("LB++ gmean %v < 1 (slower than LB)", g)
	}
	// Conflicting-epoch percentages are percentages.
	for _, v := range BEPVariants {
		p := r.AmeanConflicting(v)
		if p < 0 || p > 100 {
			t.Errorf("%s amean conflicting = %v", v, p)
		}
	}
}

func TestRunFig13Shape(t *testing.T) {
	r, err := RunFig13(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		for _, size := range r.Sizes {
			n := r.Normalized(app, size)
			if n < 1.0 {
				t.Errorf("%s/LB%d normalized %v < 1 (faster than NP?)", app, size, n)
			}
		}
	}
	tbl := r.Fig13Table().Render()
	if !strings.Contains(tbl, "ssca2") || !strings.Contains(tbl, "gmean") {
		t.Errorf("fig13 table malformed:\n%s", tbl)
	}
}

func TestRunFig14Shape(t *testing.T) {
	r, err := RunFig14(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		for _, v := range BSPVariants {
			if r.Runs[app][v] == nil || !r.Runs[app][v].Finished {
				t.Fatalf("%s/%s unfinished", app, v)
			}
		}
	}
	// Without logging the overhead must not exceed the logged LB++.
	if r.GmeanNormalized("LB++NOLOG") > r.GmeanNormalized("LB++")+1e-9 {
		t.Errorf("NOLOG %v slower than logged %v", r.GmeanNormalized("LB++NOLOG"), r.GmeanNormalized("LB++"))
	}
	share := r.InterConflictShare("LB")
	if share < 0 || share > 1 {
		t.Errorf("inter share = %v", share)
	}
}

func TestRunFig1Timelines(t *testing.T) {
	r, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	// SP couples persistence to visibility: slowest visibility. BEP
	// decouples: fastest.
	if !(r.Exec["BEP(LB)"] < r.Exec["EP"] && r.Exec["EP"] < r.Exec["SP"]) {
		t.Errorf("Figure 1 ordering violated: %v", r.Exec)
	}
	// SP cannot coalesce the double store to a: one persist per store.
	if r.Persists["SP"] != 7 {
		t.Errorf("SP persists = %d, want 7 (no coalescing)", r.Persists["SP"])
	}
	if r.Persists["BEP(LB)"] != 6 {
		t.Errorf("BEP persists = %d, want 6 (a coalesced)", r.Persists["BEP(LB)"])
	}
	if !strings.Contains(r.Table().Render(), "SP") {
		t.Error("fig1 table malformed")
	}
}

func TestRunFig4IDTBenefit(t *testing.T) {
	r, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.StallIDT != 0 {
		t.Errorf("IDT kernel stalled %d cycles on the conflict", r.StallIDT)
	}
	if r.StallLB == 0 {
		t.Error("LB kernel did not stall on the conflict")
	}
	if r.DepsIDT != 1 {
		t.Errorf("deps recorded = %d, want 1", r.DepsIDT)
	}
	if !strings.Contains(r.Table().Render(), "LB+IDT") {
		t.Error("fig4 table malformed")
	}
}

func TestTables1And2(t *testing.T) {
	t1 := Table1().Render()
	for _, want := range []string{"Cores", "NVRAM", "2D mesh", "In-flight epochs"} {
		if !strings.Contains(t1, want) {
			t.Errorf("table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2().Render()
	for _, want := range []string{"hash", "queue", "rbtree", "sdg", "sps"} {
		if !strings.Contains(t2, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestRunFlushMode(t *testing.T) {
	r, err := RunFlushMode(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	// clwb must beat (or at worst match) clflush on every benchmark.
	for _, bench := range r.Benches {
		ratio := r.Clwb[bench].Throughput() / r.Clflush[bench].Throughput()
		if ratio < 0.95 {
			t.Errorf("%s: clwb/clflush = %v, non-invalidating flush lost badly", bench, ratio)
		}
	}
	if !strings.Contains(r.Table().Render(), "gmean") {
		t.Error("flushmode table malformed")
	}
}

func TestRunWriteThrough(t *testing.T) {
	// The naive write-through overhead is an NVRAM-saturation effect: it
	// needs enough threads to exceed the controllers' write bandwidth
	// (the paper's 8x is at 32 threads). Use a mid-size config and only
	// require the write-intensive stress case to show clear overhead;
	// no app may be faster than NP.
	opt := tinyOpt()
	opt.Threads = 16
	opt.AppOps = 1500
	r, err := RunWriteThrough(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		ratio := float64(r.WT[app].ExecCycles) / float64(r.NP[app].ExecCycles)
		if ratio < 0.999 {
			t.Errorf("%s: WT/NP = %v < 1", app, ratio)
		}
		if app == "ssca2" && ratio < 1.2 {
			t.Errorf("ssca2: WT/NP = %v, expected saturation overhead", ratio)
		}
	}
	if !strings.Contains(r.Table().Render(), "gmean") {
		t.Error("writethrough table malformed")
	}
}

func TestRunAblations(t *testing.T) {
	r, err := RunAblations(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables()) != 4 {
		t.Fatalf("ablation tables = %d, want 4", len(r.Tables()))
	}
	// More IDT registers can only reduce fallbacks.
	if r.DepRegFallbacks[16] > r.DepRegFallbacks[1] {
		t.Errorf("fallbacks grew with more registers: %v", r.DepRegFallbacks)
	}
	// Serializing all flushes through one arbiter must not beat the
	// paper's per-core arbiters.
	if r.GlobalArbiter > r.PerCoreArbiter*1.05 {
		t.Errorf("global arbiter %.3f outperformed per-core %.3f", r.GlobalArbiter, r.PerCoreArbiter)
	}
}

func TestRunFig7BankOrdering(t *testing.T) {
	r, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ordered {
		t.Fatalf("Figure 7 violation: C persisted at %d before E1 (A %d, B %d)",
			r.PersistC, r.PersistA, r.PersistB)
	}
	if !strings.Contains(r.Table().Render(), "ordered") {
		t.Error("fig7 table malformed")
	}
}
