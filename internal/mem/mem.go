// Package mem defines the physical memory vocabulary shared by every layer
// of the simulator: byte addresses, cache-line geometry, access kinds, and
// monotonically versioned store values used by the recovery checker.
package mem

import "fmt"

// LineShift and LineSize describe the 64-byte cache-line geometry used
// throughout the paper's system (Table 1).
const (
	LineShift = 6
	LineSize  = 1 << LineShift // 64 bytes
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line identifies a cache line (an address with the low 6 bits dropped).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Addr returns the first byte address of the line.
func (l Line) Addr() Addr { return Addr(l) << LineShift }

// String renders the line as its base address in hex.
func (l Line) String() string { return fmt.Sprintf("line@%#x", uint64(l.Addr())) }

// LinesSpanned reports how many cache lines the byte range [a, a+size)
// touches. A zero-sized range touches no lines.
func LinesSpanned(a Addr, size uint64) int {
	if size == 0 {
		return 0
	}
	first := uint64(a) >> LineShift
	last := (uint64(a) + size - 1) >> LineShift
	return int(last - first + 1)
}

// LineRange returns every line touched by the byte range [a, a+size).
func LineRange(a Addr, size uint64) []Line {
	n := LinesSpanned(a, size)
	lines := make([]Line, 0, n)
	first := LineOf(a)
	for i := 0; i < n; i++ {
		lines = append(lines, first+Line(i))
	}
	return lines
}

// Kind distinguishes the memory access types the cache hierarchy serves.
type Kind uint8

const (
	// Load is a read access.
	Load Kind = iota
	// Store is a write access.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Version is a globally unique, monotonically increasing identity for one
// store's value. The recovery checker compares the versions that reached
// NVRAM against the versions the persistency model promised, without
// simulating actual data bytes.
type Version uint64

// NoVersion marks a line that has never been stored to.
const NoVersion Version = 0

// VersionSource hands out store versions. The zero value starts at 1.
type VersionSource struct{ next Version }

// Next returns a fresh version, strictly greater than all previous ones.
func (v *VersionSource) Next() Version {
	v.next++
	return v.next
}
