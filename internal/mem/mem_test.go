package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOfAndBack(t *testing.T) {
	cases := []struct {
		addr Addr
		line Line
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{4096, 64},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%d) = %d, want %d", c.addr, got, c.line)
		}
	}
	if Line(5).Addr() != 320 {
		t.Errorf("Line(5).Addr() = %d, want 320", Line(5).Addr())
	}
}

func TestLineOfIsIdempotentOnLineBase(t *testing.T) {
	f := func(raw uint32) bool {
		l := LineOf(Addr(raw))
		return LineOf(l.Addr()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr Addr
		size uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 1, 1},
		{63, 2, 2},
		{0, 512, 8},  // a 512 B micro-benchmark entry spans 8 lines
		{32, 512, 9}, // unaligned 512 B entry spans 9 lines
	}
	for _, c := range cases {
		if got := LinesSpanned(c.addr, c.size); got != c.want {
			t.Errorf("LinesSpanned(%d, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestLineRangeIsContiguous(t *testing.T) {
	lines := LineRange(100, 300)
	if len(lines) != LinesSpanned(100, 300) {
		t.Fatalf("len = %d, want %d", len(lines), LinesSpanned(100, 300))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] != lines[i-1]+1 {
			t.Fatalf("lines not contiguous: %v", lines)
		}
	}
	if lines[0] != LineOf(100) {
		t.Fatalf("first line = %v, want %v", lines[0], LineOf(100))
	}
}

func TestLineRangeProperty(t *testing.T) {
	f := func(rawAddr uint16, rawSize uint16) bool {
		a, size := Addr(rawAddr), uint64(rawSize)
		lines := LineRange(a, size)
		if len(lines) != LinesSpanned(a, size) {
			return false
		}
		if size == 0 {
			return len(lines) == 0
		}
		// Every byte of the range must fall in exactly one returned line.
		last := a + Addr(size) - 1
		return lines[0] == LineOf(a) && lines[len(lines)-1] == LineOf(last)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Errorf("Kind strings wrong: %q %q", Load, Store)
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestVersionSourceMonotone(t *testing.T) {
	var vs VersionSource
	prev := NoVersion
	for i := 0; i < 1000; i++ {
		v := vs.Next()
		if v <= prev {
			t.Fatalf("version %d not greater than previous %d", v, prev)
		}
		prev = v
	}
}
