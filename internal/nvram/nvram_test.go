package nvram

import (
	"testing"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

func newCtrl(t *testing.T, eng *sim.Engine) *Controller {
	t.Helper()
	c, err := NewController(0, eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewController(0, nil, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
	bad := DefaultConfig()
	bad.WriteLatency = 0
	if _, err := NewController(0, eng, bad); err == nil {
		t.Error("zero write latency accepted")
	}
	bad = DefaultConfig()
	bad.ReadService = 0
	if _, err := NewController(0, eng, bad); err == nil {
		t.Error("zero read service accepted")
	}
}

func TestReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	var done sim.Cycle
	c.Read(1, func() { done = eng.Now() })
	eng.Run()
	if done != DefaultConfig().ReadLatency {
		t.Fatalf("read completed at %d, want %d", done, DefaultConfig().ReadLatency)
	}
}

func TestWriteDurableExactlyAtAck(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	c.Write(7, 42, nil)
	// One cycle before the ack the image must be empty.
	eng.RunUntil(DefaultConfig().WriteLatency - 1)
	if v := c.Image()[7]; v != mem.NoVersion {
		t.Fatalf("write visible before ack: version %d", v)
	}
	eng.Run()
	if v := c.Image()[7]; v != 42 {
		t.Fatalf("after ack, image[7] = %d, want 42", v)
	}
}

func TestWritesSerializeAtServiceInterval(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	cfg := DefaultConfig()
	var acks []sim.Cycle
	for i := 0; i < 3; i++ {
		c.Write(mem.Line(i), mem.Version(i+1), func() { acks = append(acks, eng.Now()) })
	}
	eng.Run()
	if len(acks) != 3 {
		t.Fatalf("got %d acks, want 3", len(acks))
	}
	for i, want := range []sim.Cycle{
		cfg.WriteLatency,
		cfg.WriteService + cfg.WriteLatency,
		2*cfg.WriteService + cfg.WriteLatency,
	} {
		if acks[i] != want {
			t.Errorf("ack %d at %d, want %d", i, acks[i], want)
		}
	}
	s := c.Stats()
	if s.Writes != 3 {
		t.Errorf("Writes = %d, want 3", s.Writes)
	}
	if s.StallCycles == 0 {
		t.Error("expected queuing stalls for back-to-back writes")
	}
}

func TestLaterWriteWins(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	c.Write(3, 1, nil)
	c.Write(3, 2, nil)
	eng.Run()
	if v := c.Image()[3]; v != 2 {
		t.Fatalf("image[3] = %d, want 2 (later write wins)", v)
	}
}

func TestWriteLogAppendsDurably(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	e1 := LogEntry{Line: 5, Old: 10, EpochCore: 1, EpochNum: 2}
	e2 := LogEntry{Line: 6, Old: 11, EpochCore: 1, EpochNum: 2}
	c.WriteLog(e1, nil)
	c.WriteLog(e2, nil)
	if len(c.Log()) != 0 {
		t.Fatal("log visible before writes complete")
	}
	eng.Run()
	log := c.Log()
	if len(log) != 2 || log[0] != e1 || log[1] != e2 {
		t.Fatalf("log = %+v, want [%+v %+v]", log, e1, e2)
	}
	if c.Stats().LogWrites != 2 {
		t.Errorf("LogWrites = %d, want 2", c.Stats().LogWrites)
	}
}

func TestImageIsACopy(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrl(t, eng)
	c.Write(1, 5, nil)
	eng.Run()
	img := c.Image()
	img[1] = 99
	if c.Image()[1] != 5 {
		t.Fatal("mutating the returned image affected the controller")
	}
}

func TestBankInterleavesLines(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBank(4, eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for l := mem.Line(0); l < 8; l++ {
		id := b.ControllerFor(l).ID()
		seen[id] = true
		if id != int(l%4) {
			t.Errorf("line %d routed to MC %d, want %d", l, id, l%4)
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d controllers used, want 4", len(seen))
	}
}

func TestBankRejectsZeroControllers(t *testing.T) {
	if _, err := NewBank(0, sim.NewEngine(), DefaultConfig()); err == nil {
		t.Error("zero-controller bank accepted")
	}
}

func TestBankImageMergesControllers(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBank(2, eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.ControllerFor(0).Write(0, 1, nil) // MC 0
	b.ControllerFor(1).Write(1, 2, nil) // MC 1
	eng.Run()
	img := b.Image()
	if img[0] != 1 || img[1] != 2 {
		t.Fatalf("merged image = %v", img)
	}
	s := b.Stats()
	if s.Writes != 2 {
		t.Errorf("bank Writes = %d, want 2", s.Writes)
	}
}

func TestParallelControllersDoNotQueueOnEachOther(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBank(4, eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var acks []sim.Cycle
	// Four writes to four different MCs: all should ack at WriteLatency.
	for l := mem.Line(0); l < 4; l++ {
		b.ControllerFor(l).Write(l, 1, func() { acks = append(acks, eng.Now()) })
	}
	eng.Run()
	for i, a := range acks {
		if a != DefaultConfig().WriteLatency {
			t.Errorf("ack %d at %d, want %d (no cross-MC queuing)", i, a, DefaultConfig().WriteLatency)
		}
	}
}
