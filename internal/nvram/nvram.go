// Package nvram models the non-volatile memory side of the system: the
// memory controllers (MCs) that front the NVRAM DIMMs, their queuing
// behaviour, and the durable "shadow image" of persisted store versions
// that the recovery checker inspects after a simulated crash.
//
// The paper's system (Table 1) has 4 memory controllers at the corners of
// the mesh and NVRAM access latencies of 240 cycles (read) and 360 cycles
// (write). Each controller here is a single service queue: a request
// occupies the controller for a service interval (modelling bandwidth) and
// completes after the device latency. A write becomes durable — visible to
// a crash — exactly when its PersistAck fires.
package nvram

import (
	"fmt"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
)

// Config holds the timing parameters of one memory controller.
type Config struct {
	ReadLatency  sim.Cycle // device latency for a line read (Table 1: 240)
	WriteLatency sim.Cycle // device latency for a durable line write (Table 1: 360)
	// ReadService and WriteService are the controller occupancy per
	// request; successive requests to the same MC are spaced at least
	// this far apart, modelling channel bandwidth.
	ReadService  sim.Cycle
	WriteService sim.Cycle
}

// DefaultConfig matches the paper's Table 1 latencies with service
// intervals sized for a banked PCM-class DIMM: bank-level parallelism
// hides most of the cell-write occupancy, leaving the channel busy for a
// burst per request (writes still cost ~2x reads).
func DefaultConfig() Config {
	return Config{
		ReadLatency:  240,
		WriteLatency: 360,
		ReadService:  6,
		WriteService: 12,
	}
}

// LogEntry is one undo-log record: the version of line that was durable
// before the logged epoch first modified it. LogSeq orders entries within
// a crash image.
type LogEntry struct {
	Line mem.Line
	Old  mem.Version
	// EpochCore and EpochNum identify the epoch the entry belongs to.
	EpochCore int
	EpochNum  uint64
}

// Controller is one memory controller and the NVRAM region behind it.
type Controller struct {
	id   int
	eng  *sim.Engine
	cfg  Config
	free sim.Cycle // earliest cycle the next request can begin service

	image map[mem.Line]mem.Version // durable data region
	log   []LogEntry               // durable undo-log region, append order

	stats Stats
	probe *obs.Probe
}

// Stats counts controller activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	LogWrites  uint64
	BusyCycles sim.Cycle
	// StallCycles accumulates time requests spent waiting for the
	// controller to become free (queuing delay).
	StallCycles sim.Cycle
}

// NewController returns a controller with an empty durable image.
func NewController(id int, eng *sim.Engine, cfg Config) (*Controller, error) {
	if eng == nil {
		return nil, fmt.Errorf("nvram: engine must not be nil")
	}
	if cfg.ReadLatency == 0 || cfg.WriteLatency == 0 {
		return nil, fmt.Errorf("nvram: device latencies must be nonzero")
	}
	if cfg.ReadService == 0 || cfg.WriteService == 0 {
		return nil, fmt.Errorf("nvram: service intervals must be nonzero")
	}
	return &Controller{
		id:    id,
		eng:   eng,
		cfg:   cfg,
		image: make(map[mem.Line]mem.Version),
	}, nil
}

// ID reports the controller's index.
func (c *Controller) ID() int { return c.id }

// AttachProbe installs an observability probe; each admitted request
// emits a queue-depth sample (its queuing delay in cycles).
func (c *Controller) AttachProbe(p *obs.Probe) { c.probe = p }

// admit claims the controller for one request and returns the cycle at
// which service begins.
func (c *Controller) admit(service sim.Cycle) sim.Cycle {
	now := c.eng.Now()
	start := now
	if c.free > start {
		start = c.free
		c.stats.StallCycles += start - now
	}
	c.free = start + service
	c.stats.BusyCycles += service
	if c.probe.Active() {
		c.probe.NVRAMQueue(now, c.id, start-now)
	}
	return start
}

// Read schedules a line read; done fires when the data is available at the
// controller.
func (c *Controller) Read(line mem.Line, done func()) {
	start := c.admit(c.cfg.ReadService)
	c.stats.Reads++
	c.eng.At(start+c.cfg.ReadLatency, done)
}

// Write durably writes version v of line. done (the PersistAck) fires when
// the write has reached NVRAM; the shadow image updates at that same cycle,
// so a crash strictly before the ack does not observe the write.
func (c *Controller) Write(line mem.Line, v mem.Version, done func()) {
	start := c.admit(c.cfg.WriteService)
	c.stats.Writes++
	c.eng.At(start+c.cfg.WriteLatency, func() {
		c.image[line] = v
		if done != nil {
			done()
		}
	})
}

// WriteLog durably appends an undo-log entry. done fires when the entry is
// durable. Log writes share the controller's write bandwidth.
func (c *Controller) WriteLog(entry LogEntry, done func()) {
	start := c.admit(c.cfg.WriteService)
	c.stats.LogWrites++
	c.eng.At(start+c.cfg.WriteLatency, func() {
		c.log = append(c.log, entry)
		if done != nil {
			done()
		}
	})
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats { return c.stats }

// Image returns the durable data image (line -> persisted version) as of
// the current simulation instant. The returned map is a copy.
func (c *Controller) Image() map[mem.Line]mem.Version {
	out := make(map[mem.Line]mem.Version, len(c.image))
	for l, v := range c.image {
		out[l] = v
	}
	return out
}

// PersistedVersion returns the version of line currently durable at this
// controller (NoVersion if the line has never persisted). Unlike Image it
// is a point query with no allocation, cheap enough for live durability
// watermarks polled between request batches.
func (c *Controller) PersistedVersion(line mem.Line) mem.Version {
	return c.image[line]
}

// Log returns the durable undo-log entries in append order (a copy).
func (c *Controller) Log() []LogEntry {
	out := make([]LogEntry, len(c.log))
	copy(out, c.log)
	return out
}

// Bank groups several controllers and routes lines to them by address
// interleaving, the way the paper places 4 MCs at the mesh corners.
type Bank struct {
	ctrls []*Controller
}

// NewBank creates n controllers sharing one config.
func NewBank(n int, eng *sim.Engine, cfg Config) (*Bank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("nvram: controller count must be positive, got %d", n)
	}
	b := &Bank{ctrls: make([]*Controller, n)}
	for i := range b.ctrls {
		c, err := NewController(i, eng, cfg)
		if err != nil {
			return nil, err
		}
		b.ctrls[i] = c
	}
	return b, nil
}

// AttachProbe installs an observability probe on every controller.
func (b *Bank) AttachProbe(p *obs.Probe) {
	for _, c := range b.ctrls {
		c.AttachProbe(p)
	}
}

// ControllerFor returns the controller owning line (line-interleaved).
func (b *Bank) ControllerFor(line mem.Line) *Controller {
	return b.ctrls[int(uint64(line)%uint64(len(b.ctrls)))]
}

// Controllers returns the underlying controllers.
func (b *Bank) Controllers() []*Controller { return b.ctrls }

// PersistedVersion returns the durable version of line (a point query on
// the owning controller; NoVersion when never persisted).
func (b *Bank) PersistedVersion(line mem.Line) mem.Version {
	return b.ControllerFor(line).PersistedVersion(line)
}

// Image merges every controller's durable image into one map.
func (b *Bank) Image() map[mem.Line]mem.Version {
	out := make(map[mem.Line]mem.Version)
	for _, c := range b.ctrls {
		for l, v := range c.image {
			out[l] = v
		}
	}
	return out
}

// Log concatenates all controllers' undo logs. Entries keep per-controller
// append order; cross-controller order is by controller index, which is
// sufficient for rollback because entries are keyed by epoch.
func (b *Bank) Log() []LogEntry {
	var out []LogEntry
	for _, c := range b.ctrls {
		out = append(out, c.log...)
	}
	return out
}

// Stats sums all controllers' counters.
func (b *Bank) Stats() Stats {
	var s Stats
	for _, c := range b.ctrls {
		cs := c.Stats()
		s.Reads += cs.Reads
		s.Writes += cs.Writes
		s.LogWrites += cs.LogWrites
		s.BusyCycles += cs.BusyCycles
		s.StallCycles += cs.StallCycles
	}
	return s
}
