package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end cycle = %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOWithinSameCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	for _, c := range []Cycle{5, 10, 15, 20} {
		c := c
		e.At(c, func() { fired = append(fired, c) })
	}
	now := e.RunUntil(12)
	if now != 12 {
		t.Fatalf("RunUntil returned %d, want 12", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5 and 10 only", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run, fired = %v, want all four", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stopped after first event)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineClockAdvancesToDrainedLimit(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		// A mildly tangled schedule: events spawn events.
		for i := 0; i < 50; i++ {
			i := i
			e.At(Cycle(i%7)*3, func() {
				order = append(order, i)
				e.After(Cycle(i%5), func() { order = append(order, 1000+i) })
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineTimeNeverRegresses(t *testing.T) {
	// Property: however events are scheduled (at legal times), observed
	// firing times are monotonically non-decreasing.
	f := func(deltas []uint16) bool {
		e := NewEngine()
		var last Cycle
		ok := true
		for _, d := range deltas {
			e.At(Cycle(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignalSubscribeBeforeFire(t *testing.T) {
	var s Signal
	hits := 0
	s.Subscribe(func() { hits++ })
	s.Subscribe(func() { hits++ })
	if hits != 0 {
		t.Fatal("subscribers ran before fire")
	}
	s.Fire()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if !s.Fired() {
		t.Fatal("Fired() = false after Fire")
	}
}

func TestSignalSubscribeAfterFire(t *testing.T) {
	var s Signal
	s.Fire()
	hits := 0
	s.Subscribe(func() { hits++ })
	if hits != 1 {
		t.Fatalf("late subscriber did not run immediately, hits = %d", hits)
	}
}

func TestSignalDoubleFireIsIdempotent(t *testing.T) {
	var s Signal
	hits := 0
	s.Subscribe(func() { hits++ })
	s.Fire()
	s.Fire()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestBarrierFiresOnLastArrival(t *testing.T) {
	fired := false
	b := NewBarrier(3, func() { fired = true })
	b.Arrive()
	b.Arrive()
	if fired {
		t.Fatal("barrier fired early")
	}
	b.Arrive()
	if !fired {
		t.Fatal("barrier did not fire on last arrival")
	}
	b.Arrive() // extra arrivals are ignored
}

func TestBarrierZeroCountFiresImmediately(t *testing.T) {
	fired := false
	NewBarrier(0, func() { fired = true })
	if !fired {
		t.Fatal("zero-count barrier did not fire at construction")
	}
}
