// Package sim provides a deterministic discrete-event simulation kernel.
//
// All hardware components in this repository (cores, caches, LLC banks,
// memory controllers, epoch arbiters) are modelled as state machines that
// schedule callbacks on a shared Engine. The engine maintains a single
// logical clock measured in Cycle units and fires events in (time, FIFO)
// order, which makes every simulation run bit-for-bit reproducible.
//
// The queue is split by scheduling distance. Almost every event a machine
// schedules lands within a few dozen cycles of now (cache latencies, mesh
// hops, flush issue intervals), so those go into a calendar ring of 64
// per-cycle FIFO buckets whose backing arrays are reused run-long — push
// and pop are O(1) with zero steady-state allocation. The rare far-future
// events go into a value-typed 4-ary min-heap. Both structures store
// events by value; nothing is boxed, and At/After allocate only when a
// bucket or the heap grows past its high-water mark.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Cycle is a point (or distance) on the simulated clock.
type Cycle uint64

// MaxCycle is the largest representable cycle; used as "never".
const MaxCycle = Cycle(math.MaxUint64)

// event is a scheduled callback. Events are stored by value in the ring
// and heap; (when, seq) totally orders them.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

// ringSpan is the calendar ring's horizon in cycles. It must be a power
// of two: bucket indexing and the non-empty bitmask rely on it being 64.
const ringSpan = 64

// bucket is one ring slot: the FIFO of events for a single future cycle.
// head indexes the next event to fire; the tail of evs keeps its capacity
// when the bucket drains, so steady-state scheduling never allocates.
type bucket struct {
	evs  []event
	head int
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now     Cycle
	seq     uint64
	stopped bool
	fired   uint64

	// Calendar ring for events within ringSpan cycles of now. All events
	// in one bucket share the same timestamp (two pending events that
	// collide mod ringSpan are both within a 64-cycle window of each
	// other, hence equal), and arrive in seq order, so each bucket is a
	// plain FIFO. liveMask bit i is set iff buckets[i] is non-empty.
	buckets   [ringSpan]bucket
	liveMask  uint64
	ringCount int

	// 4-ary min-heap ordered by (when, seq) for events at or beyond the
	// ring horizon.
	heap []event
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.ringCount + len(e.heap) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// panics: it indicates a protocol bug, not a recoverable condition.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", when, e.now))
	}
	e.seq++
	if when-e.now < ringSpan {
		b := &e.buckets[when&(ringSpan-1)]
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
			e.liveMask |= 1 << (when & (ringSpan - 1))
		}
		b.evs = append(b.evs, event{when: when, seq: e.seq, fn: fn})
		e.ringCount++
		return
	}
	e.heapPush(event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delta cycles from now.
func (e *Engine) After(delta Cycle, fn func()) { e.At(e.now+delta, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the cycle at which the simulation quiesced.
func (e *Engine) Run() Cycle {
	e.stopped = false
	for e.ringCount+len(e.heap) > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= limit. The clock is advanced
// to limit if the queue drains early. It returns the current cycle.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	e.stopped = false
	for e.ringCount+len(e.heap) > 0 && !e.stopped && e.nextWhen() <= limit {
		e.step()
	}
	if !e.stopped && e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunWhile executes events with timestamps <= limit for as long as cond
// reports true; cond is evaluated before each event. If execution stops
// because the next event lies beyond limit (cond still true), the clock
// advances to limit — the "crash instant reached" case. If the queue
// drains while cond is still true, the clock is left where it is: the
// caller is waiting on something that will never fire (a deadlock it can
// detect via Pending() == 0). It returns the current cycle.
func (e *Engine) RunWhile(limit Cycle, cond func() bool) Cycle {
	e.stopped = false
	for e.ringCount+len(e.heap) > 0 && !e.stopped && cond() && e.nextWhen() <= limit {
		e.step()
	}
	if !e.stopped && cond() && e.ringCount+len(e.heap) > 0 && e.nextWhen() > limit && e.now < limit {
		e.now = limit
	}
	return e.now
}

// ringNext returns the timestamp of the earliest ring event. The caller
// must have checked ringCount > 0. Rotating the non-empty mask so that
// now's bucket becomes bit 0 turns "first non-empty bucket at or after
// now" into a single trailing-zeros count.
func (e *Engine) ringNext() Cycle {
	rot := bits.RotateLeft64(e.liveMask, -int(e.now&(ringSpan-1)))
	return e.now + Cycle(bits.TrailingZeros64(rot))
}

// nextWhen returns the earliest pending timestamp. The caller must have
// checked Pending() > 0.
func (e *Engine) nextWhen() Cycle {
	if e.ringCount == 0 {
		return e.heap[0].when
	}
	rw := e.ringNext()
	if len(e.heap) > 0 && e.heap[0].when < rw {
		return e.heap[0].when
	}
	return rw
}

// step fires the earliest pending event. Ties on when break by seq; a
// ring bucket's head always carries the bucket's smallest seq (FIFO), so
// one comparison against the heap root decides the winner.
func (e *Engine) step() {
	var ev event
	useRing := e.ringCount > 0
	if useRing {
		rw := e.ringNext()
		b := &e.buckets[rw&(ringSpan-1)]
		head := &b.evs[b.head]
		if len(e.heap) > 0 && (e.heap[0].when < rw || (e.heap[0].when == rw && e.heap[0].seq < head.seq)) {
			useRing = false
		} else {
			ev = *head
			head.fn = nil // release the closure for GC
			b.head++
			if b.head == len(b.evs) {
				b.evs = b.evs[:0]
				b.head = 0
				e.liveMask &^= 1 << (rw & (ringSpan - 1))
			}
			e.ringCount--
		}
	}
	if !useRing {
		ev = e.heapPop()
	}
	if ev.when > e.now {
		e.now = ev.when
	}
	e.fired++
	ev.fn()
	// A popped heap event may leave far-future events that are now within
	// the ring horizon; they stay in the heap — correctness only needs
	// the (when, seq) merge above, not migration.
}

// less orders events by (when, seq).
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapPush inserts ev into the 4-ary min-heap.
func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(&e.heap[i], &e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// heapPop removes and returns the heap's minimum event.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	h = h[:n]
	e.heap = h
	// Sift the relocated root down among up to four children per level.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(&h[c], &h[min]) {
				min = c
			}
		}
		if !less(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
