// Package sim provides a deterministic discrete-event simulation kernel.
//
// All hardware components in this repository (cores, caches, LLC banks,
// memory controllers, epoch arbiters) are modelled as state machines that
// schedule callbacks on a shared Engine. The engine maintains a single
// logical clock measured in Cycle units and fires events in (time, FIFO)
// order, which makes every simulation run bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point (or distance) on the simulated clock.
type Cycle uint64

// MaxCycle is the largest representable cycle; used as "never".
const MaxCycle = Cycle(math.MaxUint64)

// Event is a scheduled callback.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// panics: it indicates a protocol bug, not a recoverable condition.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", when, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delta cycles from now.
func (e *Engine) After(delta Cycle, fn func()) { e.At(e.now+delta, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the cycle at which the simulation quiesced.
func (e *Engine) Run() Cycle {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= limit. The clock is advanced
// to limit if the queue drains early. It returns the current cycle.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].when <= limit {
		e.step()
	}
	if !e.stopped && e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunWhile executes events with timestamps <= limit for as long as cond
// reports true; cond is evaluated before each event. If execution stops
// because the next event lies beyond limit (cond still true), the clock
// advances to limit — the "crash instant reached" case. If the queue
// drains while cond is still true, the clock is left where it is: the
// caller is waiting on something that will never fire (a deadlock it can
// detect via Pending() == 0). It returns the current cycle.
func (e *Engine) RunWhile(limit Cycle, cond func() bool) Cycle {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && cond() && e.queue[0].when <= limit {
		e.step()
	}
	if !e.stopped && cond() && len(e.queue) > 0 && e.queue[0].when > limit && e.now < limit {
		e.now = limit
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	if ev.when > e.now {
		e.now = ev.when
	}
	e.fired++
	ev.fn()
}
