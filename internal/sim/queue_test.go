package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refQueue are a reference event queue built on the standard
// library's container/heap — the implementation the engine used before the
// value-typed ring+4-ary-heap kernel. The property tests below drive both
// through identical schedules and require identical (when, seq) firing
// order, pinning the new kernel to the old semantics.
type refEvent struct {
	when Cycle
	seq  uint64
	fn   func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// refEngine is the minimal engine surface the property tests exercise.
type refEngine struct {
	now   Cycle
	seq   uint64
	queue refHeap
}

func (e *refEngine) Now() Cycle { return e.now }
func (e *refEngine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("ref: scheduling in the past")
	}
	e.seq++
	heap.Push(&e.queue, &refEvent{when: when, seq: e.seq, fn: fn})
}
func (e *refEngine) After(delta Cycle, fn func()) { e.At(e.now+delta, fn) }
func (e *refEngine) Pending() int                 { return len(e.queue) }
func (e *refEngine) step() {
	ev := heap.Pop(&e.queue).(*refEvent)
	if ev.when > e.now {
		e.now = ev.when
	}
	ev.fn()
}
func (e *refEngine) Run() Cycle {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}
func (e *refEngine) RunWhile(limit Cycle, cond func() bool) Cycle {
	for len(e.queue) > 0 && cond() && e.queue[0].when <= limit {
		e.step()
	}
	if cond() && len(e.queue) > 0 && e.queue[0].when > limit && e.now < limit {
		e.now = limit
	}
	return e.now
}

// scheduler abstracts Engine vs refEngine for the shared driver.
type scheduler interface {
	Now() Cycle
	At(Cycle, func())
	After(Cycle, func())
	Run() Cycle
	RunWhile(Cycle, func() bool) Cycle
	Pending() int
}

// firing is one observed event execution.
type firing struct {
	id  int
	now Cycle
}

// driveRandomSchedule runs one seeded random schedule on s and returns the
// firing log. Events chain: a fired event may schedule more events at
// random deltas — a mix of ring-range (0..50) and far-future (100..5000)
// distances — and execution alternates Run and RunWhile segments so the
// limit/cond paths are exercised too.
func driveRandomSchedule(s scheduler, seed int64) []firing {
	rng := rand.New(rand.NewSource(seed))
	var log []firing
	nextID := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		var delta Cycle
		if rng.Intn(4) == 0 {
			delta = Cycle(100 + rng.Intn(4900)) // far future: heap path
		} else {
			delta = Cycle(rng.Intn(51)) // near future: ring path
		}
		s.After(delta, func() {
			log = append(log, firing{id: id, now: s.Now()})
			if depth < 4 {
				for n := rng.Intn(3); n > 0; n-- {
					schedule(depth + 1)
				}
			}
		})
	}
	for i := 0; i < 40; i++ {
		schedule(0)
	}
	// Run in bounded segments first, then drain.
	budget := 10
	s.RunWhile(s.Now()+500, func() bool { budget--; return budget > 0 })
	s.RunWhile(s.Now()+2000, func() bool { return true })
	s.Run()
	return log
}

// TestEngineMatchesReferenceHeap: across seeded random schedules with
// interleaved At/After/RunWhile/Run, the ring+4-ary kernel fires events in
// exactly the (when, seq) order of a container/heap reference.
func TestEngineMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		got := driveRandomSchedule(NewEngine(), seed)
		want := driveRandomSchedule(&refEngine{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d = %+v, reference %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestEngineRingHeapTieBreak: a ring event and a heap event at the same
// cycle must fire in seq order regardless of which structure holds them.
func TestEngineRingHeapTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	// seq 1: far event at cycle 100 (heap).
	e.At(100, func() { order = append(order, 1) })
	// Advance near 100, then schedule a ring event also at 100 (seq 3).
	e.At(90, func() {
		e.At(100, func() { order = append(order, 3) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3] (heap event first: smaller seq)", order)
	}

	// Mirror case: ring event scheduled first must beat a later-seq heap
	// event at the same cycle.
	e2 := NewEngine()
	order = nil
	e2.At(40, func() {
		e2.At(50, func() { order = append(order, 1) }) // ring (delta 10)
		e2.At(1000, func() {})                         // park something far
	})
	e2.At(50, func() { order = append(order, 0) }) // ring at schedule time (delta 50)
	e2.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
}

// TestEngineBucketReuseAcrossWrap: events separated by exactly ringSpan
// cycles share a bucket index; the ring must keep them apart in time.
func TestEngineBucketReuseAcrossWrap(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	var chain func()
	chain = func() {
		fired = append(fired, e.Now())
		if len(fired) < 10 {
			e.After(ringSpan-1, chain) // always lands in the ring
		}
	}
	e.At(0, chain)
	e.Run()
	for i, c := range fired {
		if c != Cycle(i)*(ringSpan-1) {
			t.Fatalf("fired[%d] = %d, want %d", i, c, i*(ringSpan-1))
		}
	}
}

// TestEngineAtAllocFree: once the ring and heap have warmed up, At and
// After are allocation-free — the zero-alloc guarantee every hot path in
// the machine relies on.
func TestEngineAtAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up: populate every bucket and the heap beyond any size this
	// test reaches, then drain.
	for i := 0; i < 4096; i++ {
		e.After(Cycle(i%200), fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		// 32 near events (ring) and 8 far events (heap) per run.
		for i := 0; i < 32; i++ {
			e.After(Cycle(i%ringSpan), fn)
		}
		for i := 0; i < 8; i++ {
			e.At(e.Now()+Cycle(200+i), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("At/After allocated %.1f times per run in steady state, want 0", allocs)
	}
}

// TestEngineStepAllocFree: firing events does not allocate either.
func TestEngineStepAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Cycle(i%64), fn)
	}
	allocs := testing.AllocsPerRun(8, func() {
		for i := 0; i < 64; i++ {
			e.After(Cycle(i%64), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("step allocated %.1f times per run, want 0", allocs)
	}
}
