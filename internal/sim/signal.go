package sim

// Signal is a one-shot broadcast latch. Components that must wait for a
// condition (an epoch persisting, a flush completing) subscribe a callback;
// when the owner fires the signal every subscriber runs, in subscription
// order, at the firing cycle. Subscribing after the fire runs the callback
// immediately. The zero value is an unfired signal.
type Signal struct {
	fired bool
	subs  []func()
}

// Fired reports whether the signal has been raised.
func (s *Signal) Fired() bool { return s.fired }

// Subscribe registers fn to run when the signal fires. If the signal has
// already fired, fn runs synchronously.
func (s *Signal) Subscribe(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.subs = append(s.subs, fn)
}

// Fire raises the signal, running all subscribers in order. Firing twice is
// a no-op; the protocol layers treat signals as monotone facts.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	subs := s.subs
	s.subs = nil
	for _, fn := range subs {
		fn()
	}
}

// Barrier counts down from n and fires a callback when it reaches zero.
// It models ack-collection points such as the arbiter waiting for BankAck
// messages from every LLC bank.
type Barrier struct {
	remaining int
	done      func()
}

// NewBarrier returns a Barrier expecting n arrivals. If n <= 0 the callback
// fires immediately at construction.
func NewBarrier(n int, done func()) *Barrier {
	b := &Barrier{remaining: n, done: done}
	if n <= 0 {
		b.fire()
	}
	return b
}

// Arrive records one arrival; the callback fires on the last one.
func (b *Barrier) Arrive() {
	if b.remaining <= 0 {
		return
	}
	b.remaining--
	if b.remaining == 0 {
		b.fire()
	}
}

func (b *Barrier) fire() {
	if b.done != nil {
		d := b.done
		b.done = nil
		d()
	}
}
