package epoch

import (
	"fmt"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
)

// AdvanceReason records why a core moved from one epoch to the next.
type AdvanceReason uint8

const (
	// BarrierAdvance: a programmer-inserted persist barrier retired (BEP).
	BarrierAdvance AdvanceReason = iota
	// HardwareAdvance: the BSP bulk-mode persistence engine closed the
	// epoch after its store quota.
	HardwareAdvance
	// SplitAdvance: the deadlock-avoidance rule of Section 3.3 split an
	// ongoing epoch because another thread registered a dependence on it.
	SplitAdvance
	// DrainAdvance: end-of-run drain closed the final epoch.
	DrainAdvance
)

// String implements fmt.Stringer.
func (r AdvanceReason) String() string {
	switch r {
	case BarrierAdvance:
		return "barrier"
	case HardwareAdvance:
		return "hardware"
	case SplitAdvance:
		return "split"
	case DrainAdvance:
		return "drain"
	default:
		return fmt.Sprintf("AdvanceReason(%d)", uint8(r))
	}
}

// FlushCause records why an epoch's persist happened, classifying the
// paper's online-vs-offline persist distinction and Figure 12's
// conflicting-epoch percentage.
type FlushCause uint8

const (
	// CauseNone: not yet determined.
	CauseNone FlushCause = iota
	// CauseIntra: an intra-thread conflict demanded the flush (§3.2).
	CauseIntra
	// CauseInter: an inter-thread conflict demanded the flush (§3.1).
	CauseInter
	// CauseEviction: replacement of a dirty tagged line demanded that
	// its epoch's predecessors persist first.
	CauseEviction
	// CausePressure: the 8-epoch in-flight limit forced the flush.
	CausePressure
	// CauseProactive: PF flushed the epoch on completion (§3.2).
	CauseProactive
	// CauseEager: an unbuffered-EP barrier flushed the epoch
	// synchronously (rule E2).
	CauseEager
	// CauseDrain: end-of-run drain.
	CauseDrain
	// CauseNatural: every line left the caches by natural replacement;
	// the epoch persisted with no flush at all (the LB ideal).
	CauseNatural
)

// String implements fmt.Stringer.
func (c FlushCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseIntra:
		return "intra-conflict"
	case CauseInter:
		return "inter-conflict"
	case CauseEviction:
		return "eviction"
	case CausePressure:
		return "pressure"
	case CauseProactive:
		return "proactive"
	case CauseEager:
		return "eager"
	case CauseDrain:
		return "drain"
	case CauseNatural:
		return "natural"
	default:
		return fmt.Sprintf("FlushCause(%d)", uint8(c))
	}
}

// Conflicting reports whether the cause counts as an epoch conflict in the
// sense of Figure 12 (a memory request triggered the flush).
func (c FlushCause) Conflicting() bool {
	return c == CauseIntra || c == CauseInter || c == CauseEviction
}

// Dep is one IDT dependence register: a source epoch that must persist
// before the owning epoch may.
type Dep struct {
	Source     ID
	persisted  *sim.Signal
	subscribed bool
	demanded   bool
}

// Record is one in-flight epoch's hardware state.
type Record struct {
	ID    ID
	State State

	// Pending holds the lines written in this epoch whose newest value
	// has not yet reached NVRAM.
	Pending map[mem.Line]struct{}

	// Writes is the final version written to each line in this epoch.
	// Populated only when the table records history (recovery checking).
	Writes map[mem.Line]mem.Version

	// Deps are the IDT dependence registers (§4.2).
	Deps []Dep

	// OnlineEdges are inter-thread orderings that were enforced
	// synchronously (the LB path: the source epoch persisted before the
	// conflicting request completed). They need no registers or waits,
	// but the recovery checker uses them as happens-before edges.
	OnlineEdges []ID

	// LogPending counts outstanding undo-log writes for this epoch; the
	// epoch may not persist until they are durable (§5.2.1).
	LogPending int

	// AcksInFlight counts NVRAM writes of this epoch's lines that have
	// been issued but not yet acked. The arbiter uses it to distinguish
	// "waiting on acks" from "a line was re-dirtied mid-flush and needs
	// another flush pass".
	AcksInFlight int

	// Persisted fires when the epoch is durably complete.
	Persisted sim.Signal

	// Cause is why this epoch's flush was (first) demanded.
	Cause FlushCause
	// flushWanted marks that someone demanded this epoch be flushed.
	flushWanted bool
	// FlushCompleted marks that the flush handshake finished; any lines
	// still pending are stragglers (naturally evicted lines whose NVRAM
	// acks are in flight) and the arbiter waits for them instead of
	// starting a second flush.
	FlushCompleted bool

	// ConflictDemanded records that at least one memory request
	// conflicted with this epoch before it persisted — Figure 12's
	// "conflicting epoch" notion. It is set whether the conflict was
	// resolved online (LB) or via a dependence register (IDT): the paper
	// counts both ("IDT does not directly impact the percentage of
	// conflicting epochs", §7.1).
	ConflictDemanded bool

	// AdvReason records how the epoch was closed.
	AdvReason AdvanceReason

	CompletedAt sim.Cycle
	PersistedAt sim.Cycle
	StoreCount  uint64
}

// DepsPersisted reports whether every IDT source has persisted. A line of
// this epoch may reach NVRAM only when this holds (and the program-order
// predecessor has persisted).
func (r *Record) DepsPersisted() bool {
	for i := range r.Deps {
		if !r.Deps[i].persisted.Fired() {
			return false
		}
	}
	return true
}

// AddPending registers a line write in this epoch. It returns true when
// the line was not already pending (the first write to it in this epoch).
func (r *Record) AddPending(line mem.Line) bool {
	if _, ok := r.Pending[line]; ok {
		return false
	}
	r.Pending[line] = struct{}{}
	return true
}

// Config sizes the per-core epoch hardware.
type Config struct {
	// MaxInFlight bounds unpersisted epochs per core (paper: 8).
	MaxInFlight int
	// DepRegs bounds IDT dependence registers per epoch (paper: 4).
	DepRegs int
	// RecordHistory retains per-epoch write sets and a summary of every
	// closed epoch for the recovery checker. Benchmarks leave it off.
	RecordHistory bool
	// Probe receives epoch-lifecycle events (open, complete, flush
	// start, persist, split). Nil disables instrumentation.
	Probe *obs.Probe
}

// DefaultConfig matches Section 4.3's hardware sizing.
func DefaultConfig() Config { return Config{MaxInFlight: 8, DepRegs: 4} }

// Summary is the retained history of a closed epoch (recovery checking).
type Summary struct {
	ID          ID
	Writes      map[mem.Line]mem.Version
	Deps        []ID
	AdvReason   AdvanceReason
	Cause       FlushCause
	CompletedAt sim.Cycle
	PersistedAt sim.Cycle
	// PersistedFlag is set when the epoch fully persisted before the
	// crash/end of simulation.
	PersistedFlag bool
}

// Stats counts epoch-table activity for one core.
type Stats struct {
	EpochsOpened    uint64
	EpochsPersisted uint64
	// ConflictingEpochs counts persisted epochs that were the target of
	// at least one conflict (Figure 12).
	ConflictingEpochs uint64
	ByAdvance         [DrainAdvance + 1]uint64
	ByCause           [CauseNatural + 1]uint64
	DepsRecorded      uint64
	DepRegFull        uint64
	Splits            uint64
}

// Table is one core's epoch-tracking hardware: the window of unpersisted
// epochs, the epoch ID counter, and the IDT registers.
type Table struct {
	Core int
	cfg  Config

	nextNum uint64
	window  []*Record // unpersisted epochs, oldest first; last is current

	history []*Summary
	stats   Stats
}

// NewTable returns a table with epoch 0 open.
func NewTable(core int, cfg Config) (*Table, error) {
	if cfg.MaxInFlight < 2 {
		return nil, fmt.Errorf("epoch: MaxInFlight must be at least 2, got %d", cfg.MaxInFlight)
	}
	if cfg.DepRegs < 0 {
		return nil, fmt.Errorf("epoch: DepRegs must be non-negative, got %d", cfg.DepRegs)
	}
	t := &Table{Core: core, cfg: cfg}
	t.open(0)
	return t, nil
}

func (t *Table) open(now sim.Cycle) *Record {
	r := &Record{
		ID:      ID{Core: t.Core, Num: t.nextNum},
		State:   Open,
		Pending: make(map[mem.Line]struct{}),
		Cause:   CauseNone,
	}
	if t.cfg.RecordHistory {
		r.Writes = make(map[mem.Line]mem.Version)
	}
	t.nextNum++
	t.window = append(t.window, r)
	t.stats.EpochsOpened++
	t.cfg.Probe.EpochOpen(now, t.Core, r.ID.Num)
	return r
}

// Current returns the open epoch the core is executing in.
func (t *Table) Current() *Record {
	return t.window[len(t.window)-1]
}

// Oldest returns the oldest unpersisted epoch, or nil if all persisted.
func (t *Table) Oldest() *Record {
	if len(t.window) == 0 {
		return nil
	}
	return t.window[0]
}

// InFlight reports the number of unpersisted epochs (including current).
func (t *Table) InFlight() int { return len(t.window) }

// CanAdvance reports whether a new epoch may open without exceeding the
// in-flight limit.
func (t *Table) CanAdvance() bool { return len(t.window) < t.cfg.MaxInFlight }

// Advance completes the current epoch and opens the next. The caller must
// have checked CanAdvance; violating the in-flight limit panics, modelling
// a hardware structural hazard that the machine layer must stall on.
func (t *Table) Advance(now sim.Cycle, why AdvanceReason) *Record {
	if !t.CanAdvance() {
		panic(fmt.Sprintf("epoch: core %d advancing past in-flight limit %d", t.Core, t.cfg.MaxInFlight))
	}
	cur := t.Current()
	if cur.State != Open {
		panic(fmt.Sprintf("epoch: advancing %v in state %v", cur.ID, cur.State))
	}
	cur.State = Completed
	cur.CompletedAt = now
	cur.AdvReason = why
	t.stats.ByAdvance[why]++
	if why == SplitAdvance {
		t.stats.Splits++
		t.cfg.Probe.EpochSplit(now, t.Core, cur.ID.Num)
	}
	t.cfg.Probe.EpochComplete(now, t.Core, cur.ID.Num, why.String(), cur.StoreCount)
	return t.open(now)
}

// Lookup finds the unpersisted epoch numbered num, or nil (persisted or
// never existed).
func (t *Table) Lookup(num uint64) *Record {
	for _, r := range t.window {
		if r.ID.Num == num {
			return r
		}
	}
	return nil
}

// IsPersisted reports whether epoch num has fully persisted.
func (t *Table) IsPersisted(num uint64) bool {
	if num >= t.nextNum {
		return false
	}
	return t.Lookup(num) == nil
}

// AddDependence records an IDT dependence: the dependent epoch (which must
// belong to this table) may not persist until source does. It returns
// false when the dependence registers are full — the caller must then fall
// back to an online flush, as the real hardware would.
func (t *Table) AddDependence(dependent *Record, source ID, sourcePersisted *sim.Signal) bool {
	for i := range dependent.Deps {
		if dependent.Deps[i].Source == source {
			return true // already tracked
		}
	}
	if len(dependent.Deps) >= t.cfg.DepRegs {
		t.stats.DepRegFull++
		return false
	}
	dependent.Deps = append(dependent.Deps, Dep{Source: source, persisted: sourcePersisted})
	t.stats.DepsRecorded++
	return true
}

// markPersisted transitions the oldest epoch to Persisted and pops it.
func (t *Table) markPersisted(r *Record, now sim.Cycle) {
	if len(t.window) == 0 || t.window[0] != r {
		panic(fmt.Sprintf("epoch: persisting %v out of order", r.ID))
	}
	r.State = Persisted
	r.PersistedAt = now
	cause := r.Cause
	if !r.flushWanted {
		cause = CauseNatural
	}
	t.stats.ByCause[cause]++
	t.stats.EpochsPersisted++
	// Figure 12's notion: the epoch either was the target of a conflict
	// (even if IDT resolved it offline) or was flushed as part of a
	// conflict-demanded chain.
	if r.ConflictDemanded || cause.Conflicting() {
		t.stats.ConflictingEpochs++
	}
	t.cfg.Probe.EpochPersist(now, t.Core, r.ID.Num, cause.String())
	if t.cfg.RecordHistory {
		t.history = append(t.history, &Summary{
			ID:            r.ID,
			Writes:        r.Writes,
			Deps:          r.allEdges(),
			AdvReason:     r.AdvReason,
			Cause:         cause,
			CompletedAt:   r.CompletedAt,
			PersistedAt:   now,
			PersistedFlag: true,
		})
	}
	t.window = t.window[1:]
	r.Persisted.Fire()
}

// History returns summaries of persisted epochs plus, at crash time, the
// still-unpersisted window (PersistedFlag false) so the recovery checker
// sees every epoch.
func (t *Table) History() []*Summary {
	if !t.cfg.RecordHistory {
		return nil
	}
	out := make([]*Summary, len(t.history), len(t.history)+len(t.window))
	copy(out, t.history)
	for _, r := range t.window {
		out = append(out, &Summary{
			ID:          r.ID,
			Writes:      r.Writes,
			Deps:        r.allEdges(),
			AdvReason:   r.AdvReason,
			Cause:       r.Cause,
			CompletedAt: r.CompletedAt,
		})
	}
	return out
}

// allEdges merges IDT register sources and online-enforced orderings into
// one happens-before edge list for the recovery checker.
func (r *Record) allEdges() []ID {
	edges := make([]ID, 0, len(r.Deps)+len(r.OnlineEdges))
	for i := range r.Deps {
		edges = append(edges, r.Deps[i].Source)
	}
	edges = append(edges, r.OnlineEdges...)
	return edges
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats { return t.stats }
