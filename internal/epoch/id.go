// Package epoch implements the epoch-tracking hardware of the paper:
// epoch identities, the per-core table of in-flight epochs, the IDT
// (Inter-thread Dependence Tracking) dependence/inform registers, the
// per-core epoch arbiter that orchestrates the multi-bank flush handshake,
// and the deadlock-avoidance epoch-splitting rule of Section 3.3.
package epoch

import "fmt"

// ID identifies one epoch: the core that created it and the core-local
// epoch number. The paper stores this as CoreID+EpochID fields in cache
// tags (Section 4.3); epoch numbers there wrap at 8 in-flight epochs, but
// the simulator uses full-width numbers and enforces the in-flight limit
// structurally in the Table.
type ID struct {
	Core int
	Num  uint64
}

// None is the zero tag carried by lines that belong to no unpersisted
// epoch (clean lines, or dirty lines whose epoch already persisted).
var None = ID{Core: -1}

// Valid reports whether the ID names a real epoch.
func (id ID) Valid() bool { return id.Core >= 0 }

// String implements fmt.Stringer.
func (id ID) String() string {
	if !id.Valid() {
		return "epoch(none)"
	}
	return fmt.Sprintf("E%d.%d", id.Core, id.Num)
}

// Before reports whether id precedes other in the same core's program
// order. IDs from different cores are never program-ordered.
func (id ID) Before(other ID) bool {
	return id.Valid() && other.Valid() && id.Core == other.Core && id.Num < other.Num
}

// State is an epoch's lifecycle position.
type State uint8

const (
	// Open: the epoch is still executing; its persist barrier has not
	// retired ("ongoing" in the paper's terms).
	Open State = iota
	// Completed: the barrier retired; the epoch's line set is final.
	Completed
	// Flushing: the arbiter is driving this epoch's flush handshake.
	Flushing
	// Persisted: every line (and log entry) reached NVRAM and the
	// PersistCMP broadcast retired.
	Persisted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case Completed:
		return "completed"
	case Flushing:
		return "flushing"
	case Persisted:
		return "persisted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}
