package epoch

import (
	"fmt"

	"persistbarriers/internal/sim"
)

// FlushDriver is the machine-layer mechanism that durably drains one
// epoch's pending lines: L1 writebacks, the FlushEpoch broadcast to the
// LLC banks, per-line NVRAM writes, and the BankAck/PersistCMP handshake
// (Section 4.1). done must fire when rec.Pending is empty and durable.
type FlushDriver interface {
	FlushEpoch(rec *Record, done func())
}

// ArbiterStats counts flush-coordination activity for one core.
type ArbiterStats struct {
	FlushesDriven   uint64
	NaturalPersists uint64
	Demands         uint64
}

// DemandSourceFunc forwards a flush demand to another core's arbiter: the
// inform/dependence register handshake of §4.2 in the demand direction.
type DemandSourceFunc func(source ID, cause FlushCause)

// Arbiter is the per-core epoch arbiter of Section 4.1: it serializes
// epoch flushes for its core (one at a time), enforces program-order and
// IDT persist ordering, and retires epochs as they become durable.
type Arbiter struct {
	eng    *sim.Engine
	table  *Table
	driver FlushDriver

	// demandSource lets a demanded flush pull its IDT sources along;
	// without it a dependent epoch could wait forever on a source nobody
	// else ever flushes.
	demandSource DemandSourceFunc

	flushing bool
	stats    ArbiterStats
}

// SetDemandSource installs the cross-core demand forwarder.
func (a *Arbiter) SetDemandSource(fn DemandSourceFunc) { a.demandSource = fn }

// NewArbiter wires an arbiter to its core's table and flush driver.
func NewArbiter(eng *sim.Engine, table *Table, driver FlushDriver) (*Arbiter, error) {
	if eng == nil || table == nil || driver == nil {
		return nil, fmt.Errorf("epoch: arbiter requires engine, table and driver")
	}
	return &Arbiter{eng: eng, table: table, driver: driver}, nil
}

// Table returns the arbiter's epoch table.
func (a *Arbiter) Table() *Table { return a.table }

// DemandThrough requests that every epoch up to and including num be
// flushed (a conflict, eviction, or pressure demand). The first demand on
// an epoch fixes its recorded cause. The caller should then wait on the
// target epoch's Persisted signal.
func (a *Arbiter) DemandThrough(num uint64, cause FlushCause) {
	a.stats.Demands++
	for _, r := range a.table.window {
		if r.ID.Num > num {
			break
		}
		if !r.flushWanted {
			r.flushWanted = true
			r.Cause = cause
		}
	}
	a.Kick()
}

// RequestProactive marks epoch num for proactive flushing (PF, §3.2): the
// flush engine will drain it as soon as ordering permits, but the request
// does not override a conflict cause already recorded.
func (a *Arbiter) RequestProactive(num uint64) {
	r := a.table.Lookup(num)
	if r == nil {
		return
	}
	if !r.flushWanted {
		r.flushWanted = true
		r.Cause = CauseProactive
	}
	a.Kick()
}

// Kick re-evaluates the oldest unpersisted epoch. The machine layer calls
// it whenever something that could unblock progress happens: a barrier
// retires, a pending line drains naturally, a log write completes, or a
// dependence source persists.
func (a *Arbiter) Kick() {
	for {
		if a.flushing {
			return
		}
		head := a.table.Oldest()
		if head == nil {
			return
		}
		if head.State == Open {
			// Cannot persist or flush an ongoing epoch; the barrier
			// (or a deadlock-avoidance split) must close it first.
			return
		}
		if !a.subscribeDeps(head) {
			// Waiting on an IDT source to persist. If our flush has been
			// demanded, the demand must pull the sources along, or a
			// source nobody flushes would stall us forever.
			if head.flushWanted && a.demandSource != nil {
				for i := range head.Deps {
					d := &head.Deps[i]
					if !d.persisted.Fired() && !d.demanded {
						d.demanded = true
						a.demandSource(d.Source, head.Cause)
					}
				}
			}
			return
		}
		if head.LogPending > 0 {
			return // undo-log writes still in flight (§5.2.1)
		}
		if len(head.Pending) == 0 {
			// Fully drained (naturally or by a completed flush).
			if !head.flushWanted {
				a.stats.NaturalPersists++
			}
			a.table.markPersisted(head, a.eng.Now())
			continue
		}
		if head.FlushCompleted {
			if len(head.Pending) > 0 && head.AcksInFlight == 0 {
				// Not waiting on any ack: a line was re-dirtied by a
				// same-epoch store while its old version's ack was in
				// flight. Re-arm and flush the epoch again.
				head.FlushCompleted = false
				continue
			}
			// Waiting on straggler acks; the ack path re-kicks.
			return
		}
		if !head.flushWanted {
			return // buffered: wait for natural drain or a demand
		}
		a.flushing = true
		head.State = Flushing
		a.stats.FlushesDriven++
		a.table.cfg.Probe.EpochFlushStart(a.eng.Now(), head.ID.Core, head.ID.Num, head.Cause.String())
		a.driver.FlushEpoch(head, func() {
			a.flushing = false
			head.FlushCompleted = true
			a.Kick()
		})
		return
	}
}

// subscribeDeps returns true when all IDT sources have persisted; for each
// unpersisted source it arranges a one-time Kick on that source's persist.
func (a *Arbiter) subscribeDeps(r *Record) bool {
	ready := true
	for i := range r.Deps {
		d := &r.Deps[i]
		if d.persisted.Fired() {
			continue
		}
		ready = false
		if !d.subscribed {
			d.subscribed = true
			d.persisted.Subscribe(a.Kick)
		}
	}
	return ready
}

// Stats returns a snapshot of the arbiter's counters.
func (a *Arbiter) Stats() ArbiterStats { return a.stats }
