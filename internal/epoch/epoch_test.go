package epoch

import (
	"testing"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

func TestIDBasics(t *testing.T) {
	if None.Valid() {
		t.Error("None reported valid")
	}
	a := ID{Core: 1, Num: 3}
	b := ID{Core: 1, Num: 5}
	c := ID{Core: 2, Num: 4}
	if !a.Valid() || !a.Before(b) || b.Before(a) {
		t.Error("program-order comparison wrong")
	}
	if a.Before(c) || c.Before(a) {
		t.Error("cross-core IDs must not be program-ordered")
	}
	if a.String() != "E1.3" {
		t.Errorf("String = %q", a.String())
	}
	if None.String() != "epoch(none)" {
		t.Errorf("None.String = %q", None.String())
	}
}

func TestStateAndCauseStrings(t *testing.T) {
	for s, want := range map[State]string{Open: "open", Completed: "completed", Flushing: "flushing", Persisted: "persisted"} {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(s), s.String(), want)
		}
	}
	if !CauseIntra.Conflicting() || !CauseInter.Conflicting() || !CauseEviction.Conflicting() {
		t.Error("conflict causes not conflicting")
	}
	if CauseProactive.Conflicting() || CauseNatural.Conflicting() || CauseDrain.Conflicting() || CausePressure.Conflicting() {
		t.Error("non-conflict causes reported conflicting")
	}
}

func newTable(t *testing.T, cfg Config) *Table {
	t.Helper()
	tbl, err := NewTable(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(0, Config{MaxInFlight: 1, DepRegs: 4}); err == nil {
		t.Error("MaxInFlight=1 accepted")
	}
	if _, err := NewTable(0, Config{MaxInFlight: 8, DepRegs: -1}); err == nil {
		t.Error("negative DepRegs accepted")
	}
}

func TestTableAdvanceNumbersEpochs(t *testing.T) {
	tbl := newTable(t, DefaultConfig())
	if cur := tbl.Current(); cur.ID.Num != 0 || cur.State != Open {
		t.Fatalf("initial epoch = %+v", cur)
	}
	next := tbl.Advance(10, BarrierAdvance)
	if next.ID.Num != 1 {
		t.Fatalf("next epoch num = %d, want 1", next.ID.Num)
	}
	old := tbl.Lookup(0)
	if old == nil || old.State != Completed || old.CompletedAt != 10 {
		t.Fatalf("old epoch = %+v", old)
	}
	if tbl.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", tbl.InFlight())
	}
}

func TestTableInFlightLimit(t *testing.T) {
	tbl := newTable(t, Config{MaxInFlight: 3, DepRegs: 4})
	tbl.Advance(0, BarrierAdvance)
	tbl.Advance(0, BarrierAdvance)
	if tbl.CanAdvance() {
		t.Fatal("CanAdvance true at limit")
	}
	defer func() {
		if recover() == nil {
			t.Error("advance past limit did not panic")
		}
	}()
	tbl.Advance(0, BarrierAdvance)
}

func TestTableIsPersisted(t *testing.T) {
	tbl := newTable(t, DefaultConfig())
	tbl.Advance(0, BarrierAdvance)
	if tbl.IsPersisted(0) {
		t.Fatal("unflushed epoch reported persisted")
	}
	if tbl.IsPersisted(99) {
		t.Fatal("future epoch reported persisted")
	}
	tbl.markPersisted(tbl.Oldest(), 5)
	if !tbl.IsPersisted(0) {
		t.Fatal("popped epoch not reported persisted")
	}
}

func TestAddDependenceRegisterLimit(t *testing.T) {
	tbl := newTable(t, Config{MaxInFlight: 8, DepRegs: 2})
	cur := tbl.Current()
	sigs := make([]*sim.Signal, 3)
	for i := range sigs {
		sigs[i] = &sim.Signal{}
	}
	if !tbl.AddDependence(cur, ID{Core: 1, Num: 0}, sigs[0]) {
		t.Fatal("first dep rejected")
	}
	// Duplicate source: accepted without consuming a register.
	if !tbl.AddDependence(cur, ID{Core: 1, Num: 0}, sigs[0]) {
		t.Fatal("duplicate dep rejected")
	}
	if !tbl.AddDependence(cur, ID{Core: 2, Num: 0}, sigs[1]) {
		t.Fatal("second dep rejected")
	}
	if tbl.AddDependence(cur, ID{Core: 3, Num: 0}, sigs[2]) {
		t.Fatal("third dep accepted past register limit")
	}
	s := tbl.Stats()
	if s.DepsRecorded != 2 || s.DepRegFull != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// fakeDriver drains all pending lines after a fixed delay.
type fakeDriver struct {
	eng     *sim.Engine
	delay   sim.Cycle
	flushes []ID
}

func (d *fakeDriver) FlushEpoch(rec *Record, done func()) {
	d.flushes = append(d.flushes, rec.ID)
	d.eng.After(d.delay, func() {
		for l := range rec.Pending {
			delete(rec.Pending, l)
		}
		done()
	})
}

func harness(t *testing.T, cfg Config) (*sim.Engine, *Table, *Arbiter, *fakeDriver) {
	t.Helper()
	eng := sim.NewEngine()
	tbl := newTable(t, cfg)
	drv := &fakeDriver{eng: eng, delay: 100}
	arb, err := NewArbiter(eng, tbl, drv)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tbl, arb, drv
}

func TestArbiterValidation(t *testing.T) {
	eng := sim.NewEngine()
	tbl := newTable(t, DefaultConfig())
	if _, err := NewArbiter(nil, tbl, &fakeDriver{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewArbiter(eng, nil, &fakeDriver{}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewArbiter(eng, tbl, nil); err == nil {
		t.Error("nil driver accepted")
	}
}

func TestArbiterDemandFlushesInOrder(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	// Epoch 0 writes a line, completes; epoch 1 writes a line, completes.
	tbl.Current().AddPending(10)
	tbl.Advance(0, BarrierAdvance)
	tbl.Current().AddPending(20)
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(1, CauseIntra)
	eng.Run()
	if len(drv.flushes) != 2 || drv.flushes[0].Num != 0 || drv.flushes[1].Num != 1 {
		t.Fatalf("flush order = %v", drv.flushes)
	}
	if !tbl.IsPersisted(0) || !tbl.IsPersisted(1) {
		t.Fatal("epochs not persisted after demanded flush")
	}
}

func TestArbiterDoesNotFlushOngoingEpoch(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	tbl.Current().AddPending(10)
	arb.DemandThrough(0, CauseInter) // demand on the ongoing epoch
	eng.Run()
	if len(drv.flushes) != 0 {
		t.Fatal("arbiter flushed an ongoing epoch")
	}
	// Once the barrier closes it, the demand proceeds.
	tbl.Advance(0, BarrierAdvance)
	arb.Kick()
	eng.Run()
	if len(drv.flushes) != 1 {
		t.Fatal("demand did not proceed after the epoch completed")
	}
}

func TestArbiterNaturalDrainPersistsWithoutFlush(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(10)
	tbl.Advance(0, BarrierAdvance)
	// Natural eviction writes the line to NVRAM.
	delete(cur.Pending, 10)
	arb.Kick()
	eng.Run()
	if len(drv.flushes) != 0 {
		t.Fatal("natural drain triggered a driver flush")
	}
	if !tbl.IsPersisted(0) {
		t.Fatal("drained epoch did not persist")
	}
	if arb.Stats().NaturalPersists != 1 {
		t.Fatalf("NaturalPersists = %d, want 1", arb.Stats().NaturalPersists)
	}
	if tbl.Stats().ByCause[CauseNatural] != 1 {
		t.Fatal("cause not recorded as natural")
	}
}

func TestArbiterWaitsForIDTSource(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(10)
	src := &sim.Signal{}
	if !tbl.AddDependence(cur, ID{Core: 1, Num: 7}, src) {
		t.Fatal("dep rejected")
	}
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(0, CauseInter)
	eng.Run()
	if len(drv.flushes) != 0 {
		t.Fatal("flushed before IDT source persisted")
	}
	src.Fire() // source epoch persists -> subscription kicks the arbiter
	eng.Run()
	if len(drv.flushes) != 1 || !tbl.IsPersisted(0) {
		t.Fatal("flush did not proceed after source persisted")
	}
}

func TestArbiterWaitsForLogWrites(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(10)
	cur.LogPending = 1
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(0, CauseIntra)
	eng.Run()
	if len(drv.flushes) != 0 {
		t.Fatal("flushed before undo-log writes were durable")
	}
	cur.LogPending = 0
	arb.Kick()
	eng.Run()
	if len(drv.flushes) != 1 {
		t.Fatal("flush did not proceed after log writes completed")
	}
}

func TestArbiterProactiveFlush(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(10)
	tbl.Advance(0, BarrierAdvance)
	arb.RequestProactive(0)
	eng.Run()
	if len(drv.flushes) != 1 {
		t.Fatal("proactive request did not flush")
	}
	if tbl.Stats().ByCause[CauseProactive] != 1 {
		t.Fatal("cause not proactive")
	}
}

func TestProactiveDoesNotOverrideConflictCause(t *testing.T) {
	eng, tbl, arb, _ := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(10)
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(0, CauseIntra)
	arb.RequestProactive(0)
	eng.Run()
	if tbl.Stats().ByCause[CauseIntra] != 1 {
		t.Fatalf("cause stats = %+v, want intra recorded", tbl.Stats().ByCause)
	}
}

func TestArbiterSerializesFlushes(t *testing.T) {
	eng, tbl, arb, drv := harness(t, DefaultConfig())
	for i := 0; i < 3; i++ {
		tbl.Current().AddPending(mem.Line(10 * (i + 1)))
		tbl.Advance(0, BarrierAdvance)
	}
	arb.DemandThrough(2, CausePressure)
	// After the first event batch only one flush may be in flight.
	eng.RunUntil(50)
	if len(drv.flushes) != 1 {
		t.Fatalf("flushes in flight after demand = %d, want 1", len(drv.flushes))
	}
	eng.Run()
	if len(drv.flushes) != 3 {
		t.Fatalf("total flushes = %d, want 3", len(drv.flushes))
	}
	// Strictly ordered persists.
	if eng.Now() < 300 {
		t.Fatalf("three serialized 100-cycle flushes finished at %d, want >= 300", eng.Now())
	}
}

func TestHistoryRecordsWritesAndDeps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordHistory = true
	eng, tbl, arb, _ := harness(t, cfg)
	cur := tbl.Current()
	cur.AddPending(10)
	cur.Writes[10] = 42
	src := &sim.Signal{}
	src.Fire()
	tbl.AddDependence(cur, ID{Core: 3, Num: 1}, src)
	tbl.Advance(0, BarrierAdvance)
	tbl.Current().AddPending(11) // unpersisted at "crash"
	arb.DemandThrough(0, CauseInter)
	eng.Run()

	hist := tbl.History()
	if len(hist) != 2 { // persisted epoch 0 + the open, unpersisted epoch 1
		t.Fatalf("history length = %d, want 2: %+v", len(hist), hist)
	}
	if hist[0].ID.Num != 0 || !hist[0].PersistedFlag || hist[0].Writes[10] != 42 {
		t.Fatalf("persisted summary = %+v", hist[0])
	}
	if len(hist[0].Deps) != 1 || hist[0].Deps[0] != (ID{Core: 3, Num: 1}) {
		t.Fatalf("deps = %v", hist[0].Deps)
	}
	if hist[1].PersistedFlag {
		t.Fatal("unpersisted epoch flagged persisted")
	}
}

func TestHistoryDisabledReturnsNil(t *testing.T) {
	tbl := newTable(t, DefaultConfig())
	if tbl.History() != nil {
		t.Fatal("history returned without RecordHistory")
	}
}

func TestMarkPersistedOutOfOrderPanics(t *testing.T) {
	tbl := newTable(t, DefaultConfig())
	tbl.Advance(0, BarrierAdvance)
	cur := tbl.Current()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order persist did not panic")
		}
	}()
	tbl.markPersisted(cur, 0)
}

func TestAddPendingReportsFirstWrite(t *testing.T) {
	tbl := newTable(t, DefaultConfig())
	cur := tbl.Current()
	if !cur.AddPending(5) {
		t.Fatal("first write not reported")
	}
	if cur.AddPending(5) {
		t.Fatal("second write reported as first")
	}
}

func TestDemandPropagatesToIDTSources(t *testing.T) {
	// Two tables: the dependent epoch's demanded flush must forward a
	// demand to its source core's arbiter instead of waiting forever.
	eng := sim.NewEngine()
	srcTbl, err := NewTable(1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srcDrv := &fakeDriver{eng: eng, delay: 50}
	srcArb, err := NewArbiter(eng, srcTbl, srcDrv)
	if err != nil {
		t.Fatal(err)
	}
	depTbl, err := NewTable(0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	depDrv := &fakeDriver{eng: eng, delay: 50}
	depArb, err := NewArbiter(eng, depTbl, depDrv)
	if err != nil {
		t.Fatal(err)
	}
	depArb.SetDemandSource(func(src ID, cause FlushCause) {
		if src.Core != 1 {
			t.Fatalf("demand forwarded to %v", src)
		}
		srcArb.DemandThrough(src.Num, cause)
	})

	// Source epoch 0 has a pending line and completes, but nobody
	// demands it directly.
	srcRec := srcTbl.Current()
	srcRec.AddPending(100)
	srcTbl.Advance(0, BarrierAdvance)

	// Dependent epoch 0 depends on it and is demanded.
	depRec := depTbl.Current()
	depRec.AddPending(200)
	if !depTbl.AddDependence(depRec, srcRec.ID, &srcRec.Persisted) {
		t.Fatal("dep rejected")
	}
	depTbl.Advance(0, BarrierAdvance)
	depArb.DemandThrough(0, CauseIntra)
	eng.Run()
	if !srcTbl.IsPersisted(0) {
		t.Fatal("source epoch never flushed (demand not propagated)")
	}
	if !depTbl.IsPersisted(0) {
		t.Fatal("dependent epoch never persisted")
	}
	if len(srcDrv.flushes) != 1 || len(depDrv.flushes) != 1 {
		t.Fatalf("flushes = %d/%d, want 1/1", len(srcDrv.flushes), len(depDrv.flushes))
	}
}

func TestArbiterReArmsAfterStragglerRedirty(t *testing.T) {
	// A flush completes while one pending line remains with no ack in
	// flight (it was re-dirtied); the arbiter must re-arm and flush again.
	eng := sim.NewEngine()
	tbl := newTable(t, DefaultConfig())
	passes := 0
	var arb *Arbiter
	drv := driverFunc(func(rec *Record, done func()) {
		passes++
		eng.After(20, func() {
			if passes == 1 {
				// First pass drains nothing (line re-dirtied elsewhere).
				done()
				return
			}
			for l := range rec.Pending {
				delete(rec.Pending, l)
			}
			done()
		})
	})
	arb, err := NewArbiter(eng, tbl, drv)
	if err != nil {
		t.Fatal(err)
	}
	cur := tbl.Current()
	cur.AddPending(7)
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(0, CauseIntra)
	eng.Run()
	if passes != 2 {
		t.Fatalf("flush passes = %d, want 2 (re-arm)", passes)
	}
	if !tbl.IsPersisted(0) {
		t.Fatal("epoch not persisted after re-armed flush")
	}
}

func TestConflictDemandedCountsInStats(t *testing.T) {
	eng, tbl, arb, _ := harness(t, DefaultConfig())
	cur := tbl.Current()
	cur.AddPending(1)
	cur.ConflictDemanded = true
	tbl.Advance(0, BarrierAdvance)
	arb.DemandThrough(0, CauseProactive) // non-conflicting cause
	eng.Run()
	if tbl.Stats().ConflictingEpochs != 1 {
		t.Fatalf("ConflictingEpochs = %d, want 1 (ConflictDemanded set)", tbl.Stats().ConflictingEpochs)
	}
}

// driverFunc adapts a function to the FlushDriver interface.
type driverFunc func(rec *Record, done func())

func (f driverFunc) FlushEpoch(rec *Record, done func()) { f(rec, done) }
