package cache

import (
	"testing"
	"testing/quick"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
)

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Sets: 2, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func e(core int, num uint64) epoch.ID { return epoch.ID{Core: core, Num: num} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sets: 0, Ways: 4}); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := small(t)
	if _, ok := c.Lookup(4); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(4, false, epoch.None, 0)
	ent, ok := c.Lookup(4)
	if !ok || ent.Line != 4 || ent.Dirty {
		t.Fatalf("lookup after insert: %+v ok=%v", ent, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetIndexingSeparatesSets(t *testing.T) {
	c := small(t) // 2 sets: even lines -> set 0, odd -> set 1
	c.Insert(0, false, epoch.None, 0)
	c.Insert(2, false, epoch.None, 0)
	// Set 0 is now full; inserting line 4 must evict, but line 1 (set 1)
	// must not.
	if _, evicted := c.Insert(1, false, epoch.None, 0); evicted {
		t.Fatal("insert into empty set evicted")
	}
	if _, evicted := c.Insert(4, false, epoch.None, 0); !evicted {
		t.Fatal("insert into full set did not evict")
	}
}

func TestIndexShift(t *testing.T) {
	c := MustNew(Config{Name: "b", Sets: 2, Ways: 1, IndexShift: 2})
	// With shift 2: lines 0..3 -> set 0, lines 4..7 -> set 1.
	c.Insert(0, false, epoch.None, 0)
	if _, evicted := c.Insert(4, false, epoch.None, 0); evicted {
		t.Fatal("lines 0 and 4 collided despite index shift")
	}
	if _, evicted := c.Insert(2, false, epoch.None, 0); !evicted {
		t.Fatal("lines 0 and 2 did not collide with shift 2")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t)
	c.Insert(0, false, epoch.None, 0) // set 0
	c.Insert(2, false, epoch.None, 0) // set 0
	c.Lookup(0)                       // make line 0 most recent
	ev, evicted := c.Insert(4, false, epoch.None, 0)
	if !evicted || ev.Line != 2 {
		t.Fatalf("evicted %+v (evicted=%v), want line 2", ev, evicted)
	}
}

func TestVictimPreviewMatchesInsert(t *testing.T) {
	c := small(t)
	c.Insert(0, true, e(1, 5), 10)
	c.Insert(2, false, epoch.None, 0)
	v, full := c.Victim(4)
	if !full {
		t.Fatal("full set reported free")
	}
	ev, evicted := c.Insert(4, false, epoch.None, 0)
	if !evicted || ev != v {
		t.Fatalf("Insert evicted %+v, Victim previewed %+v", ev, v)
	}
}

func TestVictimPrefersCleanOverDirtyTagged(t *testing.T) {
	c := small(t)
	c.Insert(0, true, e(1, 1), 1) // dirty, tagged, older LRU
	c.Insert(2, false, epoch.None, 0)
	v, full := c.Victim(4)
	if !full || v.Line != 2 {
		t.Fatalf("victim = %+v, want clean line 2 despite LRU", v)
	}
}

func TestVictimPrefersUntaggedDirtyOverTagged(t *testing.T) {
	c := small(t)
	c.Insert(0, true, e(1, 1), 1)    // dirty tagged (unpersisted epoch)
	c.Insert(2, true, epoch.None, 2) // dirty untagged (epoch persisted)
	v, full := c.Victim(4)
	if !full || v.Line != 2 {
		t.Fatalf("victim = %+v, want untagged dirty line 2", v)
	}
}

func TestVictimReportsFreeWay(t *testing.T) {
	c := small(t)
	c.Insert(0, false, epoch.None, 0)
	if _, full := c.Victim(2); full {
		t.Fatal("set with a free way reported full")
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	c := small(t)
	c.Insert(4, false, epoch.None, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	c.Insert(4, false, epoch.None, 0)
}

func TestWriteTagsAndBookkeeps(t *testing.T) {
	c := small(t)
	c.Insert(4, false, epoch.None, 0)
	prev := c.Write(4, e(2, 7), 33)
	if prev.Dirty {
		t.Fatal("previous state reported dirty")
	}
	ent, _ := c.Peek(4)
	if !ent.Dirty || ent.Tag != e(2, 7) || ent.Version != 33 {
		t.Fatalf("after write: %+v", ent)
	}
	lines := c.LinesOf(e(2, 7))
	if len(lines) != 1 || lines[0] != 4 {
		t.Fatalf("LinesOf = %v", lines)
	}
}

func TestWriteMovesLineBetweenEpochs(t *testing.T) {
	c := small(t)
	c.Insert(4, true, e(1, 1), 1)
	c.Write(4, e(1, 3), 2)
	if n := c.EpochLineCount(e(1, 1)); n != 0 {
		t.Fatalf("old epoch still has %d lines", n)
	}
	if n := c.EpochLineCount(e(1, 3)); n != 1 {
		t.Fatalf("new epoch has %d lines, want 1", n)
	}
}

func TestWriteNonResidentPanics(t *testing.T) {
	c := small(t)
	defer func() {
		if recover() == nil {
			t.Error("write of non-resident line did not panic")
		}
	}()
	c.Write(4, e(1, 1), 1)
}

func TestCleanLineKeepsDataDropsTag(t *testing.T) {
	c := small(t)
	c.Insert(4, true, e(1, 1), 9)
	c.CleanLine(4)
	ent, ok := c.Peek(4)
	if !ok {
		t.Fatal("clwb-style clean removed the line")
	}
	if ent.Dirty || ent.Tag.Valid() {
		t.Fatalf("after clean: %+v", ent)
	}
	if ent.Version != 9 {
		t.Fatalf("clean lost the version: %+v", ent)
	}
	if c.EpochLineCount(e(1, 1)) != 0 {
		t.Fatal("epoch bookkeeping kept a cleaned line")
	}
	c.CleanLine(99) // absent line: no-op
}

func TestInvalidateRemovesLine(t *testing.T) {
	c := small(t)
	c.Insert(4, true, e(1, 1), 9)
	ent, ok := c.Invalidate(4)
	if !ok || ent.Version != 9 {
		t.Fatalf("invalidate returned %+v ok=%v", ent, ok)
	}
	if c.Contains(4) {
		t.Fatal("line still resident after invalidate")
	}
	if _, ok := c.Invalidate(4); ok {
		t.Fatal("double invalidate reported a drop")
	}
}

func TestRetagForEpochSplit(t *testing.T) {
	c := small(t)
	c.Insert(0, true, e(1, 5), 1)
	c.Insert(2, true, e(1, 5), 2)
	c.Retag(0, e(1, 5), e(1, 6))
	if c.EpochLineCount(e(1, 5)) != 1 || c.EpochLineCount(e(1, 6)) != 1 {
		t.Fatalf("split bookkeeping wrong: %d / %d",
			c.EpochLineCount(e(1, 5)), c.EpochLineCount(e(1, 6)))
	}
	// Retag with mismatched 'from' is a no-op.
	c.Retag(2, e(9, 9), e(1, 6))
	if c.EpochLineCount(e(1, 5)) != 1 {
		t.Fatal("mismatched retag moved a line")
	}
}

func TestLinesOfDeterministicOrder(t *testing.T) {
	c := MustNew(Config{Name: "big", Sets: 64, Ways: 4})
	for _, l := range []mem.Line{192, 0, 64, 128} {
		c.Insert(l, true, e(1, 1), 1)
	}
	lines := c.LinesOf(e(1, 1))
	for i := 1; i < len(lines); i++ {
		if lines[i] <= lines[i-1] {
			t.Fatalf("LinesOf not sorted: %v", lines)
		}
	}
}

func TestEvictionDropsEpochBookkeeping(t *testing.T) {
	c := MustNew(Config{Name: "tiny", Sets: 1, Ways: 1})
	c.Insert(0, true, e(1, 1), 1)
	c.Insert(1, false, epoch.None, 0) // evicts line 0
	if c.EpochLineCount(e(1, 1)) != 0 {
		t.Fatal("evicted line still in epoch bookkeeping")
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Fatalf("DirtyEvicts = %d, want 1", c.Stats().DirtyEvicts)
	}
}

func TestDirtyLinesSnapshot(t *testing.T) {
	c := MustNew(Config{Name: "big", Sets: 64, Ways: 4})
	c.Insert(5, true, e(0, 1), 1)
	c.Insert(3, true, e(0, 1), 2)
	c.Insert(9, false, epoch.None, 0)
	d := c.DirtyLines()
	if len(d) != 2 || d[0].Line != 3 || d[1].Line != 5 {
		t.Fatalf("DirtyLines = %+v", d)
	}
}

// Property: epoch bookkeeping always agrees with a full scan of the array.
func TestEpochBookkeepingConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(Config{Name: "p", Sets: 4, Ways: 2})
		tags := []epoch.ID{e(0, 1), e(0, 2), e(1, 1), epoch.None}
		for _, op := range ops {
			line := mem.Line(op % 16)
			tag := tags[(op>>4)%4]
			switch (op >> 6) % 4 {
			case 0:
				if !c.Contains(line) {
					c.Insert(line, tag.Valid(), tag, mem.Version(op))
				}
			case 1:
				if c.Contains(line) {
					c.Write(line, tag, mem.Version(op))
				}
			case 2:
				c.CleanLine(line)
			case 3:
				c.Invalidate(line)
			}
		}
		// Verify bookkeeping against a scan.
		counts := map[epoch.ID]int{}
		for _, ent := range c.DirtyLines() {
			if ent.Tag.Valid() {
				counts[ent.Tag]++
			}
		}
		for _, tag := range tags[:3] {
			if counts[tag] != c.EpochLineCount(tag) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
