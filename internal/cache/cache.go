// Package cache implements the set-associative cache arrays used for both
// the private L1s and the shared LLC banks. Each line carries, in addition
// to the usual valid/dirty state, the EpochID+CoreID tag extension of the
// paper's Section 4.3, and the cache keeps the per-epoch line bookkeeping
// that the paper's flush engines maintain as set bitmaps.
//
// Two hot-path properties matter to the simulator's throughput. Set
// arrays are allocated lazily on first touch, so building a Table 1-sized
// machine (32 MB of LLC way metadata) costs nothing for the many sets a
// workload never references. And the per-epoch line bookkeeping keeps each
// epoch's lines as an incrementally sorted slice, so the flush engine's
// work list (LinesOf / AppendLinesOf) is already in deterministic order —
// no sort on any flush.
package cache

import (
	"fmt"
	"sort"

	"persistbarriers/internal/epoch"
	"persistbarriers/internal/mem"
)

// FlushMode selects what a persist does to the flushed line.
type FlushMode uint8

const (
	// NonInvalidating models the clwb instruction: the line is written
	// back and stays valid and clean in the cache (the paper's choice;
	// ~30% faster in their evaluation).
	NonInvalidating FlushMode = iota
	// Invalidating models clflush: the line is written back and evicted.
	Invalidating
)

// String implements fmt.Stringer.
func (m FlushMode) String() string {
	if m == Invalidating {
		return "clflush"
	}
	return "clwb"
}

// Config sizes a cache array.
type Config struct {
	Name string
	Sets int
	Ways int
	// IndexShift drops low line-number bits before set indexing; LLC
	// banks use it so that bank-interleaved lines spread across sets.
	IndexShift uint
	// PanicOnDirtyEvict makes Insert panic when it would silently drop a
	// dirty victim. Private caches enable it: every dirty L1 line must
	// leave through an explicit writeback path.
	PanicOnDirtyEvict bool
}

// Entry is the externally visible state of one cache line.
type Entry struct {
	Line    mem.Line
	Dirty   bool
	Tag     epoch.ID    // epoch that last wrote the line; None once persisted
	Version mem.Version // newest store version the line holds
}

type way struct {
	valid   bool
	line    mem.Line
	dirty   bool
	tag     epoch.ID
	version mem.Version
	lastUse uint64
}

// Cache is a set-associative array with epoch-extended tags. It is a pure
// state container: all timing lives in the machine layer.
type Cache struct {
	cfg  Config
	sets [][]way // nil until the set is first touched
	tick uint64
	// byEpoch is the flush-engine bookkeeping: which resident lines
	// belong to each unpersisted epoch, kept sorted at all times so the
	// flush work list needs no sort.
	byEpoch map[epoch.ID][]mem.Line
	// setPool recycles drained epoch line slices; epochs are born and
	// retired constantly and their sets are small.
	setPool [][]mem.Line

	stats Stats
}

// Stats counts array activity.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %q: sets and ways must be positive (%d, %d)", cfg.Name, cfg.Sets, cfg.Ways)
	}
	return &Cache{
		cfg:     cfg,
		sets:    make([][]way, cfg.Sets),
		byEpoch: make(map[epoch.ID][]mem.Line),
	}, nil
}

// MustNew is New for statically known-good configs; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

func (c *Cache) setOf(line mem.Line) int {
	return int((uint64(line) >> c.cfg.IndexShift) % uint64(c.cfg.Sets))
}

// setFor returns line's set, which is nil when never touched.
func (c *Cache) setFor(line mem.Line) []way {
	return c.sets[c.setOf(line)]
}

// ensureSet returns line's set, allocating its ways on first touch.
func (c *Cache) ensureSet(line mem.Line) []way {
	i := c.setOf(line)
	if c.sets[i] == nil {
		c.sets[i] = make([]way, c.cfg.Ways)
	}
	return c.sets[i]
}

func (c *Cache) find(line mem.Line) *way {
	set := c.setFor(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// Lookup probes for line, updating LRU state and hit/miss counters.
func (c *Cache) Lookup(line mem.Line) (Entry, bool) {
	w := c.find(line)
	if w == nil {
		c.stats.Misses++
		return Entry{}, false
	}
	c.stats.Hits++
	c.tick++
	w.lastUse = c.tick
	return Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}, true
}

// Contains probes for line without disturbing LRU or counters.
func (c *Cache) Contains(line mem.Line) bool { return c.find(line) != nil }

// Peek returns the line's state without disturbing LRU or counters.
func (c *Cache) Peek(line mem.Line) (Entry, bool) {
	w := c.find(line)
	if w == nil {
		return Entry{}, false
	}
	return Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}, true
}

// Victim previews the entry that Insert(line) would evict. It returns
// (zero, false) when a free or invalid way exists. The victim preference
// order is: clean LRU first, then dirty-untagged LRU, then dirty-tagged
// LRU — the cache avoids forcing epoch flushes while any cheaper victim
// exists, mirroring the paper's reliance on natural replacements.
func (c *Cache) Victim(line mem.Line) (Entry, bool) {
	set := c.setFor(line)
	if set == nil {
		return Entry{}, false
	}
	for i := range set {
		if !set[i].valid {
			return Entry{}, false
		}
	}
	w := c.pickVictim(set)
	return Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}, true
}

// VictimAvoiding previews the victim for Insert while skipping lines for
// which avoid returns true (lines held in a transient request state).
// It returns (victim, full, ok): full=false means a free way exists (no
// victim needed); ok=false means the set is full and every way is
// excluded, so insertion must be retried later.
func (c *Cache) VictimAvoiding(line mem.Line, avoid func(mem.Line) bool) (Entry, bool, bool) {
	set := c.setFor(line)
	if set == nil {
		return Entry{}, false, true
	}
	for i := range set {
		if !set[i].valid {
			return Entry{}, false, true
		}
	}
	var candidates []way
	for i := range set {
		if !avoid(set[i].line) {
			candidates = append(candidates, set[i])
		}
	}
	if len(candidates) == 0 {
		return Entry{}, true, false
	}
	w := c.pickVictim(candidates)
	return Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}, true, true
}

// InsertReplacing inserts line into the way currently holding victim. The
// caller chose the victim via VictimAvoiding and resolved its writeback
// obligations; a missing victim panics.
func (c *Cache) InsertReplacing(line, victim mem.Line, dirty bool, tag epoch.ID, version mem.Version) Entry {
	if c.find(line) != nil {
		panic(fmt.Sprintf("cache %q: inserting already-present %v", c.cfg.Name, line))
	}
	w := c.find(victim)
	if w == nil {
		panic(fmt.Sprintf("cache %q: replacement victim %v vanished", c.cfg.Name, victim))
	}
	evicted := Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}
	c.stats.Evictions++
	if w.dirty {
		c.stats.DirtyEvicts++
	}
	c.dropFromEpoch(w.tag, w.line)
	c.tick++
	*w = way{valid: true, line: line, dirty: dirty, tag: tag, version: version, lastUse: c.tick}
	if dirty && tag.Valid() {
		c.addToEpoch(tag, line)
	}
	return evicted
}

func (c *Cache) pickVictim(set []way) *way {
	var clean, untagged, tagged *way
	for i := range set {
		w := &set[i]
		switch {
		case !w.dirty:
			if clean == nil || w.lastUse < clean.lastUse {
				clean = w
			}
		case !w.tag.Valid():
			if untagged == nil || w.lastUse < untagged.lastUse {
				untagged = w
			}
		default:
			if tagged == nil || w.lastUse < tagged.lastUse {
				tagged = w
			}
		}
	}
	if clean != nil {
		return clean
	}
	if untagged != nil {
		return untagged
	}
	return tagged
}

// Insert places line into the cache with the given state, evicting the
// previewed victim if the set is full. It returns the evicted entry, if
// any. Callers must have resolved persist-ordering obligations for the
// victim (via Victim) before calling Insert. Inserting a line that is
// already present panics: that is a protocol bug.
func (c *Cache) Insert(line mem.Line, dirty bool, tag epoch.ID, version mem.Version) (Entry, bool) {
	if c.find(line) != nil {
		panic(fmt.Sprintf("cache %q: inserting already-present %v", c.cfg.Name, line))
	}
	set := c.ensureSet(line)
	var slot *way
	for i := range set {
		if !set[i].valid {
			slot = &set[i]
			break
		}
	}
	var evicted Entry
	var didEvict bool
	if slot == nil {
		slot = c.pickVictim(set)
		if slot.dirty && c.cfg.PanicOnDirtyEvict {
			panic(fmt.Sprintf("cache %q: silent dirty eviction of %v (tag %v) for %v",
				c.cfg.Name, slot.line, slot.tag, line))
		}
		evicted = Entry{Line: slot.line, Dirty: slot.dirty, Tag: slot.tag, Version: slot.version}
		didEvict = true
		c.stats.Evictions++
		if slot.dirty {
			c.stats.DirtyEvicts++
		}
		c.dropFromEpoch(slot.tag, slot.line)
	}
	c.tick++
	*slot = way{valid: true, line: line, dirty: dirty, tag: tag, version: version, lastUse: c.tick}
	if dirty && tag.Valid() {
		c.addToEpoch(tag, line)
	}
	return evicted, didEvict
}

// Write marks a resident line dirty with the given epoch tag and version.
// It returns the line's previous state. Writing a non-resident line panics.
func (c *Cache) Write(line mem.Line, tag epoch.ID, version mem.Version) Entry {
	w := c.find(line)
	if w == nil {
		panic(fmt.Sprintf("cache %q: writing non-resident %v", c.cfg.Name, line))
	}
	prev := Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}
	if w.tag != tag {
		c.dropFromEpoch(w.tag, line)
		if tag.Valid() {
			c.addToEpoch(tag, line)
		}
	}
	c.tick++
	w.lastUse = c.tick
	w.dirty = true
	w.tag = tag
	w.version = version
	return prev
}

// CleanLine marks a resident line clean and clears its epoch tag — the
// effect of a non-invalidating (clwb-style) persist. Cleaning an absent
// line is a no-op (it may have been evicted meanwhile).
func (c *Cache) CleanLine(line mem.Line) {
	w := c.find(line)
	if w == nil {
		return
	}
	c.dropFromEpoch(w.tag, line)
	w.dirty = false
	w.tag = epoch.None
}

// Invalidate removes a line — the effect of a clflush-style persist or a
// coherence invalidation. It returns the entry that was dropped, if any.
func (c *Cache) Invalidate(line mem.Line) (Entry, bool) {
	w := c.find(line)
	if w == nil {
		return Entry{}, false
	}
	e := Entry{Line: w.line, Dirty: w.dirty, Tag: w.tag, Version: w.version}
	c.dropFromEpoch(w.tag, line)
	*w = way{}
	return e, true
}

// Retag moves a resident dirty line from one epoch tag to another; the
// deadlock-avoidance split (Section 3.3) uses it when an ongoing epoch's
// already-written lines are reassigned to the first half of the split.
// Absent lines are ignored.
func (c *Cache) Retag(line mem.Line, from, to epoch.ID) {
	w := c.find(line)
	if w == nil || w.tag != from {
		return
	}
	c.dropFromEpoch(from, line)
	w.tag = to
	if to.Valid() {
		c.addToEpoch(to, line)
	}
}

// LinesOf returns the resident lines tagged with the given epoch, in
// deterministic (sorted) order — the flush engine's work list. The slice
// is freshly allocated; AppendLinesOf reuses a caller buffer instead.
func (c *Cache) LinesOf(id epoch.ID) []mem.Line {
	set := c.byEpoch[id]
	if len(set) == 0 {
		return nil
	}
	out := make([]mem.Line, len(set))
	copy(out, set)
	return out
}

// AppendLinesOf appends the epoch's resident lines (already sorted) to
// dst and returns it. The flush engine calls this with a reused scratch
// buffer, so steady-state flushes do not allocate; the snapshot semantics
// let the caller clean or invalidate lines while iterating.
func (c *Cache) AppendLinesOf(dst []mem.Line, id epoch.ID) []mem.Line {
	return append(dst, c.byEpoch[id]...)
}

// EpochLineCount reports how many resident lines carry the given tag.
func (c *Cache) EpochLineCount(id epoch.ID) int { return len(c.byEpoch[id]) }

// addToEpoch inserts line into id's sorted line set. Epoch sets are small
// (bounded by what one epoch writes while resident), so the binary search
// plus copy stays cheap and the flush path never sorts.
func (c *Cache) addToEpoch(id epoch.ID, line mem.Line) {
	set, ok := c.byEpoch[id]
	if !ok {
		if n := len(c.setPool); n > 0 {
			set = c.setPool[n-1][:0]
			c.setPool = c.setPool[:n-1]
		}
	}
	i := sort.Search(len(set), func(i int) bool { return set[i] >= line })
	if i < len(set) && set[i] == line {
		return
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = line
	c.byEpoch[id] = set
}

func (c *Cache) dropFromEpoch(id epoch.ID, line mem.Line) {
	if !id.Valid() {
		return
	}
	set, ok := c.byEpoch[id]
	if !ok {
		return
	}
	i := sort.Search(len(set), func(i int) bool { return set[i] >= line })
	if i >= len(set) || set[i] != line {
		return
	}
	copy(set[i:], set[i+1:])
	set = set[:len(set)-1]
	if len(set) == 0 {
		c.setPool = append(c.setPool, set)
		delete(c.byEpoch, id)
		return
	}
	c.byEpoch[id] = set
}

// DirtyLines returns every dirty resident line (sorted); the end-of-run
// drain uses it.
func (c *Cache) DirtyLines() []Entry {
	var out []Entry
	for s := range c.sets {
		for i := range c.sets[s] {
			w := &c.sets[s][i]
			if w.valid && w.dirty {
				out = append(out, Entry{Line: w.line, Dirty: true, Tag: w.tag, Version: w.version})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Stats returns a snapshot of the array counters.
func (c *Cache) Stats() Stats { return c.stats }
