package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"persistbarriers/internal/sim"
)

// DefaultWindow is the sampler's window size when none is given.
const DefaultWindow = sim.Cycle(10000)

// WindowStats aggregates the event stream over one N-cycle window. All
// counters are raw counts within the window; rates are derived by the
// accessors (or by the consumer from the CSV columns).
type WindowStats struct {
	Start  sim.Cycle `json:"start"`
	Window sim.Cycle `json:"window"`

	Txs uint64 `json:"txs"`

	EpochsOpened    uint64 `json:"epochs_opened"`
	EpochsPersisted uint64 `json:"epochs_persisted"`
	Splits          uint64 `json:"splits"`
	FlushesStarted  uint64 `json:"flushes_started"`

	ConflictsIntra    uint64 `json:"conflicts_intra"`
	ConflictsInter    uint64 `json:"conflicts_inter"`
	ConflictsEviction uint64 `json:"conflicts_eviction"`
	IDTFallbacks      uint64 `json:"idt_fallbacks"`

	LinesPersisted uint64 `json:"lines_persisted"`

	NoCMessages uint64 `json:"noc_messages"`
	NoCFlits    uint64 `json:"noc_flits"`

	// NVRAMSamples counts controller admissions in the window and
	// NVRAMWaitSum their summed queuing delay; WaitAvg derives the mean
	// write-queue occupancy signal.
	NVRAMSamples uint64 `json:"nvram_samples"`
	NVRAMWaitSum uint64 `json:"nvram_wait_sum"`
}

// Conflicts sums all conflict events in the window.
func (w WindowStats) Conflicts() uint64 {
	return w.ConflictsIntra + w.ConflictsInter + w.ConflictsEviction
}

// ThroughputPerKcycle is transactions per kilocycle within the window.
func (w WindowStats) ThroughputPerKcycle() float64 {
	if w.Window == 0 {
		return 0
	}
	return float64(w.Txs) / float64(w.Window) * 1000
}

// ConflictRatePerKcycle is conflict events per kilocycle in the window.
func (w WindowStats) ConflictRatePerKcycle() float64 {
	if w.Window == 0 {
		return 0
	}
	return float64(w.Conflicts()) / float64(w.Window) * 1000
}

// WaitAvg is the mean NVRAM queuing delay per admitted request (cycles).
func (w WindowStats) WaitAvg() float64 {
	if w.NVRAMSamples == 0 {
		return 0
	}
	return float64(w.NVRAMWaitSum) / float64(w.NVRAMSamples)
}

// Sampler is a Sink that folds the event stream into fixed-width cycle
// windows. It relies on emissions arriving in nondecreasing cycle order
// (which the simulation engine guarantees).
type Sampler struct {
	window sim.Cycle
	cur    WindowStats
	done   []WindowStats
	seen   bool
}

// NewSampler returns a sampler with the given window size; window <= 0
// selects DefaultWindow.
func NewSampler(window sim.Cycle) *Sampler {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{window: window, cur: WindowStats{Window: window}}
}

// Emit implements Sink.
func (s *Sampler) Emit(ev Event) {
	s.seen = true
	for ev.Cycle >= s.cur.Start+s.window {
		s.done = append(s.done, s.cur)
		s.cur = WindowStats{Start: s.cur.Start + s.window, Window: s.window}
	}
	switch ev.Kind {
	case KTxRetired:
		s.cur.Txs++
	case KEpochOpen:
		s.cur.EpochsOpened++
	case KEpochPersist:
		s.cur.EpochsPersisted++
	case KEpochSplit:
		s.cur.Splits++
	case KEpochFlushStart:
		s.cur.FlushesStarted++
	case KConflict:
		switch ev.Label {
		case ConflictIntra:
			s.cur.ConflictsIntra++
		case ConflictInter:
			s.cur.ConflictsInter++
		case ConflictEviction:
			s.cur.ConflictsEviction++
		}
	case KIDTFallback:
		s.cur.IDTFallbacks++
	case KPersistAck:
		s.cur.LinesPersisted++
	case KNoCMessage:
		s.cur.NoCMessages++
		s.cur.NoCFlits += ev.Value
	case KNVRAMQueue:
		s.cur.NVRAMSamples++
		s.cur.NVRAMWaitSum += ev.Value
	}
}

// Windows returns the completed windows plus the in-progress one (when
// any event has been observed). The sampler remains usable afterwards.
func (s *Sampler) Windows() []WindowStats {
	out := make([]WindowStats, len(s.done), len(s.done)+1)
	copy(out, s.done)
	if s.seen {
		out = append(out, s.cur)
	}
	return out
}

// csvHeader lists the exported columns, one per WindowStats field plus
// the derived averages.
var csvHeader = []string{
	"start", "window", "txs",
	"epochs_opened", "epochs_persisted", "splits", "flushes_started",
	"conflicts_intra", "conflicts_inter", "conflicts_eviction", "idt_fallbacks",
	"lines_persisted", "noc_messages", "noc_flits",
	"nvram_samples", "nvram_wait_avg",
	"tx_per_kcycle", "conflicts_per_kcycle",
}

// WriteCSV writes the windows as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for i, col := range csvHeader {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, col); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, ws := range s.Windows() {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.4f,%.4f\n",
			ws.Start, ws.Window, ws.Txs,
			ws.EpochsOpened, ws.EpochsPersisted, ws.Splits, ws.FlushesStarted,
			ws.ConflictsIntra, ws.ConflictsInter, ws.ConflictsEviction, ws.IDTFallbacks,
			ws.LinesPersisted, ws.NoCMessages, ws.NoCFlits,
			ws.NVRAMSamples, ws.WaitAvg(),
			ws.ThroughputPerKcycle(), ws.ConflictRatePerKcycle())
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the windows as a JSON array.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Windows())
}
