package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"persistbarriers/internal/sim"
)

// ChromeTracer is a Sink that renders the event stream in Chrome
// trace-event JSON (the array format), viewable in Perfetto or
// chrome://tracing. Timestamps are simulated cycles reported in the
// format's microsecond field, so 1 us on screen = 1 cycle.
//
// Track layout:
//   - one process per core ("core N"), with a dynamically allocated set
//     of epoch lanes so overlapping in-flight epochs of one core never
//     share a track: each epoch is a complete ("X") span from open to
//     PersistCMP, with a nested span covering the persist phase
//     (barrier retire -> PersistCMP); conflicts, splits, and IDT
//     fallbacks are instant markers on the core's marker lane;
//   - one process per LLC bank ("LLC bank N"), one lane per flushing
//     core, carrying the bank's flush spans (FlushEpoch -> BankAck);
//   - one process per memory controller ("MC N") with a "queue wait"
//     counter track, plus a global "NVRAM" process with a cumulative
//     "persisted lines" counter.
//
// Within every track, spans are non-overlapping by construction (lane
// allocation) and the output is sorted by timestamp.
type ChromeTracer struct {
	events []chromeEvent

	// Open epoch spans and per-core lane occupancy.
	epochs map[epochKey]*epochSpan
	lanes  map[int][]bool

	// Open bank flush spans, keyed by (bank, flushing core).
	bankFlush map[bankKey]sim.Cycle

	procNames   map[int]string
	threadNames map[pidTid]string

	persistedLines uint64
	lastCycle      sim.Cycle
}

type epochKey struct {
	core int
	num  int64
}

type bankKey struct {
	bank int
	core int
}

type pidTid struct {
	pid, tid int
}

type epochSpan struct {
	lane        int
	openAt      sim.Cycle
	completedAt sim.Cycle
	flushAt     sim.Cycle
	completed   bool
	flushed     bool
	reason      string
	cause       string
	stores      uint64
}

// chromeEvent is one trace-event record. Field order is the JSON order.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track numbering. Process IDs partition the structures; marker lanes
// use a tid far above any plausible lane count.
const (
	corePidBase = 1
	bankPidBase = 1001
	mcPidBase   = 2001
	nvramPid    = 3001
	markerTid   = 1000
)

// NewChromeTracer returns an empty tracer ready to use as a Sink.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{
		epochs:      make(map[epochKey]*epochSpan),
		lanes:       make(map[int][]bool),
		bankFlush:   make(map[bankKey]sim.Cycle),
		procNames:   make(map[int]string),
		threadNames: make(map[pidTid]string),
	}
}

// Emit implements Sink.
func (t *ChromeTracer) Emit(ev Event) {
	if ev.Cycle > t.lastCycle {
		t.lastCycle = ev.Cycle
	}
	switch ev.Kind {
	case KEpochOpen:
		t.openEpoch(ev)
	case KEpochComplete:
		if sp := t.epochs[epochKey{ev.Core, ev.Epoch}]; sp != nil {
			sp.completed = true
			sp.completedAt = ev.Cycle
			sp.reason = ev.Label
			sp.stores = ev.Value
		}
	case KEpochFlushStart:
		if sp := t.epochs[epochKey{ev.Core, ev.Epoch}]; sp != nil && !sp.flushed {
			sp.flushed = true
			sp.flushAt = ev.Cycle
		}
	case KEpochPersist:
		t.closeEpoch(ev)
	case KEpochSplit:
		t.instant(ev, fmt.Sprintf("split E%d.%d", ev.Core, ev.Epoch), "split", nil)
	case KConflict:
		t.instant(ev, ev.Label+"-conflict", "conflict", map[string]any{
			"source":     fmt.Sprintf("E%d.%d", ev.SrcCore, ev.SrcEpoch),
			"line":       ev.Line.String(),
			"resolution": ev.Detail,
		})
	case KIDTFallback:
		t.instant(ev, "idt-fallback", "conflict", map[string]any{
			"source": fmt.Sprintf("E%d.%d", ev.SrcCore, ev.SrcEpoch),
		})
	case KBankFlushStart:
		t.bankFlush[bankKey{ev.Unit, ev.Core}] = ev.Cycle
	case KBankAck:
		t.closeBankFlush(ev)
	case KPersistAck:
		t.persistedLines++
		t.ensureProc(nvramPid, "NVRAM")
		t.events = append(t.events, chromeEvent{
			Name: "persisted lines", Ph: "C", Ts: uint64(ev.Cycle),
			Pid: nvramPid, Tid: 0,
			Args: map[string]any{"lines": t.persistedLines},
		})
	case KNVRAMQueue:
		pid := mcPidBase + ev.Unit
		t.ensureProc(pid, fmt.Sprintf("MC %d", ev.Unit))
		t.events = append(t.events, chromeEvent{
			Name: "queue wait", Ph: "C", Ts: uint64(ev.Cycle),
			Pid: pid, Tid: 0,
			Args: map[string]any{"cycles": ev.Value},
		})
	case KTxRetired:
		t.instant(ev, "tx", "tx", nil)
	case KNoCMessage:
		// Too fine-grained for a span/instant track; the sampler
		// aggregates NoC traffic instead.
	}
}

// openEpoch allocates the smallest free lane on the core and starts the
// span. Lane reuse is safe: a lane frees only when its epoch persists,
// so spans on one lane can never overlap.
func (t *ChromeTracer) openEpoch(ev Event) {
	lanes := t.lanes[ev.Core]
	lane := -1
	for i, used := range lanes {
		if !used {
			lane = i
			break
		}
	}
	if lane == -1 {
		lane = len(lanes)
		lanes = append(lanes, false)
	}
	lanes[lane] = true
	t.lanes[ev.Core] = lanes
	t.epochs[epochKey{ev.Core, ev.Epoch}] = &epochSpan{lane: lane, openAt: ev.Cycle}

	pid := corePidBase + ev.Core
	t.ensureProc(pid, fmt.Sprintf("core %d", ev.Core))
	t.ensureThread(pid, lane, fmt.Sprintf("epochs.%d", lane))
}

// closeEpoch emits the epoch's span (and nested persist-phase span) and
// frees its lane.
func (t *ChromeTracer) closeEpoch(ev Event) {
	key := epochKey{ev.Core, ev.Epoch}
	sp := t.epochs[key]
	if sp == nil {
		return
	}
	delete(t.epochs, key)
	t.lanes[ev.Core][sp.lane] = false
	t.emitEpochSpan(ev.Core, ev.Epoch, sp, ev.Cycle, ev.Label, false)
}

// emitEpochSpan renders one epoch's lifetime on its lane.
func (t *ChromeTracer) emitEpochSpan(core int, num int64, sp *epochSpan, end sim.Cycle, cause string, unfinished bool) {
	pid := corePidBase + core
	args := map[string]any{
		"cause":  cause,
		"stores": sp.stores,
	}
	if sp.completed {
		args["reason"] = sp.reason
		args["completed_at"] = uint64(sp.completedAt)
	}
	if sp.flushed {
		args["flush_start_at"] = uint64(sp.flushAt)
	}
	if unfinished {
		args["unfinished"] = true
	}
	t.events = append(t.events, chromeEvent{
		Name: fmt.Sprintf("E%d.%d", core, num), Cat: "epoch", Ph: "X",
		Ts: uint64(sp.openAt), Dur: uint64(end - sp.openAt),
		Pid: pid, Tid: sp.lane, Args: args,
	})
	if sp.completed && end > sp.completedAt {
		// The persist phase: barrier retire -> PersistCMP, nested
		// inside the epoch span on the same lane.
		t.events = append(t.events, chromeEvent{
			Name: fmt.Sprintf("persist E%d.%d", core, num), Cat: "persist", Ph: "X",
			Ts: uint64(sp.completedAt), Dur: uint64(end - sp.completedAt),
			Pid: pid, Tid: sp.lane,
			Args: map[string]any{"cause": cause},
		})
	}
}

// closeBankFlush emits the bank's drain span for one epoch flush.
func (t *ChromeTracer) closeBankFlush(ev Event) {
	key := bankKey{ev.Unit, ev.Core}
	start, ok := t.bankFlush[key]
	if !ok {
		return
	}
	delete(t.bankFlush, key)
	pid := bankPidBase + ev.Unit
	t.ensureProc(pid, fmt.Sprintf("LLC bank %d", ev.Unit))
	t.ensureThread(pid, ev.Core, fmt.Sprintf("flush core %d", ev.Core))
	t.events = append(t.events, chromeEvent{
		Name: fmt.Sprintf("flush E%d.%d", ev.Core, ev.Epoch), Cat: "flush", Ph: "X",
		Ts: uint64(start), Dur: uint64(ev.Cycle - start),
		Pid: pid, Tid: ev.Core,
	})
}

// instant emits a thread-scoped instant marker on the event's core
// marker lane (falling back to the source core for requester-less
// events such as eviction demands).
func (t *ChromeTracer) instant(ev Event, name, cat string, args map[string]any) {
	core := ev.Core
	if core < 0 {
		core = ev.SrcCore
	}
	if core < 0 {
		return
	}
	pid := corePidBase + core
	t.ensureProc(pid, fmt.Sprintf("core %d", core))
	t.ensureThread(pid, markerTid, "markers")
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: cat, Ph: "i", Ts: uint64(ev.Cycle),
		Pid: pid, Tid: markerTid, S: "t", Args: args,
	})
}

func (t *ChromeTracer) ensureProc(pid int, name string) {
	if _, ok := t.procNames[pid]; !ok {
		t.procNames[pid] = name
	}
}

func (t *ChromeTracer) ensureThread(pid, tid int, name string) {
	key := pidTid{pid, tid}
	if _, ok := t.threadNames[key]; !ok {
		t.threadNames[key] = name
	}
}

// Export finalizes the trace and writes it as a JSON array. Epochs
// still in flight are emitted as unfinished spans ending at the last
// observed cycle. Export may be called once, after the run.
func (t *ChromeTracer) Export(w io.Writer) error {
	// Flush unfinished epoch spans deterministically.
	var open []epochKey
	for k := range t.epochs {
		open = append(open, k)
	}
	sort.Slice(open, func(i, j int) bool {
		if open[i].core != open[j].core {
			return open[i].core < open[j].core
		}
		return open[i].num < open[j].num
	})
	for _, k := range open {
		sp := t.epochs[k]
		cause := "none"
		if sp.flushed {
			cause = "in-flight"
		}
		t.emitEpochSpan(k.core, k.num, sp, t.lastCycle, cause, true)
		delete(t.epochs, k)
	}

	// Metadata events first, sorted by (pid, tid).
	var meta []chromeEvent
	for pid, name := range t.procNames {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	for key, name := range t.threadNames {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: key.pid, Tid: key.tid,
			Args: map[string]any{"name": name},
		})
	}
	sort.Slice(meta, func(i, j int) bool {
		if meta[i].Pid != meta[j].Pid {
			return meta[i].Pid < meta[j].Pid
		}
		if meta[i].Tid != meta[j].Tid {
			return meta[i].Tid < meta[j].Tid
		}
		return meta[i].Name < meta[j].Name
	})

	// Content events sorted by timestamp; the stable sort keeps the
	// emission order (outer span before nested span) on ties.
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].Ts < t.events[j].Ts })

	all := append(meta, t.events...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(all)
}
