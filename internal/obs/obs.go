// Package obs is the simulator's observability layer: a typed event
// stream (the Probe) emitted from the machine, epoch, nvram, and noc
// layers, plus consumers that turn the stream into artifacts — a Chrome
// trace-event exporter (chrometrace.go) and a cycle-windowed time-series
// sampler (sampler.go).
//
// The layer is zero-overhead when disabled: every component holds a
// *Probe that defaults to nil, every Probe method is nil-safe, and the
// uninstrumented hot path therefore costs exactly one branch per
// potential emission site. Components never format strings or allocate
// unless a sink is attached.
//
// obs sits below epoch/nvram/noc/machine in the dependency order (it
// imports only mem and sim), so any layer may emit without cycles. Epoch
// identities are carried as plain (core, num) pairs for the same reason.
package obs

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
)

// Kind enumerates the typed events of the stream.
type Kind uint8

const (
	// KEpochOpen: a core opened a new epoch (table.open).
	KEpochOpen Kind = iota
	// KEpochComplete: the epoch's closing advance retired (barrier,
	// hardware quota, split, or drain); Label is the AdvanceReason,
	// Value the epoch's store count.
	KEpochComplete
	// KEpochSplit: the deadlock-avoidance rule closed an ongoing epoch
	// (§3.3); always paired with a KEpochComplete carrying Label "split".
	KEpochSplit
	// KEpochFlushStart: the per-core arbiter started driving the epoch's
	// flush handshake; Label is the recorded FlushCause.
	KEpochFlushStart
	// KEpochPersist: the epoch became durably complete (PersistCMP);
	// Label is the final FlushCause ("natural" when no flush ran).
	KEpochPersist
	// KConflict: a memory request hit a line of an unpersisted epoch.
	// Label is the conflict kind ("intra", "inter", "eviction"); Detail
	// is the resolution path ("online", "idt", "demand"); Src* name the
	// conflicting epoch; Line is the conflicting line.
	KConflict
	// KIDTFallback: the dependence registers were full and an IDT
	// resolution fell back to an online flush; Src* name the source.
	KIDTFallback
	// KBankFlushStart: one LLC bank began draining an epoch's lines
	// (the FlushEpoch message landed); Unit is the bank, Value the line
	// count to drain.
	KBankFlushStart
	// KBankAck: the bank collected its last PersistAck and sent the
	// BankAck to the arbiter; Unit is the bank.
	KBankAck
	// KPersistAck: one line version became durable at NVRAM; Line is the
	// line, Core/Epoch the owning epoch (-1/-1 for untracked writes).
	KPersistAck
	// KTxRetired: a core retired one workload transaction.
	KTxRetired
	// KNVRAMQueue: a request was admitted at a memory controller; Unit
	// is the controller, Value the queuing delay (cycles) the request
	// waited for the channel.
	KNVRAMQueue
	// KNoCMessage: one message traversed the mesh; Value is its flit
	// count, Src/SrcEpoch unused, Unit the hop count.
	KNoCMessage
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KEpochOpen:
		return "epoch-open"
	case KEpochComplete:
		return "epoch-complete"
	case KEpochSplit:
		return "epoch-split"
	case KEpochFlushStart:
		return "epoch-flush-start"
	case KEpochPersist:
		return "epoch-persist"
	case KConflict:
		return "conflict"
	case KIDTFallback:
		return "idt-fallback"
	case KBankFlushStart:
		return "bank-flush-start"
	case KBankAck:
		return "bank-ack"
	case KPersistAck:
		return "persist-ack"
	case KTxRetired:
		return "tx-retired"
	case KNVRAMQueue:
		return "nvram-queue"
	case KNoCMessage:
		return "noc-message"
	default:
		return "kind(?)"
	}
}

// Conflict kind labels (Event.Label on KConflict).
const (
	ConflictIntra    = "intra"
	ConflictInter    = "inter"
	ConflictEviction = "eviction"
)

// Conflict resolution labels (Event.Detail on KConflict): the request
// stalled behind an online flush, was deferred through an IDT
// dependence register, or demanded a flush from the eviction path.
const (
	ResolveOnline = "online"
	ResolveIDT    = "idt"
	ResolveDemand = "demand"
)

// Event is one observation. Fields not meaningful for a Kind hold -1
// (indices) or zero values; see the Kind constants for the schema.
type Event struct {
	Kind  Kind
	Cycle sim.Cycle

	// Core and Epoch identify the epoch (or core) the event concerns.
	Core  int
	Epoch int64

	// SrcCore and SrcEpoch identify a conflicting/source epoch.
	SrcCore  int
	SrcEpoch int64

	// Unit is a structure index: LLC bank or memory controller.
	Unit int

	Line  mem.Line
	Value uint64

	// Label and Detail are small fixed vocabularies (causes, reasons,
	// conflict kinds), never free-form text.
	Label  string
	Detail string
}

// Sink consumes the event stream. Emissions arrive in nondecreasing
// Cycle order (the simulation engine fires events in time order).
type Sink interface {
	Emit(ev Event)
}

// Probe is the instrumentation hub components emit into. A nil *Probe is
// valid and inert: every method no-ops, so holders need no guards beyond
// the implicit nil check.
type Probe struct {
	sinks []Sink
}

// NewProbe builds a probe fanning out to the given sinks; nil sinks are
// dropped. With no sinks the probe is inert (but non-nil).
func NewProbe(sinks ...Sink) *Probe {
	p := &Probe{}
	for _, s := range sinks {
		if s != nil {
			p.sinks = append(p.sinks, s)
		}
	}
	return p
}

// Active reports whether any sink is attached.
func (p *Probe) Active() bool { return p != nil && len(p.sinks) > 0 }

func (p *Probe) emit(ev Event) {
	for _, s := range p.sinks {
		s.Emit(ev)
	}
}

func base(k Kind, cy sim.Cycle) Event {
	return Event{Kind: k, Cycle: cy, Core: -1, Epoch: -1, SrcCore: -1, SrcEpoch: -1, Unit: -1}
}

// EpochOpen records a core opening epoch num.
func (p *Probe) EpochOpen(cy sim.Cycle, core int, num uint64) {
	if !p.Active() {
		return
	}
	ev := base(KEpochOpen, cy)
	ev.Core, ev.Epoch = core, int64(num)
	p.emit(ev)
}

// EpochComplete records an epoch's closing advance; reason is the
// AdvanceReason label and stores the epoch's dynamic store count.
func (p *Probe) EpochComplete(cy sim.Cycle, core int, num uint64, reason string, stores uint64) {
	if !p.Active() {
		return
	}
	ev := base(KEpochComplete, cy)
	ev.Core, ev.Epoch, ev.Label, ev.Value = core, int64(num), reason, stores
	p.emit(ev)
}

// EpochSplit records a deadlock-avoidance split of epoch num.
func (p *Probe) EpochSplit(cy sim.Cycle, core int, num uint64) {
	if !p.Active() {
		return
	}
	ev := base(KEpochSplit, cy)
	ev.Core, ev.Epoch = core, int64(num)
	p.emit(ev)
}

// EpochFlushStart records the arbiter starting an epoch's flush; cause
// is the recorded FlushCause label.
func (p *Probe) EpochFlushStart(cy sim.Cycle, core int, num uint64, cause string) {
	if !p.Active() {
		return
	}
	ev := base(KEpochFlushStart, cy)
	ev.Core, ev.Epoch, ev.Label = core, int64(num), cause
	p.emit(ev)
}

// EpochPersist records an epoch becoming durably complete; cause is the
// final FlushCause label.
func (p *Probe) EpochPersist(cy sim.Cycle, core int, num uint64, cause string) {
	if !p.Active() {
		return
	}
	ev := base(KEpochPersist, cy)
	ev.Core, ev.Epoch, ev.Label = core, int64(num), cause
	p.emit(ev)
}

// Conflict records a memory request conflicting with an unpersisted
// epoch. kind is "intra", "inter", or "eviction"; resolution is
// "online", "idt", or "demand"; reqCore is the requesting core (-1 when
// the requester is a hardware structure, e.g. an eviction).
func (p *Probe) Conflict(cy sim.Cycle, kind string, reqCore int, srcCore int, srcNum uint64, line mem.Line, resolution string) {
	if !p.Active() {
		return
	}
	ev := base(KConflict, cy)
	ev.Core = reqCore
	ev.SrcCore, ev.SrcEpoch = srcCore, int64(srcNum)
	ev.Line, ev.Label, ev.Detail = line, kind, resolution
	p.emit(ev)
}

// IDTFallback records a dependence-register-full fallback to an online
// flush of the source epoch.
func (p *Probe) IDTFallback(cy sim.Cycle, reqCore int, srcCore int, srcNum uint64) {
	if !p.Active() {
		return
	}
	ev := base(KIDTFallback, cy)
	ev.Core = reqCore
	ev.SrcCore, ev.SrcEpoch = srcCore, int64(srcNum)
	p.emit(ev)
}

// BankFlushStart records bank starting to drain lines of epoch
// (core, num); lines is how many it holds.
func (p *Probe) BankFlushStart(cy sim.Cycle, bank, core int, num uint64, lines int) {
	if !p.Active() {
		return
	}
	ev := base(KBankFlushStart, cy)
	ev.Unit, ev.Core, ev.Epoch, ev.Value = bank, core, int64(num), uint64(lines)
	p.emit(ev)
}

// BankAck records the bank's last PersistAck arriving (the BankAck send).
func (p *Probe) BankAck(cy sim.Cycle, bank, core int, num uint64) {
	if !p.Active() {
		return
	}
	ev := base(KBankAck, cy)
	ev.Unit, ev.Core, ev.Epoch = bank, core, int64(num)
	p.emit(ev)
}

// PersistAck records one line version reaching NVRAM. core/num name the
// owning epoch; pass core = -1 for untracked (NP/SP/WT or post-epoch)
// writes.
func (p *Probe) PersistAck(cy sim.Cycle, line mem.Line, core int, num uint64) {
	if !p.Active() {
		return
	}
	ev := base(KPersistAck, cy)
	ev.Line = line
	if core >= 0 {
		ev.Core, ev.Epoch = core, int64(num)
	}
	p.emit(ev)
}

// TxRetired records a core retiring one workload transaction.
func (p *Probe) TxRetired(cy sim.Cycle, core int) {
	if !p.Active() {
		return
	}
	ev := base(KTxRetired, cy)
	ev.Core = core
	p.emit(ev)
}

// NVRAMQueue records a request admitted at controller ctrl after waiting
// wait cycles for the channel (the queue-depth signal in time units).
func (p *Probe) NVRAMQueue(cy sim.Cycle, ctrl int, wait sim.Cycle) {
	if !p.Active() {
		return
	}
	ev := base(KNVRAMQueue, cy)
	ev.Unit, ev.Value = ctrl, uint64(wait)
	p.emit(ev)
}

// NoCMessage records one mesh message of the given flit and hop counts.
func (p *Probe) NoCMessage(cy sim.Cycle, flits, hops int) {
	if !p.Active() {
		return
	}
	ev := base(KNoCMessage, cy)
	ev.Unit, ev.Value = hops, uint64(flits)
	p.emit(ev)
}
