package obs

import (
	"sync"

	"persistbarriers/internal/sim"
)

// CollectorRing is retained for API compatibility with the sample-ring
// collector; the histogram collector keeps every sample's bucket count,
// so no window bound applies anymore.
const CollectorRing = 8192

// ServiceStats is a point-in-time snapshot of a Collector.
type ServiceStats struct {
	Cycle sim.Cycle `json:"cycle"`

	Txs             uint64 `json:"txs"`
	EpochsOpened    uint64 `json:"epochs_opened"`
	EpochsPersisted uint64 `json:"epochs_persisted"`

	ConflictsIntra    uint64 `json:"conflicts_intra"`
	ConflictsInter    uint64 `json:"conflicts_inter"`
	ConflictsEviction uint64 `json:"conflicts_eviction"`

	// Persist latency (epoch completion to durability), in cycles.
	// Percentiles are the pow-2 bucket upper bounds of the nearest-rank
	// sample over all samples since the collector was built.
	LatencySamples int       `json:"latency_samples"`
	LatencyP50     sim.Cycle `json:"latency_p50"`
	LatencyP90     sim.Cycle `json:"latency_p90"`
	LatencyP99     sim.Cycle `json:"latency_p99"`

	// LatencyHist carries the raw pow-2 bucket counts (bucket b counts
	// latencies with bits.Len64(v) == b; trailing zero buckets trimmed) so
	// per-shard snapshots merge exactly in AggregateServiceStats.
	LatencyHist []uint64 `json:"latency_hist,omitempty"`
}

// EpochsPerKcycle is durable epochs per kilocycle — the engine's service
// throughput in simulated time.
func (s ServiceStats) EpochsPerKcycle() float64 {
	if s.Cycle == 0 {
		return 0
	}
	return float64(s.EpochsPersisted) / float64(s.Cycle) * 1000
}

// Collector is a Sink that folds the event stream into live serving
// metrics: epoch throughput, persist-latency percentiles, and conflict
// counts by kind. Unlike the Sampler it is safe for concurrent use — a
// server's stats endpoint reads Snapshot while the engine emits. Latency
// samples fold into a power-of-two histogram at emission time, so
// Snapshot never sorts and never drops samples.
type Collector struct {
	mu sync.Mutex

	cycle sim.Cycle

	txs       uint64
	opened    uint64
	persisted uint64

	intra    uint64
	inter    uint64
	eviction uint64

	// completedAt holds completion cycles of epochs awaiting durability,
	// keyed by (core, epoch). Entries are consumed by the persist event.
	completedAt map[[2]int64]sim.Cycle

	// hist folds complete->persist latencies; samples is its running
	// total (maintained incrementally so Snapshot stays O(buckets)).
	hist    Hist
	samples uint64
}

// NewCollector builds a collector. The ring parameter is retained for
// compatibility with the sample-ring implementation and is ignored: the
// histogram is fixed-size and loses no samples.
func NewCollector(ring int) *Collector {
	return &Collector{
		completedAt: make(map[[2]int64]sim.Cycle),
	}
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Cycle > c.cycle {
		c.cycle = ev.Cycle
	}
	switch ev.Kind {
	case KTxRetired:
		c.txs++
	case KEpochOpen:
		c.opened++
	case KEpochComplete:
		c.completedAt[[2]int64{int64(ev.Core), ev.Epoch}] = ev.Cycle
	case KEpochPersist:
		c.persisted++
		key := [2]int64{int64(ev.Core), ev.Epoch}
		if done, ok := c.completedAt[key]; ok {
			delete(c.completedAt, key)
			c.hist.Observe(uint64(ev.Cycle - done))
			c.samples++
		}
	case KConflict:
		switch ev.Label {
		case ConflictIntra:
			c.intra++
		case ConflictInter:
			c.inter++
		case ConflictEviction:
			c.eviction++
		}
	}
}

// Snapshot returns the current metrics.
func (c *Collector) Snapshot() ServiceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ServiceStats{
		Cycle:             c.cycle,
		Txs:               c.txs,
		EpochsOpened:      c.opened,
		EpochsPersisted:   c.persisted,
		ConflictsIntra:    c.intra,
		ConflictsInter:    c.inter,
		ConflictsEviction: c.eviction,
		LatencySamples:    int(c.samples),
	}
	if c.samples > 0 {
		s.LatencyP50 = sim.Cycle(c.hist.Percentile(50))
		s.LatencyP90 = sim.Cycle(c.hist.Percentile(90))
		s.LatencyP99 = sim.Cycle(c.hist.Percentile(99))
		s.LatencyHist = c.hist.Trimmed()
	}
	return s
}

// percentile picks the nearest-rank p-th percentile of a sorted slice.
func percentile(sorted []sim.Cycle, p int) sim.Cycle {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// AggregateServiceStats folds per-shard snapshots into one store-wide
// view: counters sum, Cycle is the furthest shard clock, and latency
// percentiles are computed over the exact merged histogram (pow-2 bucket
// counts add), so the pooled percentiles are true percentiles of the
// union of all shards' samples. Snapshots that carry no histogram (a
// legacy producer) fall back to the elementwise worst case.
func AggregateServiceStats(per []ServiceStats) ServiceStats {
	var agg ServiceStats
	var merged Hist
	histless := false
	for _, s := range per {
		if s.Cycle > agg.Cycle {
			agg.Cycle = s.Cycle
		}
		agg.Txs += s.Txs
		agg.EpochsOpened += s.EpochsOpened
		agg.EpochsPersisted += s.EpochsPersisted
		agg.ConflictsIntra += s.ConflictsIntra
		agg.ConflictsInter += s.ConflictsInter
		agg.ConflictsEviction += s.ConflictsEviction
		agg.LatencySamples += s.LatencySamples
		if s.LatencySamples > 0 && len(s.LatencyHist) == 0 {
			histless = true
		}
		h := HistFromCounts(s.LatencyHist)
		merged.Merge(&h)
		if s.LatencyP50 > agg.LatencyP50 {
			agg.LatencyP50 = s.LatencyP50
		}
		if s.LatencyP90 > agg.LatencyP90 {
			agg.LatencyP90 = s.LatencyP90
		}
		if s.LatencyP99 > agg.LatencyP99 {
			agg.LatencyP99 = s.LatencyP99
		}
	}
	if !histless && merged.Total() > 0 {
		agg.LatencyP50 = sim.Cycle(merged.Percentile(50))
		agg.LatencyP90 = sim.Cycle(merged.Percentile(90))
		agg.LatencyP99 = sim.Cycle(merged.Percentile(99))
		agg.LatencyHist = merged.Trimmed()
	}
	return agg
}
