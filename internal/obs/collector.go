package obs

import (
	"sort"
	"sync"

	"persistbarriers/internal/sim"
)

// CollectorRing is the default bound on retained persist-latency samples.
const CollectorRing = 8192

// ServiceStats is a point-in-time snapshot of a Collector.
type ServiceStats struct {
	Cycle sim.Cycle `json:"cycle"`

	Txs             uint64 `json:"txs"`
	EpochsOpened    uint64 `json:"epochs_opened"`
	EpochsPersisted uint64 `json:"epochs_persisted"`

	ConflictsIntra    uint64 `json:"conflicts_intra"`
	ConflictsInter    uint64 `json:"conflicts_inter"`
	ConflictsEviction uint64 `json:"conflicts_eviction"`

	// Persist latency (epoch completion to durability), in cycles, over
	// the retained sample window.
	LatencySamples int       `json:"latency_samples"`
	LatencyP50     sim.Cycle `json:"latency_p50"`
	LatencyP90     sim.Cycle `json:"latency_p90"`
	LatencyP99     sim.Cycle `json:"latency_p99"`
}

// EpochsPerKcycle is durable epochs per kilocycle — the engine's service
// throughput in simulated time.
func (s ServiceStats) EpochsPerKcycle() float64 {
	if s.Cycle == 0 {
		return 0
	}
	return float64(s.EpochsPersisted) / float64(s.Cycle) * 1000
}

// Collector is a Sink that folds the event stream into live serving
// metrics: epoch throughput, persist-latency percentiles, and conflict
// counts by kind. Unlike the Sampler it is safe for concurrent use — a
// server's stats endpoint reads Snapshot while the engine emits.
type Collector struct {
	mu sync.Mutex

	cycle sim.Cycle

	txs       uint64
	opened    uint64
	persisted uint64

	intra    uint64
	inter    uint64
	eviction uint64

	// completedAt holds completion cycles of epochs awaiting durability,
	// keyed by (core, epoch). Entries are consumed by the persist event.
	completedAt map[[2]int64]sim.Cycle

	// latencies is a bounded ring of complete->persist latencies.
	latencies []sim.Cycle
	next      int
	full      bool
	ring      int
}

// NewCollector builds a collector retaining up to ring latency samples
// (<= 0 selects CollectorRing).
func NewCollector(ring int) *Collector {
	if ring <= 0 {
		ring = CollectorRing
	}
	return &Collector{
		completedAt: make(map[[2]int64]sim.Cycle),
		latencies:   make([]sim.Cycle, 0, ring),
		ring:        ring,
	}
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Cycle > c.cycle {
		c.cycle = ev.Cycle
	}
	switch ev.Kind {
	case KTxRetired:
		c.txs++
	case KEpochOpen:
		c.opened++
	case KEpochComplete:
		c.completedAt[[2]int64{int64(ev.Core), ev.Epoch}] = ev.Cycle
	case KEpochPersist:
		c.persisted++
		key := [2]int64{int64(ev.Core), ev.Epoch}
		if done, ok := c.completedAt[key]; ok {
			delete(c.completedAt, key)
			c.push(ev.Cycle - done)
		}
	case KConflict:
		switch ev.Label {
		case ConflictIntra:
			c.intra++
		case ConflictInter:
			c.inter++
		case ConflictEviction:
			c.eviction++
		}
	}
}

func (c *Collector) push(lat sim.Cycle) {
	if len(c.latencies) < c.ring {
		c.latencies = append(c.latencies, lat)
		return
	}
	c.latencies[c.next] = lat
	c.next = (c.next + 1) % c.ring
	c.full = true
}

// Snapshot returns the current metrics.
func (c *Collector) Snapshot() ServiceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ServiceStats{
		Cycle:             c.cycle,
		Txs:               c.txs,
		EpochsOpened:      c.opened,
		EpochsPersisted:   c.persisted,
		ConflictsIntra:    c.intra,
		ConflictsInter:    c.inter,
		ConflictsEviction: c.eviction,
		LatencySamples:    len(c.latencies),
	}
	if len(c.latencies) > 0 {
		sorted := append([]sim.Cycle(nil), c.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.LatencyP50 = percentile(sorted, 50)
		s.LatencyP90 = percentile(sorted, 90)
		s.LatencyP99 = percentile(sorted, 99)
	}
	return s
}

// percentile picks the nearest-rank p-th percentile of a sorted slice.
func percentile(sorted []sim.Cycle, p int) sim.Cycle {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// AggregateServiceStats folds per-shard snapshots into one store-wide
// view: counters sum, Cycle is the furthest shard clock, and latency
// percentiles take the elementwise worst case (a conservative bound — the
// true pooled percentile needs the raw samples, which per-shard snapshots
// no longer carry).
func AggregateServiceStats(per []ServiceStats) ServiceStats {
	var agg ServiceStats
	for _, s := range per {
		if s.Cycle > agg.Cycle {
			agg.Cycle = s.Cycle
		}
		agg.Txs += s.Txs
		agg.EpochsOpened += s.EpochsOpened
		agg.EpochsPersisted += s.EpochsPersisted
		agg.ConflictsIntra += s.ConflictsIntra
		agg.ConflictsInter += s.ConflictsInter
		agg.ConflictsEviction += s.ConflictsEviction
		agg.LatencySamples += s.LatencySamples
		if s.LatencyP50 > agg.LatencyP50 {
			agg.LatencyP50 = s.LatencyP50
		}
		if s.LatencyP90 > agg.LatencyP90 {
			agg.LatencyP90 = s.LatencyP90
		}
		if s.LatencyP99 > agg.LatencyP99 {
			agg.LatencyP99 = s.LatencyP99
		}
	}
	return agg
}
