package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSamplerWindowRolling(t *testing.T) {
	p := NewProbe(NewSampler(0)) // exercise the default-window path too
	s := NewSampler(100)
	pr := NewProbe(s)

	pr.TxRetired(10, 0)
	pr.TxRetired(99, 1)
	pr.Conflict(50, ConflictIntra, 0, 1, 0, 0x40, ResolveOnline)
	// Cycle 100 starts the second window.
	pr.TxRetired(100, 0)
	pr.Conflict(150, ConflictInter, 0, 1, 1, 0x80, ResolveIDT)
	pr.IDTFallback(160, 0, 1, 1)
	// A gap of several windows: empty windows must still be materialized
	// so the time axis stays uniform.
	pr.PersistAck(420, 0x40, 0, 0)
	p.TxRetired(420, 0)

	ws := s.Windows()
	if len(ws) != 5 {
		t.Fatalf("got %d windows, want 5 (including 2 empty gap windows)", len(ws))
	}
	w0 := ws[0]
	if w0.Start != 0 || w0.Txs != 2 || w0.ConflictsIntra != 1 || w0.Conflicts() != 1 {
		t.Errorf("window 0 = %+v", w0)
	}
	if got := w0.ThroughputPerKcycle(); math.Abs(got-20) > 1e-12 {
		t.Errorf("window 0 throughput = %v, want 20/kcycle", got)
	}
	w1 := ws[1]
	if w1.Start != 100 || w1.Txs != 1 || w1.ConflictsInter != 1 || w1.IDTFallbacks != 1 {
		t.Errorf("window 1 = %+v", w1)
	}
	if ws[2].Conflicts() != 0 || ws[3].Txs != 0 {
		t.Errorf("gap windows not empty: %+v %+v", ws[2], ws[3])
	}
	w4 := ws[4]
	if w4.Start != 400 || w4.LinesPersisted != 1 {
		t.Errorf("window 4 = %+v", w4)
	}
}

func TestSamplerNVRAMWaitAvg(t *testing.T) {
	s := NewSampler(1000)
	p := NewProbe(s)
	p.NVRAMQueue(1, 0, 10)
	p.NVRAMQueue(2, 1, 30)
	ws := s.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %d", len(ws))
	}
	if got := ws[0].WaitAvg(); math.Abs(got-20) > 1e-12 {
		t.Errorf("WaitAvg = %v, want 20", got)
	}
	if (WindowStats{}).WaitAvg() != 0 {
		t.Error("empty WaitAvg should be 0")
	}
}

func TestSamplerEmptyExports(t *testing.T) {
	s := NewSampler(100)
	if ws := s.Windows(); len(ws) != 0 {
		t.Errorf("untouched sampler has %d windows, want 0", len(ws))
	}
	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n"); len(lines) != 1 {
		t.Errorf("empty CSV should be header-only, got %q", csv.String())
	}
}

func TestSamplerCSVAndJSONAgree(t *testing.T) {
	s := NewSampler(50)
	p := NewProbe(s)
	p.TxRetired(10, 0)
	p.TxRetired(60, 1)
	p.NoCMessage(70, 3, 2)

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 windows
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv.String())
	}
	cols := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(cols) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(cols), len(row))
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var ws []WindowStats
	if err := json.Unmarshal(js.Bytes(), &ws); err != nil {
		t.Fatalf("JSON export does not round-trip: %v", err)
	}
	if len(ws) != 2 || ws[0].Txs != 1 || ws[1].NoCFlits != 3 {
		t.Errorf("JSON windows = %+v", ws)
	}
}
