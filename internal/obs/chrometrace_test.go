package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"persistbarriers/internal/machine"
	"persistbarriers/internal/obs"
	"persistbarriers/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// traceEvent mirrors the Chrome trace-event array-format record; the
// golden test asserts the exporter's output parses into this shape.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// runTraced runs the golden workload (queue on LB++, 2 threads x 4 ops)
// with a ChromeTracer attached and returns the exported bytes plus the
// run result.
func runTraced(t *testing.T) ([]byte, *machine.Result) {
	t.Helper()
	tracer := obs.NewChromeTracer()
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Model = machine.LB
	cfg.IDT, cfg.PF = true, true
	cfg.Probe = obs.NewProbe(tracer)

	spec := workload.Spec{Threads: 2, OpsPerThread: 4, Seed: 7}
	p, err := workload.Microbenchmarks()["queue"](spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

func TestChromeTraceGolden(t *testing.T) {
	got, r := runTraced(t)

	golden := filepath.Join("testdata", "queue_lbpp.trace.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file %s (run with -update to regenerate)", golden)
	}

	var evs []traceEvent
	if err := json.Unmarshal(got, &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}

	// Phase vocabulary and format invariants.
	sawMeta := false
	var content []traceEvent
	for i, ev := range evs {
		switch ev.Ph {
		case "M":
			sawMeta = true
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("event %d: unknown metadata %q", i, ev.Name)
			}
			if ev.Args["name"] == "" {
				t.Errorf("event %d: metadata without a name arg", i)
			}
		case "X", "i", "C":
			content = append(content, ev)
			if ev.Ph == "i" && ev.S == "" {
				t.Errorf("event %d: instant without scope", i)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if !sawMeta {
		t.Error("no metadata events")
	}

	// Timestamps are monotone (nondecreasing) across content events.
	for i := 1; i < len(content); i++ {
		if content[i].Ts < content[i-1].Ts {
			t.Fatalf("content timestamps not monotone: %d after %d",
				content[i].Ts, content[i-1].Ts)
		}
	}

	// X spans on one (pid, tid) track must be disjoint or strictly
	// nested — Perfetto renders overlap as garbage.
	type track struct{ pid, tid int }
	spans := make(map[track][]traceEvent)
	for _, ev := range content {
		if ev.Ph == "X" {
			k := track{ev.Pid, ev.Tid}
			spans[k] = append(spans[k], ev)
		}
	}
	for k, ss := range spans {
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].Ts != ss[j].Ts {
				return ss[i].Ts < ss[j].Ts
			}
			return ss[i].Dur > ss[j].Dur // outer span first on ties
		})
		var stack []traceEvent
		for _, s := range ss {
			end := s.Ts + s.Dur
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= s.Ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				if outer := stack[len(stack)-1]; end > outer.Ts+outer.Dur {
					t.Fatalf("track %+v: span %q [%d,%d) overlaps %q [%d,%d)",
						k, s.Name, s.Ts, end, outer.Name, outer.Ts, outer.Ts+outer.Dur)
				}
			}
			stack = append(stack, s)
		}
	}

	// Every persisted epoch has exactly one finished epoch span.
	finished := 0
	for _, ev := range content {
		if ev.Ph == "X" && ev.Cat == "epoch" && ev.Args["unfinished"] == nil {
			if !strings.HasPrefix(ev.Name, "E") {
				t.Errorf("epoch span with unexpected name %q", ev.Name)
			}
			finished++
		}
	}
	if uint64(finished) != r.Epochs.Persisted {
		t.Errorf("finished epoch spans = %d, want Result.Epochs.Persisted = %d",
			finished, r.Epochs.Persisted)
	}
	if r.Epochs.Persisted == 0 {
		t.Error("golden run persisted no epochs — workload too small to exercise the tracer")
	}
}

// TestChromeTraceDeterministic runs the traced workload twice and
// requires byte-identical exports — the property the golden file (and
// every diff against it) depends on.
func TestChromeTraceDeterministic(t *testing.T) {
	a, _ := runTraced(t)
	b, _ := runTraced(t)
	if !bytes.Equal(a, b) {
		t.Error("two identical runs exported different traces")
	}
}
