// Hist is the power-of-two latency histogram shared by the Collector and
// AggregateServiceStats: bucket b counts values v with bits.Len64(v) ==
// b, so bucket 0 holds exactly 0 and bucket b>0 holds [2^(b-1), 2^b-1].
// Folding a sample is one increment (no sample retention, no sorting),
// and merging shard histograms is exact — bucket counts just add — which
// is what lets the aggregate view report true pooled percentiles instead
// of an elementwise worst case.
package obs

import "math/bits"

// HistBuckets bounds representable values at 2^47-1 (~10 minutes of
// simulated time at one cycle per unit; far beyond any persist latency).
const HistBuckets = 48

// Hist is a fixed-size pow-2 histogram. The zero value is empty and
// ready to use. Not safe for concurrent use; the Collector guards it
// with its mutex.
type Hist struct {
	Counts [HistBuckets]uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistBucketUpper reports bucket b's inclusive upper bound (0 for
// bucket 0). The last bucket is unbounded but reports its nominal bound.
func HistBucketUpper(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// Observe folds one value in.
func (h *Hist) Observe(v uint64) { h.Counts[histBucket(v)]++ }

// Merge adds o's counts into h (exact).
func (h *Hist) Merge(o *Hist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// Total reports the sample count.
func (h *Hist) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Percentile reports the inclusive upper bound of the bucket holding the
// nearest-rank p-th percentile sample (0 when empty). The rank
// convention matches percentile() on sorted slices: index
// ceil(n*p/100)-1.
func (h *Hist) Percentile(p int) uint64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	idx := (total*uint64(p) + 99) / 100
	if idx > 0 {
		idx--
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += h.Counts[b]
		if seen > idx {
			return HistBucketUpper(b)
		}
	}
	return HistBucketUpper(HistBuckets - 1)
}

// Trimmed returns a copy of the counts with trailing zero buckets
// dropped (nil when empty) — the compact JSON carrier ServiceStats
// embeds so aggregation can merge exactly.
func (h *Hist) Trimmed() []uint64 {
	top := -1
	for b := HistBuckets - 1; b >= 0; b-- {
		if h.Counts[b] != 0 {
			top = b
			break
		}
	}
	if top < 0 {
		return nil
	}
	out := make([]uint64, top+1)
	copy(out, h.Counts[:top+1])
	return out
}

// HistFromCounts rebuilds a Hist from a Trimmed slice (extra buckets
// beyond HistBuckets fold into the last one).
func HistFromCounts(counts []uint64) Hist {
	var h Hist
	for b, c := range counts {
		if b >= HistBuckets {
			h.Counts[HistBuckets-1] += c
			continue
		}
		h.Counts[b] += c
	}
	return h
}
