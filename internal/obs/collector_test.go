package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"persistbarriers/internal/sim"
)

func TestCollectorLatencyAndCounts(t *testing.T) {
	c := NewCollector(0)
	p := NewProbe(c)
	// Three epochs: complete at t, persist at t+lat. Percentiles are
	// pow-2 bucket upper bounds of the nearest-rank sample: 20 -> 31,
	// 300 -> 511.
	lats := []sim.Cycle{10, 20, 300}
	for i, lat := range lats {
		t0 := sim.Cycle(100 * (i + 1))
		p.EpochOpen(t0, 0, uint64(i))
		p.EpochComplete(t0, 0, uint64(i), "barrier", 4)
		p.EpochPersist(t0+lat, 0, uint64(i), "natural")
	}
	p.Conflict(700, ConflictInter, 1, 0, 2, 0x40, ResolveIDT)
	p.Conflict(710, ConflictIntra, 0, 0, 2, 0x40, ResolveOnline)
	p.TxRetired(720, 0)

	s := c.Snapshot()
	if s.EpochsOpened != 3 || s.EpochsPersisted != 3 {
		t.Fatalf("epochs: %+v", s)
	}
	if s.ConflictsInter != 1 || s.ConflictsIntra != 1 || s.ConflictsEviction != 0 {
		t.Fatalf("conflicts: %+v", s)
	}
	if s.Txs != 1 {
		t.Fatalf("txs: %+v", s)
	}
	if s.LatencySamples != 3 {
		t.Fatalf("latency samples: %+v", s)
	}
	if s.LatencyP50 != 31 {
		t.Fatalf("p50 = %d, want 31 (bucket of sample 20)", s.LatencyP50)
	}
	if s.LatencyP99 != 511 {
		t.Fatalf("p99 = %d, want 511 (bucket of sample 300)", s.LatencyP99)
	}
	if s.Cycle != 720 {
		t.Fatalf("cycle = %d, want 720", s.Cycle)
	}
	if len(s.LatencyHist) == 0 {
		t.Fatal("snapshot carries no histogram")
	}
	// 10 -> bucket 4, 20 -> bucket 5, 300 -> bucket 9.
	if s.LatencyHist[4] != 1 || s.LatencyHist[5] != 1 || s.LatencyHist[9] != 1 {
		t.Fatalf("hist = %v", s.LatencyHist)
	}
}

// TestCollectorJSONFieldsStable pins the snapshot's wire names: live
// clients parse the stats line, so a rename is a breaking change.
func TestCollectorJSONFieldsStable(t *testing.T) {
	c := NewCollector(0)
	p := NewProbe(c)
	p.EpochComplete(10, 0, 1, "barrier", 1)
	p.EpochPersist(22, 0, 1, "natural")
	raw, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"cycle"`, `"txs"`, `"epochs_opened"`, `"epochs_persisted"`,
		`"conflicts_intra"`, `"conflicts_inter"`, `"conflicts_eviction"`,
		`"latency_samples"`, `"latency_p50"`, `"latency_p90"`, `"latency_p99"`,
		`"latency_hist"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Fatalf("snapshot JSON missing %s: %s", field, raw)
		}
	}
}

// TestCollectorNoSampleLoss replaces the old ring-wraparound test: the
// histogram must keep every sample's weight long past the old ring
// bound, with percentiles computed over all of them.
func TestCollectorNoSampleLoss(t *testing.T) {
	c := NewCollector(4) // old implementations dropped to the last 4 samples
	p := NewProbe(c)
	// 10000 samples of latency 5, then 100 of latency 4000. A 4-sample
	// ring would see only the tail; the histogram keeps the full mix.
	for i := 0; i < 10000; i++ {
		p.EpochComplete(sim.Cycle(i*10), 0, uint64(i), "barrier", 1)
		p.EpochPersist(sim.Cycle(i*10+5), 0, uint64(i), "natural")
	}
	for i := 10000; i < 10100; i++ {
		p.EpochComplete(sim.Cycle(i*10), 0, uint64(i), "barrier", 1)
		p.EpochPersist(sim.Cycle(i*10+4000), 0, uint64(i), "natural")
	}
	s := c.Snapshot()
	if s.LatencySamples != 10100 {
		t.Fatalf("samples = %d, want 10100 (histogram must not drop)", s.LatencySamples)
	}
	if s.LatencyP50 != 7 {
		t.Fatalf("p50 = %d, want 7 (bucket of the dominant 5-cycle mass)", s.LatencyP50)
	}
	if s.LatencyP99 != 7 {
		t.Fatalf("p99 = %d: the 1%% tail must not capture p99 of 10100 samples", s.LatencyP99)
	}
	if s.EpochsPersisted != 10100 {
		t.Fatalf("persisted count: %d", s.EpochsPersisted)
	}
}

func TestCollectorPersistWithoutComplete(t *testing.T) {
	c := NewCollector(0)
	p := NewProbe(c)
	// A persist with no recorded completion (e.g. the sink attached
	// mid-run) must count but produce no latency sample.
	p.EpochPersist(50, 2, 7, "natural")
	s := c.Snapshot()
	if s.EpochsPersisted != 1 || s.LatencySamples != 0 {
		t.Fatalf("%+v", s)
	}
	if s.LatencyHist != nil {
		t.Fatalf("empty collector carries hist: %v", s.LatencyHist)
	}
}

func TestCollectorConcurrentSnapshot(t *testing.T) {
	c := NewCollector(64)
	p := NewProbe(c)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			c.Snapshot()
		}
	}()
	for i := 0; i < 1000; i++ {
		p.EpochComplete(sim.Cycle(i), 0, uint64(i), "barrier", 1)
		p.EpochPersist(sim.Cycle(i+1), 0, uint64(i), "natural")
	}
	wg.Wait()
	if got := c.Snapshot().EpochsPersisted; got != 1000 {
		t.Fatalf("persisted = %d", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []sim.Cycle{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %d", got)
	}
	if got := percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %d", got)
	}
	if got := percentile(sorted, 1); got != 1 {
		t.Fatalf("p1 = %d", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

// TestPercentileEdgeCases covers the degenerate shapes the nearest-rank
// rule must handle: a single sample answers every percentile, a tiny n
// still resolves p99 to the last sample, and all-equal samples answer
// with that value at every rank.
func TestPercentileEdgeCases(t *testing.T) {
	one := []sim.Cycle{42}
	for _, p := range []int{0, 1, 50, 99, 100} {
		if got := percentile(one, p); got != 42 {
			t.Fatalf("n=1 p%d = %d, want 42", p, got)
		}
	}
	tiny := []sim.Cycle{3, 9}
	if got := percentile(tiny, 99); got != 9 {
		t.Fatalf("n=2 p99 = %d, want 9 (last sample)", got)
	}
	if got := percentile(tiny, 50); got != 3 {
		t.Fatalf("n=2 p50 = %d, want 3", got)
	}
	equal := []sim.Cycle{7, 7, 7, 7, 7}
	for _, p := range []int{1, 50, 90, 99} {
		if got := percentile(equal, p); got != 7 {
			t.Fatalf("all-equal p%d = %d, want 7", p, got)
		}
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.Percentile(50) != 0 || h.Trimmed() != nil {
		t.Fatal("zero hist not empty")
	}
	h.Observe(0)
	h.Observe(1)
	h.Observe(20)
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[5] != 1 {
		t.Fatalf("counts = %v", h.Counts[:8])
	}
	if got := h.Percentile(50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Percentile(99); got != 31 {
		t.Fatalf("p99 = %d, want 31", got)
	}
	tr := h.Trimmed()
	if len(tr) != 6 {
		t.Fatalf("trimmed len = %d, want 6", len(tr))
	}
	back := HistFromCounts(tr)
	if back != h {
		t.Fatal("round-trip through Trimmed/HistFromCounts lost counts")
	}
	// Oversized input folds into the last bucket.
	big := make([]uint64, HistBuckets+5)
	big[HistBuckets+4] = 3
	if got := HistFromCounts(big); got.Counts[HistBuckets-1] != 3 {
		t.Fatal("overflow buckets must fold into the last bucket")
	}
}

// TestAggregateServiceStats: pooled percentiles over the merged
// histogram are exact — a shard with many fast samples pulls the pooled
// p50 down to its bucket, which the old elementwise-max rule could not
// represent.
func TestAggregateServiceStats(t *testing.T) {
	build := func(samples []uint64) ServiceStats {
		var h Hist
		for _, v := range samples {
			h.Observe(v)
		}
		return ServiceStats{
			LatencySamples: len(samples),
			LatencyP50:     sim.Cycle(h.Percentile(50)),
			LatencyP90:     sim.Cycle(h.Percentile(90)),
			LatencyP99:     sim.Cycle(h.Percentile(99)),
			LatencyHist:    h.Trimmed(),
		}
	}
	fast := make([]uint64, 90)
	for i := range fast {
		fast[i] = 10 // bucket 4, upper 15
	}
	slow := make([]uint64, 10)
	for i := range slow {
		slow[i] = 1000 // bucket 10, upper 1023
	}
	a := build(fast)
	a.Cycle, a.Txs, a.EpochsOpened, a.EpochsPersisted, a.ConflictsIntra = 100, 5, 4, 3, 1
	b := build(slow)
	b.Cycle, b.Txs, b.EpochsOpened, b.EpochsPersisted, b.ConflictsInter = 250, 7, 6, 5, 2

	agg := AggregateServiceStats([]ServiceStats{a, b})
	if agg.Cycle != 250 {
		t.Fatalf("Cycle = %d, want max 250", agg.Cycle)
	}
	if agg.Txs != 12 || agg.EpochsOpened != 10 || agg.EpochsPersisted != 8 {
		t.Fatalf("counters not summed: %+v", agg)
	}
	if agg.ConflictsIntra != 1 || agg.ConflictsInter != 2 {
		t.Fatalf("conflicts not summed: %+v", agg)
	}
	if agg.LatencySamples != 100 {
		t.Fatalf("LatencySamples = %d, want 100", agg.LatencySamples)
	}
	// Exact pooled percentiles: 90% of samples are fast, so pooled p50
	// and p90 sit in the fast bucket; only p99 reaches the slow one.
	// Elementwise-max would have reported p50 = 1023.
	if agg.LatencyP50 != 15 || agg.LatencyP90 != 15 {
		t.Fatalf("pooled p50/p90 = %d/%d, want 15/15", agg.LatencyP50, agg.LatencyP90)
	}
	if agg.LatencyP99 != 1023 {
		t.Fatalf("pooled p99 = %d, want 1023", agg.LatencyP99)
	}
	if len(agg.LatencyHist) == 0 {
		t.Fatal("aggregate lost the merged histogram")
	}
}

func TestAggregateServiceStatsDegenerate(t *testing.T) {
	if got := AggregateServiceStats(nil); len(got.LatencyHist) != 0 || got.LatencySamples != 0 || got.Cycle != 0 {
		t.Fatalf("empty aggregate = %+v, want zero", got)
	}
	if got := AggregateServiceStats([]ServiceStats{}); got.LatencyP50 != 0 {
		t.Fatalf("zero-shard aggregate = %+v, want zero", got)
	}
	// All-empty shards: no samples anywhere.
	got := AggregateServiceStats([]ServiceStats{{Cycle: 5}, {Cycle: 9}})
	if got.Cycle != 9 || got.LatencySamples != 0 || got.LatencyP99 != 0 {
		t.Fatalf("all-empty aggregate = %+v", got)
	}
	// A legacy snapshot with percentiles but no histogram falls back to
	// the elementwise worst case.
	legacy := AggregateServiceStats([]ServiceStats{
		{LatencySamples: 4, LatencyP50: 30, LatencyP90: 35, LatencyP99: 80},
		{LatencySamples: 10, LatencyP50: 20, LatencyP90: 40, LatencyP99: 90},
	})
	if legacy.LatencyP50 != 30 || legacy.LatencyP90 != 40 || legacy.LatencyP99 != 90 {
		t.Fatalf("legacy fallback = %+v", legacy)
	}
}
