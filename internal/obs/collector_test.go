package obs

import (
	"sync"
	"testing"

	"persistbarriers/internal/sim"
)

func TestCollectorLatencyAndCounts(t *testing.T) {
	c := NewCollector(0)
	p := NewProbe(c)
	// Three epochs: complete at t, persist at t+lat.
	lats := []sim.Cycle{10, 20, 300}
	for i, lat := range lats {
		t0 := sim.Cycle(100 * (i + 1))
		p.EpochOpen(t0, 0, uint64(i))
		p.EpochComplete(t0, 0, uint64(i), "barrier", 4)
		p.EpochPersist(t0+lat, 0, uint64(i), "natural")
	}
	p.Conflict(700, ConflictInter, 1, 0, 2, 0x40, ResolveIDT)
	p.Conflict(710, ConflictIntra, 0, 0, 2, 0x40, ResolveOnline)
	p.TxRetired(720, 0)

	s := c.Snapshot()
	if s.EpochsOpened != 3 || s.EpochsPersisted != 3 {
		t.Fatalf("epochs: %+v", s)
	}
	if s.ConflictsInter != 1 || s.ConflictsIntra != 1 || s.ConflictsEviction != 0 {
		t.Fatalf("conflicts: %+v", s)
	}
	if s.Txs != 1 {
		t.Fatalf("txs: %+v", s)
	}
	if s.LatencySamples != 3 {
		t.Fatalf("latency samples: %+v", s)
	}
	if s.LatencyP50 != 20 {
		t.Fatalf("p50 = %d, want 20", s.LatencyP50)
	}
	if s.LatencyP99 != 300 {
		t.Fatalf("p99 = %d, want 300", s.LatencyP99)
	}
	if s.Cycle != 720 {
		t.Fatalf("cycle = %d, want 720", s.Cycle)
	}
}

func TestCollectorRingBounds(t *testing.T) {
	c := NewCollector(4)
	p := NewProbe(c)
	for i := 0; i < 100; i++ {
		p.EpochComplete(sim.Cycle(i*10), 0, uint64(i), "barrier", 1)
		p.EpochPersist(sim.Cycle(i*10+5), 0, uint64(i), "natural")
	}
	s := c.Snapshot()
	if s.LatencySamples != 4 {
		t.Fatalf("ring grew past bound: %d", s.LatencySamples)
	}
	if s.EpochsPersisted != 100 {
		t.Fatalf("persisted count: %d", s.EpochsPersisted)
	}
}

func TestCollectorPersistWithoutComplete(t *testing.T) {
	c := NewCollector(0)
	p := NewProbe(c)
	// A persist with no recorded completion (e.g. the sink attached
	// mid-run) must count but produce no latency sample.
	p.EpochPersist(50, 2, 7, "natural")
	s := c.Snapshot()
	if s.EpochsPersisted != 1 || s.LatencySamples != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestCollectorConcurrentSnapshot(t *testing.T) {
	c := NewCollector(64)
	p := NewProbe(c)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			c.Snapshot()
		}
	}()
	for i := 0; i < 1000; i++ {
		p.EpochComplete(sim.Cycle(i), 0, uint64(i), "barrier", 1)
		p.EpochPersist(sim.Cycle(i+1), 0, uint64(i), "natural")
	}
	wg.Wait()
	if got := c.Snapshot().EpochsPersisted; got != 1000 {
		t.Fatalf("persisted = %d", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []sim.Cycle{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %d", got)
	}
	if got := percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %d", got)
	}
	if got := percentile(sorted, 1); got != 1 {
		t.Fatalf("p1 = %d", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestAggregateServiceStats(t *testing.T) {
	per := []ServiceStats{
		{Cycle: 100, Txs: 5, EpochsOpened: 4, EpochsPersisted: 3, ConflictsIntra: 1,
			LatencySamples: 10, LatencyP50: 20, LatencyP90: 40, LatencyP99: 90},
		{Cycle: 250, Txs: 7, EpochsOpened: 6, EpochsPersisted: 5, ConflictsInter: 2,
			LatencySamples: 4, LatencyP50: 30, LatencyP90: 35, LatencyP99: 80},
	}
	agg := AggregateServiceStats(per)
	if agg.Cycle != 250 {
		t.Fatalf("Cycle = %d, want max 250", agg.Cycle)
	}
	if agg.Txs != 12 || agg.EpochsOpened != 10 || agg.EpochsPersisted != 8 {
		t.Fatalf("counters not summed: %+v", agg)
	}
	if agg.ConflictsIntra != 1 || agg.ConflictsInter != 2 {
		t.Fatalf("conflicts not summed: %+v", agg)
	}
	if agg.LatencySamples != 14 {
		t.Fatalf("LatencySamples = %d, want 14", agg.LatencySamples)
	}
	if agg.LatencyP50 != 30 || agg.LatencyP90 != 40 || agg.LatencyP99 != 90 {
		t.Fatalf("percentiles not elementwise max: %+v", agg)
	}
	if got := AggregateServiceStats(nil); got != (ServiceStats{}) {
		t.Fatalf("empty aggregate = %+v, want zero", got)
	}
}
