package obs

import "testing"

// recorder is a Sink that remembers every event.
type recorder struct{ evs []Event }

func (r *recorder) Emit(ev Event) { r.evs = append(r.evs, ev) }

// TestNilProbeSafe exercises every Probe method on a nil receiver — the
// disabled-instrumentation configuration every component ships with.
func TestNilProbeSafe(t *testing.T) {
	var p *Probe
	if p.Active() {
		t.Fatal("nil probe reports active")
	}
	p.EpochOpen(1, 0, 0)
	p.EpochComplete(1, 0, 0, "barrier", 3)
	p.EpochSplit(1, 0, 0)
	p.EpochFlushStart(1, 0, 0, "intra")
	p.EpochPersist(1, 0, 0, "natural")
	p.Conflict(1, ConflictIntra, 0, 1, 2, 0x40, ResolveOnline)
	p.IDTFallback(1, 0, 1, 2)
	p.BankFlushStart(1, 0, 0, 0, 4)
	p.BankAck(1, 0, 0, 0)
	p.PersistAck(1, 0x40, 0, 0)
	p.TxRetired(1, 0)
	p.NVRAMQueue(1, 0, 12)
	p.NoCMessage(1, 2, 3)
}

func TestEmptyProbeInactive(t *testing.T) {
	p := NewProbe()
	if p.Active() {
		t.Error("sinkless probe reports active")
	}
	p.TxRetired(1, 0) // must not panic
	if p2 := NewProbe(nil, nil); p2.Active() {
		t.Error("probe of nil sinks reports active")
	}
}

func TestProbeFanOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	p := NewProbe(a, nil, b)
	if !p.Active() {
		t.Fatal("probe with sinks not active")
	}
	p.Conflict(7, ConflictInter, 2, 5, 9, 0x80, ResolveIDT)
	p.PersistAck(8, 0xc0, -1, 0)
	for _, r := range []*recorder{a, b} {
		if len(r.evs) != 2 {
			t.Fatalf("sink saw %d events, want 2", len(r.evs))
		}
		c := r.evs[0]
		if c.Kind != KConflict || c.Cycle != 7 || c.Core != 2 ||
			c.SrcCore != 5 || c.SrcEpoch != 9 || c.Line != 0x80 ||
			c.Label != ConflictInter || c.Detail != ResolveIDT {
			t.Errorf("conflict event = %+v", c)
		}
		pa := r.evs[1]
		if pa.Kind != KPersistAck || pa.Core != -1 || pa.Epoch != -1 {
			t.Errorf("untracked persist-ack should keep -1 sentinels: %+v", pa)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s == "kind(?)" {
			t.Errorf("Kind(%d) has no String", k)
		}
	}
	if numKinds.String() != "kind(?)" {
		t.Error("out-of-range Kind should stringify as kind(?)")
	}
}
