package noc

import (
	"testing"
	"testing/quick"

	"persistbarriers/internal/sim"
)

func mustMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Rows: 0, Cols: 4, PerHopCycles: 1}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(Config{Rows: 4, Cols: -1, PerHopCycles: 1}); err == nil {
		t.Error("negative cols accepted")
	}
	if _, err := New(Config{Rows: 4, Cols: 8}); err == nil {
		t.Error("zero per-hop latency accepted")
	}
}

func TestDefaultMeshGeometry(t *testing.T) {
	m := mustMesh(t)
	if m.Tiles() != 32 {
		t.Fatalf("Tiles = %d, want 32 (4x8 mesh)", m.Tiles())
	}
	if got := m.TileOf(0); got != (Tile{0, 0}) {
		t.Errorf("TileOf(0) = %v", got)
	}
	if got := m.TileOf(31); got != (Tile{3, 7}) {
		t.Errorf("TileOf(31) = %v", got)
	}
	if got := m.TileOf(9); got != (Tile{1, 1}) {
		t.Errorf("TileOf(9) = %v", got)
	}
}

func TestTileOfPanicsOutOfRange(t *testing.T) {
	m := mustMesh(t)
	defer func() {
		if recover() == nil {
			t.Error("TileOf(32) did not panic")
		}
	}()
	m.TileOf(32)
}

func TestHops(t *testing.T) {
	cases := []struct {
		a, b Tile
		want int
	}{
		{Tile{0, 0}, Tile{0, 0}, 0},
		{Tile{0, 0}, Tile{0, 7}, 7},
		{Tile{0, 0}, Tile{3, 7}, 10},
		{Tile{2, 3}, Tile{1, 5}, 3},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsIsSymmetricAndTriangular(t *testing.T) {
	f := func(ar, ac, br, bc, cr, cc uint8) bool {
		a := Tile{int(ar % 4), int(ac % 8)}
		b := Tile{int(br % 4), int(bc % 8)}
		c := Tile{int(cr % 4), int(cc % 8)}
		if Hops(a, b) != Hops(b, a) {
			return false
		}
		return Hops(a, c) <= Hops(a, b)+Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyGrowsWithDistanceAndPayload(t *testing.T) {
	m := mustMesh(t)
	near := m.Latency(Tile{0, 0}, Tile{0, 1}, 0)
	far := m.Latency(Tile{0, 0}, Tile{3, 7}, 0)
	if far <= near {
		t.Errorf("far latency %d not greater than near %d", far, near)
	}
	small := m.Latency(Tile{0, 0}, Tile{0, 1}, 8)
	big := m.Latency(Tile{0, 0}, Tile{0, 1}, 64)
	if big <= small {
		t.Errorf("64B payload latency %d not greater than 8B %d", big, small)
	}
}

func TestLatencyControlMessage(t *testing.T) {
	m := mustMesh(t)
	// 1 hop, control message: router(1) + 1 hop * 2 + 0 body flits = 3.
	if got := m.Latency(Tile{0, 0}, Tile{0, 1}, 0); got != 3 {
		t.Errorf("control-message latency = %d, want 3", got)
	}
	// 64B line: 1 head + 4 body flits.
	if got := m.Latency(Tile{0, 0}, Tile{0, 1}, 64); got != 7 {
		t.Errorf("line-transfer latency = %d, want 7", got)
	}
}

func TestSelfMessageStillPaysRouter(t *testing.T) {
	m := mustMesh(t)
	if got := m.Latency(Tile{1, 1}, Tile{1, 1}, 0); got != 1 {
		t.Errorf("self latency = %d, want router overhead 1", got)
	}
}

func TestBroadcastLatencyIsWorstLeaf(t *testing.T) {
	m := mustMesh(t)
	src := Tile{0, 0}
	dsts := []Tile{{0, 1}, {3, 7}, {1, 1}}
	want := sim.Cycle(0)
	probe, _ := New(DefaultConfig())
	for _, d := range dsts {
		if l := probe.Latency(src, d, 0); l > want {
			want = l
		}
	}
	if got := m.BroadcastLatency(src, dsts, 0); got != want {
		t.Errorf("broadcast latency = %d, want %d", got, want)
	}
}

func TestBroadcastLatencyEmpty(t *testing.T) {
	m := mustMesh(t)
	if got := m.BroadcastLatency(Tile{0, 0}, nil, 0); got != 0 {
		t.Errorf("empty broadcast latency = %d, want 0", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := mustMesh(t)
	m.Latency(Tile{0, 0}, Tile{0, 2}, 64) // 2 hops, 5 flits
	m.Latency(Tile{0, 0}, Tile{0, 0}, 0)  // 0 hops, 1 flit
	s := m.Stats()
	if s.Messages != 2 {
		t.Errorf("Messages = %d, want 2", s.Messages)
	}
	if s.Flits != 6 {
		t.Errorf("Flits = %d, want 6", s.Flits)
	}
	if s.AvgHops != 1.0 {
		t.Errorf("AvgHops = %v, want 1.0", s.AvgHops)
	}
}
