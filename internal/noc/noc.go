// Package noc models the on-chip interconnection network: a 2D mesh of
// tiles carrying cores, LLC bank slices, and memory controllers (the
// Garnet-modelled network in the paper's methodology, Table 1: 2D mesh,
// 4 rows, 16-byte flits).
//
// The model is analytic rather than flit-level: a message's delivery
// latency is router-pipeline delay per hop plus serialization of its flits.
// Contention inside the mesh is not modelled (the dominant queuing effects
// for this study happen at the memory controllers, which are modelled with
// queues in package nvram); this substitution is documented in DESIGN.md.
package noc

import (
	"fmt"

	"persistbarriers/internal/obs"
	"persistbarriers/internal/sim"
)

// FlitBytes is the mesh link width (Table 1: 16-byte flits).
const FlitBytes = 16

// Tile is a coordinate on the mesh.
type Tile struct {
	Row, Col int
}

// String implements fmt.Stringer.
func (t Tile) String() string { return fmt.Sprintf("tile(%d,%d)", t.Row, t.Col) }

// Config describes a mesh geometry and its router timing.
type Config struct {
	Rows, Cols int
	// PerHopCycles is the router pipeline + link traversal cost per hop.
	PerHopCycles sim.Cycle
	// RouterCycles is the fixed injection/ejection overhead per message.
	RouterCycles sim.Cycle
}

// DefaultConfig matches the paper's 32-tile mesh: 4 rows x 8 columns.
func DefaultConfig() Config {
	return Config{Rows: 4, Cols: 8, PerHopCycles: 2, RouterCycles: 1}
}

// Mesh computes message latencies over a 2D mesh and accounts traffic.
type Mesh struct {
	cfg Config

	// Traffic accounting.
	messages uint64
	flits    uint64
	hopSum   uint64

	// Observability: per-message traffic events. clock supplies the
	// simulated time (the mesh itself holds no engine reference).
	probe *obs.Probe
	clock func() sim.Cycle
}

// AttachProbe installs an observability probe; clock supplies the
// current simulated cycle for emitted traffic events.
func (m *Mesh) AttachProbe(p *obs.Probe, clock func() sim.Cycle) {
	m.probe = p
	m.clock = clock
}

// New validates cfg and returns a Mesh.
func New(cfg Config) (*Mesh, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("noc: mesh dimensions must be positive, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.PerHopCycles == 0 {
		return nil, fmt.Errorf("noc: PerHopCycles must be nonzero")
	}
	return &Mesh{cfg: cfg}, nil
}

// Tiles reports the number of tiles in the mesh.
func (m *Mesh) Tiles() int { return m.cfg.Rows * m.cfg.Cols }

// TileOf maps a dense node index (0..Tiles-1) to its coordinate, row-major.
func (m *Mesh) TileOf(node int) Tile {
	if node < 0 || node >= m.Tiles() {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", node, m.Tiles()))
	}
	return Tile{Row: node / m.cfg.Cols, Col: node % m.cfg.Cols}
}

// Hops returns the Manhattan distance between two tiles (XY routing).
func Hops(a, b Tile) int {
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// flitsFor returns the flit count for a payload of the given bytes; every
// message carries at least one (head) flit.
func flitsFor(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 1
	}
	return 1 + (payloadBytes+FlitBytes-1)/FlitBytes
}

// Latency returns the delivery latency for a message of payloadBytes from
// tile a to tile b, and records the traffic.
func (m *Mesh) Latency(a, b Tile, payloadBytes int) sim.Cycle {
	hops := Hops(a, b)
	fl := flitsFor(payloadBytes)
	m.messages++
	m.flits += uint64(fl)
	m.hopSum += uint64(hops)
	if m.probe.Active() && m.clock != nil {
		m.probe.NoCMessage(m.clock(), fl, hops)
	}
	// Head flit pays the route; body flits pipeline behind it.
	return m.cfg.RouterCycles + sim.Cycle(hops)*m.cfg.PerHopCycles + sim.Cycle(fl-1)
}

// BroadcastLatency returns the time for a message from src to reach every
// tile in dsts (the slowest leaf), modelling the arbiter's FlushEpoch and
// PersistCMP broadcasts. Traffic is accounted per destination.
func (m *Mesh) BroadcastLatency(src Tile, dsts []Tile, payloadBytes int) sim.Cycle {
	var worst sim.Cycle
	for _, d := range dsts {
		if l := m.Latency(src, d, payloadBytes); l > worst {
			worst = l
		}
	}
	return worst
}

// Stats is a snapshot of accumulated traffic.
type Stats struct {
	Messages uint64
	Flits    uint64
	AvgHops  float64
}

// Stats returns the traffic accounted so far.
func (m *Mesh) Stats() Stats {
	s := Stats{Messages: m.messages, Flits: m.flits}
	if m.messages > 0 {
		s.AvgHops = float64(m.hopSum) / float64(m.messages)
	}
	return s
}
