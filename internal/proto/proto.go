// Package proto is pmkvd's pipelined binary wire protocol: length-
// prefixed frames carrying client-chosen request ids, so one connection
// can keep many requests in flight and receive their responses out of
// order — the transport analogue of the paper's pipelined epochs, which
// overlap the persist latency of batch k with the execution of batch
// k+1. The JSON line protocol costs a write+read syscall pair per
// operation and bounds any connection to one in-flight request; this
// protocol amortizes both: requests batch into one socket write, and a
// response is keyed by id rather than by position, so the server acks
// each operation the moment its shard's durable watermark covers it.
//
// Frame layout (all integers little-endian):
//
//	frame    := magic(1) | len(4) | payload(len)
//	magic    =  0xB1 request, 0xB2 response
//
//	request  := id(8) | opcode(1) | body
//	  GET  (1): klen(2) key
//	  PUT  (2): klen(2) key vlen(4) value
//	  DEL  (3): klen(2) key
//	  MGET (4): n(2) n x ( klen(2) key )
//	  MSET (5): n(2) n x ( klen(2) key vlen(4) value )
//
//	response := id(8) | flags(1) | body
//	  flags: 0x01 OK, 0x02 crashed, 0x04 error, 0x08 multi
//	  error body : elen(2) message            (flags has 0x04)
//	  single body: rflags(1) [ vlen(4) value ] (one op)
//	  multi body : n(2) n x ( rflags(1) [ vlen(4) value ] )
//	  rflags: 0x01 found, 0x02 value follows
//
// The request magic has its high bit set, so the first byte of a binary
// connection is distinguishable from any JSON line ('{' = 0x7B or
// whitespace): pmkvd auto-detects the protocol per connection by peeking
// one byte, and JSON-line clients keep working unchanged.
//
// The decoder and encoder are zero-allocation at steady state: parsing
// sub-slices the frame payload into caller-reused key/value slice
// headers, and encoding appends into a caller-owned buffer — both
// guarded by AllocsPerRun tests, the same discipline as internal/wire's
// JSON response encoder.
package proto

import (
	"encoding/binary"
	"fmt"
)

// Frame magics. FrameRequest's high bit doubles as the protocol
// auto-detection signal.
const (
	FrameRequest  byte = 0xB1
	FrameResponse byte = 0xB2
)

// Opcode enumerates request operations.
type Opcode uint8

const (
	OpGet  Opcode = 1
	OpPut  Opcode = 2
	OpDel  Opcode = 3
	OpMGet Opcode = 4
	OpMSet Opcode = 5
)

// String implements fmt.Stringer (the names match the JSON protocol's op
// strings for the tracer's Meta.Op field).
func (o Opcode) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpMGet:
		return "mget"
	case OpMSet:
		return "mset"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Multi reports whether the opcode carries multiple keyed operations.
func (o Opcode) Multi() bool { return o == OpMGet || o == OpMSet }

// Wire limits. Violations are protocol errors: the peer is malformed or
// hostile, and the connection should be closed.
const (
	// MaxKey bounds one key (the u16 length field's ceiling).
	MaxKey = 1<<16 - 1
	// MaxValue bounds one value.
	MaxValue = 1 << 20
	// MaxOpsPerFrame bounds MGET/MSET fan-out.
	MaxOpsPerFrame = 1024
	// MaxPayload bounds one frame's payload.
	MaxPayload = 1 << 24
)

// Response flag bits.
const (
	flagOK      = 0x01
	flagCrashed = 0x02
	flagError   = 0x04
	flagMulti   = 0x08

	rflagFound = 0x01
	rflagValue = 0x02
)

// Request is one decoded request frame. Keys and Vals are parallel:
// Vals[i] is nil for ops that carry no value (GET/DEL/MGET). The slices
// sub-slice the frame payload — they are valid only until the payload
// buffer is reused — and their backing arrays are reused across
// ParseRequest calls on the same Request, so steady-state decoding does
// not allocate.
type Request struct {
	ID   uint64
	Op   Opcode
	Keys [][]byte
	Vals [][]byte
}

// Result is one operation's outcome inside a response.
type Result struct {
	Found bool
	// HasValue reports whether a value field follows (GET hits). It
	// mirrors the JSON protocol's omitempty: an empty value is encoded as
	// absent.
	HasValue bool
	Value    []byte
}

// Response is one decoded (or to-be-encoded) response frame. When Err is
// non-empty the response is an error reply and Results is ignored; when
// Multi is set Results holds one entry per requested op; otherwise
// Results[0] answers the single op.
type Response struct {
	ID      uint64
	OK      bool
	Crashed bool
	Multi   bool
	Err     string
	Results []Result
}

// le is the wire byte order.
var le = binary.LittleEndian
