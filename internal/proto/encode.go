// Frame encoders. Every encoder appends a complete frame (magic, length,
// payload) to a caller-owned buffer and returns the extended slice; none
// allocates beyond growing dst, so a connection that reuses its buffer
// encodes for free at steady state.
package proto

// appendFrameHeader reserves the magic+length header and returns the
// payload start offset; patchFrameLen back-fills the length once the
// payload is complete.
func appendFrameHeader(dst []byte, magic byte) ([]byte, int) {
	dst = append(dst, magic, 0, 0, 0, 0)
	return dst, len(dst)
}

func patchFrameLen(dst []byte, payloadStart int) []byte {
	le.PutUint32(dst[payloadStart-4:payloadStart], uint32(len(dst)-payloadStart))
	return dst
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendGet appends a GET request frame.
func AppendGet(dst []byte, id uint64, key []byte) []byte {
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, id)
	dst = append(dst, byte(OpGet))
	dst = appendU16(dst, uint16(len(key)))
	dst = append(dst, key...)
	return patchFrameLen(dst, start)
}

// AppendPut appends a PUT request frame.
func AppendPut(dst []byte, id uint64, key, value []byte) []byte {
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, id)
	dst = append(dst, byte(OpPut))
	dst = appendU16(dst, uint16(len(key)))
	dst = append(dst, key...)
	dst = appendU32(dst, uint32(len(value)))
	dst = append(dst, value...)
	return patchFrameLen(dst, start)
}

// AppendDel appends a DEL request frame.
func AppendDel(dst []byte, id uint64, key []byte) []byte {
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, id)
	dst = append(dst, byte(OpDel))
	dst = appendU16(dst, uint16(len(key)))
	dst = append(dst, key...)
	return patchFrameLen(dst, start)
}

// AppendMGet appends an MGET request frame over keys.
func AppendMGet(dst []byte, id uint64, keys [][]byte) []byte {
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, id)
	dst = append(dst, byte(OpMGet))
	dst = appendU16(dst, uint16(len(keys)))
	for _, k := range keys {
		dst = appendU16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	return patchFrameLen(dst, start)
}

// AppendMSet appends an MSET request frame over parallel keys/vals.
func AppendMSet(dst []byte, id uint64, keys, vals [][]byte) []byte {
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, id)
	dst = append(dst, byte(OpMSet))
	dst = appendU16(dst, uint16(len(keys)))
	for i, k := range keys {
		dst = appendU16(dst, uint16(len(k)))
		dst = append(dst, k...)
		dst = appendU32(dst, uint32(len(vals[i])))
		dst = append(dst, vals[i]...)
	}
	return patchFrameLen(dst, start)
}

// AppendRequest appends r as a request frame (the generic form of the
// typed appenders; used by tests and the differential fuzzer).
func AppendRequest(dst []byte, r *Request) []byte {
	switch r.Op {
	case OpGet:
		return AppendGet(dst, r.ID, r.Keys[0])
	case OpPut:
		return AppendPut(dst, r.ID, r.Keys[0], r.Vals[0])
	case OpDel:
		return AppendDel(dst, r.ID, r.Keys[0])
	case OpMGet:
		return AppendMGet(dst, r.ID, r.Keys)
	case OpMSet:
		return AppendMSet(dst, r.ID, r.Keys, r.Vals)
	}
	// Unknown opcodes still frame (the server answers them with an error
	// response), keyless.
	dst, start := appendFrameHeader(dst, FrameRequest)
	dst = appendU64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	return patchFrameLen(dst, start)
}

// AppendResponse appends r as a response frame.
func AppendResponse(dst []byte, r *Response) []byte {
	dst, start := appendFrameHeader(dst, FrameResponse)
	dst = appendU64(dst, r.ID)
	var flags byte
	if r.OK {
		flags |= flagOK
	}
	if r.Crashed {
		flags |= flagCrashed
	}
	if r.Err != "" {
		flags |= flagError
	} else if r.Multi {
		flags |= flagMulti
	}
	dst = append(dst, flags)
	switch {
	case r.Err != "":
		dst = appendU16(dst, uint16(len(r.Err)))
		dst = append(dst, r.Err...)
	case r.Multi:
		dst = appendU16(dst, uint16(len(r.Results)))
		for i := range r.Results {
			dst = appendResult(dst, &r.Results[i])
		}
	default:
		if len(r.Results) > 0 {
			dst = appendResult(dst, &r.Results[0])
		} else {
			var zero Result
			dst = appendResult(dst, &zero)
		}
	}
	return patchFrameLen(dst, start)
}

func appendResult(dst []byte, res *Result) []byte {
	var rf byte
	if res.Found {
		rf |= rflagFound
	}
	if res.HasValue {
		rf |= rflagValue
	}
	dst = append(dst, rf)
	if res.HasValue {
		dst = appendU32(dst, uint32(len(res.Value)))
		dst = append(dst, res.Value...)
	}
	return dst
}
