// Frame decoders. FrameReader pulls whole frames off a buffered reader
// into one reused payload buffer; ParseRequest and ParseResponse then
// sub-slice that payload into caller-reused structs. Both sides are
// total: any byte stream either parses or returns a typed error — no
// input panics — and malformed frames are protocol errors that close the
// connection (length-prefixed framing makes resync after corruption
// meaningless).
package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Protocol errors. ErrBadMagic and friends wrap into the error returned
// to callers; all are terminal for the connection.
var (
	ErrBadMagic   = errors.New("proto: bad frame magic")
	ErrFrameSize  = errors.New("proto: frame exceeds MaxPayload")
	ErrTruncated  = errors.New("proto: truncated payload")
	ErrBadOpcode  = errors.New("proto: unknown opcode")
	ErrLimits     = errors.New("proto: field exceeds wire limits")
	ErrTrailing   = errors.New("proto: trailing bytes after body")
	ErrEmptyMulti = errors.New("proto: multi frame with zero ops")
)

// FrameReader reads frames off a buffered connection into a reused
// buffer. The payload returned by Next is valid only until the following
// Next call.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	hdr [5]byte
}

// NewFrameReader wraps r.
func NewFrameReader(r *bufio.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads one frame, returning its magic byte and payload. io.EOF is
// returned bare at a clean frame boundary; a partial frame surfaces as
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (byte, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:1]); err != nil {
		return 0, nil, err
	}
	magic := fr.hdr[0]
	if magic != FrameRequest && magic != FrameResponse {
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrBadMagic, magic)
	}
	if _, err := io.ReadFull(fr.r, fr.hdr[1:5]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := le.Uint32(fr.hdr[1:5])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return magic, fr.buf, nil
}

// cursor walks a payload with bounds checking.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remain() int { return len(c.b) - c.off }

func (c *cursor) u8() (byte, bool) {
	if c.remain() < 1 {
		return 0, false
	}
	v := c.b[c.off]
	c.off++
	return v, true
}

func (c *cursor) u16() (uint16, bool) {
	if c.remain() < 2 {
		return 0, false
	}
	v := le.Uint16(c.b[c.off:])
	c.off += 2
	return v, true
}

func (c *cursor) u32() (uint32, bool) {
	if c.remain() < 4 {
		return 0, false
	}
	v := le.Uint32(c.b[c.off:])
	c.off += 4
	return v, true
}

func (c *cursor) u64() (uint64, bool) {
	if c.remain() < 8 {
		return 0, false
	}
	v := le.Uint64(c.b[c.off:])
	c.off += 8
	return v, true
}

func (c *cursor) bytes(n int) ([]byte, bool) {
	if n < 0 || c.remain() < n {
		return nil, false
	}
	v := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return v, true
}

// key reads a u16-length-prefixed key.
func (c *cursor) key() ([]byte, error) {
	n, ok := c.u16()
	if !ok {
		return nil, ErrTruncated
	}
	k, ok := c.bytes(int(n))
	if !ok {
		return nil, ErrTruncated
	}
	return k, nil
}

// value reads a u32-length-prefixed value, enforcing MaxValue.
func (c *cursor) value() ([]byte, error) {
	n, ok := c.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if n > MaxValue {
		return nil, fmt.Errorf("%w: value %d bytes", ErrLimits, n)
	}
	v, ok := c.bytes(int(n))
	if !ok {
		return nil, ErrTruncated
	}
	return v, nil
}

// ParseRequest decodes a request payload into req, reusing req's Keys
// and Vals backing arrays. The sub-slices alias payload.
func ParseRequest(payload []byte, req *Request) error {
	c := cursor{b: payload}
	id, ok := c.u64()
	if !ok {
		return ErrTruncated
	}
	opb, ok := c.u8()
	if !ok {
		return ErrTruncated
	}
	req.ID = id
	req.Op = Opcode(opb)
	req.Keys = req.Keys[:0]
	req.Vals = req.Vals[:0]
	switch req.Op {
	case OpGet, OpDel:
		k, err := c.key()
		if err != nil {
			return err
		}
		req.Keys = append(req.Keys, k)
		req.Vals = append(req.Vals, nil)
	case OpPut:
		k, err := c.key()
		if err != nil {
			return err
		}
		v, err := c.value()
		if err != nil {
			return err
		}
		req.Keys = append(req.Keys, k)
		req.Vals = append(req.Vals, v)
	case OpMGet, OpMSet:
		n, ok := c.u16()
		if !ok {
			return ErrTruncated
		}
		if n == 0 {
			return ErrEmptyMulti
		}
		if int(n) > MaxOpsPerFrame {
			return fmt.Errorf("%w: %d ops per frame", ErrLimits, n)
		}
		for i := 0; i < int(n); i++ {
			k, err := c.key()
			if err != nil {
				return err
			}
			var v []byte
			if req.Op == OpMSet {
				if v, err = c.value(); err != nil {
					return err
				}
			}
			req.Keys = append(req.Keys, k)
			req.Vals = append(req.Vals, v)
		}
	default:
		return fmt.Errorf("%w: %d", ErrBadOpcode, opb)
	}
	if c.remain() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, c.remain())
	}
	return nil
}

// ParseResponse decodes a response payload into resp, reusing resp's
// Results backing array. Value sub-slices alias payload.
func ParseResponse(payload []byte, resp *Response) error {
	c := cursor{b: payload}
	id, ok := c.u64()
	if !ok {
		return ErrTruncated
	}
	flags, ok := c.u8()
	if !ok {
		return ErrTruncated
	}
	resp.ID = id
	resp.OK = flags&flagOK != 0
	resp.Crashed = flags&flagCrashed != 0
	resp.Multi = flags&flagMulti != 0
	resp.Err = ""
	resp.Results = resp.Results[:0]
	switch {
	case flags&flagError != 0:
		// An error reply carries only the message; a multi bit alongside
		// the error bit is meaningless and is dropped.
		resp.Multi = false
		n, ok := c.u16()
		if !ok {
			return ErrTruncated
		}
		e, ok := c.bytes(int(n))
		if !ok {
			return ErrTruncated
		}
		resp.Err = string(e)
	case resp.Multi:
		n, ok := c.u16()
		if !ok {
			return ErrTruncated
		}
		if n == 0 {
			return ErrEmptyMulti
		}
		if int(n) > MaxOpsPerFrame {
			return fmt.Errorf("%w: %d results per frame", ErrLimits, n)
		}
		for i := 0; i < int(n); i++ {
			res, err := c.result()
			if err != nil {
				return err
			}
			resp.Results = append(resp.Results, res)
		}
	default:
		res, err := c.result()
		if err != nil {
			return err
		}
		resp.Results = append(resp.Results, res)
	}
	if c.remain() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, c.remain())
	}
	return nil
}

func (c *cursor) result() (Result, error) {
	rf, ok := c.u8()
	if !ok {
		return Result{}, ErrTruncated
	}
	res := Result{Found: rf&rflagFound != 0, HasValue: rf&rflagValue != 0}
	if res.HasValue {
		v, err := c.value()
		if err != nil {
			return Result{}, err
		}
		res.Value = v
	}
	return res, nil
}
