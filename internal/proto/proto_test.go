package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// parseOneRequest frames+parses through the real reader path.
func parseOneRequest(t *testing.T, frame []byte) (*Request, error) {
	t.Helper()
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(frame)))
	magic, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if magic != FrameRequest {
		t.Fatalf("magic = 0x%02x, want request", magic)
	}
	var req Request
	return &req, ParseRequest(payload, &req)
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpGet, Keys: [][]byte{[]byte("k1")}, Vals: [][]byte{nil}},
		{ID: 1<<63 + 7, Op: OpPut, Keys: [][]byte{[]byte("user:7")}, Vals: [][]byte{[]byte("alice")}},
		{ID: 0, Op: OpPut, Keys: [][]byte{[]byte("empty")}, Vals: [][]byte{{}}},
		{ID: 3, Op: OpDel, Keys: [][]byte{[]byte("gone")}, Vals: [][]byte{nil}},
		{ID: 4, Op: OpMGet, Keys: [][]byte{[]byte("a"), []byte("b"), []byte("c")}, Vals: [][]byte{nil, nil, nil}},
		{ID: 5, Op: OpMSet,
			Keys: [][]byte{[]byte("x"), []byte("y")},
			Vals: [][]byte{[]byte("1"), bytes.Repeat([]byte("v"), 300)}},
	}
	for _, in := range cases {
		frame := AppendRequest(nil, &in)
		got, err := parseOneRequest(t, frame)
		if err != nil {
			t.Fatalf("ParseRequest(%v): %v", in.Op, err)
		}
		if got.ID != in.ID || got.Op != in.Op || len(got.Keys) != len(in.Keys) {
			t.Fatalf("round trip changed shape: %+v -> %+v", in, got)
		}
		for i := range in.Keys {
			if !bytes.Equal(got.Keys[i], in.Keys[i]) {
				t.Fatalf("key %d: %q -> %q", i, in.Keys[i], got.Keys[i])
			}
			if len(got.Vals[i]) != len(in.Vals[i]) || (len(in.Vals[i]) > 0 && !bytes.Equal(got.Vals[i], in.Vals[i])) {
				t.Fatalf("val %d mismatch", i)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, OK: true, Results: []Result{{Found: true, HasValue: true, Value: []byte("alice")}}},
		{ID: 2, OK: true, Results: []Result{{Found: true}}},
		{ID: 3, OK: true, Results: []Result{{}}},
		{ID: 4, OK: true, Crashed: true, Results: []Result{{Found: true}}},
		{ID: 5, Err: "draining"},
		{ID: 6, OK: true, Multi: true, Results: []Result{
			{Found: true, HasValue: true, Value: []byte("v1")},
			{},
			{Found: true},
		}},
	}
	for _, in := range cases {
		frame := AppendResponse(nil, &in)
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(frame)))
		magic, payload, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if magic != FrameResponse {
			t.Fatalf("magic = 0x%02x", magic)
		}
		var got Response
		if err := ParseResponse(payload, &got); err != nil {
			t.Fatalf("ParseResponse: %v", err)
		}
		if got.ID != in.ID || got.OK != in.OK || got.Crashed != in.Crashed ||
			got.Multi != in.Multi || got.Err != in.Err || len(got.Results) != wantResults(&in) {
			t.Fatalf("round trip: %+v -> %+v", in, got)
		}
		for i := range got.Results {
			w := in.Results[i]
			g := got.Results[i]
			if g.Found != w.Found || g.HasValue != w.HasValue || !bytes.Equal(g.Value, w.Value) {
				t.Fatalf("result %d: %+v -> %+v", i, w, g)
			}
		}
	}
}

func wantResults(r *Response) int {
	if r.Err != "" {
		return 0
	}
	return len(r.Results)
}

func TestMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		bytes []byte
		want  error
	}{
		{"bad magic", []byte{0x7B, 0, 0, 0, 0}, ErrBadMagic},
		{"oversized", append([]byte{FrameRequest}, 0xff, 0xff, 0xff, 0xff), ErrFrameSize},
		{"short header", []byte{FrameRequest, 1}, io.ErrUnexpectedEOF},
		{"short payload", []byte{FrameRequest, 9, 0, 0, 0, 1, 2}, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(tc.bytes)))
		_, _, err := fr.Next()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestMalformedRequestPayloads(t *testing.T) {
	var req Request
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrTruncated},
		{"id only", make([]byte, 8), ErrTruncated},
		{"bad opcode", append(make([]byte, 8), 99), ErrBadOpcode},
		{"get no key", append(make([]byte, 8), byte(OpGet)), ErrTruncated},
		{"get key truncated", append(make([]byte, 8), byte(OpGet), 5, 0, 'a'), ErrTruncated},
		{"put no value", append(make([]byte, 8), byte(OpPut), 1, 0, 'k'), ErrTruncated},
		{"mget zero ops", append(make([]byte, 8), byte(OpMGet), 0, 0), ErrEmptyMulti},
		{"trailing bytes", append(append(make([]byte, 8), byte(OpGet), 1, 0, 'k'), 0xEE), ErrTrailing},
	}
	for _, tc := range cases {
		if err := ParseRequest(tc.payload, &req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestParseRequestZeroAlloc guards the server's per-frame hot path: once
// the Request's slice headers have grown to their working size, decoding
// must not allocate.
func TestParseRequestZeroAlloc(t *testing.T) {
	frames := [][]byte{
		AppendPut(nil, 1, []byte("user:0001"), bytes.Repeat([]byte("v"), 64)),
		AppendGet(nil, 2, []byte("user:0002")),
		AppendMSet(nil, 3,
			[][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")},
			[][]byte{[]byte("1"), []byte("2"), []byte("3"), []byte("4")}),
		AppendMGet(nil, 4, [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}),
		AppendDel(nil, 5, []byte("user:0003")),
	}
	payloads := make([][]byte, len(frames))
	for i, f := range frames {
		payloads[i] = f[5:]
	}
	var req Request
	allocs := testing.AllocsPerRun(200, func() {
		for _, p := range payloads {
			if err := ParseRequest(p, &req); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseRequest allocates %.1f times per run; want 0", allocs)
	}
}

// TestAppendResponseZeroAlloc guards the server's per-response hot path.
func TestAppendResponseZeroAlloc(t *testing.T) {
	resps := []Response{
		{ID: 1, OK: true, Results: []Result{{Found: true, HasValue: true, Value: []byte("value-bytes-0123456789")}}},
		{ID: 2, OK: true, Results: []Result{{Found: true}}},
		{ID: 3, Err: "draining"},
		{ID: 4, OK: true, Multi: true, Results: []Result{{Found: true, HasValue: true, Value: []byte("v")}, {}}},
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		for i := range resps {
			buf = AppendResponse(buf, &resps[i])
		}
		if len(buf) == 0 {
			t.Fatal("no output")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendResponse allocates %.1f times per run; want 0", allocs)
	}
}

// TestFrameReaderZeroAlloc: a warmed FrameReader decoding a stream of
// frames performs no per-frame allocations (the payload buffer is
// reused), so the read half of a pipelined connection allocates only at
// the engine boundary, not in the codec.
func TestFrameReaderZeroAlloc(t *testing.T) {
	var stream []byte
	for i := 0; i < 16; i++ {
		stream = AppendPut(stream, uint64(i), []byte("key-000042"), bytes.Repeat([]byte("v"), 128))
	}
	rd := bytes.NewReader(stream)
	br := bufio.NewReaderSize(rd, 64<<10)
	fr := NewFrameReader(br)
	var req Request
	// Warm the payload buffer.
	rd.Reset(stream)
	br.Reset(rd)
	for {
		_, p, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseRequest(p, &req); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(stream)
		br.Reset(rd)
		for {
			_, p, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := ParseRequest(p, &req); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("frame decode allocates %.1f times per run; want 0", allocs)
	}
}

// TestAutoDetectDisjoint pins the protocol auto-detection invariant: no
// JSON line's first byte can collide with the request magic.
func TestAutoDetectDisjoint(t *testing.T) {
	for _, first := range []byte{'{', ' ', '\t', '\r', '\n', '"'} {
		if first == FrameRequest {
			t.Fatalf("JSON first byte 0x%02x collides with FrameRequest", first)
		}
	}
	if FrameRequest < 0x80 {
		t.Fatalf("FrameRequest = 0x%02x must have the high bit set (JSON is ASCII)", FrameRequest)
	}
	if strings.IndexByte("{\t\n\r \"[tfn0123456789-", FrameRequest) >= 0 {
		t.Fatal("FrameRequest collides with a JSON start byte")
	}
}

func FuzzParseRequest(f *testing.F) {
	f.Add(AppendPut(nil, 7, []byte("k"), []byte("v"))[5:])
	f.Add(AppendMGet(nil, 8, [][]byte{[]byte("a"), []byte("b")})[5:])
	f.Add([]byte{})
	f.Add(make([]byte, 9))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req Request
		if err := ParseRequest(payload, &req); err != nil {
			return
		}
		// Parsed requests must be internally consistent and re-encodable
		// to a parseable frame.
		if len(req.Keys) == 0 || len(req.Keys) != len(req.Vals) {
			t.Fatalf("inconsistent parse: %d keys, %d vals", len(req.Keys), len(req.Vals))
		}
		frame := AppendRequest(nil, &req)
		var again Request
		if err := ParseRequest(frame[5:], &again); err != nil {
			t.Fatalf("re-encode not parseable: %v", err)
		}
		if again.ID != req.ID || again.Op != req.Op || len(again.Keys) != len(req.Keys) {
			t.Fatalf("re-encode changed shape")
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add(AppendResponse(nil, &Response{ID: 1, OK: true, Results: []Result{{Found: true, HasValue: true, Value: []byte("v")}}})[5:])
	f.Add(AppendResponse(nil, &Response{ID: 2, Err: "x"})[5:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		var resp Response
		if err := ParseResponse(payload, &resp); err != nil {
			return
		}
		frame := AppendResponse(nil, &resp)
		var again Response
		if err := ParseResponse(frame[5:], &again); err != nil {
			t.Fatalf("re-encode not parseable: %v", err)
		}
	})
}
