package client

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"persistbarriers/internal/proto"
)

// stubServer reads request frames off conn and answers them in batches,
// reversed — deliberately out of order — echoing each op's first key as
// a found value. It exits on read error.
func stubServer(t *testing.T, conn net.Conn, batch int) {
	t.Helper()
	fr := proto.NewFrameReader(bufio.NewReader(conn))
	var req proto.Request
	var pending []proto.Response
	var out []byte
	flush := func() {
		for i := len(pending) - 1; i >= 0; i-- {
			out = proto.AppendResponse(out[:0], &pending[i])
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
		pending = pending[:0]
	}
	for {
		magic, payload, err := fr.Next()
		if err != nil {
			flush()
			return
		}
		if magic != proto.FrameRequest {
			t.Errorf("stub server: magic 0x%02x", magic)
			return
		}
		if err := proto.ParseRequest(payload, &req); err != nil {
			t.Errorf("stub server: parse: %v", err)
			return
		}
		resp := proto.Response{ID: req.ID, OK: true, Multi: req.Op.Multi()}
		for _, k := range req.Keys {
			v := append([]byte(nil), k...)
			resp.Results = append(resp.Results, proto.Result{Found: true, HasValue: true, Value: v})
		}
		pending = append(pending, resp)
		if len(pending) >= batch {
			flush()
		}
	}
}

// TestPipelinedOutOfOrder drives more ops than the window through a
// server that responds in reverse batch order: every completion must
// match its id, carry the right echoed value, and stamp submit<=send.
func TestPipelinedOutOfOrder(t *testing.T) {
	cc, sc := net.Pipe()
	go stubServer(t, sc, 4)

	type got struct {
		val       string
		err       string
		submit    int64
		send      int64
		completed int64
	}
	var mu sync.Mutex
	results := make(map[uint64]got)

	var c *Client
	var err error
	c, err = New(cc, Options{
		Window: 8,
		OnComplete: func(resp *proto.Response, submitNS, sendNS int64) {
			g := got{submit: submitNS, send: sendNS, completed: c.NowNS(), err: resp.Err}
			if resp.Err == "" {
				g.val = string(resp.Results[0].Value)
			}
			mu.Lock()
			results[resp.ID] = g
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const ops = 64
	for id := uint64(0); id < ops; id++ {
		key := []byte(fmt.Sprintf("key-%d", id))
		if err := c.Get(id, key); err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(results) != ops {
		t.Fatalf("completions: %d, want %d", len(results), ops)
	}
	for id := uint64(0); id < ops; id++ {
		g, ok := results[id]
		if !ok {
			t.Fatalf("id %d never completed", id)
		}
		if g.err != "" {
			t.Fatalf("id %d error: %s", id, g.err)
		}
		if want := fmt.Sprintf("key-%d", id); g.val != want {
			t.Fatalf("id %d value %q, want %q (out-of-order mismatch)", id, g.val, want)
		}
		if g.submit > g.send || g.send > g.completed {
			t.Fatalf("id %d timestamps out of order: submit=%d send=%d completed=%d", id, g.submit, g.send, g.completed)
		}
	}
	cc.Close()
}

// TestMultiOpFrames: an MGET/MSET frame costs one window slot and
// returns one response with per-op results.
func TestMultiOpFrames(t *testing.T) {
	cc, sc := net.Pipe()
	go stubServer(t, sc, 1)

	var mu sync.Mutex
	var nresults []int
	c, err := New(cc, Options{
		Window: 2,
		OnComplete: func(resp *proto.Response, _, _ int64) {
			mu.Lock()
			defer mu.Unlock()
			if resp.Err != "" {
				nresults = append(nresults, -1)
				return
			}
			nresults = append(nresults, len(resp.Results))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	vals := [][]byte{[]byte("1"), []byte("2"), []byte("3")}
	if err := c.MSet(1, keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.MGet(2, keys); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(nresults) != 2 || nresults[0] != 3 || nresults[1] != 3 {
		t.Fatalf("multi-op results: %v, want [3 3]", nresults)
	}
	cc.Close()
}

// TestDuplicateIDRefused: reusing an in-flight id is a caller bug the
// client reports rather than silently corrupting response matching.
func TestDuplicateIDRefused(t *testing.T) {
	cc, sc := net.Pipe()
	// Server that never answers, keeping id 7 in flight.
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := sc.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := New(cc, Options{Window: 4, OnComplete: func(*proto.Response, int64, int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Get(7, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := c.Get(7, []byte("k")); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("duplicate id err = %v", err)
	}
	cc.Close()
	<-c.readerDone
}

// TestTransportFailureSynthesizesCompletions: when the connection dies
// with requests in flight, every one of them completes with an error
// response and Wait returns instead of deadlocking.
func TestTransportFailureSynthesizesCompletions(t *testing.T) {
	cc, sc := net.Pipe()
	// Server reads two frames, then drops the connection.
	ready := make(chan struct{})
	go func() {
		fr := proto.NewFrameReader(bufio.NewReader(sc))
		for i := 0; i < 2; i++ {
			if _, _, err := fr.Next(); err != nil {
				break
			}
		}
		sc.Close()
		close(ready)
	}()

	var mu sync.Mutex
	errs := make(map[uint64]string)
	c, err := New(cc, Options{
		Window: 4,
		OnComplete: func(resp *proto.Response, _, _ int64) {
			mu.Lock()
			errs[resp.ID] = resp.Err
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 2; id++ {
		if err := c.Put(id, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("Put(%d): %v", id, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	<-ready
	if err := c.Wait(); err == nil {
		t.Fatal("Wait returned nil after transport failure")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 2 {
		t.Fatalf("completions: %d, want 2", len(errs))
	}
	for id, e := range errs {
		if e == "" {
			t.Fatalf("id %d completed without error after connection loss", id)
		}
	}
	// The window is whole again: further submits fail fast, not hang.
	if err := c.Get(9, []byte("k")); err == nil {
		t.Fatal("submit after failure did not error")
	}
}
