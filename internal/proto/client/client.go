// Package client is the pipelined side of pmkvd's binary wire protocol:
// a connection handle that keeps up to Window request frames in flight,
// batches their encodings into single socket writes, and matches the
// server's out-of-order responses back to callers by request id. The
// caller chooses ids (monotonic per connection) and receives completions
// on a reader-goroutine callback, so a load generator can drive one
// connection at pipeline depth W with two goroutines and zero per-op
// channel traffic.
//
// Concurrency contract: one goroutine submits (Get/Put/Del/MGet/MSet/
// Flush/Wait/Close); the handler runs on the client's internal reader
// goroutine and must not call submit methods. The handler's *Response is
// reused — copy anything that must outlive the call.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"persistbarriers/internal/proto"
)

// flushThreshold is the write-buffer size that forces a flush on the
// next submit, bounding batching latency by buffered bytes rather than
// time (a blocked window is the other flush trigger).
const flushThreshold = 32 << 10

// Handler receives one completed request on the reader goroutine.
// submitNS and sendNS are client-clock timestamps (see Client.NowNS):
// when the op entered the client, and when its frame was flushed to the
// socket — their gap is the client-side queueing delay that open-loop
// load generation must separate from service time. For transport
// failures the response is synthetic: Err is non-empty and ID still
// identifies the op.
type Handler func(resp *proto.Response, submitNS, sendNS int64)

// Options configures a Client.
type Options struct {
	// Window bounds in-flight request frames (default 64). A submit past
	// the window flushes buffered frames and blocks for a completion.
	Window int
	// OnComplete is required: every submitted frame produces exactly one
	// call, real or synthetic.
	OnComplete Handler
}

type opTimes struct {
	submitNS int64
	sendNS   int64
}

// Client is one pipelined connection. See the package comment for the
// goroutine contract.
type Client struct {
	conn  net.Conn
	h     Handler
	win   int
	epoch time.Time

	// tokens holds the free window slots: submit takes one, completion
	// (real or synthetic) returns it.
	tokens chan struct{}

	mu     sync.Mutex
	wbuf   []byte   // frames encoded but not yet written
	unsent []uint64 // ids of those frames, for send stamping
	times  map[uint64]opTimes
	err    error // first transport failure; sticky
	spare  []byte

	readerDone chan struct{}
}

// New wraps conn. The client owns the connection until Close.
func New(conn net.Conn, opts Options) (*Client, error) {
	if opts.OnComplete == nil {
		return nil, fmt.Errorf("proto client: OnComplete is required")
	}
	if opts.Window <= 0 {
		opts.Window = 64
	}
	c := &Client{
		conn:       conn,
		h:          opts.OnComplete,
		win:        opts.Window,
		epoch:      time.Now(),
		tokens:     make(chan struct{}, opts.Window),
		times:      make(map[uint64]opTimes, opts.Window),
		readerDone: make(chan struct{}),
	}
	for i := 0; i < opts.Window; i++ {
		c.tokens <- struct{}{}
	}
	go c.readLoop()
	return c, nil
}

// NowNS is the client clock: monotonic nanoseconds since New. Handlers
// subtract submitNS/sendNS from it for latencies.
func (c *Client) NowNS() int64 { return int64(time.Since(c.epoch)) }

// Window reports the configured pipeline depth.
func (c *Client) Window() int { return c.win }

// Get submits a GET for key under id.
func (c *Client) Get(id uint64, key []byte) error {
	return c.submit(id, func(dst []byte) []byte { return proto.AppendGet(dst, id, key) })
}

// Put submits a PUT.
func (c *Client) Put(id uint64, key, value []byte) error {
	return c.submit(id, func(dst []byte) []byte { return proto.AppendPut(dst, id, key, value) })
}

// Del submits a DEL.
func (c *Client) Del(id uint64, key []byte) error {
	return c.submit(id, func(dst []byte) []byte { return proto.AppendDel(dst, id, key) })
}

// MGet submits one MGET frame over keys: one window slot, one response
// carrying len(keys) results.
func (c *Client) MGet(id uint64, keys [][]byte) error {
	return c.submit(id, func(dst []byte) []byte { return proto.AppendMGet(dst, id, keys) })
}

// MSet submits one MSET frame over parallel keys/vals.
func (c *Client) MSet(id uint64, keys, vals [][]byte) error {
	return c.submit(id, func(dst []byte) []byte { return proto.AppendMSet(dst, id, keys, vals) })
}

// submit acquires a window slot and encodes one frame. When the window
// is full it flushes first — otherwise the frames this submit is waiting
// on might still be sitting unsent in wbuf, a self-deadlock.
func (c *Client) submit(id uint64, enc func([]byte) []byte) error {
	select {
	case <-c.tokens:
	default:
		if err := c.Flush(); err != nil {
			return err
		}
		<-c.tokens
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.tokens <- struct{}{}
		return err
	}
	if _, dup := c.times[id]; dup {
		c.mu.Unlock()
		c.tokens <- struct{}{}
		return fmt.Errorf("proto client: id %d already in flight", id)
	}
	c.times[id] = opTimes{submitNS: c.NowNS()}
	c.wbuf = enc(c.wbuf)
	c.unsent = append(c.unsent, id)
	full := len(c.wbuf) >= flushThreshold
	c.mu.Unlock()
	if full {
		return c.Flush()
	}
	return nil
}

// Flush writes every buffered frame in one socket write and stamps
// their send times. The write runs outside the lock so a slow socket
// never stalls the reader's id matching (which the server's own write
// progress may depend on).
func (c *Client) Flush() error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if len(c.wbuf) == 0 {
		c.mu.Unlock()
		return nil
	}
	now := c.NowNS()
	for _, id := range c.unsent {
		t := c.times[id]
		t.sendNS = now
		c.times[id] = t
	}
	c.unsent = c.unsent[:0]
	buf := c.wbuf
	c.wbuf = c.spare[:0]
	c.mu.Unlock()
	_, err := c.conn.Write(buf)
	c.spare = buf // single-submitter: no concurrent flush
	if err != nil {
		c.fail(fmt.Errorf("proto client: write: %w", err))
		return err
	}
	return nil
}

// Wait flushes and blocks until every in-flight request has completed
// (its handler has returned). It then reports the connection's sticky
// error, if any — synthetic completions count as completed, so Wait
// returns even after a transport failure.
func (c *Client) Wait() error {
	// A failed flush has already synthesized completions for everything
	// in flight, so the token sweep below still terminates.
	c.Flush()
	for i := 0; i < c.win; i++ {
		<-c.tokens
	}
	for i := 0; i < c.win; i++ {
		c.tokens <- struct{}{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes, closes the connection, and waits for the reader to
// deliver or synthesize every outstanding completion.
func (c *Client) Close() error {
	err := c.Wait()
	c.conn.Close()
	<-c.readerDone
	return err
}

// fail records the first transport error and synthesizes an error
// completion for every op still in flight, returning their window slots
// so Wait and blocked submits make progress.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	orphans := make([]uint64, 0, len(c.times))
	for id := range c.times {
		orphans = append(orphans, id)
	}
	stamps := make([]opTimes, len(orphans))
	for i, id := range orphans {
		stamps[i] = c.times[id]
		delete(c.times, id)
	}
	msg := c.err.Error()
	c.mu.Unlock()
	resp := proto.Response{Err: msg}
	for i, id := range orphans {
		resp.ID = id
		c.h(&resp, stamps[i].submitNS, stamps[i].sendNS)
		c.tokens <- struct{}{}
	}
}

// readLoop drains response frames and dispatches completions by id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	fr := proto.NewFrameReader(bufio.NewReaderSize(c.conn, 64<<10))
	var resp proto.Response
	for {
		magic, payload, err := fr.Next()
		if err != nil {
			c.fail(fmt.Errorf("proto client: read: %w", err))
			return
		}
		if magic != proto.FrameResponse {
			c.fail(fmt.Errorf("proto client: request magic 0x%02x from server", magic))
			return
		}
		if err := proto.ParseResponse(payload, &resp); err != nil {
			c.fail(fmt.Errorf("proto client: parse: %w", err))
			return
		}
		c.mu.Lock()
		t, ok := c.times[resp.ID]
		delete(c.times, resp.ID)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("proto client: response for unknown id %d", resp.ID))
			return
		}
		c.h(&resp, t.submitNS, t.sendNS)
		c.tokens <- struct{}{}
	}
}
