// Package stats provides the small numeric and table-formatting helpers
// the experiment harness uses to reproduce the paper's figures: geometric
// and arithmetic means (the paper reports gmean for speedups and amean for
// conflict percentages) and fixed-width ASCII tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Gmean returns the geometric mean of vs; zero or negative inputs are
// rejected with NaN (a geometric mean over them is undefined).
func Gmean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Amean returns the arithmetic mean of vs (NaN when empty).
func Amean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// HitPct returns the hit rate of a hit/miss counter pair as a
// percentage; an empty pair reports 0 rather than NaN.
func HitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// Table is a fixed-width ASCII table renderer.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends a row whose first cell is a label and whose remaining
// cells are floats formatted with the given verb (e.g. "%.2f").
func (t *Table) AddF(label, verb string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.AddRow(cells...)
}

// TableData is a Table's content in machine-readable form, the shape
// the figures CLI exports as JSON alongside the ASCII rendering.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Data returns a copy of the table's title, headers, and rows.
func (t *Table) Data() TableData {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return TableData{
		Title:   t.title,
		Headers: append([]string(nil), t.headers...),
		Rows:    rows,
	}
}

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}
