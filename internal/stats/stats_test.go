package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("Gmean(1,4) = %v, want 2", g)
	}
	if g := Gmean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Errorf("Gmean(3) = %v", g)
	}
	if !math.IsNaN(Gmean(nil)) {
		t.Error("Gmean(nil) not NaN")
	}
	if !math.IsNaN(Gmean([]float64{1, 0})) {
		t.Error("Gmean with zero not NaN")
	}
	if !math.IsNaN(Gmean([]float64{-1})) {
		t.Error("Gmean with negative not NaN")
	}
}

func TestAmean(t *testing.T) {
	if a := Amean([]float64{1, 2, 3}); math.Abs(a-2) > 1e-12 {
		t.Errorf("Amean = %v, want 2", a)
	}
	if !math.IsNaN(Amean(nil)) {
		t.Error("Amean(nil) not NaN")
	}
}

func TestGmeanLeAmeanProperty(t *testing.T) {
	// AM-GM inequality on positive inputs.
	f := func(raw []uint16) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r)+1)
		}
		if len(vs) == 0 {
			return true
		}
		return Gmean(vs) <= Amean(vs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGmeanScaleInvariance(t *testing.T) {
	// Gmean(k*v) = k * Gmean(v).
	vs := []float64{1.2, 3.4, 0.9, 2.2}
	scaled := make([]float64, len(vs))
	for i, v := range vs {
		scaled[i] = v * 5
	}
	if math.Abs(Gmean(scaled)-5*Gmean(vs)) > 1e-9 {
		t.Error("gmean not scale-invariant")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Figure X", "bench", "LB", "LB++")
	tbl.AddRow("hash", "1.00", "1.22")
	tbl.AddF("gmean", "%.2f", 1.0, 1.22)
	out := tbl.Render()
	if !strings.Contains(out, "Figure X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "hash") || !strings.Contains(out, "1.22") {
		t.Errorf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator equal width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	out := tbl.Render()
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}

func TestHitPct(t *testing.T) {
	if got := HitPct(3, 1); math.Abs(got-75) > 1e-12 {
		t.Errorf("HitPct(3,1) = %v, want 75", got)
	}
	if got := HitPct(0, 0); got != 0 {
		t.Errorf("HitPct(0,0) = %v, want 0 (not NaN)", got)
	}
	if got := HitPct(5, 0); got != 100 {
		t.Errorf("HitPct(5,0) = %v, want 100", got)
	}
}

func TestTableData(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("x", "y")
	d := tbl.Data()
	if d.Title != "T" || len(d.Headers) != 2 || len(d.Rows) != 1 || d.Rows[0][1] != "y" {
		t.Errorf("Data = %+v", d)
	}
	// Deep copy: mutating the snapshot must not reach the table.
	d.Rows[0][0] = "mutated"
	d.Headers[0] = "mutated"
	if out := tbl.Render(); strings.Contains(out, "mutated") {
		t.Errorf("Data aliases table storage:\n%s", out)
	}
}
