package stats

import (
	"strings"
	"testing"
)

func TestFingerprintStability(t *testing.T) {
	type doc struct {
		A int
		M map[int]string
	}
	v := doc{A: 7, M: map[int]string{3: "c", 1: "a", 2: "b"}}
	f1, err := Fingerprint(v)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(doc{A: 7, M: map[int]string{1: "a", 2: "b", 3: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("equal values fingerprint differently: %s vs %s", f1, f2)
	}
	if len(f1) != 64 || strings.ToLower(f1) != f1 {
		t.Fatalf("fingerprint not lowercase sha256 hex: %q", f1)
	}
	f3, err := Fingerprint(doc{A: 8, M: v.M})
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("different values collided")
	}
}

func TestFingerprintUnmarshalable(t *testing.T) {
	if _, err := Fingerprint(make(chan int)); err == nil {
		t.Fatal("channel accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFingerprint did not panic")
		}
	}()
	MustFingerprint(make(chan int))
}
