package stats

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a stable hex digest of v's canonical JSON encoding.
// encoding/json sorts map keys, so two structurally equal values always
// produce the same digest — the property the sweep engine's result cache
// and determinism verifier rely on. Values that cannot be marshalled
// (channels, funcs) are rejected with an error.
func Fingerprint(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("stats: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MustFingerprint is Fingerprint for values known to be marshallable; it
// panics on error (a programming bug, not a runtime condition).
func MustFingerprint(v any) string {
	f, err := Fingerprint(v)
	if err != nil {
		panic(err)
	}
	return f
}
