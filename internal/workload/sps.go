package workload

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// spsEntries is each thread's array length for the swap benchmark.
const spsEntries = 1024

// SPS generates the "sps" micro-benchmark: random swaps between entries of
// a persistent array (NV-heaps' SPS), one array per thread. A swap reads
// both 512-byte entries and writes them back, with persist barriers making
// each entry write an ordered unit:
//
//	read A, read B          — gather
//	write A'                — epoch 1
//	persist barrier
//	write B'                — epoch 2
//	persist barrier
func SPS(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := perThread(spec, func(thread int, r *trace.Rand, b *trace.Builder) func() {
		alloc := newAllocator(0x3000_0000 + mem.Addr(thread)*0x0100_0000 + mem.Addr(thread)*17*512)
		arr := make([]mem.Addr, spsEntries)
		for i := range arr {
			arr[i] = alloc.entry()
		}
		return func() {
			b.Compute(thinkTime(r))
			i := r.Intn(spsEntries)
			j := r.Intn(spsEntries)
			for j == i {
				j = r.Intn(spsEntries)
			}
			b.LoadRange(arr[i], EntrySize)
			b.LoadRange(arr[j], EntrySize)
			b.StoreRange(arr[i], EntrySize)
			b.Barrier()
			b.StoreRange(arr[j], EntrySize)
			b.Barrier()
			b.TxEnd()
		}
	})
	return p, nil
}
