package workload

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// rbNode is one 512-byte persistent tree node. The first line of the entry
// holds key, color, and the three links; touching any of them is modelled
// as an access to the node's header line, while node payload writes cover
// the full entry.
type rbNode struct {
	addr                mem.Addr
	key                 uint64
	left, right, parent *rbNode
	red                 bool
}

// rbTree is a classic red-black tree that emits the memory trace of every
// structural read and write it performs.
type rbTree struct {
	root  *rbNode
	alloc *allocator
	b     *trace.Builder // current thread's builder
	size  int
}

func (t *rbTree) load(n *rbNode) {
	if n != nil {
		t.b.Load(n.addr)
	}
}

func (t *rbTree) store(n *rbNode) {
	if n != nil {
		t.b.Store(n.addr)
	}
}

// rotateLeft/rotateRight rewrite three nodes' links.
func (t *rbTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
		t.store(y.left)
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
		t.store(x.parent)
	default:
		x.parent.right = y
		t.store(x.parent)
	}
	y.left = x
	x.parent = y
	t.store(x)
	t.store(y)
}

func (t *rbTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
		t.store(y.right)
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
		t.store(x.parent)
	default:
		x.parent.left = y
		t.store(x.parent)
	}
	y.right = x
	x.parent = y
	t.store(x)
	t.store(y)
}

// insert adds key and returns the new node, emitting the persistency
// discipline: the new node's payload is written and persisted before the
// link that publishes it, and the rebalancing writes form a final epoch.
func (t *rbTree) insert(key uint64) *rbNode {
	// Descend.
	var parent *rbNode
	cur := t.root
	for cur != nil {
		t.load(cur)
		parent = cur
		if key < cur.key {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	n := &rbNode{addr: t.alloc.entry(), key: key, red: true, parent: parent}
	// Epoch A: write the new node's payload.
	t.b.StoreRange(n.addr, EntrySize)
	t.b.Barrier()
	// Epoch B: publish the link.
	if parent == nil {
		t.root = n
	} else if key < parent.key {
		parent.left = n
		t.store(parent)
	} else {
		parent.right = n
		t.store(parent)
	}
	t.b.Barrier()
	// Epoch C: rebalance.
	t.insertFixup(n)
	t.b.Barrier()
	t.size++
	return n
}

func isRed(n *rbNode) bool { return n != nil && n.red }

func (t *rbTree) insertFixup(z *rbNode) {
	for isRed(z.parent) {
		g := z.parent.parent
		if g == nil {
			break
		}
		t.load(g)
		if z.parent == g.left {
			u := g.right
			if isRed(u) {
				z.parent.red, u.red, g.red = false, false, true
				t.store(z.parent)
				t.store(u)
				t.store(g)
				z = g
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.red, g.red = false, true
			t.store(z.parent)
			t.store(g)
			t.rotateRight(g)
		} else {
			u := g.left
			if isRed(u) {
				z.parent.red, u.red, g.red = false, false, true
				t.store(z.parent)
				t.store(u)
				t.store(g)
				z = g
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.red, g.red = false, true
			t.store(z.parent)
			t.store(g)
			t.rotateLeft(g)
		}
	}
	if t.root != nil && t.root.red {
		t.root.red = false
		t.store(t.root)
	}
}

// search walks to a key (or its insertion point), reading each node.
func (t *rbTree) search(key uint64) *rbNode {
	cur := t.root
	for cur != nil {
		t.load(cur)
		if key == cur.key {
			return cur
		}
		if key < cur.key {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return nil
}

func (t *rbTree) minimum(n *rbNode) *rbNode {
	for n.left != nil {
		t.load(n.left)
		n = n.left
	}
	return n
}

// transplant replaces subtree u with v.
func (t *rbTree) transplant(u, v *rbNode) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
		t.store(u.parent)
	default:
		u.parent.right = v
		t.store(u.parent)
	}
	if v != nil {
		v.parent = u.parent
		t.store(v)
	}
}

// delete removes node z (CLRS delete with fixup), emitting stores for
// every structural mutation and a barrier closing the unlink epoch.
func (t *rbTree) delete(z *rbNode) {
	y := z
	yWasRed := y.red
	var x, xParent *rbNode
	switch {
	case z.left == nil:
		x, xParent = z.right, z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x, xParent = z.left, z.parent
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
			t.store(y.right)
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
		t.store(y)
		t.store(y.left)
	}
	t.b.Barrier()
	if !yWasRed {
		t.deleteFixup(x, xParent)
		t.b.Barrier()
	}
	t.size--
}

func (t *rbTree) deleteFixup(x, parent *rbNode) {
	for x != t.root && !isRed(x) && parent != nil {
		if x == parent.left {
			w := parent.right
			if w == nil {
				break
			}
			t.load(w)
			if w.red {
				w.red, parent.red = false, true
				t.store(w)
				t.store(parent)
				t.rotateLeft(parent)
				w = parent.right
				if w == nil {
					break
				}
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				t.store(w)
				x, parent = parent, parent.parent
				continue
			}
			if !isRed(w.right) {
				if w.left != nil {
					w.left.red = false
					t.store(w.left)
				}
				w.red = true
				t.store(w)
				t.rotateRight(w)
				w = parent.right
			}
			w.red = parent.red
			parent.red = false
			if w.right != nil {
				w.right.red = false
				t.store(w.right)
			}
			t.store(w)
			t.store(parent)
			t.rotateLeft(parent)
			x = t.root
			break
		} else {
			w := parent.left
			if w == nil {
				break
			}
			t.load(w)
			if w.red {
				w.red, parent.red = false, true
				t.store(w)
				t.store(parent)
				t.rotateRight(parent)
				w = parent.left
				if w == nil {
					break
				}
			}
			if !isRed(w.right) && !isRed(w.left) {
				w.red = true
				t.store(w)
				x, parent = parent, parent.parent
				continue
			}
			if !isRed(w.left) {
				if w.right != nil {
					w.right.red = false
					t.store(w.right)
				}
				w.red = true
				t.store(w)
				t.rotateLeft(w)
				w = parent.left
			}
			w.red = parent.red
			parent.red = false
			if w.left != nil {
				w.left.red = false
				t.store(w.left)
			}
			t.store(w)
			t.store(parent)
			t.rotateRight(parent)
			x = t.root
			break
		}
	}
	if x != nil && x.red {
		x.red = false
		t.store(x)
	}
}

// validate checks the red-black invariants; the workload tests use it.
func (t *rbTree) validate() error {
	if isRed(t.root) {
		return errRedRoot
	}
	_, err := blackHeight(t.root)
	return err
}

type rbError string

func (e rbError) Error() string { return string(e) }

const (
	errRedRoot  = rbError("rbtree: red root")
	errRedRed   = rbError("rbtree: red node with red child")
	errBlackImb = rbError("rbtree: black-height imbalance")
	errOrder    = rbError("rbtree: BST order violated")
)

func blackHeight(n *rbNode) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.red && (isRed(n.left) || isRed(n.right)) {
		return 0, errRedRed
	}
	if n.left != nil && n.left.key > n.key {
		return 0, errOrder
	}
	if n.right != nil && n.right.key < n.key {
		return 0, errOrder
	}
	lh, err := blackHeight(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := blackHeight(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackImb
	}
	if !n.red {
		lh++
	}
	return lh, nil
}

// RBTree generates the "rbtree" micro-benchmark: insert/delete/search of
// 512-byte nodes in red-black trees, one tree per thread. The hot region
// near each tree's root is re-written across epochs by rotations and
// recolorings, driving intra-thread conflicts.
func RBTree(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := perThread(spec, func(thread int, r *trace.Rand, b *trace.Builder) func() {
		t := &rbTree{alloc: newAllocator(0x4000_0000 + mem.Addr(thread)*0x0100_0000 + mem.Addr(thread)*17*512)}
		keys := make(map[uint64]*rbNode)
		nextKey := uint64(1)
		return func() {
			t.b = b
			b.Compute(thinkTime(r))
			switch pickOp(r, t.size) {
			case opInsert:
				key := nextKey
				nextKey++
				keys[key] = t.insert(key)
			case opDelete:
				ks := sortedKeys(keys)
				key := ks[r.Intn(len(ks))]
				if n := t.search(key); n != nil {
					t.delete(n)
				}
				delete(keys, key)
			case opSearch:
				ks := sortedKeys(keys)
				t.search(ks[r.Intn(len(ks))])
			}
			b.TxEnd()
		}
	})
	return p, nil
}
