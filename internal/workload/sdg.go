package workload

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// sdgVertices is the vertex count of the scalable graph.
const sdgVertices = 512

// SDG generates the "sdg" micro-benchmark: insert/delete of edges in a
// scalable persistent graph. Each vertex has a header line holding its
// adjacency-list head; each edge is a 512-byte entry linked into the
// source vertex's adjacency list. Inserting an edge writes the edge entry
// (epoch A), then publishes it by updating the vertex header (epoch B) —
// the same discipline as the linked-list example in the paper's
// introduction.
func SDG(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := trace.NewRand(spec.Seed | 1)
	alloc := newAllocator(0x5000_0000)

	headers := make([]mem.Addr, sdgVertices)
	for i := range headers {
		headers[i] = alloc.line()
	}
	adj := make([][]mem.Addr, sdgVertices)
	edges := 0

	p := roundRobin(spec, func(t int, b *trace.Builder) {
		b.Compute(thinkTime(r))
		src := r.Intn(sdgVertices)
		dst := r.Intn(sdgVertices)
		switch pickOp(r, edges) {
		case opInsert:
			edge := alloc.entry()
			b.Load(headers[src]) // read adjacency head
			b.Load(headers[dst]) // read the target vertex
			b.StoreRange(edge, EntrySize)
			b.Barrier()
			b.Store(headers[src]) // publish the edge
			b.Barrier()
			adj[src] = append(adj[src], edge)
			edges++
		case opDelete:
			v := src
			for len(adj[v]) == 0 {
				v = (v + 1) % sdgVertices
			}
			idx := r.Intn(len(adj[v]))
			b.Load(headers[v])
			for i := 0; i <= idx; i++ {
				b.Load(adj[v][i])
			}
			if idx == 0 {
				b.Store(headers[v])
			} else {
				b.Store(adj[v][idx-1])
			}
			b.Barrier()
			adj[v] = append(adj[v][:idx], adj[v][idx+1:]...)
			edges--
		case opSearch:
			// Neighbourhood scan of a vertex with edges.
			v := src
			for len(adj[v]) == 0 {
				v = (v + 1) % sdgVertices
			}
			b.Load(headers[v])
			n := min(len(adj[v]), r.Intn(6)+1)
			for i := 0; i < n; i++ {
				b.Load(adj[v][i])
			}
		}
		b.TxEnd()
	})
	return p, nil
}
