package workload

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// queueCapacity bounds each thread's circular entry area (entries).
const queueCapacity = 2048

// Queue generates the "queue" micro-benchmark: the copy-while-locked
// persistent queue of the paper's Figure 10, one queue per thread. An
// insert copies the entry at the head position and then bumps the Head
// pointer; a delete bumps the Tail pointer. The Head/Tail pointer lines
// are re-written by every operation, so nearly every epoch hits the
// Figure 3(b) intra-thread conflict — this is the conflict-heaviest
// benchmark in the suite.
func Queue(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := perThread(spec, func(thread int, r *trace.Rand, b *trace.Builder) func() {
		alloc := newAllocator(0x2000_0000 + mem.Addr(thread)*0x0100_0000 + mem.Addr(thread)*17*512)
		headPtr := alloc.line()
		tailPtr := alloc.line()
		ring := make([]mem.Addr, queueCapacity)
		for i := range ring {
			ring[i] = alloc.entry()
		}
		head, tail := 0, 0
		return func() {
			b.Compute(thinkTime(r))
			population := head - tail
			op := pickOp(r, population)
			if op == opInsert && population >= queueCapacity-1 {
				op = opDelete
			}
			switch op {
			case opInsert:
				// QUEUE_INSERT(Head, Entry) — Figure 10(a):
				//   1. persist barrier (start clean)
				//   2. copy(data[Head], Entry)      — epoch A
				//   3. persist barrier
				//   4. Head = Head + EntryLen       — epoch B
				//   5. persist barrier
				b.Load(headPtr)
				b.StoreRange(ring[head%queueCapacity], EntrySize)
				b.Barrier()
				b.Store(headPtr)
				b.Barrier()
				head++
			case opDelete:
				b.Load(tailPtr)
				b.Load(ring[tail%queueCapacity]) // read the departing entry
				b.Store(tailPtr)
				b.Barrier()
				tail++
			case opSearch:
				b.Load(tailPtr)
				b.Load(headPtr)
				n := r.Intn(min(population, 4)) + 1
				for i := 0; i < n; i++ {
					b.Load(ring[(tail+i)%queueCapacity])
				}
			}
			b.TxEnd()
		}
	})
	return p, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
