package workload

import (
	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

// hashBuckets is the per-thread bucket count of the persistent hash table.
const hashBuckets = 64

// Hash generates the "hash" micro-benchmark: insert/delete/search of
// 512-byte entries in chained hash tables, one table per thread (the
// NV-heaps benchmark organization — intra-thread conflicts dominate,
// §7.1).
//
// Persistency discipline per insert (the Figure 10 pattern):
//
//	write the new entry                 — epoch A
//	persist barrier
//	update the bucket head pointer      — epoch B
//	persist barrier
//
// A delete updates the predecessor's next pointer under its own epoch;
// searches only read.
func Hash(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := perThread(spec, func(thread int, r *trace.Rand, b *trace.Builder) func() {
		alloc := newAllocator(0x1000_0000 + mem.Addr(thread)*0x0100_0000 + mem.Addr(thread)*17*512)
		heads := make([]mem.Addr, hashBuckets)
		for i := range heads {
			heads[i] = alloc.line()
		}
		chains := make([][]mem.Addr, hashBuckets)
		population := 0
		return func() {
			bucket := r.Intn(hashBuckets)
			b.Compute(thinkTime(r))
			switch pickOp(r, population) {
			case opInsert:
				entry := alloc.entry()
				b.Load(heads[bucket])          // read current head
				b.StoreRange(entry, EntrySize) // write the new entry
				b.Barrier()
				b.Store(heads[bucket]) // link it in
				b.Barrier()
				chains[bucket] = append(chains[bucket], entry)
				population++
			case opDelete:
				v := bucket
				for len(chains[v]) == 0 {
					v = (v + 1) % hashBuckets
				}
				idx := r.Intn(len(chains[v]))
				b.Load(heads[v])
				for i := 0; i <= idx; i++ {
					b.Load(chains[v][i])
				}
				if idx == 0 {
					b.Store(heads[v])
				} else {
					b.Store(chains[v][idx-1])
				}
				b.Barrier()
				chains[v] = append(chains[v][:idx], chains[v][idx+1:]...)
				population--
			case opSearch:
				v := bucket
				for len(chains[v]) == 0 {
					v = (v + 1) % hashBuckets
				}
				b.Load(heads[v])
				n := r.Intn(len(chains[v])) + 1
				for i := 0; i < n; i++ {
					b.Load(chains[v][i])
				}
			}
			b.TxEnd()
		}
	})
	return p, nil
}
