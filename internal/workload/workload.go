// Package workload generates the memory traces the paper evaluates:
// the five persistent-data-structure micro-benchmarks of Table 2 (hash,
// queue, rbtree, sdg, sps — run under buffered epoch persistency with
// programmer-inserted barriers), and nine synthetic application models
// standing in for the PARSEC/SPLASH-2/STAMP workloads used for bulk-mode
// BSP (see DESIGN.md for the substitution rationale).
//
// Generators simulate the actual data-structure logic in Go to compute the
// address stream each thread would issue, emitting loads, stores, persist
// barriers, and transaction markers. All generation is deterministic.
package workload

import (
	"fmt"
	"sort"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// EntrySize is the data-entry payload used by every micro-benchmark
// (Section 6: "The size of data entry ... is 512 bytes").
const EntrySize = 512

// Spec parameterizes a micro-benchmark run.
type Spec struct {
	// Threads is the number of cores/threads (paper: 32).
	Threads int
	// OpsPerThread is the number of data-structure transactions each
	// thread performs.
	OpsPerThread int
	// Seed drives the deterministic operation mix.
	Seed uint64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Threads <= 0 {
		return fmt.Errorf("workload: Threads must be positive, got %d", s.Threads)
	}
	if s.OpsPerThread <= 0 {
		return fmt.Errorf("workload: OpsPerThread must be positive, got %d", s.OpsPerThread)
	}
	return nil
}

// Generator builds the trace program for one benchmark.
type Generator func(Spec) (*trace.Program, error)

// Microbenchmarks returns the Table 2 suite keyed by the paper's names.
func Microbenchmarks() map[string]Generator {
	return map[string]Generator{
		"hash":   Hash,
		"queue":  Queue,
		"rbtree": RBTree,
		"sdg":    SDG,
		"sps":    SPS,
	}
}

// MicrobenchmarkNames returns the suite names in the paper's figure order.
func MicrobenchmarkNames() []string {
	return []string{"hash", "queue", "rbtree", "sdg", "sps"}
}

// allocator hands out EntrySize-aligned persistent-heap addresses.
type allocator struct {
	next mem.Addr
}

func newAllocator(base mem.Addr) *allocator { return &allocator{next: base} }

func (a *allocator) entry() mem.Addr {
	addr := a.next
	a.next += EntrySize
	return addr
}

func (a *allocator) line() mem.Addr {
	addr := a.next
	a.next += mem.LineSize
	return addr
}

// opKind is the micro-benchmark transaction mix: the paper's benchmarks
// perform search, delete and insert operations.
type opKind int

const (
	opInsert opKind = iota
	opDelete
	opSearch
)

// pickOp draws from the insert/delete/search mix (40/30/30) while keeping
// the structure non-empty: deletes and searches fall back to inserts when
// the structure has no elements.
func pickOp(r *trace.Rand, population int) opKind {
	k := r.Intn(10)
	switch {
	case k < 4:
		return opInsert
	case k < 7:
		if population == 0 {
			return opInsert
		}
		return opDelete
	default:
		if population == 0 {
			return opInsert
		}
		return opSearch
	}
}

// thinkTime is the compute burned between data-structure operations,
// modelling key generation, comparisons and bookkeeping around the
// persistent accesses.
func thinkTime(r *trace.Rand) sim.Cycle {
	return sim.Cycle(20 + r.Intn(40))
}

// roundRobin drives per-thread op generators one transaction at a time so
// a shared structure evolves with interleaved ownership, the way 32
// threads hammering one structure would interleave in practice.
func roundRobin(spec Spec, step func(thread int, b *trace.Builder)) *trace.Program {
	builders := make([]trace.Builder, spec.Threads)
	for op := 0; op < spec.OpsPerThread; op++ {
		for t := 0; t < spec.Threads; t++ {
			step(t, &builders[t])
		}
	}
	traces := make([][]trace.Op, spec.Threads)
	for t := range builders {
		traces[t] = builders[t].Ops()
	}
	return &trace.Program{Traces: traces}
}

// perThread builds each thread's trace from its own private structure
// instance — the NV-heaps benchmark organization, where intra-thread
// conflicts dominate (§7.1). init is called once per thread and returns
// the per-transaction step.
func perThread(spec Spec, init func(thread int, r *trace.Rand, b *trace.Builder) func()) *trace.Program {
	traces := make([][]trace.Op, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		r := trace.NewRand(spec.Seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15)
		var b trace.Builder
		step := init(t, r, &b)
		for op := 0; op < spec.OpsPerThread; op++ {
			step()
		}
		traces[t] = b.Ops()
	}
	return &trace.Program{Traces: traces}
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
