package workload

import (
	"fmt"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/sim"
	"persistbarriers/internal/trace"
)

// AppProfile is a synthetic stand-in for one of the PARSEC/SPLASH-2/STAMP
// workloads the paper uses for bulk-mode BSP (Section 6). Each profile
// captures the characteristics that drive the BSP results: store
// intensity, inter-thread sharing density, footprint, spatial locality,
// and compute density. DESIGN.md documents this substitution.
type AppProfile struct {
	Name string
	// StoreRatio is the fraction of memory operations that are stores.
	StoreRatio float64
	// SharedFraction is the fraction of accesses that target the
	// process-shared region (inter-thread conflict pressure).
	SharedFraction float64
	// SharedLines and PrivateLines size the shared region and each
	// thread's private region, in cache lines.
	SharedLines  int
	PrivateLines int
	// Locality is the probability that the next access continues
	// sequentially in the current block instead of jumping.
	Locality float64
	// BlockLines is the sequential-run block length.
	BlockLines int
	// ComputePerOp is the mean compute between memory operations.
	ComputePerOp sim.Cycle
	// HotLines and HotFraction model the small per-thread working set
	// (metadata, counters, structure roots) that is re-written at short
	// intervals. Re-writes inside one hardware epoch coalesce; across
	// epochs they raise intra-thread conflicts — the mechanism behind the
	// Figure 13 epoch-size sensitivity.
	HotLines    int
	HotFraction float64
}

// Apps returns the nine BSP workload models keyed by the paper's names.
func Apps() map[string]AppProfile {
	profiles := []AppProfile{
		// PARSEC
		{Name: "canneal", StoreRatio: 0.35, SharedFraction: 0.40, SharedLines: 8192, PrivateLines: 2048, Locality: 0.30, BlockLines: 4, ComputePerOp: 6, HotLines: 96, HotFraction: 0.30},
		{Name: "dedup", StoreRatio: 0.30, SharedFraction: 0.25, SharedLines: 4096, PrivateLines: 2048, Locality: 0.60, BlockLines: 8, ComputePerOp: 8, HotLines: 80, HotFraction: 0.30},
		{Name: "freqmine", StoreRatio: 0.15, SharedFraction: 0.30, SharedLines: 4096, PrivateLines: 2048, Locality: 0.65, BlockLines: 8, ComputePerOp: 10, HotLines: 96, HotFraction: 0.20},
		// SPLASH-2
		{Name: "barnes", StoreRatio: 0.25, SharedFraction: 0.30, SharedLines: 4096, PrivateLines: 1024, Locality: 0.55, BlockLines: 6, ComputePerOp: 10, HotLines: 128, HotFraction: 0.20},
		{Name: "cholesky", StoreRatio: 0.30, SharedFraction: 0.15, SharedLines: 4096, PrivateLines: 2048, Locality: 0.80, BlockLines: 16, ComputePerOp: 8, HotLines: 144, HotFraction: 0.15},
		{Name: "radix", StoreRatio: 0.50, SharedFraction: 0.10, SharedLines: 8192, PrivateLines: 4096, Locality: 0.85, BlockLines: 32, ComputePerOp: 4, HotLines: 160, HotFraction: 0.10},
		// STAMP
		{Name: "intruder", StoreRatio: 0.35, SharedFraction: 0.50, SharedLines: 2048, PrivateLines: 1024, Locality: 0.40, BlockLines: 4, ComputePerOp: 6, HotLines: 64, HotFraction: 0.35},
		{Name: "ssca2", StoreRatio: 0.55, SharedFraction: 0.60, SharedLines: 2048, PrivateLines: 512, Locality: 0.25, BlockLines: 2, ComputePerOp: 4, HotLines: 48, HotFraction: 0.30},
		{Name: "vacation", StoreRatio: 0.30, SharedFraction: 0.45, SharedLines: 4096, PrivateLines: 1024, Locality: 0.45, BlockLines: 4, ComputePerOp: 8, HotLines: 72, HotFraction: 0.35},
	}
	m := make(map[string]AppProfile, len(profiles))
	for _, p := range profiles {
		m[p.Name] = p
	}
	return m
}

// AppNames returns the workloads in the paper's Figure 13/14 order.
func AppNames() []string {
	return []string{
		"canneal", "dedup", "freqmine",
		"barnes", "cholesky", "radix",
		"intruder", "ssca2", "vacation",
	}
}

// Generate builds the per-core trace for the profile. Spec.OpsPerThread is
// the number of memory operations each thread issues; the traces carry no
// persist barriers (bulk-mode hardware inserts them).
func (p AppProfile) Generate(spec Spec) (*trace.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p.SharedLines <= 0 || p.PrivateLines <= 0 || p.BlockLines <= 0 {
		return nil, fmt.Errorf("workload: profile %q has non-positive region sizes", p.Name)
	}
	sharedBase := mem.Addr(0x6000_0000)
	traces := make([][]trace.Op, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		r := trace.NewRand(spec.Seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15)
		privBase := mem.Addr(0x7000_0000) + mem.Addr(t)*mem.Addr(p.PrivateLines+256)*mem.LineSize + mem.Addr(t)*17*mem.LineSize
		var b trace.Builder

		// Per-region locality cursors.
		sharedPos := r.Intn(p.SharedLines)
		privPos := r.Intn(p.PrivateLines)

		for i := 0; i < spec.OpsPerThread; i++ {
			if p.ComputePerOp > 0 {
				b.Compute(sim.Cycle(r.Intn(int(p.ComputePerOp)*2 + 1)))
			}
			var addr mem.Addr
			if p.HotLines > 0 && r.Float64() < p.HotFraction {
				// Hot per-thread metadata line.
				addr = privBase + mem.Addr(p.PrivateLines+r.Intn(p.HotLines))*mem.LineSize
				if r.Float64() < p.StoreRatio {
					b.Store(addr)
				} else {
					b.Load(addr)
				}
				if (i+1)%100 == 0 {
					b.TxEnd()
				}
				continue
			}
			shared := r.Float64() < p.SharedFraction
			if shared {
				if r.Float64() < p.Locality {
					sharedPos = (sharedPos + 1) % p.SharedLines
				} else {
					sharedPos = (r.Intn(p.SharedLines/p.BlockLines)*p.BlockLines + r.Intn(p.BlockLines)) % p.SharedLines
				}
				addr = sharedBase + mem.Addr(sharedPos)*mem.LineSize
			} else {
				if r.Float64() < p.Locality {
					privPos = (privPos + 1) % p.PrivateLines
				} else {
					privPos = (r.Intn(p.PrivateLines/p.BlockLines)*p.BlockLines + r.Intn(p.BlockLines)) % p.PrivateLines
				}
				addr = privBase + mem.Addr(privPos)*mem.LineSize
			}
			if r.Float64() < p.StoreRatio {
				b.Store(addr)
			} else {
				b.Load(addr)
			}
			if (i+1)%100 == 0 {
				b.TxEnd()
			}
		}
		traces[t] = b.Ops()
	}
	return &trace.Program{Traces: traces}, nil
}
