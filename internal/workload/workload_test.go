package workload

import (
	"testing"
	"testing/quick"

	"persistbarriers/internal/mem"
	"persistbarriers/internal/trace"
)

func spec() Spec { return Spec{Threads: 4, OpsPerThread: 50, Seed: 7} }

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Threads: 0, OpsPerThread: 1}).Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	if err := (Spec{Threads: 1, OpsPerThread: 0}).Validate(); err == nil {
		t.Error("zero ops accepted")
	}
	if err := spec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestMicrobenchmarkSuiteComplete(t *testing.T) {
	suite := Microbenchmarks()
	names := MicrobenchmarkNames()
	if len(suite) != 5 || len(names) != 5 {
		t.Fatalf("suite size %d, names %d, want 5 (Table 2)", len(suite), len(names))
	}
	for _, n := range names {
		if suite[n] == nil {
			t.Errorf("missing generator %q", n)
		}
	}
}

func TestEveryMicrobenchmarkGenerates(t *testing.T) {
	for name, gen := range Microbenchmarks() {
		p, err := gen(spec())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Cores() != 4 {
			t.Errorf("%s: cores = %d", name, p.Cores())
		}
		if p.Ops() == 0 || p.Stores() == 0 {
			t.Errorf("%s: empty trace (ops=%d stores=%d)", name, p.Ops(), p.Stores())
		}
		// Every micro-benchmark uses programmer barriers and marks
		// transactions.
		var barriers, txs int
		for _, tr := range p.Traces {
			for _, op := range tr {
				switch op.Kind {
				case trace.Barrier:
					barriers++
				case trace.TxEnd:
					txs++
				}
			}
		}
		if barriers == 0 {
			t.Errorf("%s: no persist barriers", name)
		}
		if txs != 4*50 {
			t.Errorf("%s: txs = %d, want 200", name, txs)
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	for name, gen := range Microbenchmarks() {
		a, err := gen(spec())
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen(spec())
		if err != nil {
			t.Fatal(err)
		}
		if a.Ops() != b.Ops() || a.Stores() != b.Stores() {
			t.Errorf("%s: non-deterministic generation", name)
		}
		for c := range a.Traces {
			for i := range a.Traces[c] {
				if a.Traces[c][i] != b.Traces[c][i] {
					t.Fatalf("%s: trace diverges at core %d op %d", name, c, i)
				}
			}
		}
	}
}

func TestHashEntrySpansEightLines(t *testing.T) {
	p, err := Hash(Spec{Threads: 1, OpsPerThread: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The first op is an insert (empty structure): expect a head load,
	// 8 entry-store lines, barrier, head store, barrier, txend.
	stores := 0
	for _, op := range p.Traces[0] {
		if op.Kind == trace.Store {
			stores++
		}
	}
	if stores != 9 { // 8 entry lines + 1 head pointer
		t.Errorf("insert stores = %d, want 9", stores)
	}
}

func TestQueueFigure10Pattern(t *testing.T) {
	p, err := Queue(Spec{Threads: 1, OpsPerThread: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Insert: the head-pointer store must come after the entry stores
	// with a barrier in between (Figure 10 ordering).
	var kinds []trace.OpKind
	for _, op := range p.Traces[0] {
		kinds = append(kinds, op.Kind)
	}
	sawEntryStore, sawBarrier, ok := false, false, false
	for _, k := range kinds {
		switch k {
		case trace.Store:
			if sawEntryStore && sawBarrier {
				ok = true // pointer store after barrier
			}
			sawEntryStore = true
		case trace.Barrier:
			if sawEntryStore {
				sawBarrier = true
			}
		}
	}
	if !ok {
		t.Errorf("queue insert lacks entry-store / barrier / pointer-store ordering: %v", kinds)
	}
}

// TestRBTreeInvariants drives the tree through random operation sequences
// and validates the red-black properties after every operation.
func TestRBTreeInvariants(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		ops := int(opsRaw%100) + 20
		r := trace.NewRand(seed)
		tr := &rbTree{alloc: newAllocator(0)}
		tr.b = &trace.Builder{}
		live := map[uint64]*rbNode{}
		next := uint64(1)
		for i := 0; i < ops; i++ {
			switch pickOp(r, tr.size) {
			case opInsert:
				live[next] = tr.insert(next)
				next++
			case opDelete:
				ks := sortedKeys(live)
				k := ks[r.Intn(len(ks))]
				if n := tr.search(k); n != nil {
					tr.delete(n)
				}
				delete(live, k)
			case opSearch:
				ks := sortedKeys(live)
				if tr.search(ks[r.Intn(len(ks))]) == nil {
					return false // live key not found
				}
			}
			if err := tr.validate(); err != nil {
				t.Logf("seed=%d ops=%d: %v", seed, i, err)
				return false
			}
			if tr.size != len(live) {
				return false
			}
		}
		// Every live key findable, every deleted key absent.
		for k := range live {
			if tr.search(k) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeGenerator(t *testing.T) {
	p, err := RBTree(spec())
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() == 0 {
		t.Fatal("empty rbtree trace")
	}
}

func TestSPSSwapShape(t *testing.T) {
	p, err := SPS(Spec{Threads: 1, OpsPerThread: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loads, stores, barriers := 0, 0, 0
	for _, op := range p.Traces[0] {
		switch op.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		case trace.Barrier:
			barriers++
		}
	}
	if loads != 16 || stores != 16 || barriers != 2 {
		t.Errorf("swap = %d loads, %d stores, %d barriers; want 16/16/2", loads, stores, barriers)
	}
}

func TestAppsSuiteComplete(t *testing.T) {
	apps := Apps()
	names := AppNames()
	if len(names) != 9 || len(apps) != 9 {
		t.Fatalf("apps = %d, names = %d, want 9", len(apps), len(names))
	}
	for _, n := range names {
		if _, ok := apps[n]; !ok {
			t.Errorf("missing app %q", n)
		}
	}
}

func TestAppProfilesGenerateWithExpectedMix(t *testing.T) {
	for name, prof := range Apps() {
		p, err := prof.Generate(Spec{Threads: 4, OpsPerThread: 2000, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		memOps, stores := 0, 0
		sharedOps := 0
		for _, tr := range p.Traces {
			for _, op := range tr {
				switch op.Kind {
				case trace.Load, trace.Store:
					memOps++
					if op.Kind == trace.Store {
						stores++
					}
					if op.Addr < 0x7000_0000 {
						sharedOps++
					}
				case trace.Barrier:
					t.Fatalf("%s: BSP trace contains a programmer barrier", name)
				}
			}
		}
		gotStore := float64(stores) / float64(memOps)
		if gotStore < prof.StoreRatio-0.05 || gotStore > prof.StoreRatio+0.05 {
			t.Errorf("%s: store ratio %.3f, want ~%.2f", name, gotStore, prof.StoreRatio)
		}
		// Hot accesses are private, so the effective shared fraction is
		// (1-HotFraction)*SharedFraction.
		wantShared := (1 - prof.HotFraction) * prof.SharedFraction
		gotShared := float64(sharedOps) / float64(memOps)
		if gotShared < wantShared-0.05 || gotShared > wantShared+0.05 {
			t.Errorf("%s: shared fraction %.3f, want ~%.2f", name, gotShared, wantShared)
		}
	}
}

func TestSSCA2IsMostWriteAndShareIntensive(t *testing.T) {
	// The paper singles out ssca2 as write-intensive with fine-grained
	// sharing; the profiles must preserve that relationship.
	apps := Apps()
	s := apps["ssca2"]
	for name, p := range apps {
		if name == "ssca2" {
			continue
		}
		if p.StoreRatio > s.StoreRatio {
			t.Errorf("%s store ratio %.2f exceeds ssca2's %.2f", name, p.StoreRatio, s.StoreRatio)
		}
		if p.SharedFraction > s.SharedFraction {
			t.Errorf("%s shared fraction %.2f exceeds ssca2's %.2f", name, p.SharedFraction, s.SharedFraction)
		}
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := newAllocator(0x1000)
	e1, e2 := a.entry(), a.entry()
	if e2-e1 != EntrySize {
		t.Errorf("entry stride = %d, want %d", e2-e1, EntrySize)
	}
	l := a.line()
	if mem.LineOf(l) == mem.LineOf(e2) {
		t.Error("line allocation overlaps previous entry")
	}
}

func TestPickOpFallsBackToInsertWhenEmpty(t *testing.T) {
	r := trace.NewRand(1)
	for i := 0; i < 200; i++ {
		if op := pickOp(r, 0); op != opInsert {
			t.Fatalf("pickOp on empty structure returned %d", op)
		}
	}
}
