// Package persistbarriers' top-level benchmarks regenerate every table and
// figure of the paper's evaluation (Section 7) as testing.B benchmarks.
// Each benchmark iteration runs the full experiment at a scaled-down
// configuration (harness.Quick-like) and reports the figure's headline
// numbers as custom metrics, so `go test -bench=. -benchmem` reproduces
// the whole evaluation and its shape in one command. EXPERIMENTS.md
// records the paper-vs-measured comparison at full scale.
package persistbarriers

import (
	"testing"

	"persistbarriers/internal/harness"
	"persistbarriers/internal/machine"
	"persistbarriers/internal/pmkv"
	"persistbarriers/internal/trace"
	"persistbarriers/internal/workload"
)

// benchOpt is the scaled-down option set benchmarks run at; the figures
// CLI runs the same experiments at paper scale.
func benchOpt() harness.Options {
	return harness.Options{
		Threads:    8,
		MicroOps:   15,
		AppOps:     2000,
		EpochSizes: []int{30, 100, 1000},
		BulkEpoch:  250,
		Seed:       42,
	}
}

// BenchmarkTable1Config measures machine construction at the paper's
// Table 1 parameters (32 cores, 32 LLC banks, 4 MCs).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := machine.New(machine.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Timelines runs the Figure 1 SP/EP/BEP timeline probe.
func BenchmarkFig1Timelines(b *testing.B) {
	var last *harness.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Exec["SP"]), "SP-cycles")
	b.ReportMetric(float64(last.Exec["EP"]), "EP-cycles")
	b.ReportMetric(float64(last.Exec["BEP(LB)"]), "BEP-cycles")
}

// BenchmarkFig4IDT runs the Figure 4 inter-thread conflict kernel.
func BenchmarkFig4IDT(b *testing.B) {
	var last *harness.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.StallLB), "LB-conflict-stall-cycles")
	b.ReportMetric(float64(last.StallIDT), "IDT-conflict-stall-cycles")
	b.ReportMetric(float64(last.ExecLB+last.ExecIDT), "sim-cycles/op")
}

// BenchmarkFig11BEPThroughput regenerates Figure 11: micro-benchmark
// throughput of every barrier variant normalized to LB (paper gmeans:
// LB+IDT 1.03x, LB+PF 1.17x, LB++ 1.22x).
func BenchmarkFig11BEPThroughput(b *testing.B) {
	var last *harness.BEPResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunBEP(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, v := range harness.BEPVariants {
		b.ReportMetric(last.GmeanThroughput(v), "gmean-"+v)
	}
}

// BenchmarkFig12ConflictingEpochs regenerates Figure 12: the percentage of
// epochs flushed because of a conflict (paper ameans: LB 90%, LB+IDT ~90%,
// LB+PF 77%, LB++ 75%).
func BenchmarkFig12ConflictingEpochs(b *testing.B) {
	var last *harness.BEPResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunBEP(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, v := range harness.BEPVariants {
		b.ReportMetric(last.AmeanConflicting(v), "pct-"+v)
	}
}

// BenchmarkFig13EpochSize regenerates Figure 13: bulk-BSP execution time
// normalized to NP across hardware epoch sizes (paper: LB300 1.9x with the
// overhead shrinking as epochs grow).
func BenchmarkFig13EpochSize(b *testing.B) {
	opt := benchOpt()
	var last *harness.EpochSweepResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig13(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, size := range last.Sizes {
		b.ReportMetric(last.GmeanNormalized(size), "gmean-LB"+itoa(size))
	}
}

// BenchmarkFig14BSP regenerates Figure 14: BSP execution time normalized
// to NP for LB, LB+IDT, LB++, LB++NOLOG (paper gmeans: 1.5x, 1.35x, 1.3x,
// 1.16x; ~86% of conflicts inter-thread).
func BenchmarkFig14BSP(b *testing.B) {
	var last *harness.BSPResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig14(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, v := range harness.BSPVariants {
		b.ReportMetric(last.GmeanNormalized(v), "gmean-"+v)
	}
	b.ReportMetric(100*last.InterConflictShare("LB"), "inter-share-pct")
}

// BenchmarkFlushMode regenerates the §7 clwb-vs-clflush comparison (paper:
// non-invalidating ~30% faster).
func BenchmarkFlushMode(b *testing.B) {
	var last *harness.FlushModeResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFlushMode(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	sum := 0.0
	for _, bench := range last.Benches {
		sum += last.Clwb[bench].Throughput() / last.Clflush[bench].Throughput()
	}
	b.ReportMetric(sum/float64(len(last.Benches)), "clwb-vs-clflush")
}

// BenchmarkWriteThrough regenerates the §7.2 naive write-through BSP
// comparison (paper: ~8x NP at 32 threads; scaled runs saturate less).
func BenchmarkWriteThrough(b *testing.B) {
	opt := benchOpt()
	opt.Threads = 16
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := harness.RunWriteThrough(opt)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, app := range r.Apps {
			v := float64(r.WT[app].ExecCycles) / float64(r.NP[app].ExecCycles)
			if v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-WT-vs-NP")
}

// BenchmarkAblations runs the DESIGN.md §6 design-choice sweeps.
func BenchmarkAblations(b *testing.B) {
	opt := benchOpt()
	opt.MicroOps = 8
	var last *harness.AblationResults
	for i := 0; i < b.N; i++ {
		r, err := harness.RunAblations(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.DepRegThroughput[4], "gmean-4-depregs")
	b.ReportMetric(float64(last.DepRegFallbacks[1]), "fallbacks-1-reg")
}

// BenchmarkMicroGeneration measures trace generation for each Table 2
// micro-benchmark (the workload substrate itself).
func BenchmarkMicroGeneration(b *testing.B) {
	spec := workload.Spec{Threads: 32, OpsPerThread: 50, Seed: 1}
	for _, name := range workload.MicrobenchmarkNames() {
		gen := workload.Microbenchmarks()[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorCore measures raw simulation speed: events per second
// on a queue run under LB++.
func BenchmarkSimulatorCore(b *testing.B) {
	spec := workload.Spec{Threads: 8, OpsPerThread: 25, Seed: 1}
	var prog *trace.Program
	var err error
	if prog, err = workload.Queue(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events, cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig()
		cfg.Cores = spec.Threads
		cfg.IDT, cfg.PF = true, true
		m, err := machine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		events += m.Engine().Fired()
		cycles += uint64(m.Engine().Now())
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkEngineOpCost measures the per-operation cost of the engine's
// group-commit path (SubmitAppend + PumpRetire) as the batch width
// grows. Wider batches amortize the fixed pump cost over more ops, and
// -benchmem exposes the zero-alloc submit layer: allocs/op must stay
// far below one per logical operation.
func BenchmarkEngineOpCost(b *testing.B) {
	for _, batchLen := range []int{1, 16, 64, 256} {
		b.Run("batch="+itoa(batchLen), func(b *testing.B) {
			e, err := pmkv.New(pmkv.Config{})
			if err != nil {
				b.Fatal(err)
			}
			sessions := make([]*pmkv.Session, 4)
			for i := range sessions {
				sessions[i] = e.NewSession()
			}
			val := make([]byte, 64)
			batch := make([]pmkv.Request, batchLen)
			for i := range batch {
				batch[i] = pmkv.Request{
					Sess:  sessions[i%len(sessions)],
					Op:    pmkv.Put,
					Key:   "oc" + itoa(i%32),
					Value: val,
				}
			}
			resps := make([]pmkv.Response, 0, batchLen)
			// Warm up arenas and op buffers before the measured runs.
			for i := 0; i < 4; i++ {
				if resps, err = e.SubmitAppend(resps[:0], batch); err != nil {
					b.Fatal(err)
				}
				if err := e.PumpRetire(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resps, err = e.SubmitAppend(resps[:0], batch); err != nil {
					b.Fatal(err)
				}
				if err := e.PumpRetire(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batchLen)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			if _, err := e.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPmkvShardScaling measures aggregate pmkv throughput as the
// keyspace is partitioned across independent shard machines. Each
// iteration replays the same deterministic scripted workload (so the
// numbers gate cleanly in CI); ops/sec is total logical operations over
// wall time. The win at higher shard counts is algorithmic even on one
// host core: fewer sessions multiplex each simulated machine, so group
// commits serialize fewer same-core epochs and contend on fewer buckets.
func BenchmarkPmkvShardScaling(b *testing.B) {
	spec := pmkv.ScriptSpec{Sessions: 8, Rounds: 12, KeySpace: 32, ValueBytes: 64, Seed: 42}
	ops := float64(spec.Sessions * spec.Rounds)
	for _, shards := range []int{1, 2, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			var out *pmkv.ShardedRunResult
			for i := 0; i < b.N; i++ {
				r, err := pmkv.RunShardedScript(pmkv.ShardedConfig{Shards: shards}, spec)
				if err != nil {
					b.Fatal(err)
				}
				out = r
			}
			b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			b.ReportMetric(float64(out.TotalPublishes()), "publishes")
		})
	}
}
